// Benchmark harness: one benchmark per experiment table (E1-E8), each of
// which (a) regenerates and logs its EXPERIMENTS.md table once and (b)
// times the experiment's core decoding operation, plus micro-benchmarks for
// the substrate layers. Run with:
//
//	go test -bench=. -benchmem
package localadvice_test

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/coloring"
	"localadvice/internal/core"
	"localadvice/internal/decomp"
	"localadvice/internal/decompress"
	"localadvice/internal/edgecolor"
	"localadvice/internal/eth"
	"localadvice/internal/graph"
	"localadvice/internal/growth"
	"localadvice/internal/harness"
	"localadvice/internal/lcl"
	"localadvice/internal/lll"
	"localadvice/internal/local"
	"localadvice/internal/orient"
)

// tableOnce logs each experiment's table a single time per test binary run.
var tableOnce sync.Map

func logTable(b *testing.B, id string) {
	once, _ := tableOnce.LoadOrStore(id, &sync.Once{})
	once.(*sync.Once).Do(func() {
		e, ok := harness.ByID(id)
		if !ok {
			b.Fatalf("unknown experiment %s", id)
		}
		table, err := e.Run()
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		var sb strings.Builder
		table.Render(&sb)
		b.Logf("\n%s", sb.String())
	})
}

func BenchmarkE1LCLGrowth(b *testing.B) {
	logTable(b, "E1")
	g := graph.Cycle(600)
	s := growth.Schema{
		Problem:       lcl.Coloring{K: 3},
		ClusterRadius: 60,
		Solver: func(g *graph.Graph) (*lcl.Solution, error) {
			return lcl.ColoringSolution(g, lcl.GreedyColoring(g))
		},
	}
	advice, err := s.Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Decode(g, advice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE2AdviceSearch(b *testing.B) {
	logTable(b, "E2")
	g := graph.Cycle(14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eth.AdviceSearch(lcl.MIS{}, g, 1, eth.MISDecoder)
		if err != nil || !res.Found {
			b.Fatalf("search failed: %v", err)
		}
	}
}

func BenchmarkE3Orientation(b *testing.B) {
	logTable(b, "E3")
	g := graph.Cycle(800)
	s := orient.Schema{P: orient.DefaultParams()}
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.DecodeVar(g, va, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE4Decompress(b *testing.B) {
	logTable(b, "E4")
	rng := rand.New(rand.NewSource(4))
	g, err := graph.RandomRegular(160, 6, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make(decompress.EdgeSet)
	for e := 0; e < g.M(); e++ {
		if rng.Intn(2) == 0 {
			x[e] = true
		}
	}
	codec := decompress.Oriented{P: orient.Params{MarkSpacing: 20, MarkWindow: 20}}
	advice, err := codec.Encode(g, x)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, _, err := codec.Decode(g, advice)
		if err != nil || !decoded.Equal(x) {
			b.Fatalf("roundtrip failed: %v", err)
		}
	}
}

func BenchmarkE5DeltaColoring(b *testing.B) {
	logTable(b, "E5")
	rng := rand.New(rand.NewSource(5))
	g, _ := graph.RandomColorable(50, 4, 0.22, rng)
	graph.AssignPermutedIDs(g, rng)
	delta := g.MaxDegree()
	p := coloring.NewDeltaPipeline(delta, 4)
	va, err := p.EncodeVar(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.DecodeVar(g, va, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6ThreeColoring(b *testing.B) {
	logTable(b, "E6")
	g := graph.Cycle(160)
	schema := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	advice, err := schema.Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := schema.Decode(g, advice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7EdgeColoring(b *testing.B) {
	logTable(b, "E7")
	g := graph.Torus2D(6, 10)
	s := edgecolor.New(4)
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.DecodeVar(g, va, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE8Sparsity(b *testing.B) {
	logTable(b, "E8")
	g := graph.Cycle(1200)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := orient.Schema{P: orient.Params{MarkSpacing: 48, MarkWindow: 12}}
		if _, err := s.EncodeVar(g, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

func BenchmarkMarkerCodeRoundtrip(b *testing.B) {
	payload := bitstr.MustParse("110100111010")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := bitstr.MarkerEncode(payload)
		if _, _, err := bitstr.MarkerDecode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTrailDecompose(b *testing.B) {
	g := graph.Torus2D(20, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dec := orient.Decompose(g)
		if len(dec.Trails) == 0 {
			b.Fatal("no trails")
		}
	}
}

func BenchmarkBuildView(b *testing.B) {
	g := graph.Grid2D(30, 30)
	advice := make(local.Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(v % 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := local.BuildView(g, advice, 450, 6)
		if view.G.N() == 0 {
			b.Fatal("empty view")
		}
	}
}

func BenchmarkMessageEngine(b *testing.B) {
	// local.Run is the sharded scheduler; BenchmarkEngineGoroutine tracks
	// the retained channel-based engine on the same shape of workload.
	g := graph.Grid2D(10, 10)
	proto := &local.GatherProtocol{Radius: 2, Decide: func(view *local.View) any { return view.G.N() }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := local.Run(g, proto, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOneBitCodec(b *testing.B) {
	g := graph.Cycle(300)
	codec := core.OneBitCodec{Radius: 40}
	va := core.VarAdvice{0: bitstr.MustParse("1011"), 150: bitstr.MustParse("0010")}
	advice, err := codec.Encode(g, va)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.Decode(g, advice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMoserTardos(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	clauseVars := make([][]int, 60)
	clauseNeg := make([][]bool, 60)
	for c := range clauseVars {
		clauseVars[c] = rng.Perm(80)[:7]
		clauseNeg[c] = make([]bool, 7)
		for i := range clauseNeg[c] {
			clauseNeg[c][i] = rng.Intn(2) == 0
		}
	}
	in := &lll.Instance{
		NumVars:    80,
		DomainSize: func(int) int { return 2 },
		NumEvents:  60,
		Vars:       func(e int) []int { return clauseVars[e] },
		Bad: func(e int, a []int) bool {
			for i, v := range clauseVars[e] {
				val := a[v] == 1
				if clauseNeg[e][i] {
					val = !val
				}
				if val {
					return false
				}
			}
			return true
		},
	}
	b.ResetTimer()
	resamplings := 0
	for i := 0; i < b.N; i++ {
		res, err := lll.Solve(in, rng, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		resamplings += res.Resamplings
	}
	b.ReportMetric(float64(resamplings)/b.Elapsed().Seconds(), "resamplings/s")
}

// BenchmarkMoserTardosLarge exercises the dense violated-set bookkeeping on
// an instance big enough that resampling dominates: random 5-SAT with 500
// variables and 1200 overlapping clauses.
func BenchmarkMoserTardosLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	clauseVars := make([][]int, 1200)
	clauseNeg := make([][]bool, 1200)
	for c := range clauseVars {
		clauseVars[c] = rng.Perm(500)[:5]
		clauseNeg[c] = make([]bool, 5)
		for i := range clauseNeg[c] {
			clauseNeg[c][i] = rng.Intn(2) == 0
		}
	}
	in := &lll.Instance{
		NumVars:    500,
		DomainSize: func(int) int { return 2 },
		NumEvents:  1200,
		Vars:       func(e int) []int { return clauseVars[e] },
		Bad: func(e int, a []int) bool {
			for i, v := range clauseVars[e] {
				val := a[v] == 1
				if clauseNeg[e][i] {
					val = !val
				}
				if val {
					return false
				}
			}
			return true
		},
	}
	b.ResetTimer()
	resamplings := 0
	for i := 0; i < b.N; i++ {
		res, err := lll.Solve(in, rng, 1<<22)
		if err != nil {
			b.Fatal(err)
		}
		resamplings += res.Resamplings
	}
	b.ReportMetric(float64(resamplings)/b.Elapsed().Seconds(), "resamplings/s")
}

func BenchmarkLLLDependencyDegree(b *testing.B) {
	rng := rand.New(rand.NewSource(22))
	clauseVars := make([][]int, 1200)
	for c := range clauseVars {
		clauseVars[c] = rng.Perm(500)[:5]
	}
	in := &lll.Instance{
		NumVars:    500,
		DomainSize: func(int) int { return 2 },
		NumEvents:  1200,
		Vars:       func(e int) []int { return clauseVars[e] },
		Bad:        func(int, []int) bool { return false },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d := lll.DependencyDegree(in); d == 0 {
			b.Fatal("degenerate instance")
		}
	}
}

func BenchmarkGreedyColoring(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	g := graph.RandomGNP(300, 0.05, rng)
	graph.AssignPermutedIDs(g, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if colors := lcl.GreedyColoring(g); colors[0] == 0 {
			b.Fatal("uncolored")
		}
	}
}

func BenchmarkSolve3Coloring(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g, _ := graph.RandomColorable(80, 3, 0.1, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := coloring.Solve3Coloring(g); !ok {
			b.Fatal("unsolved")
		}
	}
}

func BenchmarkGroupedOneBitCodec(b *testing.B) {
	g := graph.Cycle(900)
	codec := core.GroupedOneBitCodec{Radius: 180, GroupRadius: 2}
	va := core.VarAdvice{
		100: bitstr.MustParse("1101"),
		101: bitstr.MustParse("01"),
		550: bitstr.MustParse("1"),
	}
	advice, err := codec.Encode(g, va)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := codec.Decode(g, advice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLinialReduce(b *testing.B) {
	rng := rand.New(rand.NewSource(12))
	g := graph.RandomGNP(200, 0.04, rng)
	graph.AssignSpreadIDs(g, rng)
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = int(g.ID(v))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := coloring.LinialReduceToQuadratic(g, colors); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCubicTwoBit(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	g, err := graph.RandomRegular(100, 3, rng)
	if err != nil {
		b.Fatal(err)
	}
	x := make(decompress.EdgeSet)
	for e := 0; e < g.M(); e++ {
		if rng.Intn(2) == 0 {
			x[e] = true
		}
	}
	advice, err := decompress.CubicTwoBit{}.Encode(g, x)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		decoded, _, err := decompress.CubicTwoBit{}.Decode(g, advice)
		if err != nil || !decoded.Equal(x) {
			b.Fatal("roundtrip failed")
		}
	}
}

func BenchmarkFindAlpha(b *testing.B) {
	g := graph.Grid2D(61, 61)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := growth.FindAlpha(g, 30*61+30, 2, 25); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProofVerify(b *testing.B) {
	g := graph.Cycle(400)
	s := growth.Schema{
		Problem:       lcl.Coloring{K: 3},
		ClusterRadius: 40,
		Solver: func(g *graph.Graph) (*lcl.Solution, error) {
			return lcl.ColoringSolution(g, lcl.GreedyColoring(g))
		},
	}
	proof, err := s.Prove(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.VerifyProof(g, proof)
		if err != nil || !res.Accepted {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkBFSWithin measures the bounded scratch BFS against the size of
// the ball, not the graph: the asymptotic win of the view engine.
func BenchmarkBFSWithin(b *testing.B) {
	g := graph.Grid2D(64, 64)
	g.Snapshot()
	s := graph.NewBFSScratch()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if ball := g.BFSWithin(2080, 6, s); len(ball) == 0 {
			b.Fatal("empty ball")
		}
	}
}

// BenchmarkRunBallParallel sweeps worker counts on an n=4096 bounded-degree
// graph; outputs are identical across all sub-benchmarks by construction.
func BenchmarkRunBallParallel(b *testing.B) {
	g := graph.Grid2D(64, 64)
	advice := make(local.Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(v % 2)
	}
	count := func(view *local.View) any { return view.G.N() }
	for _, workers := range []int{1, 2, 4, 8, 0} {
		name := fmt.Sprintf("workers=%d", workers)
		if workers == 0 {
			name = "workers=GOMAXPROCS"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				out, _ := local.RunBallConfig(g, advice, 4, count, local.RunConfig{Workers: workers})
				if out[0].(int) == 0 {
					b.Fatal("empty view")
				}
			}
		})
	}
}

// --- large bounded-degree instances (n = 4096) ---
//
// These track the view-engine hot path at a scale where the asymptotic
// difference between full-graph BFS and bounded ball-gathering dominates.

func BenchmarkBuildView4096(b *testing.B) {
	g := graph.Grid2D(64, 64)
	advice := make(local.Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(v % 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		view := local.BuildView(g, advice, 2080, 6)
		if view.G.N() == 0 {
			b.Fatal("empty view")
		}
	}
}

func BenchmarkE1LCLGrowth4096(b *testing.B) {
	g := graph.Cycle(4096)
	s := growth.Schema{
		Problem:       lcl.Coloring{K: 3},
		ClusterRadius: 60,
		Solver: func(g *graph.Graph) (*lcl.Solution, error) {
			return lcl.ColoringSolution(g, lcl.GreedyColoring(g))
		},
	}
	advice, err := s.Encode(g)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.Decode(g, advice); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3Orientation4096(b *testing.B) {
	g := graph.Cycle(4096)
	s := orient.Schema{P: orient.DefaultParams()}
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := s.DecodeVar(g, va, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE5DeltaColoring512(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g, _ := graph.RandomColorable(512, 4, 0.22, rng)
	graph.AssignPermutedIDs(g, rng)
	delta := g.MaxDegree()
	p := coloring.NewDeltaPipeline(delta, 4)
	va, err := p.EncodeVar(g, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.DecodeVar(g, va, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineGoroutine(b *testing.B) {
	g := graph.Grid2D(12, 12)
	proto := &local.GatherProtocol{Radius: 2, Decide: func(view *local.View) any { return view.G.N() }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := local.RunGoroutine(g, proto, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// floodProtocol floods the maximum ID seen so far for a fixed number of
// rounds: the message-engine reference protocol of the 4096-node grid
// benchmarks. Per-node work is a few comparisons, so these benchmarks
// measure engine overhead (scheduling, delivery, synchronization), not
// protocol computation.
type floodProtocol struct{ rounds int }

type floodMachine struct {
	rounds, degree int
	best           int64
}

func (p *floodProtocol) NewMachine(info local.NodeInfo) local.Machine {
	return &floodMachine{rounds: p.rounds, degree: info.Degree, best: info.ID}
}

func (m *floodMachine) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	for _, msg := range inbox {
		if msg == nil {
			continue
		}
		if id := msg.(int64); id > m.best {
			m.best = id
		}
	}
	if round > m.rounds {
		return nil, true
	}
	out := make([]local.Message, m.degree)
	for i := range out {
		out[i] = m.best
	}
	return out, false
}

func (m *floodMachine) Output() any { return m.best }

// benchEngine4096 runs the flood reference protocol on a 4096-node grid
// under the given message engine and reports rounds/s alongside ns/op.
func benchEngine4096(b *testing.B, run func(*graph.Graph, local.Protocol, local.Advice) ([]any, local.Stats, error)) {
	g := graph.Grid2D(64, 64)
	proto := &floodProtocol{rounds: 8}
	rounds := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, stats, err := run(g, proto, nil)
		if err != nil {
			b.Fatal(err)
		}
		if out[0].(int64) == 0 {
			b.Fatal("bad output")
		}
		rounds += stats.Rounds
	}
	b.ReportMetric(float64(rounds)/b.Elapsed().Seconds(), "rounds/s")
}

func BenchmarkEngineScheduler4096(b *testing.B) { benchEngine4096(b, local.Run) }

func BenchmarkEngineGoroutine4096(b *testing.B) { benchEngine4096(b, local.RunGoroutine) }

// BenchmarkEngineFrugal4096 times the skeleton-simulating engine on the same
// flood workload; the delta over BenchmarkEngineScheduler4096 is the cost of
// skeleton construction plus per-round change-suppression accounting.
func BenchmarkEngineFrugal4096(b *testing.B) { benchEngine4096(b, local.RunFrugal) }

// BenchmarkEngineSchedulerWorkers sweeps explicit worker counts on the
// 4096-node grid; outputs and stats are identical across all sub-benchmarks
// by the scheduler's determinism contract.
func BenchmarkEngineSchedulerWorkers(b *testing.B) {
	g := graph.Grid2D(64, 64)
	proto := &floodProtocol{rounds: 8}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := local.RunMessageConfig(g, proto, nil, local.RunConfig{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkDecompose4096 times the seeded low-diameter decomposition on the
// 4096-node grid — the shard-construction cost a partitioned scheduler run
// pays once up front.
func BenchmarkDecompose4096(b *testing.B) {
	g := graph.Grid2D(64, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := decomp.Decompose(g, 0.1, 1)
		if err != nil {
			b.Fatal(err)
		}
		if d.Balls() < 1 {
			b.Fatal("no balls")
		}
	}
}

// BenchmarkEngineSchedulerLowCut4096 is BenchmarkEngineScheduler4096 with
// the decomposition's low-cut ball shards installed at 4 workers; the delta
// against contiguous sharding at the same worker count is the locality
// effect the "decomp" bench section records.
func BenchmarkEngineSchedulerLowCut4096(b *testing.B) {
	g := graph.Grid2D(64, 64)
	proto := &floodProtocol{rounds: 8}
	d, err := decomp.Decompose(g, 0.1, 1)
	if err != nil {
		b.Fatal(err)
	}
	shards := d.Shards(4)
	cfg := local.RunConfig{Workers: 4,
		Partition: func(*graph.Graph, int) ([][]int32, error) { return shards, nil }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := local.RunMessageConfig(g, proto, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEngineSequential(b *testing.B) {
	g := graph.Grid2D(12, 12)
	proto := &local.GatherProtocol{Radius: 2, Decide: func(view *local.View) any { return view.G.N() }}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := local.RunSequential(g, proto, nil); err != nil {
			b.Fatal(err)
		}
	}
}
