// Package localadvice is a Go reproduction of "Brief Announcement: Local
// Advice and Local Decompression" (Balliu, Brandt, Kuhn, Nowicki, Olivetti,
// Rotenberg, Suomela; PODC 2024): a LOCAL-model simulator, the paper's
// advice-schema framework (schemas, sparsity, composability, the
// variable-length to one-bit conversion), and executable constructions for
// each of the paper's six contributions, with an experiment harness that
// regenerates every result table.
//
// The implementation lives under internal/; see README.md for the map and
// cmd/locad for the command-line front end.
package localadvice
