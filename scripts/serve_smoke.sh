#!/bin/sh
# Serving-layer smoke test: start `locad serve` with a persistent artifact
# store on an ephemeral port, drive it with a short cold/warm loadgen phase
# plus a binary batch phase, verify that SIGTERM drains to a clean (exit 0)
# shutdown — then RESTART the server on the same store and assert warm-start
# recovery: the first decode of the restarted process returns labels
# byte-identical to the pre-restart answer without running the engine at all
# (engine_computes stays 0). Everything goes through the locad binary itself
# — no curl or other HTTP client is needed.
#
# Usage: scripts/serve_smoke.sh [phase-duration]
set -eu

duration=${1:-2s}

workdir=$(mktemp -d)
log="$workdir/serve.log"
stats="$workdir/loadgen.json"
store="$workdir/store"
bin="$workdir/locad"
serve_pid=
cluster_pid=

cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    [ -n "$cluster_pid" ] && kill "$cluster_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/locad

# start_serve <logfile>: launch serve on an ephemeral port with the shared
# store directory and set $serve_pid/$addr.
start_serve() {
    "$bin" serve -addr 127.0.0.1:0 -store-dir "$store" >"$1" 2>&1 &
    serve_pid=$!
    addr=
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^locad serve: listening on //p' "$1")
        [ -n "$addr" ] && break
        kill -0 "$serve_pid" 2>/dev/null || { echo "serve died early:"; cat "$1"; exit 1; }
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "serve never reported its address:"; cat "$1"; exit 1; }
}

stop_serve() {
    kill -TERM "$serve_pid"
    rc=0
    wait "$serve_pid" || rc=$?
    serve_pid=
    if [ "$rc" -ne 0 ]; then
        echo "serve exited $rc on SIGTERM:"; cat "$1"; exit 1
    fi
    grep -q 'shutting down' "$1" || { echo "no shutdown log line:"; cat "$1"; exit 1; }
}

start_serve "$log"
echo "serve-smoke: server at $addr (store: $store)"

# Cold + warm + batch load phases; -json embeds a /v1/stats scrape under
# "stats". This also writes every artifact of the workload through to disk.
"$bin" loadgen -addr "$addr" -n 256 -duration "$duration" -batch -json >"$stats"

grep -q '"warm_over_cold_rps"' "$stats" || { echo "loadgen report incomplete"; cat "$stats"; exit 1; }
grep -q '"cache"' "$stats" || { echo "stats scrape missing from report"; cat "$stats"; exit 1; }
grep -q '"items_per_second"' "$stats" || { echo "batch phase missing from report"; cat "$stats"; exit 1; }
echo "serve-smoke: loadgen + batch + stats scrape ok"

# Capture the warm answer, then drain.
probe1="$workdir/probe1.json"
"$bin" loadgen -addr "$addr" -n 256 -probe >"$probe1"
labels1=$(sed -n 's/^  "labels": "\(.*\)",*$/\1/p' "$probe1")
[ -n "$labels1" ] || { echo "probe returned no labels"; cat "$probe1"; exit 1; }

stop_serve "$log"
echo "serve-smoke: graceful shutdown ok"

# Restart on the same store: the first decode must be served from disk —
# identical labels, zero engine computes.
log2="$workdir/serve2.log"
start_serve "$log2"
echo "serve-smoke: restarted at $addr"

probe2="$workdir/probe2.json"
"$bin" loadgen -addr "$addr" -n 256 -probe >"$probe2"
labels2=$(sed -n 's/^  "labels": "\(.*\)",*$/\1/p' "$probe2")

[ "$labels1" = "$labels2" ] || {
    echo "restarted answer differs from pre-restart answer:"
    echo "before: $labels1"; echo "after:  $labels2"; exit 1
}
grep -q '"engine_computes": 0' "$probe2" || {
    echo "restarted server ran the engine on its first decode:"; cat "$probe2"; exit 1
}
echo "serve-smoke: restart recovery ok (identical labels, engine_computes 0)"

stop_serve "$log2"
echo "serve-smoke: restart graceful shutdown ok"

# --- Cluster smoke: router + 2 shards -----------------------------------
# Start a 2-shard fleet, drive routed load, kill one shard, verify the
# router still answers correctly (degraded: failover, not failure), then
# SIGTERM the whole fleet to a clean exit.
cluster_log="$workdir/cluster.log"
cluster_stats="$workdir/cluster_loadgen.json"
cluster_pid=
"$bin" cluster -addr 127.0.0.1:0 -shards 2 -hot-threshold 4 >"$cluster_log" 2>&1 &
cluster_pid=$!
raddr=
for _ in $(seq 1 100); do
    raddr=$(sed -n 's/^locad cluster: router listening on //p' "$cluster_log")
    [ -n "$raddr" ] && break
    kill -0 "$cluster_pid" 2>/dev/null || { echo "cluster died early:"; cat "$cluster_log"; exit 1; }
    sleep 0.1
done
[ -n "$raddr" ] || { echo "cluster never reported its router address:"; cat "$cluster_log"; exit 1; }
shard0_pid=$(sed -n 's/^locad cluster: shard0 pid \([0-9]*\) at .*/\1/p' "$cluster_log")
[ -n "$shard0_pid" ] || { echo "no shard0 pid line:"; cat "$cluster_log"; exit 1; }
echo "serve-smoke: cluster router at $raddr (shard0 pid $shard0_pid)"

# Routed cold/warm load through the router.
"$bin" loadgen -addr "$raddr" -n 128 -duration "$duration" -json >"$cluster_stats"
grep -q '"warm_over_cold_rps"' "$cluster_stats" || {
    echo "routed loadgen report incomplete"; cat "$cluster_stats"; exit 1; }
echo "serve-smoke: routed loadgen ok"

# Healthy-fleet answer for the degradation comparison.
cprobe1="$workdir/cluster_probe1.json"
"$bin" loadgen -addr "$raddr" -n 128 -probe >"$cprobe1"
clabels1=$(sed -n 's/^  "labels": "\(.*\)",*$/\1/p' "$cprobe1")
[ -n "$clabels1" ] || { echo "routed probe returned no labels"; cat "$cprobe1"; exit 1; }

# Kill one shard outright; the router must route around it. Give the
# health loop (1s period) a tick to notice before scraping the fleet view.
kill -KILL "$shard0_pid"
sleep 1.5
cprobe2="$workdir/cluster_probe2.json"
"$bin" loadgen -addr "$raddr" -n 128 -probe >"$cprobe2"
clabels2=$(sed -n 's/^  "labels": "\(.*\)",*$/\1/p' "$cprobe2")
[ "$clabels1" = "$clabels2" ] || {
    echo "degraded cluster answer differs:"
    echo "before: $clabels1"; echo "after:  $clabels2"; exit 1
}
grep -q '"healthy_shards": 1' "$cprobe2" || {
    echo "router stats never marked the killed shard unhealthy:"; cat "$cprobe2"; exit 1
}
echo "serve-smoke: degraded-but-correct ok (shard killed, identical labels)"

kill -TERM "$cluster_pid"
rc=0
wait "$cluster_pid" || rc=$?
cluster_pid=
if [ "$rc" -ne 0 ]; then
    echo "cluster exited $rc on SIGTERM:"; cat "$cluster_log"; exit 1
fi
grep -q 'shutting down' "$cluster_log" || { echo "no cluster shutdown line:"; cat "$cluster_log"; exit 1; }
echo "serve-smoke: cluster graceful shutdown ok"
