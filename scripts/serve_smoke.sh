#!/bin/sh
# Serving-layer smoke test: start `locad serve` on an ephemeral port, drive
# it with a short cold/warm loadgen phase, scrape /v1/stats, and verify that
# SIGTERM drains to a clean (exit 0) shutdown. Everything goes through the
# locad binary itself — no curl or other HTTP client is needed.
#
# Usage: scripts/serve_smoke.sh [phase-duration]
set -eu

duration=${1:-2s}

workdir=$(mktemp -d)
log="$workdir/serve.log"
stats="$workdir/loadgen.json"
bin="$workdir/locad"
serve_pid=

cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

go build -o "$bin" ./cmd/locad

"$bin" serve -addr 127.0.0.1:0 >"$log" 2>&1 &
serve_pid=$!

# The server prints "locad serve: listening on <addr>" once bound.
addr=
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^locad serve: listening on //p' "$log")
    [ -n "$addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "serve died early:"; cat "$log"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { echo "serve never reported its address:"; cat "$log"; exit 1; }
echo "serve-smoke: server at $addr"

# Cold + warm load phases; -json embeds a /v1/stats scrape under "stats".
"$bin" loadgen -addr "$addr" -n 256 -duration "$duration" -json >"$stats"

grep -q '"warm_over_cold_rps"' "$stats" || { echo "loadgen report incomplete"; cat "$stats"; exit 1; }
grep -q '"cache"' "$stats" || { echo "stats scrape missing from report"; cat "$stats"; exit 1; }
echo "serve-smoke: loadgen + stats scrape ok"

# Graceful shutdown: SIGTERM must drain to exit 0.
kill -TERM "$serve_pid"
rc=0
wait "$serve_pid" || rc=$?
serve_pid=
if [ "$rc" -ne 0 ]; then
    echo "serve exited $rc on SIGTERM:"; cat "$log"; exit 1
fi
grep -q 'shutting down' "$log" || { echo "no shutdown log line:"; cat "$log"; exit 1; }
echo "serve-smoke: graceful shutdown ok"
