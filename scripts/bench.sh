#!/bin/sh
# Run the repo benchmark suite and record the results as JSON.
#
# Usage: scripts/bench.sh [outfile] [bench-regex]
#
# Produces a JSON file (default BENCH_<date>.json) with one record per
# benchmark: name, iterations, ns/op, and the allocation columns when the
# benchmark reports them. Raw `go test -bench` output is kept alongside the
# parsed records so nothing is lost to parsing.
set -eu

out=${1:-BENCH_$(date +%F).json}
pattern=${2:-.}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"

awk -v date="$(date +%F)" '
BEGIN { n = 0 }
/^cpu: /  { cpu = substr($0, 6) }
/^Benchmark/ {
    name = $1; iters = $2; ns = $3
    bpo = ""; apo = ""
    for (i = 4; i <= NF; i++) {
        if ($(i) == "B/op")      bpo = $(i - 1)
        if ($(i) == "allocs/op") apo = $(i - 1)
    }
    rec = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns)
    if (bpo != "") rec = rec sprintf(", \"bytes_per_op\": %s", bpo)
    if (apo != "") rec = rec sprintf(", \"allocs_per_op\": %s", apo)
    rec = rec "}"
    recs[n++] = rec
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"cpu\": \"%s\",\n  \"benchmarks\": [\n", date, cpu
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out"
