#!/bin/sh
# Run the repo benchmark suite and record the results as JSON.
#
# Usage: scripts/bench.sh [outfile] [bench-regex]
#
# Produces a JSON file (default BENCH_<date>.json) with one record per
# benchmark: name, iterations, ns/op, the allocation columns when the
# benchmark reports them, and any custom metrics emitted via b.ReportMetric
# (the message-engine benchmarks report rounds/s; the Moser–Tardos
# benchmarks report resamplings/s). Raw `go test -bench` output is kept
# alongside the parsed records so nothing is lost to parsing.
#
# The report also embeds `locad exp -summary` output under the
# "experiments" key: real per-experiment engine metrics (rounds, messages,
# bytes, round-latency percentiles, allocator deltas) from the internal/obs
# instrumentation layer, collected from an observed sequential run.
#
# `make bench` runs the full sweep; `make bench-msg` restricts the regex to
# the message-engine and LLL benchmarks for quick perf iteration.
set -eu

out=${1:-BENCH_$(date +%F).json}
pattern=${2:-.}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"

# Wall time of the race-enabled engine-equivalence + fault property tests:
# the race detector multiplies the cost of the parallel engines' memory
# traffic, so this number regresses when a change adds synchronization or
# sharing to the hot paths even if the benchmarks above stay flat.
race_start=$(date +%s)
go test -race -count=1 -run 'Equivalence|Matches|WorkerCount|Crash|Fault|Normalize' \
    ./internal/local ./internal/fault >/dev/null
race_seconds=$(( $(date +%s) - race_start ))
echo "race-enabled equivalence tests: ${race_seconds}s"

# Observed experiment run: per-experiment engine metrics via internal/obs.
exp_json=$(mktemp)
trap 'rm -f "$raw" "$exp_json"' EXIT
go run ./cmd/locad exp -summary "$exp_json" >/dev/null
echo "observed experiment metrics collected"

awk -v date="$(date +%F)" -v race_seconds="$race_seconds" -v expfile="$exp_json" '
BEGIN { n = 0 }
/^cpu: /  { cpu = substr($0, 6) }
/^Benchmark/ {
    name = $1; iters = $2
    rec = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    # Past the name and iteration count, a bench line is value/unit pairs:
    # "123 ns/op 456 B/op 7 allocs/op 89 rounds/s ...".
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $(i); unit = $(i + 1)
        if (unit == "ns/op")           key = "ns_per_op"
        else if (unit == "B/op")       key = "bytes_per_op"
        else if (unit == "allocs/op")  key = "allocs_per_op"
        else { key = unit; gsub(/[^A-Za-z0-9]+/, "_", key) }
        rec = rec sprintf(", \"%s\": %s", key, val)
    }
    rec = rec "}"
    recs[n++] = rec
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"cpu\": \"%s\",\n  \"race_equivalence_seconds\": %s,\n", date, cpu, race_seconds
    ne = 0
    while ((getline line < expfile) > 0) explines[ne++] = line
    if (ne > 0) {
        printf "  \"experiments\": %s\n", explines[0]
        for (i = 1; i < ne - 1; i++) printf "  %s\n", explines[i]
        printf "  %s,\n", explines[ne - 1]
    }
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out"
