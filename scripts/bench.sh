#!/bin/sh
# Run the repo benchmark suite and record the results as JSON.
#
# Usage: scripts/bench.sh [outfile] [bench-regex]
#
# Produces a JSON file (default BENCH_<date>.json) with one record per
# benchmark: name, iterations, ns/op, the allocation columns when the
# benchmark reports them, and any custom metrics emitted via b.ReportMetric
# (the message-engine benchmarks report rounds/s; the Moser–Tardos
# benchmarks report resamplings/s). Raw `go test -bench` output is kept
# alongside the parsed records so nothing is lost to parsing.
#
# The report also embeds `locad exp -summary` output under the
# "experiments" key: real per-experiment engine metrics (rounds, messages,
# bytes, round-latency percentiles, allocator deltas) from the internal/obs
# instrumentation layer, collected from an observed sequential run.
#
# A serving-layer section lands under the "serve" key: `locad serve` is
# started on an ephemeral port with a persistent artifact store and driven
# by `locad loadgen` through a cold (cache-bypass) phase, a warm phase, and
# a binary /v1/batch phase on the E2 cycle workload, recording req/s and
# latency percentiles per phase, the warm/cold throughput ratio, per-item
# batch throughput, and a /v1/stats scrape (cache hit rates, per-endpoint
# latencies, store counters). The server is then SIGTERMed and restarted on
# the same store; "serve".restart records the first post-restart decode and
# a cache-bypassing recompute — both the whole-request latencies and the
# artifact-level split (store load_nanos vs engine_compute_nanos), whose
# ratio is the cold-start-recovery speedup of the persistent store.
#
# A "cluster" section records the digest-routed shard fleet: `locad
# loadgen -cluster` spawns a router + N shard processes per point
# (N = 1,2,4,8), measures routed cold/warm throughput, and embeds the
# router's stats scrape (forwards, replica hits, failovers, per-shard
# ownership counts). The section records the host CPU count so the
# regression gate can tell a true scaling regression from a host that
# simply lacks the cores (DESIGN.md decision 9).
#
# A "msgred" section records `locad msgred -graph grid -n 4096 -json`: the
# frugal engine's skeleton-simulation message/byte reduction and round
# overhead against the stock scheduler on the saturating grid flood, which
# the regression gate holds to a ≥3x message floor at ≤2x rounds.
#
# A "decomp" section records `locad decomp -sched -json`: scheduler
# rounds/s with contiguous index shards vs the low-diameter decomposition's
# low-cut ball shards on 4096-node grid/torus/gnp graphs at 2/4/8 workers.
# The gate always requires bit-identical outputs between the shardings and
# structurally valid decompositions; the ≥1.0x locality speedup floor binds
# only when the recording host has >= 4 CPUs (DESIGN.md decision 9).
#
# A "detlll" section records `locad detlll -json`: the three LLL resolution
# methods (seeded Moser–Tardos vs the deterministic conditional-expectations
# and decomposition-guided solvers) compared on solver work and
# seed-independence, plus the serving layer's warm cache hit rate under
# rotating request seeds for the det-mode vs the seeded schema entries. The
# gate requires zero resamplings and exactly one distinct advice output on
# the det paths, and a det warm hit rate strictly above the seeded one.
#
# `make bench` runs the full sweep; `make bench-msg` restricts the regex to
# the message-engine and LLL benchmarks for quick perf iteration.
set -eu

out=${1:-BENCH_$(date +%F).json}
pattern=${2:-.}

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" -benchmem . | tee "$raw"

# Wall time of the race-enabled engine-equivalence + fault property tests:
# the race detector multiplies the cost of the parallel engines' memory
# traffic, so this number regresses when a change adds synchronization or
# sharing to the hot paths even if the benchmarks above stay flat.
race_start=$(date +%s)
go test -race -count=1 -run 'Equivalence|Matches|WorkerCount|Crash|Fault|Normalize|Decomp|Partition' \
    ./internal/local ./internal/fault ./internal/decomp >/dev/null
race_seconds=$(( $(date +%s) - race_start ))
echo "race-enabled equivalence tests: ${race_seconds}s"

# Observed experiment run: per-experiment engine metrics via internal/obs.
exp_json=$(mktemp)
trap 'rm -f "$raw" "$exp_json"' EXIT
go run ./cmd/locad exp -summary "$exp_json" >/dev/null
echo "observed experiment metrics collected"

# Serving-layer benchmark: cold vs warm /v1/decode throughput plus binary
# /v1/batch throughput on the E2 cycle workload (MIS on a 256-cycle,
# table-compiled decoder), via a real server on an ephemeral port backed by
# a persistent artifact store.
workdir=$(mktemp -d)
serve_json="$workdir/serve.json"
restart_json="$workdir/restart.json"
serve_log="$workdir/serve.log"
store_dir="$workdir/store"
locad_bin="$workdir/locad"
serve_pid=
trap 'rm -f "$raw" "$exp_json"; [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null; rm -rf "$workdir"' EXIT
go build -o "$locad_bin" ./cmd/locad

# start_serve <logfile>: serve on an ephemeral port over the shared store.
start_serve() {
    "$locad_bin" serve -addr 127.0.0.1:0 -store-dir "$store_dir" >"$1" 2>&1 &
    serve_pid=$!
    addr=
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^locad serve: listening on //p' "$1")
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "locad serve did not start"; cat "$1"; exit 1; }
}

start_serve "$serve_log"
"$locad_bin" loadgen -addr "$addr" -schema mis -graph cycle -n 256 -duration 2s -batch -json >"$serve_json"
kill -TERM "$serve_pid" && wait "$serve_pid"
serve_pid=
echo "serving-layer cold/warm/batch loadgen collected"

# Restart recovery: relaunch on the now-warm store and price the first
# decode (disk load) against a full cache-bypassing recompute.
serve_log2="$workdir/serve2.log"
start_serve "$serve_log2"
"$locad_bin" loadgen -addr "$addr" -schema mis -graph cycle -n 256 -probe -probe-cold >"$restart_json"
kill -TERM "$serve_pid" && wait "$serve_pid"
serve_pid=
echo "serving-layer restart-recovery probe collected"

# Cluster sweep: routed cold/warm throughput at 1/2/4/8 shards via the
# digest-routed shard fleet (router + shard child processes per point),
# with the router stats scrape (forwards, replica hits, failovers) embedded
# per point. The report records the host's CPU count — the regression
# gate's scaling floor is hardware-aware (DESIGN.md decision 9).
cluster_json="$workdir/cluster.json"
"$locad_bin" loadgen -cluster -cluster-shards 1,2,4,8 -schema mis -graph cycle -n 256 \
    -duration 2s -json >"$cluster_json"
echo "cluster shard sweep collected"

# Message-reduction comparison: the frugal engine's skeleton simulation vs
# the stock scheduler on the saturating 4096-node grid flood. The report
# lands under the "msgred" key and the regression gate enforces the ≥3x
# message-reduction floor at ≤2x rounds.
msgred_json="$workdir/msgred.json"
"$locad_bin" msgred -graph grid -n 4096 -json >"$msgred_json"
echo "frugal-engine message-reduction comparison collected"

# Scheduler-sharding comparison: contiguous index shards vs the low-diameter
# decomposition's low-cut ball shards on the flood workload. Lands under the
# "decomp" key; the gate checks output identity always and the locality
# speedup only on hosts with enough cores.
decomp_json="$workdir/decomp.json"
"$locad_bin" decomp -sched -graphs grid,torus,gnp -n 4096 -beta 0.1 \
    -sched-workers 2,4,8 -reps 3 -json >"$decomp_json"
echo "scheduler-sharding decomposition comparison collected"

# Deterministic-LLL comparison: Moser–Tardos vs the conditional-expectations
# solvers on the 1024-cycle, with the rotating-seed warm-hit probe of the
# det-mode server schemas. Lands under the "detlll" key.
detlll_json="$workdir/detlll.json"
"$locad_bin" detlll -graph cycle -n 1024 -seeds 5 -json >"$detlll_json"
echo "deterministic-LLL comparison collected"

# Splice the restart probe into the serve report as its "restart" key,
# preserving the first-line-"{" / last-line-"}" shape embed() expects.
merged="$workdir/serve_merged.json"
{
    sed '$ d' "$serve_json"
    printf '  ,"restart":\n'
    cat "$restart_json"
    printf '}\n'
} > "$merged"
serve_json="$merged"

awk -v date="$(date +%F)" -v race_seconds="$race_seconds" -v expfile="$exp_json" -v servefile="$serve_json" -v clusterfile="$cluster_json" -v msgredfile="$msgred_json" -v decompfile="$decomp_json" -v detlllfile="$detlll_json" '
BEGIN { n = 0 }
/^cpu: /  { cpu = substr($0, 6) }
/^Benchmark/ {
    name = $1; iters = $2
    rec = sprintf("    {\"name\": \"%s\", \"iterations\": %s", name, iters)
    # Past the name and iteration count, a bench line is value/unit pairs:
    # "123 ns/op 456 B/op 7 allocs/op 89 rounds/s ...".
    for (i = 3; i + 1 <= NF; i += 2) {
        val = $(i); unit = $(i + 1)
        if (unit == "ns/op")           key = "ns_per_op"
        else if (unit == "B/op")       key = "bytes_per_op"
        else if (unit == "allocs/op")  key = "allocs_per_op"
        else { key = unit; gsub(/[^A-Za-z0-9]+/, "_", key) }
        rec = rec sprintf(", \"%s\": %s", key, val)
    }
    rec = rec "}"
    recs[n++] = rec
}
# embed splices a multi-line JSON file (first line "{", last line "}")
# into the report as the value of key, followed by a comma.
function embed(file, key,    m, emblines, i) {
    m = 0
    while ((getline line < file) > 0) emblines[m++] = line
    if (m > 0) {
        printf "  \"%s\": %s\n", key, emblines[0]
        for (i = 1; i < m - 1; i++) printf "  %s\n", emblines[i]
        printf "  %s,\n", emblines[m - 1]
    }
}
END {
    printf "{\n  \"date\": \"%s\",\n  \"cpu\": \"%s\",\n  \"race_equivalence_seconds\": %s,\n", date, cpu, race_seconds
    embed(expfile, "experiments")
    embed(servefile, "serve")
    embed(clusterfile, "cluster")
    embed(msgredfile, "msgred")
    embed(decompfile, "decomp")
    embed(detlllfile, "detlll")
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++) printf "%s%s\n", recs[i], (i < n - 1 ? "," : "")
    printf "  ]\n}\n"
}
' "$raw" > "$out"

echo "wrote $out"
