package lll

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"localadvice/internal/obs"
)

// assertBadFree fails unless every event of in is satisfied under a — the
// naive full-recheck reference: no incidence structure, no incremental
// bookkeeping, just Bad(e, a) for every event.
func assertBadFree(t *testing.T, in *Instance, a []int) {
	t.Helper()
	for e := 0; e < in.NumEvents; e++ {
		if in.Bad(e, a) {
			t.Fatalf("event %d violated under %v", e, a)
		}
	}
}

// TestDeterministicBadFreeOnKSAT is the core derandomization property: on
// random k-SAT instances satisfying the symmetric LLL condition, the
// conditional-expectations walk (plus repair) produces an assignment under
// which the naive full recheck finds no violated event — the same guarantee
// the Moser–Tardos reference provides, with zero resamplings.
func TestDeterministicBadFreeOnKSAT(t *testing.T) {
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(100 + trial)))
		in, _, _ := kSATInstance(40, 30, 7, rng)
		res, err := SolveDeterministic(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertBadFree(t, in, res.Assignment)
		if res.Resamplings != 0 {
			t.Fatalf("trial %d: deterministic path reported %d resamplings", trial, res.Resamplings)
		}

		// The Moser–Tardos reference solves the same instance; both outputs
		// are valid, only the deterministic one is seed-free.
		mt, err := Solve(in, rand.New(rand.NewSource(int64(trial))), 1<<20)
		if err != nil {
			t.Fatalf("trial %d: MT reference: %v", trial, err)
		}
		assertBadFree(t, in, mt.Assignment)
	}
}

// TestDeterministicIsDeterministic pins bit-identical output across repeated
// runs — the property the seed-independence wall depends on.
func TestDeterministicIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in, _, _ := kSATInstance(30, 24, 6, rng)
	first, err := SolveDeterministic(in)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := SolveDeterministic(in)
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(again.Assignment) != fmt.Sprint(first.Assignment) {
			t.Fatalf("run %d diverged: %v vs %v", i, again.Assignment, first.Assignment)
		}
		if again.Evaluations != first.Evaluations {
			t.Fatalf("run %d evaluation count diverged: %d vs %d", i, again.Evaluations, first.Evaluations)
		}
	}
}

// TestDecomposedBadFreeAndDeterministic pins the decomposition-guided
// variant: always Bad-free, always identical across runs, and identical to
// itself under an installed collector (the metrics must not perturb the
// walk). SolveDecomposed may legitimately fix variables in a different
// order than SolveDeterministic, so the two paths are each pinned
// individually rather than against each other.
func TestDecomposedBadFreeAndDeterministic(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(300 + trial)))
		in, _, _ := kSATInstance(36, 28, 7, rng)
		res, err := SolveDecomposed(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		assertBadFree(t, in, res.Assignment)
		c := &obs.Collector{}
		again, err := SolveDecomposedObserved(in, c)
		if err != nil {
			t.Fatalf("trial %d observed: %v", trial, err)
		}
		if fmt.Sprint(again.Assignment) != fmt.Sprint(res.Assignment) {
			t.Fatalf("trial %d: observed run diverged", trial)
		}
		var balls int64
		for _, e := range c.Events() {
			if e.Kind == "lll.balls" {
				balls += e.Value
			}
		}
		if in.NumEvents > 0 && balls < 1 {
			t.Fatalf("trial %d: decomposed run reported %d balls", trial, balls)
		}
	}
}

// TestDeterministicEventFreeVars pins the degenerate corners: variables with
// no incident events take value 0, and an instance with no events at all is
// the all-zero assignment.
func TestDeterministicEventFreeVars(t *testing.T) {
	in := &Instance{
		NumVars:    4,
		DomainSize: func(int) int { return 3 },
		NumEvents:  0,
		Vars:       func(int) []int { return nil },
		Bad:        func(int, []int) bool { return false },
	}
	for _, solve := range []func(*Instance) (Result, error){SolveDeterministic, SolveDecomposed} {
		res, err := solve(in)
		if err != nil {
			t.Fatal(err)
		}
		for v, x := range res.Assignment {
			if x != 0 {
				t.Errorf("event-free var %d = %d, want 0", v, x)
			}
		}
	}
}

// TestDeterministicRepairRuns forces the walk into a residual violation the
// repair pass must clean up: two "not all equal" events over three binary
// variables each, arranged so the union bound cannot see the conflict until
// late. The exact construction matters less than the postcondition — the
// result is Bad-free and the repair counter is consistent.
func TestDeterministicRepairRuns(t *testing.T) {
	// Event e is bad iff its three variables are all equal. CE fixes vars in
	// order; all-zero prefixes look fine until the last variable of an event
	// forces a choice.
	events := [][]int{{0, 1, 2}, {2, 3, 4}, {4, 5, 0}}
	in := &Instance{
		NumVars:    6,
		DomainSize: func(int) int { return 2 },
		NumEvents:  len(events),
		Vars:       func(e int) []int { return events[e] },
		Bad: func(e int, a []int) bool {
			v := events[e]
			return a[v[0]] == a[v[1]] && a[v[1]] == a[v[2]]
		},
	}
	res, err := SolveDeterministic(in)
	if err != nil {
		t.Fatal(err)
	}
	assertBadFree(t, in, res.Assignment)
	if res.Repairs < 0 {
		t.Fatalf("negative repair count %d", res.Repairs)
	}
}

// TestRepairStallTyped pins the typed stall error on a locally stuck
// instance: two events over one variable demanding opposite values. No
// single-event joint move can strictly decrease the violated count, so the
// solver must fail with ErrRepairStall — never loop, never return an
// invalid assignment.
func TestRepairStallTyped(t *testing.T) {
	in := &Instance{
		NumVars:    1,
		DomainSize: func(int) int { return 2 },
		NumEvents:  2,
		Vars:       func(int) []int { return []int{0} },
		Bad: func(e int, a []int) bool {
			if e == 0 {
				return a[0] != 0
			}
			return a[0] != 1
		},
	}
	for _, solve := range []func(*Instance) (Result, error){SolveDeterministic, SolveDecomposed} {
		_, err := solve(in)
		if !errors.Is(err, ErrRepairStall) {
			t.Fatalf("err = %v, want ErrRepairStall", err)
		}
	}
}

// TestEstimatorBudgetTyped pins the typed budget error: one event over 18
// binary variables leaves 2^17 completions free even after the first
// variable is fixed, past the 2^16 budget.
func TestEstimatorBudgetTyped(t *testing.T) {
	vars := make([]int, 18)
	for i := range vars {
		vars[i] = i
	}
	in := &Instance{
		NumVars:    18,
		DomainSize: func(int) int { return 2 },
		NumEvents:  1,
		Vars:       func(int) []int { return vars },
		Bad:        func(int, []int) bool { return false },
	}
	_, err := SolveDeterministic(in)
	if !errors.Is(err, ErrEstimatorBudget) {
		t.Fatalf("err = %v, want ErrEstimatorBudget", err)
	}
}

// TestResamplingCapTyped is the typed-cap table test: the randomized solver
// must return a ResamplingCapError that errors.Is-matches the sentinel and
// errors.As-exposes the stuck event and the resampling count, with a
// human-readable one-line message (the `locad detlll -cap` surface).
func TestResamplingCapTyped(t *testing.T) {
	alwaysBad := &Instance{
		NumVars:    2,
		DomainSize: func(int) int { return 2 },
		NumEvents:  3,
		Vars:       func(e int) []int { return []int{e % 2} },
		Bad:        func(int, []int) bool { return true },
	}
	tests := []struct {
		name string
		in   *Instance
		cap  int
	}{
		{"cap 1", alwaysBad, 1},
		{"cap 5", alwaysBad, 5},
		{"cap 50", alwaysBad, 50},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Solve(tt.in, rand.New(rand.NewSource(9)), tt.cap)
			if err == nil {
				t.Fatal("always-bad instance solved")
			}
			if !errors.Is(err, ErrResamplingCap) {
				t.Fatalf("errors.Is(err, ErrResamplingCap) = false for %v", err)
			}
			var capErr *ResamplingCapError
			if !errors.As(err, &capErr) {
				t.Fatalf("errors.As failed for %v", err)
			}
			if capErr.Resamplings != tt.cap {
				t.Errorf("Resamplings = %d, want the cap %d", capErr.Resamplings, tt.cap)
			}
			if capErr.Event < 0 || capErr.Event >= tt.in.NumEvents {
				t.Errorf("Event = %d out of range", capErr.Event)
			}
			if capErr.Violated < 1 || capErr.Violated > tt.in.NumEvents {
				t.Errorf("Violated = %d out of range", capErr.Violated)
			}
			msg := err.Error()
			for _, frag := range []string{"resampling", "violated"} {
				if !contains(msg, frag) {
					t.Errorf("message %q lacks %q", msg, frag)
				}
			}
		})
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// TestDeterministicValidatesInstance pins that the det paths run the same
// Instance validation as Solve.
func TestDeterministicValidatesInstance(t *testing.T) {
	bad := &Instance{NumVars: 1}
	if _, err := SolveDeterministic(bad); err == nil {
		t.Error("nil-callback instance accepted by SolveDeterministic")
	}
	if _, err := SolveDecomposed(bad); err == nil {
		t.Error("nil-callback instance accepted by SolveDecomposed")
	}
}

// TestDeterministicObservedMetrics pins the observed variants' event kinds
// and that evaluation counts match the Result.
func TestDeterministicObservedMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	in, _, _ := kSATInstance(24, 18, 6, rng)
	c := &obs.Collector{}
	res, err := SolveDeterministicObserved(in, c)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, e := range c.Events() {
		got[e.Kind] += e.Value
	}
	if got["lll.events"] != int64(in.NumEvents) {
		t.Errorf("lll.events = %d, want %d", got["lll.events"], in.NumEvents)
	}
	if got["lll.evaluations"] != int64(res.Evaluations) {
		t.Errorf("lll.evaluations = %d, want %d", got["lll.evaluations"], res.Evaluations)
	}
	if res.Evaluations <= 0 {
		t.Errorf("deterministic run reported %d evaluations", res.Evaluations)
	}
}
