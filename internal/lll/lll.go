// Package lll implements the constructive Lovász Local Lemma via
// Moser–Tardos resampling.
//
// The paper invokes the (existential) LLL twice: in Section 5 to shift the
// marked nodes of the balanced-orientation schema so that bit-holders from
// different cycles stay far apart, and in Section 7 to choose, per ruling-set
// node, the Qr element whose marked sets avoid sharing color-1 neighbors.
// Both proofs only need the existence of an assignment avoiding all bad
// events; this package finds such an assignment constructively. Under the
// symmetric LLL condition e·p·(d+1) <= 1 the Moser–Tardos algorithm
// terminates after an expected number of resamplings linear in the number of
// events, and in practice far below the configured cap.
package lll

import (
	"fmt"
	"math/rand"
)

// Instance describes a constraint-satisfaction instance for Moser–Tardos.
// Variables are indexed 0..NumVars-1; variable i takes values in
// {0, ..., DomainSize(i)-1}. Events are indexed 0..NumEvents-1; event j is
// "bad" for an assignment when Bad(j, assignment) is true, and depends
// exactly on the variables Vars(j).
type Instance struct {
	NumVars    int
	DomainSize func(v int) int
	NumEvents  int
	Vars       func(event int) []int
	Bad        func(event int, assignment []int) bool
}

// validate checks the instance description.
func (in *Instance) validate() error {
	if in.NumVars < 0 || in.NumEvents < 0 {
		return fmt.Errorf("lll: negative sizes")
	}
	if in.DomainSize == nil || in.Vars == nil || in.Bad == nil {
		return fmt.Errorf("lll: nil callback")
	}
	for v := 0; v < in.NumVars; v++ {
		if in.DomainSize(v) < 1 {
			return fmt.Errorf("lll: variable %d has empty domain", v)
		}
	}
	for e := 0; e < in.NumEvents; e++ {
		for _, v := range in.Vars(e) {
			if v < 0 || v >= in.NumVars {
				return fmt.Errorf("lll: event %d references variable %d out of range", e, v)
			}
		}
	}
	return nil
}

// Result reports the outcome of a Solve call.
type Result struct {
	Assignment  []int
	Resamplings int
}

// Solve runs Moser–Tardos resampling: sample every variable uniformly, then
// while some bad event holds, resample the variables of one violated event.
// maxResamplings caps the work; if exceeded, an error is returned (under the
// LLL condition this indicates the cap was far too small or the instance
// violates the condition).
func Solve(in *Instance, rng *rand.Rand, maxResamplings int) (Result, error) {
	if err := in.validate(); err != nil {
		return Result{}, err
	}
	assignment := make([]int, in.NumVars)
	for v := range assignment {
		assignment[v] = rng.Intn(in.DomainSize(v))
	}
	// varToEvents lets us recheck only events touching resampled variables.
	varToEvents := make([][]int, in.NumVars)
	for e := 0; e < in.NumEvents; e++ {
		for _, v := range in.Vars(e) {
			varToEvents[v] = append(varToEvents[v], e)
		}
	}

	violated := make(map[int]bool)
	for e := 0; e < in.NumEvents; e++ {
		if in.Bad(e, assignment) {
			violated[e] = true
		}
	}

	resamplings := 0
	for len(violated) > 0 {
		if resamplings >= maxResamplings {
			return Result{}, fmt.Errorf("lll: exceeded %d resamplings with %d events still violated", maxResamplings, len(violated))
		}
		// Pick any violated event (map iteration order is fine: correctness
		// of Moser-Tardos does not depend on the selection rule).
		var event int
		for e := range violated {
			event = e
			break
		}
		for _, v := range in.Vars(event) {
			assignment[v] = rng.Intn(in.DomainSize(v))
		}
		resamplings++
		// Recheck all events sharing a resampled variable.
		for _, v := range in.Vars(event) {
			for _, e := range varToEvents[v] {
				if in.Bad(e, assignment) {
					violated[e] = true
				} else {
					delete(violated, e)
				}
			}
		}
		// The chosen event itself must be rechecked too (it shares its own
		// variables, so the loop above covered it).
	}
	return Result{Assignment: assignment, Resamplings: resamplings}, nil
}

// SymmetricConditionHolds reports whether e·p·(d+1) <= 1 for the given
// per-event probability bound p and dependency-degree bound d — the
// hypothesis of Lemma 3.1 in the paper (Shearer/Spencer/Erdős–Lovász form).
func SymmetricConditionHolds(p float64, d int) bool {
	const e = 2.718281828459045
	return e*p*float64(d+1) <= 1
}

// DependencyDegree computes the maximum, over events, of the number of other
// events sharing at least one variable — the d of the symmetric LLL.
func DependencyDegree(in *Instance) int {
	varToEvents := make(map[int][]int)
	for e := 0; e < in.NumEvents; e++ {
		for _, v := range in.Vars(e) {
			varToEvents[v] = append(varToEvents[v], e)
		}
	}
	maxDeg := 0
	for e := 0; e < in.NumEvents; e++ {
		nbrs := map[int]bool{}
		for _, v := range in.Vars(e) {
			for _, f := range varToEvents[v] {
				if f != e {
					nbrs[f] = true
				}
			}
		}
		if len(nbrs) > maxDeg {
			maxDeg = len(nbrs)
		}
	}
	return maxDeg
}
