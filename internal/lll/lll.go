// Package lll implements the constructive Lovász Local Lemma via
// Moser–Tardos resampling.
//
// The paper invokes the (existential) LLL twice: in Section 5 to shift the
// marked nodes of the balanced-orientation schema so that bit-holders from
// different cycles stay far apart, and in Section 7 to choose, per ruling-set
// node, the Qr element whose marked sets avoid sharing color-1 neighbors.
// Both proofs only need the existence of an assignment avoiding all bad
// events; this package finds such an assignment constructively. Under the
// symmetric LLL condition e·p·(d+1) <= 1 the Moser–Tardos algorithm
// terminates after an expected number of resamplings linear in the number of
// events, and in practice far below the configured cap.
//
// Solve is deterministic for a fixed seed: the violated event to resample is
// always the one with the lowest index (correctness of Moser–Tardos does not
// depend on the selection rule, so we fix the rule that makes runs
// reproducible and results independent of map iteration order). Violated
// events are tracked by a dense boolean array plus a lazy min-heap of
// candidate indices, and the variable lists of all events are precomputed
// once, so a resampling step costs O(affected events · cost of Bad) with no
// map traffic on the hot path.
package lll

import (
	"errors"
	"fmt"
	"math/rand"

	"localadvice/internal/obs"
)

// ErrResamplingCap tags runs that exhausted their resampling budget. The
// concrete error is a *ResamplingCapError carrying the event that was about
// to be resampled and the count reached, so callers can report the stuck
// point without parsing the message:
//
//	var cap *lll.ResamplingCapError
//	if errors.As(err, &cap) { ... cap.Event, cap.Resamplings ... }
var ErrResamplingCap = errors.New("lll: resampling cap exceeded")

// ResamplingCapError is the typed form of ErrResamplingCap: Solve hit
// maxResamplings while Event was still violated (and about to be resampled
// next), after Resamplings resampling steps with Violated events still bad.
type ResamplingCapError struct {
	Event       int // lowest-indexed violated event at the moment the cap hit
	Resamplings int // resampling steps performed (== the configured cap)
	Violated    int // events still violated
}

func (e *ResamplingCapError) Error() string {
	return fmt.Sprintf("lll: exceeded %d resamplings with %d events still violated (next event %d)",
		e.Resamplings, e.Violated, e.Event)
}

func (e *ResamplingCapError) Unwrap() error { return ErrResamplingCap }

// Instance describes a constraint-satisfaction instance for Moser–Tardos.
// Variables are indexed 0..NumVars-1; variable i takes values in
// {0, ..., DomainSize(i)-1}. Events are indexed 0..NumEvents-1; event j is
// "bad" for an assignment when Bad(j, assignment) is true, and depends
// exactly on the variables Vars(j).
type Instance struct {
	NumVars    int
	DomainSize func(v int) int
	NumEvents  int
	Vars       func(event int) []int
	Bad        func(event int, assignment []int) bool
}

// compiled is the slice-backed form of an Instance: domains and the
// event-variable incidence in CSR layout, so the solver and
// DependencyDegree never call the Vars/DomainSize callbacks on a hot path.
type compiled struct {
	domains []int
	// evVars/evOff: Vars(e) is evVars[evOff[e]:evOff[e+1]], copied verbatim
	// (order and duplicates preserved, so resampling consumes rng draws
	// exactly as a direct Vars(e) loop would).
	evVars []int
	evOff  []int
	// veEvents/veOff: the events touching variable v, in increasing event
	// order (the reverse CSR of evVars).
	veEvents []int
	veOff    []int
}

// compile validates the instance description and precomputes its slice form.
func (in *Instance) compile() (*compiled, error) {
	if in.NumVars < 0 || in.NumEvents < 0 {
		return nil, fmt.Errorf("lll: negative sizes")
	}
	if in.DomainSize == nil || in.Vars == nil || in.Bad == nil {
		return nil, fmt.Errorf("lll: nil callback")
	}
	c := &compiled{
		domains: make([]int, in.NumVars),
		evOff:   make([]int, in.NumEvents+1),
		veOff:   make([]int, in.NumVars+1),
	}
	for v := 0; v < in.NumVars; v++ {
		c.domains[v] = in.DomainSize(v)
		if c.domains[v] < 1 {
			return nil, fmt.Errorf("lll: variable %d has empty domain", v)
		}
	}
	for e := 0; e < in.NumEvents; e++ {
		vars := in.Vars(e)
		for _, v := range vars {
			if v < 0 || v >= in.NumVars {
				return nil, fmt.Errorf("lll: event %d references variable %d out of range", e, v)
			}
			c.veOff[v+1]++
		}
		c.evVars = append(c.evVars, vars...)
		c.evOff[e+1] = len(c.evVars)
	}
	for v := 0; v < in.NumVars; v++ {
		c.veOff[v+1] += c.veOff[v]
	}
	c.veEvents = make([]int, len(c.evVars))
	fill := append([]int(nil), c.veOff[:in.NumVars]...)
	for e := 0; e < in.NumEvents; e++ {
		for _, v := range c.evVars[c.evOff[e]:c.evOff[e+1]] {
			c.veEvents[fill[v]] = e
			fill[v]++
		}
	}
	return c, nil
}

func (c *compiled) vars(e int) []int     { return c.evVars[c.evOff[e]:c.evOff[e+1]] }
func (c *compiled) eventsOf(v int) []int { return c.veEvents[c.veOff[v]:c.veOff[v+1]] }

// Result reports the outcome of a solver call. Resamplings counts
// Moser–Tardos resampling steps (always 0 on the deterministic paths);
// Evaluations counts Bad-predicate calls — the work unit shared by the
// randomized and deterministic solvers, which is what E12 compares;
// Repairs counts the local-search moves of the deterministic paths'
// cleanup pass (always 0 for Solve).
type Result struct {
	Assignment  []int
	Resamplings int
	Evaluations int
	Repairs     int
}

// minHeap is a binary min-heap of event indices with no deduplication; the
// solver skips stale entries on pop (lazy deletion).
type minHeap []int32

func (h *minHeap) push(e int32) {
	*h = append(*h, e)
	s := *h
	for i := len(s) - 1; i > 0; {
		p := (i - 1) / 2
		if s[p] <= s[i] {
			break
		}
		s[p], s[i] = s[i], s[p]
		i = p
	}
}

func (h *minHeap) pop() int32 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	for i := 0; ; {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(s) && s[l] < s[smallest] {
			smallest = l
		}
		if r < len(s) && s[r] < s[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	*h = s
	return top
}

// Solve runs Moser–Tardos resampling: sample every variable uniformly, then
// while some bad event holds, resample the variables of the lowest-indexed
// violated event. For a fixed rng seed the run — assignment, resampling
// count, and the sequence of resampled events — is fully deterministic.
// maxResamplings caps the work; if exceeded, an error is returned (under the
// LLL condition this indicates the cap was far too small or the instance
// violates the condition).
//
// Solve reports into the process-wide metrics collector when one is
// installed (obs.SetDefault); SolveObserved takes an explicit collector.
func Solve(in *Instance, rng *rand.Rand, maxResamplings int) (Result, error) {
	return SolveObserved(in, rng, maxResamplings, obs.Default())
}

// SolveObserved is Solve reporting into the given collector: on success it
// emits "lll.resamplings" (the resampling count — the paper's expected-
// linear work bound, measured), "lll.evaluations" (Bad-predicate calls,
// the work unit shared with the deterministic solvers), "lll.initial_violated"
// (bad events after the initial uniform sample) and "lll.events" (instance
// size). A nil collector records nothing and costs nothing.
func SolveObserved(in *Instance, rng *rand.Rand, maxResamplings int, m *obs.Collector) (Result, error) {
	c, err := in.compile()
	if err != nil {
		return Result{}, err
	}
	assignment := make([]int, in.NumVars)
	for v := range assignment {
		assignment[v] = rng.Intn(c.domains[v])
	}

	// violated[e] is the ground truth; heap holds every violated event at
	// least once (plus possibly stale copies, skipped on pop). A sorted
	// array is a valid binary min-heap, so the initial scan needs no sifting.
	violated := make([]bool, in.NumEvents)
	heap := make(minHeap, 0, in.NumEvents)
	evaluations := 0
	for e := 0; e < in.NumEvents; e++ {
		evaluations++
		if in.Bad(e, assignment) {
			violated[e] = true
			heap = append(heap, int32(e))
		}
	}
	if m.Enabled() {
		m.Emit("lll.events", "", int64(in.NumEvents))
		m.Emit("lll.initial_violated", "", int64(len(heap)))
	}
	// seen stamps deduplicate the neighbor recheck after a resampling (an
	// event sharing several variables with the resampled one is rechecked
	// once, not once per shared variable).
	seen := make([]int, in.NumEvents)
	for i := range seen {
		seen[i] = -1
	}

	resamplings := 0
	for len(heap) > 0 {
		event := int(heap.pop())
		if !violated[event] {
			continue // stale heap entry
		}
		if resamplings >= maxResamplings {
			still := 0
			for _, bad := range violated {
				if bad {
					still++
				}
			}
			return Result{}, &ResamplingCapError{Event: event, Resamplings: resamplings, Violated: still}
		}
		vars := c.vars(event)
		for _, v := range vars {
			assignment[v] = rng.Intn(c.domains[v])
		}
		// The popped entry was consumed, so recompute the event's status
		// from scratch along with its neighbors'.
		violated[event] = false
		resamplings++
		for _, v := range vars {
			for _, e := range c.eventsOf(v) {
				if seen[e] == resamplings {
					continue
				}
				seen[e] = resamplings
				evaluations++
				if in.Bad(e, assignment) {
					if !violated[e] {
						violated[e] = true
						heap.push(int32(e))
					}
				} else {
					violated[e] = false
				}
			}
		}
	}
	if m.Enabled() {
		m.Emit("lll.resamplings", "", int64(resamplings))
		m.Emit("lll.evaluations", "", int64(evaluations))
	}
	return Result{Assignment: assignment, Resamplings: resamplings, Evaluations: evaluations}, nil
}

// SymmetricConditionHolds reports whether e·p·(d+1) <= 1 for the given
// per-event probability bound p and dependency-degree bound d — the
// hypothesis of Lemma 3.1 in the paper (Shearer/Spencer/Erdős–Lovász form).
func SymmetricConditionHolds(p float64, d int) bool {
	const e = 2.718281828459045
	return e*p*float64(d+1) <= 1
}

// DependencyDegree computes the maximum, over events, of the number of other
// events sharing at least one variable — the d of the symmetric LLL. It uses
// the compiled slice-backed incidence with stamp-based deduplication, so the
// cost is linear in the size of the dependency relation.
func DependencyDegree(in *Instance) int {
	c, err := in.compile()
	if err != nil {
		return 0
	}
	seen := make([]int, in.NumEvents)
	for i := range seen {
		seen[i] = -1
	}
	maxDeg := 0
	for e := 0; e < in.NumEvents; e++ {
		deg := 0
		for _, v := range c.vars(e) {
			for _, f := range c.eventsOf(v) {
				if f == e || seen[f] == e {
					continue
				}
				seen[f] = e
				deg++
			}
		}
		if deg > maxDeg {
			maxDeg = deg
		}
	}
	return maxDeg
}
