package lll

import (
	"fmt"
	"math/rand"
	"testing"
)

// kSATInstance builds a random k-SAT instance with n variables and m
// clauses, each clause over k distinct variables with random polarities.
func kSATInstance(n, m, k int, rng *rand.Rand) (*Instance, [][]int, [][]bool) {
	clauseVars := make([][]int, m)
	clauseNeg := make([][]bool, m)
	for c := 0; c < m; c++ {
		perm := rng.Perm(n)[:k]
		neg := make([]bool, k)
		for i := range neg {
			neg[i] = rng.Intn(2) == 0
		}
		clauseVars[c] = perm
		clauseNeg[c] = neg
	}
	in := &Instance{
		NumVars:    n,
		DomainSize: func(int) int { return 2 },
		NumEvents:  m,
		Vars:       func(e int) []int { return clauseVars[e] },
		Bad: func(e int, a []int) bool {
			// Bad = clause unsatisfied: every literal false.
			for i, v := range clauseVars[e] {
				val := a[v] == 1
				if clauseNeg[e][i] {
					val = !val
				}
				if val {
					return false
				}
			}
			return true
		},
	}
	return in, clauseVars, clauseNeg
}

func TestSolveKSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 7-SAT with each variable in few clauses satisfies the LLL condition
	// (p = 2^-7, d small); Moser-Tardos must find a satisfying assignment.
	in, _, _ := kSATInstance(60, 40, 7, rng)
	res, err := Solve(in, rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < in.NumEvents; e++ {
		if in.Bad(e, res.Assignment) {
			t.Fatalf("event %d still bad", e)
		}
	}
}

func TestSolveTrivial(t *testing.T) {
	in := &Instance{
		NumVars:    3,
		DomainSize: func(int) int { return 4 },
		NumEvents:  0,
		Vars:       func(int) []int { return nil },
		Bad:        func(int, []int) bool { return false },
	}
	res, err := Solve(in, rand.New(rand.NewSource(2)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resamplings != 0 {
		t.Errorf("resamplings = %d, want 0", res.Resamplings)
	}
	if len(res.Assignment) != 3 {
		t.Errorf("assignment length %d", len(res.Assignment))
	}
}

func TestSolveUnsatisfiableHitsCap(t *testing.T) {
	// An always-bad event can never be fixed.
	in := &Instance{
		NumVars:    1,
		DomainSize: func(int) int { return 2 },
		NumEvents:  1,
		Vars:       func(int) []int { return []int{0} },
		Bad:        func(int, []int) bool { return true },
	}
	if _, err := Solve(in, rand.New(rand.NewSource(3)), 50); err == nil {
		t.Error("unsatisfiable instance solved")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		in   *Instance
	}{
		{"nil callbacks", &Instance{NumVars: 1}},
		{"empty domain", &Instance{
			NumVars:    1,
			DomainSize: func(int) int { return 0 },
			Vars:       func(int) []int { return nil },
			Bad:        func(int, []int) bool { return false },
		}},
		{"var out of range", &Instance{
			NumVars:    1,
			NumEvents:  1,
			DomainSize: func(int) int { return 2 },
			Vars:       func(int) []int { return []int{5} },
			Bad:        func(int, []int) bool { return false },
		}},
	}
	rng := rand.New(rand.NewSource(4))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Solve(tt.in, rng, 10); err == nil {
				t.Error("invalid instance accepted")
			}
		})
	}
}

func TestSymmetricCondition(t *testing.T) {
	if !SymmetricConditionHolds(0.01, 10) {
		t.Error("e*0.01*11 <= 1 should hold")
	}
	if SymmetricConditionHolds(0.5, 10) {
		t.Error("e*0.5*11 <= 1 should not hold")
	}
}

func TestDependencyDegree(t *testing.T) {
	vars := [][]int{{0, 1}, {1, 2}, {3}}
	in := &Instance{
		NumVars:    4,
		DomainSize: func(int) int { return 2 },
		NumEvents:  3,
		Vars:       func(e int) []int { return vars[e] },
		Bad:        func(int, []int) bool { return false },
	}
	if d := DependencyDegree(in); d != 1 {
		t.Errorf("DependencyDegree = %d, want 1", d)
	}
}

func TestSolveRespectsDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := []int{2, 3, 5}
	in := &Instance{
		NumVars:    3,
		DomainSize: func(v int) int { return sizes[v] },
		NumEvents:  1,
		Vars:       func(int) []int { return []int{0, 1, 2} },
		// Bad unless all distinct-ish: forces some resampling.
		Bad: func(_ int, a []int) bool { return a[0] == 1 && a[1] == 1 },
	}
	res, err := Solve(in, rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range res.Assignment {
		if val < 0 || val >= sizes[v] {
			t.Errorf("variable %d = %d outside domain %d", v, val, sizes[v])
		}
	}
}

// solveNaive is the straight-line reference implementation of the
// lowest-index Moser–Tardos rule: full recheck of every event after each
// resampling, no incremental bookkeeping. It consumes the rng exactly as
// Solve does (initial sample in variable order, resample draws in Vars
// order), so for the same seed it must produce the identical run.
func solveNaive(in *Instance, rng *rand.Rand, maxResamplings int) (Result, error) {
	assignment := make([]int, in.NumVars)
	for v := range assignment {
		assignment[v] = rng.Intn(in.DomainSize(v))
	}
	resamplings := 0
	for {
		event := -1
		for e := 0; e < in.NumEvents; e++ {
			if in.Bad(e, assignment) {
				event = e
				break
			}
		}
		if event == -1 {
			return Result{Assignment: assignment, Resamplings: resamplings}, nil
		}
		if resamplings >= maxResamplings {
			return Result{}, errCapExceeded
		}
		for _, v := range in.Vars(event) {
			assignment[v] = rng.Intn(in.DomainSize(v))
		}
		resamplings++
	}
}

var errCapExceeded = fmt.Errorf("naive: cap exceeded")

// TestSolveDeterministic: same seed ⇒ same assignment and resampling count,
// across instance shapes.
func TestSolveDeterministic(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		base := rand.New(rand.NewSource(seed))
		in, _, _ := kSATInstance(50, 120, 5, base)
		first, err := Solve(in, rand.New(rand.NewSource(seed*3)), 1<<20)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := Solve(in, rand.New(rand.NewSource(seed*3)), 1<<20)
			if err != nil {
				t.Fatalf("seed %d rep %d: %v", seed, rep, err)
			}
			if again.Resamplings != first.Resamplings {
				t.Fatalf("seed %d: resamplings %d then %d", seed, first.Resamplings, again.Resamplings)
			}
			if !slicesEqual(again.Assignment, first.Assignment) {
				t.Fatalf("seed %d: assignments differ between identical runs", seed)
			}
		}
	}
}

// TestSolveMatchesNaiveReference pins the dense violated-set bookkeeping
// (boolean array + lazy min-heap) against the naive full-recheck reference:
// with the same seed, the incremental solver must resample the exact same
// event sequence and land on the identical assignment.
func TestSolveMatchesNaiveReference(t *testing.T) {
	for _, seed := range []int64{2, 11, 23, 31, 53} {
		base := rand.New(rand.NewSource(seed))
		// Dense enough that events overlap and real resampling happens.
		in, _, _ := kSATInstance(40, 90, 4, base)
		fast, fastErr := Solve(in, rand.New(rand.NewSource(seed)), 4000)
		naive, naiveErr := solveNaive(in, rand.New(rand.NewSource(seed)), 4000)
		if (fastErr == nil) != (naiveErr == nil) {
			t.Fatalf("seed %d: fast err %v, naive err %v", seed, fastErr, naiveErr)
		}
		if fastErr != nil {
			continue
		}
		if fast.Resamplings != naive.Resamplings {
			t.Fatalf("seed %d: fast resamplings %d, naive %d", seed, fast.Resamplings, naive.Resamplings)
		}
		if !slicesEqual(fast.Assignment, naive.Assignment) {
			t.Fatalf("seed %d: assignments diverge from the reference", seed)
		}
		if fast.Resamplings == 0 {
			t.Fatalf("seed %d: instance too easy to exercise bookkeeping", seed)
		}
	}
}

// TestDependencyDegreeMatchesNaive pins the slice-backed DependencyDegree
// against a map-based reference on random instances.
func TestDependencyDegreeMatchesNaive(t *testing.T) {
	naive := func(in *Instance) int {
		varToEvents := make(map[int][]int)
		for e := 0; e < in.NumEvents; e++ {
			for _, v := range in.Vars(e) {
				varToEvents[v] = append(varToEvents[v], e)
			}
		}
		maxDeg := 0
		for e := 0; e < in.NumEvents; e++ {
			nbrs := map[int]bool{}
			for _, v := range in.Vars(e) {
				for _, f := range varToEvents[v] {
					if f != e {
						nbrs[f] = true
					}
				}
			}
			if len(nbrs) > maxDeg {
				maxDeg = len(nbrs)
			}
		}
		return maxDeg
	}
	for _, seed := range []int64{3, 13, 29} {
		rng := rand.New(rand.NewSource(seed))
		in, _, _ := kSATInstance(30, 50, 3, rng)
		if got, want := DependencyDegree(in), naive(in); got != want {
			t.Fatalf("seed %d: DependencyDegree = %d, naive = %d", seed, got, want)
		}
	}
}

// TestSolveDuplicateVars checks an event listing the same variable twice:
// the resample must draw twice (rng parity with the Vars contract) and the
// incidence bookkeeping must not double-count the event.
func TestSolveDuplicateVars(t *testing.T) {
	in := &Instance{
		NumVars:    2,
		DomainSize: func(int) int { return 4 },
		NumEvents:  2,
		Vars: func(e int) []int {
			if e == 0 {
				return []int{0, 0}
			}
			return []int{1}
		},
		Bad: func(e int, a []int) bool {
			if e == 0 {
				return a[0] == 0
			}
			return a[1] == 0
		},
	}
	fast, err := Solve(in, rand.New(rand.NewSource(8)), 1000)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := solveNaive(in, rand.New(rand.NewSource(8)), 1000)
	if err != nil {
		t.Fatal(err)
	}
	if fast.Resamplings != naive.Resamplings || !slicesEqual(fast.Assignment, naive.Assignment) {
		t.Fatalf("duplicate-var event diverges: fast %+v, naive %+v", fast, naive)
	}
	if DependencyDegree(in) != 0 {
		t.Fatalf("DependencyDegree = %d, want 0 (events share no variable)", DependencyDegree(in))
	}
}

func slicesEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
