package lll

import (
	"math/rand"
	"testing"
)

// kSATInstance builds a random k-SAT instance with n variables and m
// clauses, each clause over k distinct variables with random polarities.
func kSATInstance(n, m, k int, rng *rand.Rand) (*Instance, [][]int, [][]bool) {
	clauseVars := make([][]int, m)
	clauseNeg := make([][]bool, m)
	for c := 0; c < m; c++ {
		perm := rng.Perm(n)[:k]
		neg := make([]bool, k)
		for i := range neg {
			neg[i] = rng.Intn(2) == 0
		}
		clauseVars[c] = perm
		clauseNeg[c] = neg
	}
	in := &Instance{
		NumVars:    n,
		DomainSize: func(int) int { return 2 },
		NumEvents:  m,
		Vars:       func(e int) []int { return clauseVars[e] },
		Bad: func(e int, a []int) bool {
			// Bad = clause unsatisfied: every literal false.
			for i, v := range clauseVars[e] {
				val := a[v] == 1
				if clauseNeg[e][i] {
					val = !val
				}
				if val {
					return false
				}
			}
			return true
		},
	}
	return in, clauseVars, clauseNeg
}

func TestSolveKSAT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// 7-SAT with each variable in few clauses satisfies the LLL condition
	// (p = 2^-7, d small); Moser-Tardos must find a satisfying assignment.
	in, _, _ := kSATInstance(60, 40, 7, rng)
	res, err := Solve(in, rng, 100000)
	if err != nil {
		t.Fatal(err)
	}
	for e := 0; e < in.NumEvents; e++ {
		if in.Bad(e, res.Assignment) {
			t.Fatalf("event %d still bad", e)
		}
	}
}

func TestSolveTrivial(t *testing.T) {
	in := &Instance{
		NumVars:    3,
		DomainSize: func(int) int { return 4 },
		NumEvents:  0,
		Vars:       func(int) []int { return nil },
		Bad:        func(int, []int) bool { return false },
	}
	res, err := Solve(in, rand.New(rand.NewSource(2)), 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resamplings != 0 {
		t.Errorf("resamplings = %d, want 0", res.Resamplings)
	}
	if len(res.Assignment) != 3 {
		t.Errorf("assignment length %d", len(res.Assignment))
	}
}

func TestSolveUnsatisfiableHitsCap(t *testing.T) {
	// An always-bad event can never be fixed.
	in := &Instance{
		NumVars:    1,
		DomainSize: func(int) int { return 2 },
		NumEvents:  1,
		Vars:       func(int) []int { return []int{0} },
		Bad:        func(int, []int) bool { return true },
	}
	if _, err := Solve(in, rand.New(rand.NewSource(3)), 50); err == nil {
		t.Error("unsatisfiable instance solved")
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name string
		in   *Instance
	}{
		{"nil callbacks", &Instance{NumVars: 1}},
		{"empty domain", &Instance{
			NumVars:    1,
			DomainSize: func(int) int { return 0 },
			Vars:       func(int) []int { return nil },
			Bad:        func(int, []int) bool { return false },
		}},
		{"var out of range", &Instance{
			NumVars:    1,
			NumEvents:  1,
			DomainSize: func(int) int { return 2 },
			Vars:       func(int) []int { return []int{5} },
			Bad:        func(int, []int) bool { return false },
		}},
	}
	rng := rand.New(rand.NewSource(4))
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Solve(tt.in, rng, 10); err == nil {
				t.Error("invalid instance accepted")
			}
		})
	}
}

func TestSymmetricCondition(t *testing.T) {
	if !SymmetricConditionHolds(0.01, 10) {
		t.Error("e*0.01*11 <= 1 should hold")
	}
	if SymmetricConditionHolds(0.5, 10) {
		t.Error("e*0.5*11 <= 1 should not hold")
	}
}

func TestDependencyDegree(t *testing.T) {
	vars := [][]int{{0, 1}, {1, 2}, {3}}
	in := &Instance{
		NumVars:    4,
		DomainSize: func(int) int { return 2 },
		NumEvents:  3,
		Vars:       func(e int) []int { return vars[e] },
		Bad:        func(int, []int) bool { return false },
	}
	if d := DependencyDegree(in); d != 1 {
		t.Errorf("DependencyDegree = %d, want 1", d)
	}
}

func TestSolveRespectsDomains(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sizes := []int{2, 3, 5}
	in := &Instance{
		NumVars:    3,
		DomainSize: func(v int) int { return sizes[v] },
		NumEvents:  1,
		Vars:       func(int) []int { return []int{0, 1, 2} },
		// Bad unless all distinct-ish: forces some resampling.
		Bad: func(_ int, a []int) bool { return a[0] == 1 && a[1] == 1 },
	}
	res, err := Solve(in, rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	for v, val := range res.Assignment {
		if val < 0 || val >= sizes[v] {
			t.Errorf("variable %d = %d outside domain %d", v, val, sizes[v])
		}
	}
}
