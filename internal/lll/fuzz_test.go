package lll

import (
	"errors"
	"fmt"
	"testing"
)

// fuzzInstance decodes an arbitrary byte string into a small CNF-style
// Instance: the first two bytes pick the variable count (1..12) and clause
// count (0..16); each clause then consumes up to 3 (var, sign) byte pairs.
// A clause is Bad when every chosen literal is falsified. Everything is a
// pure function of data, so a crashing input replays exactly.
func fuzzInstance(data []byte) *Instance {
	nVars := 1
	nClauses := 0
	if len(data) > 0 {
		nVars = 1 + int(data[0])%12
	}
	if len(data) > 1 {
		nClauses = int(data[1]) % 16
	}
	type clause struct {
		vars []int
		neg  []bool
	}
	clauses := make([]clause, 0, nClauses)
	pos := 2
	for c := 0; c < nClauses; c++ {
		var cl clause
		for l := 0; l < 3 && pos+1 < len(data); l++ {
			cl.vars = append(cl.vars, int(data[pos])%nVars)
			cl.neg = append(cl.neg, data[pos+1]%2 == 1)
			pos += 2
		}
		if len(cl.vars) == 0 {
			break
		}
		clauses = append(clauses, cl)
	}
	return &Instance{
		NumVars:    nVars,
		DomainSize: func(int) int { return 2 },
		NumEvents:  len(clauses),
		Vars:       func(e int) []int { return clauses[e].vars },
		Bad: func(e int, a []int) bool {
			cl := clauses[e]
			for i, v := range cl.vars {
				val := a[v] == 1
				if cl.neg[i] {
					val = !val
				}
				if val {
					return false
				}
			}
			return true
		},
	}
}

// FuzzSolveDeterministic is the deterministic pipeline's crash wall: for
// every generated instance, SolveDeterministic and SolveDecomposed either
// return an assignment under which the naive full recheck finds no violated
// event, or fail with one of the typed errors (ErrEstimatorBudget,
// ErrRepairStall). They must never panic and never return an untyped error
// on a validated instance.
func FuzzSolveDeterministic(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 1, 0, 0, 1, 1, 2, 0})
	f.Add([]byte{11, 15, 0, 1, 1, 0, 2, 1, 3, 0, 4, 1, 5, 0, 6, 1, 7, 0, 8, 1, 9, 0, 10, 1, 0, 0, 1, 1, 2, 0, 3, 1, 4, 0})
	// Same variable demanded both ways by single-literal clauses: the CE
	// walk cannot satisfy both, so repair must stall with the typed error.
	f.Add([]byte{1, 2, 0, 0, 0, 0, 0, 1, 0, 1})
	f.Add([]byte{12, 16, 0, 0, 11, 1, 5, 0, 5, 1, 3, 0, 7, 1, 2, 0, 9, 1, 4, 0, 6, 1, 8, 0, 10, 1, 1, 0, 0, 1, 11, 0})
	f.Add([]byte{4, 3, 0, 1, 1, 0, 2, 1, 3, 0, 0, 0, 1, 1, 2, 0, 3, 1, 0, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		in := fuzzInstance(data)
		for _, solve := range []struct {
			name string
			fn   func(*Instance) (Result, error)
		}{{"det", SolveDeterministic}, {"decomposed", SolveDecomposed}} {
			res, err := solve.fn(in)
			if err != nil {
				if !errors.Is(err, ErrEstimatorBudget) && !errors.Is(err, ErrRepairStall) {
					t.Fatalf("%s: untyped error: %v", solve.name, err)
				}
				continue
			}
			if len(res.Assignment) != in.NumVars {
				t.Fatalf("%s: assignment length %d, want %d", solve.name, len(res.Assignment), in.NumVars)
			}
			for v, x := range res.Assignment {
				if x < 0 || x >= in.DomainSize(v) {
					t.Fatalf("%s: var %d out of domain: %d", solve.name, v, x)
				}
			}
			for e := 0; e < in.NumEvents; e++ {
				if in.Bad(e, res.Assignment) {
					t.Fatalf("%s: event %d violated", solve.name, e)
				}
			}
			if res.Resamplings != 0 {
				t.Fatalf("%s: deterministic path reported %d resamplings", solve.name, res.Resamplings)
			}
			// Determinism: a second run must reproduce the assignment.
			again, err := solve.fn(in)
			if err != nil {
				t.Fatalf("%s: rerun failed: %v", solve.name, err)
			}
			if fmt.Sprint(again.Assignment) != fmt.Sprint(res.Assignment) {
				t.Fatalf("%s: rerun diverged", solve.name)
			}
		}
	})
}
