package lll

import (
	"errors"
	"fmt"

	"localadvice/internal/decomp"
	"localadvice/internal/obs"
)

// This file implements the derandomized solver paths: the method of
// conditional expectations over the compiled event–variable incidence
// (SolveDeterministic), and a decomposition-guided variant that fixes
// variables ball-by-ball over a low-diameter decomposition of the event
// dependency graph (SolveDecomposed), emulating the round structure of the
// distributed derandomization (PAPERS.md: "Distributed derandomization
// revisited"). Neither path takes an RNG: for a fixed instance the output
// is a pure function of the instance, identical across processes, worker
// counts and — unlike Moser–Tardos — seeds.
//
// The pessimistic estimator is the union bound Φ = Σ_j P(bad_j | prefix),
// with each conditional probability computed exactly by enumerating the
// product of the event's unassigned variable domains (events have small
// arity in every instance the repo builds; enumeration is budgeted and a
// typed error reports instances that exceed it). Fixing each variable to
// the value minimizing Φ never increases it, so after the walk the number
// of violated events is at most the initial expectation. That bound can
// still be ≥ 1, so a deterministic repair pass follows: repeatedly take
// the lowest-indexed violated event and exhaustively re-assign its
// variables to strictly decrease the global violated count, which
// terminates in at most NumEvents moves or fails with a typed error —
// never silently.

// estimatorBudget caps the number of completions enumerated for a single
// conditional-probability or repair computation (the product of the free
// variables' domain sizes). Instances whose events exceed it get
// ErrEstimatorBudget instead of an unbounded enumeration.
const estimatorBudget = 1 << 16

// decomposedBeta and decomposedSeed are the fixed internal parameters of
// SolveDecomposed's event-graph decomposition. They are constants — not
// caller inputs — so the decomposed path stays seed-independent: the
// decomposition is a pure function of the event dependency graph.
const (
	decomposedBeta = 0.2
	decomposedSeed = 0x10cad
)

// ErrEstimatorBudget tags instances whose events have too many unassigned
// variables (or too large domains) for exact conditional-expectation
// enumeration.
var ErrEstimatorBudget = errors.New("lll: estimator enumeration budget exceeded")

// ErrRepairStall tags deterministic runs whose repair pass could not
// strictly decrease the violated-event count — the instance has a locally
// stuck configuration the conditional-expectations walk cannot escape
// (e.g. an unsatisfiable event).
var ErrRepairStall = errors.New("lll: deterministic repair stalled")

// estimator is the working state of the conditional-expectations walk:
// assignment holds -1 for unassigned variables, scratch mirrors assignment
// for assigned variables and holds trial values for the free variables of
// the event currently being enumerated (Bad(e, ·) reads only Vars(e), per
// the Instance contract).
type estimator struct {
	in          *Instance
	c           *compiled
	assignment  []int
	scratch     []int
	stamp       []int // per-event dedup stamps (events can repeat in eventsOf)
	stampGen    int
	freeBuf     []int
	evaluations int
}

func newEstimator(in *Instance, c *compiled) *estimator {
	st := &estimator{
		in:         in,
		c:          c,
		assignment: make([]int, in.NumVars),
		scratch:    make([]int, in.NumVars),
		stamp:      make([]int, in.NumEvents),
	}
	for v := range st.assignment {
		st.assignment[v] = -1
	}
	for e := range st.stamp {
		st.stamp[e] = -1
	}
	return st
}

// freeVars collects the distinct unassigned variables of event e (Vars may
// list a variable more than once) into freeBuf.
func (st *estimator) freeVars(e int) []int {
	free := st.freeBuf[:0]
	for _, v := range st.c.vars(e) {
		if st.assignment[v] != -1 {
			continue
		}
		dup := false
		for _, u := range free {
			if u == v {
				dup = true
				break
			}
		}
		if !dup {
			free = append(free, v)
		}
	}
	st.freeBuf = free
	return free
}

// enumerate runs visit over every completion of the free variables (values
// written into scratch), in odometer order with free[0] fastest — so
// completion 0 is the all-zero assignment and ties resolve toward
// lexicographically smaller values. It returns ErrEstimatorBudget when the
// completion count exceeds the budget.
func (st *estimator) enumerate(free []int, visit func()) error {
	total := 1
	for _, v := range free {
		total *= st.c.domains[v]
		if total > estimatorBudget {
			return fmt.Errorf("%w: %d free variables need more than %d completions",
				ErrEstimatorBudget, len(free), estimatorBudget)
		}
	}
	for idx := 0; idx < total; idx++ {
		rem := idx
		for _, v := range free {
			st.scratch[v] = rem % st.c.domains[v]
			rem /= st.c.domains[v]
		}
		visit()
	}
	return nil
}

// condProb returns P(bad_e | current partial assignment): the fraction of
// completions of e's unassigned variables for which Bad holds.
func (st *estimator) condProb(e int) (float64, error) {
	free := st.freeVars(e)
	if len(free) == 0 {
		st.evaluations++
		if st.in.Bad(e, st.scratch) {
			return 1, nil
		}
		return 0, nil
	}
	bad, total := 0, 0
	err := st.enumerate(free, func() {
		st.evaluations++
		total++
		if st.in.Bad(e, st.scratch) {
			bad++
		}
	})
	if err != nil {
		return 0, err
	}
	return float64(bad) / float64(total), nil
}

// fixVar assigns variable v the domain value minimizing the summed
// conditional probability of its incident events (ties toward the smallest
// value — the deterministic tie-break rule of DESIGN.md decision 12).
// Variables with no incident events take value 0.
func (st *estimator) fixVar(v int) error {
	best, bestScore := 0, -1.0
	for x := 0; x < st.c.domains[v]; x++ {
		st.assignment[v] = x
		st.scratch[v] = x
		score := 0.0
		st.stampGen++
		for _, e := range st.c.eventsOf(v) {
			if st.stamp[e] == st.stampGen {
				continue
			}
			st.stamp[e] = st.stampGen
			p, err := st.condProb(e)
			if err != nil {
				st.assignment[v] = -1
				return err
			}
			score += p
		}
		if bestScore < 0 || score < bestScore {
			best, bestScore = x, score
		}
	}
	st.assignment[v] = best
	st.scratch[v] = best
	return nil
}

// repair is the deterministic cleanup pass: while any event is violated,
// scan the violated events in index order and accept, for the first event
// that admits one, the joint re-assignment of its variables minimizing the
// violated count among the events sharing a variable with it (ties toward
// lexicographically smaller values). Each accepted move strictly decreases
// the global violated count, so the pass performs at most NumEvents
// accepted moves; when no violated event admits a strictly improving move
// the configuration is locally stuck and repair returns ErrRepairStall.
func (st *estimator) repair() (int, error) {
	in := st.in
	violated := make([]bool, in.NumEvents)
	remaining := 0
	for e := 0; e < in.NumEvents; e++ {
		st.evaluations++
		if in.Bad(e, st.scratch) {
			violated[e] = true
			remaining++
		}
	}
	repairs := 0
	for remaining > 0 {
		improved := false
		for event := 0; event < in.NumEvents && remaining > 0; event++ {
			if !violated[event] {
				continue
			}
			ok, err := st.repairMove(event, violated, &remaining)
			if err != nil {
				return repairs, err
			}
			if ok {
				improved = true
				repairs++
			}
		}
		if remaining > 0 && !improved {
			lowest := -1
			for e, bad := range violated {
				if bad {
					lowest = e
					break
				}
			}
			return repairs, fmt.Errorf("%w: no single-event move improves on %d violated events (lowest event %d)",
				ErrRepairStall, remaining, lowest)
		}
	}
	return repairs, nil
}

// repairMove attempts the joint re-assignment of one violated event's
// variables. It accepts (and applies) the move only when the best completion
// strictly decreases the violated count among the affected events, updating
// violated/remaining; otherwise the prior assignment is restored untouched.
func (st *estimator) repairMove(event int, violated []bool, remaining *int) (bool, error) {
	in, c := st.in, st.c
	// The full variable set of the event is re-assigned jointly, so mark
	// them all free for the enumeration.
	vars := c.vars(event)
	saved := make([]int, len(vars))
	for i, v := range vars {
		saved[i] = st.assignment[v]
		st.assignment[v] = -1
	}
	free := st.freeVars(event)
	restore := func() {
		for i, v := range vars {
			st.assignment[v] = saved[i]
			st.scratch[v] = saved[i]
		}
	}
	// affected: the events whose status can change (dedup'd).
	st.stampGen++
	var affected []int
	for _, v := range free {
		for _, e := range c.eventsOf(v) {
			if st.stamp[e] != st.stampGen {
				st.stamp[e] = st.stampGen
				affected = append(affected, e)
			}
		}
	}
	curBad := 0
	for _, e := range affected {
		if violated[e] {
			curBad++
		}
	}
	bestBad := -1
	bestVals := make([]int, len(free))
	err := st.enumerate(free, func() {
		bad := 0
		for _, e := range affected {
			st.evaluations++
			if in.Bad(e, st.scratch) {
				bad++
			}
		}
		if bestBad < 0 || bad < bestBad {
			bestBad = bad
			for i, v := range free {
				bestVals[i] = st.scratch[v]
			}
		}
	})
	if err != nil {
		restore()
		return false, err
	}
	if bestBad >= curBad {
		restore()
		return false, nil
	}
	for i, v := range free {
		st.assignment[v] = bestVals[i]
		st.scratch[v] = bestVals[i]
	}
	for _, e := range affected {
		st.evaluations++
		nowBad := in.Bad(e, st.scratch)
		if nowBad != violated[e] {
			violated[e] = nowBad
			if nowBad {
				*remaining++
			} else {
				*remaining--
			}
		}
	}
	return true, nil
}

// SolveDeterministic derandomizes Solve via the method of conditional
// expectations: variables are fixed in index order, each to the value
// minimizing the union-bound pessimistic estimator Σ_j P(bad_j | prefix)
// over the compiled event–variable incidence, followed by the strictly
// decreasing repair pass. It takes no RNG: the output is a pure function of
// the instance. On success every event satisfies Bad(j, ·) == false.
//
// SolveDeterministic reports into the process-wide collector when one is
// installed; SolveDeterministicObserved takes an explicit collector.
func SolveDeterministic(in *Instance) (Result, error) {
	return SolveDeterministicObserved(in, obs.Default())
}

// SolveDeterministicObserved is SolveDeterministic reporting into the given
// collector: "lll.events" (instance size), "lll.evaluations" (Bad-predicate
// calls — the deterministic path's work measure, comparable to the
// randomized path's evaluations) and "lll.repairs" (cleanup moves after the
// conditional-expectations walk; 0 whenever the walk alone already avoided
// every event).
func SolveDeterministicObserved(in *Instance, m *obs.Collector) (Result, error) {
	c, err := in.compile()
	if err != nil {
		return Result{}, err
	}
	st := newEstimator(in, c)
	for v := 0; v < in.NumVars; v++ {
		if err := st.fixVar(v); err != nil {
			return Result{}, err
		}
	}
	repairs, err := st.repair()
	if err != nil {
		return Result{}, err
	}
	if m.Enabled() {
		m.Emit("lll.events", "", int64(in.NumEvents))
		m.Emit("lll.evaluations", "", int64(st.evaluations))
		m.Emit("lll.repairs", "", int64(repairs))
	}
	return Result{Assignment: st.assignment, Evaluations: st.evaluations, Repairs: repairs}, nil
}

// SolveDecomposed is the decomposition-guided deterministic path: it builds
// the event dependency graph (events adjacent iff they share a variable),
// decomposes it into low-diameter balls with decomp.Decompose under fixed
// internal parameters, and runs the conditional-expectations walk
// ball-by-ball — first the variables all of whose incident events lie in a
// single ball (in ball order, emulating the parallel per-cluster rounds of
// the distributed derandomization), then the cut variables spanning several
// balls in a deterministic second pass, then the same repair pass as
// SolveDeterministic. Like SolveDeterministic it takes no RNG; the two
// paths may fix variables in different orders and so may return different
// (but individually deterministic and always Bad-free) assignments.
func SolveDecomposed(in *Instance) (Result, error) {
	return SolveDecomposedObserved(in, obs.Default())
}

// SolveDecomposedObserved is SolveDecomposed reporting into the given
// collector; beyond the SolveDeterministicObserved metrics it emits
// "lll.balls" (event-graph decomposition balls) and "lll.cut_vars"
// (variables deferred to the second pass).
func SolveDecomposedObserved(in *Instance, m *obs.Collector) (Result, error) {
	c, err := in.compile()
	if err != nil {
		return Result{}, err
	}
	eg, err := decomp.EventGraph(in.NumEvents, in.Vars)
	if err != nil {
		return Result{}, fmt.Errorf("lll: event graph: %w", err)
	}
	st := newEstimator(in, c)
	// varBall[v]: the ball containing every event incident to v, or -1 for
	// cut variables (incident events in several balls) and for variables
	// with no events at all (fixed trivially in the second pass).
	varBall := make([]int32, in.NumVars)
	balls := 0
	cutVars := 0
	if in.NumEvents > 0 {
		dec, err := decomp.Decompose(eg, decomposedBeta, decomposedSeed)
		if err != nil {
			return Result{}, fmt.Errorf("lll: event-graph decomposition: %w", err)
		}
		balls = dec.Balls()
		for v := 0; v < in.NumVars; v++ {
			varBall[v] = -1
			for i, e := range c.eventsOf(v) {
				b := dec.Ball[e]
				if i == 0 {
					varBall[v] = b
				} else if varBall[v] != b {
					varBall[v] = -1
					break
				}
			}
			if varBall[v] == -1 && len(c.eventsOf(v)) > 0 {
				cutVars++
			}
		}
	} else {
		for v := range varBall {
			varBall[v] = -1
		}
	}
	// Pass 1: ball-internal variables, ball by ball (index order within a
	// ball). Pass 2: cut variables and event-free variables, in index order.
	for b := 0; b < balls; b++ {
		for v := 0; v < in.NumVars; v++ {
			if varBall[v] == int32(b) {
				if err := st.fixVar(v); err != nil {
					return Result{}, err
				}
			}
		}
	}
	for v := 0; v < in.NumVars; v++ {
		if st.assignment[v] == -1 {
			if err := st.fixVar(v); err != nil {
				return Result{}, err
			}
		}
	}
	repairs, err := st.repair()
	if err != nil {
		return Result{}, err
	}
	if m.Enabled() {
		m.Emit("lll.events", "", int64(in.NumEvents))
		m.Emit("lll.evaluations", "", int64(st.evaluations))
		m.Emit("lll.repairs", "", int64(repairs))
		m.Emit("lll.balls", "", int64(balls))
		m.Emit("lll.cut_vars", "", int64(cutVars))
	}
	return Result{Assignment: st.assignment, Evaluations: st.evaluations, Repairs: repairs}, nil
}
