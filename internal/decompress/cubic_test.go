package decompress

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
)

func cubicGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(59))
	out := map[string]*graph.Graph{
		"k4":       graph.Complete(4),
		"cube":     graph.Hypercube(3),
		"k33":      graph.CompleteBipartite(3, 3),
		"prism6":   graph.Prism(6),
		"petersen": graph.Petersen(),
	}
	for i := 0; i < 3; i++ {
		g, err := graph.RandomRegular(30+10*i, 3, rng)
		if err != nil {
			t.Fatal(err)
		}
		out["random"+string(rune('0'+i))] = g
	}
	// Two components.
	out["union"] = graph.DisjointUnion(graph.Complete(4), graph.Hypercube(3))
	return out
}

func TestCubicTwoBitRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for name, g := range cubicGraphs(t) {
		for _, density := range []float64{0, 0.5, 1} {
			x := randomSubset(g, density, rng)
			st, err := Measure(CubicTwoBit{}, g, x)
			if err != nil {
				t.Fatalf("%s density %v: %v", name, density, err)
			}
			if !st.Exact {
				t.Errorf("%s density %v: roundtrip not exact", name, density)
			}
			if st.MaxBits != 2 {
				t.Errorf("%s: max bits %d, want exactly 2", name, st.MaxBits)
			}
			if st.AvgBits != 2 {
				t.Errorf("%s: avg bits %v, want exactly 2", name, st.AvgBits)
			}
		}
	}
}

func TestCubicTwoBitBeatsBothBounds(t *testing.T) {
	// 2 bits sits strictly between trivial (3) and the counting bound (1.5).
	rng := rand.New(rand.NewSource(61))
	g, err := graph.RandomRegular(40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSubset(g, 0.5, rng)
	cub, err := Measure(CubicTwoBit{}, g, x)
	if err != nil {
		t.Fatal(err)
	}
	triv, err := Measure(Trivial{}, g, x)
	if err != nil {
		t.Fatal(err)
	}
	if !(cub.AvgBits < triv.AvgBits && cub.AvgBits > cub.LowerBound) {
		t.Errorf("cubic %v not between bound %v and trivial %v", cub.AvgBits, cub.LowerBound, triv.AvgBits)
	}
	// Honest locality accounting: the decoder is global.
	if cub.Rounds < g.Diameter() {
		t.Errorf("cubic codec claims %d rounds below the diameter %d", cub.Rounds, g.Diameter())
	}
}

func TestCubicTwoBitRejectsNonCubic(t *testing.T) {
	if _, err := (CubicTwoBit{}).Encode(graph.Cycle(10), EdgeSet{}); err == nil {
		t.Error("2-regular graph accepted")
	}
	if _, err := (CubicTwoBit{}).Encode(graph.Path(5), EdgeSet{}); err == nil {
		t.Error("path accepted")
	}
}

func TestCubicTwoBitRejectsBadAdvice(t *testing.T) {
	g := graph.Complete(4)
	advice, err := CubicTwoBit{}.Encode(g, EdgeSet{0: true})
	if err != nil {
		t.Fatal(err)
	}
	advice[1] = advice[1].Slice(0, 1)
	if _, _, err := (CubicTwoBit{}).Decode(g, advice); err == nil {
		t.Error("1-bit node advice accepted")
	}
}

func TestCubicPlanDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	g, err := graph.RandomRegular(30, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := buildCubicPlan(g)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := buildCubicPlan(g.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for e := range p1.edgeOwner {
		if p1.edgeOwner[e] != p2.edgeOwner[e] {
			t.Fatal("plan not deterministic")
		}
	}
}

func TestCubicOutdegreeBounds(t *testing.T) {
	for name, g := range cubicGraphs(t) {
		plan, err := buildCubicPlan(g)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		holderSet := map[int]bool{}
		for _, h := range plan.holder {
			holderSet[h] = true
		}
		for v := 0; v < g.N(); v++ {
			limit := 2
			if holderSet[v] {
				limit = 1
			}
			if len(plan.out[v]) > limit {
				t.Errorf("%s: node %d owns %d edges, limit %d (holder=%v)",
					name, v, len(plan.out[v]), limit, holderSet[v])
			}
		}
		// Every non-deleted edge owned exactly once; deleted edges unowned.
		isDeleted := map[int]bool{}
		for _, e := range plan.deleted {
			isDeleted[e] = true
		}
		for e := 0; e < g.M(); e++ {
			if isDeleted[e] != (plan.edgeOwner[e] == -1) {
				t.Errorf("%s: edge %d ownership inconsistent", name, e)
			}
		}
	}
}
