package decompress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localadvice/internal/graph"
	"localadvice/internal/orient"
)

func randomSubset(g *graph.Graph, p float64, rng *rand.Rand) EdgeSet {
	x := make(EdgeSet)
	for e := 0; e < g.M(); e++ {
		if rng.Float64() < p {
			x[e] = true
		}
	}
	return x
}

func codecs() []Codec {
	return []Codec{Trivial{}, NewOriented()}
}

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(55))
	reg6, err := graph.RandomRegular(50, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"cycle80":  graph.Cycle(80),
		"torus6x8": graph.Torus2D(6, 8),
		"6regular": reg6,
		"grid6x9":  graph.Grid2D(6, 9),
		"path30":   graph.Path(30),
	}
}

func TestRoundtripAllCodecs(t *testing.T) {
	rng := rand.New(rand.NewSource(56))
	for name, g := range testGraphs(t) {
		for _, c := range codecs() {
			for _, density := range []float64{0, 0.3, 1} {
				x := randomSubset(g, density, rng)
				st, err := Measure(c, g, x)
				if err != nil {
					t.Fatalf("%s/%s density %v: %v", name, c.Name(), density, err)
				}
				if !st.Exact {
					t.Errorf("%s/%s density %v: decoded set differs", name, c.Name(), density)
				}
			}
		}
	}
}

func TestOrientedBeatsTrivialOnBits(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	g, err := graph.RandomRegular(60, 6, rng)
	if err != nil {
		t.Fatal(err)
	}
	x := randomSubset(g, 0.5, rng)
	// Larger spacing keeps marker placement feasible on this dense graph.
	codec := Oriented{P: orient.Params{MarkSpacing: 20, MarkWindow: 20}}
	triv, err := Measure(Trivial{}, g, x)
	if err != nil {
		t.Fatal(err)
	}
	or, err := Measure(codec, g, x)
	if err != nil {
		t.Fatal(err)
	}
	if or.MaxBits >= triv.MaxBits {
		t.Errorf("oriented max bits %d not below trivial %d", or.MaxBits, triv.MaxBits)
	}
	if or.AvgBits >= triv.AvgBits {
		t.Errorf("oriented avg bits %v not below trivial %v", or.AvgBits, triv.AvgBits)
	}
	// Paper bound: a degree-d node stores at most ⌈d/2⌉+2 bits.
	if or.MaxBits > 6/2+2 {
		t.Errorf("oriented max bits %d exceeds ⌈d/2⌉+2 = 5", or.MaxBits)
	}
	// Information-theoretic lower bound d/2 = m/n must hold for any codec.
	if or.AvgBits < or.LowerBound {
		t.Errorf("avg bits %v below the counting bound %v — accounting bug", or.AvgBits, or.LowerBound)
	}
}

func TestMaxBitsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(58))
	for name, g := range testGraphs(t) {
		x := randomSubset(g, 0.5, rng)
		advice, err := NewOriented().Encode(g, x)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := 0; v < g.N(); v++ {
			if got, bound := advice[v].Len(), NewOriented().MaxBits(g.Degree(v)); got > bound {
				t.Errorf("%s: node %d (degree %d) stores %d bits > bound %d",
					name, v, g.Degree(v), got, bound)
			}
		}
	}
}

func TestDecodeRejectsCorruptAdvice(t *testing.T) {
	g := graph.Cycle(40)
	x := EdgeSet{0: true}
	advice, err := NewOriented().Encode(g, x)
	if err != nil {
		t.Fatal(err)
	}
	// Truncate one node's string below the header.
	advice[5] = advice[5].Slice(0, 0)
	if _, _, err := NewOriented().Decode(g, advice); err == nil {
		t.Error("empty node string accepted")
	}
}

func TestTrivialRejectsWrongLengths(t *testing.T) {
	g := graph.Cycle(6)
	advice, err := Trivial{}.Encode(g, EdgeSet{})
	if err != nil {
		t.Fatal(err)
	}
	advice[0] = advice[0].Append(1)
	if _, _, err := (Trivial{}).Decode(g, advice); err == nil {
		t.Error("wrong-length advice accepted")
	}
}

func TestEdgeSetEqual(t *testing.T) {
	a := EdgeSet{1: true, 2: true}
	if !a.Equal(EdgeSet{2: true, 1: true}) {
		t.Error("equal sets differ")
	}
	if a.Equal(EdgeSet{1: true}) || a.Equal(EdgeSet{1: true, 3: true}) {
		t.Error("unequal sets equal")
	}
}

func TestRoundtripProperty(t *testing.T) {
	g := graph.Torus2D(5, 6)
	c := NewOriented()
	f := func(seed int64, density uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randomSubset(g, float64(density)/255, rng)
		advice, err := c.Encode(g, x)
		if err != nil {
			return false
		}
		decoded, _, err := c.Decode(g, advice)
		return err == nil && decoded.Equal(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
