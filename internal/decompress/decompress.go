// Package decompress implements Contribution 4 of the paper (Section 1.5):
// distributed compression of an arbitrary edge subset X ⊆ E so that a node
// of degree d stores about ⌈d/2⌉ + 1 bits and X can be decompressed locally
// in f(Δ) rounds.
//
// The construction is the paper's: one bit (two at the sparse marker nodes)
// encodes an almost-balanced orientation via the Section 5 schema; a node of
// degree d then has outdegree at most ⌈d/2⌉ and stores one membership bit
// per outgoing edge, in the canonical (neighbor-ID-sorted) order of its
// outgoing edges. Every edge is recovered by its tail.
//
// A trivial codec storing d bits per node (one per incident edge) is
// provided as the baseline the paper compares against; the information-
// theoretic lower bound is d/2 bits per node on d-regular graphs.
package decompress

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/orient"
)

// EdgeSet is a subset of a graph's edges by edge index.
type EdgeSet map[int]bool

// Equal reports whether two edge sets are identical.
func (x EdgeSet) Equal(y EdgeSet) bool {
	if len(x) != len(y) {
		return false
	}
	for e := range x {
		if !y[e] {
			return false
		}
	}
	return true
}

// Codec compresses edge subsets into per-node bit strings and decompresses
// them locally.
type Codec interface {
	Name() string
	Encode(g *graph.Graph, x EdgeSet) (local.Advice, error)
	Decode(g *graph.Graph, advice local.Advice) (EdgeSet, local.Stats, error)
	// MaxBits returns the codec's worst-case bits-per-node bound for a node
	// of degree d.
	MaxBits(d int) int
}

// sortedIncidentByID returns v's incident edges ordered by neighbor ID — the
// canonical order both the encoder and the decoder use.
func sortedIncidentByID(g *graph.Graph, v int) []int {
	inc := append([]int(nil), g.IncidentEdges(v)...)
	sort.Slice(inc, func(a, b int) bool {
		return g.ID(g.Other(inc[a], v)) < g.ID(g.Other(inc[b], v))
	})
	return inc
}

// Trivial is the baseline codec: node v of degree d stores d bits, one per
// incident edge in canonical order. Decoding needs 0 rounds.
type Trivial struct{}

var _ Codec = Trivial{}

// Name implements Codec.
func (Trivial) Name() string { return "trivial" }

// MaxBits implements Codec.
func (Trivial) MaxBits(d int) int { return d }

// Encode implements Codec.
func (Trivial) Encode(g *graph.Graph, x EdgeSet) (local.Advice, error) {
	advice := make(local.Advice, g.N())
	for v := 0; v < g.N(); v++ {
		s := bitstr.String{}
		for _, e := range sortedIncidentByID(g, v) {
			bit := 0
			if x[e] {
				bit = 1
			}
			s = s.Append(bit)
		}
		advice[v] = s
	}
	return advice, nil
}

// Decode implements Codec.
func (Trivial) Decode(g *graph.Graph, advice local.Advice) (EdgeSet, local.Stats, error) {
	if len(advice) != g.N() {
		return nil, local.Stats{}, fmt.Errorf("decompress: advice length %d for %d nodes", len(advice), g.N())
	}
	x := make(EdgeSet)
	for v := 0; v < g.N(); v++ {
		inc := sortedIncidentByID(g, v)
		if advice[v].Len() != len(inc) {
			return nil, local.Stats{}, fmt.Errorf("decompress: node %d holds %d bits for degree %d", v, advice[v].Len(), len(inc))
		}
		for i, e := range inc {
			if advice[v].Bit(i) == 1 {
				x[e] = true
			}
		}
	}
	return x, local.Stats{Rounds: 0}, nil
}

// Oriented is the paper's codec. Per node: one marker bit m (the node's
// role in the balanced-orientation advice), one out bit if m = 1, then one
// membership bit per outgoing edge under the decoded orientation, in
// canonical order. Unmarked nodes of degree d store 1 + outdeg <=
// ⌈d/2⌉ + 1 bits; the sparse marker nodes store one bit more.
type Oriented struct {
	// P parameterizes the underlying orientation schema.
	P orient.Params
}

var _ Codec = Oriented{}

// NewOriented returns the codec with default orientation parameters.
func NewOriented() Oriented { return Oriented{P: orient.DefaultParams()} }

// Name implements Codec.
func (Oriented) Name() string { return "oriented" }

// MaxBits implements Codec.
func (Oriented) MaxBits(d int) int { return (d+1)/2 + 2 }

// Encode implements Codec.
func (c Oriented) Encode(g *graph.Graph, x EdgeSet) (local.Advice, error) {
	schema := orient.Schema{P: c.P}
	va, err := schema.EncodeVar(g, nil)
	if err != nil {
		return nil, fmt.Errorf("decompress: orientation advice: %w", err)
	}
	// The orientation the decoder will reconstruct.
	sol, _, err := schema.DecodeVar(g, va, nil)
	if err != nil {
		return nil, fmt.Errorf("decompress: orientation prover decode: %w", err)
	}
	advice := make(local.Advice, g.N())
	for v := 0; v < g.N(); v++ {
		s := bitstr.String{}
		if payload, marked := va[v]; marked {
			s = s.Append(1, payload.Bit(1))
		} else {
			s = s.Append(0)
		}
		for _, e := range sortedIncidentByID(g, v) {
			if !outFrom(g, sol, e, v) {
				continue
			}
			bit := 0
			if x[e] {
				bit = 1
			}
			s = s.Append(bit)
		}
		advice[v] = s
	}
	return advice, nil
}

// outFrom reports whether edge e is oriented away from node v in sol.
func outFrom(g *graph.Graph, sol *lcl.Solution, e, v int) bool {
	ed := g.Edge(e)
	return sol.Edge[e] == lcl.TowardV && ed.U == v || sol.Edge[e] == lcl.TowardU && ed.V == v
}

// Decode implements Codec.
func (c Oriented) Decode(g *graph.Graph, advice local.Advice) (EdgeSet, local.Stats, error) {
	if len(advice) != g.N() {
		return nil, local.Stats{}, fmt.Errorf("decompress: advice length %d for %d nodes", len(advice), g.N())
	}
	// Reconstruct the orientation advice from the leading bits.
	va := make(core.VarAdvice)
	for v := 0; v < g.N(); v++ {
		if advice[v].Len() < 1 {
			return nil, local.Stats{}, fmt.Errorf("decompress: node %d holds no bits", v)
		}
		if advice[v].Bit(0) == 1 {
			if advice[v].Len() < 2 {
				return nil, local.Stats{}, fmt.Errorf("decompress: marked node %d lacks its out bit", v)
			}
			va[v] = bitstr.New(1, advice[v].Bit(1))
		}
	}
	schema := orient.Schema{P: c.P}
	sol, stats, err := schema.DecodeVar(g, va, nil)
	if err != nil {
		return nil, stats, fmt.Errorf("decompress: orientation decode: %w", err)
	}
	// Each node reads its outgoing-edge membership bits.
	x := make(EdgeSet)
	for v := 0; v < g.N(); v++ {
		header := 1
		if advice[v].Bit(0) == 1 {
			header = 2
		}
		i := header
		for _, e := range sortedIncidentByID(g, v) {
			if !outFrom(g, sol, e, v) {
				continue
			}
			if i >= advice[v].Len() {
				return nil, stats, fmt.Errorf("decompress: node %d ran out of bits at edge %d", v, e)
			}
			if advice[v].Bit(i) == 1 {
				x[e] = true
			}
			i++
		}
		if i != advice[v].Len() {
			return nil, stats, fmt.Errorf("decompress: node %d has %d extra bits", v, advice[v].Len()-i)
		}
	}
	return x, stats, nil
}

// Stats summarizes a codec run for the experiment tables.
type Stats struct {
	Codec      string
	MaxBits    int     // max bits stored at any node
	AvgBits    float64 // average bits per node
	TotalBits  int
	LowerBound float64 // |E| bits spread over n nodes: m/n
	Rounds     int
	Exact      bool // decoded set equals the original
}

// Measure runs a codec end to end on (g, x) and reports its cost.
func Measure(c Codec, g *graph.Graph, x EdgeSet) (Stats, error) {
	advice, err := c.Encode(g, x)
	if err != nil {
		return Stats{}, err
	}
	decoded, runStats, err := c.Decode(g, advice)
	if err != nil {
		return Stats{}, err
	}
	s := Stats{
		Codec:      c.Name(),
		TotalBits:  advice.TotalBits(),
		MaxBits:    advice.MaxBits(),
		Rounds:     runStats.Rounds,
		Exact:      decoded.Equal(x),
		LowerBound: float64(g.M()) / float64(g.N()),
	}
	s.AvgBits = float64(s.TotalBits) / float64(g.N())
	return s, nil
}
