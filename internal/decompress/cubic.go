package decompress

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/local"
)

// CubicTwoBit implements the encoding sketched in the paper's open problem
// 4 (Section 1.9): on 3-regular graphs, an arbitrary edge subset can be
// stored with exactly TWO bits per node. Delete one canonical edge per
// connected component; the remainder is 2-degenerate, so a peeling order
// orients every edge with outdegree at most 2, and each node stores one
// membership bit per outgoing edge. The deleted edge's bit is stored in the
// spare slot of its smaller-ID endpoint, freed (if necessary) by flipping a
// directed path of the orientation.
//
// The open problem asks whether such an encoding can be decompressed
// LOCALLY; this implementation decodes by deterministically replaying the
// global peeling, which needs Θ(diameter) rounds — it realizes the
// counting side of the question (2 bits suffice information-theoretically,
// between the trivial 3 and the impossible 1) while leaving the locality
// side open, as the paper does. Decode reports the honest round count.
type CubicTwoBit struct{}

var _ Codec = CubicTwoBit{}

// Name implements Codec.
func (CubicTwoBit) Name() string { return "cubic-2bit" }

// MaxBits implements Codec.
func (CubicTwoBit) MaxBits(d int) int { return 2 }

// cubicPlan is the shared deterministic structure both encoder and decoder
// derive from the graph alone.
type cubicPlan struct {
	deleted   []int   // one edge index per component
	holder    []int   // per component: node storing the deleted bit
	out       [][]int // per node: outgoing edge indices, canonical order
	edgeOwner []int   // per edge (excluding deleted): the tail node
}

func buildCubicPlan(g *graph.Graph) (*cubicPlan, error) {
	if !g.IsRegular() || g.MaxDegree() != 3 {
		return nil, fmt.Errorf("decompress: cubic codec needs a 3-regular graph, got Δ=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	comp, numComp := g.Components()
	plan := &cubicPlan{
		deleted:   make([]int, numComp),
		holder:    make([]int, numComp),
		out:       make([][]int, g.N()),
		edgeOwner: make([]int, g.M()),
	}
	for i := range plan.deleted {
		plan.deleted[i] = -1
	}
	for e := range plan.edgeOwner {
		plan.edgeOwner[e] = -1
	}
	// Canonical deleted edge per component: lexicographically largest
	// sorted endpoint-ID pair.
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		c := comp[ed.U]
		if plan.deleted[c] == -1 || edgeIDPairLess(g, plan.deleted[c], e) {
			plan.deleted[c] = e
		}
	}
	isDeleted := make([]bool, g.M())
	for _, e := range plan.deleted {
		isDeleted[e] = true
	}

	// Peeling order on the graph minus the deleted edges: repeatedly take
	// the smallest-ID node with remaining degree <= 2 and orient its
	// remaining edges away from it.
	deg := make([]int, g.N())
	removedEdge := make([]bool, g.M())
	removedNode := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		for _, e := range g.IncidentEdges(v) {
			if !isDeleted[e] {
				deg[v]++
			}
		}
	}
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.ID(order[a]) < g.ID(order[b]) })

	outDeg := make([]int, g.N())
	for peeled := 0; peeled < g.N(); peeled++ {
		pick := -1
		for _, v := range order {
			if !removedNode[v] && deg[v] <= 2 {
				pick = v
				break
			}
		}
		if pick == -1 {
			return nil, fmt.Errorf("decompress: graph minus deleted edges is not 2-degenerate — not 3-regular after all")
		}
		removedNode[pick] = true
		for _, e := range g.IncidentEdges(pick) {
			if isDeleted[e] || removedEdge[e] {
				continue
			}
			removedEdge[e] = true
			plan.edgeOwner[e] = pick
			outDeg[pick]++
			w := g.Other(e, pick)
			deg[w]--
		}
		deg[pick] = 0
	}

	// Holders and spare slots: per component the smaller-ID endpoint of the
	// deleted edge must end with outdegree <= 1; free a slot by flipping a
	// directed walk to a node with spare capacity.
	for c, e := range plan.deleted {
		ed := g.Edge(e)
		a := ed.U
		if g.ID(ed.V) < g.ID(ed.U) {
			a = ed.V
		}
		plan.holder[c] = a
		if outDeg[a] <= 1 {
			continue
		}
		if err := freeSlot(g, plan, outDeg, a); err != nil {
			return nil, err
		}
	}

	// Materialize per-node outgoing lists in canonical neighbor-ID order.
	for v := 0; v < g.N(); v++ {
		var outs []int
		for _, e := range sortedIncidentByID(g, v) {
			if plan.edgeOwner[e] == v {
				outs = append(outs, e)
			}
		}
		plan.out[v] = outs
	}
	return plan, nil
}

// edgeIDPairLess compares edges by their sorted endpoint-ID pairs.
func edgeIDPairLess(g *graph.Graph, e, f int) bool {
	loE, hiE := sortedEdgeIDs(g, e)
	loF, hiF := sortedEdgeIDs(g, f)
	if hiE != hiF {
		return hiE < hiF
	}
	return loE < loF
}

func sortedEdgeIDs(g *graph.Graph, e int) (lo, hi int64) {
	ed := g.Edge(e)
	lo, hi = g.ID(ed.U), g.ID(ed.V)
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// freeSlot finds a directed path from node a (outdegree 2) to a node with
// outdegree <= 1, following the smallest-neighbor-ID outgoing edge at every
// step, and then flips the ownership of every path edge. The peeling
// orientation is acyclic, so the walk terminates; flipping the whole path
// afterwards lowers a's outdegree by one, keeps intermediate nodes
// unchanged, and raises the endpoint's to at most 2.
func freeSlot(g *graph.Graph, plan *cubicPlan, outDeg []int, a int) error {
	var pathEdges []int
	cur := a
	for steps := 0; steps <= g.M(); steps++ {
		if cur != a && outDeg[cur] <= 1 {
			// Flip the collected path.
			for _, e := range pathEdges {
				owner := plan.edgeOwner[e]
				other := g.Other(e, owner)
				plan.edgeOwner[e] = other
				outDeg[owner]--
				outDeg[other]++
			}
			return nil
		}
		// Smallest-ID outgoing edge of cur in the original orientation.
		pick := -1
		for _, e := range sortedIncidentByID(g, cur) {
			if plan.edgeOwner[e] == cur {
				pick = e
				break
			}
		}
		if pick == -1 {
			return fmt.Errorf("decompress: flip walk stuck at a node with no outgoing edge but full slots")
		}
		pathEdges = append(pathEdges, pick)
		cur = g.Other(pick, cur)
	}
	return fmt.Errorf("decompress: flip walk did not terminate")
}

// Encode implements Codec.
func (CubicTwoBit) Encode(g *graph.Graph, x EdgeSet) (local.Advice, error) {
	plan, err := buildCubicPlan(g)
	if err != nil {
		return nil, err
	}
	holderOf := map[int]int{} // node -> component whose deleted bit it holds
	for c, h := range plan.holder {
		holderOf[h] = c
	}
	advice := make(local.Advice, g.N())
	for v := 0; v < g.N(); v++ {
		s := bitstr.String{}
		for _, e := range plan.out[v] {
			bit := 0
			if x[e] {
				bit = 1
			}
			s = s.Append(bit)
		}
		if c, isHolder := holderOf[v]; isHolder {
			bit := 0
			if x[plan.deleted[c]] {
				bit = 1
			}
			s = s.Append(bit)
		}
		if s.Len() > 2 {
			return nil, fmt.Errorf("decompress: node %d would need %d bits — slot freeing failed", v, s.Len())
		}
		for s.Len() < 2 {
			s = s.Append(0)
		}
		advice[v] = s
	}
	return advice, nil
}

// Decode implements Codec. Decoding replays the global plan, which in the
// LOCAL model costs Θ(diameter) rounds; the stats report that honestly.
func (CubicTwoBit) Decode(g *graph.Graph, advice local.Advice) (EdgeSet, local.Stats, error) {
	if len(advice) != g.N() {
		return nil, local.Stats{}, fmt.Errorf("decompress: advice length %d for %d nodes", len(advice), g.N())
	}
	plan, err := buildCubicPlan(g)
	if err != nil {
		return nil, local.Stats{}, err
	}
	holderOf := map[int]int{}
	for c, h := range plan.holder {
		holderOf[h] = c
	}
	x := make(EdgeSet)
	for v := 0; v < g.N(); v++ {
		if advice[v].Len() != 2 {
			return nil, local.Stats{}, fmt.Errorf("decompress: node %d holds %d bits, want 2", v, advice[v].Len())
		}
		i := 0
		for _, e := range plan.out[v] {
			if advice[v].Bit(i) == 1 {
				x[e] = true
			}
			i++
		}
		if c, isHolder := holderOf[v]; isHolder {
			if advice[v].Bit(i) == 1 {
				x[plan.deleted[c]] = true
			}
		}
	}
	return x, local.Stats{Rounds: g.Diameter()}, nil
}
