package obs

import (
	"sort"
	"sync"
	"time"
)

// endpointWindow is the number of recent latency samples an EndpointMetrics
// retains for percentile estimation. A bounded ring keeps the serving
// layer's per-request overhead constant: counters are exact over the whole
// lifetime, percentiles describe the most recent window.
const endpointWindow = 4096

// EndpointMetrics accumulates request counts and latencies for one HTTP
// endpoint of the serving layer. It is safe for concurrent use; the zero
// value is ready.
type EndpointMetrics struct {
	mu         sync.Mutex
	count      uint64
	errors     uint64
	totalNanos int64
	maxNanos   int64
	ring       [endpointWindow]int64
	ringLen    int
	ringPos    int
}

// Observe records one request's latency and whether it failed (any non-2xx
// response counts as an error from the serving layer's point of view).
func (m *EndpointMetrics) Observe(d time.Duration, isErr bool) {
	ns := d.Nanoseconds()
	m.mu.Lock()
	m.count++
	if isErr {
		m.errors++
	}
	m.totalNanos += ns
	if ns > m.maxNanos {
		m.maxNanos = ns
	}
	m.ring[m.ringPos] = ns
	m.ringPos = (m.ringPos + 1) % endpointWindow
	if m.ringLen < endpointWindow {
		m.ringLen++
	}
	m.mu.Unlock()
}

// EndpointSnapshot is the JSON form of one endpoint's metrics, surfaced by
// the server's /v1/stats and embedded into BENCH_*.json by scripts/bench.sh.
type EndpointSnapshot struct {
	Count    uint64 `json:"count"`
	Errors   uint64 `json:"errors"`
	AvgNanos int64  `json:"avg_nanos"`
	P50Nanos int64  `json:"p50_nanos"`
	P95Nanos int64  `json:"p95_nanos"`
	P99Nanos int64  `json:"p99_nanos"`
	MaxNanos int64  `json:"max_nanos"`
}

// Snapshot returns the current counters and latency percentiles (over the
// retained window).
func (m *EndpointMetrics) Snapshot() EndpointSnapshot {
	m.mu.Lock()
	s := EndpointSnapshot{Count: m.count, Errors: m.errors, MaxNanos: m.maxNanos}
	lat := make([]int64, m.ringLen)
	copy(lat, m.ring[:m.ringLen])
	if m.count > 0 {
		s.AvgNanos = m.totalNanos / int64(m.count)
	}
	m.mu.Unlock()
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.P50Nanos = percentile(lat, 50)
		s.P95Nanos = percentile(lat, 95)
		s.P99Nanos = percentile(lat, 99)
	}
	return s
}
