package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestNilCollectorIsSafeAndAllocationFree pins the zero-cost-when-disabled
// contract at the hook level: every method of a nil *Collector is a no-op
// that performs zero allocations, so the engines' `if m.Enabled()` guards
// cost nothing when no collector is installed.
func TestNilCollectorIsSafeAndAllocationFree(t *testing.T) {
	var c *Collector
	hooks := map[string]func(){
		"Enabled":     func() { _ = c.Enabled() },
		"Start":       func() { c.Start() },
		"Stop":        func() { c.Stop() },
		"BeginRun":    func() { _ = c.BeginRun("scheduler", 100) },
		"RecordRound": func() { c.RecordRound(RoundMetric{Round: 1}) },
		"Emit":        func() { c.Emit("lll.resamplings", "", 3) },
		"Rounds":      func() { _ = c.Rounds() },
		"Events":      func() { _ = c.Events() },
		"Summary":     func() { _ = c.Summary() },
	}
	for name, fn := range hooks {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("nil Collector %s allocates %.1f per call, want 0", name, allocs)
		}
	}
	if err := c.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSONL: %v", err)
	}
}

// TestDefaultUnsetIsAllocationFree: the engines' fallback path (Default()
// load + nil check) must also be free.
func TestDefaultUnsetIsAllocationFree(t *testing.T) {
	SetDefault(nil)
	if allocs := testing.AllocsPerRun(100, func() {
		if Default().Enabled() {
			t.Fatal("unexpected default collector")
		}
	}); allocs != 0 {
		t.Errorf("Default() path allocates %.1f per call, want 0", allocs)
	}
}

func TestSetDefaultRoundTrip(t *testing.T) {
	c := &Collector{}
	SetDefault(c)
	defer SetDefault(nil)
	if Default() != c {
		t.Fatal("Default did not return the installed collector")
	}
	SetDefault(nil)
	if Default() != nil {
		t.Fatal("SetDefault(nil) did not uninstall")
	}
}

func TestCollectorRecordsRoundsAndEvents(t *testing.T) {
	c := &Collector{}
	c.Start()
	run := c.BeginRun("scheduler", 64)
	if run != 1 {
		t.Fatalf("first run id = %d, want 1", run)
	}
	for r := 1; r <= 4; r++ {
		c.RecordRound(RoundMetric{Engine: "scheduler", Run: run, Round: r,
			ActiveNodes: 64 - r, Messages: int64(10 * r), Bytes: int64(100 * r),
			WallNanos: int64(r) * 1000})
	}
	c.Emit("lll.resamplings", "orient", 7)
	c.Emit("lll.resamplings", "orient", 5)
	time.Sleep(time.Millisecond)
	c.Stop()

	rounds := c.Rounds()
	if len(rounds) != 4 {
		t.Fatalf("got %d rounds, want 4", len(rounds))
	}
	if rounds[2].Messages != 30 || rounds[2].ActiveNodes != 61 {
		t.Errorf("round 3 = %+v", rounds[2])
	}
	s := c.Summary()
	if s.Runs != 1 || s.Rounds != 4 {
		t.Errorf("summary runs/rounds = %d/%d, want 1/4", s.Runs, s.Rounds)
	}
	if s.Messages != 100 || s.Bytes != 1000 {
		t.Errorf("summary messages/bytes = %d/%d, want 100/1000", s.Messages, s.Bytes)
	}
	if s.MaxActive != 63 {
		t.Errorf("max active = %d, want 63", s.MaxActive)
	}
	if s.RoundMaxNanos != 4000 || s.RoundP50Nanos != 2000 {
		t.Errorf("latency p50/max = %d/%d, want 2000/4000", s.RoundP50Nanos, s.RoundMaxNanos)
	}
	if s.WallNanos <= 0 {
		t.Errorf("wall nanos = %d, want > 0", s.WallNanos)
	}
	if s.MsgsPerSec <= 0 {
		t.Errorf("msgs/s = %f, want > 0", s.MsgsPerSec)
	}
	if s.EventTotals["lll.resamplings"] != 12 {
		t.Errorf("event total = %d, want 12", s.EventTotals["lll.resamplings"])
	}
	if !strings.Contains(s.String(), "rounds=4") {
		t.Errorf("summary string %q missing rounds", s.String())
	}
}

func TestPercentile(t *testing.T) {
	lat := []int64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100}
	cases := []struct {
		p    int
		want int64
	}{{50, 50}, {95, 100}, {100, 100}, {1, 10}, {0, 10}}
	for _, c := range cases {
		if got := percentile(lat, c.p); got != c.want {
			t.Errorf("percentile(%d) = %d, want %d", c.p, got, c.want)
		}
	}
	if got := percentile(nil, 50); got != 0 {
		t.Errorf("percentile(nil) = %d, want 0", got)
	}
}

// TestWriteJSONL checks the trace schema: every line is a JSON object with
// a type tag, rounds and events in recording order, one trailing summary.
func TestWriteJSONL(t *testing.T) {
	c := &Collector{}
	c.Start()
	run := c.BeginRun("sequential", 8)
	c.RecordRound(RoundMetric{Engine: "sequential", Run: run, Round: 1, ActiveNodes: 8, Messages: 16, Bytes: 128})
	c.RecordRound(RoundMetric{Engine: "sequential", Run: run, Round: 2, ActiveNodes: 3, Messages: 6, Bytes: 48})
	c.Emit("fault.crash", "", 1)
	c.Stop()

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var types []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Type  string       `json:"type"`
			Round *RoundMetric `json:"round"`
			Event *Event       `json:"event"`
			Sum   *Summary     `json:"summary"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		types = append(types, line.Type)
		switch line.Type {
		case "round":
			if line.Round == nil || line.Round.Engine != "sequential" {
				t.Errorf("bad round line: %+v", line.Round)
			}
		case "event":
			if line.Event == nil || line.Event.Kind == "" {
				t.Errorf("bad event line: %+v", line.Event)
			}
		case "summary":
			if line.Sum == nil || line.Sum.Rounds != 2 {
				t.Errorf("bad summary line: %+v", line.Sum)
			}
		}
	}
	want := []string{"round", "round", "event", "event", "summary"}
	if !reflect.DeepEqual(types, want) {
		t.Errorf("line types = %v, want %v", types, want)
	}
}

// TestApproxSizeDeterministic pins that equal values yield equal sizes (the
// property that makes per-round byte counts worker-independent) and that
// the estimate grows with payload size.
func TestApproxSizeDeterministic(t *testing.T) {
	type fact struct {
		ID        int64
		Neighbors []int64
		Name      string
	}
	mk := func() any {
		return []fact{{ID: 7, Neighbors: []int64{1, 2, 3}, Name: "abc"}, {ID: 9}}
	}
	a, b := ApproxSize(mk()), ApproxSize(mk())
	if a != b || a <= 0 {
		t.Errorf("ApproxSize not deterministic: %d vs %d", a, b)
	}
	small := ApproxSize("ab")
	big := ApproxSize("abcdefghijklmnop")
	if big <= small {
		t.Errorf("size should grow with payload: %d vs %d", small, big)
	}
	if ApproxSize(nil) != 0 {
		t.Errorf("ApproxSize(nil) = %d, want 0", ApproxSize(nil))
	}
	// Pointer, map, interface and array kinds all walk without panicking.
	m := map[string][]int{"x": {1, 2}, "y": {3}}
	if ApproxSize(m) <= 0 {
		t.Errorf("map size = %d", ApproxSize(m))
	}
	v := [4]string{"a", "bb", "ccc"}
	if ApproxSize(&v) <= ApproxSize(v)-int64(len("abbccc")) {
		t.Errorf("pointer walk lost indirect storage")
	}
	var iface any = &fact{Neighbors: []int64{1}}
	if ApproxSize(iface) <= 0 {
		t.Errorf("interface size = %d", ApproxSize(iface))
	}
}

func TestDeterministicProjection(t *testing.T) {
	r := RoundMetric{Engine: "scheduler", Run: 2, Round: 5, ActiveNodes: 10,
		Messages: 40, Bytes: 400, WallNanos: 12345, ShardNanos: []int64{5, 7}}
	d := r.Deterministic()
	if d.WallNanos != 0 || d.ShardNanos != nil {
		t.Errorf("projection kept wall-clock fields: %+v", d)
	}
	if d.Round != 5 || d.Messages != 40 || d.Bytes != 400 || d.ActiveNodes != 10 {
		t.Errorf("projection dropped deterministic fields: %+v", d)
	}
}
