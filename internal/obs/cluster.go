package obs

import (
	"sync"
	"sync/atomic"
)

// ClusterMetrics accumulates the router role's operational counters: how
// requests were routed across the shard fleet, how often forwarding failed,
// and what the hot-artifact replicator did. All methods are safe for
// concurrent use; the zero value is ready.
//
// The counters partition the router's routed traffic: every routed request
// is a forward to the owner, a replica hit (a hot replicated key served by
// a non-owner), a failover (owner down, served by the next healthy shard),
// or a local fallback (no healthy shard at all, computed in-process).
type ClusterMetrics struct {
	forwards      atomic.Uint64
	forwardErrors atomic.Uint64
	replicaHits   atomic.Uint64
	failovers     atomic.Uint64
	localFallback atomic.Uint64

	replications      atomic.Uint64
	replicationErrors atomic.Uint64
	flushFanouts      atomic.Uint64

	mu     sync.Mutex
	routed map[string]uint64 // shard name -> requests routed there as owner
}

// Forward records one request forwarded to its owning shard.
func (m *ClusterMetrics) Forward() { m.forwards.Add(1) }

// ForwardError records one failed forward attempt (transport-level).
func (m *ClusterMetrics) ForwardError() { m.forwardErrors.Add(1) }

// ReplicaHit records a hot key served by a non-owner replica.
func (m *ClusterMetrics) ReplicaHit() { m.replicaHits.Add(1) }

// Failover records a request rerouted past a dead owner to another shard.
func (m *ClusterMetrics) Failover() { m.failovers.Add(1) }

// LocalFallback records a request computed in-process because no shard was
// reachable.
func (m *ClusterMetrics) LocalFallback() { m.localFallback.Add(1) }

// Replication records one completed hot-artifact replication (one key
// pushed to its replica set).
func (m *ClusterMetrics) Replication() { m.replications.Add(1) }

// ReplicationError records a failed replication attempt.
func (m *ClusterMetrics) ReplicationError() { m.replicationErrors.Add(1) }

// FlushFanout records one cluster-wide cache flush fan-out.
func (m *ClusterMetrics) FlushFanout() { m.flushFanouts.Add(1) }

// RouteTo records that a request's routing key ranked shard as its owner
// (the per-shard ownership count surfaced at /v1/stats).
func (m *ClusterMetrics) RouteTo(shard string) {
	m.mu.Lock()
	if m.routed == nil {
		m.routed = make(map[string]uint64)
	}
	m.routed[shard]++
	m.mu.Unlock()
}

// ClusterSnapshot is the JSON form of the router counters, surfaced at the
// router's /v1/stats and embedded into BENCH_*.json by the cluster sweep.
type ClusterSnapshot struct {
	Forwards          uint64            `json:"forwards"`
	ForwardErrors     uint64            `json:"forward_errors"`
	ReplicaHits       uint64            `json:"replica_hits"`
	Failovers         uint64            `json:"failovers"`
	LocalFallbacks    uint64            `json:"local_fallbacks"`
	Replications      uint64            `json:"replications"`
	ReplicationErrors uint64            `json:"replication_errors"`
	FlushFanouts      uint64            `json:"flush_fanouts"`
	RoutedByShard     map[string]uint64 `json:"routed_by_shard"`
}

// Snapshot returns the current counters.
func (m *ClusterMetrics) Snapshot() ClusterSnapshot {
	s := ClusterSnapshot{
		Forwards:          m.forwards.Load(),
		ForwardErrors:     m.forwardErrors.Load(),
		ReplicaHits:       m.replicaHits.Load(),
		Failovers:         m.failovers.Load(),
		LocalFallbacks:    m.localFallback.Load(),
		Replications:      m.replications.Load(),
		ReplicationErrors: m.replicationErrors.Load(),
		FlushFanouts:      m.flushFanouts.Load(),
	}
	m.mu.Lock()
	s.RoutedByShard = make(map[string]uint64, len(m.routed))
	for k, v := range m.routed {
		s.RoutedByShard[k] = v
	}
	m.mu.Unlock()
	return s
}
