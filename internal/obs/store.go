package obs

import (
	"sync/atomic"
	"time"
)

// StoreMetrics accumulates the persistent artifact store's counters: disk
// hits and misses, record loads and writes with their wall time, and I/O
// errors. All methods are safe for concurrent use and no-ops on a nil
// receiver, mirroring the zero-cost-when-disabled contract of the engine
// metrics: a server without a -store-dir passes nil and pays nothing.
type StoreMetrics struct {
	hits         atomic.Uint64
	misses       atomic.Uint64
	puts         atomic.Uint64
	errors       atomic.Uint64
	loadNanos    atomic.Int64
	putNanos     atomic.Int64
	bytesLoaded  atomic.Int64
	bytesWritten atomic.Int64
}

// ObserveLoad records one Get: whether a record was found, how many payload
// bytes it carried, and how long the disk read + decode took.
func (m *StoreMetrics) ObserveLoad(d time.Duration, bytes int64, hit bool) {
	if m == nil {
		return
	}
	if hit {
		m.hits.Add(1)
		m.bytesLoaded.Add(bytes)
	} else {
		m.misses.Add(1)
	}
	m.loadNanos.Add(d.Nanoseconds())
}

// ObservePut records one Put: payload bytes written and wall time.
func (m *StoreMetrics) ObservePut(d time.Duration, bytes int64) {
	if m == nil {
		return
	}
	m.puts.Add(1)
	m.bytesWritten.Add(bytes)
	m.putNanos.Add(d.Nanoseconds())
}

// ObserveError records a store I/O or corruption error (the store treats
// both as misses, so serving continues; the counter makes them visible).
func (m *StoreMetrics) ObserveError() {
	if m == nil {
		return
	}
	m.errors.Add(1)
}

// StoreSnapshot is the JSON form of the store counters, surfaced by the
// server's /v1/stats under the "store" key and embedded into BENCH_*.json.
type StoreSnapshot struct {
	Hits         uint64 `json:"hits"`
	Misses       uint64 `json:"misses"`
	Puts         uint64 `json:"puts"`
	Errors       uint64 `json:"errors"`
	LoadNanos    int64  `json:"load_nanos"`
	PutNanos     int64  `json:"put_nanos"`
	BytesLoaded  int64  `json:"bytes_loaded"`
	BytesWritten int64  `json:"bytes_written"`
}

// Snapshot returns the current counters (zero-valued on a nil receiver).
func (m *StoreMetrics) Snapshot() StoreSnapshot {
	if m == nil {
		return StoreSnapshot{}
	}
	return StoreSnapshot{
		Hits:         m.hits.Load(),
		Misses:       m.misses.Load(),
		Puts:         m.puts.Load(),
		Errors:       m.errors.Load(),
		LoadNanos:    m.loadNanos.Load(),
		PutNanos:     m.putNanos.Load(),
		BytesLoaded:  m.bytesLoaded.Load(),
		BytesWritten: m.bytesWritten.Load(),
	}
}
