// Package obs is the run-metrics and tracing layer of the simulator: a
// zero-cost-when-disabled instrumentation surface the execution engines
// (message scheduler, goroutine, sequential, ball), the Moser–Tardos solver,
// and the fault-injection layer report into.
//
// The design mirrors the paper's cost model: everything the paper counts —
// rounds, messages, bits, resampling counts — is a deterministic function of
// the execution, so the deterministic fields of every RoundMetric (round
// number, active nodes, messages, bytes) are bit-identical for every worker
// count and every engine pinned by the equivalence tests. Wall-clock fields
// (WallNanos, ShardNanos) are measurements of this machine and are excluded
// from the determinism contract.
//
// A Collector is enabled by threading it through local.RunConfig{Metrics},
// or process-wide via SetDefault (the same idiom as
// local.SetDefaultWorkers, used by the locad CLI's -trace/-summary flags).
// When no collector is installed the instrumentation is a nil check on the
// hot path: no allocations, no clock reads, no atomic traffic beyond what
// the engines already do. Every Collector method is safe on a nil receiver.
package obs

import (
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// RoundMetric is one engine round's cost profile. Round, ActiveNodes,
// Messages, Bytes and the Logical* fields are deterministic (identical
// across worker counts and across the equivalent engines); WallNanos and
// ShardNanos are wall-clock measurements.
//
// Messages and Bytes always describe the traffic the engine actually put on
// its transport. For every stock engine that is also the protocol's logical
// traffic, and the Logical* fields stay zero. The frugal engine
// (local.RunFrugal) sends aggregated bundles along a sparse skeleton
// instead, so its Messages/Bytes count skeleton traffic while
// LogicalMessages/LogicalBytes record what the simulated protocol emitted —
// the split is the engine's measured message reduction.
type RoundMetric struct {
	Engine          string  `json:"engine"`
	Run             int     `json:"run"`
	Round           int     `json:"round"`
	ActiveNodes     int     `json:"active_nodes"`
	Messages        int64   `json:"messages"`
	Bytes           int64   `json:"bytes"`
	LogicalMessages int64   `json:"logical_messages,omitempty"`
	LogicalBytes    int64   `json:"logical_bytes,omitempty"`
	WallNanos       int64   `json:"wall_nanos"`
	ShardNanos      []int64 `json:"shard_nanos,omitempty"`
}

// Deterministic returns the worker-count-independent projection of the
// metric: the fields the cross-worker determinism tests compare.
func (r RoundMetric) Deterministic() RoundMetric {
	return RoundMetric{Engine: r.Engine, Run: r.Run, Round: r.Round,
		ActiveNodes: r.ActiveNodes, Messages: r.Messages, Bytes: r.Bytes,
		LogicalMessages: r.LogicalMessages, LogicalBytes: r.LogicalBytes}
}

// Event is a counted occurrence outside the round loop: LLL resampling
// totals, injected-fault reports, crash activations, view builds.
type Event struct {
	Kind  string `json:"kind"`
	Label string `json:"label,omitempty"`
	Value int64  `json:"value"`
}

// Collector accumulates round metrics and events from any number of engine
// runs. It is safe for concurrent use (engines sweep shards in parallel and
// aggregate before recording, but several engines or experiments may share
// one collector). The zero value is ready to use.
type Collector struct {
	mu          sync.Mutex
	runSeq      int
	rounds      []RoundMetric
	events      []Event
	startWall   time.Time
	stopWall    time.Time
	started     bool
	stopped     bool
	startAllocs uint64
	startMalloc uint64
	allocBytes  uint64
	mallocs     uint64
}

// Enabled reports whether metrics should be recorded; it is the hot-path
// guard and allocates nothing.
func (c *Collector) Enabled() bool { return c != nil }

// Start snapshots wall clock and allocator state; Stop closes the window.
// The Summary's WallNanos, AllocBytes and Mallocs are Start..Stop deltas
// (zero if Start was never called).
func (c *Collector) Start() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.mu.Lock()
	c.started = true
	c.stopped = false
	c.startWall = time.Now()
	c.startAllocs = ms.TotalAlloc
	c.startMalloc = ms.Mallocs
	c.mu.Unlock()
}

// Stop closes the measurement window opened by Start. Calling Stop more
// than once keeps the first closing snapshot.
func (c *Collector) Stop() {
	if c == nil {
		return
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	c.mu.Lock()
	if c.started && !c.stopped {
		c.stopped = true
		c.stopWall = time.Now()
		c.allocBytes = ms.TotalAlloc - c.startAllocs
		c.mallocs = ms.Mallocs - c.startMalloc
	}
	c.mu.Unlock()
}

// BeginRun opens a new engine run scope and returns its id; every
// RoundMetric of that run should carry the id so traces with several runs
// (an experiment decodes many times) stay separable.
func (c *Collector) BeginRun(engine string, nodes int) int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	c.runSeq++
	id := c.runSeq
	c.events = append(c.events, Event{Kind: "run.begin", Label: engine, Value: int64(nodes)})
	c.mu.Unlock()
	return id
}

// RecordRound appends one round's metrics.
func (c *Collector) RecordRound(rm RoundMetric) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.rounds = append(c.rounds, rm)
	c.mu.Unlock()
}

// Emit appends a counted event.
func (c *Collector) Emit(kind, label string, value int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.events = append(c.events, Event{Kind: kind, Label: label, Value: value})
	c.mu.Unlock()
}

// Rounds returns a copy of the recorded round metrics, in recording order.
func (c *Collector) Rounds() []RoundMetric {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]RoundMetric, len(c.rounds))
	copy(out, c.rounds)
	return out
}

// Events returns a copy of the recorded events, in recording order.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}

// defaultCollector is the process-wide collector engines fall back to when
// RunConfig.Metrics is nil — the same pattern as local.SetDefaultWorkers.
// Unset (the normal state) it costs one atomic load per engine run.
var defaultCollector atomic.Pointer[Collector]

// Default returns the process-wide collector, or nil when none is
// installed.
func Default() *Collector { return defaultCollector.Load() }

// SetDefault installs (or, with nil, removes) the process-wide collector.
// The locad CLI's -trace/-summary paths install one per experiment; library
// callers normally thread a Collector through RunConfig.Metrics instead.
func SetDefault(c *Collector) { defaultCollector.Store(c) }

// approxSizeDepth caps the recursion of ApproxSize so adversarial or
// accidentally cyclic payloads cannot hang the instrumentation.
const approxSizeDepth = 8

// ApproxSize deterministically estimates the in-memory footprint of a
// message payload in bytes: fixed-size kinds count their reflect size,
// strings/slices/maps add their elements, pointers and interfaces follow
// one level. Equal values always yield equal sizes, so per-round byte
// counts are worker-count independent. The walk is depth-capped; beyond
// the cap only the top-level size is counted.
func ApproxSize(v any) int64 {
	if v == nil {
		return 0
	}
	return approxSize(reflect.ValueOf(v), approxSizeDepth)
}

func approxSize(rv reflect.Value, depth int) int64 {
	if !rv.IsValid() {
		return 0
	}
	size := int64(rv.Type().Size())
	if depth <= 0 {
		return size
	}
	switch rv.Kind() {
	case reflect.String:
		size += int64(rv.Len())
	case reflect.Slice:
		for i := 0; i < rv.Len(); i++ {
			size += approxSize(rv.Index(i), depth-1)
		}
	case reflect.Array:
		// Array elements are inline in Size(); only count indirect storage.
		for i := 0; i < rv.Len(); i++ {
			el := rv.Index(i)
			size += approxSize(el, depth-1) - int64(el.Type().Size())
		}
	case reflect.Map:
		iter := rv.MapRange()
		for iter.Next() {
			size += approxSize(iter.Key(), depth-1)
			size += approxSize(iter.Value(), depth-1)
		}
	case reflect.Pointer:
		if !rv.IsNil() {
			size += approxSize(rv.Elem(), depth-1)
		}
	case reflect.Interface:
		if !rv.IsNil() {
			size += approxSize(rv.Elem(), depth-1)
		}
	case reflect.Struct:
		// The top-level Size() already covers the fields' inline storage;
		// only indirect storage (strings, slices, pointers) needs adding.
		for i := 0; i < rv.NumField(); i++ {
			f := rv.Field(i)
			switch f.Kind() {
			case reflect.String, reflect.Slice, reflect.Map, reflect.Pointer, reflect.Interface:
				size += approxSize(f, depth-1) - int64(f.Type().Size())
			}
		}
	}
	return size
}
