package obs

import (
	"sync"
	"testing"
	"time"
)

func TestEndpointMetricsCountsAndPercentiles(t *testing.T) {
	var m EndpointMetrics
	for i := 1; i <= 100; i++ {
		m.Observe(time.Duration(i)*time.Millisecond, i%10 == 0)
	}
	s := m.Snapshot()
	if s.Count != 100 || s.Errors != 10 {
		t.Fatalf("count=%d errors=%d, want 100/10", s.Count, s.Errors)
	}
	if s.P50Nanos != (50 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p50 = %d", s.P50Nanos)
	}
	if s.P95Nanos != (95 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p95 = %d", s.P95Nanos)
	}
	if s.P99Nanos != (99 * time.Millisecond).Nanoseconds() {
		t.Fatalf("p99 = %d", s.P99Nanos)
	}
	if s.MaxNanos != (100 * time.Millisecond).Nanoseconds() {
		t.Fatalf("max = %d", s.MaxNanos)
	}
	// 5050ms over 100 requests = 50.5ms.
	if s.AvgNanos < (50*time.Millisecond).Nanoseconds() || s.AvgNanos > (51*time.Millisecond).Nanoseconds() {
		t.Fatalf("avg = %d", s.AvgNanos)
	}
}

func TestEndpointMetricsWindowBounded(t *testing.T) {
	var m EndpointMetrics
	// Fill past the window with slow samples, then overwrite with fast ones:
	// percentiles must describe the recent window, counters the lifetime.
	for i := 0; i < endpointWindow; i++ {
		m.Observe(time.Second, false)
	}
	for i := 0; i < endpointWindow; i++ {
		m.Observe(time.Millisecond, false)
	}
	s := m.Snapshot()
	if s.Count != 2*endpointWindow {
		t.Fatalf("count = %d", s.Count)
	}
	if s.P95Nanos != time.Millisecond.Nanoseconds() {
		t.Fatalf("p95 = %d, want the recent-window value", s.P95Nanos)
	}
	if s.MaxNanos != time.Second.Nanoseconds() {
		t.Fatalf("max = %d, want the lifetime value", s.MaxNanos)
	}
}

func TestEndpointMetricsConcurrent(t *testing.T) {
	var m EndpointMetrics
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				m.Observe(time.Microsecond, false)
			}
		}()
	}
	wg.Wait()
	if s := m.Snapshot(); s.Count != 4000 {
		t.Fatalf("count = %d, want 4000", s.Count)
	}
}
