package obs

import (
	"fmt"
	"sort"
	"time"
)

// Summary is the in-memory aggregate of one Collector: the per-experiment
// record the harness exports and scripts/bench.sh ingests. Rounds,
// Messages, Bytes and per-kind event totals are deterministic; the latency
// percentiles, throughput and allocator deltas are measurements of this
// machine and run.
type Summary struct {
	Runs     int   `json:"runs"`
	Rounds   int   `json:"rounds"`
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	// LogicalMessages/LogicalBytes total the simulated protocol's own
	// traffic for rounds recorded by a transport-accounting engine (the
	// frugal engine); zero everywhere else. When nonzero, Messages/Bytes
	// for those rounds are the skeleton transport actually paid.
	LogicalMessages int64            `json:"logical_messages,omitempty"`
	LogicalBytes    int64            `json:"logical_bytes,omitempty"`
	MaxActive       int              `json:"max_active_nodes"`
	WallNanos     int64            `json:"wall_nanos"`
	RoundP50Nanos int64            `json:"round_p50_nanos"`
	RoundP95Nanos int64            `json:"round_p95_nanos"`
	RoundMaxNanos int64            `json:"round_max_nanos"`
	MsgsPerSec    float64          `json:"msgs_per_sec"`
	AllocBytes    uint64           `json:"alloc_bytes"`
	Mallocs       uint64           `json:"mallocs"`
	EventTotals   map[string]int64 `json:"event_totals,omitempty"`
}

// Summary aggregates everything recorded so far. The round-latency
// percentiles are computed over the WallNanos of every recorded round;
// MsgsPerSec is total messages over the Start..Stop window (0 without a
// closed window). Safe on a nil receiver (returns the zero Summary).
func (c *Collector) Summary() Summary {
	var s Summary
	if c == nil {
		return s
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	s.Runs = c.runSeq
	s.Rounds = len(c.rounds)
	lat := make([]int64, 0, len(c.rounds))
	for _, r := range c.rounds {
		s.Messages += r.Messages
		s.Bytes += r.Bytes
		s.LogicalMessages += r.LogicalMessages
		s.LogicalBytes += r.LogicalBytes
		if r.ActiveNodes > s.MaxActive {
			s.MaxActive = r.ActiveNodes
		}
		lat = append(lat, r.WallNanos)
	}
	if len(lat) > 0 {
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		s.RoundP50Nanos = percentile(lat, 50)
		s.RoundP95Nanos = percentile(lat, 95)
		s.RoundMaxNanos = lat[len(lat)-1]
	}
	if c.started && c.stopped {
		s.WallNanos = c.stopWall.Sub(c.startWall).Nanoseconds()
		s.AllocBytes = c.allocBytes
		s.Mallocs = c.mallocs
		if s.WallNanos > 0 {
			s.MsgsPerSec = float64(s.Messages) / (float64(s.WallNanos) / float64(time.Second))
		}
	}
	if len(c.events) > 0 {
		s.EventTotals = make(map[string]int64)
		for _, e := range c.events {
			s.EventTotals[e.Kind] += e.Value
		}
	}
	return s
}

// percentile returns the p-th percentile of a sorted latency slice using
// the nearest-rank method.
func percentile(sorted []int64, p int) int64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := (p*len(sorted) + 99) / 100
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// String renders the one-line human form printed by the locad CLI.
func (s Summary) String() string {
	return fmt.Sprintf("runs=%d rounds=%d messages=%d bytes=%d max_active=%d wall=%s p50=%s p95=%s max=%s msgs/s=%.0f allocs=%dB/%d",
		s.Runs, s.Rounds, s.Messages, s.Bytes, s.MaxActive,
		time.Duration(s.WallNanos), time.Duration(s.RoundP50Nanos),
		time.Duration(s.RoundP95Nanos), time.Duration(s.RoundMaxNanos),
		s.MsgsPerSec, s.AllocBytes, s.Mallocs)
}
