package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"
)

// TestSummaryZeroWallWindow pins the rate guard: a measurement window of
// exactly zero nanoseconds (possible on coarse clocks or trivially empty
// runs) must report MsgsPerSec 0, not +Inf or NaN — those are not valid
// JSON numbers and would poison JSONL traces and /v1/stats.
func TestSummaryZeroWallWindow(t *testing.T) {
	var c Collector
	c.RecordRound(RoundMetric{Engine: "scheduler", Round: 1, Messages: 42, Bytes: 420})
	now := time.Now()
	c.mu.Lock()
	c.started, c.stopped = true, true
	c.startWall, c.stopWall = now, now
	c.mu.Unlock()

	s := c.Summary()
	if s.WallNanos != 0 {
		t.Fatalf("window is not zero: %d ns", s.WallNanos)
	}
	if s.MsgsPerSec != 0 {
		t.Fatalf("MsgsPerSec = %v for a zero-duration window, want 0", s.MsgsPerSec)
	}
	if math.IsInf(s.MsgsPerSec, 0) || math.IsNaN(s.MsgsPerSec) {
		t.Fatalf("MsgsPerSec is not finite: %v", s.MsgsPerSec)
	}
	out, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("zero-duration summary does not marshal: %v", err)
	}
	for _, bad := range []string{"Inf", "NaN"} {
		if strings.Contains(string(out), bad) {
			t.Fatalf("marshaled summary contains %s: %s", bad, out)
		}
	}
}

// TestSummaryLogicalSplit checks the transport-vs-logical aggregation: the
// Logical* totals sum the per-round fields, and rounds without them leave
// the totals untouched (so stock-engine summaries marshal without the
// omitempty fields).
func TestSummaryLogicalSplit(t *testing.T) {
	var c Collector
	c.RecordRound(RoundMetric{Engine: "frugal", Round: 1, Messages: 10, Bytes: 100,
		LogicalMessages: 200, LogicalBytes: 2000})
	c.RecordRound(RoundMetric{Engine: "frugal", Round: 2, Messages: 5, Bytes: 50,
		LogicalMessages: 300, LogicalBytes: 3000})
	s := c.Summary()
	if s.Messages != 15 || s.Bytes != 150 {
		t.Fatalf("transport totals %d/%d, want 15/150", s.Messages, s.Bytes)
	}
	if s.LogicalMessages != 500 || s.LogicalBytes != 5000 {
		t.Fatalf("logical totals %d/%d, want 500/5000", s.LogicalMessages, s.LogicalBytes)
	}

	var stock Collector
	stock.RecordRound(RoundMetric{Engine: "scheduler", Round: 1, Messages: 10})
	out, err := json.Marshal(stock.Summary())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(out), "logical") {
		t.Fatalf("stock summary leaked logical fields: %s", out)
	}
}
