package obs

import (
	"bufio"
	"encoding/json"
	"io"
)

// traceLine is one JSONL trace record. Type is "round", "event" or
// "summary"; exactly one of the payload fields is set.
type traceLine struct {
	Type    string       `json:"type"`
	Round   *RoundMetric `json:"round,omitempty"`
	Event   *Event       `json:"event,omitempty"`
	Summary *Summary     `json:"summary,omitempty"`
}

// WriteJSONL streams the collector's contents as JSON Lines: one "round"
// record per engine round (recording order), one "event" record per event,
// and a final "summary" record. The schema is documented in the README's
// Observability section; `locad trace` and `locad exp -trace` produce it.
func (c *Collector) WriteJSONL(w io.Writer) error {
	if c == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, r := range c.Rounds() {
		r := r
		if err := enc.Encode(traceLine{Type: "round", Round: &r}); err != nil {
			return err
		}
	}
	for _, e := range c.Events() {
		e := e
		if err := enc.Encode(traceLine{Type: "event", Event: &e}); err != nil {
			return err
		}
	}
	s := c.Summary()
	if err := enc.Encode(traceLine{Type: "summary", Summary: &s}); err != nil {
		return err
	}
	return bw.Flush()
}
