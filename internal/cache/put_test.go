package cache

import (
	"fmt"
	"testing"
)

// TestPutInsertsAndReplaces: the direct-insertion path (replication imports)
// makes values resident without a compute, replaces existing entries
// in place, and counts every call.
func TestPutInsertsAndReplaces(t *testing.T) {
	c := New(100)
	if !c.Put("k", "v1", 10) {
		t.Fatal("Put rejected a fitting value")
	}
	v, hit, err := c.Do("k", func() (any, int64, error) {
		t.Fatal("Put value recomputed")
		return nil, 0, nil
	})
	if err != nil || !hit || v.(string) != "v1" {
		t.Fatalf("after Put: v=%v hit=%v err=%v", v, hit, err)
	}

	if !c.Put("k", "v2", 20) {
		t.Fatal("replacing Put rejected")
	}
	v, _, _ = c.Do("k", constant(nil, 0))
	if v.(string) != "v2" {
		t.Fatalf("replacement not visible: %v", v)
	}
	st := c.Stats()
	if st.Puts != 2 {
		t.Errorf("puts = %d, want 2", st.Puts)
	}
	if st.Entries != 1 || st.Bytes != 20 {
		t.Errorf("after replace: entries=%d bytes=%d, want 1/20", st.Entries, st.Bytes)
	}
}

// TestPutRespectsBound: oversized values are rejected (counted), a full
// cache evicts LRU entries to make room, and a disabled cache stores
// nothing.
func TestPutRespectsBound(t *testing.T) {
	c := New(100)
	if c.Put("huge", "v", 101) {
		t.Error("oversized Put accepted")
	}
	if st := c.Stats(); st.Rejected != 1 || st.Entries != 0 {
		t.Errorf("oversized Put: rejected=%d entries=%d", st.Rejected, st.Entries)
	}

	for i := 0; i < 10; i++ {
		c.Put(fmt.Sprintf("k%d", i), i, 10)
	}
	if !c.Put("big", "v", 50) {
		t.Fatal("Put into a full cache rejected instead of evicting")
	}
	st := c.Stats()
	if st.Bytes > 100 {
		t.Errorf("size bound violated: %d bytes", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Errorf("no evictions counted after overfilling")
	}
	if _, hit, _ := c.Do("big", constant(nil, 0)); !hit {
		t.Errorf("newest Put evicted instead of the LRU tail")
	}

	off := New(0)
	if off.Put("k", "v", 1) {
		t.Error("disabled cache accepted a Put")
	}
}
