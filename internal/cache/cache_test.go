package cache

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func constant(v any, size int64) func() (any, int64, error) {
	return func() (any, int64, error) { return v, size, nil }
}

func TestDoHitMissAndLRUOrder(t *testing.T) {
	c := New(100)
	for i := 0; i < 3; i++ {
		v, hit, err := c.Do(fmt.Sprintf("k%d", i), constant(i, 10))
		if err != nil || hit || v.(int) != i {
			t.Fatalf("first Do k%d: v=%v hit=%v err=%v", i, v, hit, err)
		}
	}
	v, hit, err := c.Do("k0", func() (any, int64, error) {
		t.Fatal("resident key recomputed")
		return nil, 0, nil
	})
	if err != nil || !hit || v.(int) != 0 {
		t.Fatalf("hit on k0: v=%v hit=%v err=%v", v, hit, err)
	}
	want := []string{"k0", "k2", "k1"} // k0 promoted to MRU by the hit
	got := c.Keys()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("LRU order %v, want %v", got, want)
	}
}

func TestEvictionRespectsBoundAndOrder(t *testing.T) {
	c := New(30)
	for i := 0; i < 3; i++ {
		c.Do(fmt.Sprintf("k%d", i), constant(i, 10))
	}
	// Touch k0 so k1 is the LRU, then insert past the bound.
	c.Do("k0", constant(0, 10))
	c.Do("k3", constant(3, 10))
	st := c.Stats()
	if st.Bytes > 30 {
		t.Fatalf("bytes %d exceed the bound", st.Bytes)
	}
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if _, hit, _ := c.Do("k1", constant(1, 10)); hit {
		t.Fatalf("LRU entry k1 survived eviction")
	}
}

func TestOversizedValueNotStored(t *testing.T) {
	c := New(10)
	v, hit, err := c.Do("big", constant("x", 11))
	if err != nil || hit || v.(string) != "x" {
		t.Fatalf("oversized compute: v=%v hit=%v err=%v", v, hit, err)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Rejected != 1 {
		t.Fatalf("oversized value stored: %+v", st)
	}
}

func TestDisabledCacheStillComputes(t *testing.T) {
	c := New(0)
	var n atomic.Int64
	compute := func() (any, int64, error) { return n.Add(1), 1, nil }
	c.Do("k", compute)
	_, hit, _ := c.Do("k", compute)
	if hit || n.Load() != 2 {
		t.Fatalf("disabled cache served a hit (computes=%d)", n.Load())
	}
}

func TestErrorsNotCached(t *testing.T) {
	c := New(100)
	boom := errors.New("boom")
	if _, _, err := c.Do("k", func() (any, int64, error) { return nil, 0, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, hit, err := c.Do("k", constant(7, 1))
	if err != nil || hit || v.(int) != 7 {
		t.Fatalf("retry after error: v=%v hit=%v err=%v", v, hit, err)
	}
}

func TestFlushDropsEntriesAndStaleInflight(t *testing.T) {
	c := New(100)
	c.Do("k", constant(1, 1))
	gate := make(chan struct{})
	entered := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, _, err := c.Do("slow", func() (any, int64, error) {
			close(entered)
			<-gate
			return 42, 1, nil
		})
		if err != nil || v.(int) != 42 {
			t.Errorf("slow compute: v=%v err=%v", v, err)
		}
	}()
	<-entered
	c.Flush()
	close(gate)
	<-done
	st := c.Stats()
	if st.Entries != 0 {
		t.Fatalf("flushed cache holds %d entries (stale in-flight value resurrected?)", st.Entries)
	}
	if st.Generation != 1 {
		t.Fatalf("generation = %d, want 1", st.Generation)
	}
	if st.Rejected != 1 {
		t.Fatalf("stale in-flight insert not counted as rejected: %+v", st)
	}
}

func TestSingleflightComputesOnce(t *testing.T) {
	c := New(1 << 20)
	var computes atomic.Int64
	release := make(chan struct{})
	const callers = 32
	var wg sync.WaitGroup
	results := make([]any, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := c.Do("shared", func() (any, int64, error) {
				computes.Add(1)
				<-release
				return "value", 5, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Let the herd pile up behind the first caller's compute.
	for c.Stats().Dedups < callers-1 {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times for %d concurrent callers", n, callers)
	}
	for i, v := range results {
		if v != "value" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
	st := c.Stats()
	if st.Computes != 1 || st.Dedups != callers-1 {
		t.Fatalf("stats %+v, want 1 compute and %d dedups", st, callers-1)
	}
}
