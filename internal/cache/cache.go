// Package cache is the artifact cache of the serving layer: a size-bounded,
// generation-stamped LRU with singleflight computation.
//
// The serving workload of ROADMAP.md is encode-once/decode-many: a graph is
// parsed once, its advice is encoded once, a decoder table is compiled once,
// and the resulting artifacts are then reused by many requests. The cache
// holds exactly those derived artifacts, keyed by strings built from the
// graph digest plus the schema name and parameters (the cache-key contract
// is documented in DESIGN.md). Three properties matter for serving:
//
//   - Size bound: the total charged size of resident entries never exceeds
//     MaxBytes; inserting past the bound evicts least-recently-used entries
//     first. Entries larger than the whole bound are computed but never
//     stored.
//   - Singleflight: concurrent Do calls for the same absent key run the
//     compute function once; the other callers block and share the result.
//     A thundering herd of identical requests costs one computation.
//   - Generations: Flush drops every entry and bumps the generation stamp.
//     A computation that was in flight across a Flush is handed to its
//     waiters but not inserted, so a flush cannot be undone by a stale
//     in-flight value.
//
// All methods are safe for concurrent use.
package cache

import (
	"container/list"
	"sync"
)

// Stats is a point-in-time snapshot of the cache counters. Hits, Dedups,
// Misses and Computes partition Do outcomes: every Do is a hit, a dedup
// (waited on another caller's compute), or a miss that ran Computes once.
type Stats struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	Dedups     uint64 `json:"dedups"`
	Computes   uint64 `json:"computes"`
	Evictions  uint64 `json:"evictions"`
	Rejected   uint64 `json:"rejected"` // computed values too large (or too late) to store
	Puts       uint64 `json:"puts"`     // direct insertions (replicated artifacts)
	Entries    int    `json:"entries"`
	Bytes      int64  `json:"bytes"`
	MaxBytes   int64  `json:"max_bytes"`
	Generation uint64 `json:"generation"`
}

// HitRate returns hits+dedups over all Do calls (0 when idle).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Dedups + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Dedups) / float64(total)
}

// Cache is the LRU. Construct with New; the zero value is not usable.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	gen      uint64
	bytes    int64
	ll       *list.List // front = most recently used
	byKey    map[string]*list.Element
	inflight map[string]*call

	hits, misses, dedups, computes, evictions, rejected, puts uint64
}

type entry struct {
	key   string
	value any
	size  int64
}

// call is one in-flight computation; waiters block on done.
type call struct {
	done  chan struct{}
	value any
	err   error
}

// New returns a cache bounded to maxBytes of charged entry sizes. A bound
// <= 0 disables storage entirely: every Do computes (with singleflight
// deduplication still active) and nothing is retained.
func New(maxBytes int64) *Cache {
	return &Cache{
		maxBytes: maxBytes,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		inflight: make(map[string]*call),
	}
}

// Do returns the cached value for key, or runs compute to produce it. The
// compute function returns the value together with its charged size in
// bytes. hit reports whether the caller was served without running compute
// itself (a resident entry or another caller's in-flight computation).
// Errors are never cached: every waiter of a failed compute receives the
// error, and the next Do for the key computes again.
func (c *Cache) Do(key string, compute func() (value any, size int64, err error)) (value any, hit bool, err error) {
	c.mu.Lock()
	if el, ok := c.byKey[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).value
		c.mu.Unlock()
		return v, true, nil
	}
	if cl, ok := c.inflight[key]; ok {
		c.dedups++
		c.mu.Unlock()
		<-cl.done
		return cl.value, true, cl.err
	}
	cl := &call{done: make(chan struct{})}
	c.inflight[key] = cl
	c.misses++
	c.computes++
	startGen := c.gen
	c.mu.Unlock()

	v, size, err := compute()
	cl.value, cl.err = v, err

	c.mu.Lock()
	delete(c.inflight, key)
	if err == nil {
		if c.gen != startGen || size > c.maxBytes || c.maxBytes <= 0 {
			// Flushed mid-compute, oversized, or storage disabled: serve the
			// value to every waiter but do not retain it.
			c.rejected++
		} else {
			el := c.ll.PushFront(&entry{key: key, value: v, size: size})
			c.byKey[key] = el
			c.bytes += size
			c.evictLocked()
		}
	}
	c.mu.Unlock()
	close(cl.done)
	return v, false, err
}

// Put inserts (or replaces) a value directly, bypassing singleflight: the
// artifact was produced elsewhere — a replication push from the owning shard
// in cluster mode — and only needs to become resident. Respects the size
// bound exactly like Do's insertion path (oversized values and disabled
// storage are rejected, LRU entries are evicted to make room) and reports
// whether the value is now resident. A racing in-flight Do computation for
// the same key is unaffected: its waiters get the computed value, and its
// insertion simply replaces this one.
func (c *Cache) Put(key string, value any, size int64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	if size > c.maxBytes || c.maxBytes <= 0 {
		c.rejected++
		return false
	}
	if el, ok := c.byKey[key]; ok {
		c.bytes -= el.Value.(*entry).size
		c.ll.Remove(el)
		delete(c.byKey, key)
	}
	el := c.ll.PushFront(&entry{key: key, value: value, size: size})
	c.byKey[key] = el
	c.bytes += size
	c.evictLocked()
	return true
}

// evictLocked drops least-recently-used entries until the size bound holds.
func (c *Cache) evictLocked() {
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			return
		}
		e := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.byKey, e.key)
		c.bytes -= e.size
		c.evictions++
	}
}

// Flush drops every resident entry and bumps the generation stamp, so
// computations in flight across the flush cannot reinsert stale values.
func (c *Cache) Flush() {
	c.mu.Lock()
	c.gen++
	c.ll.Init()
	c.byKey = make(map[string]*list.Element)
	c.bytes = 0
	c.mu.Unlock()
}

// Stats returns a snapshot of the counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses, Dedups: c.dedups, Computes: c.computes,
		Evictions: c.evictions, Rejected: c.rejected, Puts: c.puts,
		Entries: c.ll.Len(), Bytes: c.bytes, MaxBytes: c.maxBytes, Generation: c.gen,
	}
}

// Keys returns the resident keys from most to least recently used; the
// property tests compare this order against a reference model.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.ll.Len())
	for el := c.ll.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*entry).key)
	}
	return out
}

// Len returns the number of resident entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
