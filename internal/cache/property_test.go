package cache

import (
	"fmt"
	"math/rand"
	"testing"
)

// refModel is the executable specification the property test checks the
// cache against: a map plus an explicit MRU-first key list, with the same
// size bound and eviction rule.
type refModel struct {
	maxBytes int64
	bytes    int64
	order    []string // MRU first
	size     map[string]int64
	value    map[string]int
}

func newRefModel(maxBytes int64) *refModel {
	return &refModel{maxBytes: maxBytes, size: map[string]int64{}, value: map[string]int{}}
}

func (m *refModel) touch(key string) {
	for i, k := range m.order {
		if k == key {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.order = append([]string{key}, m.order...)
}

// do mirrors Cache.Do for a sequential caller; it returns the value and
// whether the model predicts a hit.
func (m *refModel) do(key string, val int, size int64) (int, bool) {
	if _, ok := m.size[key]; ok {
		m.touch(key)
		return m.value[key], true
	}
	if size > m.maxBytes || m.maxBytes <= 0 {
		return val, false
	}
	m.size[key] = size
	m.value[key] = val
	m.bytes += size
	m.touch(key)
	for m.bytes > m.maxBytes {
		lru := m.order[len(m.order)-1]
		m.order = m.order[:len(m.order)-1]
		m.bytes -= m.size[lru]
		delete(m.size, lru)
		delete(m.value, lru)
	}
	return val, false
}

func (m *refModel) flush() {
	m.order = nil
	m.bytes = 0
	m.size = map[string]int64{}
	m.value = map[string]int{}
}

// TestCachePropertyVsModel drives random put/get/flush sequences through the
// cache and the reference model in lockstep, checking after every operation
// that (1) the byte bound is never exceeded, (2) hit/miss outcomes and
// returned values agree, and (3) the resident keys agree in exact LRU order.
func TestCachePropertyVsModel(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		maxBytes := int64(rng.Intn(200) + 1)
		if trial == 0 {
			maxBytes = 0 // the disabled-storage edge case
		}
		c := New(maxBytes)
		m := newRefModel(maxBytes)
		keyspace := rng.Intn(20) + 5
		for op := 0; op < 400; op++ {
			if rng.Intn(50) == 0 {
				c.Flush()
				m.flush()
				continue
			}
			key := fmt.Sprintf("k%d", rng.Intn(keyspace))
			size := int64(rng.Intn(60) + 1)
			val := op
			gotV, gotHit, err := c.Do(key, func() (any, int64, error) { return val, size, nil })
			if err != nil {
				t.Fatalf("trial %d op %d: unexpected error %v", trial, op, err)
			}
			wantV, wantHit := m.do(key, val, size)
			if gotHit != wantHit {
				t.Fatalf("trial %d op %d key %s: hit=%v, model says %v", trial, op, key, gotHit, wantHit)
			}
			if gotV.(int) != wantV {
				t.Fatalf("trial %d op %d key %s: value %v, model says %v", trial, op, key, gotV, wantV)
			}
			st := c.Stats()
			if st.Bytes > maxBytes && maxBytes > 0 {
				t.Fatalf("trial %d op %d: resident bytes %d exceed bound %d", trial, op, st.Bytes, maxBytes)
			}
			if st.Bytes != m.bytes {
				t.Fatalf("trial %d op %d: bytes %d, model %d", trial, op, st.Bytes, m.bytes)
			}
			gotKeys, wantKeys := fmt.Sprint(c.Keys()), fmt.Sprint(m.order)
			if gotKeys != wantKeys {
				t.Fatalf("trial %d op %d: LRU order %s, model %s", trial, op, gotKeys, wantKeys)
			}
		}
	}
}
