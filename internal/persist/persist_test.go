package persist

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"localadvice/internal/bitstr"
	"localadvice/internal/eth"
	"localadvice/internal/local"
	"localadvice/internal/obs"
)

func TestRecordRoundTrip(t *testing.T) {
	cases := []struct {
		key     string
		kind    Kind
		payload []byte
	}{
		{"table:abc:mis@radius=0:def", KindTable, []byte("payload with spaces\nand newlines\x00and NULs")},
		{"advice:xyz", KindAdvice, nil},
		{"", KindAdvice, []byte{}},
		{"k", Kind(200), bytes.Repeat([]byte{0xff}, 1<<16)},
	}
	for _, c := range cases {
		rec := EncodeRecord(c.key, c.kind, c.payload)
		key, kind, payload, err := DecodeRecord(rec)
		if err != nil {
			t.Fatalf("decode %q: %v", c.key, err)
		}
		if key != c.key || kind != c.kind || !bytes.Equal(payload, c.payload) {
			t.Errorf("round trip %q: got (%q, %v, %d bytes)", c.key, key, kind, len(payload))
		}
	}
}

func TestRecordCorruptionRejected(t *testing.T) {
	rec := EncodeRecord("some:key", KindTable, []byte("some payload bytes"))
	// Flipping any single byte must be detected (magic, version, lengths,
	// key, payload, or the CRC itself).
	for i := range rec {
		bad := append([]byte(nil), rec...)
		bad[i] ^= 0x01
		if _, _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
			t.Errorf("byte %d flipped: err = %v, want ErrCorrupt", i, err)
		}
	}
	// Truncation at every length.
	for n := 0; n < len(rec); n++ {
		if _, _, _, err := DecodeRecord(rec[:n]); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated to %d bytes: err = %v, want ErrCorrupt", n, err)
		}
	}
	// Trailing garbage.
	if _, _, _, err := DecodeRecord(append(append([]byte(nil), rec...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: err = %v, want ErrCorrupt", err)
	}
}

func TestStorePutGet(t *testing.T) {
	m := &obs.StoreMetrics{}
	s, err := Open(t.TempDir(), m)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get("missing"); ok || err != nil {
		t.Fatalf("Get(missing) = ok %v, err %v", ok, err)
	}
	if err := s.Put("k1", KindAdvice, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	payload, kind, ok, err := s.Get("k1")
	if err != nil || !ok || kind != KindAdvice || string(payload) != "v1" {
		t.Fatalf("Get(k1) = (%q, %v, %v, %v)", payload, kind, ok, err)
	}
	// Overwrite.
	if err := s.Put("k1", KindTable, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	payload, kind, _, _ = s.Get("k1")
	if kind != KindTable || string(payload) != "v2" {
		t.Fatalf("after overwrite: (%q, %v)", payload, kind)
	}
	if err := s.Delete("k1"); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, _ := s.Get("k1"); ok {
		t.Error("Get(k1) ok after Delete")
	}
	if err := s.Delete("k1"); err != nil {
		t.Errorf("Delete of an absent key: %v", err)
	}
	snap := m.Snapshot()
	if snap.Hits != 2 || snap.Misses != 2 || snap.Puts != 2 {
		t.Errorf("metrics = %+v, want 2 hits, 2 misses, 2 puts", snap)
	}
}

// TestStoreCorruptFileIsMiss pins the self-healing contract: a damaged
// record surfaces as ErrCorrupt (never a panic, never stale data), and a
// subsequent Put replaces it cleanly.
func TestStoreCorruptFileIsMiss(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", KindAdvice, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Damage the record on disk.
	path := s.path("k")
	b, _ := os.ReadFile(path)
	b[len(b)/2] ^= 0xff
	os.WriteFile(path, b, 0o644)

	if _, _, ok, err := s.Get("k"); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on corrupt record = ok %v, err %v, want ErrCorrupt", ok, err)
	}
	if err := s.Put("k", KindAdvice, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	payload, _, ok, err := s.Get("k")
	if err != nil || !ok || string(payload) != "fresh" {
		t.Fatalf("after self-heal: (%q, %v, %v)", payload, ok, err)
	}
}

// TestStoreKeySwapDetected pins the filename<->key binding: renaming one
// record's file onto another key's filename is corruption, not a wrong
// answer.
func TestStoreKeySwapDetected(t *testing.T) {
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", KindAdvice, []byte("A")); err != nil {
		t.Fatal(err)
	}
	if err := os.Rename(s.path("a"), s.path("b")); err != nil {
		t.Fatal(err)
	}
	if _, _, ok, err := s.Get("b"); ok || !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get on swapped record = ok %v, err %v, want ErrCorrupt", ok, err)
	}
}

func TestStoreListVerifyGC(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{7}, 100)
	for _, k := range []string{"old", "mid", "new"} {
		if err := s.Put(k, KindTable, payload); err != nil {
			t.Fatal(err)
		}
		// Distinct mtimes so the eviction order is deterministic.
		now := time.Now()
		offset := map[string]time.Duration{"old": -2 * time.Hour, "mid": -time.Hour, "new": 0}[k]
		if err := os.Chtimes(s.path(k), now.Add(offset), now.Add(offset)); err != nil {
			t.Fatal(err)
		}
	}
	// A foreign file must be ignored, a corrupt record reported.
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a record"), 0o644)
	os.WriteFile(filepath.Join(dir, "junk.rec"), []byte("garbage"), 0o644)

	recs, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("List returned %d records, want 4 (3 valid + 1 corrupt)", len(recs))
	}
	total, corrupt, err := s.Verify()
	if err != nil || total != 4 || len(corrupt) != 1 || corrupt[0].File != "junk.rec" {
		t.Fatalf("Verify = (%d, %v, %v), want 4 records with junk.rec corrupt", total, corrupt, err)
	}

	// GC removes the corrupt record and evicts oldest-first to the budget.
	recSize := int64(len(EncodeRecord("old", KindTable, payload)))
	removed, _, err := s.GC(2 * recSize)
	if err != nil {
		t.Fatal(err)
	}
	if removed != 2 { // junk.rec + "old"
		t.Errorf("GC removed %d, want 2", removed)
	}
	if _, _, ok, _ := s.Get("old"); ok {
		t.Error("oldest record survived GC")
	}
	for _, k := range []string{"mid", "new"} {
		if _, _, ok, err := s.Get(k); !ok || err != nil {
			t.Errorf("record %q evicted or corrupt after GC: ok %v err %v", k, ok, err)
		}
	}
}

func TestAdviceCodecRoundTrip(t *testing.T) {
	cases := []local.Advice{
		nil,
		{},
		{bitstr.String{}},
		{bitstr.New(1), bitstr.New(0), bitstr.String{}},
		{bitstr.MustParse("110110111"), bitstr.MustParse("0"), bitstr.MustParse("1111111100000001")},
	}
	for i, a := range cases {
		got, err := DecodeAdvice(EncodeAdvice(a))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != len(a) {
			t.Fatalf("case %d: %d nodes, want %d", i, len(got), len(a))
		}
		for v := range a {
			if !got[v].Equal(a[v]) {
				t.Errorf("case %d node %d: %s != %s", i, v, got[v], a[v])
			}
		}
	}
}

func TestAdviceCodecRejectsDamage(t *testing.T) {
	b := EncodeAdvice(local.Advice{bitstr.MustParse("101"), bitstr.MustParse("11110000111")})
	for n := 0; n < len(b); n++ {
		if _, err := DecodeAdvice(b[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := DecodeAdvice(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestTablePersistRoundTrip drives the full store path a served table takes:
// compile -> binary encode -> record framing -> disk -> load, asserting the
// loaded table is semantically identical and re-encodes bit-identically.
func TestTablePersistRoundTrip(t *testing.T) {
	table := &eth.Table{Radius: 2, Entries: map[string]any{
		"n=3;center=0;e0,1;e1,2;v0:1:2:0;": 1,
		"n=3;center=1;e0,1;e1,2;v0:0:2:1;": 2,
		"key with spaces and\nnewlines":    -7,
	}}
	enc, dec := eth.IntBinaryCodec()
	var buf bytes.Buffer
	if err := table.SaveBinary(&buf, enc); err != nil {
		t.Fatal(err)
	}
	s, err := Open(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("table:k", KindTable, buf.Bytes()); err != nil {
		t.Fatal(err)
	}
	payload, kind, ok, err := s.Get("table:k")
	if err != nil || !ok || kind != KindTable {
		t.Fatalf("Get = (%v, %v, %v)", kind, ok, err)
	}
	got, err := eth.LoadTableBinary(bytes.NewReader(payload), dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Radius != table.Radius || len(got.Entries) != len(table.Entries) {
		t.Fatalf("loaded table shape (r=%d, %d entries) differs", got.Radius, len(got.Entries))
	}
	for k, v := range table.Entries {
		if got.Entries[k] != v {
			t.Errorf("entry %q: %v != %v", k, got.Entries[k], v)
		}
	}
	var again bytes.Buffer
	if err := got.SaveBinary(&again, enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("re-encoding the loaded table is not bit-identical")
	}
}
