// Package persist is the disk-backed artifact store of the serving layer:
// the layer *under* the internal/cache LRU that makes "decompress once,
// serve forever" literal. The expensive artifacts of the paper's pipeline —
// compiled eth.Tables (the finite lookup-table object a node consults in
// Section 8) and encoded advice — are written once to disk in a versioned,
// length-prefixed binary record format, so evictions and process restarts
// warm-start by loading flat bytes instead of re-running the engine.
//
// Layering (DESIGN.md §8): the LRU's singleflight compute closure consults
// the store first and falls back to the engine, writing the result back.
// Because both paths run inside the same singleflight call, a startup
// stampede of N identical requests performs at most one disk load or one
// engine compute per key — never both, never twice.
//
// On-disk layout: one file per record under the store directory, named
// sha256(key).rec, so keys of any shape and length map to safe filenames.
// Each file is a single self-describing record:
//
//	offset 0  magic  "LADS" (4 bytes)
//	       4  version uint16 (little-endian; currently 1)
//	       6  kind    uint8  (KindTable, KindAdvice, ...)
//	       7  zero    uint8  (reserved)
//	       8  keyLen  uint32
//	      12  payLen  uint32
//	      16  key bytes, then payload bytes
//	      __  crc32   uint32 (IEEE, over everything before it)
//
// Every field is length-prefixed and the whole record is covered by the
// CRC, so the format has no separator characters to escape and truncation,
// bit rot, or a foreign file are all rejected as ErrCorrupt rather than
// misparsed. Writes are atomic (temp file + rename), so a crash mid-write
// leaves either the old record or none.
//
// All Store methods are safe for concurrent use, including by multiple
// processes sharing a directory.
package persist

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync/atomic"
	"time"

	"localadvice/internal/obs"
)

// Kind tags what a record's payload is, so tooling (locad store ls) can
// label records without knowing every key schema.
type Kind uint8

const (
	// KindTable marks a compiled eth.Table in its binary form.
	KindTable Kind = 1
	// KindAdvice marks an encoded advice assignment in its binary form.
	KindAdvice Kind = 2
)

// String names the kind for tooling output.
func (k Kind) String() string {
	switch k {
	case KindTable:
		return "table"
	case KindAdvice:
		return "advice"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// ErrCorrupt is the typed rejection for any record that fails structural or
// CRC validation: wrong magic, unsupported version, truncated lengths,
// trailing garbage, checksum mismatch, or a key that does not match its
// filename. Callers treat a corrupt record as a miss and recompute.
var ErrCorrupt = errors.New("persist: corrupt record")

const (
	magic   = "LADS"
	version = 1
	// headerLen is the fixed prefix before key and payload bytes.
	headerLen = 16
	// crcLen is the trailing checksum.
	crcLen = 4
	// maxRecordLen bounds a single record (key + payload) to keep a corrupt
	// length field from driving a huge allocation.
	maxRecordLen = 1 << 30
)

// EncodeRecord frames a (key, kind, payload) triple as one on-disk record.
func EncodeRecord(key string, kind Kind, payload []byte) []byte {
	buf := make([]byte, 0, headerLen+len(key)+len(payload)+crcLen)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint16(buf, version)
	buf = append(buf, byte(kind), 0)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(key)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = append(buf, key...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	return buf
}

// DecodeRecord parses and validates one record. It never panics, whatever
// the bytes: every structural defect is reported as (wrapped) ErrCorrupt.
func DecodeRecord(b []byte) (key string, kind Kind, payload []byte, err error) {
	if len(b) < headerLen+crcLen {
		return "", 0, nil, fmt.Errorf("%w: %d bytes is shorter than any record", ErrCorrupt, len(b))
	}
	if string(b[:4]) != magic {
		return "", 0, nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, b[:4])
	}
	if v := binary.LittleEndian.Uint16(b[4:6]); v != version {
		return "", 0, nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, v, version)
	}
	kind = Kind(b[6])
	keyLen := int64(binary.LittleEndian.Uint32(b[8:12]))
	payLen := int64(binary.LittleEndian.Uint32(b[12:16]))
	if keyLen+payLen > maxRecordLen {
		return "", 0, nil, fmt.Errorf("%w: declared lengths %d+%d exceed the record bound", ErrCorrupt, keyLen, payLen)
	}
	total := headerLen + keyLen + payLen + crcLen
	if int64(len(b)) != total {
		return "", 0, nil, fmt.Errorf("%w: %d bytes, header declares %d", ErrCorrupt, len(b), total)
	}
	body := b[:total-crcLen]
	want := binary.LittleEndian.Uint32(b[total-crcLen:])
	if got := crc32.ChecksumIEEE(body); got != want {
		return "", 0, nil, fmt.Errorf("%w: CRC32 %08x, record claims %08x", ErrCorrupt, got, want)
	}
	key = string(b[headerLen : headerLen+keyLen])
	payload = b[headerLen+keyLen : headerLen+keyLen+payLen]
	return key, kind, payload, nil
}

// Store is a directory of records. Construct with Open; the zero value is
// not usable.
type Store struct {
	dir     string
	metrics *obs.StoreMetrics
	tmpSeq  atomic.Uint64
}

// Open creates (if needed) and returns a store rooted at dir. metrics may
// be nil.
func Open(dir string, metrics *obs.StoreMetrics) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("persist: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	return &Store{dir: dir, metrics: metrics}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// recExt is the record filename suffix; foreign files are ignored.
const recExt = ".rec"

// path maps a key to its record file: hashing the key keeps arbitrary key
// strings (which embed digests, schema params, and colons) filesystem-safe.
func (s *Store) path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(s.dir, hex.EncodeToString(sum[:])+recExt)
}

// Put atomically writes (or replaces) the record for key.
func (s *Store) Put(key string, kind Kind, payload []byte) error {
	start := time.Now()
	rec := EncodeRecord(key, kind, payload)
	tmp := filepath.Join(s.dir, fmt.Sprintf(".tmp-%d-%d", os.Getpid(), s.tmpSeq.Add(1)))
	if err := os.WriteFile(tmp, rec, 0o644); err != nil {
		s.metrics.ObserveError()
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmp, s.path(key)); err != nil {
		os.Remove(tmp)
		s.metrics.ObserveError()
		return fmt.Errorf("persist: %w", err)
	}
	s.metrics.ObservePut(time.Since(start), int64(len(payload)))
	return nil
}

// Get loads the record for key. ok is false on a clean miss (no record).
// A record that exists but fails validation returns ErrCorrupt (and counts
// as both an error and a miss in the metrics); callers are expected to
// fall through to recomputation, whose Put self-heals the record.
func (s *Store) Get(key string) (payload []byte, kind Kind, ok bool, err error) {
	start := time.Now()
	b, rerr := os.ReadFile(s.path(key))
	if rerr != nil {
		s.metrics.ObserveLoad(time.Since(start), 0, false)
		if errors.Is(rerr, fs.ErrNotExist) {
			return nil, 0, false, nil
		}
		s.metrics.ObserveError()
		return nil, 0, false, fmt.Errorf("persist: %w", rerr)
	}
	gotKey, kind, payload, derr := DecodeRecord(b)
	if derr == nil && gotKey != key {
		derr = fmt.Errorf("%w: record holds key %q, file is named for %q", ErrCorrupt, gotKey, key)
	}
	if derr != nil {
		s.metrics.ObserveLoad(time.Since(start), 0, false)
		s.metrics.ObserveError()
		return nil, 0, false, derr
	}
	s.metrics.ObserveLoad(time.Since(start), int64(len(payload)), true)
	return payload, kind, true, nil
}

// Delete removes the record for key (a no-op when absent).
func (s *Store) Delete(key string) error {
	err := os.Remove(s.path(key))
	if err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// RecordInfo describes one on-disk record for tooling (locad store ls /
// verify / gc). Err is non-nil for corrupt records; Key and Kind are only
// meaningful when Err is nil.
type RecordInfo struct {
	File    string // base filename under the store directory
	Key     string
	Kind    Kind
	Size    int64 // whole file, framing included
	Payload int64 // payload bytes only
	ModTime time.Time
	Err     error
}

// List reads and fully validates every record, sorted oldest-first by
// modification time (the GC eviction order). Foreign files are skipped.
func (s *Store) List() ([]RecordInfo, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var out []RecordInfo
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != recExt {
			continue
		}
		info := RecordInfo{File: e.Name()}
		if fi, err := e.Info(); err == nil {
			info.Size = fi.Size()
			info.ModTime = fi.ModTime()
		}
		b, err := os.ReadFile(filepath.Join(s.dir, e.Name()))
		if err != nil {
			info.Err = err
		} else {
			key, kind, payload, derr := DecodeRecord(b)
			info.Key, info.Kind, info.Payload, info.Err = key, kind, int64(len(payload)), derr
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModTime.Before(out[j].ModTime) })
	return out, nil
}

// Verify validates every record and returns the corrupt ones.
func (s *Store) Verify() (total int, corrupt []RecordInfo, err error) {
	recs, err := s.List()
	if err != nil {
		return 0, nil, err
	}
	for _, r := range recs {
		if r.Err != nil {
			corrupt = append(corrupt, r)
		}
	}
	return len(recs), corrupt, nil
}

// GC deletes every corrupt record, then evicts valid records oldest-first
// until the remaining total size is at most maxBytes (a zero budget evicts
// every valid record). It returns what was removed and the bytes freed.
func (s *Store) GC(maxBytes int64) (removed int, freed int64, err error) {
	recs, err := s.List()
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, r := range recs {
		if r.Err != nil {
			if rmErr := os.Remove(filepath.Join(s.dir, r.File)); rmErr == nil {
				removed++
				freed += r.Size
			}
			continue
		}
		total += r.Size
	}
	for _, r := range recs { // oldest-first from List
		if total <= maxBytes {
			break
		}
		if r.Err != nil {
			continue // already deleted above
		}
		if rmErr := os.Remove(filepath.Join(s.dir, r.File)); rmErr == nil {
			removed++
			freed += r.Size
			total -= r.Size
		}
	}
	return removed, freed, nil
}
