package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"testing"

	"localadvice/internal/eth"
)

// tableFromBytes deterministically derives a Table from fuzz input so the
// fuzzer explores the encoder, not just the parser: chunks of data become
// entry keys (arbitrary bytes — spaces, newlines, NULs are all legal in the
// binary format) and int outputs.
func tableFromBytes(data []byte) *eth.Table {
	t := &eth.Table{Radius: 0, Entries: map[string]any{}}
	if len(data) == 0 {
		return t
	}
	t.Radius = int(data[0]) % 64
	rest := data[1:]
	for len(rest) > 0 && len(t.Entries) < 64 {
		kl := int(rest[0])%16 + 1
		if kl > len(rest) {
			kl = len(rest)
		}
		key := string(rest[:kl])
		rest = rest[kl:]
		out := 0
		if len(rest) > 0 {
			out = int(int8(rest[0]))
			rest = rest[1:]
		}
		t.Entries[key] = out
	}
	return t
}

// FuzzTableBinary fuzzes the whole persisted-table stack: arbitrary bytes
// never panic any decoder (record framing, binary table codec, advice
// codec); a table built from the input round-trips bit-identically through
// SaveBinary -> record framing -> DecodeRecord -> LoadTableBinary; and
// flipping any byte of the framed record is rejected as ErrCorrupt.
func FuzzTableBinary(f *testing.F) {
	enc, dec := eth.IntBinaryCodec()

	// Seeds: a well-formed framed table record, a bare table payload, advice
	// bytes, and structured garbage (bad magic, lying lengths).
	seedTable := &eth.Table{Radius: 1, Entries: map[string]any{"n=2;center=0;e0,1;": 1, "k two": -2}}
	var payload bytes.Buffer
	if err := seedTable.SaveBinary(&payload, enc); err != nil {
		f.Fatal(err)
	}
	f.Add(EncodeRecord("table:seed", KindTable, payload.Bytes()))
	f.Add(payload.Bytes())
	f.Add([]byte("ETB1 not really a table"))
	f.Add([]byte("LADS junk with the right magic only"))
	f.Add(binary.LittleEndian.AppendUint32([]byte("ETB1\x00\x00\x00\x00"), 1<<31-1)) // huge declared count
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		// 1. Decode-arbitrary-bytes never panics, at any layer.
		if key, kind, pay, err := DecodeRecord(data); err == nil {
			_ = key
			_ = kind
			if _, err := eth.LoadTableBinary(bytes.NewReader(pay), dec); err == nil && kind == KindTable {
				// fine: a valid record holding a valid table
			}
		}
		if _, err := eth.LoadTableBinary(bytes.NewReader(data), dec); err != nil {
			_ = err
		}
		if _, err := DecodeAdvice(data); err != nil {
			_ = err
		}

		// 2. Encode -> frame -> decode -> re-encode round-trips bit-identically.
		table := tableFromBytes(data)
		var out bytes.Buffer
		if err := table.SaveBinary(&out, enc); err != nil {
			t.Fatalf("SaveBinary on a constructed table: %v", err)
		}
		rec := EncodeRecord("table:fuzz", KindTable, out.Bytes())
		key, kind, pay, err := DecodeRecord(rec)
		if err != nil || key != "table:fuzz" || kind != KindTable {
			t.Fatalf("DecodeRecord on a fresh record: (%q, %v, %v)", key, kind, err)
		}
		loaded, err := eth.LoadTableBinary(bytes.NewReader(pay), dec)
		if err != nil {
			t.Fatalf("LoadTableBinary on a fresh payload: %v", err)
		}
		if loaded.Radius != table.Radius || len(loaded.Entries) != len(table.Entries) {
			t.Fatalf("round trip changed shape: (%d, %d) vs (%d, %d)",
				loaded.Radius, len(loaded.Entries), table.Radius, len(table.Entries))
		}
		for k, v := range table.Entries {
			if loaded.Entries[k] != v {
				t.Fatalf("round trip changed entry %q: %v vs %v", k, loaded.Entries[k], v)
			}
		}
		var again bytes.Buffer
		if err := loaded.SaveBinary(&again, enc); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out.Bytes(), again.Bytes()) {
			t.Fatal("re-encoding the loaded table is not bit-identical")
		}

		// 3. Any single-byte corruption of the framed record is detected.
		if len(rec) > 0 {
			i := 0
			if len(data) > 0 {
				i = int(data[0]) % len(rec)
			}
			bad := append([]byte(nil), rec...)
			bad[i] ^= 0xa5
			if _, _, _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
				t.Fatalf("byte %d corrupted, err = %v, want ErrCorrupt", i, err)
			}
		}
	})
}
