package persist

import (
	"encoding/binary"
	"fmt"

	"localadvice/internal/bitstr"
	"localadvice/internal/local"
)

// Binary advice codec: the payload format of KindAdvice records and of the
// inline-advice form of the /v1/batch protocol. Unlike the textual "0101"
// per-node strings of the JSON API, the format is length-prefixed and
// bit-packed, so it has no separator characters at all:
//
//	u32  node count
//	per node: u16 bit length, then ceil(len/8) bytes, MSB-first
//
// All integers little-endian. EncodeAdvice∘DecodeAdvice is the identity on
// advice values, and DecodeAdvice never panics on arbitrary bytes.

// EncodeAdvice packs a per-node advice assignment into the binary form.
func EncodeAdvice(a local.Advice) []byte {
	size := 4
	for _, s := range a {
		size += 2 + (s.Len()+7)/8
	}
	buf := make([]byte, 0, size)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(a)))
	for _, s := range a {
		n := s.Len()
		buf = binary.LittleEndian.AppendUint16(buf, uint16(n))
		var cur byte
		for i := 0; i < n; i++ {
			cur |= byte(s.Bit(i)) << uint(7-i%8)
			if i%8 == 7 {
				buf = append(buf, cur)
				cur = 0
			}
		}
		if n%8 != 0 {
			buf = append(buf, cur)
		}
	}
	return buf
}

// maxAdviceNodes bounds the declared node count so a corrupt header cannot
// drive a huge allocation; it comfortably exceeds the server's graph bound.
const maxAdviceNodes = 1 << 24

// DecodeAdvice unpacks the binary advice form. Every structural defect
// (truncation, trailing bytes, an oversized node count, a bit string longer
// than its declared length allows) is an error, never a panic.
func DecodeAdvice(b []byte) (local.Advice, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("persist: advice payload of %d bytes has no header", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxAdviceNodes {
		return nil, fmt.Errorf("persist: advice declares %d nodes, bound is %d", n, maxAdviceNodes)
	}
	pos := 4
	advice := make(local.Advice, n)
	bits := make([]int, 0, 64)
	for v := uint32(0); v < n; v++ {
		if pos+2 > len(b) {
			return nil, fmt.Errorf("persist: advice truncated at node %d", v)
		}
		bitLen := int(binary.LittleEndian.Uint16(b[pos:]))
		pos += 2
		byteLen := (bitLen + 7) / 8
		if pos+byteLen > len(b) {
			return nil, fmt.Errorf("persist: advice truncated in node %d's bits", v)
		}
		bits = bits[:0]
		for i := 0; i < bitLen; i++ {
			bits = append(bits, int(b[pos+i/8]>>uint(7-i%8)&1))
		}
		advice[v] = bitstr.New(bits...)
		pos += byteLen
	}
	if pos != len(b) {
		return nil, fmt.Errorf("persist: %d trailing bytes after advice", len(b)-pos)
	}
	return advice, nil
}
