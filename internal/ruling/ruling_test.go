package ruling

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
)

func randomGraphs(seed int64, count int) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*graph.Graph, 0, count)
	for i := 0; i < count; i++ {
		g := graph.RandomGNP(20+rng.Intn(20), 0.15, rng)
		graph.AssignPermutedIDs(g, rng)
		out = append(out, g)
	}
	return out
}

func TestMISOnKnownGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		size int // expected greedy MIS size (IDs sequential)
	}{
		{"path4", graph.Path(4), 2},
		{"cycle5", graph.Cycle(5), 2},
		{"star5", graph.Star(5), 1}, // center has ID 1, chosen first
		{"k4", graph.Complete(4), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := MIS(tt.g)
			if !IsMaximalIndependent(tt.g, s) {
				t.Fatalf("MIS invalid: %v", s)
			}
			if len(s) != tt.size {
				t.Errorf("|MIS| = %d, want %d", len(s), tt.size)
			}
		})
	}
}

func TestMISRandom(t *testing.T) {
	for i, g := range randomGraphs(1, 10) {
		if s := MIS(g); !IsMaximalIndependent(g, s) {
			t.Errorf("graph %d: invalid MIS", i)
		}
	}
}

func TestMISIsRulingSet(t *testing.T) {
	g := graph.Grid2D(4, 4)
	s := MIS(g)
	if err := CheckRulingSet(g, s, 2, 1); err != nil {
		t.Errorf("MIS is not a (2,1)-ruling set: %v", err)
	}
}

func TestRulingSetParameters(t *testing.T) {
	g := graph.Cycle(30)
	for _, alpha := range []int{2, 3, 5, 8} {
		s, err := RulingSet(g, alpha, alpha-1)
		if err != nil {
			t.Fatalf("alpha=%d: %v", alpha, err)
		}
		if err := CheckRulingSet(g, s, alpha, alpha-1); err != nil {
			t.Errorf("alpha=%d: %v", alpha, err)
		}
		if len(s) == 0 {
			t.Errorf("alpha=%d: empty ruling set", alpha)
		}
	}
}

func TestRulingSetRandom(t *testing.T) {
	for i, g := range randomGraphs(2, 8) {
		s, err := RulingSet(g, 3, 2)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckRulingSet(g, s, 3, 2); err != nil {
			t.Errorf("graph %d: %v", i, err)
		}
	}
}

func TestRulingSetArgErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := RulingSet(g, 0, 5); err == nil {
		t.Error("alpha=0 accepted")
	}
	if _, err := RulingSet(g, 4, 2); err == nil {
		t.Error("beta < alpha-1 accepted")
	}
}

func TestCheckRulingSetRejects(t *testing.T) {
	g := graph.Path(6)
	// Nodes 0 and 1 are adjacent: violates alpha=2.
	if err := CheckRulingSet(g, []int{0, 1, 5}, 2, 1); err == nil {
		t.Error("adjacent ruling nodes accepted")
	}
	// Node 5 uncovered with beta=1 if set={0}.
	if err := CheckRulingSet(g, []int{0}, 2, 1); err == nil {
		t.Error("uncovered node accepted")
	}
}

func TestDistanceColoring(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		for i, g := range randomGraphs(int64(3+d), 5) {
			colors, k := DistanceColoring(g, d)
			if err := CheckDistanceColoring(g, colors, d); err != nil {
				t.Errorf("d=%d graph %d: %v", d, i, err)
			}
			if k < 1 {
				t.Errorf("d=%d graph %d: no colors", d, i)
			}
			// Color count is at most the max ball size (greedy bound).
			maxBall := 0
			for v := 0; v < g.N(); v++ {
				if b := len(g.Ball(v, d)); b > maxBall {
					maxBall = b
				}
			}
			if k > maxBall {
				t.Errorf("d=%d graph %d: %d colors exceeds greedy bound %d", d, i, k, maxBall)
			}
		}
	}
}

func TestDistanceColoringOnCycle(t *testing.T) {
	g := graph.Cycle(12)
	colors, _ := DistanceColoring(g, 3)
	if err := CheckDistanceColoring(g, colors, 3); err != nil {
		t.Fatal(err)
	}
}

func TestIndependentSubsetSpacing(t *testing.T) {
	g := graph.Path(20)
	all := make([]int, 20)
	for i := range all {
		all[i] = i
	}
	s := IndependentSubset(g, all, 4)
	for _, u := range s {
		for _, v := range s {
			if u != v && g.Dist(u, v) <= 4 {
				t.Fatalf("nodes %d,%d too close", u, v)
			}
		}
	}
	if len(s) < 3 {
		t.Errorf("subset too small: %v", s)
	}
}

func TestGreedyDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := graph.RandomGNP(25, 0.2, rng)
	graph.AssignPermutedIDs(g, rng)
	a := MIS(g)
	b := MIS(g.Clone())
	if len(a) != len(b) {
		t.Fatal("MIS not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("MIS not deterministic")
		}
	}
}
