// Package ruling provides maximal independent sets, (α, β)-ruling sets, and
// distance-k colorings — the clustering primitives behind the advice schemas
// of Sections 4, 6 and 7.
//
// An (α, β)-ruling set (Section 3.1) is a set S of nodes at pairwise
// distance >= α such that every node outside S has a node of S within
// distance β. An MIS is exactly a (2, 1)-ruling set. All constructions here
// are the greedy ones the paper appeals to ("such a set can be computed
// greedily"), made deterministic by processing nodes in increasing ID order,
// so their output depends only on the graph and its identifiers.
package ruling

import (
	"fmt"
	"sort"

	"localadvice/internal/graph"
)

// byID returns the node indices of g sorted by increasing identifier.
func byID(g *graph.Graph) []int {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.ID(order[a]) < g.ID(order[b]) })
	return order
}

// MIS returns a maximal independent set of g, greedily by increasing ID.
func MIS(g *graph.Graph) []int {
	inSet := make([]bool, g.N())
	blocked := make([]bool, g.N())
	var out []int
	for _, v := range byID(g) {
		if blocked[v] {
			continue
		}
		inSet[v] = true
		out = append(out, v)
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	return out
}

// IsIndependent reports whether no two nodes of s are adjacent in g.
func IsIndependent(g *graph.Graph, s []int) bool {
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	for _, v := range s {
		for _, w := range g.Neighbors(v) {
			if in[w] {
				return false
			}
		}
	}
	return true
}

// IsMaximalIndependent reports whether s is an MIS of g.
func IsMaximalIndependent(g *graph.Graph, s []int) bool {
	if !IsIndependent(g, s) {
		return false
	}
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	for v := 0; v < g.N(); v++ {
		if in[v] {
			continue
		}
		dominated := false
		for _, w := range g.Neighbors(v) {
			if in[w] {
				dominated = true
				break
			}
		}
		if !dominated {
			return false
		}
	}
	return true
}

// RulingSet returns an (alpha, beta)-ruling set of g for beta >= alpha-1,
// built greedily: nodes are taken in increasing ID order and added when no
// already-chosen node is within distance alpha-1. The greedy construction
// achieves covering radius alpha-1 <= beta.
func RulingSet(g *graph.Graph, alpha, beta int) ([]int, error) {
	if alpha < 1 {
		return nil, fmt.Errorf("ruling: alpha must be >= 1, got %d", alpha)
	}
	if beta < alpha-1 {
		return nil, fmt.Errorf("ruling: greedy construction needs beta >= alpha-1, got alpha=%d beta=%d", alpha, beta)
	}
	// coverDist[v] < alpha-? We track distance to the nearest chosen node up
	// to alpha-1 via repeated truncated BFS from each chosen node.
	nearest := make([]int, g.N())
	for i := range nearest {
		nearest[i] = -1 // unknown / far
	}
	var out []int
	for _, v := range byID(g) {
		if nearest[v] != -1 {
			continue
		}
		out = append(out, v)
		// Mark everything within distance alpha-1 as covered.
		type qe struct{ node, d int }
		queue := []qe{{v, 0}}
		seen := map[int]bool{v: true}
		nearest[v] = 0
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if cur.d == alpha-1 {
				continue
			}
			for _, w := range g.Neighbors(cur.node) {
				if !seen[w] {
					seen[w] = true
					nearest[w] = cur.d + 1
					queue = append(queue, qe{w, cur.d + 1})
				}
			}
		}
	}
	return out, nil
}

// CheckRulingSet verifies that s is an (alpha, beta)-ruling set of g,
// checking both the pairwise-distance and the covering condition (within
// each connected component).
func CheckRulingSet(g *graph.Graph, s []int, alpha, beta int) error {
	in := make(map[int]bool, len(s))
	for _, v := range s {
		in[v] = true
	}
	for _, v := range s {
		dist := g.BFSFrom(v)
		for _, w := range s {
			if w != v && dist[w] != -1 && dist[w] < alpha {
				return fmt.Errorf("ruling: nodes %d and %d at distance %d < alpha=%d", v, w, dist[w], alpha)
			}
		}
	}
	// Covering: every node must have some s-node within beta, unless its
	// whole component has no s-node (impossible for nonempty components
	// produced by the greedy algorithm, but check defensively).
	covered := make([]bool, g.N())
	for _, v := range s {
		for _, w := range g.Ball(v, beta) {
			covered[w] = true
		}
	}
	for v := 0; v < g.N(); v++ {
		if !covered[v] {
			return fmt.Errorf("ruling: node %d has no ruling-set node within beta=%d", v, beta)
		}
	}
	return nil
}

// DistanceColoring returns a coloring (values 1..k for some k) such that any
// two distinct nodes with the same color are at distance > d in g; i.e., a
// proper coloring of the power graph G^d, found greedily by increasing ID.
// It returns the coloring and the number of colors used.
func DistanceColoring(g *graph.Graph, d int) ([]int, int) {
	colors := make([]int, g.N())
	maxColor := 0
	for _, v := range byID(g) {
		used := map[int]bool{}
		for _, w := range g.Ball(v, d) {
			if w != v && colors[w] != 0 {
				used[colors[w]] = true
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colors[v] = c
		if c > maxColor {
			maxColor = c
		}
	}
	return colors, maxColor
}

// CheckDistanceColoring verifies that same-colored nodes are at distance > d.
func CheckDistanceColoring(g *graph.Graph, colors []int, d int) error {
	for v := 0; v < g.N(); v++ {
		for _, w := range g.Ball(v, d) {
			if w != v && colors[w] == colors[v] {
				return fmt.Errorf("ruling: nodes %d and %d share color %d within distance %d", v, w, colors[v], d)
			}
		}
	}
	return nil
}

// IndependentSubset returns a maximal subset of candidates that is an
// independent set in g^spacing (pairwise distance > spacing... precisely:
// pairwise distance >= spacing+1), chosen greedily by increasing ID. Used
// where schemas need "an α-independent set inside Z".
func IndependentSubset(g *graph.Graph, candidates []int, spacing int) []int {
	sorted := append([]int(nil), candidates...)
	sort.Slice(sorted, func(a, b int) bool { return g.ID(sorted[a]) < g.ID(sorted[b]) })
	var out []int
	for _, v := range sorted {
		ok := true
		dist := g.BFSFrom(v)
		for _, u := range out {
			if dist[u] != -1 && dist[u] <= spacing {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, v)
		}
	}
	return out
}
