// Package decomp implements seeded low-diameter graph decomposition: the
// (β, O(log n/β)) partition of Miller–Peng–Xu exponential shifts, computed
// as one multi-source BFS with shifted start times over the cached CSR
// snapshot.
//
// Every node v draws an integer shift δ_v from a discretized exponential
// distribution with rate β (seeded, deterministic) and conceptually starts a
// BFS wave at time maxShift − δ_v; a node joins the ball of the first wave
// to reach it. Equivalently, v joins the center u minimizing dist(u,v) − δ_u
// — the MPX construction, which cuts each edge with probability O(β) and
// bounds every ball's radius by its center's shift (≤ O(log n / β) with
// high probability).
//
// The decomposition is deterministic in (graph, β, seed) and bit-identical
// for every worker count: parallel frontier scans buffer their claims per
// worker and the claims are merged single-threaded in worker order, which
// reproduces the sequential first-discoverer-wins order exactly. That makes
// it safe to use both as a measurable workload (experiment E11, `locad
// decomp`) and as the scheduler's locality-aware sharding stage
// (ShardPartition).
package decomp

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"localadvice/internal/graph"
)

// ErrBeta tags decompositions requested with a non-positive or non-finite
// rate β. β must satisfy 0 < β < ∞: the expected shift is 1/β, so β = 0
// would never terminate the shift draw and a negative or NaN rate has no
// distributional meaning.
var ErrBeta = errors.New("decomp: beta must be positive and finite")

// Decomposition is the result of Decompose: a partition of the nodes into
// balls of radius bounded by their center's shift.
type Decomposition struct {
	Beta float64 // the rate the shifts were drawn with
	Seed int64   // the RNG seed

	Ball    []int32 // node -> ball index (always assigned, exactly one ball)
	Shift   []int32 // node -> its drawn integer shift δ_v
	Depth   []int32 // node -> hop distance from its ball's center
	Centers []int32 // ball -> center node; Ball[Centers[b]] == b, Depth == 0
	Radius  []int32 // ball -> max member depth; Radius[b] <= Shift[Centers[b]]

	MaxShift int32 // max over Shift (the BFS start-time horizon)
	CutEdges int   // edges whose endpoints lie in different balls
	Edges    int   // total edges m of the decomposed graph
}

// Balls returns the number of balls.
func (d *Decomposition) Balls() int { return len(d.Centers) }

// CutFraction returns CutEdges/Edges, or 0 on an edgeless graph. Always in
// [0, 1].
func (d *Decomposition) CutFraction() float64 {
	if d.Edges == 0 {
		return 0
	}
	return float64(d.CutEdges) / float64(d.Edges)
}

// MaxRadius returns the largest ball radius (0 on an empty graph).
func (d *Decomposition) MaxRadius() int {
	r := 0
	for _, x := range d.Radius {
		if int(x) > r {
			r = int(x)
		}
	}
	return r
}

// MeanRadius returns the mean ball radius (0 when there are no balls).
func (d *Decomposition) MeanRadius() float64 {
	if len(d.Radius) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range d.Radius {
		sum += float64(x)
	}
	return sum / float64(len(d.Radius))
}

// Decompose computes the (β, ·) decomposition of g with the given seed on a
// single worker. See DecomposeWorkers for the parallel form; outputs are
// bit-identical for every worker count.
func Decompose(g *graph.Graph, beta float64, seed int64) (*Decomposition, error) {
	return DecomposeWorkers(g, beta, seed, 1)
}

// claim is one frontier node's candidate ownership of an unvisited neighbor.
type claim struct {
	node  int32
	ball  int32
	depth int32
}

// DecomposeWorkers is Decompose with an explicit worker count, following the
// engines' contract: negative clamps to 1, zero expands to GOMAXPROCS, and
// the count is capped to the node count. The frontier of each time step is
// split contiguously among the workers, each worker buffers its candidate
// claims, and the buffers are merged single-threaded in worker order — the
// exact order a sequential scan of the frontier would produce — so the
// assignment is bit-identical for every worker count.
func DecomposeWorkers(g *graph.Graph, beta float64, seed int64, workers int) (*Decomposition, error) {
	if math.IsNaN(beta) || math.IsInf(beta, 0) || beta <= 0 {
		return nil, fmt.Errorf("%w: got %v", ErrBeta, beta)
	}
	n := g.N()
	switch {
	case workers < 0:
		workers = 1
	case workers == 0:
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}

	d := &Decomposition{
		Beta:  beta,
		Seed:  seed,
		Ball:  make([]int32, n),
		Shift: make([]int32, n),
		Depth: make([]int32, n),
		Edges: g.M(),
	}
	if n == 0 {
		return d, nil
	}

	// Integer exponential shifts via the inverse CDF, floor-discretized
	// (a geometric distribution with success probability 1-e^-β). Shifts
	// are capped at n: a shift beyond n cannot change the assignment (every
	// wave has reached every node by then) but would stretch the start-time
	// horizon arbitrarily for tiny β.
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v < n; v++ {
		u := rng.Float64() // in [0, 1), so 1-u is in (0, 1]
		// Clamp in float64 before converting: for tiny β the draw can
		// overflow int32, and a float64→int32 conversion out of range is
		// implementation-defined in Go.
		x := -math.Log(1-u) / beta
		if x > float64(n) {
			x = float64(n)
		}
		shift := int32(x)
		d.Shift[v] = shift
		if shift > d.MaxShift {
			d.MaxShift = shift
		}
	}

	// starters[t] lists the nodes whose wave starts at time t = maxShift −
	// δ_v, in node-index order (the deterministic injection order: when two
	// unclaimed nodes start at the same time, the smaller index becomes a
	// center first).
	starters := make([][]int32, d.MaxShift+1)
	for v := 0; v < n; v++ {
		t := d.MaxShift - d.Shift[v]
		starters[t] = append(starters[t], int32(v))
	}

	csr := g.Snapshot()
	s := graph.NewBFSScratch()
	s.Begin(n)

	// Per-worker claim buffers for the parallel frontier scan; claims[0]
	// doubles as the sequential buffer. Total claims over the whole run are
	// bounded by 2m (each node's frontier membership lasts exactly one
	// step), so the buffers amortize.
	bufs := make([][]claim, workers)
	var pending []claim

	frontHead := 0
	for t := int32(0); len(s.Order()) < n; t++ {
		if t > d.MaxShift+int32(n) {
			// Unreachable: every node self-starts by maxShift and waves
			// advance one hop per step.
			return nil, fmt.Errorf("decomp: traversal did not terminate (visited %d of %d)", len(s.Order()), n)
		}
		// Claims generated at t-1 land now, in frontier-scan order; first
		// claim per node wins.
		for _, c := range pending {
			if !s.Visited(int(c.node)) {
				d.Ball[c.node] = c.ball
				s.Visit(int(c.node), int(c.depth))
			}
		}
		// Then unclaimed starters of this step become new centers. The
		// order (claims before injections) is the tie rule: at equal
		// arrival time an incoming wave beats self-starting.
		if t <= d.MaxShift {
			for _, v := range starters[t] {
				if !s.Visited(int(v)) {
					d.Ball[v] = int32(len(d.Centers))
					d.Centers = append(d.Centers, v)
					s.Visit(int(v), 0)
				}
			}
		}
		frontier := s.Order()[frontHead:]
		frontHead = len(s.Order())
		pending = pending[:0]
		if len(frontier) == 0 {
			continue
		}
		if workers <= 1 || len(frontier) < 2*workers {
			pending = scanFrontier(csr, s, d.Ball, frontier, pending)
			continue
		}
		// Parallel scan: contiguous frontier chunks, claims buffered per
		// worker. Workers only read the visited set (nothing writes it
		// during the scan), so the chunks are data-race free; the merge in
		// worker order below is identical to one sequential left-to-right
		// frontier scan.
		chunk := (len(frontier) + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := min(lo+chunk, len(frontier))
			if lo >= hi {
				bufs[w] = bufs[w][:0]
				continue
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				bufs[w] = scanFrontier(csr, s, d.Ball, frontier[lo:hi], bufs[w][:0])
			}(w, lo, hi)
		}
		wg.Wait()
		for w := 0; w < workers; w++ {
			pending = append(pending, bufs[w]...)
		}
	}

	// Depths, radii, cut edges.
	d.Radius = make([]int32, len(d.Centers))
	for v := 0; v < n; v++ {
		depth := int32(s.Dist(v))
		d.Depth[v] = depth
		if b := d.Ball[v]; depth > d.Radius[b] {
			d.Radius[b] = depth
		}
	}
	for e := 0; e < d.Edges; e++ {
		ed := g.Edge(e)
		if d.Ball[ed.U] != d.Ball[ed.V] {
			d.CutEdges++
		}
	}
	return d, nil
}

// scanFrontier appends to buf one claim per (frontier node, unvisited
// neighbor) pair, in frontier order then port order. Reads only the scratch's
// visited set and the ball assignment of visited nodes; never writes either.
func scanFrontier(csr *graph.CSR, s *graph.BFSScratch, ball []int32, frontier []int32, buf []claim) []claim {
	for _, u := range frontier {
		du := int32(s.Dist(int(u)))
		b := ball[u]
		for _, w := range csr.Neighbors(int(u)) {
			if !s.Visited(int(w)) {
				buf = append(buf, claim{node: w, ball: b, depth: du + 1})
			}
		}
	}
	return buf
}

// Validate checks the structural invariants of d against g and returns the
// first violation: every node in exactly one ball; each ball's center is its
// own member at depth 0; every non-center node has a same-ball neighbor one
// hop closer to the center (so Depth is a true BFS distance); every depth is
// bounded by the center's shift (the MPX radius guarantee); Radius is the
// exact per-ball depth maximum; and CutEdges matches a recount. The property
// suite and FuzzDecompose both assert a nil result.
func (d *Decomposition) Validate(g *graph.Graph) error {
	n := g.N()
	if len(d.Ball) != n || len(d.Shift) != n || len(d.Depth) != n {
		return fmt.Errorf("decomp: per-node slices sized %d/%d/%d for a %d-node graph",
			len(d.Ball), len(d.Shift), len(d.Depth), n)
	}
	if len(d.Radius) != len(d.Centers) {
		return fmt.Errorf("decomp: %d radii for %d balls", len(d.Radius), len(d.Centers))
	}
	if n == 0 {
		if len(d.Centers) != 0 {
			return fmt.Errorf("decomp: %d balls on an empty graph", len(d.Centers))
		}
		return nil
	}
	if len(d.Centers) == 0 {
		return errors.New("decomp: no balls on a non-empty graph")
	}
	for b, c := range d.Centers {
		if c < 0 || int(c) >= n {
			return fmt.Errorf("decomp: ball %d center %d out of range", b, c)
		}
		if d.Ball[c] != int32(b) {
			return fmt.Errorf("decomp: ball %d center %d assigned to ball %d", b, c, d.Ball[c])
		}
		if d.Depth[c] != 0 {
			return fmt.Errorf("decomp: ball %d center %d at depth %d", b, c, d.Depth[c])
		}
	}
	csr := g.Snapshot()
	maxDepth := make([]int32, len(d.Centers))
	for v := 0; v < n; v++ {
		b := d.Ball[v]
		if b < 0 || int(b) >= len(d.Centers) {
			return fmt.Errorf("decomp: node %d in out-of-range ball %d", v, b)
		}
		depth := d.Depth[v]
		if depth < 0 {
			return fmt.Errorf("decomp: node %d unassigned (depth %d)", v, depth)
		}
		if c := d.Centers[b]; depth > d.Shift[c] {
			return fmt.Errorf("decomp: node %d at depth %d exceeds its center %d's shift %d",
				v, depth, c, d.Shift[c])
		}
		if depth > maxDepth[b] {
			maxDepth[b] = depth
		}
		if depth > 0 {
			ok := false
			for _, w := range csr.Neighbors(v) {
				if d.Ball[w] == b && d.Depth[w] == depth-1 {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("decomp: node %d at depth %d has no same-ball neighbor at depth %d",
					v, depth, depth-1)
			}
		} else if d.Centers[b] != int32(v) {
			return fmt.Errorf("decomp: node %d at depth 0 is not ball %d's center", v, b)
		}
	}
	for b := range d.Radius {
		if d.Radius[b] != maxDepth[b] {
			return fmt.Errorf("decomp: ball %d radius %d, member depths reach %d", b, d.Radius[b], maxDepth[b])
		}
	}
	cut := 0
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		if d.Ball[ed.U] != d.Ball[ed.V] {
			cut++
		}
	}
	if cut != d.CutEdges || d.Edges != g.M() {
		return fmt.Errorf("decomp: recorded %d/%d cut edges, recounted %d/%d", d.CutEdges, d.Edges, cut, g.M())
	}
	if f := d.CutFraction(); f < 0 || f > 1 {
		return fmt.Errorf("decomp: cut fraction %v outside [0,1]", f)
	}
	return nil
}
