package decomp

import (
	"fmt"
	"sort"

	"localadvice/internal/graph"
)

// EventGraph builds the dependency graph of a constraint system: one node
// per event, an edge between two events iff they share a variable. It is
// the adapter between internal/lll's compiled instances and Decompose —
// the deterministic decomposed solver partitions this graph into
// low-diameter balls and runs conditional expectations ball-by-ball.
//
// vars(e) lists the variables of event e; duplicate occurrences (within one
// event or across the pair) are deduplicated, self-loops never arise, and
// edges are inserted in sorted order so the adjacency structure — and
// therefore any seeded decomposition of it — is a pure function of the
// incidence, independent of callback iteration quirks.
func EventGraph(events int, vars func(event int) []int) (*graph.Graph, error) {
	if events < 0 {
		return nil, fmt.Errorf("decomp: negative event count %d", events)
	}
	if vars == nil && events > 0 {
		return nil, fmt.Errorf("decomp: nil vars callback")
	}
	byVar := make(map[int][]int)
	for e := 0; e < events; e++ {
		for _, v := range vars(e) {
			if v < 0 {
				return nil, fmt.Errorf("decomp: event %d references negative variable %d", e, v)
			}
			bucket := byVar[v]
			// Events are scanned in increasing order, so a duplicate listing
			// of v inside event e lands at the bucket tail — skip it there.
			if len(bucket) > 0 && bucket[len(bucket)-1] == e {
				continue
			}
			byVar[v] = append(bucket, e)
		}
	}
	type pair struct{ u, v int }
	var pairs []pair
	for _, bucket := range byVar {
		for i := 0; i < len(bucket); i++ {
			for j := i + 1; j < len(bucket); j++ {
				pairs = append(pairs, pair{bucket[i], bucket[j]})
			}
		}
	}
	sort.Slice(pairs, func(a, b int) bool {
		if pairs[a].u != pairs[b].u {
			return pairs[a].u < pairs[b].u
		}
		return pairs[a].v < pairs[b].v
	})
	g := graph.New(events)
	for i, p := range pairs {
		if i > 0 && p == pairs[i-1] {
			continue
		}
		if _, err := g.AddEdge(p.u, p.v); err != nil {
			return nil, fmt.Errorf("decomp: event graph edge {%d,%d}: %w", p.u, p.v, err)
		}
	}
	return g, nil
}
