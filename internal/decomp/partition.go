package decomp

import (
	"sort"

	"localadvice/internal/graph"
	"localadvice/internal/local"
)

// Shards packs whole balls onto `workers` shards for the sharded scheduler:
// balls are taken in decreasing size (ties by ball index) and assigned
// greedily to the currently lightest shard (ties by shard index), and each
// shard's node list is in ascending node-index order (memory-friendly
// sweeps). Keeping balls whole is what makes the shards low-cut: two nodes
// of the same ball — within 2·radius hops of each other — always land on
// the same worker, so cross-shard slab traffic is bounded by the cut edges.
//
// The result is exactly `workers` lists (some possibly empty) that cover
// every node exactly once: a valid local.Partition result by construction.
func (d *Decomposition) Shards(workers int) [][]int32 {
	if workers < 1 {
		workers = 1
	}
	sizes := make([]int, d.Balls())
	for _, b := range d.Ball {
		sizes[b]++
	}
	order := make([]int, d.Balls())
	for b := range order {
		order[b] = b
	}
	sort.Slice(order, func(i, j int) bool {
		bi, bj := order[i], order[j]
		if sizes[bi] != sizes[bj] {
			return sizes[bi] > sizes[bj]
		}
		return bi < bj
	})
	assign := make([]int32, d.Balls())
	load := make([]int, workers)
	for _, b := range order {
		lightest := 0
		for w := 1; w < workers; w++ {
			if load[w] < load[lightest] {
				lightest = w
			}
		}
		assign[b] = int32(lightest)
		load[lightest] += sizes[b]
	}
	shards := make([][]int32, workers)
	for w := range shards {
		shards[w] = make([]int32, 0, load[w])
	}
	for v, b := range d.Ball {
		w := assign[b]
		shards[w] = append(shards[w], int32(v))
	}
	return shards
}

// ShardPartition returns a local.Partition that decomposes the run's graph
// with Decompose(g, beta, seed) and packs whole balls onto the scheduler's
// shards via Shards. The scheduler calls it once per run, after fault
// injection, with the resolved worker count; decomposition errors (bad β)
// propagate out of the run as errors.
func ShardPartition(beta float64, seed int64) local.Partition {
	return func(g *graph.Graph, workers int) ([][]int32, error) {
		d, err := Decompose(g, beta, seed)
		if err != nil {
			return nil, err
		}
		return d.Shards(workers), nil
	}
}
