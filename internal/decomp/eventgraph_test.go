package decomp

import (
	"math/rand"
	"testing"
)

// TestEventGraphStructure pins the adapter on a hand-checked system:
// events sharing a variable are adjacent, disjoint events are not,
// duplicate variable listings collapse, and no self-loops arise.
func TestEventGraphStructure(t *testing.T) {
	events := [][]int{
		{0, 1},       // shares 1 with e1
		{1, 2, 2, 1}, // duplicates must not create multi-edges
		{3},          // isolated
		{2, 0},       // shares 2 with e1 and 0 with e0
	}
	g, err := EventGraph(len(events), func(e int) []int { return events[e] })
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != len(events) {
		t.Fatalf("N = %d, want %d", g.N(), len(events))
	}
	wantEdges := map[[2]int]bool{{0, 1}: true, {0, 3}: true, {1, 3}: true}
	if g.M() != len(wantEdges) {
		t.Fatalf("M = %d, want %d", g.M(), len(wantEdges))
	}
	for pair := range wantEdges {
		if !g.HasEdge(pair[0], pair[1]) {
			t.Errorf("missing edge %v", pair)
		}
	}
	if g.Degree(2) != 0 {
		t.Errorf("isolated event 2 has degree %d", g.Degree(2))
	}
}

// TestEventGraphDeterministic pins that the event graph — and a seeded
// decomposition of it — is a pure function of the incidence structure,
// which is what keeps SolveDecomposed seed-independent.
func TestEventGraphDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	events := make([][]int, 60)
	for e := range events {
		k := 2 + rng.Intn(3)
		for j := 0; j < k; j++ {
			events[e] = append(events[e], rng.Intn(25))
		}
	}
	first, err := EventGraph(len(events), func(e int) []int { return events[e] })
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		again, err := EventGraph(len(events), func(e int) []int { return events[e] })
		if err != nil {
			t.Fatal(err)
		}
		if again.Digest() != first.Digest() {
			t.Fatalf("run %d: event graph digest diverged", i)
		}
	}
	d1, err := Decompose(first, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := Decompose(first, 0.2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Balls() != d2.Balls() {
		t.Fatal("seeded decomposition of the event graph is not reproducible")
	}
}

// TestEventGraphErrors pins the typed validation: negative counts, nil
// callbacks, and negative variables are rejected.
func TestEventGraphErrors(t *testing.T) {
	if _, err := EventGraph(-1, nil); err == nil {
		t.Error("negative event count accepted")
	}
	if _, err := EventGraph(2, nil); err == nil {
		t.Error("nil vars callback accepted")
	}
	if _, err := EventGraph(1, func(int) []int { return []int{-3} }); err == nil {
		t.Error("negative variable accepted")
	}
	g, err := EventGraph(0, nil)
	if err != nil {
		t.Fatalf("empty system rejected: %v", err)
	}
	if g.N() != 0 {
		t.Errorf("empty system produced %d nodes", g.N())
	}
}
