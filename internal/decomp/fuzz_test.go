package decomp

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"localadvice/internal/graph"
)

// fuzzGraph decodes an arbitrary byte string into a small graph: the first
// byte picks the node count (1..64), subsequent byte pairs are candidate
// edges (self-loops and duplicates skipped), capped at 4n edges so the
// fuzzer cannot build quadratic inputs.
func fuzzGraph(data []byte) *graph.Graph {
	n := 1
	if len(data) > 0 {
		n = 1 + int(data[0])%64
	}
	g := graph.New(n)
	for i := 1; i+1 < len(data) && g.M() < 4*n; i += 2 {
		u, v := int(data[i])%n, int(data[i+1])%n
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// FuzzDecompose is the decomposition's crash wall: for every generated
// (graph, beta, seed) triple, DecomposeWorkers either returns a typed
// ErrBeta (exactly when the rate is invalid) or a decomposition that passes
// the full Validate invariant check, matches the sequential result
// bit-for-bit, and packs into a valid shard cover. It must never panic.
func FuzzDecompose(f *testing.F) {
	f.Add([]byte{}, 0.25, int64(1))
	f.Add([]byte{7, 0, 1, 1, 2, 2, 3, 3, 4, 4, 5, 5, 6, 6, 0}, 0.5, int64(7))
	f.Add([]byte{40, 1, 2, 3, 4, 5, 6, 9, 9, 200, 13}, 0.05, int64(-3))
	f.Add([]byte{63, 255, 254, 10, 20, 30, 40}, 3.5, int64(42))
	f.Add([]byte{16, 0, 1}, -1.0, int64(0))
	f.Add([]byte{5}, 0.0, int64(5))
	f.Fuzz(func(t *testing.T, data []byte, beta float64, seed int64) {
		g := fuzzGraph(data)
		d, err := DecomposeWorkers(g, beta, seed, 3)
		if err != nil {
			if !errors.Is(err, ErrBeta) {
				t.Fatalf("untyped error: %v", err)
			}
			if beta > 0 && !math.IsInf(beta, 0) && !math.IsNaN(beta) {
				t.Fatalf("valid beta %v rejected: %v", beta, err)
			}
			return
		}
		if math.IsNaN(beta) || math.IsInf(beta, 0) || beta <= 0 {
			t.Fatalf("invalid beta %v accepted", beta)
		}
		if err := d.Validate(g); err != nil {
			t.Fatal(err)
		}
		seq, err := Decompose(g, beta, seed)
		if err != nil {
			t.Fatalf("sequential recompute: %v", err)
		}
		if !reflect.DeepEqual(d, seq) {
			t.Fatal("workers=3 decomposition differs from workers=1")
		}
		seen := make([]bool, g.N())
		for _, nodes := range d.Shards(4) {
			for _, v := range nodes {
				if seen[v] {
					t.Fatalf("node %d in two shards", v)
				}
				seen[v] = true
			}
		}
		for v, ok := range seen {
			if !ok {
				t.Fatalf("node %d missing from shards", v)
			}
		}
	})
}
