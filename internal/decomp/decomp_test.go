package decomp

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"localadvice/internal/graph"
)

// decompGraphs is the family sweep of the decomposition property tests —
// one representative per generator family, permuted IDs, mirroring the
// engine suite's propertyGraphs.
func decompGraphs(t *testing.T, seed int64) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg, err := graph.RandomRegular(64, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := map[string]*graph.Graph{
		"cycle":   graph.Cycle(40),
		"path":    graph.Path(23),
		"grid":    graph.Grid2D(6, 8),
		"torus":   graph.Torus2D(5, 7),
		"tree":    graph.CompleteBinaryTree(5),
		"star":    graph.Star(9),
		"regular": reg,
		"gnp":     graph.RandomGNP(48, 0.1, rng),
	}
	for _, g := range gs {
		graph.AssignPermutedIDs(g, rng)
	}
	return gs
}

// TestDecomposeInvariants is the structural property test: over every graph
// family, rate and seed, the decomposition satisfies every invariant
// Validate checks — exactly one ball per node, centers at depth 0, BFS
// depths, the radius <= center-shift bound, exact radii and cut counts.
func TestDecomposeInvariants(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		for name, g := range decompGraphs(t, seed) {
			for _, beta := range []float64{0.05, 0.3, 1.5} {
				d, err := Decompose(g, beta, seed*17)
				if err != nil {
					t.Fatalf("seed %d %s beta %v: %v", seed, name, beta, err)
				}
				if err := d.Validate(g); err != nil {
					t.Fatalf("seed %d %s beta %v: %v", seed, name, beta, err)
				}
				if d.Balls() < 1 || d.Balls() > g.N() {
					t.Fatalf("seed %d %s beta %v: %d balls on %d nodes", seed, name, beta, d.Balls(), g.N())
				}
				if f := d.CutFraction(); f < 0 || f > 1 {
					t.Fatalf("seed %d %s beta %v: cut fraction %v", seed, name, beta, f)
				}
			}
		}
	}
}

// TestDecomposeWorkerDeterminism pins the parallel contract: the whole
// decomposition — assignment, shifts, depths, centers, radii, cut counts —
// is bit-identical across worker counts -1 (clamp to 1), 1, 8, and 0
// (GOMAXPROCS).
func TestDecomposeWorkerDeterminism(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for name, g := range decompGraphs(t, seed) {
			for _, beta := range []float64{0.1, 0.5} {
				base, err := DecomposeWorkers(g, beta, seed, 1)
				if err != nil {
					t.Fatalf("seed %d %s beta %v: %v", seed, name, beta, err)
				}
				for _, w := range []int{-1, 8, 0} {
					d, err := DecomposeWorkers(g, beta, seed, w)
					if err != nil {
						t.Fatalf("seed %d %s beta %v workers %d: %v", seed, name, beta, w, err)
					}
					if !reflect.DeepEqual(d, base) {
						t.Fatalf("seed %d %s beta %v: workers=%d decomposition differs from workers=1\n%+v\nvs\n%+v",
							seed, name, beta, w, d, base)
					}
				}
			}
		}
	}
}

// TestDecomposeBetaValidation checks the ErrBeta boundary: zero, negative,
// NaN and infinite rates are typed errors; a small positive rate is not.
func TestDecomposeBetaValidation(t *testing.T) {
	g := graph.Cycle(12)
	for _, beta := range []float64{0, -1, math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := Decompose(g, beta, 1); !errors.Is(err, ErrBeta) {
			t.Errorf("beta %v: got %v, want ErrBeta", beta, err)
		}
	}
	if _, err := Decompose(g, 0.2, 1); err != nil {
		t.Fatalf("beta 0.2 rejected: %v", err)
	}
}

// TestDecomposeTinyBeta pins the float64 shift clamp: a denormal-scale β
// passes validation but makes -log(1-u)/β overflow int32, so the clamp must
// happen before the conversion. Shifts saturate at n and the decomposition
// stays valid for every worker count.
func TestDecomposeTinyBeta(t *testing.T) {
	g := graph.Grid2D(8, 8)
	for _, workers := range []int{-1, 1, 3, 8} {
		d, err := DecomposeWorkers(g, 1e-300, 1, workers)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		if err := d.Validate(g); err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		n := int32(g.N())
		for v, s := range d.Shift {
			if s < 0 || s > n {
				t.Fatalf("workers %d: node %d shift %d outside [0, %d]", workers, v, s, n)
			}
		}
	}
}

// TestDecomposeEdgeCases covers degenerate graphs: empty, a single node,
// an edgeless graph (every node its own ball), and a disconnected graph
// (every component fully covered).
func TestDecomposeEdgeCases(t *testing.T) {
	empty, err := Decompose(graph.New(0), 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := empty.Validate(graph.New(0)); err != nil {
		t.Fatal(err)
	}
	if empty.Balls() != 0 || empty.CutFraction() != 0 {
		t.Fatalf("empty graph: %d balls, cut %v", empty.Balls(), empty.CutFraction())
	}

	single := graph.New(1)
	d, err := Decompose(single, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(single); err != nil {
		t.Fatal(err)
	}
	if d.Balls() != 1 || d.MaxRadius() != 0 {
		t.Fatalf("single node: %d balls, max radius %d", d.Balls(), d.MaxRadius())
	}

	edgeless := graph.New(7)
	d, err = Decompose(edgeless, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(edgeless); err != nil {
		t.Fatal(err)
	}
	if d.Balls() != 7 {
		t.Fatalf("edgeless graph: %d balls, want one per node", d.Balls())
	}
	if d.CutFraction() != 0 {
		t.Fatalf("edgeless graph: cut fraction %v", d.CutFraction())
	}

	// Two disjoint triangles: waves cannot jump components, so each
	// component holds at least one ball and every node is still covered.
	two := graph.New(6)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}} {
		two.MustAddEdge(e[0], e[1])
	}
	d, err = Decompose(two, 0.2, 5)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(two); err != nil {
		t.Fatal(err)
	}
	if d.Ball[0] == d.Ball[3] {
		t.Fatal("nodes of disjoint components share a ball")
	}
}

// TestDecomposeSeedSensitivity checks that the seed actually drives the
// shifts: two different seeds on a non-trivial graph give different
// decompositions (while each is individually reproducible).
func TestDecomposeSeedSensitivity(t *testing.T) {
	g := graph.Grid2D(16, 16)
	a, err := Decompose(g, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decompose(g, 0.3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ball, b.Ball) && reflect.DeepEqual(a.Shift, b.Shift) {
		t.Fatal("seeds 1 and 2 produced identical decompositions")
	}
	a2, err := Decompose(g, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, a2) {
		t.Fatal("same (graph, beta, seed) not reproducible")
	}
}

// TestDecomposeBetaScaling sanity-checks the MPX trade-off on a grid: a
// much larger rate yields at least as many balls and no larger a maximum
// radius.
func TestDecomposeBetaScaling(t *testing.T) {
	g := graph.Grid2D(16, 16)
	coarse, err := Decompose(g, 0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Decompose(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if fine.Balls() < coarse.Balls() {
		t.Fatalf("beta 2 gave %d balls, beta 0.05 gave %d", fine.Balls(), coarse.Balls())
	}
	if fine.MaxRadius() > coarse.MaxRadius() {
		t.Fatalf("beta 2 max radius %d exceeds beta 0.05's %d", fine.MaxRadius(), coarse.MaxRadius())
	}
}

// TestShardsPartitionValidity checks the shard packing over worker counts:
// exactly `workers` lists, every node exactly once, ascending node order
// inside each shard, and whole balls (no ball split across shards).
func TestShardsPartitionValidity(t *testing.T) {
	for name, g := range decompGraphs(t, 7) {
		d, err := Decompose(g, 0.3, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, workers := range []int{1, 2, 3, 8} {
			shards := d.Shards(workers)
			if len(shards) != workers {
				t.Fatalf("%s workers %d: got %d shards", name, workers, len(shards))
			}
			owner := make([]int, g.N())
			for i := range owner {
				owner[i] = -1
			}
			for w, nodes := range shards {
				for i, v := range nodes {
					if v < 0 || int(v) >= g.N() {
						t.Fatalf("%s workers %d: shard %d has out-of-range node %d", name, workers, w, v)
					}
					if i > 0 && nodes[i-1] >= v {
						t.Fatalf("%s workers %d: shard %d not in ascending order", name, workers, w)
					}
					if owner[v] != -1 {
						t.Fatalf("%s workers %d: node %d in shards %d and %d", name, workers, v, owner[v], w)
					}
					owner[v] = w
				}
			}
			for v, w := range owner {
				if w == -1 {
					t.Fatalf("%s workers %d: node %d unassigned", name, workers, v)
				}
				if c := d.Centers[d.Ball[v]]; owner[c] != w {
					t.Fatalf("%s workers %d: ball %d split across shards %d and %d",
						name, workers, d.Ball[v], owner[c], w)
				}
			}
		}
	}
}

// TestShardsBalance bounds the greedy packing's imbalance: no shard exceeds
// the ideal load by more than the largest ball (the classic greedy
// guarantee for whole-item packing).
func TestShardsBalance(t *testing.T) {
	g := graph.Torus2D(16, 16)
	d, err := Decompose(g, 0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	largest := 0
	sizes := make([]int, d.Balls())
	for _, b := range d.Ball {
		sizes[b]++
	}
	for _, s := range sizes {
		if s > largest {
			largest = s
		}
	}
	for _, workers := range []int{2, 4, 8} {
		ideal := (g.N() + workers - 1) / workers
		for w, nodes := range d.Shards(workers) {
			if len(nodes) > ideal+largest {
				t.Fatalf("workers %d: shard %d holds %d nodes (ideal %d, largest ball %d)",
					workers, w, len(nodes), ideal, largest)
			}
		}
	}
}
