package decomp

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/local"
)

// viewFP is a canonical summary of a gathered view — sorted edge ID pairs
// plus sorted per-node (ID, advice, true degree, distance) tuples — so any
// difference between two runs' views shows up in the output comparison. It
// mirrors the engine suite's fingerprint without reaching into local's
// test internals.
func viewFP(view *local.View) any {
	edges := make([]string, 0, view.G.M())
	for _, e := range view.G.Edges() {
		a, b := view.G.ID(e.U), view.G.ID(e.V)
		if a > b {
			a, b = b, a
		}
		edges = append(edges, fmt.Sprintf("%d~%d;", a, b))
	}
	sort.Strings(edges)
	var sb strings.Builder
	fmt.Fprintf(&sb, "c%d|r%d|n%d|d%d|", view.G.ID(view.Center), view.Radius, view.N, view.Delta)
	sb.WriteString(strings.Join(edges, ""))
	ids := make([]int64, view.G.N())
	for i := range ids {
		ids[i] = view.G.ID(i)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		i := view.NodeByID(id)
		fmt.Fprintf(&sb, "v%d:%s:%d:%d|", id, view.Advice[i].String(), view.TrueDegree[i], view.Dist[i])
	}
	return sb.String()
}

// shardProtocols is the protocol sweep of the partitioned-scheduler
// equivalence tests: the view-gathering protocol (outputs are full view
// fingerprints, so any delivery difference is caught) and the flooding
// workload with a fixed horizon.
func shardProtocols(g *graph.Graph) map[string]local.Protocol {
	return map[string]local.Protocol{
		"gather": &local.GatherProtocol{Radius: 2, Decide: viewFP},
		"flood":  &local.FloodProtocol{SourceID: g.ID(0), Rounds: g.N()},
	}
}

// TestPartitionedSchedulerEquivalence is satellite 3's core property: with
// RunConfig.Partition set to the low-cut ball shards, the sharded scheduler
// and the frugal engine produce outputs and stats bit-identical to their
// contiguous-sharding runs (and to the goroutine reference) at every worker
// count.
func TestPartitionedSchedulerEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for gname, g := range decompGraphs(t, seed) {
			rng := rand.New(rand.NewSource(seed * 31))
			advice := make(local.Advice, g.N())
			for v := range advice {
				advice[v] = bitstr.New(rng.Intn(2))
			}
			part := ShardPartition(0.2, seed)
			for pname, p := range shardProtocols(g) {
				refOut, refStats, err := local.RunGoroutine(g, p, advice)
				if err != nil {
					t.Fatalf("seed %d %s/%s: goroutine engine: %v", seed, gname, pname, err)
				}
				for _, w := range []int{2, 8} {
					contOut, contStats, err := local.RunMessageConfig(g, p, advice, local.RunConfig{Workers: w})
					if err != nil {
						t.Fatalf("seed %d %s/%s workers %d: contiguous: %v", seed, gname, pname, w, err)
					}
					partOut, partStats, err := local.RunMessageConfig(g, p, advice,
						local.RunConfig{Workers: w, Partition: part})
					if err != nil {
						t.Fatalf("seed %d %s/%s workers %d: partitioned: %v", seed, gname, pname, w, err)
					}
					if partStats != contStats || partStats != refStats {
						t.Fatalf("seed %d %s/%s workers %d: stats partitioned %+v, contiguous %+v, goroutine %+v",
							seed, gname, pname, w, partStats, contStats, refStats)
					}
					for v := range partOut {
						if partOut[v] != contOut[v] || partOut[v] != refOut[v] {
							t.Fatalf("seed %d %s/%s workers %d node %d: partitioned %v, contiguous %v, goroutine %v",
								seed, gname, pname, w, v, partOut[v], contOut[v], refOut[v])
						}
					}
					// The frugal engine runs the same scheduler core, so the
					// ball shards must leave its outputs and its transport
					// stats untouched as well.
					fContOut, fContStats, err := local.RunFrugalConfig(g, p, advice, local.RunConfig{Workers: w})
					if err != nil {
						t.Fatalf("seed %d %s/%s workers %d: frugal contiguous: %v", seed, gname, pname, w, err)
					}
					fPartOut, fPartStats, err := local.RunFrugalConfig(g, p, advice,
						local.RunConfig{Workers: w, Partition: part})
					if err != nil {
						t.Fatalf("seed %d %s/%s workers %d: frugal partitioned: %v", seed, gname, pname, w, err)
					}
					if fPartStats != fContStats {
						t.Fatalf("seed %d %s/%s workers %d: frugal stats partitioned %+v, contiguous %+v",
							seed, gname, pname, w, fPartStats, fContStats)
					}
					for v := range fPartOut {
						if fPartOut[v] != fContOut[v] || fPartOut[v] != refOut[v] {
							t.Fatalf("seed %d %s/%s workers %d node %d: frugal partitioned %v, contiguous %v, goroutine %v",
								seed, gname, pname, w, v, fPartOut[v], fContOut[v], refOut[v])
						}
					}
				}
				// Sequential engine closes the five-engine loop.
				seqOut, seqStats, err := local.RunSequential(g, p, advice)
				if err != nil {
					t.Fatalf("seed %d %s/%s: sequential: %v", seed, gname, pname, err)
				}
				if seqStats != refStats {
					t.Fatalf("seed %d %s/%s: sequential stats %+v, goroutine %+v", seed, gname, pname, seqStats, refStats)
				}
				for v := range seqOut {
					if seqOut[v] != refOut[v] {
						t.Fatalf("seed %d %s/%s node %d: sequential %v, goroutine %v",
							seed, gname, pname, v, seqOut[v], refOut[v])
					}
				}
			}
		}
	}
}

// TestPartitionedCrashAgreement mirrors the crash-fault engine agreement
// suite with ball-shard partitioning enabled: the crashed node's typed
// error and every survivor's output are identical to the contiguous
// scheduler, the goroutine engine and the sequential engine.
func TestPartitionedCrashAgreement(t *testing.T) {
	g := graph.Cycle(30)
	plan := &fault.Plan{CrashNode: 5, CrashRound: 2}
	p := &local.GatherProtocol{Radius: 3, Decide: viewFP}
	part := ShardPartition(0.2, 3)

	refOut, refStats, err := local.RunGoroutineConfig(g, p, nil, local.RunConfig{Fault: plan})
	if err != nil {
		t.Fatalf("goroutine: %v", err)
	}
	var ce fault.CrashError
	if !errors.As(refOut[5].(error), &ce) || ce.Node != 5 || ce.Round != 2 {
		t.Fatalf("crashed node output %v, want CrashError{Node:5, Round:2}", refOut[5])
	}
	if !errors.Is(refOut[5].(error), fault.ErrCrashed) {
		t.Fatalf("crash output does not unwrap to ErrCrashed: %v", refOut[5])
	}

	for _, w := range []int{2, 8} {
		out, stats, err := local.RunMessageConfig(g, p, nil,
			local.RunConfig{Workers: w, Fault: plan, Partition: part})
		if err != nil {
			t.Fatalf("partitioned workers %d: %v", w, err)
		}
		if stats != refStats {
			t.Fatalf("partitioned workers %d: stats %+v, goroutine %+v", w, stats, refStats)
		}
		for v := range out {
			if fmt.Sprint(out[v]) != fmt.Sprint(refOut[v]) {
				t.Fatalf("partitioned workers %d node %d: %v, goroutine %v", w, v, out[v], refOut[v])
			}
		}
		fOut, _, err := local.RunFrugalConfig(g, p, nil,
			local.RunConfig{Workers: w, Fault: plan, Partition: part})
		if err != nil {
			t.Fatalf("frugal partitioned workers %d: %v", w, err)
		}
		for v := range fOut {
			if fmt.Sprint(fOut[v]) != fmt.Sprint(refOut[v]) {
				t.Fatalf("frugal partitioned workers %d node %d: %v, goroutine %v", w, v, fOut[v], refOut[v])
			}
		}
	}
}

// TestPartitionedAdviceFlipAgreement mirrors the advice-corruption engine
// agreement suite with ball-shard partitioning enabled.
func TestPartitionedAdviceFlipAgreement(t *testing.T) {
	g := graph.Cycle(24)
	plan := &fault.Plan{Seed: 11, FlipRate: 0.4}
	p := &local.GatherProtocol{Radius: 2, Decide: viewFP}
	advice := make(local.Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(v%2, (v>>1)%2)
	}

	refOut, refStats, err := local.RunSequentialConfig(g, p, advice, local.RunConfig{Fault: plan})
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	for _, w := range []int{2, 8} {
		out, stats, err := local.RunMessageConfig(g, p, advice,
			local.RunConfig{Workers: w, Fault: plan, Partition: ShardPartition(0.3, 11)})
		if err != nil {
			t.Fatalf("partitioned workers %d: %v", w, err)
		}
		if stats != refStats {
			t.Fatalf("partitioned workers %d: stats %+v, sequential %+v", w, stats, refStats)
		}
		for v := range out {
			if out[v] != refOut[v] {
				t.Fatalf("partitioned workers %d node %d: %v, sequential %v", w, v, out[v], refOut[v])
			}
		}
	}
}

// TestShardPartitionDecompError checks error propagation through the run:
// a partition built with an invalid rate fails the scheduler run with an
// error wrapping ErrBeta (satellite 1's pattern applied to the tentpole's
// boundary).
func TestShardPartitionDecompError(t *testing.T) {
	g := graph.Cycle(16)
	_, _, err := local.RunMessageConfig(g, &local.GatherProtocol{Radius: 1, Decide: viewFP}, nil,
		local.RunConfig{Workers: 4, Partition: ShardPartition(-1, 1)})
	if !errors.Is(err, ErrBeta) {
		t.Fatalf("got %v, want an error wrapping decomp.ErrBeta", err)
	}
	// With a single worker the partition stage is skipped entirely, so even
	// an invalid rate cannot fail the run.
	if _, _, err := local.RunMessageConfig(g, &local.GatherProtocol{Radius: 1, Decide: viewFP}, nil,
		local.RunConfig{Workers: 1, Partition: ShardPartition(-1, 1)}); err != nil {
		t.Fatalf("single-worker run invoked the partition stage: %v", err)
	}
}
