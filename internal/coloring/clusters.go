package coloring

import (
	"fmt"
	"math/bits"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// UnboundedColoring is the "proper coloring, any number of colors" problem
// used by intermediate pipeline stages (the O(Δ²)-coloring of Section 6.1
// before reduction). Labels are positive integers; only properness is
// checked.
type UnboundedColoring struct{}

var _ lcl.Problem = UnboundedColoring{}

// Name implements lcl.Problem.
func (UnboundedColoring) Name() string { return "proper-coloring" }

// Radius implements lcl.Problem.
func (UnboundedColoring) Radius() int { return 1 }

// NodeAlphabet implements lcl.Problem; nil because the label set is
// unbounded — CheckNode does the validation instead.
func (UnboundedColoring) NodeAlphabet() []int { return nil }

// EdgeAlphabet implements lcl.Problem.
func (UnboundedColoring) EdgeAlphabet() []int { return nil }

// CheckNode implements lcl.Problem.
func (UnboundedColoring) CheckNode(g *graph.Graph, v int, sol *lcl.Solution) error {
	if sol.Node[v] == lcl.Unset || sol.Node[v] < 1 {
		return fmt.Errorf("node %d has invalid color %d", v, sol.Node[v])
	}
	for _, w := range g.Neighbors(v) {
		if sol.Node[w] == sol.Node[v] {
			return fmt.Errorf("nodes %d and %d share color %d", v, w, sol.Node[v])
		}
	}
	return nil
}

// ClusterColoringStage is the first stage of the Section 6 pipeline
// (Lemma 6.3): a proper coloring with f(Δ) colors obtained from a Voronoi
// clustering around a ruling set. The advice marks each cluster center with
// the color of its cluster in a proper coloring of the cluster graph; each
// center colors its own cluster greedily and combines (cluster color, inner
// color) into the node color.
type ClusterColoringStage struct {
	// CoverRadius is the covering radius of the ruling set of centers; it
	// bounds cluster radii and is the schema's sparsity knob.
	CoverRadius int
}

var _ core.VarSchema = ClusterColoringStage{}

// Name implements core.VarSchema.
func (ClusterColoringStage) Name() string { return "cluster-coloring" }

// Problem implements core.VarSchema.
func (ClusterColoringStage) Problem() lcl.Problem { return UnboundedColoring{} }

// DecodeRadius is the LOCAL radius of the decoder: a node needs its own
// cluster (radius CoverRadius), the full membership of that cluster
// (another CoverRadius to see competing centers), the cluster topology, and
// one extra hop so that all geodesics used for the distance comparisons lie
// fully inside the view.
func (c ClusterColoringStage) DecodeRadius() int { return 3*c.CoverRadius + 1 }

// voronoi assigns every node to its nearest center (ties toward the
// smaller ID), returning the cluster index per node.
func voronoi(g *graph.Graph, centers []int) []int {
	cluster := make([]int, g.N())
	bestDist := make([]int, g.N())
	for v := range cluster {
		cluster[v] = -1
	}
	for ci, c := range centers {
		for v, d := range g.BFSFrom(c) {
			if d == -1 {
				continue
			}
			switch {
			case cluster[v] == -1,
				d < bestDist[v],
				d == bestDist[v] && g.ID(c) < g.ID(centers[cluster[v]]):
				cluster[v] = ci
				bestDist[v] = d
			}
		}
	}
	return cluster
}

// innerColoring colors the nodes of one cluster greedily by ID within the
// induced subgraph, with colors 1..Δ+1.
func innerColoring(g *graph.Graph, members []int) map[int]int {
	sorted := append([]int(nil), members...)
	sort.Slice(sorted, func(a, b int) bool { return g.ID(sorted[a]) < g.ID(sorted[b]) })
	inCluster := make(map[int]bool, len(members))
	for _, v := range members {
		inCluster[v] = true
	}
	colors := make(map[int]int, len(members))
	for _, v := range sorted {
		used := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			if inCluster[w] {
				used[colors[w]] = true
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// EncodeVar implements core.VarSchema.
func (c ClusterColoringStage) EncodeVar(g *graph.Graph, _ []*lcl.Solution) (core.VarAdvice, error) {
	if c.CoverRadius < 1 {
		return nil, fmt.Errorf("coloring: cluster cover radius must be >= 1, got %d", c.CoverRadius)
	}
	centers := greedyCover(g, c.CoverRadius)
	cluster := voronoi(g, centers)
	// Proper coloring of the cluster graph, greedily by center ID.
	clusterColors, err := colorClusterGraph(g, centers, cluster)
	if err != nil {
		return nil, err
	}
	va := make(core.VarAdvice, len(centers))
	for ci, center := range centers {
		// Payload: the cluster color, minus one, in a fixed-width binary
		// encoding wide enough for all cluster colors (so all payloads
		// parse the same way). Width is the global max; every payload is
		// at least one bit.
		width := bits.Len(uint(maxInt(clusterColors) - 1))
		if width == 0 {
			width = 1
		}
		va[center] = bitstr.FromUint(uint64(clusterColors[ci]-1), width)
	}
	return va, nil
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// greedyCover returns a set with pairwise distance >= cover+1 and covering
// radius cover, greedily by ID.
func greedyCover(g *graph.Graph, cover int) []int {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.ID(order[a]) < g.ID(order[b]) })
	covered := make([]bool, g.N())
	var set []int
	for _, v := range order {
		if covered[v] {
			continue
		}
		set = append(set, v)
		for _, u := range g.Ball(v, cover) {
			covered[u] = true
		}
	}
	return set
}

// colorClusterGraph properly colors the contracted cluster graph greedily
// by center ID.
func colorClusterGraph(g *graph.Graph, centers []int, cluster []int) ([]int, error) {
	adj := make([]map[int]bool, len(centers))
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	for _, e := range g.Edges() {
		a, b := cluster[e.U], cluster[e.V]
		if a != b {
			adj[a][b] = true
			adj[b][a] = true
		}
	}
	order := make([]int, len(centers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.ID(centers[order[a]]) < g.ID(centers[order[b]]) })
	colors := make([]int, len(centers))
	for _, ci := range order {
		used := map[int]bool{}
		for cj := range adj[ci] {
			if colors[cj] != 0 {
				used[colors[cj]] = true
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colors[ci] = c
	}
	return colors, nil
}

// DecodeVar implements core.VarSchema.
func (c ClusterColoringStage) DecodeVar(g *graph.Graph, va core.VarAdvice, _ []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	if c.CoverRadius < 1 {
		return nil, local.Stats{}, fmt.Errorf("coloring: cluster cover radius must be >= 1, got %d", c.CoverRadius)
	}
	advice := va.Dense(g.N())
	delta := g.MaxDegree()
	outputs, stats := local.RunBall(g, advice, c.DecodeRadius(), func(view *local.View) any {
		return c.decodeNode(view, delta)
	})
	sol := lcl.NewSolution(g)
	for v, out := range outputs {
		if err, isErr := out.(error); isErr {
			return nil, stats, fmt.Errorf("coloring: node %d: %w", v, err)
		}
		sol.Node[v] = out.(int)
	}
	return sol, stats, nil
}

// decodeNode computes the center's combined (cluster color, inner color)
// color from its view.
func (c ClusterColoringStage) decodeNode(view *local.View, delta int) any {
	vg := view.G
	// Centers = advice holders. All centers within 2*CoverRadius are
	// visible, which suffices to settle cluster membership for every node
	// within CoverRadius of the viewing node.
	var centers []int
	for i := 0; i < vg.N(); i++ {
		if view.Advice[i].Len() > 0 {
			centers = append(centers, i)
		}
	}
	if len(centers) == 0 {
		return fmt.Errorf("no cluster center within distance %d", c.DecodeRadius())
	}
	// My cluster: nearest center by view distances (the view is large
	// enough that these match graph distances for the relevant nodes).
	my := c.ownCluster(view, centers)
	if my == -1 {
		return fmt.Errorf("could not settle cluster membership")
	}
	myCenter := centers[my]
	clusterColor := int(view.Advice[myCenter].Uint()) + 1

	// Members of my cluster among visible nodes: nodes whose nearest
	// visible center is mine. Nodes within CoverRadius of my center have
	// all their candidate centers within 2*CoverRadius of my center, i.e.
	// within 3*CoverRadius of me — visible.
	distFromCenter := vg.BFSFrom(myCenter)
	var members []int
	for i := 0; i < vg.N(); i++ {
		if distFromCenter[i] == -1 || distFromCenter[i] > c.CoverRadius {
			continue
		}
		if c.nearestCenter(vg, i, centers) == my {
			members = append(members, i)
		}
	}
	inner := innerColoring(vg, members)
	innerColor, ok := inner[view.Center]
	if !ok {
		return fmt.Errorf("center not a member of its own cluster")
	}
	return (clusterColor-1)*(delta+1) + innerColor
}

// ownCluster returns the index (into centers) of the viewing node's
// cluster, or -1.
func (c ClusterColoringStage) ownCluster(view *local.View, centers []int) int {
	return c.nearestCenter(view.G, view.Center, centers)
}

// nearestCenter returns the index of the center nearest to node v in the
// view graph, ties toward the smallest ID; -1 if none reachable.
func (c ClusterColoringStage) nearestCenter(vg *graph.Graph, v int, centers []int) int {
	dist := vg.BFSFrom(v)
	best := -1
	for i, center := range centers {
		d := dist[center]
		if d == -1 {
			continue
		}
		if best == -1 || d < dist[centers[best]] ||
			d == dist[centers[best]] && vg.ID(center) < vg.ID(centers[best]) {
			best = i
		}
	}
	return best
}
