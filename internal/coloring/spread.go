package coloring

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// This file implements the paper's actual two-stage decomposition of the
// Δ+1 → Δ step (Section 6.2): Problem 3 first REDUCES the set of uncolored
// vertices to one that is pairwise far apart (Lemma 6.9), and Problem 4 then
// fixes those far-apart roots (Lemma 6.10). ShiftStage solves both at once;
// SpreadStage + ShiftStage solve them separately, giving the four-stage
// pipeline NewDeltaPipelineSplit that mirrors the paper's composition
// structure stage for stage.

// SpacedPartialColoring is Problem 3's output specification: a proper
// labeling with colors 1..Delta+1 in which the color-(Delta+1) nodes (the
// still-uncolored ones) are pairwise at distance greater than Spacing. Its
// checkability radius is Spacing.
type SpacedPartialColoring struct {
	Delta   int
	Spacing int
}

var _ lcl.Problem = SpacedPartialColoring{}

// Name implements lcl.Problem.
func (p SpacedPartialColoring) Name() string {
	return fmt.Sprintf("partial-%d-coloring-spacing-%d", p.Delta, p.Spacing)
}

// Radius implements lcl.Problem.
func (p SpacedPartialColoring) Radius() int { return p.Spacing }

// NodeAlphabet implements lcl.Problem.
func (p SpacedPartialColoring) NodeAlphabet() []int {
	out := make([]int, p.Delta+1)
	for i := range out {
		out[i] = i + 1
	}
	return out
}

// EdgeAlphabet implements lcl.Problem.
func (SpacedPartialColoring) EdgeAlphabet() []int { return nil }

// CheckNode implements lcl.Problem.
func (p SpacedPartialColoring) CheckNode(g *graph.Graph, v int, sol *lcl.Solution) error {
	lv := sol.Node[v]
	if lv == lcl.Unset {
		return nil
	}
	for _, w := range g.Neighbors(v) {
		if sol.Node[w] == lv && lv <= p.Delta {
			return fmt.Errorf("nodes %d and %d share color %d", v, w, lv)
		}
	}
	if lv != p.Delta+1 {
		return nil
	}
	for _, u := range g.Ball(v, p.Spacing) {
		if u != v && sol.Node[u] == p.Delta+1 {
			return fmt.Errorf("uncolored nodes %d and %d within distance %d", v, u, p.Spacing)
		}
	}
	return nil
}

// SpreadStage is Lemma 6.9 as a composable stage: given a (Δ+1)-coloring
// oracle, it recolors most of the color-(Δ+1) class down into 1..Δ via
// advice-marked shift paths, keeping only a Spacing-separated subset
// uncolored for the next stage.
type SpreadStage struct {
	Delta   int
	Spacing int
}

var _ core.VarSchema = SpreadStage{}

// Name implements core.VarSchema.
func (s SpreadStage) Name() string { return "spread-uncolored" }

// Problem implements core.VarSchema.
func (s SpreadStage) Problem() lcl.Problem {
	return SpacedPartialColoring{Delta: s.Delta, Spacing: s.Spacing}
}

// EncodeVar implements core.VarSchema.
func (s SpreadStage) EncodeVar(g *graph.Graph, oracles []*lcl.Solution) (core.VarAdvice, error) {
	if len(oracles) == 0 {
		return nil, fmt.Errorf("coloring: spread stage needs a (Δ+1)-coloring oracle")
	}
	if s.Spacing < 1 {
		return nil, fmt.Errorf("coloring: spread stage needs Spacing >= 1, got %d", s.Spacing)
	}
	orig := oracles[len(oracles)-1].Node
	delta := s.Delta

	var uncolored []int
	for v, c := range orig {
		if c == delta+1 {
			uncolored = append(uncolored, v)
		}
	}
	sort.Slice(uncolored, func(a, b int) bool { return g.ID(uncolored[a]) < g.ID(uncolored[b]) })

	// Keep a Spacing-separated subset (greedy by ID); everyone else gets a
	// shift path now.
	keep := map[int]bool{}
	for _, v := range uncolored {
		ok := true
		dist := g.BFSFrom(v)
		for u := range keep {
			if d := dist[u]; d != -1 && d <= s.Spacing {
				ok = false
				break
			}
		}
		if ok {
			keep[v] = true
		}
	}

	// Reuse the ShiftStage prover for the non-kept nodes; kept nodes (and
	// their neighborhoods) are off limits so they stay uncolored.
	shift := ShiftStage{Delta: delta}
	va := make(core.VarAdvice)
	blocked := make([]bool, g.N())
	for v := range keep {
		blocked[v] = true
		for _, u := range g.Neighbors(v) {
			blocked[u] = true
		}
	}
	newColors := append([]int(nil), orig...)
	for _, v := range uncolored {
		if keep[v] {
			continue
		}
		if blocked[v] {
			return nil, fmt.Errorf("coloring: uncolored node %d blocked before its shift", v)
		}
		path, termColor, err := shift.findShiftPath(g, orig, newColors, blocked, v)
		if err != nil {
			return nil, err
		}
		for i := 0; i+1 < len(path); i++ {
			port := portOf(g, path[i], path[i+1])
			va[path[i]] = bitstr.New(1).Concat(bitstr.FromUint(uint64(port), shift.portWidth()))
			newColors[path[i]] = orig[path[i+1]]
		}
		term := path[len(path)-1]
		va[term] = bitstr.New(0)
		newColors[term] = termColor
		for _, p := range path {
			blocked[p] = true
			for _, u := range g.Neighbors(p) {
				blocked[u] = true
			}
		}
	}
	// Self-check: the result must satisfy Problem 3.
	sol, err := lcl.ColoringSolution(g, newColors)
	if err != nil {
		return nil, err
	}
	if err := lcl.Verify(s.Problem(), g, sol); err != nil {
		return nil, fmt.Errorf("coloring: spread self-check: %w", err)
	}
	return va, nil
}

// DecodeVar implements core.VarSchema: identical decoding to ShiftStage —
// nodes without advice (including the kept uncolored subset) retain their
// oracle color.
func (s SpreadStage) DecodeVar(g *graph.Graph, va core.VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	return ShiftStage{Delta: s.Delta}.DecodeVar(g, va, oracles)
}

// NewDeltaPipelineSplit is the four-stage Section 6 pipeline with the
// paper's Problem 3 / Problem 4 split made explicit: cluster coloring,
// reduction to Δ+1, spreading the uncolored class, and fixing the roots.
func NewDeltaPipelineSplit(delta, coverRadius, spacing int) *core.Pipeline {
	return &core.Pipeline{
		PipelineName: fmt.Sprintf("%d-coloring-split", delta),
		Stages: []core.VarSchema{
			ClusterColoringStage{CoverRadius: coverRadius},
			ReduceStage{Delta: delta},
			SpreadStage{Delta: delta, Spacing: spacing},
			ShiftStage{Delta: delta},
		},
	}
}
