package coloring

import (
	"math/rand"
	"testing"
	"testing/quick"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func TestSolveKColoringKnownChromaticNumbers(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
		chi  int // chromatic number
	}{
		{"K4", graph.Complete(4), 4},
		{"K5", graph.Complete(5), 5},
		{"C5", graph.Cycle(5), 3},
		{"C6", graph.Cycle(6), 2},
		{"petersen-free grid", graph.Grid2D(4, 4), 2},
		{"star", graph.Star(6), 2},
		{"path1", graph.Path(1), 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			// chi colors succeed; chi-1 fail.
			colors, ok := SolveKColoring(tt.g, tt.chi)
			if !ok {
				t.Fatalf("not %d-colorable", tt.chi)
			}
			if err := CheckProper(tt.g, colors); err != nil {
				t.Fatal(err)
			}
			if MaxColor(colors) > tt.chi {
				t.Errorf("used %d colors", MaxColor(colors))
			}
			if tt.chi > 1 {
				if _, ok := SolveKColoring(tt.g, tt.chi-1); ok {
					t.Errorf("%d-coloring found below the chromatic number", tt.chi-1)
				}
			}
		})
	}
}

func TestSolveKColoringAgreesWithPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	for trial := 0; trial < 10; trial++ {
		k := 3 + trial%2
		g, _ := graph.RandomColorable(50, k, 0.15, rng)
		colors, ok := SolveKColoring(g, k)
		if !ok {
			t.Fatalf("planted %d-colorable graph unsolved", k)
		}
		if err := CheckProper(g, colors); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSolveKColoringEmptyAndIsolated(t *testing.T) {
	g := graph.New(5) // no edges
	colors, ok := SolveKColoring(g, 1)
	if !ok {
		t.Fatal("edgeless graph not 1-colorable")
	}
	for _, c := range colors {
		if c != 1 {
			t.Errorf("color %d on an edgeless graph", c)
		}
	}
}

func TestGreedifyIdempotentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g, planted := graph.RandomColorable(25, 3, 0.2, rng)
		once := Greedify(g, planted)
		twice := Greedify(g, once)
		for v := range once {
			if once[v] != twice[v] {
				return false
			}
		}
		return IsGreedy(g, once)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestUnboundedColoringChecks(t *testing.T) {
	g := graph.Path(3)
	p := UnboundedColoring{}
	sol := newNodeSolution(g, []int{1, 7, 1})
	for v := 0; v < 3; v++ {
		if err := p.CheckNode(g, v, sol); err != nil {
			t.Errorf("proper unbounded coloring rejected at %d: %v", v, err)
		}
	}
	bad := newNodeSolution(g, []int{1, 1, 2})
	if err := p.CheckNode(g, 0, bad); err == nil {
		t.Error("clash accepted")
	}
	zero := newNodeSolution(g, []int{0, 1, 2})
	if err := p.CheckNode(g, 0, zero); err == nil {
		t.Error("non-positive color accepted")
	}
	if p.NodeAlphabet() != nil || p.EdgeAlphabet() != nil {
		t.Error("unbounded coloring should declare no finite alphabet")
	}
}

func TestLinialParamsSanity(t *testing.T) {
	for _, tc := range []struct{ c, delta int }{{100, 4}, {1000000, 4}, {50, 10}, {2, 1}} {
		q, k := linialParams(tc.c, tc.delta)
		if q <= k*tc.delta {
			t.Errorf("c=%d Δ=%d: q=%d not above kΔ=%d", tc.c, tc.delta, q, k*tc.delta)
		}
		pow := 1
		covers := false
		for i := 0; i <= k; i++ {
			pow *= q
			if pow >= tc.c {
				covers = true
				break
			}
		}
		if !covers {
			t.Errorf("c=%d Δ=%d: q^(k+1) does not cover the colors", tc.c, tc.delta)
		}
	}
}

// newNodeSolution builds a Solution with the given node labels.
func newNodeSolution(g *graph.Graph, labels []int) *lcl.Solution {
	sol := lcl.NewSolution(g)
	copy(sol.Node, labels)
	return sol
}
