package coloring

import (
	"math/rand"
	"testing"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func threeColorableGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(91))
	planted, _ := graph.RandomColorable(50, 3, 0.12, rng)
	graph.AssignPermutedIDs(planted, rng)
	return map[string]*graph.Graph{
		"cycle5":    graph.Cycle(5),   // odd, small
		"cycle64":   graph.Cycle(64),  // even, large: one big 2,3-component
		"cycle101":  graph.Cycle(101), // odd, large
		"grid7x9":   graph.Grid2D(7, 9),
		"torus6x9":  graph.Torus2D(6, 9),
		"planted":   planted,
		"tree":      graph.RandomTree(60, rng),
		"smallgrid": graph.Grid2D(3, 3),
		"twoComps":  graph.DisjointUnion(graph.Cycle(40), graph.Grid2D(4, 4)),
	}
}

func TestThreeColoringEndToEnd(t *testing.T) {
	schema := NewThreeColoring()
	for name, g := range threeColorableGraphs(t) {
		t.Run(name, func(t *testing.T) {
			advice, err := schema.Encode(g)
			if err != nil {
				t.Fatal(err)
			}
			// Exactly one bit per node (the headline of Theorem 7.1).
			if kind, beta := core.Classify(advice); kind != core.UniformFixedLength || beta != 1 {
				t.Errorf("advice is %v/%d, want uniform 1-bit", kind, beta)
			}
			sol, stats, err := schema.Decode(g, advice)
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
				t.Fatal(err)
			}
			if stats.Rounds != schema.DecodeRadius() {
				t.Errorf("rounds = %d, want %d", stats.Rounds, schema.DecodeRadius())
			}
		})
	}
}

func TestThreeColoringRejectsNonColorable(t *testing.T) {
	if _, err := NewThreeColoring().Encode(graph.Complete(4)); err == nil {
		t.Error("K4 accepted")
	}
}

func TestThreeColoringRejectsBadParams(t *testing.T) {
	bad := ThreeColoring{CoverRadius: 3, GroupSpread: 3}
	if _, err := bad.Encode(graph.Cycle(5)); err == nil {
		t.Error("cover radius below 4*spread+2 accepted")
	}
	bad2 := ThreeColoring{CoverRadius: 20, GroupSpread: 1}
	if _, err := bad2.Encode(graph.Cycle(5)); err == nil {
		t.Error("tiny spread accepted")
	}
}

func TestThreeColoringDecodeChecksAdviceShape(t *testing.T) {
	g := graph.Cycle(10)
	schema := NewThreeColoring()
	advice, err := schema.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	advice[3] = advice[3].Append(1) // two bits: malformed
	if _, _, err := schema.Decode(g, advice); err == nil {
		t.Error("two-bit advice accepted")
	}
}

func TestThreeColoringAdviceNotSparse(t *testing.T) {
	// Section 7: the 3-coloring advice genuinely needs ~one bit per node —
	// the ones ratio is bounded below by the color-1 class density, unlike
	// the sparse schemas.
	g := graph.Cycle(120)
	schema := NewThreeColoring()
	advice, err := schema.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := core.Sparsity(advice)
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.2 {
		t.Errorf("ones ratio %v unexpectedly sparse for a cycle", ratio)
	}
}

func TestThreeColoringMatchesPhiOnLargeComponents(t *testing.T) {
	// On an even cycle (one large 2,3-component after removing color 1),
	// decoding must produce a valid coloring where color-1 nodes are
	// exactly the encoder's color-1 class.
	g := graph.Cycle(80)
	schema := NewThreeColoring()
	advice, err := schema.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := schema.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	// Count colors; a proper 3-coloring of a cycle uses >= 2 colors.
	seen := map[int]bool{}
	for _, c := range sol.Node {
		seen[c] = true
	}
	if len(seen) < 2 {
		t.Errorf("only %d colors used", len(seen))
	}
}

func TestThreeColoringRandomPlantedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	schema := NewThreeColoring()
	for trial := 0; trial < 8; trial++ {
		g, _ := graph.RandomColorable(35, 3, 0.1+0.05*float64(trial%3), rng)
		graph.AssignPermutedIDs(g, rng)
		advice, err := schema.Encode(g)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, _, err := schema.Decode(g, advice)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
