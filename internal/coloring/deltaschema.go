package coloring

import (
	"fmt"
	"math/bits"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// ReduceStage is the middle, advice-free stage of the Section 6 pipeline:
// it takes the cluster coloring (f(Δ) colors) from the oracle and reduces it
// to Δ+1 colors with Linial's reduction followed by color-class scheduling.
// Rounds are a function of Δ only.
type ReduceStage struct {
	// Delta is the maximum degree of the target family.
	Delta int
	// SkipLinial disables the Linial reduction (pure class scheduling), the
	// ablation knob for experiment E5.
	SkipLinial bool
}

var _ core.VarSchema = ReduceStage{}

// Name implements core.VarSchema.
func (r ReduceStage) Name() string { return "reduce-to-delta-plus-1" }

// Problem implements core.VarSchema.
func (r ReduceStage) Problem() lcl.Problem { return lcl.Coloring{K: r.Delta + 1} }

// EncodeVar implements core.VarSchema.
func (ReduceStage) EncodeVar(*graph.Graph, []*lcl.Solution) (core.VarAdvice, error) {
	return core.VarAdvice{}, nil
}

// DecodeVar implements core.VarSchema.
func (r ReduceStage) DecodeVar(g *graph.Graph, _ core.VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	if len(oracles) == 0 {
		return nil, local.Stats{}, fmt.Errorf("coloring: reduce stage needs a coloring oracle")
	}
	colors := oracles[len(oracles)-1].Node
	rounds := 0
	if !r.SkipLinial {
		reduced, linialRounds, err := LinialReduceToQuadratic(g, colors)
		if err != nil {
			return nil, local.Stats{}, err
		}
		colors = reduced
		rounds += linialRounds
	}
	final, schedRounds, err := ReduceToDeltaPlus1(g, colors)
	if err != nil {
		return nil, local.Stats{}, err
	}
	rounds += schedRounds
	sol, err := lcl.ColoringSolution(g, final)
	if err != nil {
		return nil, local.Stats{}, err
	}
	return sol, local.Stats{Rounds: rounds}, nil
}

// ShiftStage is the final stage of the Section 6 pipeline (Lemma 6.6,
// following Panconesi–Srinivasan): given a proper (Δ+1)-coloring, recolor to
// Δ colors. The prover uncolors the color-(Δ+1) class and finds, for each
// uncolored node, a shift path to a node that can absorb a recoloring (the
// set X of Lemma 6.7); paths are pairwise non-adjacent so all shifts apply
// in parallel. The advice stores, at each path node, one role bit plus the
// port of its path successor; terminals store a single 0 bit.
type ShiftStage struct {
	// Delta is the target color count (= maximum degree of the family).
	Delta int
	// MaxPathLen caps the prover's search; 0 means no cap.
	MaxPathLen int
}

var _ core.VarSchema = ShiftStage{}

// Name implements core.VarSchema.
func (s ShiftStage) Name() string { return "delta-shift" }

// Problem implements core.VarSchema.
func (s ShiftStage) Problem() lcl.Problem { return lcl.Coloring{K: s.Delta} }

// portWidth is the number of bits used for a successor port.
func (s ShiftStage) portWidth() int {
	w := bits.Len(uint(s.Delta - 1))
	if w == 0 {
		w = 1
	}
	return w
}

// sortedNeighbors returns v's neighbors ordered by ID — the port order
// shared by encoder and decoder.
func sortedNeighbors(g *graph.Graph, v int) []int {
	nbrs := append([]int(nil), g.Neighbors(v)...)
	sort.Slice(nbrs, func(a, b int) bool { return g.ID(nbrs[a]) < g.ID(nbrs[b]) })
	return nbrs
}

// EncodeVar implements core.VarSchema.
func (s ShiftStage) EncodeVar(g *graph.Graph, oracles []*lcl.Solution) (core.VarAdvice, error) {
	if len(oracles) == 0 {
		return nil, fmt.Errorf("coloring: shift stage needs a (Δ+1)-coloring oracle")
	}
	orig := oracles[len(oracles)-1].Node
	delta := s.Delta
	var uncolored []int
	for v, c := range orig {
		if c == delta+1 {
			uncolored = append(uncolored, v)
		}
	}
	sort.Slice(uncolored, func(a, b int) bool { return g.ID(uncolored[a]) < g.ID(uncolored[b]) })

	va := make(core.VarAdvice)
	blocked := make([]bool, g.N()) // on or adjacent to an accepted path
	// protectedBy[u] counts how many uncolored nodes have u in their closed
	// neighborhood; a first, strict path search avoids the closed
	// neighborhoods of all other uncolored nodes so that later nodes do not
	// find themselves blocked.
	protectedBy := make([]int, g.N())
	for _, u := range uncolored {
		protectedBy[u]++
		for _, w := range g.Neighbors(u) {
			protectedBy[w]++
		}
	}
	newColors := append([]int(nil), orig...)
	for _, v := range uncolored {
		// Release v's own protection before searching.
		protectedBy[v]--
		for _, w := range g.Neighbors(v) {
			protectedBy[w]--
		}
		strict := make([]bool, g.N())
		for u := range strict {
			strict[u] = blocked[u] || protectedBy[u] > 0
		}
		path, termColor, err := s.findShiftPath(g, orig, newColors, strict, v)
		if err != nil {
			// Strict search failed; retry avoiding only accepted paths.
			path, termColor, err = s.findShiftPath(g, orig, newColors, blocked, v)
		}
		if err != nil {
			return nil, err
		}
		// Record advice and apply the shift.
		for i := 0; i+1 < len(path); i++ {
			port := portOf(g, path[i], path[i+1])
			va[path[i]] = bitstr.New(1).Concat(bitstr.FromUint(uint64(port), s.portWidth()))
			newColors[path[i]] = orig[path[i+1]]
		}
		term := path[len(path)-1]
		va[term] = bitstr.New(0)
		newColors[term] = termColor
		for _, p := range path {
			blocked[p] = true
			for _, u := range g.Neighbors(p) {
				blocked[u] = true
			}
		}
	}
	if err := CheckProper(g, newColors); err != nil {
		return nil, fmt.Errorf("coloring: shifted coloring invalid: %w", err)
	}
	if MaxColor(newColors) > delta {
		return nil, fmt.Errorf("coloring: shifted coloring still uses %d colors", MaxColor(newColors))
	}
	return va, nil
}

// portOf returns the index of w in v's ID-sorted neighbor order.
func portOf(g *graph.Graph, v, w int) int {
	for i, u := range sortedNeighbors(g, v) {
		if u == w {
			return i
		}
	}
	panic(fmt.Sprintf("coloring: %d is not a neighbor of %d", w, v))
}

// findShiftPath finds a path v = p0, ..., pk with all nodes unblocked, such
// that shifting colors toward v (p_i takes orig[p_{i+1}]) and recoloring pk
// with the smallest free color yields a locally proper result. Candidates
// are explored in BFS (nearest-first) order.
func (s ShiftStage) findShiftPath(g *graph.Graph, orig, cur []int, blocked []bool, v int) ([]int, int, error) {
	if blocked[v] {
		return nil, 0, fmt.Errorf("coloring: uncolored node %d is blocked by an earlier path", v)
	}
	// BFS over unblocked nodes, smallest-ID parents.
	parent := make([]int, g.N())
	dist := make([]int, g.N())
	for i := range parent {
		parent[i] = -1
		dist[i] = -1
	}
	dist[v] = 0
	queue := []int{v}
	var orderTail []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		orderTail = append(orderTail, u)
		if s.MaxPathLen > 0 && dist[u] >= s.MaxPathLen {
			continue
		}
		for _, w := range sortedNeighbors(g, u) {
			if dist[w] == -1 && !blocked[w] {
				dist[w] = dist[u] + 1
				parent[w] = u
				queue = append(queue, w)
			}
		}
	}
	for _, x := range orderTail {
		if x == v {
			continue
		}
		// Reconstruct the BFS path v..x.
		var rev []int
		for u := x; u != -1; u = parent[u] {
			rev = append(rev, u)
		}
		path := make([]int, len(rev))
		for i := range rev {
			path[i] = rev[len(rev)-1-i]
		}
		if termColor, ok := s.validShift(g, orig, cur, path); ok {
			return path, termColor, nil
		}
	}
	return nil, 0, fmt.Errorf("coloring: no valid shift path from node %d", v)
}

// validShift simulates the shift along path on top of cur and checks local
// properness; it returns the terminal's color on success.
func (s ShiftStage) validShift(g *graph.Graph, orig, cur []int, path []int) (int, bool) {
	trial := make(map[int]int, len(path))
	for i := 0; i+1 < len(path); i++ {
		trial[path[i]] = orig[path[i+1]]
	}
	colorAt := func(u int) int {
		if c, ok := trial[u]; ok {
			return c
		}
		return cur[u]
	}
	// Terminal: smallest free color in 1..Delta given post-shift neighbors.
	term := path[len(path)-1]
	used := map[int]bool{}
	for _, u := range g.Neighbors(term) {
		used[colorAt(u)] = true
	}
	termColor := 0
	for c := 1; c <= s.Delta; c++ {
		if !used[c] {
			termColor = c
			break
		}
	}
	if termColor == 0 {
		return 0, false
	}
	trial[term] = termColor
	// Local properness of every path node.
	for _, p := range path {
		cp := trial[p]
		if cp < 1 || cp > s.Delta {
			return 0, false
		}
		for _, u := range g.Neighbors(p) {
			if colorAt(u) == cp {
				return 0, false
			}
		}
	}
	return termColor, true
}

// DecodeVar implements core.VarSchema: a 2-round LOCAL algorithm. Path
// nodes take their successor's oracle color; terminals pick the smallest
// color unused by their neighbors' post-shift colors; everyone else keeps
// the oracle color.
func (s ShiftStage) DecodeVar(g *graph.Graph, va core.VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	if len(oracles) == 0 {
		return nil, local.Stats{}, fmt.Errorf("coloring: shift stage needs a (Δ+1)-coloring oracle")
	}
	orig := oracles[len(oracles)-1].Node
	advice := va.Dense(g.N())

	// newColorOf computes a node's post-shift color from radius-1 data; it
	// is shared by path nodes (radius 1) and terminals (radius 2 via their
	// neighbors).
	newColorOf := func(u int) (int, error) {
		if advice[u].Len() == 0 {
			return orig[u], nil
		}
		if advice[u].Bit(0) == 0 {
			return 0, nil // terminal: decided separately
		}
		if advice[u].Len() != 1+s.portWidth() {
			return 0, fmt.Errorf("coloring: node %d has malformed shift advice %v", u, advice[u])
		}
		port := int(advice[u].Slice(1, advice[u].Len()).Uint())
		nbrs := sortedNeighbors(g, u)
		if port >= len(nbrs) {
			return 0, fmt.Errorf("coloring: node %d successor port %d out of range", u, port)
		}
		return orig[nbrs[port]], nil
	}

	sol := lcl.NewSolution(g)
	for v := 0; v < g.N(); v++ {
		c, err := newColorOf(v)
		if err != nil {
			return nil, local.Stats{}, err
		}
		if c != 0 {
			sol.Node[v] = c
			continue
		}
		// Terminal.
		used := map[int]bool{}
		for _, u := range g.Neighbors(v) {
			cu, err := newColorOf(u)
			if err != nil {
				return nil, local.Stats{}, err
			}
			if cu == 0 {
				return nil, local.Stats{}, fmt.Errorf("coloring: adjacent terminals %d and %d", v, u)
			}
			used[cu] = true
		}
		picked := 0
		for c := 1; c <= s.Delta; c++ {
			if !used[c] {
				picked = c
				break
			}
		}
		if picked == 0 {
			return nil, local.Stats{}, fmt.Errorf("coloring: terminal %d found no free color", v)
		}
		sol.Node[v] = picked
	}
	return sol, local.Stats{Rounds: 2}, nil
}

// NewDeltaPipeline assembles the full Section 6 schema (Theorem 6.1): an
// f(Δ)-color cluster coloring with advice, reduction to Δ+1 colors, and the
// advice-guided shift to Δ colors.
func NewDeltaPipeline(delta, coverRadius int) *core.Pipeline {
	return &core.Pipeline{
		PipelineName: fmt.Sprintf("%d-coloring", delta),
		Stages: []core.VarSchema{
			ClusterColoringStage{CoverRadius: coverRadius},
			ReduceStage{Delta: delta},
			ShiftStage{Delta: delta},
		},
	}
}
