package coloring

import (
	"fmt"
	"math/rand"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/lll"
	"localadvice/internal/local"
	"localadvice/internal/obs"
)

// This file re-expresses the Section 7 group placement as an explicit LLL
// instance — the paper's own framing: per ruling-set node r a group
// v_{r,C} must be chosen so that the marked sets of different ruling nodes
// never interact (share nodes, touch, or give a color-1 node two marked
// neighbors). Encode (three.go) resolves the choices greedily in ruler
// order; here each ruler's choice is a variable whose domain enumerates the
// feasible-in-isolation candidate groups, interactions become pairwise bad
// events, and the instance is solved by Moser–Tardos (EncodeLLL), by
// conditional expectations (EncodeDet), or ball-by-ball over the event
// dependency graph's decomposition (EncodeDecomposed). The deterministic
// paths take no RNG at all, so their advice is a pure function of the
// graph. Every path ends with the same prover self-check as Encode: the
// advice must decode to a verified proper 3-coloring.

// maxCandidateGroups caps each ruler's domain; the greedy encoder takes the
// first feasible pair, so keeping the first few dozen (in the same
// distance-then-ID candidate order) preserves its choices while bounding
// the enumeration cost of the deterministic solvers.
const maxCandidateGroups = 24

// rulerChoice is one ruling node's selection problem: the candidate groups
// and, per group, the exact node set the anchor rule would mark.
type rulerChoice struct {
	compNode int     // g-index of the ruling node (for error messages)
	markSets [][]int // choice -> sorted g-node indices that get bit 1
}

// selectSystem is the compiled Section 7 selection instance.
type selectSystem struct {
	phi    []int
	bit    []int // type-1 bits already placed; groups add their marks here
	rulers []rulerChoice
	inst   *lll.Instance
}

// buildSelectSystem computes the greedy base coloring and compiles the
// group-selection LLL instance. A nil system (no error) means no component
// is large enough to need groups; the type-1 bits alone decode.
func (t ThreeColoring) buildSelectSystem(g *graph.Graph) (*selectSystem, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	base, ok := Solve3Coloring(g)
	if !ok {
		return nil, fmt.Errorf("coloring: graph is not 3-colorable")
	}
	phi := Greedify(g, base)
	bit := make([]int, g.N())
	for v, c := range phi {
		if c == 1 {
			bit[v] = 1
		}
	}
	sys := &selectSystem{phi: phi, bit: bit}

	// Feasibility-in-isolation uses a clean marked array: interactions
	// between groups are the LLL events, not sequential state.
	clean := make([]bool, g.N())
	for _, comp := range colorComponents(g, phi) {
		sub, orig := g.InducedSubgraph(comp)
		if sub.Diameter() <= t.SmallDiameter() {
			continue
		}
		for _, r := range componentRulingSet(sub, t.CoverRadius) {
			distR := sub.BFSFrom(r)
			candidates := t.candidateSets(g, sub, orig, phi, distR)
			rc := rulerChoice{compNode: orig[r]}
			for i, a := range candidates {
				if len(rc.markSets) >= maxCandidateGroups {
					break
				}
				if !t.setOK(g, phi, clean, bit, a, nil) {
					continue
				}
				for _, b := range candidates[i+1:] {
					if len(rc.markSets) >= maxCandidateGroups {
						break
					}
					if !t.groupCompatible(g, sub, orig, a, b) {
						continue
					}
					if !t.setOK(g, phi, clean, bit, b, a) {
						continue
					}
					rc.markSets = append(rc.markSets, t.anchorMarkSet(g, phi, a, b))
				}
			}
			if len(rc.markSets) == 0 {
				return nil, fmt.Errorf("coloring: no feasible mark group near component node %d", g.ID(rc.compNode))
			}
			sys.rulers = append(sys.rulers, rc)
		}
	}
	if len(sys.rulers) == 0 {
		return sys, nil
	}

	// Pairwise events between rulers whose choices can interact at all:
	// the union of their mark sets' closed neighborhoods must intersect.
	reach := make([]map[int]bool, len(sys.rulers))
	for i, rc := range sys.rulers {
		reach[i] = map[int]bool{}
		for _, set := range rc.markSets {
			for _, v := range set {
				reach[i][v] = true
				for _, u := range g.Neighbors(v) {
					reach[i][u] = true
				}
			}
		}
	}
	type pairEvent struct{ i, j int }
	var pairs []pairEvent
	for i := range sys.rulers {
		for j := i + 1; j < len(sys.rulers); j++ {
			touch := false
			for v := range reach[j] {
				if reach[i][v] {
					touch = true
					break
				}
			}
			if touch {
				pairs = append(pairs, pairEvent{i, j})
			}
		}
	}
	sys.inst = &lll.Instance{
		NumVars:    len(sys.rulers),
		DomainSize: func(r int) int { return len(sys.rulers[r].markSets) },
		NumEvents:  len(pairs),
		Vars: func(e int) []int {
			ev := pairs[e]
			return []int{ev.i, ev.j}
		},
		Bad: func(e int, a []int) bool {
			ev := pairs[e]
			return t.marksConflict(g, sys.phi,
				sys.rulers[ev.i].markSets[a[ev.i]],
				sys.rulers[ev.j].markSets[a[ev.j]])
		},
	}
	return sys, nil
}

// anchorMarkSet applies the Section 7 anchor rule to a candidate group
// (S, S'): the group's smallest-ID node s determines whether one set
// (φ(s) = 2: the set containing s) or both (φ(s) = 3) are marked. The
// result is sorted so downstream processing is order-independent.
func (t ThreeColoring) anchorMarkSet(g *graph.Graph, phi []int, a, b []int) []int {
	all := append(append([]int(nil), a...), b...)
	s := smallestID(g, all)
	var marks []int
	if phi[s] == 2 {
		if containsNode(a, s) {
			marks = append([]int(nil), a...)
		} else {
			marks = append([]int(nil), b...)
		}
	} else {
		marks = all
	}
	sort.Ints(marks)
	return marks
}

// marksConflict reports whether two rulers' mark sets interact: a shared
// node, adjacency (the marked components would merge), or a color-1 node
// collecting marked neighbors from both (its type-1 bit would stop being
// recognizable). Within-set constraints are already guaranteed by the
// feasibility-in-isolation filter.
func (t ThreeColoring) marksConflict(g *graph.Graph, phi []int, setA, setB []int) bool {
	inA := make(map[int]bool, len(setA))
	for _, v := range setA {
		inA[v] = true
	}
	for _, v := range setB {
		if inA[v] {
			return true
		}
		for _, u := range g.Neighbors(v) {
			if inA[u] {
				return true
			}
		}
	}
	// Color-1 nodes adjacent to both sets: two marked neighbors.
	oneSeesA := map[int]bool{}
	for _, v := range setA {
		for _, u := range g.Neighbors(v) {
			if phi[u] == 1 {
				oneSeesA[u] = true
			}
		}
	}
	for _, v := range setB {
		for _, u := range g.Neighbors(v) {
			if phi[u] == 1 && oneSeesA[u] {
				return true
			}
		}
	}
	return false
}

// finish applies the chosen mark sets and runs the prover self-check.
func (t ThreeColoring) finish(g *graph.Graph, sys *selectSystem, choices []int) (local.Advice, error) {
	for r, rc := range sys.rulers {
		for _, v := range rc.markSets[choices[r]] {
			sys.bit[v] = 1
		}
	}
	advice := make(local.Advice, g.N())
	for v, b := range sys.bit {
		advice[v] = bitstr.New(b)
	}
	sol, _, err := t.Decode(g, advice)
	if err != nil {
		return nil, fmt.Errorf("coloring: three-coloring self-check: %w", err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		return nil, fmt.Errorf("coloring: three-coloring self-check: %w", err)
	}
	return advice, nil
}

// EncodeLLL computes the Theorem 7.1 advice with the group choices resolved
// by Moser–Tardos resampling over the explicit selection instance — the
// constructive form of the paper's Section 7 LLL invocation. rng drives the
// resampling; maxResamplings caps the work.
func (t ThreeColoring) EncodeLLL(g *graph.Graph, rng *rand.Rand, maxResamplings int) (local.Advice, error) {
	return t.EncodeLLLObserved(g, rng, maxResamplings, obs.Default())
}

// EncodeLLLObserved is EncodeLLL reporting solver metrics into an explicit
// collector.
func (t ThreeColoring) EncodeLLLObserved(g *graph.Graph, rng *rand.Rand, maxResamplings int, m *obs.Collector) (local.Advice, error) {
	sys, err := t.buildSelectSystem(g)
	if err != nil {
		return nil, err
	}
	if len(sys.rulers) == 0 {
		return t.finish(g, sys, nil)
	}
	res, err := lll.SolveObserved(sys.inst, rng, maxResamplings, m)
	if err != nil {
		return nil, fmt.Errorf("coloring: LLL group selection: %w", err)
	}
	return t.finish(g, sys, res.Assignment)
}

// EncodeDet is the derandomized EncodeLLL: group choices are fixed by the
// method of conditional expectations (lll.SolveDeterministic). No RNG — the
// advice is a pure function of the graph, identical across seeds.
func (t ThreeColoring) EncodeDet(g *graph.Graph) (local.Advice, error) {
	return t.EncodeDetObserved(g, obs.Default())
}

// EncodeDetObserved is EncodeDet with an explicit metrics collector.
func (t ThreeColoring) EncodeDetObserved(g *graph.Graph, m *obs.Collector) (local.Advice, error) {
	sys, err := t.buildSelectSystem(g)
	if err != nil {
		return nil, err
	}
	if len(sys.rulers) == 0 {
		return t.finish(g, sys, nil)
	}
	res, err := lll.SolveDeterministicObserved(sys.inst, m)
	if err != nil {
		return nil, fmt.Errorf("coloring: deterministic group selection: %w", err)
	}
	return t.finish(g, sys, res.Assignment)
}

// EncodeDecomposed is EncodeDet running ball-by-ball over the selection
// instance's event dependency graph (lll.SolveDecomposed). Also RNG-free.
func (t ThreeColoring) EncodeDecomposed(g *graph.Graph) (local.Advice, error) {
	return t.EncodeDecomposedObserved(g, obs.Default())
}

// EncodeDecomposedObserved is EncodeDecomposed with an explicit metrics
// collector.
func (t ThreeColoring) EncodeDecomposedObserved(g *graph.Graph, m *obs.Collector) (local.Advice, error) {
	sys, err := t.buildSelectSystem(g)
	if err != nil {
		return nil, err
	}
	if len(sys.rulers) == 0 {
		return t.finish(g, sys, nil)
	}
	res, err := lll.SolveDecomposedObserved(sys.inst, m)
	if err != nil {
		return nil, fmt.Errorf("coloring: decomposed group selection: %w", err)
	}
	return t.finish(g, sys, res.Assignment)
}
