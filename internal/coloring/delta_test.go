package coloring

import (
	"math/rand"
	"testing"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func TestClusterColoringStage(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	graphs := map[string]*graph.Graph{
		"cycle60":  graph.Cycle(60),
		"grid6x10": graph.Grid2D(6, 10),
		"torus5x7": graph.Torus2D(5, 7),
		"gnp":      graph.RandomGNP(50, 0.08, rng),
		"tree":     graph.RandomTree(40, rng),
	}
	for name, g := range graphs {
		graph.AssignPermutedIDs(g, rng)
		stage := ClusterColoringStage{CoverRadius: 4}
		va, err := stage.EncodeVar(g, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sol, stats, err := stage.DecodeVar(g, va, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := lcl.Verify(UnboundedColoring{}, g, sol); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if stats.Rounds != stage.DecodeRadius() {
			t.Errorf("%s: rounds %d, want %d", name, stats.Rounds, stage.DecodeRadius())
		}
	}
}

func TestClusterColoringSparsity(t *testing.T) {
	g := graph.Cycle(300)
	prev := -1
	for _, cover := range []int{2, 6, 15} {
		va, err := ClusterColoringStage{CoverRadius: cover}.EncodeVar(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev != -1 && len(va) >= prev {
			t.Errorf("cover %d: %d holders, want fewer than %d", cover, len(va), prev)
		}
		prev = len(va)
	}
}

func TestClusterColoringRejectsBadRadius(t *testing.T) {
	if _, err := (ClusterColoringStage{}).EncodeVar(graph.Cycle(5), nil); err == nil {
		t.Error("zero radius accepted")
	}
}

func TestReduceStage(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	g := graph.RandomGNP(40, 0.15, rng)
	graph.AssignPermutedIDs(g, rng)
	delta := g.MaxDegree()
	// Oracle: the ID coloring (many colors).
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = int(g.ID(v))
	}
	oracle, err := lcl.ColoringSolution(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	for _, skipLinial := range []bool{false, true} {
		stage := ReduceStage{Delta: delta, SkipLinial: skipLinial}
		sol, stats, err := stage.DecodeVar(g, core.VarAdvice{}, []*lcl.Solution{oracle})
		if err != nil {
			t.Fatal(err)
		}
		if err := lcl.Verify(lcl.Coloring{K: delta + 1}, g, sol); err != nil {
			t.Errorf("skipLinial=%v: %v", skipLinial, err)
		}
		if stats.Rounds < 1 {
			t.Errorf("skipLinial=%v: no rounds", skipLinial)
		}
	}
}

func TestReduceStageNeedsOracle(t *testing.T) {
	if _, _, err := (ReduceStage{Delta: 3}).DecodeVar(graph.Cycle(4), core.VarAdvice{}, nil); err == nil {
		t.Error("missing oracle accepted")
	}
}

// deltaColorableGraph returns a Δ-regular-ish Δ-colorable graph with slack
// (chromatic number below Δ), the family Theorem 6.1 targets.
func deltaColorableGraph(t *testing.T, rng *rand.Rand) (*graph.Graph, int) {
	t.Helper()
	g, _ := graph.RandomColorable(45, 4, 0.25, rng)
	graph.AssignPermutedIDs(g, rng)
	delta := g.MaxDegree()
	if delta < 5 {
		t.Skip("generated graph too sparse for the test")
	}
	return g, delta
}

func TestShiftStage(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 5; trial++ {
		g, delta := deltaColorableGraph(t, rng)
		// Build a (Δ+1)-coloring oracle with greedy.
		colors := lcl.GreedyColoring(g)
		oracle, err := lcl.ColoringSolution(g, colors)
		if err != nil {
			t.Fatal(err)
		}
		stage := ShiftStage{Delta: delta}
		va, err := stage.EncodeVar(g, []*lcl.Solution{oracle})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, stats, err := stage.DecodeVar(g, va, []*lcl.Solution{oracle})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lcl.Verify(lcl.Coloring{K: delta}, g, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.Rounds != 2 {
			t.Errorf("rounds = %d, want 2", stats.Rounds)
		}
	}
}

func TestShiftStageNoUncolored(t *testing.T) {
	// Already Δ-colored: no advice needed, identity output.
	g := graph.Cycle(8)
	colors := []int{1, 2, 1, 2, 1, 2, 1, 2}
	oracle, err := lcl.ColoringSolution(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	stage := ShiftStage{Delta: 2}
	va, err := stage.EncodeVar(g, []*lcl.Solution{oracle})
	if err != nil {
		t.Fatal(err)
	}
	if len(va) != 0 {
		t.Errorf("advice for already-solved instance: %v", va)
	}
	sol, _, err := stage.DecodeVar(g, va, []*lcl.Solution{oracle})
	if err != nil {
		t.Fatal(err)
	}
	for v := range colors {
		if sol.Node[v] != colors[v] {
			t.Error("coloring changed")
		}
	}
}

func TestShiftStageNeedsOracle(t *testing.T) {
	if _, err := (ShiftStage{Delta: 3}).EncodeVar(graph.Cycle(4), nil); err == nil {
		t.Error("missing oracle accepted in encode")
	}
	if _, _, err := (ShiftStage{Delta: 3}).DecodeVar(graph.Cycle(4), core.VarAdvice{}, nil); err == nil {
		t.Error("missing oracle accepted in decode")
	}
}

func TestDeltaPipelineEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	for trial := 0; trial < 3; trial++ {
		g, delta := deltaColorableGraph(t, rng)
		p := NewDeltaPipeline(delta, 4)
		va, err := p.EncodeVar(g, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, stats, err := p.DecodeVar(g, va, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lcl.Verify(lcl.Coloring{K: delta}, g, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.Rounds <= 0 {
			t.Error("no rounds accounted")
		}
	}
}

func TestDeltaPipelineOnTorus(t *testing.T) {
	// Torus: 4-regular, 3-chromatic, so 4-coloring has slack.
	g := graph.Torus2D(6, 8)
	p := NewDeltaPipeline(4, 4)
	va, err := p.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := p.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 4}, g, sol); err != nil {
		t.Fatal(err)
	}
}
