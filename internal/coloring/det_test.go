package coloring

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// colorAdviceFingerprint renders dense advice canonically for byte-identity
// comparisons.
func colorAdviceFingerprint(a local.Advice) string {
	var sb []byte
	for _, s := range a {
		sb = append(sb, s.String()...)
		sb = append(sb, '|')
	}
	return string(sb)
}

// TestEncodeDetValidAndSeedFree pins the deterministic mark-selection path
// of the Section 7 pipeline on families where the ruling-group machinery
// runs for real (the strip and the chorded cycle have rulers > 0): the
// conditional-expectations advice is identical across runs and identical
// to the decomposition-guided variant, and it decodes to a verified proper
// 3-coloring. The IDs are permuted to a labelling where the greedy
// ruling-group placer is feasible (it is ID-order sensitive; see the
// harness e12Graphs comment).
func TestEncodeDetValidAndSeedFree(t *testing.T) {
	tc := ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	families := map[string]*graph.Graph{
		"cycle64":    graph.Cycle(64),
		"tristrip":   graph.TriangularStrip(80),
		"chordcycle": graph.ChordedCycle(120),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			graph.AssignPermutedIDs(g, rand.New(rand.NewSource(1)))
			det, err := tc.EncodeDet(g)
			if err != nil {
				t.Fatal(err)
			}
			fp := colorAdviceFingerprint(det)
			again, err := tc.EncodeDet(g)
			if err != nil {
				t.Fatal(err)
			}
			if colorAdviceFingerprint(again) != fp {
				t.Fatal("EncodeDet is not deterministic")
			}
			dec, err := tc.EncodeDecomposed(g)
			if err != nil {
				t.Fatal(err)
			}
			if colorAdviceFingerprint(dec) != fp {
				t.Fatal("decomposed selection differs from conditional expectations")
			}
			sol, _, err := tc.DecodeOn("ball", g, det, local.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
				t.Fatal(err)
			}
			mt, err := tc.EncodeLLL(g, rand.New(rand.NewSource(9)), 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			mtSol, _, err := tc.DecodeOn("ball", g, mt, local.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.Coloring{K: 3}, g, mtSol); err != nil {
				t.Fatal(err)
			}
		})
	}
}
