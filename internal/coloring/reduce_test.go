package coloring

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func TestCheckProper(t *testing.T) {
	g := graph.Path(3)
	if err := CheckProper(g, []int{1, 2, 1}); err != nil {
		t.Errorf("proper rejected: %v", err)
	}
	if err := CheckProper(g, []int{1, 1, 2}); err == nil {
		t.Error("clash accepted")
	}
	if err := CheckProper(g, []int{1, 2}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := CheckProper(g, []int{0, 1, 2}); err == nil {
		t.Error("zero color accepted")
	}
}

func TestReduceToDeltaPlus1(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 15; trial++ {
		g := graph.RandomGNP(30, 0.2, rng)
		graph.AssignPermutedIDs(g, rng)
		// Start from the "ID coloring": node v has color ID(v).
		colors := make([]int, g.N())
		for v := range colors {
			colors[v] = int(g.ID(v))
		}
		reduced, rounds, err := ReduceToDeltaPlus1(g, colors)
		if err != nil {
			t.Fatal(err)
		}
		if err := CheckProper(g, reduced); err != nil {
			t.Fatal(err)
		}
		delta := g.MaxDegree()
		if MaxColor(reduced) > delta+1 {
			t.Errorf("reduced to %d colors, want <= %d", MaxColor(reduced), delta+1)
		}
		if want := MaxColor(colors) - (delta + 1); rounds != want && !(want < 0 && rounds == 0) {
			t.Errorf("rounds = %d, want %d", rounds, want)
		}
	}
}

func TestReduceKeepsSmallColorings(t *testing.T) {
	g := graph.Cycle(6)
	colors := []int{1, 2, 1, 2, 1, 2}
	reduced, rounds, err := ReduceToDeltaPlus1(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	if rounds != 0 {
		t.Errorf("rounds = %d, want 0", rounds)
	}
	for v := range colors {
		if reduced[v] != colors[v] {
			t.Error("coloring changed unnecessarily")
		}
	}
}

func TestLinialReduceProperAndSmaller(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	g := graph.RandomGNP(60, 0.08, rng)
	graph.AssignPermutedIDs(g, rng)
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = int(g.ID(v))
	}
	out, err := LinialReduce(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckProper(g, out); err != nil {
		t.Fatal(err)
	}
	if MaxColor(out) >= MaxColor(colors) {
		t.Errorf("Linial did not shrink: %d -> %d", MaxColor(colors), MaxColor(out))
	}
}

func TestLinialReduceToQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	g := graph.RandomGNP(80, 0.05, rng)
	graph.AssignSpreadIDs(g, rng)
	colors := make([]int, g.N())
	for v := range colors {
		colors[v] = int(g.ID(v))
	}
	out, rounds, err := LinialReduceToQuadratic(g, colors)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckProper(g, out); err != nil {
		t.Fatal(err)
	}
	delta := g.MaxDegree()
	// O(Δ²): the polynomial family gives at most q² colors with q the
	// smallest prime above Δ (loose check: (3Δ+10)²).
	bound := (3*delta + 10) * (3*delta + 10)
	if MaxColor(out) > bound {
		t.Errorf("final colors %d exceed O(Δ²) bound %d (Δ=%d)", MaxColor(out), bound, delta)
	}
	if rounds < 1 {
		t.Errorf("rounds = %d", rounds)
	}
	t.Logf("n=%d Δ=%d: %d -> %d colors in %d Linial rounds", g.N(), delta, MaxColor(colors), MaxColor(out), rounds)
}

func TestLinialEdgeCases(t *testing.T) {
	// Isolated nodes (Δ=0): reduction is a no-op.
	g := graph.New(4)
	out, err := LinialReduce(g, []int{5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range out {
		if c != []int{5, 6, 7, 8}[i] {
			t.Error("Δ=0 reduction changed colors")
		}
	}
}

func TestPrimeHelpers(t *testing.T) {
	tests := []struct{ in, want int }{{0, 2}, {2, 2}, {3, 3}, {4, 5}, {14, 17}, {20, 23}}
	for _, tt := range tests {
		if got := nextPrime(tt.in); got != tt.want {
			t.Errorf("nextPrime(%d) = %d, want %d", tt.in, got, tt.want)
		}
	}
	if isPrime(1) || isPrime(9) || !isPrime(13) {
		t.Error("isPrime wrong")
	}
}

func TestDigitsAndEvalPoly(t *testing.T) {
	d := digits(23, 5, 3) // 23 = 3 + 4*5
	if d[0] != 3 || d[1] != 4 || d[2] != 0 {
		t.Errorf("digits = %v", d)
	}
	// p(x) = 3 + 4x over GF(5): p(2) = 11 mod 5 = 1.
	if got := evalPoly([]int{3, 4}, 2, 5); got != 1 {
		t.Errorf("evalPoly = %d, want 1", got)
	}
}

func TestGreedifyProducesGreedyColoring(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 10; trial++ {
		g, planted := graph.RandomColorable(24, 3, 0.25, rng)
		out := Greedify(g, planted)
		if err := CheckProper(g, out); err != nil {
			t.Fatal(err)
		}
		if !IsGreedy(g, out) {
			t.Fatal("Greedify output not greedy")
		}
		if MaxColor(out) > MaxColor(planted) {
			t.Error("Greedify increased colors")
		}
	}
}

func TestSolve3Coloring(t *testing.T) {
	if _, ok := Solve3Coloring(graph.Complete(4)); ok {
		t.Error("K4 3-colored")
	}
	colors, ok := Solve3Coloring(graph.Cycle(5))
	if !ok {
		t.Fatal("C5 not 3-colored")
	}
	sol, err := lcl.ColoringSolution(graph.Cycle(5), colors)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, graph.Cycle(5), sol); err != nil {
		t.Error(err)
	}
}
