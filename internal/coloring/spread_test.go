package coloring

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func TestSpacedPartialColoringCheck(t *testing.T) {
	g := graph.Path(8)
	p := SpacedPartialColoring{Delta: 2, Spacing: 3}
	sol := lcl.NewSolution(g)
	copy(sol.Node, []int{3, 1, 2, 1, 3, 1, 2, 1})
	// Uncolored (=3) at nodes 0 and 4: distance 4 > 3.
	if err := lcl.Verify(p, g, sol); err != nil {
		t.Errorf("valid spaced partial coloring rejected: %v", err)
	}
	copy(sol.Node, []int{3, 1, 2, 3, 1, 2, 1, 2})
	// Uncolored at 0 and 3: distance 3 <= 3.
	if err := lcl.Verify(p, g, sol); err == nil {
		t.Error("under-spaced holes accepted")
	}
	copy(sol.Node, []int{1, 1, 2, 1, 2, 1, 2, 1})
	if err := lcl.Verify(p, g, sol); err == nil {
		t.Error("improper colors accepted")
	}
}

func TestSpreadStageAlone(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	for trial := 0; trial < 4; trial++ {
		g, delta := deltaColorableGraph(t, rng)
		colors := lcl.GreedyColoring(g)
		oracle, err := lcl.ColoringSolution(g, colors)
		if err != nil {
			t.Fatal(err)
		}
		stage := SpreadStage{Delta: delta, Spacing: 4}
		va, err := stage.EncodeVar(g, []*lcl.Solution{oracle})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, _, err := stage.DecodeVar(g, va, []*lcl.Solution{oracle})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lcl.Verify(stage.Problem(), g, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestSpreadStageNeedsOracle(t *testing.T) {
	if _, err := (SpreadStage{Delta: 3, Spacing: 2}).EncodeVar(graph.Cycle(5), nil); err == nil {
		t.Error("missing oracle accepted")
	}
	oracle, err := lcl.ColoringSolution(graph.Cycle(4), []int{1, 2, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (SpreadStage{Delta: 2, Spacing: 0}).EncodeVar(graph.Cycle(4), []*lcl.Solution{oracle}); err == nil {
		t.Error("zero spacing accepted")
	}
}

func TestDeltaPipelineSplitEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(212))
	for trial := 0; trial < 3; trial++ {
		g, delta := deltaColorableGraph(t, rng)
		p := NewDeltaPipelineSplit(delta, 4, 4)
		va, err := p.EncodeVar(g, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sol, stats, err := p.DecodeVar(g, va, nil)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := lcl.Verify(lcl.Coloring{K: delta}, g, sol); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if stats.Rounds <= 0 {
			t.Error("no rounds accounted")
		}
	}
}

func TestDeltaPipelineSplitOnTorus(t *testing.T) {
	g := graph.Torus2D(6, 8)
	p := NewDeltaPipelineSplit(4, 4, 5)
	va, err := p.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := p.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 4}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestNoAdviceColoringBaseline(t *testing.T) {
	g := graph.Cycle(100)
	sol, stats, err := NoAdviceColoring(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != g.Diameter() {
		t.Errorf("rounds = %d, want diameter %d", stats.Rounds, g.Diameter())
	}
	// Unsolvable instance errors.
	if _, _, err := NoAdviceColoring(graph.Complete(4), 3); err == nil {
		t.Error("K4 3-colored by the baseline")
	}
	// Multiple components: rounds are the max component diameter.
	u := graph.DisjointUnion(graph.Cycle(60), graph.Path(10))
	_, st, err := NoAdviceColoring(u, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Rounds != 30 {
		t.Errorf("rounds = %d, want 30", st.Rounds)
	}
}
