package coloring

import (
	"fmt"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// No-advice baselines for the Section 6/7 problems. Both Δ-coloring of
// Δ-colorable graphs and 3-coloring of 3-colorable graphs are global
// problems in the LOCAL model: without advice, the only always-correct
// deterministic algorithm is "gather the whole component and solve", whose
// round count is the component diameter (i.e., Θ(n) on paths and cycles).
// These baselines quantify the separation the advice schemas buy: constant
// (parameter-dependent) rounds versus diameter rounds.

// NoAdviceColoring solves the K-coloring problem by full gathering: every
// node learns its entire component and runs the deterministic exact solver.
// It returns the coloring and the honest round count (the maximum component
// diameter; every node must see its whole component to be sure of a
// globally consistent choice).
func NoAdviceColoring(g *graph.Graph, k int) (*lcl.Solution, local.Stats, error) {
	comp, count := g.Components()
	sol := lcl.NewSolution(g)
	rounds := 0
	for c := 0; c < count; c++ {
		var members []int
		for v := 0; v < g.N(); v++ {
			if comp[v] == c {
				members = append(members, v)
			}
		}
		sub, orig := g.InducedSubgraph(members)
		colors, ok := SolveKColoring(sub, k)
		if !ok {
			return nil, local.Stats{}, fmt.Errorf("coloring: component %d is not %d-colorable", c, k)
		}
		for si, v := range orig {
			sol.Node[v] = colors[si]
		}
		if d := sub.Diameter(); d > rounds {
			rounds = d
		}
	}
	return sol, local.Stats{Rounds: rounds}, nil
}
