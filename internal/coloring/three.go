package coloring

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// This file implements Theorem 7.1: 3-coloring any 3-colorable graph with
// exactly one bit of advice per node, decodable in poly(Δ) rounds.
//
// Encoding. Fix a greedy 3-coloring φ (every node of color i has neighbors
// of all colors < i). Nodes of color 1 get bit 1 ("type-1 bits"). For every
// large connected component C of G[{2,3}], a ruling set of C is chosen and
// near each ruling node a GROUP of additional 1-bits ("type-23 bits") is
// placed on nodes of C, arranged so that
//
//   - a 1-bit is type-23 iff its node has at least two neighbors with bit 1
//     (Lemma 7.2 provides the candidates: a node w with two color-1
//     neighbors, or two adjacent nodes x, y each with a color-1 neighbor),
//   - every color-1 node keeps at most one 1-bit neighbor (so its own bit
//     stays recognizable as type 1), and
//   - the group consists of two nearby marked sets S and S′; marking only
//     the set containing the group's smallest-ID node s yields one connected
//     component of marks and says φ(s) = 2, marking both yields two
//     components and says φ(s) = 3.
//
// Decoding. A node whose bit is type 1 outputs color 1. Other nodes explore
// their component of G[{2,3}]: small components (fully visible) are
// 2-colored canonically; in large components the nearest fully visible
// group reveals φ(s) for its anchor s, and the bipartition parity of the
// component transfers the color to the node.

// ThreeColoring is the 1-bit advice schema of Theorem 7.1. It implements
// core.Schema semantics directly (its advice is natively uniform one bit
// per node).
type ThreeColoring struct {
	// CoverRadius is the ruling-set covering radius inside each large
	// component; components of diameter <= SmallDiameter() carry no groups.
	CoverRadius int
	// GroupSpread bounds the distance (within the component) between the
	// two marked sets of one group.
	GroupSpread int
}

// NewThreeColoring returns the schema with defaults suited to the
// experiment graphs.
func NewThreeColoring() ThreeColoring {
	return ThreeColoring{CoverRadius: 14, GroupSpread: 3}
}

// SmallDiameter is the component diameter up to which no advice is needed.
func (t ThreeColoring) SmallDiameter() int { return t.DecodeRadius() - 3 }

// DecodeRadius is the LOCAL decoding radius: far enough that a node sees
// its nearest group (CoverRadius + GroupSpread), the whole of that group
// (+2·GroupSpread), and the component geodesics between group members
// (+2·GroupSpread more), with slack.
func (t ThreeColoring) DecodeRadius() int { return t.CoverRadius + 5*t.GroupSpread + 4 }

// Name identifies the schema.
func (ThreeColoring) Name() string { return "3-coloring" }

// Problem is the 3-coloring LCL.
func (ThreeColoring) Problem() lcl.Problem { return lcl.Coloring{K: 3} }

func (t ThreeColoring) validate() error {
	if t.GroupSpread < 2 {
		return fmt.Errorf("coloring: three-coloring needs GroupSpread >= 2, got %+v", t)
	}
	// Groups of different ruling nodes must stay farther apart than the
	// decoder's same-group clustering threshold (2*GroupSpread).
	if t.CoverRadius < 4*t.GroupSpread+2 {
		return fmt.Errorf("coloring: three-coloring needs CoverRadius >= 4*GroupSpread+2, got %+v", t)
	}
	return nil
}

// Solve3Coloring finds a proper 3-coloring, or reports that none exists —
// the prover's ground truth. It uses DSATUR-ordered backtracking with
// forward checking, which handles the experiment graphs in milliseconds.
func Solve3Coloring(g *graph.Graph) ([]int, bool) {
	return SolveKColoring(g, 3)
}

// SolveKColoring finds a proper K-coloring by exact search: always branch
// on the node with the fewest remaining colors (most saturated), prune as
// soon as any uncolored node runs out of options.
func SolveKColoring(g *graph.Graph, k int) ([]int, bool) {
	n := g.N()
	colors := make([]int, n)
	full := uint32(1)<<uint(k) - 1
	avail := make([]uint32, n)
	for v := range avail {
		avail[v] = full
	}
	var solve func(remaining int) bool
	solve = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		// Most-constrained uncolored node; ties toward higher degree.
		best := -1
		for v := 0; v < n; v++ {
			if colors[v] != 0 {
				continue
			}
			if best == -1 ||
				popcount(avail[v]) < popcount(avail[best]) ||
				popcount(avail[v]) == popcount(avail[best]) && g.Degree(v) > g.Degree(best) {
				best = v
			}
		}
		if avail[best] == 0 {
			return false
		}
		for c := 1; c <= k; c++ {
			bit := uint32(1) << uint(c-1)
			if avail[best]&bit == 0 {
				continue
			}
			colors[best] = c
			var changed []int
			feasible := true
			for _, w := range g.Neighbors(best) {
				if colors[w] == 0 && avail[w]&bit != 0 {
					avail[w] &^= bit
					changed = append(changed, w)
					if avail[w] == 0 {
						feasible = false
					}
				}
			}
			if feasible && solve(remaining-1) {
				return true
			}
			colors[best] = 0
			for _, w := range changed {
				avail[w] |= bit
			}
		}
		return false
	}
	if !solve(n) {
		return nil, false
	}
	return colors, true
}

func popcount(x uint32) int {
	c := 0
	for ; x != 0; x &= x - 1 {
		c++
	}
	return c
}

// Greedify turns any proper coloring into a greedy one: repeatedly recolor
// any node of color i that lacks a neighbor of some color j < i down to the
// smallest such j. Colors only decrease, so this terminates; the result is
// proper and greedy.
func Greedify(g *graph.Graph, colors []int) []int {
	out := append([]int(nil), colors...)
	changed := true
	for changed {
		changed = false
		for v := 0; v < g.N(); v++ {
			present := map[int]bool{}
			for _, w := range g.Neighbors(v) {
				present[out[w]] = true
			}
			for j := 1; j < out[v]; j++ {
				if !present[j] {
					out[v] = j
					changed = true
					break
				}
			}
		}
	}
	return out
}

// IsGreedy reports whether every node of color i has neighbors of all
// colors below i.
func IsGreedy(g *graph.Graph, colors []int) bool {
	for v := 0; v < g.N(); v++ {
		present := map[int]bool{}
		for _, w := range g.Neighbors(v) {
			present[colors[w]] = true
		}
		for j := 1; j < colors[v]; j++ {
			if !present[j] {
				return false
			}
		}
	}
	return true
}

// markGroup is one group's bookkeeping during encoding.
type markGroup struct {
	setA, setB []int // the two candidate sets (S and S')
}

// Encode computes the one-bit-per-node advice.
func (t ThreeColoring) Encode(g *graph.Graph) (local.Advice, error) {
	if err := t.validate(); err != nil {
		return nil, err
	}
	base, ok := Solve3Coloring(g)
	if !ok {
		return nil, fmt.Errorf("coloring: graph is not 3-colorable")
	}
	phi := Greedify(g, base)

	bit := make([]int, g.N())
	for v, c := range phi {
		if c == 1 {
			bit[v] = 1
		}
	}

	// markedNbrs[u] counts marked (type-23) neighbors of u; color-1 nodes
	// must stay at <= 1.
	marked := make([]bool, g.N())
	components := colorComponents(g, phi)
	for _, comp := range components {
		sub, orig := g.InducedSubgraph(comp)
		if sub.Diameter() <= t.SmallDiameter() {
			continue // small component: decoded canonically, no advice
		}
		rulers := componentRulingSet(sub, t.CoverRadius)
		for _, r := range rulers {
			group, err := t.placeGroup(g, sub, orig, phi, marked, bit, r)
			if err != nil {
				return nil, err
			}
			// Anchor: smallest-ID node of the group.
			s := smallestID(g, append(append([]int(nil), group.setA...), group.setB...))
			var toMark []int
			if phi[s] == 2 {
				if containsNode(group.setA, s) {
					toMark = group.setA
				} else {
					toMark = group.setB
				}
			} else {
				toMark = append(append([]int(nil), group.setA...), group.setB...)
			}
			for _, v := range toMark {
				marked[v] = true
				bit[v] = 1
			}
		}
	}

	advice := make(local.Advice, g.N())
	for v, b := range bit {
		advice[v] = bitstr.New(b)
	}
	// Prover self-check: the advice must decode to a proper 3-coloring.
	sol, _, err := t.Decode(g, advice)
	if err != nil {
		return nil, fmt.Errorf("coloring: three-coloring self-check: %w", err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		return nil, fmt.Errorf("coloring: three-coloring self-check: %w", err)
	}
	return advice, nil
}

// colorComponents returns the connected components of G[{2,3}] under phi.
func colorComponents(g *graph.Graph, phi []int) [][]int {
	seen := make([]bool, g.N())
	var out [][]int
	for v := 0; v < g.N(); v++ {
		if phi[v] == 1 || seen[v] {
			continue
		}
		var comp []int
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			for _, w := range g.Neighbors(u) {
				if phi[w] != 1 && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// componentRulingSet returns a greedy covering set of the component graph.
func componentRulingSet(sub *graph.Graph, cover int) []int {
	order := make([]int, sub.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return sub.ID(order[a]) < sub.ID(order[b]) })
	covered := make([]bool, sub.N())
	var set []int
	for _, v := range order {
		if covered[v] {
			continue
		}
		set = append(set, v)
		for _, u := range sub.Ball(v, cover) {
			covered[u] = true
		}
	}
	return set
}

// placeGroup finds the two marked sets S and S′ near ruling node r (an
// index into sub), mirroring Lemma 7.2 plus the disjointness constraints of
// the Section 7 encoding.
func (t ThreeColoring) placeGroup(g, sub *graph.Graph, orig []int, phi []int, marked []bool, bit []int, r int) (markGroup, error) {
	distR := sub.BFSFrom(r)
	// Candidate sets in increasing distance from r.
	candidates := t.candidateSets(g, sub, orig, phi, distR)
	for i, a := range candidates {
		if !t.setOK(g, phi, marked, bit, a, nil) {
			continue
		}
		for _, b := range candidates[i+1:] {
			if !t.groupCompatible(g, sub, orig, a, b) {
				continue
			}
			if !t.setOK(g, phi, marked, bit, b, a) {
				continue
			}
			return markGroup{setA: a, setB: b}, nil
		}
	}
	return markGroup{}, fmt.Errorf("coloring: no feasible mark group near component node %d", g.ID(orig[r]))
}

// candidateSets enumerates Lemma 7.2 candidates (in g-node indices) within
// GroupSpread of r in the component.
func (t ThreeColoring) candidateSets(g, sub *graph.Graph, orig []int, phi []int, distR []int) [][]int {
	type cand struct {
		nodes []int
		d     int
	}
	var cands []cand
	for i := 0; i < sub.N(); i++ {
		if distR[i] == -1 || distR[i] > t.GroupSpread {
			continue
		}
		v := orig[i]
		if countColor1Neighbors(g, phi, v) >= 2 {
			cands = append(cands, cand{nodes: []int{v}, d: distR[i]})
		}
		for _, j := range sub.Neighbors(i) {
			if j < i || distR[j] == -1 || distR[j] > t.GroupSpread {
				continue
			}
			w := orig[j]
			// x, y adjacent in C without a common color-1 neighbor.
			if !shareColor1Neighbor(g, phi, v, w) &&
				countColor1Neighbors(g, phi, v) >= 1 && countColor1Neighbors(g, phi, w) >= 1 {
				cands = append(cands, cand{nodes: []int{v, w}, d: minInt(distR[i], distR[j])})
			}
		}
	}
	sort.SliceStable(cands, func(a, b int) bool {
		if cands[a].d != cands[b].d {
			return cands[a].d < cands[b].d
		}
		return g.ID(cands[a].nodes[0]) < g.ID(cands[b].nodes[0])
	})
	out := make([][]int, len(cands))
	for i, c := range cands {
		out[i] = c.nodes
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func countColor1Neighbors(g *graph.Graph, phi []int, v int) int {
	n := 0
	for _, w := range g.Neighbors(v) {
		if phi[w] == 1 {
			n++
		}
	}
	return n
}

func shareColor1Neighbor(g *graph.Graph, phi []int, v, w int) bool {
	for _, u := range g.Neighbors(v) {
		if phi[u] != 1 {
			continue
		}
		for _, x := range g.Neighbors(w) {
			if x == u {
				return true
			}
		}
	}
	return false
}

// setOK checks that marking the nodes of set keeps the invariants: no node
// already marked; no color-1 node collects a second marked neighbor; the
// set is not adjacent to previously marked nodes or to partner (which must
// stay a separate connected component); single-node sets must not be
// adjacent to partner's nodes either.
func (t ThreeColoring) setOK(g *graph.Graph, phi []int, marked []bool, bit []int, set, partner []int) bool {
	inSet := map[int]bool{}
	for _, v := range set {
		inSet[v] = true
	}
	inPartner := map[int]bool{}
	for _, v := range partner {
		inPartner[v] = true
	}
	for _, v := range set {
		if marked[v] || phi[v] == 1 {
			return false
		}
		for _, u := range g.Neighbors(v) {
			if inSet[u] {
				continue
			}
			if marked[u] || inPartner[u] {
				return false // would merge with another marked set
			}
		}
	}
	// Color-1 neighbors of the set must not already have a marked neighbor
	// and must not see two nodes of this set (plus partner handled above).
	seen := map[int]int{}
	for _, v := range set {
		for _, u := range g.Neighbors(v) {
			if phi[u] == 1 {
				seen[u]++
			}
		}
	}
	for _, v := range partner {
		for _, u := range g.Neighbors(v) {
			if phi[u] == 1 {
				seen[u]++
			}
		}
	}
	for u, cnt := range seen {
		if cnt > 1 {
			return false
		}
		if hasMarkedNeighbor(g, marked, u) {
			return false
		}
	}
	return true
}

func hasMarkedNeighbor(g *graph.Graph, marked []bool, u int) bool {
	for _, w := range g.Neighbors(u) {
		if marked[w] {
			return true
		}
	}
	return false
}

// groupCompatible checks that the two sets of a group are close enough in
// the component to be seen together, yet structurally separate.
func (t ThreeColoring) groupCompatible(g, sub *graph.Graph, orig []int, a, b []int) bool {
	// Disjoint and non-adjacent in g.
	inA := map[int]bool{}
	for _, v := range a {
		inA[v] = true
	}
	for _, v := range b {
		if inA[v] {
			return false
		}
		for _, u := range g.Neighbors(v) {
			if inA[u] {
				return false
			}
		}
	}
	return true
}

func smallestID(g *graph.Graph, nodes []int) int {
	best := nodes[0]
	for _, v := range nodes[1:] {
		if g.ID(v) < g.ID(best) {
			best = v
		}
	}
	return best
}

func containsNode(set []int, v int) bool {
	for _, u := range set {
		if u == v {
			return true
		}
	}
	return false
}
