package coloring

import (
	"fmt"
	"sort"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// Decode runs the LOCAL 3-coloring decoder on one-bit-per-node advice.
func (t ThreeColoring) Decode(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
	if err := t.validate(); err != nil {
		return nil, local.Stats{}, err
	}
	if len(advice) != g.N() {
		return nil, local.Stats{}, fmt.Errorf("coloring: advice length %d for %d nodes", len(advice), g.N())
	}
	for v, s := range advice {
		if s.Len() != 1 {
			return nil, local.Stats{}, fmt.Errorf("coloring: node %d holds %d bits, want 1", v, s.Len())
		}
	}
	outputs, stats := local.RunBall(g, advice, t.DecodeRadius(), t.decodeNode)
	return t.assembleColors(stats, g, outputs)
}

// DecodeOn is Decode running on a named engine (local.EngineNames) via
// local.RunDecider — the dispatch the engine-equivalence and
// seed-independence walls sweep.
func (t ThreeColoring) DecodeOn(engine string, g *graph.Graph, advice local.Advice, cfg local.RunConfig) (*lcl.Solution, local.Stats, error) {
	if err := t.validate(); err != nil {
		return nil, local.Stats{}, err
	}
	if len(advice) != g.N() {
		return nil, local.Stats{}, fmt.Errorf("coloring: advice length %d for %d nodes", len(advice), g.N())
	}
	for v, s := range advice {
		if s.Len() != 1 {
			return nil, local.Stats{}, fmt.Errorf("coloring: node %d holds %d bits, want 1", v, s.Len())
		}
	}
	outputs, stats, err := local.RunDecider(engine, g, advice, t.DecodeRadius(), t.decodeNode, cfg)
	if err != nil {
		return nil, stats, err
	}
	return t.assembleColors(stats, g, outputs)
}

// assembleColors collects per-node color outputs into a solution.
func (t ThreeColoring) assembleColors(stats local.Stats, g *graph.Graph, outputs []any) (*lcl.Solution, local.Stats, error) {
	sol := lcl.NewSolution(g)
	for v, out := range outputs {
		if err, isErr := out.(error); isErr {
			return nil, stats, fmt.Errorf("coloring: node %d: %w", v, err)
		}
		sol.Node[v] = out.(int)
	}
	return sol, stats, nil
}

// decodeNode computes the center's color from its radius-R view.
func (t ThreeColoring) decodeNode(view *local.View) any {
	vg := view.G
	r := t.DecodeRadius()

	bitOne := func(i int) bool { return view.Advice[i].Bit(0) == 1 }
	// type23(i): a 1-bit with >= 2 one-bit neighbors. Only meaningful for
	// nodes whose adjacency is complete in the view (depth <= r-1).
	type23 := func(i int) bool {
		if !bitOne(i) {
			return false
		}
		ones := 0
		for _, w := range vg.Neighbors(i) {
			if bitOne(w) {
				ones++
			}
		}
		return ones >= 2
	}
	// isColor1(i): a type-1 bit.
	isColor1 := func(i int) bool { return bitOne(i) && !type23(i) }

	c := view.Center
	if isColor1(c) {
		return 1
	}

	// Explore the center's component of G[{2,3}] out to depth r-2.
	limit := r - 2
	compDist := map[int]int{c: 0}
	queue := []int{c}
	sawLimit := false
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if compDist[u] == limit {
			sawLimit = true
			continue
		}
		for _, w := range vg.Neighbors(u) {
			if _, seen := compDist[w]; seen || isColor1(w) {
				continue
			}
			compDist[w] = compDist[u] + 1
			queue = append(queue, w)
		}
	}

	// Collect marked (type-23) nodes of the component.
	var markedNodes []int
	for i, d := range compDist {
		_ = d
		if type23(i) {
			markedNodes = append(markedNodes, i)
		}
	}

	if !sawLimit && len(markedNodes) == 0 {
		// Small component, fully visible, no groups: canonical 2-coloring.
		return t.canonicalColor(vg, compDist, c)
	}
	if len(markedNodes) == 0 {
		return fmt.Errorf("large component with no visible mark group within %d hops", limit)
	}

	// Cluster marked nodes into groups by component distance <= 2*spread.
	group := t.nearestGroup(vg, compDist, markedNodes)
	// Connected components among the group's nodes (g-adjacency).
	comps := adjacencyComponents(vg, group)
	var phiS int
	switch comps {
	case 1:
		phiS = 2
	case 2:
		phiS = 3
	default:
		return fmt.Errorf("mark group with %d connected components", comps)
	}
	s := group[0]
	for _, v := range group[1:] {
		if vg.ID(v) < vg.ID(s) {
			s = v
		}
	}
	// Transfer by bipartition parity within the component.
	if compDist[s]%2 == 0 {
		return phiS
	}
	return 5 - phiS // the other of {2, 3}
}

// canonicalColor 2-colors a fully visible component: the side of the
// smallest-ID node gets color 2.
func (t ThreeColoring) canonicalColor(vg *graph.Graph, compDist map[int]int, c int) any {
	small := -1
	for i := range compDist {
		if small == -1 || vg.ID(i) < vg.ID(small) {
			small = i
		}
	}
	// Parity of the component distance between c and small: BFS within the
	// component map.
	d, err := compDistance(vg, compDist, small, c)
	if err != nil {
		return err
	}
	if d%2 == 0 {
		return 2
	}
	return 3
}

// compDistance computes the distance between two nodes within the explored
// component.
func compDistance(vg *graph.Graph, compDist map[int]int, from, to int) (int, error) {
	dist := map[int]int{from: 0}
	queue := []int{from}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == to {
			return dist[u], nil
		}
		for _, w := range vg.Neighbors(u) {
			if _, in := compDist[w]; !in {
				continue
			}
			if _, seen := dist[w]; !seen {
				dist[w] = dist[u] + 1
				queue = append(queue, w)
			}
		}
	}
	return 0, fmt.Errorf("nodes not connected within the explored component")
}

// nearestGroup clusters the marked nodes by component distance (threshold
// 2*GroupSpread) and returns the cluster containing the marked node nearest
// to the center.
func (t ThreeColoring) nearestGroup(vg *graph.Graph, compDist map[int]int, markedNodes []int) []int {
	sort.Slice(markedNodes, func(a, b int) bool {
		da, db := compDist[markedNodes[a]], compDist[markedNodes[b]]
		if da != db {
			return da < db
		}
		return vg.ID(markedNodes[a]) < vg.ID(markedNodes[b])
	})
	seed := markedNodes[0]
	group := []int{seed}
	inGroup := map[int]bool{seed: true}
	// Grow the cluster: any marked node within 2*GroupSpread (component
	// distance) of a group member joins.
	changed := true
	for changed {
		changed = false
		for _, m := range markedNodes {
			if inGroup[m] {
				continue
			}
			for _, gmem := range group {
				d, err := compDistance(vg, compDist, gmem, m)
				if err == nil && d <= 2*t.GroupSpread {
					group = append(group, m)
					inGroup[m] = true
					changed = true
					break
				}
			}
		}
	}
	return group
}

// adjacencyComponents counts connected components of the subgraph induced
// by nodes (using vg adjacency).
func adjacencyComponents(vg *graph.Graph, nodes []int) int {
	in := map[int]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	seen := map[int]bool{}
	comps := 0
	for _, v := range nodes {
		if seen[v] {
			continue
		}
		comps++
		queue := []int{v}
		seen[v] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, w := range vg.Neighbors(u) {
				if in[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
	}
	return comps
}
