// Package coloring implements the vertex-coloring results of the paper:
// the Δ-coloring advice schema of Section 6 (cluster coloring with advice,
// color reduction to Δ+1, and the advice-guided Δ+1 → Δ recoloring) and the
// 3-coloring schema of Section 7, together with the classic no-advice color
// reduction subroutines they build on (Linial's cover-free-family reduction
// and color-class scheduling).
package coloring

import (
	"fmt"

	"localadvice/internal/graph"
)

// ReduceToDeltaPlus1 reduces any proper coloring to a proper (Δ+1)-coloring
// by color-class scheduling: classes Δ+2, Δ+3, ... act in descending order,
// each node picking the smallest color in {1..Δ+1} unused by its neighbors'
// current colors. Two nodes of the same class are never adjacent, so a
// class can act in a single round. Returns the new coloring and the number
// of rounds (= maxColor - (Δ+1), or 0).
//
// This replaces the paper's O(√(Δ log Δ))-round list-coloring subroutine
// (Fraigniaud et al. / Barenboim et al. / Maus–Tonoyan): the round count is
// O(maxColor) instead, but remains a function of Δ alone whenever the input
// coloring has f(Δ) colors, which is all Section 6 needs.
func ReduceToDeltaPlus1(g *graph.Graph, colors []int) ([]int, int, error) {
	if err := CheckProper(g, colors); err != nil {
		return nil, 0, err
	}
	delta := g.MaxDegree()
	out := append([]int(nil), colors...)
	maxColor := 0
	for _, c := range out {
		if c > maxColor {
			maxColor = c
		}
	}
	rounds := 0
	for class := maxColor; class > delta+1; class-- {
		for v := 0; v < g.N(); v++ {
			if out[v] != class {
				continue
			}
			used := make(map[int]bool, g.Degree(v))
			for _, w := range g.Neighbors(v) {
				used[out[w]] = true
			}
			picked := 0
			for c := 1; c <= delta+1; c++ {
				if !used[c] {
					picked = c
					break
				}
			}
			if picked == 0 {
				return nil, 0, fmt.Errorf("coloring: node %d found no free color in 1..%d", v, delta+1)
			}
			out[v] = picked
		}
		rounds++
	}
	return out, rounds, nil
}

// CheckProper verifies that colors is a proper coloring with positive labels.
func CheckProper(g *graph.Graph, colors []int) error {
	if len(colors) != g.N() {
		return fmt.Errorf("coloring: %d colors for %d nodes", len(colors), g.N())
	}
	for v, c := range colors {
		if c < 1 {
			return fmt.Errorf("coloring: node %d has non-positive color %d", v, c)
		}
		for _, w := range g.Neighbors(v) {
			if colors[w] == c {
				return fmt.Errorf("coloring: adjacent nodes %d and %d share color %d", v, w, c)
			}
		}
	}
	return nil
}

// MaxColor returns the largest color value used.
func MaxColor(colors []int) int {
	m := 0
	for _, c := range colors {
		if c > m {
			m = c
		}
	}
	return m
}

// LinialReduce performs one round of Linial's color reduction: from a proper
// coloring with colors in {1..c} to a proper coloring with at most q² colors
// where q is the smallest prime with q > degree·⌈log_q c⌉ ... chosen so that
// the polynomial cover-free family over GF(q) works. Each node interprets
// its color as a polynomial of degree k over GF(q) and picks a point of its
// polynomial's graph not covered by any neighbor's polynomial; distinct
// polynomials of degree k intersect in at most k points, so with q > kΔ a
// free point always exists. One LOCAL round.
func LinialReduce(g *graph.Graph, colors []int) ([]int, error) {
	if err := CheckProper(g, colors); err != nil {
		return nil, err
	}
	c := MaxColor(colors)
	delta := g.MaxDegree()
	if delta == 0 {
		return append([]int(nil), colors...), nil
	}
	q, k := linialParams(c, delta)
	out := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		// Polynomial coefficients of (color-1) in base q, degree <= k.
		pv := digits(colors[v]-1, q, k+1)
		// Find x in GF(q) such that (x, pv(x)) differs from every
		// neighbor's polynomial value at x.
		found := false
		for x := 0; x < q && !found; x++ {
			yv := evalPoly(pv, x, q)
			ok := true
			for _, w := range g.Neighbors(v) {
				pw := digits(colors[w]-1, q, k+1)
				if evalPoly(pw, x, q) == yv {
					ok = false
					break
				}
			}
			if ok {
				out[v] = 1 + x*q + yv
				found = true
			}
		}
		if !found {
			return nil, fmt.Errorf("coloring: linial reduction found no free point at node %d (q=%d, k=%d)", v, q, k)
		}
	}
	return out, nil
}

// LinialReduceToQuadratic iterates LinialReduce until the color count stops
// shrinking, returning the final coloring and the number of rounds. On any
// input with f(Δ) colors this converges to O(Δ²) colors in O(log* f(Δ))
// rounds.
func LinialReduceToQuadratic(g *graph.Graph, colors []int) ([]int, int, error) {
	cur := append([]int(nil), colors...)
	rounds := 0
	for {
		next, err := LinialReduce(g, cur)
		if err != nil {
			return nil, rounds, err
		}
		if MaxColor(next) >= MaxColor(cur) {
			return cur, rounds, nil
		}
		cur = next
		rounds++
	}
}

// linialParams picks the polynomial degree k and prime field size q for
// reducing c colors on a max-degree-delta graph: the smallest k >= 1 and
// prime q with q > k*delta and q^(k+1) >= c.
func linialParams(c, delta int) (q, k int) {
	for k = 1; ; k++ {
		q = nextPrime(k*delta + 1)
		// Does q^(k+1) cover c?
		pow := 1
		covers := false
		for i := 0; i <= k; i++ {
			pow *= q
			if pow >= c {
				covers = true
				break
			}
		}
		if covers {
			return q, k
		}
	}
}

// digits returns the base-q digits of x, least significant first, padded to
// width entries.
func digits(x, q, width int) []int {
	out := make([]int, width)
	for i := 0; i < width; i++ {
		out[i] = x % q
		x /= q
	}
	return out
}

// evalPoly evaluates a polynomial given by coefficients (constant term
// first) at x over GF(q) (q prime).
func evalPoly(coeffs []int, x, q int) int {
	y := 0
	for i := len(coeffs) - 1; i >= 0; i-- {
		y = (y*x + coeffs[i]) % q
	}
	return y
}

// nextPrime returns the smallest prime >= n (n >= 2 assumed small).
func nextPrime(n int) int {
	if n < 2 {
		n = 2
	}
	for {
		if isPrime(n) {
			return n
		}
		n++
	}
}

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for d := 2; d*d <= n; d++ {
		if n%d == 0 {
			return false
		}
	}
	return true
}
