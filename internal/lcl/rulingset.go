package lcl

import (
	"fmt"

	"localadvice/internal/graph"
)

// RulingSet is the (2, Beta)-ruling set problem as an LCL with checkability
// radius Beta (Section 3.1): label 1 marks set members, which must be
// pairwise non-adjacent, and every node must have a member within distance
// Beta. It is the one problem family in this codebase whose radius exceeds
// 1, exercising the r̄ > 1 paths of the Section 4 machinery (thicker
// boundary strips, wider verifier balls).
type RulingSet struct{ Beta int }

var _ Problem = RulingSet{}

// Name implements Problem.
func (r RulingSet) Name() string { return fmt.Sprintf("(2,%d)-ruling-set", r.Beta) }

// Radius implements Problem.
func (r RulingSet) Radius() int { return r.Beta }

// NodeAlphabet implements Problem.
func (RulingSet) NodeAlphabet() []int { return []int{1, 2} }

// EdgeAlphabet implements Problem.
func (RulingSet) EdgeAlphabet() []int { return nil }

// CheckNode implements Problem.
func (r RulingSet) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	if sol.Node[v] == Unset {
		return nil
	}
	if sol.Node[v] == 1 {
		for _, w := range g.Neighbors(v) {
			if sol.Node[w] == 1 {
				return fmt.Errorf("adjacent ruling nodes %d and %d", v, w)
			}
		}
		return nil
	}
	// Domination within Beta; only a definite violation when the whole
	// ball is decided.
	anyUnset := false
	for _, u := range g.Ball(v, r.Beta) {
		switch sol.Node[u] {
		case 1:
			return nil
		case Unset:
			anyUnset = true
		}
	}
	if anyUnset {
		return nil
	}
	return fmt.Errorf("node %d has no ruling node within distance %d", v, r.Beta)
}
