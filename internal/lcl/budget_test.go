package lcl

import (
	"testing"

	"localadvice/internal/graph"
)

func allNodes(g *graph.Graph) []int {
	out := make([]int, g.N())
	for i := range out {
		out[i] = i
	}
	return out
}

func TestSolveBudgetExhaustion(t *testing.T) {
	// 2-coloring an odd cycle is unsatisfiable; with a tiny budget the
	// search must give up quickly instead of refuting exhaustively.
	g := graph.Cycle(15)
	if _, ok := SolveBudget(Coloring{K: 2}, g, NewSolution(g), allNodes(g), 5); ok {
		t.Error("unsatisfiable instance solved under budget")
	}
}

func TestSolveBudgetZeroMeansUnbounded(t *testing.T) {
	g := graph.Cycle(7)
	sol, ok := SolveBudget(Coloring{K: 3}, g, NewSolution(g), allNodes(g), 0)
	if !ok {
		t.Fatal("unbounded search failed on a satisfiable instance")
	}
	if err := Verify(Coloring{K: 3}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSolveBudgetFixedConflictFastRefusal(t *testing.T) {
	// Two adjacent nodes fixed to the same color: the pre-check must refuse
	// before any search happens, even with a huge variable space.
	g := graph.Path(40)
	partial := NewSolution(g)
	partial.Node[10], partial.Node[11] = 2, 2
	if _, ok := SolveBudget(Coloring{K: 3}, g, partial, allNodes(g), 10); ok {
		t.Error("fixed-fixed conflict not refused")
	}
}

func TestSolveConstrainedChecksOnlyGivenNodes(t *testing.T) {
	// A path where one end has a fixed conflict, but the conflicting nodes
	// are NOT check nodes: the solver may still complete the rest.
	g := graph.Path(6)
	partial := NewSolution(g)
	partial.Node[0], partial.Node[1] = 1, 1 // conflict outside checkNodes
	sol, ok := SolveConstrained(Coloring{K: 3}, g, partial, []int{3, 4, 5})
	if !ok {
		t.Fatal("completion failed despite unchecked conflict")
	}
	// Nodes 3..5 proper among themselves and their neighbors.
	for _, v := range []int{3, 4, 5} {
		if err := (Coloring{K: 3}).CheckNode(g, v, sol); err != nil {
			t.Error(err)
		}
	}
}

func TestSolveDeterministicAcrossIDOrder(t *testing.T) {
	// Same graph, same IDs: identical completions; the variable order is
	// by ID, so relabeling indices while keeping IDs must not matter.
	g1 := graph.Cycle(8)
	s1, ok := Solve(Coloring{K: 3}, g1, NewSolution(g1))
	if !ok {
		t.Fatal("unsolved")
	}
	s2, ok := Solve(Coloring{K: 3}, g1.Clone(), NewSolution(g1))
	if !ok {
		t.Fatal("unsolved")
	}
	for v := range s1.Node {
		if s1.Node[v] != s2.Node[v] {
			t.Fatal("nondeterministic completion")
		}
	}
}
