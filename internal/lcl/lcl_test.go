package lcl

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
)

func TestColoringVerify(t *testing.T) {
	g := graph.Cycle(6)
	sol := NewSolution(g)
	for v := 0; v < 6; v++ {
		sol.Node[v] = 1 + v%2
	}
	if err := Verify(Coloring{K: 2}, g, sol); err != nil {
		t.Errorf("proper 2-coloring rejected: %v", err)
	}
	sol.Node[1] = 1 // clash with node 0
	if err := Verify(Coloring{K: 2}, g, sol); err == nil {
		t.Error("improper coloring accepted")
	}
}

func TestColoringAlphabetEnforced(t *testing.T) {
	g := graph.Path(2)
	sol := NewSolution(g)
	sol.Node[0] = 1
	sol.Node[1] = 5
	if err := Verify(Coloring{K: 3}, g, sol); err == nil {
		t.Error("out-of-alphabet label accepted")
	}
}

func TestVerifyRejectsIncomplete(t *testing.T) {
	g := graph.Path(3)
	sol := NewSolution(g)
	sol.Node[0] = 1
	if err := Verify(Coloring{K: 3}, g, sol); err == nil {
		t.Error("partial solution accepted")
	}
}

func TestMISVerify(t *testing.T) {
	g := graph.Path(4)
	tests := []struct {
		name   string
		labels []int
		valid  bool
	}{
		{"alternating", []int{1, 2, 1, 2}, true},
		{"endpoints", []int{1, 2, 2, 1}, true},
		{"adjacent in set", []int{1, 1, 2, 1}, false},
		{"not maximal", []int{1, 2, 2, 2}, false},
		{"empty set", []int{2, 2, 2, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol := NewSolution(g)
			copy(sol.Node, tt.labels)
			err := Verify(MIS{}, g, sol)
			if (err == nil) != tt.valid {
				t.Errorf("Verify = %v, want valid=%v", err, tt.valid)
			}
		})
	}
}

func TestMaximalMatchingVerify(t *testing.T) {
	g := graph.Path(4) // edges: {0,1}, {1,2}, {2,3}
	tests := []struct {
		name  string
		edges []int
		valid bool
	}{
		{"ends matched", []int{1, 2, 1}, true},
		{"middle matched", []int{2, 1, 2}, true},
		{"two at one node", []int{1, 1, 2}, false},
		{"not maximal", []int{2, 2, 2}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol := NewSolution(g)
			copy(sol.Edge, tt.edges)
			err := Verify(MaximalMatching{}, g, sol)
			if (err == nil) != tt.valid {
				t.Errorf("Verify = %v, want valid=%v", err, tt.valid)
			}
		})
	}
}

func orient(g *graph.Graph, sol *Solution, from, to int) {
	e := g.EdgeIndex(from, to)
	ed := g.Edge(e)
	if ed.U == from {
		sol.Edge[e] = TowardV
	} else {
		sol.Edge[e] = TowardU
	}
}

func TestBalancedOrientationVerify(t *testing.T) {
	g := graph.Cycle(4)
	sol := NewSolution(g)
	// Consistent cycle orientation 0->1->2->3->0 is balanced.
	orient(g, sol, 0, 1)
	orient(g, sol, 1, 2)
	orient(g, sol, 2, 3)
	orient(g, sol, 3, 0)
	if err := Verify(BalancedOrientation{}, g, sol); err != nil {
		t.Errorf("consistent cycle rejected: %v", err)
	}
	// Reverse one edge: two nodes become unbalanced (in=2 or out=2).
	orient(g, sol, 2, 1)
	if err := Verify(BalancedOrientation{}, g, sol); err == nil {
		t.Error("unbalanced orientation accepted")
	}
}

func TestInOutDegree(t *testing.T) {
	g := graph.Star(3)
	sol := NewSolution(g)
	orient(g, sol, 0, 1)
	orient(g, sol, 2, 0)
	orient(g, sol, 3, 0)
	if OutDegree(g, 0, sol) != 1 || InDegree(g, 0, sol) != 2 {
		t.Errorf("center: out=%d in=%d, want 1/2", OutDegree(g, 0, sol), InDegree(g, 0, sol))
	}
	if OutDegree(g, 2, sol) != 1 || InDegree(g, 2, sol) != 0 {
		t.Error("leaf degrees wrong")
	}
}

func TestSinklessOrientationVerify(t *testing.T) {
	g := graph.Complete(4) // 3-regular
	sol := NewSolution(g)
	// Orient all edges toward node 0: node 0 becomes a sink.
	for _, e := range g.IncidentEdges(0) {
		ed := g.Edge(e)
		if ed.U == 0 {
			sol.Edge[e] = TowardU
		} else {
			sol.Edge[e] = TowardV
		}
	}
	// Orient the remaining edges consistently by index.
	for e := 0; e < g.M(); e++ {
		if sol.Edge[e] == Unset {
			sol.Edge[e] = TowardV
		}
	}
	if err := Verify(SinklessOrientation{}, g, sol); err == nil {
		t.Error("sink at node 0 accepted")
	}
}

func TestEdgeColoringVerify(t *testing.T) {
	g := graph.Path(3)
	sol := NewSolution(g)
	sol.Edge[0], sol.Edge[1] = 1, 2
	if err := Verify(EdgeColoring{K: 2}, g, sol); err != nil {
		t.Errorf("proper edge coloring rejected: %v", err)
	}
	sol.Edge[1] = 1
	if err := Verify(EdgeColoring{K: 2}, g, sol); err == nil {
		t.Error("clashing edge colors accepted")
	}
}

func TestSplittingVerify(t *testing.T) {
	g := graph.Cycle(4)
	sol := NewSolution(g)
	for e := 0; e < 4; e++ {
		sol.Edge[e] = 1 + e%2
	}
	// Cycle(4) edges in order: {0,1},{1,2},{2,3},{0,3} — alternating colors
	// give each node one of each.
	if err := Verify(Splitting{}, g, sol); err != nil {
		t.Errorf("alternating splitting rejected: %v", err)
	}
	sol.Edge[1] = 1
	if err := Verify(Splitting{}, g, sol); err == nil {
		t.Error("unbalanced splitting accepted")
	}
}

func TestWeakColoringVerify(t *testing.T) {
	g := graph.Path(3)
	sol := NewSolution(g)
	sol.Node[0], sol.Node[1], sol.Node[2] = 1, 2, 1
	if err := Verify(WeakColoring{K: 2}, g, sol); err != nil {
		t.Errorf("weak coloring rejected: %v", err)
	}
	sol.Node[0], sol.Node[1], sol.Node[2] = 1, 1, 1
	if err := Verify(WeakColoring{K: 2}, g, sol); err == nil {
		t.Error("monochromatic labeling accepted")
	}
}

func TestSolveCompletesColoring(t *testing.T) {
	g := graph.Cycle(5)
	partial := NewSolution(g)
	partial.Node[0] = 1
	sol, ok := Solve(Coloring{K: 3}, g, partial)
	if !ok {
		t.Fatal("Solve failed on 3-colorable cycle")
	}
	if sol.Node[0] != 1 {
		t.Error("Solve changed a fixed label")
	}
	if err := Verify(Coloring{K: 3}, g, sol); err != nil {
		t.Error(err)
	}
}

func TestSolveDetectsUnsatisfiable(t *testing.T) {
	// An odd cycle is not 2-colorable.
	if Solvable(Coloring{K: 2}, graph.Cycle(5), NewSolution(graph.Cycle(5))) {
		t.Error("odd cycle reported 2-colorable")
	}
	// K4 is not 3-colorable.
	if Solvable(Coloring{K: 3}, graph.Complete(4), NewSolution(graph.Complete(4))) {
		t.Error("K4 reported 3-colorable")
	}
}

func TestSolveRespectsConflictingPartial(t *testing.T) {
	g := graph.Path(2)
	partial := NewSolution(g)
	partial.Node[0], partial.Node[1] = 1, 1
	if _, ok := Solve(Coloring{K: 3}, g, partial); ok {
		t.Error("Solve accepted a conflicting partial solution")
	}
}

func TestSolveOrientationProblems(t *testing.T) {
	g := graph.Torus2D(3, 3)
	sol, ok := Solve(BalancedOrientation{}, g, NewSolution(g))
	if !ok {
		t.Fatal("balanced orientation unsolvable on torus")
	}
	if err := Verify(BalancedOrientation{}, g, sol); err != nil {
		t.Error(err)
	}
}

func TestSolveMISAndMatching(t *testing.T) {
	g := graph.Grid2D(3, 3)
	if sol, ok := Solve(MIS{}, g, NewSolution(g)); !ok {
		t.Error("MIS unsolvable on grid")
	} else if err := Verify(MIS{}, g, sol); err != nil {
		t.Error(err)
	}
	if sol, ok := Solve(MaximalMatching{}, g, NewSolution(g)); !ok {
		t.Error("matching unsolvable on grid")
	} else if err := Verify(MaximalMatching{}, g, sol); err != nil {
		t.Error(err)
	}
}

func TestGreedyColoringProper(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := graph.RandomGNP(25, 0.2, rng)
		graph.AssignPermutedIDs(g, rng)
		colors := GreedyColoring(g)
		sol, err := ColoringSolution(g, colors)
		if err != nil {
			t.Fatal(err)
		}
		delta := g.MaxDegree()
		if err := Verify(Coloring{K: delta + 1}, g, sol); err != nil {
			t.Fatalf("greedy coloring invalid: %v", err)
		}
	}
}

func TestGreedyColoringDependsOnlyOnIDs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomGNP(15, 0.3, rng)
	graph.AssignPermutedIDs(g, rng)
	c1 := GreedyColoring(g)
	c2 := GreedyColoring(g.Clone())
	for v := range c1 {
		if c1[v] != c2[v] {
			t.Fatal("greedy coloring not deterministic")
		}
	}
}

func TestSolutionHelpers(t *testing.T) {
	g := graph.Path(3)
	if _, err := ColoringSolution(g, []int{1, 2}); err == nil {
		t.Error("wrong-length colors accepted")
	}
	if _, err := OrientationSolution(g, []int{TowardV}); err == nil {
		t.Error("wrong-length dirs accepted")
	}
	sol := NewSolution(g)
	if sol.Complete(true, false) {
		t.Error("unset solution reported complete")
	}
	c := sol.Clone()
	c.Node[0] = 1
	if sol.Node[0] != Unset {
		t.Error("Clone shares storage")
	}
}

func TestRulingSetVerify(t *testing.T) {
	g := graph.Path(7)
	p := RulingSet{Beta: 2}
	if p.Radius() != 2 {
		t.Errorf("radius = %d, want 2", p.Radius())
	}
	tests := []struct {
		name   string
		labels []int
		valid  bool
	}{
		{"every other pair", []int{1, 2, 2, 1, 2, 2, 1}, true},
		{"adjacent members", []int{1, 1, 2, 2, 1, 2, 2}, false},
		{"uncovered node", []int{1, 2, 2, 2, 2, 2, 1}, false},
		{"all members invalid", []int{1, 1, 1, 1, 1, 1, 1}, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			sol := NewSolution(g)
			copy(sol.Node, tt.labels)
			err := Verify(p, g, sol)
			if (err == nil) != tt.valid {
				t.Errorf("Verify = %v, want valid=%v", err, tt.valid)
			}
		})
	}
}

func TestRulingSetSolve(t *testing.T) {
	g := graph.Cycle(9)
	sol, ok := Solve(RulingSet{Beta: 3}, g, NewSolution(g))
	if !ok {
		t.Fatal("ruling set unsolvable on C9")
	}
	if err := Verify(RulingSet{Beta: 3}, g, sol); err != nil {
		t.Fatal(err)
	}
}
