package lcl

import (
	"fmt"

	"localadvice/internal/graph"
)

// Orientation edge labels, shared by the orientation-flavored LCLs below:
// an edge {U, V} with U < V labeled TowardV is oriented U -> V, and labeled
// TowardU it is oriented V -> U.
const (
	TowardV = 1
	TowardU = 2
)

// OutDegree returns the out-degree of v under the orientation labels of sol.
// Unset edges are not counted.
func OutDegree(g *graph.Graph, v int, sol *Solution) int {
	out := 0
	for _, e := range g.IncidentEdges(v) {
		ed := g.Edge(e)
		l := sol.Edge[e]
		if l == TowardV && ed.U == v || l == TowardU && ed.V == v {
			out++
		}
	}
	return out
}

// InDegree returns the in-degree of v under the orientation labels of sol.
func InDegree(g *graph.Graph, v int, sol *Solution) int {
	in := 0
	for _, e := range g.IncidentEdges(v) {
		ed := g.Edge(e)
		l := sol.Edge[e]
		if l == TowardV && ed.V == v || l == TowardU && ed.U == v {
			in++
		}
	}
	return in
}

// Coloring is the proper vertex K-coloring LCL (labels 1..K, radius 1).
type Coloring struct{ K int }

var _ Problem = Coloring{}

func (c Coloring) Name() string        { return fmt.Sprintf("%d-coloring", c.K) }
func (c Coloring) Radius() int         { return 1 }
func (c Coloring) NodeAlphabet() []int { return alphabet(c.K) }
func (c Coloring) EdgeAlphabet() []int { return nil }

func (c Coloring) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	lv := sol.Node[v]
	if lv == Unset {
		return nil
	}
	for _, w := range g.Neighbors(v) {
		if sol.Node[w] == lv {
			return fmt.Errorf("nodes %d and %d share color %d", v, w, lv)
		}
	}
	return nil
}

// MIS is the maximal independent set LCL: label 1 = in the set, 2 = out.
type MIS struct{}

var _ Problem = MIS{}

func (MIS) Name() string        { return "mis" }
func (MIS) Radius() int         { return 1 }
func (MIS) NodeAlphabet() []int { return []int{1, 2} }
func (MIS) EdgeAlphabet() []int { return nil }

func (MIS) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	lv := sol.Node[v]
	if lv == Unset {
		return nil
	}
	if lv == 1 {
		for _, w := range g.Neighbors(v) {
			if sol.Node[w] == 1 {
				return fmt.Errorf("adjacent nodes %d and %d both in the set", v, w)
			}
		}
		return nil
	}
	// lv == 2: some neighbor must be in the set — but only report a
	// violation once the whole neighborhood is decided.
	anyUnset := false
	for _, w := range g.Neighbors(v) {
		switch sol.Node[w] {
		case 1:
			return nil
		case Unset:
			anyUnset = true
		}
	}
	if anyUnset {
		return nil
	}
	return fmt.Errorf("node %d is out of the set with no in-set neighbor", v)
}

// MaximalMatching is the maximal matching LCL: edge label 1 = matched,
// 2 = unmatched.
type MaximalMatching struct{}

var _ Problem = MaximalMatching{}

func (MaximalMatching) Name() string        { return "maximal-matching" }
func (MaximalMatching) Radius() int         { return 1 }
func (MaximalMatching) NodeAlphabet() []int { return nil }
func (MaximalMatching) EdgeAlphabet() []int { return []int{1, 2} }

func (MaximalMatching) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	matched := 0
	anyUnset := false
	for _, e := range g.IncidentEdges(v) {
		switch sol.Edge[e] {
		case 1:
			matched++
		case Unset:
			anyUnset = true
		}
	}
	if matched > 1 {
		return fmt.Errorf("node %d has %d matched edges", v, matched)
	}
	if matched == 1 || anyUnset {
		return nil
	}
	// v is unmatched: every neighbor must be matched (else the edge to it
	// could be added). Only a violation when the neighbor's incident edges
	// are all decided.
	for i, w := range g.Neighbors(v) {
		_ = i
		wMatched := false
		wUnset := false
		for _, e := range g.IncidentEdges(w) {
			switch sol.Edge[e] {
			case 1:
				wMatched = true
			case Unset:
				wUnset = true
			}
		}
		if !wMatched && !wUnset {
			return fmt.Errorf("edge {%d,%d} could be added to the matching", v, w)
		}
	}
	return nil
}

// SinklessOrientation requires every node of degree >= 3 to have at least
// one outgoing edge.
type SinklessOrientation struct{}

var _ Problem = SinklessOrientation{}

func (SinklessOrientation) Name() string        { return "sinkless-orientation" }
func (SinklessOrientation) Radius() int         { return 1 }
func (SinklessOrientation) NodeAlphabet() []int { return nil }
func (SinklessOrientation) EdgeAlphabet() []int { return []int{TowardV, TowardU} }

func (SinklessOrientation) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	if g.Degree(v) < 3 {
		return nil
	}
	anyUnset := false
	for _, e := range g.IncidentEdges(v) {
		if sol.Edge[e] == Unset {
			anyUnset = true
		}
	}
	if anyUnset {
		return nil
	}
	if OutDegree(g, v, sol) == 0 {
		return fmt.Errorf("node %d is a sink", v)
	}
	return nil
}

// BalancedOrientation is the almost-balanced orientation LCL of Section 5:
// |indegree - outdegree| <= 1 at every node (so = 0 at even-degree nodes).
type BalancedOrientation struct{}

var _ Problem = BalancedOrientation{}

func (BalancedOrientation) Name() string        { return "balanced-orientation" }
func (BalancedOrientation) Radius() int         { return 1 }
func (BalancedOrientation) NodeAlphabet() []int { return nil }
func (BalancedOrientation) EdgeAlphabet() []int { return []int{TowardV, TowardU} }

func (BalancedOrientation) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	for _, e := range g.IncidentEdges(v) {
		if sol.Edge[e] == Unset {
			return nil
		}
	}
	in, out := InDegree(g, v, sol), OutDegree(g, v, sol)
	diff := in - out
	if diff < 0 {
		diff = -diff
	}
	if diff > 1 {
		return fmt.Errorf("node %d has indegree %d, outdegree %d", v, in, out)
	}
	return nil
}

// EdgeColoring is the proper K-edge-coloring LCL: incident edges get
// distinct labels 1..K.
type EdgeColoring struct{ K int }

var _ Problem = EdgeColoring{}

func (c EdgeColoring) Name() string        { return fmt.Sprintf("%d-edge-coloring", c.K) }
func (c EdgeColoring) Radius() int         { return 1 }
func (c EdgeColoring) NodeAlphabet() []int { return nil }
func (c EdgeColoring) EdgeAlphabet() []int { return alphabet(c.K) }

func (c EdgeColoring) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	seen := make(map[int]int, g.Degree(v))
	for _, e := range g.IncidentEdges(v) {
		l := sol.Edge[e]
		if l == Unset {
			continue
		}
		if other, dup := seen[l]; dup {
			return fmt.Errorf("edges %d and %d at node %d share color %d", other, e, v, l)
		}
		seen[l] = e
	}
	return nil
}

// Splitting is the Section 5 splitting LCL on even-degree graphs: a red/blue
// (1/2) edge coloring with equally many red and blue edges at every node.
type Splitting struct{}

var _ Problem = Splitting{}

func (Splitting) Name() string        { return "splitting" }
func (Splitting) Radius() int         { return 1 }
func (Splitting) NodeAlphabet() []int { return nil }
func (Splitting) EdgeAlphabet() []int { return []int{1, 2} }

func (Splitting) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	red, blue := 0, 0
	for _, e := range g.IncidentEdges(v) {
		switch sol.Edge[e] {
		case 1:
			red++
		case 2:
			blue++
		case Unset:
			return nil
		}
	}
	if red != blue {
		return fmt.Errorf("node %d has %d red and %d blue edges", v, red, blue)
	}
	return nil
}

// WeakColoring requires every non-isolated node to have at least one
// neighbor with a different label (labels 1..K). A classic "easy" LCL used
// as a control in experiments.
type WeakColoring struct{ K int }

var _ Problem = WeakColoring{}

func (c WeakColoring) Name() string        { return fmt.Sprintf("weak-%d-coloring", c.K) }
func (c WeakColoring) Radius() int         { return 1 }
func (c WeakColoring) NodeAlphabet() []int { return alphabet(c.K) }
func (c WeakColoring) EdgeAlphabet() []int { return nil }

func (c WeakColoring) CheckNode(g *graph.Graph, v int, sol *Solution) error {
	if g.Degree(v) == 0 || sol.Node[v] == Unset {
		return nil
	}
	anyUnset := false
	for _, w := range g.Neighbors(v) {
		if sol.Node[w] == Unset {
			anyUnset = true
		} else if sol.Node[w] != sol.Node[v] {
			return nil
		}
	}
	if anyUnset {
		return nil
	}
	return fmt.Errorf("node %d has all neighbors with its own label %d", v, sol.Node[v])
}
