package lcl

import (
	"fmt"
	"sort"

	"localadvice/internal/graph"
)

// Solve completes a partial solution for p on g by exhaustive backtracking,
// or reports that no completion exists. Labels already set in partial are
// kept. This is the centralized brute force used (a) inside clusters by the
// Section 4 schema, where cluster sizes are bounded, and (b) by tests as a
// ground-truth oracle. Its running time is exponential in the number of
// unset labels; callers are responsible for keeping instances small.
func Solve(p Problem, g *graph.Graph, partial *Solution) (*Solution, bool) {
	all := make([]int, g.N())
	for v := range all {
		all[v] = v
	}
	return SolveConstrained(p, g, partial, all)
}

// SolveConstrained is Solve with the final verification (and the pruning
// during search) restricted to the constraints centered at checkNodes. The
// Section 4 decoder uses it to complete a cluster whose boundary strip is
// fixed: constraints of strip nodes whose balls leave the visible region
// are the responsibility of neighboring clusters.
//
// The search is deterministic as a function of the graph's identifiers and
// the partial solution: variables are processed in increasing ID order
// (edges by their sorted endpoint-ID pair) and alphabets in declaration
// order, so every LOCAL view that runs it on the same cluster reaches the
// same completion.
func SolveConstrained(p Problem, g *graph.Graph, partial *Solution, checkNodes []int) (*Solution, bool) {
	return SolveBudget(p, g, partial, checkNodes, 0)
}

// SolveBudget is SolveConstrained with a cap on the number of backtracking
// steps (label assignments); maxSteps <= 0 means unbounded. Exhausting the
// budget reports "no solution found", which callers like the Section 4
// decoder treat as a rejection — honest instances complete in a number of
// steps linear-ish in the cluster size, while adversarially corrupted
// advice can embed unsatisfiable subinstances whose exhaustive refutation
// would be exponential.
func SolveBudget(p Problem, g *graph.Graph, partial *Solution, checkNodes []int, maxSteps int) (*Solution, bool) {
	sol := partial.Clone()
	// Fast refutation of conflicts already present among the fixed labels:
	// without this, a fixed-fixed violation would only surface at the final
	// verification, after the whole search space was enumerated.
	for _, v := range checkNodes {
		if p.CheckNode(g, v, sol) != nil {
			return nil, false
		}
	}
	type variable struct {
		isEdge bool
		index  int
	}
	var vars []variable
	if p.NodeAlphabet() != nil {
		order := make([]int, g.N())
		for v := range order {
			order[v] = v
		}
		sort.Slice(order, func(a, b int) bool { return g.ID(order[a]) < g.ID(order[b]) })
		for _, v := range order {
			if sol.Node[v] == Unset {
				vars = append(vars, variable{isEdge: false, index: v})
			}
		}
	}
	if p.EdgeAlphabet() != nil {
		order := make([]int, g.M())
		for e := range order {
			order[e] = e
		}
		sort.Slice(order, func(a, b int) bool {
			ea, eb := g.Edge(order[a]), g.Edge(order[b])
			loA, hiA := sortedIDs(g, ea)
			loB, hiB := sortedIDs(g, eb)
			if loA != loB {
				return loA < loB
			}
			return hiA < hiB
		})
		for _, e := range order {
			if sol.Edge[e] == Unset {
				vars = append(vars, variable{isEdge: true, index: e})
			}
		}
	}

	check := make(map[int]bool, len(checkNodes))
	for _, v := range checkNodes {
		check[v] = true
	}

	r := p.Radius()
	// Check nodes whose constraint may be affected by a variable:
	// everything within distance r of the variable's location.
	affected := make([][]int, len(vars))
	for i, va := range vars {
		seen := map[int]bool{}
		if va.isEdge {
			ed := g.Edge(va.index)
			for _, v := range g.Ball(ed.U, r) {
				seen[v] = true
			}
			for _, v := range g.Ball(ed.V, r) {
				seen[v] = true
			}
		} else {
			for _, v := range g.Ball(va.index, r) {
				seen[v] = true
			}
		}
		for v := range seen {
			if check[v] {
				affected[i] = append(affected[i], v)
			}
		}
		sort.Ints(affected[i])
	}

	verify := func() bool {
		for _, v := range checkNodes {
			if p.CheckNode(g, v, sol) != nil {
				return false
			}
		}
		return true
	}

	steps := 0
	var backtrack func(i int) bool
	backtrack = func(i int) bool {
		if i == len(vars) {
			return verify()
		}
		va := vars[i]
		var domain []int
		if va.isEdge {
			domain = p.EdgeAlphabet()
		} else {
			domain = p.NodeAlphabet()
		}
		for _, label := range domain {
			steps++
			if maxSteps > 0 && steps > maxSteps {
				return false
			}
			if va.isEdge {
				sol.Edge[va.index] = label
			} else {
				sol.Node[va.index] = label
			}
			ok := true
			for _, v := range affected[i] {
				if p.CheckNode(g, v, sol) != nil {
					ok = false
					break
				}
			}
			if ok && backtrack(i+1) {
				return true
			}
		}
		if va.isEdge {
			sol.Edge[va.index] = Unset
		} else {
			sol.Node[va.index] = Unset
		}
		return false
	}
	if !backtrack(0) {
		return nil, false
	}
	return sol, true
}

func sortedIDs(g *graph.Graph, e graph.Edge) (lo, hi int64) {
	lo, hi = g.ID(e.U), g.ID(e.V)
	if lo > hi {
		lo, hi = hi, lo
	}
	return lo, hi
}

// Solvable reports whether p has any solution on g extending partial.
func Solvable(p Problem, g *graph.Graph, partial *Solution) bool {
	_, ok := Solve(p, g, partial)
	return ok
}

// GreedyColoring returns a proper coloring of g with at most Δ+1 colors
// (labels 1..Δ+1), assigning nodes in increasing ID order the smallest color
// not used by an already-colored neighbor. This is the "greedy coloring"
// every schema in the paper takes as the canonical offline solution.
func GreedyColoring(g *graph.Graph) []int {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	// Sort by ID so the result depends only on IDs, not on indices.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && g.ID(order[j]) < g.ID(order[j-1]); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	colors := make([]int, g.N())
	for _, v := range order {
		used := make(map[int]bool, g.Degree(v))
		for _, w := range g.Neighbors(v) {
			if colors[w] != 0 {
				used[colors[w]] = true
			}
		}
		c := 1
		for used[c] {
			c++
		}
		colors[v] = c
	}
	return colors
}

// ColoringSolution wraps a per-node color slice into a Solution.
func ColoringSolution(g *graph.Graph, colors []int) (*Solution, error) {
	if len(colors) != g.N() {
		return nil, fmt.Errorf("lcl: %d colors for %d nodes", len(colors), g.N())
	}
	sol := NewSolution(g)
	copy(sol.Node, colors)
	return sol, nil
}

// OrientationSolution wraps a per-edge direction slice (TowardV/TowardU)
// into a Solution.
func OrientationSolution(g *graph.Graph, dirs []int) (*Solution, error) {
	if len(dirs) != g.M() {
		return nil, fmt.Errorf("lcl: %d directions for %d edges", len(dirs), g.M())
	}
	sol := NewSolution(g)
	copy(sol.Edge, dirs)
	return sol, nil
}
