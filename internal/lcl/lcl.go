// Package lcl defines locally checkable labeling (LCL) problems in the sense
// of Naor and Stockmeyer: finite input/output alphabets, a constant
// checkability radius r, and a constraint that every radius-r ball must
// satisfy. The paper's Sections 3.3 and 4 operate on exactly this class.
//
// A Problem here is given operationally, as a ball verifier: CheckNode(g, v,
// sol) inspects the radius-r neighborhood of v in g under the candidate
// solution and reports a violation. This is equivalent to the set-of-valid-
// neighborhoods formulation (the set C of the tuple (Σin, Σout, C, r)) and is
// what every experiment needs: given advice-decoded outputs, verify all balls.
package lcl

import (
	"fmt"

	"localadvice/internal/graph"
)

// Unset marks a node or edge label that has not been assigned yet.
const Unset = -1

// Solution is a (possibly partial) output labeling: one label per node and
// one per edge. Problems use node labels, edge labels, or both; unused layers
// stay Unset everywhere.
type Solution struct {
	Node []int
	Edge []int
}

// NewSolution returns a fully-unset solution for g.
func NewSolution(g *graph.Graph) *Solution {
	s := &Solution{
		Node: make([]int, g.N()),
		Edge: make([]int, g.M()),
	}
	for i := range s.Node {
		s.Node[i] = Unset
	}
	for i := range s.Edge {
		s.Edge[i] = Unset
	}
	return s
}

// Clone returns a deep copy.
func (s *Solution) Clone() *Solution {
	c := &Solution{
		Node: append([]int(nil), s.Node...),
		Edge: append([]int(nil), s.Edge...),
	}
	return c
}

// Complete reports whether every node label in useNodes layers and every edge
// label in useEdges layers is set.
func (s *Solution) Complete(useNodes, useEdges bool) bool {
	if useNodes {
		for _, l := range s.Node {
			if l == Unset {
				return false
			}
		}
	}
	if useEdges {
		for _, l := range s.Edge {
			if l == Unset {
				return false
			}
		}
	}
	return true
}

// Problem is an LCL problem. Implementations must be stateless: all methods
// may be called concurrently.
type Problem interface {
	// Name identifies the problem in experiment tables.
	Name() string
	// Radius is the checkability radius r.
	Radius() int
	// NodeAlphabet returns the allowed node labels, or nil if the problem
	// does not label nodes.
	NodeAlphabet() []int
	// EdgeAlphabet returns the allowed edge labels, or nil if the problem
	// does not label edges.
	EdgeAlphabet() []int
	// CheckNode verifies the constraint centered at node v. It may inspect
	// sol only within distance Radius() of v and must return an error
	// describing the violation, or nil. Labels inside the ball are
	// guaranteed set when called from Verify; CheckNode must tolerate Unset
	// labels (treat the ball as not yet checkable and return nil) so the
	// brute-force solver can call it on partial solutions.
	CheckNode(g *graph.Graph, v int, sol *Solution) error
}

// Verify checks sol against problem on every node of g. It first checks
// completeness of the layers the problem uses and label membership in the
// alphabets.
func Verify(p Problem, g *graph.Graph, sol *Solution) error {
	useNodes := p.NodeAlphabet() != nil
	useEdges := p.EdgeAlphabet() != nil
	if useNodes {
		allowed := toSet(p.NodeAlphabet())
		for v, l := range sol.Node {
			if l == Unset {
				return fmt.Errorf("lcl: %s: node %d unlabeled", p.Name(), v)
			}
			if !allowed[l] {
				return fmt.Errorf("lcl: %s: node %d has label %d outside alphabet", p.Name(), v, l)
			}
		}
	}
	if useEdges {
		allowed := toSet(p.EdgeAlphabet())
		for e, l := range sol.Edge {
			if l == Unset {
				return fmt.Errorf("lcl: %s: edge %d unlabeled", p.Name(), e)
			}
			if !allowed[l] {
				return fmt.Errorf("lcl: %s: edge %d has label %d outside alphabet", p.Name(), e, l)
			}
		}
	}
	for v := 0; v < g.N(); v++ {
		if err := p.CheckNode(g, v, sol); err != nil {
			return fmt.Errorf("lcl: %s: constraint at node %d: %w", p.Name(), v, err)
		}
	}
	return nil
}

func toSet(xs []int) map[int]bool {
	m := make(map[int]bool, len(xs))
	for _, x := range xs {
		m[x] = true
	}
	return m
}

func alphabet(k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = i + 1
	}
	return out
}
