// Package growth implements Theorem 4.1 of the paper: on graph families of
// sub-exponential growth, every LCL problem can be solved with one bit of
// advice per node — and the advice can be made arbitrarily sparse — by a
// LOCAL algorithm whose round count depends only on Δ and the schema's
// parameters, never on n.
//
// The construction follows Section 4. The graph is clustered around a
// ruling set; each cluster's center is marked by a connected pattern of
// 1-bits (here: the center and one neighbor — a 1-component of size two),
// while the solution on the cluster-boundary strip is written, one bit per
// node, on an independent set of nodes deep inside the cluster (isolated
// 1-bits). Because marker bits always come in adjacent pairs and data bits
// are always isolated, a decoder can tell them apart, reconstruct the
// clustering, read off the boundary labels, and complete its own cluster by
// (deterministic) brute force — exactly the paper's decode procedure.
//
// The capacity precondition of the theorem — each cluster's interior must
// hold at least as many encodable bits as its boundary strip needs — is
// what sub-exponential growth buys asymptotically. The encoder checks it
// explicitly and fails with a descriptive error when a family (e.g. a
// complete binary tree, which has exponential growth) violates it; that
// dichotomy is experiment E1 versus the Section 8 hardness.
package growth

import (
	"fmt"
	"math/bits"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

// Schema solves an arbitrary LCL with 1-bit-per-node advice on
// bounded-growth graphs.
type Schema struct {
	// Problem is the LCL to solve.
	Problem lcl.Problem
	// ClusterRadius is the ruling-set covering radius R: larger R means
	// sparser advice and more capacity, but a larger decoding radius and a
	// larger brute-force completion per cluster.
	ClusterRadius int
	// Solver computes the global solution the advice encodes; nil uses the
	// generic backtracking solver. The prover is centralized, so any
	// correct solver is admissible.
	Solver func(g *graph.Graph) (*lcl.Solution, error)
}

// DecodeRadius is the LOCAL decoding radius.
func (s Schema) DecodeRadius() int { return 3*s.ClusterRadius + s.Problem.Radius() + 4 }

// dataRadius is how deep inside the cluster data bits may sit.
func (s Schema) dataRadius() int { return (s.ClusterRadius - 4) / 2 }

func (s Schema) validate() error {
	if s.Problem == nil {
		return fmt.Errorf("growth: nil problem")
	}
	if s.ClusterRadius < 8 {
		return fmt.Errorf("growth: ClusterRadius must be >= 8, got %d", s.ClusterRadius)
	}
	return nil
}

// label widths for the problem's alphabets.
func widthOf(alphabet []int) int {
	if len(alphabet) == 0 {
		return 0
	}
	w := bits.Len(uint(len(alphabet) - 1))
	if w == 0 {
		w = 1
	}
	return w
}

// alphaIndex returns the index of label in alphabet.
func alphaIndex(alphabet []int, label int) (int, error) {
	for i, l := range alphabet {
		if l == label {
			return i, nil
		}
	}
	return 0, fmt.Errorf("growth: label %d not in alphabet %v", label, alphabet)
}

// clustering holds the shared structure both encoder and decoder compute.
type clustering struct {
	markers [][2]int // marker components: {center, partner}
	cluster []int    // node -> marker index, or -1 (unclustered isolated)
	solo    []bool   // node -> isolated with no marker (decodes alone)
}

// buildClustering computes markers and Voronoi clusters on any graph (the
// host graph for the encoder, a view subgraph for consistency tests).
func buildClustering(g *graph.Graph, radius int) (*clustering, error) {
	centers := greedyCover(g, radius)
	c := &clustering{cluster: make([]int, g.N()), solo: make([]bool, g.N())}
	for v := range c.cluster {
		c.cluster[v] = -1
	}
	for _, center := range centers {
		if g.Degree(center) == 0 {
			c.solo[center] = true
			continue
		}
		partner := smallestIDNeighbor(g, center)
		c.markers = append(c.markers, [2]int{center, partner})
	}
	assignVoronoi(g, c)
	return c, nil
}

func greedyCover(g *graph.Graph, cover int) []int {
	order := byID(g)
	covered := make([]bool, g.N())
	var set []int
	for _, v := range order {
		if covered[v] {
			continue
		}
		set = append(set, v)
		for _, u := range g.Ball(v, cover) {
			covered[u] = true
		}
	}
	return set
}

func byID(g *graph.Graph) []int {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.ID(order[a]) < g.ID(order[b]) })
	return order
}

func smallestIDNeighbor(g *graph.Graph, v int) int {
	best := -1
	for _, w := range g.Neighbors(v) {
		if best == -1 || g.ID(w) < g.ID(best) {
			best = w
		}
	}
	return best
}

// assignVoronoi assigns every non-solo node to the nearest marker component
// (ties toward the component with the smaller minimum member ID).
//
// One multi-source BFS replaces the historical per-seed sweeps: seeds are
// enqueued in increasing min-member-ID order, so within every distance layer
// the queue stays grouped by that order, and the first marker to discover a
// node is exactly the argmin of (distance, min member ID). O(n + m) total
// instead of O(#markers * (n + m)).
func assignVoronoi(g *graph.Graph, c *clustering) {
	if len(c.markers) == 0 {
		return
	}
	byMinID := make([]int, len(c.markers))
	for i := range byMinID {
		byMinID[i] = i
	}
	sort.Slice(byMinID, func(a, b int) bool {
		return markerMinID(g, c.markers[byMinID[a]]) < markerMinID(g, c.markers[byMinID[b]])
	})
	dist := make([]int32, g.N())
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, g.N())
	for _, mi := range byMinID {
		for _, seed := range c.markers[mi] {
			if dist[seed] == -1 && !c.solo[seed] {
				dist[seed] = 0
				c.cluster[seed] = mi
				queue = append(queue, int32(seed))
			}
		}
	}
	csr := g.Snapshot()
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		for _, w := range csr.Neighbors(int(u)) {
			if dist[w] != -1 || c.solo[w] {
				continue
			}
			dist[w] = dist[u] + 1
			c.cluster[w] = c.cluster[u]
			queue = append(queue, w)
		}
	}
}

func markerMinID(g *graph.Graph, m [2]int) int64 {
	a, b := g.ID(m[0]), g.ID(m[1])
	if a < b {
		return a
	}
	return b
}

// stripNodes returns the boundary strip of cluster mi: every node within
// problem-radius rbar of an endpoint of a cross-cluster edge touching mi,
// sorted by ID.
func stripNodes(g *graph.Graph, c *clustering, mi, rbar int) []int {
	seen := map[int]bool{}
	for _, e := range g.Edges() {
		cu, cv := c.cluster[e.U], c.cluster[e.V]
		if cu == cv || cu != mi && cv != mi {
			continue
		}
		for _, end := range []int{e.U, e.V} {
			for _, w := range g.Ball(end, rbar) {
				seen[w] = true
			}
		}
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return g.ID(out[a]) < g.ID(out[b]) })
	return out
}

// domainNodes returns the completion domain of cluster mi: its members plus
// its strip, sorted by ID.
func domainNodes(g *graph.Graph, c *clustering, mi int, strip []int) []int {
	seen := map[int]bool{}
	for v := 0; v < g.N(); v++ {
		if c.cluster[v] == mi {
			seen[v] = true
		}
	}
	for _, v := range strip {
		seen[v] = true
	}
	out := make([]int, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(a, b int) bool { return g.ID(out[a]) < g.ID(out[b]) })
	return out
}

// stripBits serializes the solution on the strip: for each strip node in ID
// order, its node label index (if the problem labels nodes), then the label
// indices of its incident domain edges in neighbor-ID order (if the problem
// labels edges).
func (s Schema) stripBits(g *graph.Graph, sol *lcl.Solution, strip []int, inDomain map[int]bool) (bitstr.String, error) {
	nodeW := widthOf(s.Problem.NodeAlphabet())
	edgeW := widthOf(s.Problem.EdgeAlphabet())
	out := bitstr.String{}
	for _, v := range strip {
		if nodeW > 0 {
			idx, err := alphaIndex(s.Problem.NodeAlphabet(), sol.Node[v])
			if err != nil {
				return bitstr.String{}, err
			}
			out = out.Concat(bitstr.FromUint(uint64(idx), nodeW))
		}
		if edgeW > 0 {
			for _, e := range sortedIncidentByID(g, v) {
				if !inDomain[g.Other(e, v)] {
					continue
				}
				idx, err := alphaIndex(s.Problem.EdgeAlphabet(), sol.Edge[e])
				if err != nil {
					return bitstr.String{}, err
				}
				out = out.Concat(bitstr.FromUint(uint64(idx), edgeW))
			}
		}
	}
	return out, nil
}

func sortedIncidentByID(g *graph.Graph, v int) []int {
	inc := append([]int(nil), g.IncidentEdges(v)...)
	sort.Slice(inc, func(a, b int) bool {
		return g.ID(g.Other(inc[a], v)) < g.ID(g.Other(inc[b], v))
	})
	return inc
}

// dataCarriers returns the canonical ordered list of nodes that can carry
// data bits for cluster mi: a greedy (by ID) independent set among the
// cluster's nodes within dataRadius of the marker, excluding the marker and
// its neighborhood.
func (s Schema) dataCarriers(g *graph.Graph, c *clustering, mi int) []int {
	m := c.markers[mi]
	excluded := map[int]bool{m[0]: true, m[1]: true}
	for _, seed := range m {
		for _, w := range g.Neighbors(seed) {
			excluded[w] = true
		}
	}
	// Only nodes within dataRadius of a marker seed qualify, so two bounded
	// traversals replace the historical pair of full-graph BFS passes. The
	// second ball skips nodes the first already saw.
	sA, sB := graph.NewBFSScratch(), graph.NewBFSScratch()
	var zone []int
	for _, u := range g.BFSWithin(m[0], s.dataRadius(), sA) {
		v := int(u)
		if c.cluster[v] == mi && !excluded[v] {
			zone = append(zone, v)
		}
	}
	for _, u := range g.BFSWithin(m[1], s.dataRadius(), sB) {
		v := int(u)
		if sA.Dist(v) == -1 && c.cluster[v] == mi && !excluded[v] {
			zone = append(zone, v)
		}
	}
	sort.Slice(zone, func(a, b int) bool { return g.ID(zone[a]) < g.ID(zone[b]) })
	// Greedy independent subset.
	taken := map[int]bool{}
	var carriers []int
	for _, v := range zone {
		ok := true
		for _, w := range g.Neighbors(v) {
			if taken[w] {
				ok = false
				break
			}
		}
		if ok {
			taken[v] = true
			carriers = append(carriers, v)
		}
	}
	return carriers
}
