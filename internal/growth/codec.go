package growth

import (
	"fmt"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// Encode produces the uniform one-bit-per-node advice of Theorem 4.1.
func (s Schema) Encode(g *graph.Graph) (local.Advice, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	sol, err := s.solve(g)
	if err != nil {
		return nil, err
	}
	c, err := buildClustering(g, s.ClusterRadius)
	if err != nil {
		return nil, err
	}
	bit := make([]int, g.N())
	for _, m := range c.markers {
		bit[m[0]], bit[m[1]] = 1, 1
	}
	rbar := s.Problem.Radius()
	for mi := range c.markers {
		strip := stripNodes(g, c, mi, rbar)
		domain := domainNodes(g, c, mi, strip)
		inDomain := map[int]bool{}
		for _, v := range domain {
			inDomain[v] = true
		}
		payload, err := s.stripBits(g, sol, strip, inDomain)
		if err != nil {
			return nil, err
		}
		carriers := s.dataCarriers(g, c, mi)
		if payload.Len() > len(carriers) {
			return nil, fmt.Errorf(
				"growth: cluster %d needs %d data bits but its interior holds only %d carriers — the family's growth is too fast for ClusterRadius=%d (Theorem 4.1's capacity precondition)",
				mi, payload.Len(), len(carriers), s.ClusterRadius)
		}
		for i := 0; i < payload.Len(); i++ {
			bit[carriers[i]] = payload.Bit(i)
		}
	}
	advice := make(local.Advice, g.N())
	for v, b := range bit {
		advice[v] = bitstr.New(b)
	}
	// Prover self-check.
	decoded, _, err := s.Decode(g, advice)
	if err != nil {
		return nil, fmt.Errorf("growth: self-check decode: %w", err)
	}
	if err := lcl.Verify(s.Problem, g, decoded); err != nil {
		return nil, fmt.Errorf("growth: self-check verify: %w", err)
	}
	return advice, nil
}

func (s Schema) solve(g *graph.Graph) (*lcl.Solution, error) {
	if s.Solver != nil {
		return s.Solver(g)
	}
	sol, ok := lcl.Solve(s.Problem, g, lcl.NewSolution(g))
	if !ok {
		return nil, fmt.Errorf("growth: problem %s unsolvable on the graph", s.Problem.Name())
	}
	return sol, nil
}

// nodeOutput is one node's decoded labels.
type nodeOutput struct {
	nodeLabel  int
	edgeLabels map[int64]int // neighbor ID -> label
}

// Decode runs the LOCAL decoder.
func (s Schema) Decode(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
	if err := s.validate(); err != nil {
		return nil, local.Stats{}, err
	}
	if len(advice) != g.N() {
		return nil, local.Stats{}, fmt.Errorf("growth: advice length %d for %d nodes", len(advice), g.N())
	}
	for v, a := range advice {
		if a.Len() != 1 {
			return nil, local.Stats{}, fmt.Errorf("growth: node %d holds %d bits, want 1", v, a.Len())
		}
	}
	outputs, stats := local.RunBall(g, advice, s.DecodeRadius(), func(view *local.View) any {
		return s.decodeNode(view)
	})
	sol := lcl.NewSolution(g)
	useNodes := s.Problem.NodeAlphabet() != nil
	useEdges := s.Problem.EdgeAlphabet() != nil
	for v, out := range outputs {
		if err, isErr := out.(error); isErr {
			return nil, stats, fmt.Errorf("growth: node %d: %w", v, err)
		}
		no := out.(nodeOutput)
		if useNodes {
			sol.Node[v] = no.nodeLabel
		}
		if useEdges {
			for nid, label := range no.edgeLabels {
				w := g.NodeByID(nid)
				if w == -1 {
					return nil, stats, fmt.Errorf("growth: node %d labels edge to unknown ID %d", v, nid)
				}
				e := g.EdgeIndex(v, w)
				if sol.Edge[e] != lcl.Unset && sol.Edge[e] != label {
					return nil, stats, fmt.Errorf("growth: endpoints of edge %d disagree", e)
				}
				sol.Edge[e] = label
			}
		}
	}
	return sol, stats, nil
}

// decodeNode reconstructs the center's cluster, reads its strip labels, and
// completes the cluster by deterministic brute force.
func (s Schema) decodeNode(view *local.View) any {
	vg := view.G
	center := view.Center
	rbar := s.Problem.Radius()

	// Identify marker pairs and data bits among visible 1-nodes: a marker
	// bit has a 1-neighbor, a data bit does not. Only nodes with complete
	// adjacency (depth <= radius-1) are classified.
	bitOne := func(i int) bool { return view.Advice[i].Bit(0) == 1 }
	isMarkerBit := func(i int) bool {
		if !bitOne(i) {
			return false
		}
		for _, w := range vg.Neighbors(i) {
			if bitOne(w) {
				return true
			}
		}
		return false
	}

	// Markers: components of marker bits, which are exactly adjacent pairs.
	// Components reaching depth radius-1 may be truncated by the view edge
	// and are ignored (they belong to clusters too far to matter); fully
	// visible components (all members at depth <= radius-2) must be pairs.
	var markers [][2]int
	seen := map[int]bool{}
	for i := 0; i < vg.N(); i++ {
		if seen[i] || view.Dist[i] > view.Radius-1 || !isMarkerBit(i) {
			continue
		}
		var comp []int
		truncated := false
		queue := []int{i}
		seen[i] = true
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			comp = append(comp, u)
			if view.Dist[u] > view.Radius-2 {
				truncated = true
			}
			for _, w := range vg.Neighbors(u) {
				if !seen[w] && view.Dist[w] <= view.Radius-1 && isMarkerBit(w) {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		if truncated {
			continue
		}
		if len(comp) != 2 {
			return fmt.Errorf("marker component of size %d", len(comp))
		}
		markers = append(markers, [2]int{comp[0], comp[1]})
	}

	if len(markers) == 0 {
		return s.decodeSolo(view)
	}

	// Build the view-local clustering: Voronoi over visible markers.
	c := &clustering{
		markers: markers,
		cluster: make([]int, vg.N()),
		solo:    make([]bool, vg.N()),
	}
	for v := range c.cluster {
		c.cluster[v] = -1
	}
	assignVoronoi(vg, c)

	my := c.cluster[center]
	if my == -1 {
		return s.decodeSolo(view)
	}

	strip := stripNodes(vg, c, my, rbar)
	domain := domainNodes(vg, c, my, strip)
	inDomain := map[int]bool{}
	for _, v := range domain {
		inDomain[v] = true
	}
	carriers := s.dataCarriers(vg, c, my)

	// Read the strip labels off the carriers.
	nodeW := widthOf(s.Problem.NodeAlphabet())
	edgeW := widthOf(s.Problem.EdgeAlphabet())
	pos := 0
	read := func(width int) (int, error) {
		if pos+width > len(carriers) {
			return 0, fmt.Errorf("ran out of data carriers at bit %d", pos)
		}
		v := 0
		for i := 0; i < width; i++ {
			v = v<<1 | boolToInt(bitOne(carriers[pos]))
			pos++
		}
		return v, nil
	}
	sub, orig := vg.InducedSubgraph(domain)
	subIndex := make(map[int]int, len(orig))
	for si, v := range orig {
		subIndex[v] = si
	}
	partial := lcl.NewSolution(sub)
	for _, v := range strip {
		if nodeW > 0 {
			idx, err := read(nodeW)
			if err != nil {
				return err
			}
			if idx >= len(s.Problem.NodeAlphabet()) {
				return fmt.Errorf("node label index %d out of alphabet", idx)
			}
			partial.Node[subIndex[v]] = s.Problem.NodeAlphabet()[idx]
		}
		if edgeW > 0 {
			for _, e := range sortedIncidentByID(vg, v) {
				w := vg.Other(e, v)
				if !inDomain[w] {
					continue
				}
				idx, err := read(edgeW)
				if err != nil {
					return err
				}
				if idx >= len(s.Problem.EdgeAlphabet()) {
					return fmt.Errorf("edge label index %d out of alphabet", idx)
				}
				se := sub.EdgeIndex(subIndex[v], subIndex[w])
				label := s.Problem.EdgeAlphabet()[idx]
				if partial.Edge[se] != lcl.Unset && partial.Edge[se] != label {
					return fmt.Errorf("strip encodes edge %d inconsistently", se)
				}
				partial.Edge[se] = label
			}
		}
	}
	// Complete the cluster: constraints checked at my cluster's members.
	var checkNodes []int
	for _, v := range domain {
		if c.cluster[v] == my {
			checkNodes = append(checkNodes, subIndex[v])
		}
	}
	completed, ok := lcl.SolveBudget(s.Problem, sub, partial, checkNodes, completionBudget)
	if !ok {
		return fmt.Errorf("cluster completion unsolvable (or over budget)")
	}
	return s.extractOutput(sub, completed, subIndex[center])
}

// completionBudget caps the per-cluster brute-force search: honest
// instances complete in roughly alphabet-size * cluster-size steps, while
// corrupted advice can fix unsatisfiable boundary labels whose exhaustive
// refutation would take exponential time. Exhaustion counts as a decoding
// failure (and a rejection in the proof verifier).
const completionBudget = 500000

// decodeSolo handles a node whose whole (marker-free) component is visible.
func (s Schema) decodeSolo(view *local.View) any {
	vg := view.G
	comp := vg.Ball(view.Center, view.Radius)
	// The component must be fully visible: no member at the view boundary.
	for _, v := range comp {
		if view.Dist[v] >= view.Radius-1 {
			return fmt.Errorf("component extends beyond the view with no marker in sight")
		}
	}
	sub, orig := vg.InducedSubgraph(comp)
	subIndex := make(map[int]int, len(orig))
	for si, v := range orig {
		subIndex[v] = si
	}
	all := make([]int, sub.N())
	for i := range all {
		all[i] = i
	}
	completed, ok := lcl.SolveBudget(s.Problem, sub, lcl.NewSolution(sub), all, completionBudget)
	if !ok {
		return fmt.Errorf("solo component unsolvable (or over budget)")
	}
	return s.extractOutput(sub, completed, subIndex[view.Center])
}

// extractOutput pulls one node's labels from a completed solution.
func (s Schema) extractOutput(sub *graph.Graph, sol *lcl.Solution, v int) nodeOutput {
	out := nodeOutput{edgeLabels: map[int64]int{}}
	if s.Problem.NodeAlphabet() != nil {
		out.nodeLabel = sol.Node[v]
	}
	if s.Problem.EdgeAlphabet() != nil {
		for i, e := range sub.IncidentEdges(v) {
			out.edgeLabels[sub.ID(sub.Neighbors(v)[i])] = sol.Edge[e]
		}
	}
	return out
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
