package growth

import (
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// FuzzDecodeArbitraryBits drives the Theorem 4.1 decoder with arbitrary
// one-bit-per-node advice derived from fuzz bytes. Almost all such strings
// are garbage (marker components of the wrong shape, payloads that decode to
// nonsense); the decoder must reject them with an error or decode a solution,
// and must never panic.
func FuzzDecodeArbitraryBits(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x00})
	f.Add([]byte{0xFF, 0xFF, 0xFF})
	f.Add([]byte{0b10101010, 0b01010101, 0x0F})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graph.Cycle(96)
		s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 8, Solver: colorSolver}
		advice := make(local.Advice, g.N())
		for v := 0; v < g.N(); v++ {
			bit := 0
			if v/8 < len(data) && data[v/8]&(1<<(v%8)) != 0 {
				bit = 1
			}
			advice[v] = bitstr.New(bit)
		}
		sol, _, err := s.Decode(g, advice)
		if err == nil && sol == nil {
			t.Fatal("decoder returned neither a solution nor an error")
		}
	})
}

// FuzzDecodeWrongLengths checks the advice-length contract: the decoder must
// reject (not panic on) advice strings that are not exactly one bit.
func FuzzDecodeWrongLengths(f *testing.F) {
	f.Add(uint8(3), uint8(0))
	f.Add(uint8(17), uint8(2))
	f.Fuzz(func(t *testing.T, node, length uint8) {
		g := graph.Cycle(64)
		s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 8, Solver: colorSolver}
		advice := make(local.Advice, g.N())
		for v := 0; v < g.N(); v++ {
			advice[v] = bitstr.New(0)
		}
		bits := make([]int, int(length)%5)
		advice[int(node)%g.N()] = bitstr.New(bits...)
		if len(bits) == 1 {
			return // still well-formed
		}
		if _, _, err := s.Decode(g, advice); err == nil {
			t.Fatalf("decoder accepted %d-bit advice at node %d", len(bits), int(node)%g.N())
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks decode(encode(G)) at fuzz-chosen cycle
// sizes in the capacity regime of Theorem 4.1: the honest round trip must
// always produce a verified proper coloring, and corrupting any single
// advice bit must never yield a silently invalid output once the decoded
// solution is verified.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(0), uint16(40))
	f.Add(uint8(2), uint16(999))
	f.Fuzz(func(t *testing.T, sizeStep uint8, flipAt uint16) {
		n := 600 + 30*(int(sizeStep)%4)
		g := graph.Cycle(n)
		s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 40, Solver: colorSolver}
		advice, err := s.Encode(g)
		if err != nil {
			t.Fatalf("encode failed on cycle(%d): %v", n, err)
		}
		sol, _, err := s.Decode(g, advice)
		if err != nil {
			t.Fatalf("decode failed on honest advice, cycle(%d): %v", n, err)
		}
		if err := lcl.Verify(s.Problem, g, sol); err != nil {
			t.Fatalf("round trip produced an invalid coloring, cycle(%d): %v", n, err)
		}
		// One-bit corruption: decode either errors or the verifier's verdict
		// decides — there is no third, silent outcome.
		v := int(flipAt) % n
		corrupted := append(local.Advice(nil), advice...)
		corrupted[v] = bitstr.New(1 - advice[v].Bit(0))
		if sol, _, err := s.Decode(g, corrupted); err == nil {
			_ = lcl.Verify(s.Problem, g, sol) // either verdict is fine; no panic
		}
	})
}
