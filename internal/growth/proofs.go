package growth

import (
	"fmt"
	"sort"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// This file implements the Section 1.2 corollary: every LCL admits a
// locally checkable proof with 1 bit per node on graphs of sub-exponential
// growth. The advice of the Theorem 4.1 schema IS the proof that Π is
// solvable on G: the verifier tries to decode a solution from the advice
// and then checks its own constraint. If Π is solvable, the honest prover's
// advice makes every node accept; if Π is not solvable on G, no advice can
// make every node accept, because an all-accepting run would exhibit a
// valid solution.
//
// As the paper notes, this is not a 1-round proof labeling scheme: the
// verifier inspects a constant-radius (but larger than 1) neighborhood.

// ProofResult reports a verification run.
type ProofResult struct {
	// Accepted is true iff every node accepted.
	Accepted bool
	// Rejectors lists the nodes that rejected (decode failure or a
	// violated constraint in their ball), sorted.
	Rejectors []int
	// Rounds is the LOCAL round count of the verifier.
	Rounds int
}

// VerifyProof runs the distributed verifier on a candidate 1-bit proof. A
// node rejects when it cannot decode labels for its radius-r̄ ball or when
// its constraint fails on the decoded labels. The verifier radius is the
// schema's decode radius plus the problem's checkability radius (a node
// simulates the decoding of everything in its ball).
func (s Schema) VerifyProof(g *graph.Graph, advice local.Advice) (ProofResult, error) {
	if err := s.validate(); err != nil {
		return ProofResult{}, err
	}
	if len(advice) != g.N() {
		return ProofResult{}, fmt.Errorf("growth: advice length %d for %d nodes", len(advice), g.N())
	}
	for v, a := range advice {
		if a.Len() != 1 {
			return ProofResult{}, fmt.Errorf("growth: node %d holds %d bits, want 1", v, a.Len())
		}
	}
	rbar := s.Problem.Radius()
	rounds := s.DecodeRadius() + rbar

	// Decode every node's labels; decoding errors become rejections at the
	// failing node rather than a global error.
	sol := lcl.NewSolution(g)
	decodeFailed := make([]bool, g.N())
	outputs, _ := local.RunBall(g, advice, s.DecodeRadius(), func(view *local.View) any {
		return s.decodeNode(view)
	})
	useNodes := s.Problem.NodeAlphabet() != nil
	useEdges := s.Problem.EdgeAlphabet() != nil
	for v, out := range outputs {
		if _, isErr := out.(error); isErr {
			decodeFailed[v] = true
			continue
		}
		no := out.(nodeOutput)
		if useNodes {
			sol.Node[v] = no.nodeLabel
		}
		if useEdges {
			for nid, label := range no.edgeLabels {
				w := g.NodeByID(nid)
				if w == -1 {
					decodeFailed[v] = true
					continue
				}
				e := g.EdgeIndex(v, w)
				if sol.Edge[e] != lcl.Unset && sol.Edge[e] != label {
					// Endpoints disagree: both reject.
					decodeFailed[v] = true
					decodeFailed[w] = true
					continue
				}
				sol.Edge[e] = label
			}
		}
	}

	reject := map[int]bool{}
	for v := 0; v < g.N(); v++ {
		// A node rejects if anything in its ball failed to decode, or if
		// its own constraint is violated by the decoded labels.
		ballFailed := false
		for _, u := range g.Ball(v, rbar) {
			if decodeFailed[u] {
				ballFailed = true
				break
			}
		}
		if ballFailed || !ballLabeled(s.Problem, g, v, sol) || s.Problem.CheckNode(g, v, sol) != nil {
			reject[v] = true
		}
	}
	res := ProofResult{Accepted: len(reject) == 0, Rounds: rounds}
	for v := range reject {
		res.Rejectors = append(res.Rejectors, v)
	}
	sort.Ints(res.Rejectors)
	return res, nil
}

// ballLabeled reports whether every label in v's radius-r̄ ball is set.
func ballLabeled(p lcl.Problem, g *graph.Graph, v int, sol *lcl.Solution) bool {
	for _, u := range g.Ball(v, p.Radius()) {
		if p.NodeAlphabet() != nil && sol.Node[u] == lcl.Unset {
			return false
		}
		if p.EdgeAlphabet() != nil {
			for _, e := range g.IncidentEdges(u) {
				if sol.Edge[e] == lcl.Unset {
					return false
				}
			}
		}
	}
	return true
}

// Prove produces the 1-bit proof that Π is solvable on g — it is exactly
// the Theorem 4.1 advice.
func (s Schema) Prove(g *graph.Graph) (local.Advice, error) { return s.Encode(g) }
