package growth

import (
	"math/rand"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

func TestProofCompleteness(t *testing.T) {
	// Honest prover on a solvable instance: every node accepts.
	g := graph.Cycle(500)
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 40, Solver: colorSolver}
	proof, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.VerifyProof(g, proof)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Accepted {
		t.Fatalf("honest proof rejected by nodes %v", res.Rejectors)
	}
	if res.Rounds <= s.DecodeRadius() {
		t.Errorf("verifier rounds %d should exceed the decode radius", res.Rounds)
	}
}

func TestProofSoundnessOnUnsolvable(t *testing.T) {
	// 2-coloring an odd cycle is unsolvable: NO advice may convince
	// everyone. Try a batch of random proofs; every one must be rejected
	// by someone.
	g := graph.Cycle(251)
	s := Schema{Problem: lcl.Coloring{K: 2}, ClusterRadius: 20}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 12; trial++ {
		advice := make(local.Advice, g.N())
		for v := range advice {
			advice[v] = bitstr.New(rng.Intn(2))
		}
		res, err := s.VerifyProof(g, advice)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			t.Fatalf("trial %d: unsolvable instance accepted", trial)
		}
	}
	// Also: the honest prover itself must refuse to produce a proof.
	if _, err := s.Prove(g); err == nil {
		t.Error("prover produced a proof for an unsolvable instance")
	}
}

func TestProofRejectsTampering(t *testing.T) {
	// Flipping bits of an honest proof either leaves it a valid proof of
	// solvability (fine — the statement is still true) or makes some node
	// reject; it must never crash and must never certify an invalid
	// solution silently. We check the stronger property directly: if all
	// nodes accept, the decoded solution is valid.
	g := graph.Cycle(400)
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 40, Solver: colorSolver}
	proof, err := s.Prove(g)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	for trial := 0; trial < 10; trial++ {
		tampered := make(local.Advice, g.N())
		copy(tampered, proof)
		for flips := 0; flips < 1+rng.Intn(4); flips++ {
			v := rng.Intn(g.N())
			tampered[v] = bitstr.New(1 - tampered[v].Bit(0))
		}
		res, err := s.VerifyProof(g, tampered)
		if err != nil {
			t.Fatal(err)
		}
		if res.Accepted {
			// Acceptance must imply a decodable valid solution.
			sol, _, err := s.Decode(g, tampered)
			if err != nil {
				t.Fatalf("trial %d: accepted but undecodable: %v", trial, err)
			}
			if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
				t.Fatalf("trial %d: accepted an invalid solution: %v", trial, err)
			}
		}
	}
}

func TestProofInputValidation(t *testing.T) {
	g := graph.Cycle(20)
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 10, Solver: colorSolver}
	if _, err := s.VerifyProof(g, make(local.Advice, 3)); err == nil {
		t.Error("wrong-length advice accepted")
	}
	bad := make(local.Advice, g.N())
	if _, err := s.VerifyProof(g, bad); err == nil {
		t.Error("zero-bit advice accepted")
	}
}
