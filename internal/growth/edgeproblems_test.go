package growth

import (
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/orient"
)

// The Section 4 schema is generic over LCLs, including ones with EDGE
// labels; these tests cross-validate it against the dedicated Section 5
// machinery on the problems both can solve.

func TestSchemaBalancedOrientationOnCycle(t *testing.T) {
	g := graph.Cycle(400)
	s := Schema{
		Problem:       lcl.BalancedOrientation{},
		ClusterRadius: 40,
		Solver: func(g *graph.Graph) (*lcl.Solution, error) {
			return orient.Balanced(g), nil
		},
	}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, stats, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != s.DecodeRadius() {
		t.Errorf("rounds = %d, want %d", stats.Rounds, s.DecodeRadius())
	}
}

func TestSchemaSinklessOrientationOnCyclePower(t *testing.T) {
	// Sinkless orientation is a classic LCL with edge labels; on a cycle
	// every node has degree 2, so the constraint is vacuous, but the full
	// encode/decode pipeline (strip serialization of edge labels, budgeted
	// completion) still runs end to end.
	g := graph.Cycle(500)
	s := Schema{
		Problem:       lcl.SinklessOrientation{},
		ClusterRadius: 45,
		Solver: func(g *graph.Graph) (*lcl.Solution, error) {
			// Degree < 3 nodes are unconstrained, so the balanced
			// orientation is a valid solution to serialize.
			return orient.Balanced(g), nil
		},
	}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.SinklessOrientation{}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaWeakColoringGeneric(t *testing.T) {
	// Weak 2-coloring with the generic brute-force prover (no Solver hook).
	g := graph.Cycle(300)
	s := Schema{Problem: lcl.WeakColoring{K: 2}, ClusterRadius: 30}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.WeakColoring{K: 2}, g, sol); err != nil {
		t.Fatal(err)
	}
}
