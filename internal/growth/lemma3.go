package growth

import (
	"fmt"

	"localadvice/internal/graph"
)

// This file implements Lemma 4.3 of the paper verbatim: in a family of
// sub-exponential growth there is, around every node v, a radius
// α ∈ {x, ..., 2x} whose ball dominates its own boundary shell by a Δ^r
// factor:
//
//	|N_{<=α}(v)|  >=  Δ^r · |N_{=α+r}(v)|.
//
// This is exactly the capacity inequality that lets a cluster's interior
// store the solution of its boundary. FindAlpha searches for the α; on
// bounded-growth families it exists at moderate x, while on expanders and
// trees it keeps failing as x grows — the quantitative heart of the
// Theorem 4.1 / Section 8 dichotomy, measurable per graph.

// FindAlpha returns the smallest α in {x, ..., 2x} satisfying the Lemma 4.3
// inequality for node v and shell offset r, or an error if none exists.
func FindAlpha(g *graph.Graph, v, r, x int) (int, error) {
	if r < 1 || x < 1 {
		return 0, fmt.Errorf("growth: FindAlpha needs r, x >= 1, got r=%d x=%d", r, x)
	}
	dist := g.BFSFrom(v)
	delta := g.MaxDegree()
	factor := 1
	for i := 0; i < r; i++ {
		factor *= delta
	}
	// Shell and ball sizes by radius.
	maxR := 2*x + r
	ball := make([]int, maxR+1)
	shell := make([]int, maxR+1)
	for _, d := range dist {
		if d >= 0 && d <= maxR {
			shell[d]++
		}
	}
	cum := 0
	for d := 0; d <= maxR; d++ {
		cum += shell[d]
		ball[d] = cum
	}
	for alpha := x; alpha <= 2*x; alpha++ {
		if ball[alpha] >= factor*shell[alpha+r] {
			return alpha, nil
		}
	}
	return 0, fmt.Errorf("growth: no α in {%d..%d} with |N_<=α| >= Δ^%d·|N_=α+%d| at node %d — growth too fast at this scale", x, 2*x, r, r, v)
}

// AlphaProfile reports, for every node, whether Lemma 4.3's α exists at the
// given (r, x), and the fraction of nodes where it does — the family-level
// growth diagnostic used by the E1 discussion.
func AlphaProfile(g *graph.Graph, r, x int) (fractionOK float64, firstFailure int) {
	ok := 0
	firstFailure = -1
	for v := 0; v < g.N(); v++ {
		if _, err := FindAlpha(g, v, r, x); err == nil {
			ok++
		} else if firstFailure == -1 {
			firstFailure = v
		}
	}
	if g.N() == 0 {
		return 1, -1
	}
	return float64(ok) / float64(g.N()), firstFailure
}
