package growth

import (
	"strings"
	"testing"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// colorSolver is a fast prover solver for coloring problems with K >= Δ+1.
func colorSolver(g *graph.Graph) (*lcl.Solution, error) {
	return lcl.ColoringSolution(g, lcl.GreedyColoring(g))
}

func TestSchemaOnCycleColoring(t *testing.T) {
	g := graph.Cycle(600)
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 60, Solver: colorSolver}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if kind, beta := core.Classify(advice); kind != core.UniformFixedLength || beta != 1 {
		t.Errorf("advice %v/%d, want uniform 1-bit", kind, beta)
	}
	sol, stats, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds != s.DecodeRadius() {
		t.Errorf("rounds = %d, want %d", stats.Rounds, s.DecodeRadius())
	}
}

func TestSchemaRoundsIndependentOfN(t *testing.T) {
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 60, Solver: colorSolver}
	var rounds []int
	for _, n := range []int{500, 800} {
		g := graph.Cycle(n)
		advice, err := s.Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		_, stats, err := s.Decode(g, advice)
		if err != nil {
			t.Fatal(err)
		}
		rounds = append(rounds, stats.Rounds)
	}
	if rounds[0] != rounds[1] {
		t.Errorf("rounds depend on n: %v", rounds)
	}
}

func TestSchemaOnPath(t *testing.T) {
	g := graph.Path(500)
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 60, Solver: colorSolver}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaMISOnCycle(t *testing.T) {
	g := graph.Cycle(500)
	s := Schema{Problem: lcl.MIS{}, ClusterRadius: 40}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.MIS{}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaMaximalMatchingOnCycle(t *testing.T) {
	g := graph.Cycle(400)
	s := Schema{Problem: lcl.MaximalMatching{}, ClusterRadius: 40}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.MaximalMatching{}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaOnLadder(t *testing.T) {
	g := graph.Ladder(250)
	s := Schema{Problem: lcl.Coloring{K: 4}, ClusterRadius: 60, Solver: colorSolver}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 4}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaSmallComponentsSolo(t *testing.T) {
	// Isolated nodes decode alone; a mix with a big cycle must still work.
	g := graph.DisjointUnion(graph.Cycle(400), graph.New(3))
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 40, Solver: colorSolver}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		t.Fatal(err)
	}
}

func TestCapacityFailureOnExponentialGrowth(t *testing.T) {
	// A complete binary tree has exponential growth: the boundary strip of
	// a cluster outgrows its interior, and the encoder must refuse — the
	// Theorem 4.1 precondition at work.
	g := graph.CompleteBinaryTree(10)
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 8, Solver: colorSolver}
	_, err := s.Encode(g)
	if err == nil {
		t.Fatal("encoder accepted an exponential-growth family")
	}
	if !strings.Contains(err.Error(), "capacity") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestSparsityImprovesWithRadius(t *testing.T) {
	g := graph.Cycle(900)
	var ratios []float64
	for _, r := range []int{40, 80} {
		s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: r, Solver: colorSolver}
		advice, err := s.Encode(g)
		if err != nil {
			t.Fatal(err)
		}
		ratio, err := core.Sparsity(advice)
		if err != nil {
			t.Fatal(err)
		}
		ratios = append(ratios, ratio)
	}
	if ratios[1] >= ratios[0] {
		t.Errorf("sparsity did not improve with radius: %v", ratios)
	}
}

func TestValidate(t *testing.T) {
	if _, err := (Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 2}).Encode(graph.Cycle(10)); err == nil {
		t.Error("tiny radius accepted")
	}
	if _, err := (Schema{ClusterRadius: 10}).Encode(graph.Cycle(10)); err == nil {
		t.Error("nil problem accepted")
	}
}

func TestDecodeRejectsMalformedAdvice(t *testing.T) {
	g := graph.Cycle(100)
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 20, Solver: colorSolver}
	bad := make(local.Advice, g.N())
	if _, _, err := s.Decode(g, bad); err == nil {
		t.Error("empty per-node advice accepted")
	}
}

func TestDefinitionThreeEpsilonSparse(t *testing.T) {
	// Definition 3 operationally: for any ε, a knob value exists whose
	// advice has ones ratio <= ε — here via the cluster radius.
	g := graph.Cycle(1200)
	build := func(knob int) (local.Advice, error) {
		s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: knob, Solver: colorSolver}
		return s.Encode(g)
	}
	res, err := core.TuneSparsity(build, 0.05, 40, 640)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ratio > 0.05 {
		t.Errorf("ratio %v above eps", res.Ratio)
	}
	// The tuned advice still decodes to a valid solution.
	s := Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: res.Knob, Solver: colorSolver}
	sol, _, err := s.Decode(g, res.Advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, sol); err != nil {
		t.Fatal(err)
	}
}
