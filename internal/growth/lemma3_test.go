package growth

import (
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func TestFindAlphaOnBoundedGrowth(t *testing.T) {
	// On cycles the shell size is constant (2), so the ball dominates the
	// shell once x >= Δ^r: α exists for modest parameters.
	g := graph.Cycle(400)
	alpha, err := FindAlpha(g, 0, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if alpha < 10 || alpha > 20 {
		t.Errorf("α = %d outside {x..2x}", alpha)
	}
	// Grids: shell ~ 4d, ball ~ 2d²; needs a larger x for Δ^r = 16.
	grid := graph.Grid2D(60, 60)
	if _, err := FindAlpha(grid, 30*60+30, 2, 25); err != nil {
		t.Errorf("grid: %v", err)
	}
}

func TestFindAlphaFailsOnExponentialGrowth(t *testing.T) {
	// On a complete binary tree the shell grows like 2^d: no α can make
	// the ball beat Δ^r times the shell at these scales.
	tree := graph.CompleteBinaryTree(12)
	if _, err := FindAlpha(tree, 0, 2, 4); err == nil {
		t.Error("Lemma 4.3 α found on an exponential-growth tree")
	}
	frac, firstFail := AlphaProfile(tree, 2, 3)
	if frac > 0.5 {
		t.Errorf("α exists at %.2f of tree nodes, expected mostly failures", frac)
	}
	if firstFail == -1 {
		t.Error("no failing node reported")
	}
}

func TestAlphaProfileAllOKOnCycle(t *testing.T) {
	g := graph.Cycle(200)
	frac, firstFail := AlphaProfile(g, 1, 4)
	if frac != 1 {
		t.Errorf("fraction = %v, want 1 (first failure at %d)", frac, firstFail)
	}
}

func TestFindAlphaArgErrors(t *testing.T) {
	g := graph.Cycle(10)
	if _, err := FindAlpha(g, 0, 0, 5); err == nil {
		t.Error("r=0 accepted")
	}
	if _, err := FindAlpha(g, 0, 2, 0); err == nil {
		t.Error("x=0 accepted")
	}
}

func TestSchemaRulingSetRadiusTwo(t *testing.T) {
	// A checkability radius of 2 exercises the thick-strip path of the
	// schema: the boundary strip is Ball(boundary, 2) and verification
	// balls have radius 2.
	g := graph.Cycle(500)
	s := Schema{Problem: lcl.RulingSet{Beta: 2}, ClusterRadius: 50}
	advice, err := s.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	sol, stats, err := s.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.RulingSet{Beta: 2}, g, sol); err != nil {
		t.Fatal(err)
	}
	if want := 3*50 + 2 + 4; stats.Rounds != want {
		t.Errorf("rounds = %d, want %d (radius folds in r̄ = 2)", stats.Rounds, want)
	}
}
