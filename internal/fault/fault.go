// Package fault implements deterministic fault injection for the LOCAL
// simulator and the typed errors of the robustness layer.
//
// The paper's advice schemas (Definition 2) only promise a valid output when
// the prover's advice arrives intact and every node participates for the
// whole execution. This package makes violations of those preconditions
// first-class, injectable, observable events: a Plan describes a
// deterministic fault-injection experiment (advice bit flips, advice
// truncation, a node crash at a chosen round, adversarial ID reassignment),
// the engines consume it through local.RunConfig, and experiment E9 measures
// that every verified-decode schema either produces a valid solution or
// reports corruption — never a silently wrong output.
//
// Determinism: a Plan is pure data plus a seed. Applying the same Plan to
// the same inputs always injects the same faults, so every fault experiment
// is exactly reproducible, independent of engine and worker count.
package fault

import (
	"errors"
	"fmt"
	"math/rand"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// Sentinel errors of the robustness layer. Callers match them with
// errors.Is; concrete errors wrap them with context.
var (
	// ErrDetectedCorruption tags every error raised because a decoder or
	// verifier detected that its input violated the model's preconditions
	// (corrupted advice, inconsistent claims, an invalid decoded solution).
	ErrDetectedCorruption = errors.New("fault: detected corruption")

	// ErrCrashed tags the per-node output of a node crashed by a Plan.
	ErrCrashed = errors.New("fault: node crashed")
)

// CrashError is the output value a crashed node leaves behind: the engines
// record it in the node's output slot so callers can tell "this node died at
// round R" apart from a decoding failure. It unwraps to ErrCrashed.
type CrashError struct {
	Node  int // node index
	Round int // first round the node did not participate in
}

func (e CrashError) Error() string {
	return fmt.Sprintf("fault: node %d crashed at round %d", e.Node, e.Round)
}

// Unwrap lets errors.Is(err, ErrCrashed) match.
func (CrashError) Unwrap() error { return ErrCrashed }

// Plan describes one deterministic fault-injection experiment. The zero
// value (and a nil *Plan) injects nothing; engines treat it as fault-free.
type Plan struct {
	// Seed drives every random choice of the plan. Equal seeds mean equal
	// injected faults on equal inputs.
	Seed int64

	// FlipRate is the per-advice-bit flip probability in [0, 1]: each bit of
	// each node's advice string is independently inverted with this rate.
	FlipRate float64

	// TruncateRate is the per-node truncation probability in [0, 1]: each
	// node with non-empty advice independently loses a random suffix of its
	// advice string (possibly all of it) with this rate — the "advice
	// arrived incomplete" fault.
	TruncateRate float64

	// CrashNode / CrashRound crash one node: from round CrashRound on, node
	// CrashNode stops participating (it sends nothing and never produces an
	// output; its output slot holds a CrashError). CrashRound <= 0 disables
	// the crash. In the ball engine, which has no explicit rounds, the node
	// crashes iff CrashRound <= the decoding radius.
	CrashNode  int
	CrashRound int

	// ReassignIDs adversarially permutes the node identifiers (IDs remain
	// unique, so the graph stays a legal LOCAL input, but every ID-derived
	// rule the prover relied on is now wrong).
	ReassignIDs bool
}

// Active reports whether the plan injects any fault at all. It is safe to
// call on a nil plan.
func (p *Plan) Active() bool {
	return p != nil && (p.FlipRate > 0 || p.TruncateRate > 0 || p.CrashRound > 0 || p.ReassignIDs)
}

// Crashes reports whether node is crashed (non-participating) at the given
// 1-based round under the plan. Safe on a nil plan.
func (p *Plan) Crashes(node, round int) bool {
	return p != nil && p.CrashRound > 0 && node == p.CrashNode && round >= p.CrashRound
}

// Report summarizes the faults a Plan actually injected into one execution,
// so experiments can correlate observed behavior with injected damage.
type Report struct {
	FlippedBits    int  // advice bits inverted
	TruncatedNodes int  // nodes whose advice lost a suffix
	ReassignedIDs  bool // whether the ID permutation was applied
}

func (r Report) String() string {
	return fmt.Sprintf("fault: flipped %d bits, truncated %d nodes, reassigned IDs: %v",
		r.FlippedBits, r.TruncatedNodes, r.ReassignedIDs)
}

// Events renders the report as metrics events for the observability layer
// (only non-zero damage is emitted; a harmless Apply produces no events).
// The engines forward these into the run's obs collector so fault-injection
// traces carry exactly what was injected.
func (r Report) Events() []obs.Event {
	var out []obs.Event
	if r.FlippedBits > 0 {
		out = append(out, obs.Event{Kind: "fault.flipped_bits", Value: int64(r.FlippedBits)})
	}
	if r.TruncatedNodes > 0 {
		out = append(out, obs.Event{Kind: "fault.truncated_nodes", Value: int64(r.TruncatedNodes)})
	}
	if r.ReassignedIDs {
		out = append(out, obs.Event{Kind: "fault.reassigned_ids", Value: 1})
	}
	return out
}

// Apply injects the plan's structural faults into a run's inputs and returns
// the graph and advice the engine should execute with, plus a report of the
// injected damage. The inputs are never mutated: corrupted advice is a fresh
// slice and ID reassignment clones the graph. When the plan is inactive the
// inputs are returned unchanged (same pointers). Crash faults are not
// handled here — they are a runtime behavior the engines enforce via
// Crashes/CrashedWithin.
func (p *Plan) Apply(g *graph.Graph, advice []bitstr.String) (*graph.Graph, []bitstr.String, Report) {
	var rep Report
	if !p.Active() {
		return g, advice, rep
	}
	rng := rand.New(rand.NewSource(p.Seed))
	if (p.FlipRate > 0 || p.TruncateRate > 0) && advice != nil {
		advice = corruptAdvice(rng, p.FlipRate, p.TruncateRate, advice, &rep)
	}
	if p.ReassignIDs {
		g = reassignIDs(g, rng)
		rep.ReassignedIDs = true
	}
	return g, advice, rep
}

// corruptAdvice returns a copy of advice with per-bit flips and per-node
// suffix truncations applied. Nodes are visited in index order and bits in
// position order, so the corruption depends only on the RNG stream.
func corruptAdvice(rng *rand.Rand, flipRate, truncateRate float64, advice []bitstr.String, rep *Report) []bitstr.String {
	out := make([]bitstr.String, len(advice))
	for v, s := range advice {
		bits := s.Bits()
		if flipRate > 0 {
			for i := range bits {
				if rng.Float64() < flipRate {
					bits[i] = 1 - bits[i]
					rep.FlippedBits++
				}
			}
		}
		if truncateRate > 0 && len(bits) > 0 && rng.Float64() < truncateRate {
			bits = bits[:rng.Intn(len(bits))]
			rep.TruncatedNodes++
		}
		out[v] = bitstr.New(bits...)
	}
	return out
}

// reassignIDs returns a clone of g whose node identifiers are a uniformly
// random permutation of the original identifier set. IDs stay unique and
// positive, so the result is a legal LOCAL input — but any rule the prover
// derived from the original IDs is now wrong.
func reassignIDs(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.N()
	ids := make([]int64, n)
	for v := 0; v < n; v++ {
		ids[v] = g.ID(v)
	}
	rng.Shuffle(n, func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	h := g.Clone()
	if err := h.SetIDs(ids); err != nil {
		// A permutation of unique IDs cannot collide; this is unreachable
		// unless the input graph was already broken.
		panic(fmt.Sprintf("fault: reassigned IDs rejected: %v", err))
	}
	return h
}
