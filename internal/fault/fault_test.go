package fault

import (
	"errors"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

func TestPlanActive(t *testing.T) {
	cases := []struct {
		plan *Plan
		want bool
	}{
		{nil, false},
		{&Plan{}, false},
		{&Plan{Seed: 9}, false},
		{&Plan{FlipRate: 0.1}, true},
		{&Plan{TruncateRate: 0.1}, true},
		{&Plan{ReassignIDs: true}, true},
		{&Plan{CrashRound: 1}, true},
		{&Plan{CrashNode: 3}, false}, // a crash needs a positive round
	}
	for _, c := range cases {
		if got := c.plan.Active(); got != c.want {
			t.Errorf("Active(%+v) = %v, want %v", c.plan, got, c.want)
		}
	}
}

func TestCrashes(t *testing.T) {
	plan := &Plan{CrashNode: 4, CrashRound: 3}
	cases := []struct {
		node, round int
		want        bool
	}{
		{4, 3, true},
		{4, 7, true},  // crashed nodes stay crashed
		{4, 2, false}, // not yet
		{5, 3, false}, // wrong node
	}
	for _, c := range cases {
		if got := plan.Crashes(c.node, c.round); got != c.want {
			t.Errorf("Crashes(%d, %d) = %v, want %v", c.node, c.round, got, c.want)
		}
	}
	var nilPlan *Plan
	if nilPlan.Crashes(0, 0) {
		t.Error("nil plan crashes")
	}
	if (&Plan{CrashNode: 4}).Crashes(4, 5) {
		t.Error("zero CrashRound must mean no crash (round 0 is reserved for 'disabled')")
	}
}

func TestCrashErrorUnwrap(t *testing.T) {
	err := CrashError{Node: 2, Round: 5}
	if !errors.Is(err, ErrCrashed) {
		t.Fatal("CrashError does not unwrap to ErrCrashed")
	}
	if err.Error() == "" {
		t.Fatal("empty error message")
	}
}

func TestTruncationOnlyShortens(t *testing.T) {
	g := graph.Cycle(50)
	advice := make([]bitstr.String, g.N())
	for v := range advice {
		advice[v] = bitstr.New(1, 1, 1, 1)
	}
	plan := &Plan{Seed: 3, TruncateRate: 0.5}
	_, fadv, rep := plan.Apply(g, advice)
	if rep.TruncatedNodes == 0 {
		t.Fatal("truncation rate 0.5 truncated nothing")
	}
	truncated := 0
	for v := range fadv {
		if fadv[v].Len() > 4 {
			t.Fatalf("truncation lengthened node %d's advice to %d bits", v, fadv[v].Len())
		}
		if fadv[v].Len() < 4 {
			truncated++
		}
	}
	if truncated != rep.TruncatedNodes {
		t.Fatalf("report says %d truncated nodes, observed %d", rep.TruncatedNodes, truncated)
	}
}

func TestReassignPreservesIDMultiset(t *testing.T) {
	g := graph.Cycle(30)
	plan := &Plan{Seed: 11, ReassignIDs: true}
	fg, _, rep := plan.Apply(g, nil)
	if !rep.ReassignedIDs {
		t.Fatal("report does not record the reassignment")
	}
	if fg == g {
		t.Fatal("reassignment did not clone the graph")
	}
	seen := map[int64]bool{}
	for v := 0; v < fg.N(); v++ {
		seen[fg.ID(v)] = true
	}
	for v := 0; v < g.N(); v++ {
		if !seen[g.ID(v)] {
			t.Fatalf("ID %d vanished in reassignment", g.ID(v))
		}
	}
}
