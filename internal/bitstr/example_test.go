package bitstr_test

import (
	"fmt"

	"localadvice/internal/bitstr"
)

// The self-delimiting marker code of Section 4: a header no payload can
// imitate, block-coded bits, and a terminator.
func ExampleMarkerEncode() {
	payload := bitstr.MustParse("101")
	encoded := bitstr.MarkerEncode(payload)
	fmt.Println("encoded:", encoded)

	decoded, consumed, err := bitstr.MarkerDecode(encoded)
	if err != nil {
		panic(err)
	}
	fmt.Println("decoded:", decoded, "consumed:", consumed)
	// Output:
	// encoded: 11110110111011011100
	// decoded: 101 consumed: 20
}

func ExampleFromUint() {
	s := bitstr.FromUint(13, 6)
	fmt.Println(s, "=", s.Uint())
	// Output:
	// 001101 = 13
}
