// Package bitstr implements variable-length bit strings and the
// self-delimiting marker code used throughout the advice schemas of
// "Local Advice and Local Decompression" (PODC 2024).
//
// The paper's Section 4 encodes a bit string B as B” = header · blocks · 0,
// where the header is the fixed pattern 11110110, each 0-bit of B becomes the
// block 110, each 1-bit becomes the block 1110, and a final 0 terminates the
// payload. The resulting string is self-delimiting: a decoder scanning a path
// of single-bit labels can recover both the start (the unique header) and the
// content of B without any out-of-band length information. The same code is
// reused by the schemas of Sections 5-7 and by the generic variable-length to
// one-bit conversion (Lemma 2).
package bitstr

import (
	"fmt"
	"strings"
)

// String is a variable-length sequence of bits. The zero value is the empty
// string, ready to use. Bits are stored one per byte (0 or 1) for simplicity
// and direct indexability; advice strings in this codebase are short, so
// packing is not worth the complexity.
type String struct {
	bits []byte
}

// New returns a bit string holding the given bits. Each argument must be 0
// or 1.
func New(bits ...int) String {
	s := String{bits: make([]byte, len(bits))}
	for i, b := range bits {
		if b != 0 && b != 1 {
			panic(fmt.Sprintf("bitstr: bit %d is %d, want 0 or 1", i, b))
		}
		s.bits[i] = byte(b)
	}
	return s
}

// Parse builds a bit string from a textual form such as "110101".
// Characters other than '0' and '1' yield an error.
func Parse(text string) (String, error) {
	s := String{bits: make([]byte, 0, len(text))}
	for i, r := range text {
		switch r {
		case '0':
			s.bits = append(s.bits, 0)
		case '1':
			s.bits = append(s.bits, 1)
		default:
			return String{}, fmt.Errorf("bitstr: invalid character %q at offset %d", r, i)
		}
	}
	return s, nil
}

// MustParse is Parse that panics on error; intended for constants in tests.
func MustParse(text string) String {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}

// FromUint encodes v as exactly width bits, most significant first.
// It panics if v does not fit in width bits.
func FromUint(v uint64, width int) String {
	if width < 0 || width < 64 && v>>uint(width) != 0 {
		panic(fmt.Sprintf("bitstr: value %d does not fit in %d bits", v, width))
	}
	s := String{bits: make([]byte, width)}
	for i := 0; i < width; i++ {
		s.bits[i] = byte(v >> uint(width-1-i) & 1)
	}
	return s
}

// Len returns the number of bits.
func (s String) Len() int { return len(s.bits) }

// IsEmpty reports whether the string holds no bits.
func (s String) IsEmpty() bool { return len(s.bits) == 0 }

// Bit returns the i-th bit (0 or 1).
func (s String) Bit(i int) int { return int(s.bits[i]) }

// Append returns a new string with the given bits appended.
func (s String) Append(bits ...int) String {
	out := String{bits: make([]byte, len(s.bits), len(s.bits)+len(bits))}
	copy(out.bits, s.bits)
	for _, b := range bits {
		if b != 0 && b != 1 {
			panic(fmt.Sprintf("bitstr: appended bit is %d, want 0 or 1", b))
		}
		out.bits = append(out.bits, byte(b))
	}
	return out
}

// Concat returns the concatenation s · t.
func (s String) Concat(t String) String {
	out := String{bits: make([]byte, 0, len(s.bits)+len(t.bits))}
	out.bits = append(out.bits, s.bits...)
	out.bits = append(out.bits, t.bits...)
	return out
}

// Slice returns the substring [from, to).
func (s String) Slice(from, to int) String {
	out := String{bits: make([]byte, to-from)}
	copy(out.bits, s.bits[from:to])
	return out
}

// Uint decodes the whole string as a big-endian unsigned integer.
// It panics if the string is longer than 64 bits.
func (s String) Uint() uint64 {
	if len(s.bits) > 64 {
		panic(fmt.Sprintf("bitstr: string of %d bits does not fit in uint64", len(s.bits)))
	}
	var v uint64
	for _, b := range s.bits {
		v = v<<1 | uint64(b)
	}
	return v
}

// String renders the bits as text, e.g. "11010".
func (s String) String() string {
	var b strings.Builder
	b.Grow(len(s.bits))
	for _, bit := range s.bits {
		b.WriteByte('0' + bit)
	}
	return b.String()
}

// Equal reports whether s and t hold the same bits.
func (s String) Equal(t String) bool {
	if len(s.bits) != len(t.bits) {
		return false
	}
	for i, b := range s.bits {
		if t.bits[i] != b {
			return false
		}
	}
	return true
}

// Ones returns the number of 1-bits.
func (s String) Ones() int {
	n := 0
	for _, b := range s.bits {
		n += int(b)
	}
	return n
}

// Bits returns a copy of the underlying bits as ints.
func (s String) Bits() []int {
	out := make([]int, len(s.bits))
	for i, b := range s.bits {
		out[i] = int(b)
	}
	return out
}
