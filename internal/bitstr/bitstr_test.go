package bitstr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewAndString(t *testing.T) {
	tests := []struct {
		name string
		bits []int
		want string
	}{
		{"empty", nil, ""},
		{"single zero", []int{0}, "0"},
		{"single one", []int{1}, "1"},
		{"mixed", []int{1, 0, 1, 1, 0}, "10110"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := New(tt.bits...).String(); got != tt.want {
				t.Errorf("New(%v).String() = %q, want %q", tt.bits, got, tt.want)
			}
		})
	}
}

func TestNewPanicsOnBadBit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2) did not panic")
		}
	}()
	New(2)
}

func TestParse(t *testing.T) {
	s, err := Parse("1101")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if s.Len() != 4 || s.Bit(0) != 1 || s.Bit(2) != 0 {
		t.Errorf("Parse(1101) = %v", s)
	}
	if _, err := Parse("10x1"); err == nil {
		t.Error("Parse(10x1) succeeded, want error")
	}
}

func TestFromUintRoundtrip(t *testing.T) {
	tests := []struct {
		v     uint64
		width int
		want  string
	}{
		{0, 0, ""},
		{0, 3, "000"},
		{5, 3, "101"},
		{6, 4, "0110"},
		{255, 8, "11111111"},
	}
	for _, tt := range tests {
		s := FromUint(tt.v, tt.width)
		if s.String() != tt.want {
			t.Errorf("FromUint(%d,%d) = %q, want %q", tt.v, tt.width, s, tt.want)
		}
		if got := s.Uint(); got != tt.v {
			t.Errorf("FromUint(%d,%d).Uint() = %d", tt.v, tt.width, got)
		}
	}
}

func TestFromUintPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromUint(8, 3) did not panic")
		}
	}()
	FromUint(8, 3)
}

func TestAppendDoesNotAliasOriginal(t *testing.T) {
	s := New(1, 0)
	u := s.Append(1)
	v := s.Append(0)
	if u.String() != "101" || v.String() != "100" {
		t.Errorf("aliasing: u=%v v=%v", u, v)
	}
	if s.String() != "10" {
		t.Errorf("original mutated: %v", s)
	}
}

func TestConcatSlice(t *testing.T) {
	s := MustParse("110").Concat(MustParse("01"))
	if s.String() != "11001" {
		t.Fatalf("Concat = %v", s)
	}
	if got := s.Slice(1, 4).String(); got != "100" {
		t.Errorf("Slice(1,4) = %q", got)
	}
}

func TestOnes(t *testing.T) {
	if got := MustParse("101101").Ones(); got != 4 {
		t.Errorf("Ones = %d, want 4", got)
	}
	if got := New().Ones(); got != 0 {
		t.Errorf("empty Ones = %d", got)
	}
}

func TestEqual(t *testing.T) {
	if !MustParse("101").Equal(New(1, 0, 1)) {
		t.Error("equal strings reported unequal")
	}
	if MustParse("101").Equal(MustParse("1010")) {
		t.Error("different lengths reported equal")
	}
	if MustParse("101").Equal(MustParse("100")) {
		t.Error("different bits reported equal")
	}
}

func TestBitsCopy(t *testing.T) {
	s := MustParse("10")
	b := s.Bits()
	b[0] = 0
	if s.Bit(0) != 1 {
		t.Error("Bits() exposed internal storage")
	}
}

func TestMarkerEncodeKnown(t *testing.T) {
	// Payload "01" => header + 110 + 1110 + 0.
	got := MarkerEncode(MustParse("01")).String()
	want := "11110110" + "110" + "1110" + "0"
	if got != want {
		t.Errorf("MarkerEncode(01) = %q, want %q", got, want)
	}
}

func TestMarkerEncodeEmpty(t *testing.T) {
	enc := MarkerEncode(String{})
	payload, consumed, err := MarkerDecode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if payload.Len() != 0 || consumed != enc.Len() {
		t.Errorf("empty roundtrip: payload=%v consumed=%d", payload, consumed)
	}
}

func TestMarkerDecodeWithPadding(t *testing.T) {
	enc := MarkerEncode(MustParse("101")).Append(0, 0, 0, 0)
	payload, consumed, err := MarkerDecode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if payload.String() != "101" {
		t.Errorf("payload = %v, want 101", payload)
	}
	if consumed != enc.Len()-4 {
		t.Errorf("consumed = %d, want %d", consumed, enc.Len()-4)
	}
}

func TestMarkerDecodeErrors(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"too short", "111"},
		{"bad header", "011101100"},
		{"truncated payload", "11110110"},
		{"run of one", "11110110" + "10" + "0"},
		{"ends inside block", "11110110" + "11"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := MarkerDecode(MustParse(tt.in)); err == nil {
				t.Errorf("MarkerDecode(%q) succeeded, want error", tt.in)
			}
		})
	}
}

func TestMarkerHeaderUniqueInsideStream(t *testing.T) {
	// No run of four 1s may appear after the header: FindHeader must return 0
	// and must not find a second header later in the stream.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(40)
		payload := String{}
		for i := 0; i < n; i++ {
			payload = payload.Append(rng.Intn(2))
		}
		enc := MarkerEncode(payload)
		if idx := FindHeader(enc); idx != 0 {
			t.Fatalf("FindHeader = %d for payload %v", idx, payload)
		}
		if idx := FindHeader(enc.Slice(1, enc.Len())); idx != -1 {
			t.Fatalf("second header found at %d for payload %v", idx+1, payload)
		}
	}
}

func TestMarkerRoundtripProperty(t *testing.T) {
	f := func(raw []bool) bool {
		payload := String{}
		for _, b := range raw {
			bit := 0
			if b {
				bit = 1
			}
			payload = payload.Append(bit)
		}
		enc := MarkerEncode(payload)
		if enc.Len() > MarkerEncodedLen(payload.Len()) {
			return false
		}
		dec, consumed, err := MarkerDecode(enc)
		return err == nil && dec.Equal(payload) && consumed == enc.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUintRoundtripProperty(t *testing.T) {
	f := func(v uint32) bool {
		s := FromUint(uint64(v), 32)
		return s.Uint() == uint64(v) && s.Len() == 32
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
