package bitstr

import "fmt"

// Header is the fixed pattern 11110110 that opens every marker-coded
// payload, exactly as in Section 4 of the paper. The four leading 1s cannot
// occur inside the block code (whose longest run of 1s is three), which is
// what makes a decoded stream unambiguous.
var Header = MustParse("11110110")

// blockZero and blockOne are the per-bit blocks of the marker code:
// a payload 0 becomes 110 and a payload 1 becomes 1110.
var (
	blockZero = MustParse("110")
	blockOne  = MustParse("1110")
)

// MarkerEncode encodes payload with the paper's self-delimiting code:
// Header · (110 | 1110)* · 0. The result starts with a run of four 1s and
// contains no other run of four or more 1s, so a decoder can locate the
// header even inside a longer stream of bits.
func MarkerEncode(payload String) String {
	out := String{bits: make([]byte, 0, Header.Len()+4*payload.Len()+1)}
	out.bits = append(out.bits, Header.bits...)
	for _, b := range payload.bits {
		if b == 0 {
			out.bits = append(out.bits, blockZero.bits...)
		} else {
			out.bits = append(out.bits, blockOne.bits...)
		}
	}
	out.bits = append(out.bits, 0)
	return out
}

// MarkerEncodedLen returns the length of MarkerEncode applied to a payload
// of the given length, without allocating.
func MarkerEncodedLen(payloadLen int) int {
	// Header + worst-case 4 bits per payload bit + terminator; exact length
	// depends on the payload, so callers wanting an exact figure should
	// encode. This returns the worst case, used for capacity planning.
	return Header.Len() + 4*payloadLen + 1
}

// MarkerDecode decodes a string produced by MarkerEncode, possibly followed
// by trailing 0s (padding from unused path nodes). It returns the payload
// and the number of bits of s that were consumed, excluding trailing
// padding.
func MarkerDecode(s String) (payload String, consumed int, err error) {
	h := Header.Len()
	if s.Len() < h+1 {
		return String{}, 0, fmt.Errorf("bitstr: marker stream too short (%d bits)", s.Len())
	}
	if !s.Slice(0, h).Equal(Header) {
		return String{}, 0, fmt.Errorf("bitstr: marker stream %q does not start with header", s)
	}
	i := h
	payload = String{}
	for {
		if i >= s.Len() {
			return String{}, 0, fmt.Errorf("bitstr: marker stream ended inside payload")
		}
		if s.Bit(i) == 0 {
			// Terminator.
			return payload, i + 1, nil
		}
		// Count the run of 1s: 110 => 0-bit, 1110 => 1-bit.
		run := 0
		for i < s.Len() && s.Bit(i) == 1 {
			run++
			i++
		}
		if i >= s.Len() {
			return String{}, 0, fmt.Errorf("bitstr: marker stream ended inside a block")
		}
		i++ // consume the block-closing 0
		switch run {
		case 2:
			payload = payload.Append(0)
		case 3:
			payload = payload.Append(1)
		default:
			return String{}, 0, fmt.Errorf("bitstr: invalid block run of %d ones at bit %d", run, i)
		}
	}
}

// FindHeader returns the index of the first occurrence of Header in s, or -1.
func FindHeader(s String) int {
	h := Header.Len()
	for i := 0; i+h <= s.Len(); i++ {
		if s.Slice(i, i+h).Equal(Header) {
			return i
		}
	}
	return -1
}
