package bitstr

import "testing"

// FuzzMarkerDecode feeds arbitrary bit strings to the marker decoder: it
// must never panic, and whenever it succeeds, re-encoding the payload must
// reproduce the consumed prefix.
func FuzzMarkerDecode(f *testing.F) {
	f.Add("11110110110111000")
	f.Add("1111011000")
	f.Add("")
	f.Add("101010101")
	f.Fuzz(func(t *testing.T, raw string) {
		// Map arbitrary strings onto bits.
		s := String{}
		for _, r := range raw {
			s = s.Append(int(r) & 1)
		}
		payload, consumed, err := MarkerDecode(s)
		if err != nil {
			return
		}
		if consumed > s.Len() {
			t.Fatalf("consumed %d of %d bits", consumed, s.Len())
		}
		re := MarkerEncode(payload)
		if !re.Equal(s.Slice(0, consumed)) {
			t.Fatalf("re-encode mismatch: %v vs %v", re, s.Slice(0, consumed))
		}
	})
}

// FuzzRoundtrip checks encode-then-decode over arbitrary payloads.
func FuzzRoundtrip(f *testing.F) {
	f.Add("0110")
	f.Add("")
	f.Fuzz(func(t *testing.T, raw string) {
		payload := String{}
		for _, r := range raw {
			payload = payload.Append(int(r) & 1)
		}
		enc := MarkerEncode(payload)
		dec, consumed, err := MarkerDecode(enc)
		if err != nil {
			t.Fatalf("decode of valid encoding failed: %v", err)
		}
		if consumed != enc.Len() || !dec.Equal(payload) {
			t.Fatal("roundtrip mismatch")
		}
	})
}
