package viz

import (
	"strings"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/orient"
)

func TestWriteDOTPlain(t *testing.T) {
	var sb strings.Builder
	if err := WriteDOT(&sb, graph.Cycle(4), Options{}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph G {", "n0 -- n1", "n0 [label=\"1\""} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "->") {
		t.Error("undirected graph rendered with arrows")
	}
}

func TestWriteDOTWithOrientation(t *testing.T) {
	g := graph.Cycle(6)
	sol := orient.Balanced(g)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, Options{Solution: sol}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Errorf("orientation not rendered as arrows:\n%s", out)
	}
}

func TestWriteDOTWithColoring(t *testing.T) {
	g := graph.Path(3)
	sol := lcl.NewSolution(g)
	sol.Node[0], sol.Node[1], sol.Node[2] = 1, 2, 1
	var sb strings.Builder
	if err := WriteDOT(&sb, g, Options{Solution: sol, Name: "C"}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "graph C {") || !strings.Contains(out, "c2") {
		t.Errorf("coloring overlay missing:\n%s", out)
	}
}

func TestWriteDOTWithAdvice(t *testing.T) {
	g := graph.Path(3)
	adv := local.Advice{bitstr.New(1), bitstr.New(0), {}}
	var sb strings.Builder
	if err := WriteDOT(&sb, g, Options{Advice: adv}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "[1]") || !strings.Contains(out, "penwidth=3") {
		t.Errorf("advice overlay missing:\n%s", out)
	}
}

func TestWriteDOTForcedStyles(t *testing.T) {
	g := graph.Cycle(4)
	sol := lcl.NewSolution(g)
	for e := range sol.Edge {
		sol.Edge[e] = 1 + e%2 // splitting-like labels
	}
	var arrows, colors strings.Builder
	if err := WriteDOT(&arrows, g, Options{Solution: sol, EdgeStyle: EdgeArrows}); err != nil {
		t.Fatal(err)
	}
	if err := WriteDOT(&colors, g, Options{Solution: sol, EdgeStyle: EdgeColors}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(arrows.String(), "digraph") {
		t.Error("EdgeArrows not directed")
	}
	if strings.Contains(colors.String(), "digraph") {
		t.Error("EdgeColors rendered directed")
	}
	if !strings.Contains(colors.String(), "penwidth=2") {
		t.Error("EdgeColors missing edge styling")
	}
}
