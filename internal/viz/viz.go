// Package viz renders graphs, advice assignments and decoded solutions as
// Graphviz DOT — the debugging lens for advice schemas: advice bits appear
// as node fills, node labels as colors, and edge labels/orientations as
// edge styling.
package viz

import (
	"bufio"
	"fmt"
	"io"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// Options selects what to overlay on the plain graph.
type Options struct {
	// Advice, when non-nil, annotates each node with its advice string and
	// fills 1-bit holders.
	Advice local.Advice
	// Solution, when non-nil, colors nodes by node label and styles edges
	// by edge label.
	Solution *lcl.Solution
	// EdgeStyle picks how edge labels render; EdgeAuto uses arrows when the
	// labels look like orientations (exactly the TowardU/TowardV values)
	// and colors otherwise. Splitting-style labelings share the 1/2 values
	// with orientations, so callers rendering those should force EdgeColors.
	EdgeStyle EdgeStyle
	// Name is the DOT graph name; defaults to "G".
	Name string
}

// EdgeStyle selects the rendering of edge labels.
type EdgeStyle int

const (
	// EdgeAuto guesses between arrows and colors.
	EdgeAuto EdgeStyle = iota
	// EdgeArrows renders labels as edge directions.
	EdgeArrows
	// EdgeColors renders labels as edge colors.
	EdgeColors
)

// palette maps small label values to fill colors; larger labels wrap.
var palette = []string{
	"#aec7e8", "#ffbb78", "#98df8a", "#ff9896", "#c5b0d5",
	"#c49c94", "#f7b6d2", "#dbdb8d", "#9edae5", "#d9d9d9",
}

func fill(label int) string {
	if label < 1 {
		return "#ffffff"
	}
	return palette[(label-1)%len(palette)]
}

// WriteDOT renders g with the given overlays.
func WriteDOT(w io.Writer, g *graph.Graph, opts Options) error {
	bw := bufio.NewWriter(w)
	name := opts.Name
	if name == "" {
		name = "G"
	}
	directed := false
	switch opts.EdgeStyle {
	case EdgeArrows:
		directed = true
	case EdgeColors:
		directed = false
	default:
		directed = opts.Solution != nil && hasOrientationLabels(opts.Solution)
	}
	kind, arrow := "graph", "--"
	if directed {
		kind, arrow = "digraph", "->"
	}
	fmt.Fprintf(bw, "%s %s {\n", kind, name)
	fmt.Fprintf(bw, "  node [shape=circle, style=filled, fontsize=10];\n")

	for v := 0; v < g.N(); v++ {
		label := fmt.Sprintf("%d", g.ID(v))
		color := "#ffffff"
		penwidth := 1.0
		if opts.Solution != nil && v < len(opts.Solution.Node) && opts.Solution.Node[v] != lcl.Unset {
			color = fill(opts.Solution.Node[v])
			label += fmt.Sprintf("\\nc%d", opts.Solution.Node[v])
		}
		if opts.Advice != nil && v < len(opts.Advice) && opts.Advice[v].Len() > 0 {
			label += fmt.Sprintf("\\n[%s]", opts.Advice[v])
			if opts.Advice[v].Ones() > 0 {
				penwidth = 3
			}
		}
		fmt.Fprintf(bw, "  n%d [label=\"%s\", fillcolor=\"%s\", penwidth=%g];\n", v, label, color, penwidth)
	}

	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		from, to := ed.U, ed.V
		attrs := ""
		if opts.Solution != nil && e < len(opts.Solution.Edge) && opts.Solution.Edge[e] != lcl.Unset {
			l := opts.Solution.Edge[e]
			if directed {
				if l == lcl.TowardU {
					from, to = ed.V, ed.U
				}
			} else {
				attrs = fmt.Sprintf(" [color=\"%s\", penwidth=2, label=\"%d\"]", fill(l), l)
			}
		}
		fmt.Fprintf(bw, "  n%d %s n%d%s;\n", from, arrow, to, attrs)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}

// hasOrientationLabels reports whether the edge layer uses the orientation
// alphabet exclusively (so arrows are the right rendering).
func hasOrientationLabels(sol *lcl.Solution) bool {
	any := false
	for _, l := range sol.Edge {
		switch l {
		case lcl.Unset:
		case lcl.TowardU, lcl.TowardV:
			any = true
		default:
			return false
		}
	}
	return any
}
