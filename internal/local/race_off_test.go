//go:build !race

package local

// raceEnabled reports whether the race detector is compiled in; the
// allocation-equality tests skip under it (race mode randomizes sync.Pool
// retention, so allocation counts are not reproducible).
const raceEnabled = false
