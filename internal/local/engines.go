package local

import (
	"fmt"

	"localadvice/internal/graph"
)

// This file gives the five engines one dispatchable surface for view-based
// LOCAL algorithms. The production decoders (orient, 3-coloring, …) are all
// "gather a radius-T view, decide" algorithms; RunDecider executes such a
// decide function on any engine by name — directly on the ball engine, and
// wrapped in a GatherProtocol flood on the four message engines. The
// engine-equivalence and seed-independence test walls sweep EngineNames()
// so a schema's output can be pinned bit-identical across every engine
// without each test hand-rolling the dispatch.

// EngineNames lists the five engines RunDecider accepts, in the order the
// equivalence tests sweep them: the parallel view engine, the sharded
// scheduler, the goroutine-per-node engine, the sequential reference, and
// the bandwidth-frugal skeleton engine.
func EngineNames() []string {
	return []string{"ball", "scheduler", "goroutine", "sequential", "frugal"}
}

// ErrUnknownEngine tags RunDecider calls naming an engine outside
// EngineNames.
var ErrUnknownEngine = fmt.Errorf("local: unknown engine")

// RunDecider runs a view-decide function on every node of g using the named
// engine. The ball engine evaluates decide on directly-built views; the
// message engines flood (ID, degree, advice, adjacency) for radius rounds
// via GatherProtocol and decide on the assembled views. For a decide that
// is a pure function of the view (all production decoders are), the outputs
// are bit-identical across all five engines and every worker count; only
// Stats (rounds, messages) differ by engine, reflecting what each transport
// actually did.
func RunDecider(engine string, g *graph.Graph, advice Advice, radius int, decide func(*View) any, cfg RunConfig) ([]any, Stats, error) {
	if engine == "ball" {
		return TryRunBallConfig(g, advice, radius, decide, cfg)
	}
	p := &GatherProtocol{Radius: radius, Decide: decide}
	switch engine {
	case "scheduler":
		return RunMessageConfig(g, p, advice, cfg)
	case "goroutine":
		return RunGoroutineConfig(g, p, advice, cfg)
	case "sequential":
		return RunSequentialConfig(g, p, advice, cfg)
	case "frugal":
		return RunFrugalConfig(g, p, advice, cfg)
	default:
		return nil, Stats{}, fmt.Errorf("%w: %q (have %v)", ErrUnknownEngine, engine, EngineNames())
	}
}
