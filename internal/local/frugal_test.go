package local

import (
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// floodSetup builds the canonical frugal workload on g: a FloodProtocol
// sourced at the minimum-ID node with a horizon two past the source's
// eccentricity, so every node is informed with slack.
func floodSetup(t *testing.T, g *graph.Graph) *FloodProtocol {
	t.Helper()
	src, minID := 0, g.ID(0)
	for v := 1; v < g.N(); v++ {
		if id := g.ID(v); id < minID {
			src, minID = v, id
		}
	}
	s := graph.NewBFSScratch()
	ecc := 0
	for _, u := range g.BFSWithin(src, -1, s) {
		if d := s.Dist(int(u)); d > ecc {
			ecc = d
		}
	}
	return &FloodProtocol{SourceID: minID, Rounds: ecc + 2}
}

// TestFrugalFloodReduction is the headline property on a mid-size grid: the
// frugal engine completes the flood with a fraction of the stock scheduler's
// messages and bytes, within 2× the rounds, and identical outputs. (The
// full-size 4096-node claim lives in the msgred bench section and E10.)
func TestFrugalFloodReduction(t *testing.T) {
	g := graph.Grid2D(24, 24)
	p := floodSetup(t, g)

	var stock, frugal obs.Collector
	stockOut, stockStats, err := RunMessageConfig(g, p, nil, RunConfig{Workers: 1, Metrics: &stock})
	if err != nil {
		t.Fatal(err)
	}
	frugalOut, frugalStats, err := RunFrugalConfig(g, p, nil, RunConfig{Metrics: &frugal})
	if err != nil {
		t.Fatal(err)
	}
	for v := range stockOut {
		if stockOut[v] != frugalOut[v] {
			t.Fatalf("node %d: stock %v, frugal %v", v, stockOut[v], frugalOut[v])
		}
		if stockOut[v] != true {
			t.Fatalf("node %d not informed; the horizon is too short for the reduction claim to mean anything", v)
		}
	}

	if frugalStats.Messages*3 > stockStats.Messages {
		t.Errorf("frugal sent %d messages, stock %d — less than the 3× reduction the engine exists for",
			frugalStats.Messages, stockStats.Messages)
	}
	if frugalStats.Rounds > 2*stockStats.Rounds {
		t.Errorf("frugal took %d rounds, stock %d — over the 2× overhead bound", frugalStats.Rounds, stockStats.Rounds)
	}

	// The metric stream must tell the same story: summed transport bytes
	// below the stock engine's, logical traffic equal to it.
	var stockMsgs, stockBytes, transMsgs, transBytes, logicalMsgs, logicalBytes int64
	for _, rm := range stock.Rounds() {
		stockMsgs += rm.Messages
		stockBytes += rm.Bytes
		if rm.LogicalMessages != 0 || rm.LogicalBytes != 0 {
			t.Fatalf("stock engine reported logical traffic: %+v", rm)
		}
	}
	for _, rm := range frugal.Rounds() {
		if rm.Engine != "frugal" {
			t.Fatalf("frugal round metric has engine %q", rm.Engine)
		}
		transMsgs += rm.Messages
		transBytes += rm.Bytes
		logicalMsgs += rm.LogicalMessages
		logicalBytes += rm.LogicalBytes
	}
	if transMsgs != int64(frugalStats.Messages) {
		t.Errorf("metric transport sum %d != Stats.Messages %d", transMsgs, frugalStats.Messages)
	}
	if logicalMsgs != stockMsgs || logicalBytes != stockBytes {
		t.Errorf("frugal logical traffic %d msgs/%d bytes, stock %d/%d — the simulated protocol drifted",
			logicalMsgs, logicalBytes, stockMsgs, stockBytes)
	}
	if transBytes*3 > stockBytes {
		t.Errorf("frugal transport bytes %d vs stock %d — change suppression is not biting", transBytes, stockBytes)
	}
}

// TestFrugalRadiusTradeoff pins the FrugalRadius knob: a larger ρ costs more
// round overhead, and any ρ preserves outputs.
func TestFrugalRadiusTradeoff(t *testing.T) {
	g := graph.Grid2D(12, 12)
	p := floodSetup(t, g)
	refOut, refStats, err := RunMessageConfig(g, p, nil, RunConfig{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, rho := range []int{1, 2, 4} {
		out, stats, err := RunFrugalConfig(g, p, nil, RunConfig{FrugalRadius: rho})
		if err != nil {
			t.Fatalf("ρ=%d: %v", rho, err)
		}
		if want := refStats.Rounds + 2*rho + 1; stats.Rounds != want {
			t.Errorf("ρ=%d: rounds %d, want %d", rho, stats.Rounds, want)
		}
		for v := range out {
			if out[v] != refOut[v] {
				t.Fatalf("ρ=%d node %d: output %v, stock %v", rho, v, out[v], refOut[v])
			}
		}
	}
}

// TestFrugalEmptyGraph pins the degenerate case: no nodes, no rounds, no
// overhead (the 2ρ+1 pipeline never starts).
func TestFrugalEmptyGraph(t *testing.T) {
	out, stats, err := RunFrugal(graph.New(0), &FloodProtocol{SourceID: 1, Rounds: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 || stats != (Stats{}) {
		t.Fatalf("empty graph: out=%v stats=%+v", out, stats)
	}
}

// TestMsgEqual pins the change-suppression comparison across payload kinds.
func TestMsgEqual(t *testing.T) {
	type pair struct{ A, B int }
	cases := []struct {
		name string
		a, b Message
		want bool
	}{
		{"both nil", nil, nil, true},
		{"nil vs value", nil, 0, false},
		{"value vs nil", 0, nil, false},
		{"equal ints", 7, 7, true},
		{"unequal ints", 7, 8, false},
		{"zero int vs nil", 0, nil, false},
		{"different types", int64(7), 7, false},
		{"equal structs", pair{1, 2}, pair{1, 2}, true},
		{"equal slices", []int{1, 2}, []int{1, 2}, true},
		{"unequal slices", []int{1, 2}, []int{1, 3}, false},
		{"slice vs int", []int{1}, 1, false},
	}
	for _, c := range cases {
		if got := msgEqual(c.a, c.b); got != c.want {
			t.Errorf("%s: msgEqual(%v, %v) = %v, want %v", c.name, c.a, c.b, got, c.want)
		}
	}
}
