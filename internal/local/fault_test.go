package local

import (
	"errors"
	"fmt"
	"runtime"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
)

// TestNormalizeWorkers pins the shared worker-count resolution: negative is
// sequential, zero is GOMAXPROCS, and the result never exceeds the node
// count. Both the message engines and the ball engine resolve through this
// one function, so this table is the whole contract.
func TestNormalizeWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	min := func(a, b int) int {
		if a < b {
			return a
		}
		return b
	}
	cases := []struct {
		workers, n, want int
	}{
		{-1, 100, 1},
		{-7, 100, 1},
		{0, 100, min(maxprocs, 100)},
		{1, 100, 1},
		{8, 100, 8},
		{8, 4, 4},
		{-1, 0, 1},
		{0, 0, 1},
		{8, 0, 1},
	}
	for _, c := range cases {
		got := RunConfig{Workers: c.workers}.normalize(c.n)
		if got != c.want {
			t.Errorf("normalize(workers=%d, n=%d) = %d, want %d", c.workers, c.n, got, c.want)
		}
	}
}

// gatherDecide is the engine-equivalence workload: a pure function of the
// radius-T view.
func gatherDecide(view *View) any { return view.G.N()*1_000_000 + view.G.M() }

// TestCrashAgreementAcrossEngines runs the same crash plan through the three
// message engines and checks they agree exactly: same outputs (including the
// typed crash error in the crashed node's slot), same rounds, same message
// count.
func TestCrashAgreementAcrossEngines(t *testing.T) {
	g := graph.Cycle(30)
	cfg := RunConfig{Fault: &fault.Plan{CrashNode: 5, CrashRound: 2}}
	protocol := func() *GatherProtocol { return &GatherProtocol{Radius: 3, Decide: gatherDecide} }

	type result struct {
		name    string
		outputs []any
		stats   Stats
	}
	var results []result
	for _, engine := range []struct {
		name string
		run  func() ([]any, Stats, error)
	}{
		{"message", func() ([]any, Stats, error) { return RunMessageConfig(g, protocol(), nil, cfg) }},
		{"goroutine", func() ([]any, Stats, error) { return RunGoroutineConfig(g, protocol(), nil, cfg) }},
		{"sequential", func() ([]any, Stats, error) { return RunSequentialConfig(g, protocol(), nil, cfg) }},
	} {
		outputs, stats, err := engine.run()
		if err != nil {
			t.Fatalf("%s: %v", engine.name, err)
		}
		results = append(results, result{engine.name, outputs, stats})
	}
	ref := results[0]
	crashErr, ok := ref.outputs[5].(fault.CrashError)
	if !ok || !errors.Is(crashErr, fault.ErrCrashed) {
		t.Fatalf("crashed node output = %#v, want a fault.CrashError wrapping ErrCrashed", ref.outputs[5])
	}
	if crashErr.Node != 5 || crashErr.Round != 2 {
		t.Fatalf("crash error = %+v, want node 5 round 2", crashErr)
	}
	for _, r := range results[1:] {
		if r.stats != ref.stats {
			t.Errorf("%s stats %+v != %s stats %+v", r.name, r.stats, ref.name, ref.stats)
		}
		for v := range ref.outputs {
			if fmt.Sprint(r.outputs[v]) != fmt.Sprint(ref.outputs[v]) {
				t.Fatalf("%s and %s disagree at node %d: %v vs %v",
					r.name, ref.name, v, r.outputs[v], ref.outputs[v])
			}
		}
	}

	// The frugal engine runs the same sweep, so its outputs — including the
	// typed crash error — must match exactly; only its Stats (skeleton
	// transport, forwarding overhead) legitimately differ.
	frugalOut, _, err := RunFrugalConfig(g, protocol(), nil, cfg)
	if err != nil {
		t.Fatalf("frugal: %v", err)
	}
	fe, ok := frugalOut[5].(fault.CrashError)
	if !ok || fe != crashErr {
		t.Fatalf("frugal crashed node output = %#v, want %+v", frugalOut[5], crashErr)
	}
	for v := range ref.outputs {
		if fmt.Sprint(frugalOut[v]) != fmt.Sprint(ref.outputs[v]) {
			t.Fatalf("frugal and %s disagree at node %d: %v vs %v",
				ref.name, v, frugalOut[v], ref.outputs[v])
		}
	}

	// The ball engine models crashes without per-round message flow, so only
	// the typed error is comparable across the engine split.
	ballOut, _, err := TryRunBallConfig(g, nil, 3, gatherDecide, cfg)
	if err != nil {
		t.Fatalf("ball: %v", err)
	}
	be, ok := ballOut[5].(fault.CrashError)
	if !ok || be != crashErr {
		t.Fatalf("ball crashed node output = %#v, want %+v", ballOut[5], crashErr)
	}
}

// TestAdviceFlipAgreementAcrossEngines runs the same seeded advice-flip plan
// through all five engines on a view-fingerprint workload and checks every
// node's output is identical — corrupted advice must corrupt every engine
// the same way.
func TestAdviceFlipAgreementAcrossEngines(t *testing.T) {
	g := graph.Cycle(24)
	advice := make(Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(1, v%2, 1)
	}
	cfg := RunConfig{Fault: &fault.Plan{Seed: 11, FlipRate: 0.4}}
	const radius = 2
	protocol := func() *GatherProtocol { return &GatherProtocol{Radius: radius, Decide: viewFingerprint} }

	refOut, _, err := RunMessageConfig(g, protocol(), advice, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for name, run := range map[string]func() ([]any, Stats, error){
		"goroutine":  func() ([]any, Stats, error) { return RunGoroutineConfig(g, protocol(), advice, cfg) },
		"sequential": func() ([]any, Stats, error) { return RunSequentialConfig(g, protocol(), advice, cfg) },
		"frugal":     func() ([]any, Stats, error) { return RunFrugalConfig(g, protocol(), advice, cfg) },
		"ball": func() ([]any, Stats, error) {
			return TryRunBallConfig(g, advice, radius, viewFingerprint, cfg)
		},
	} {
		out, _, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for v := range refOut {
			if out[v] != refOut[v] {
				t.Fatalf("%s disagrees with the scheduler at node %d under flipped advice:\n%v\nvs\n%v",
					name, v, out[v], refOut[v])
			}
		}
	}
}

// TestBallEngineCrash pins the ball engine's crash semantics: a node crashed
// within the decoding radius yields a CrashError output, a crash scheduled
// past the radius never fires.
func TestBallEngineCrash(t *testing.T) {
	g := graph.Cycle(20)
	algo := func(view *View) any { return view.G.N() }

	outputs, _, err := TryRunBallConfig(g, nil, 2, algo, RunConfig{
		Fault: &fault.Plan{CrashNode: 3, CrashRound: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if e, ok := outputs[3].(error); !ok || !errors.Is(e, fault.ErrCrashed) {
		t.Fatalf("outputs[3] = %#v, want a crash error", outputs[3])
	}
	for v, out := range outputs {
		if v != 3 {
			if _, ok := out.(error); ok {
				t.Fatalf("node %d unexpectedly crashed: %v", v, out)
			}
		}
	}

	outputs, _, err = TryRunBallConfig(g, nil, 2, algo, RunConfig{
		Fault: &fault.Plan{CrashNode: 3, CrashRound: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := outputs[3].(error); ok {
		t.Fatalf("crash at round 5 fired within radius 2: %v", outputs[3])
	}
}

// TestApplyDeterministicAndNonMutating checks the corruption layer's two core
// promises: the same plan applied twice produces bit-identical results, and
// the caller's graph and advice are never mutated.
func TestApplyDeterministicAndNonMutating(t *testing.T) {
	g := graph.Cycle(40)
	advice := make(Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(1, 0, 1)
	}
	orig := make(Advice, len(advice))
	copy(orig, advice)

	plan := &fault.Plan{Seed: 7, FlipRate: 0.3, TruncateRate: 0.2, ReassignIDs: true}
	g1, a1, rep1 := plan.Apply(g, advice)
	g2, a2, rep2 := plan.Apply(g, advice)
	if rep1 != rep2 {
		t.Fatalf("reports differ: %+v vs %+v", rep1, rep2)
	}
	if rep1.FlippedBits == 0 {
		t.Fatal("flip rate 0.3 on 120 bits flipped nothing; corruption is not being applied")
	}
	for v := range a1 {
		if !a1[v].Equal(a2[v]) {
			t.Fatalf("node %d advice differs between identical applications: %v vs %v", v, a1[v], a2[v])
		}
	}
	for v := 0; v < g.N(); v++ {
		if g1.ID(v) != g2.ID(v) {
			t.Fatalf("node %d ID differs between identical applications", v)
		}
	}
	// Inputs untouched.
	for v := range advice {
		if !advice[v].Equal(orig[v]) {
			t.Fatalf("Apply mutated the caller's advice at node %d", v)
		}
		if g.ID(v) != int64(v+1) {
			t.Fatalf("Apply mutated the caller's graph IDs at node %d", v)
		}
	}
	// Reassignment really happened on the copy: same ID multiset, different
	// assignment (seed 7 is not the identity permutation on 40 nodes).
	moved := 0
	for v := 0; v < g.N(); v++ {
		if g1.ID(v) != g.ID(v) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("ReassignIDs left every ID in place")
	}
}

// TestInactivePlanReturnsInputs checks the fast path: a nil or zero plan
// passes the inputs through unchanged, same pointers, so fault-free runs pay
// nothing.
func TestInactivePlanReturnsInputs(t *testing.T) {
	g := graph.Cycle(8)
	advice := make(Advice, g.N())
	for _, plan := range []*fault.Plan{nil, {}} {
		fg, fadv, rep := plan.Apply(g, advice)
		if fg != g || &fadv[0] != &advice[0] {
			t.Fatalf("inactive plan %+v copied its inputs", plan)
		}
		if rep != (fault.Report{}) {
			t.Fatalf("inactive plan reported work: %+v", rep)
		}
	}
}

// TestTryVariantsRejectShortAdvice checks every engine entry point reports
// malformed advice as a typed error before the run starts.
func TestTryVariantsRejectShortAdvice(t *testing.T) {
	g := graph.Cycle(10)
	short := make(Advice, 4)
	algo := func(view *View) any { return 0 }

	if _, _, err := TryRunBallConfig(g, short, 1, algo, RunConfig{}); !errors.Is(err, ErrAdviceLength) {
		t.Errorf("TryRunBallConfig: err = %v, want ErrAdviceLength", err)
	}
	if _, _, err := TryRunBall(g, short, 1, algo); !errors.Is(err, ErrAdviceLength) {
		t.Errorf("TryRunBall: err = %v, want ErrAdviceLength", err)
	}
	protocol := &GatherProtocol{Radius: 1, Decide: gatherDecide}
	if _, _, err := RunMessageConfig(g, protocol, short, RunConfig{}); !errors.Is(err, ErrAdviceLength) {
		t.Errorf("RunMessageConfig: err = %v, want ErrAdviceLength", err)
	}
	if _, _, err := RunGoroutine(g, protocol, short); !errors.Is(err, ErrAdviceLength) {
		t.Errorf("RunGoroutine: err = %v, want ErrAdviceLength", err)
	}
	if _, _, err := RunSequential(g, protocol, short); !errors.Is(err, ErrAdviceLength) {
		t.Errorf("RunSequential: err = %v, want ErrAdviceLength", err)
	}
	if _, _, err := RunFrugal(g, protocol, short); !errors.Is(err, ErrAdviceLength) {
		t.Errorf("RunFrugal: err = %v, want ErrAdviceLength", err)
	}
}

// TestCrashAcrossWorkerCounts checks that crash faults keep the worker-count
// equivalence guarantee: the sharded scheduler produces identical results at
// every worker count, crash or no crash.
func TestCrashAcrossWorkerCounts(t *testing.T) {
	g := graph.Cycle(64)
	cfg := func(w int) RunConfig {
		return RunConfig{Workers: w, Fault: &fault.Plan{CrashNode: 10, CrashRound: 1}}
	}
	refOut, refStats, err := RunMessageConfig(g, &GatherProtocol{Radius: 3, Decide: gatherDecide}, nil, cfg(-1))
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{0, 1, 2, 8} {
		out, stats, err := RunMessageConfig(g, &GatherProtocol{Radius: 3, Decide: gatherDecide}, nil, cfg(w))
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if stats != refStats {
			t.Errorf("workers=%d stats %+v != %+v", w, stats, refStats)
		}
		for v := range refOut {
			if fmt.Sprint(out[v]) != fmt.Sprint(refOut[v]) {
				t.Fatalf("workers=%d disagrees at node %d", w, v)
			}
		}
	}
}
