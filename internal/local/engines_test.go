package local

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

// sumIDsInView is a pure view-decide function: the sum of all visible node
// IDs plus the center's true degree. Any two engines that assemble the same
// radius-2 view must produce the same value, so it pins engine equivalence
// without depending on a production decoder.
func sumIDsInView(v *View) any {
	var sum int64
	for i := 0; i < v.G.N(); i++ {
		sum += v.G.ID(i)
	}
	return fmt.Sprintf("%d/%d/%s", sum, v.TrueDegree[v.Center], v.Advice[v.Center])
}

// TestRunDeciderUnknownEngine pins the typed dispatch error.
func TestRunDeciderUnknownEngine(t *testing.T) {
	g := graph.Cycle(8)
	advice := make(Advice, g.N())
	for _, name := range []string{"", "Ball", "turbo", "scheduler "} {
		_, _, err := RunDecider(name, g, advice, 1, sumIDsInView, RunConfig{})
		if !errors.Is(err, ErrUnknownEngine) {
			t.Fatalf("engine %q: err = %v, want ErrUnknownEngine", name, err)
		}
	}
}

// TestRunDeciderEngineEquivalence sweeps EngineNames × worker counts on a
// permuted grid with non-trivial advice: every engine must produce
// bit-identical outputs for a pure view-decide function.
func TestRunDeciderEngineEquivalence(t *testing.T) {
	g := graph.Grid2D(6, 7)
	graph.AssignPermutedIDs(g, rand.New(rand.NewSource(5)))
	advice := make(Advice, g.N())
	for i := range advice {
		advice[i] = bitstr.FromUint(uint64(i*7%13), 4)
	}
	var want []any
	for _, engine := range EngineNames() {
		for _, workers := range []int{-1, 1, 8} {
			out, stats, err := RunDecider(engine, g, advice, 2, sumIDsInView, RunConfig{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", engine, workers, err)
			}
			if len(out) != g.N() {
				t.Fatalf("%s workers=%d: %d outputs, want %d", engine, workers, len(out), g.N())
			}
			if engine != "ball" && stats.Rounds < 2 {
				t.Fatalf("%s workers=%d: %d rounds for a radius-2 gather", engine, workers, stats.Rounds)
			}
			if want == nil {
				want = out
				continue
			}
			for v := range out {
				if out[v] != want[v] {
					t.Fatalf("%s workers=%d: node %d decided %v, first engine decided %v",
						engine, workers, v, out[v], want[v])
				}
			}
		}
	}
}
