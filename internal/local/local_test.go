package local

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

// maxIDProtocol computes, at each node, the maximum ID within the given
// radius via per-round flooding; a simple reference protocol.
type maxIDProtocol struct{ radius int }

type maxIDMachine struct {
	radius int
	degree int
	best   int64
}

func (p *maxIDProtocol) NewMachine(info NodeInfo) Machine {
	return &maxIDMachine{radius: p.radius, degree: info.Degree, best: info.ID}
}

func (m *maxIDMachine) Round(round int, inbox []Message) ([]Message, bool) {
	for _, msg := range inbox {
		if msg == nil {
			continue
		}
		if id := msg.(int64); id > m.best {
			m.best = id
		}
	}
	if round > m.radius {
		return nil, true
	}
	outbox := make([]Message, m.degree)
	for i := range outbox {
		outbox[i] = m.best
	}
	return outbox, false
}

func (m *maxIDMachine) Output() any { return m.best }

func TestMessageEngineMaxID(t *testing.T) {
	g := graph.Path(7)
	outputs, stats, err := Run(g, &maxIDProtocol{radius: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// IDs are 1..7 by default; node 0 sees up to node 2 (ID 3).
	if outputs[0].(int64) != 3 {
		t.Errorf("node 0 output %v, want 3", outputs[0])
	}
	if outputs[6].(int64) != 7 {
		t.Errorf("node 6 output %v, want 7", outputs[6])
	}
	if outputs[3].(int64) != 6 {
		t.Errorf("node 3 output %v, want 6", outputs[3])
	}
	if stats.Rounds != 3 { // radius rounds of flooding + the deciding round
		t.Errorf("rounds = %d, want 3", stats.Rounds)
	}
	if stats.Messages == 0 {
		t.Error("no messages counted")
	}
}

func TestMessageEngineIsolatedNodes(t *testing.T) {
	g := graph.New(3) // no edges
	outputs, _, err := Run(g, &maxIDProtocol{radius: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if outputs[v].(int64) != g.ID(v) {
			t.Errorf("isolated node %d output %v", v, outputs[v])
		}
	}
}

func TestAdviceStats(t *testing.T) {
	adv := Advice{bitstr.New(1), bitstr.New(0), bitstr.New(1)}
	ratio, err := adv.OnesRatio()
	if err != nil {
		t.Fatal(err)
	}
	if ratio < 0.66 || ratio > 0.67 {
		t.Errorf("ratio = %v, want 2/3", ratio)
	}
	if adv.TotalBits() != 3 || adv.MaxBits() != 1 {
		t.Error("bit accounting wrong")
	}
	bad := Advice{bitstr.New(1, 0)}
	if _, err := bad.OnesRatio(); err == nil {
		t.Error("OnesRatio accepted multi-bit advice")
	}
	holders := Advice{bitstr.String{}, bitstr.New(1)}.BitHolders()
	if len(holders) != 1 || holders[0] != 1 {
		t.Errorf("BitHolders = %v", holders)
	}
}

func TestBuildViewRadius(t *testing.T) {
	g := graph.Cycle(8)
	view := BuildView(g, nil, 0, 2)
	if view.G.N() != 5 {
		t.Errorf("view has %d nodes, want 5", view.G.N())
	}
	if view.Dist[view.Center] != 0 {
		t.Error("center distance nonzero")
	}
	if view.NodeByID(g.ID(2)) == -1 || view.NodeByID(g.ID(6)) == -1 {
		t.Error("node at distance 2 missing from view")
	}
	if view.NodeByID(g.ID(3)) != -1 || view.NodeByID(g.ID(5)) != -1 {
		t.Error("node at distance 3 visible in radius-2 view")
	}
}

func TestBuildViewExcludesBoundaryEdges(t *testing.T) {
	// Triangle: from any node with radius 1, the two neighbors are at
	// distance exactly 1, so the edge between them must be invisible.
	g := graph.Complete(3)
	view := BuildView(g, nil, 0, 1)
	if view.G.M() != 2 {
		t.Errorf("radius-1 view of triangle has %d edges, want 2", view.G.M())
	}
	// With radius 2 the whole triangle is visible.
	view2 := BuildView(g, nil, 0, 2)
	if view2.G.M() != 3 {
		t.Errorf("radius-2 view of triangle has %d edges, want 3", view2.G.M())
	}
}

func TestBuildViewTrueDegree(t *testing.T) {
	g := graph.Star(5)
	view := BuildView(g, nil, 1, 1) // a leaf sees the center
	c := view.NodeByID(g.ID(0))
	if c == -1 {
		t.Fatal("center invisible from leaf at radius 1")
	}
	if view.TrueDegree[c] != 5 {
		t.Errorf("center TrueDegree = %d, want 5", view.TrueDegree[c])
	}
	// But within the view the center shows only 1 edge.
	if view.G.Degree(c) != 1 {
		t.Errorf("center view degree = %d, want 1", view.G.Degree(c))
	}
}

func TestBuildViewCarriesAdvice(t *testing.T) {
	g := graph.Path(3)
	adv := Advice{bitstr.New(1), bitstr.New(0), bitstr.New(1, 1)}
	view := BuildView(g, adv, 1, 1)
	for i := 0; i < view.G.N(); i++ {
		orig := g.NodeByID(view.G.ID(i))
		if !view.Advice[i].Equal(adv[orig]) {
			t.Errorf("advice mismatch at view node %d", i)
		}
	}
}

func TestRunBallRoundsEqualsRadius(t *testing.T) {
	g := graph.Grid2D(4, 4)
	_, stats := RunBall(g, nil, 3, func(view *View) any { return view.G.N() })
	if stats.Rounds != 3 {
		t.Errorf("rounds = %d, want 3", stats.Rounds)
	}
}

func TestEngineEquivalence(t *testing.T) {
	// The gather protocol on the message engine must assemble exactly the
	// same view (same nodes, edges, advice) as BuildView, for several
	// graphs and radii.
	rng := rand.New(rand.NewSource(42))
	graphs := map[string]*graph.Graph{
		"cycle9":  graph.Cycle(9),
		"grid3x4": graph.Grid2D(3, 4),
		"k5":      graph.Complete(5),
		"tree4":   graph.CompleteBinaryTree(4),
		"gnp":     graph.RandomGNP(12, 0.3, rng),
	}
	for name, g := range graphs {
		graph.AssignPermutedIDs(g, rng)
		adv := make(Advice, g.N())
		for v := range adv {
			adv[v] = bitstr.New(rng.Intn(2))
		}
		for _, radius := range []int{1, 2, 3} {
			summarize := func(view *View) any {
				// A canonical fingerprint of the view: sorted ID pairs of
				// edges plus sorted (ID, advice, truedeg, dist) tuples.
				edgeFPs := make([]string, 0, view.G.M())
				for _, e := range view.G.Edges() {
					a, b := view.G.ID(e.U), view.G.ID(e.V)
					if a > b {
						a, b = b, a
					}
					edgeFPs = append(edgeFPs, fingerprintEdge(a, b))
				}
				sort.Strings(edgeFPs)
				fp := strings.Join(edgeFPs, "")
				ids := make([]int64, view.G.N())
				for i := range ids {
					ids[i] = view.G.ID(i)
				}
				sortIDs(ids)
				for _, id := range ids {
					i := view.NodeByID(id)
					fp += fingerprintNode(id, view.Advice[i], view.TrueDegree[i], view.Dist[i])
				}
				return fp
			}
			ballOut, _ := RunBall(g, adv, radius, summarize)
			msgOut, _, err := Run(g, &GatherProtocol{Radius: radius, Decide: summarize}, adv)
			if err != nil {
				t.Fatalf("%s radius %d: %v", name, radius, err)
			}
			for v := range ballOut {
				if ballOut[v] != msgOut[v] {
					t.Errorf("%s radius %d node %d: engines disagree\nball: %v\nmsg:  %v",
						name, radius, v, ballOut[v], msgOut[v])
				}
			}
		}
	}
}

func fingerprintEdge(a, b int64) string {
	return "e" + int64Str(a) + "," + int64Str(b) + ";"
}

func fingerprintNode(id int64, adv bitstr.String, deg, dist int) string {
	return "n" + int64Str(id) + ":" + adv.String() + ":" + int64Str(int64(deg)) + ":" + int64Str(int64(dist)) + ";"
}

func int64Str(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// earlyStopProtocol terminates node v at round v+1 to exercise staggered
// termination in the engine.
type earlyStopProtocol struct{}

type earlyStopMachine struct {
	stopAt int
	degree int
}

func (earlyStopProtocol) NewMachine(info NodeInfo) Machine {
	return &earlyStopMachine{stopAt: int(info.ID % 4), degree: info.Degree}
}

func (m *earlyStopMachine) Round(round int, inbox []Message) ([]Message, bool) {
	if round > m.stopAt {
		return nil, true
	}
	return make([]Message, m.degree), false
}

func (m *earlyStopMachine) Output() any { return m.stopAt }

func TestStaggeredTermination(t *testing.T) {
	g := graph.Cycle(9)
	outputs, stats, err := Run(g, earlyStopProtocol{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v, out := range outputs {
		if out.(int) != int(g.ID(v)%4) {
			t.Errorf("node %d output %v", v, out)
		}
	}
	if stats.Rounds != 4 {
		t.Errorf("rounds = %d, want 4", stats.Rounds)
	}
}

func TestSequentialEngineMatchesGoroutineEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	graphs := map[string]*graph.Graph{
		"cycle11":  graph.Cycle(11),
		"grid4x5":  graph.Grid2D(4, 5),
		"star6":    graph.Star(6),
		"isolated": graph.New(4),
		"gnp":      graph.RandomGNP(15, 0.25, rng),
	}
	protocols := map[string]Protocol{
		"maxID2":  &maxIDProtocol{radius: 2},
		"maxID5":  &maxIDProtocol{radius: 5},
		"stagger": earlyStopProtocol{},
		"gather": &GatherProtocol{Radius: 2, Decide: func(view *View) any {
			return view.G.N()*1000 + view.G.M()
		}},
	}
	for gname, g := range graphs {
		graph.AssignPermutedIDs(g, rng)
		adv := make(Advice, g.N())
		for v := range adv {
			adv[v] = bitstr.New(rng.Intn(2))
		}
		for pname, p := range protocols {
			concOut, concStats, err := RunGoroutine(g, p, adv)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, pname, err)
			}
			seqOut, seqStats, err := RunSequential(g, p, adv)
			if err != nil {
				t.Fatalf("%s/%s: %v", gname, pname, err)
			}
			for v := range concOut {
				if concOut[v] != seqOut[v] {
					t.Fatalf("%s/%s node %d: goroutine %v, sequential %v",
						gname, pname, v, concOut[v], seqOut[v])
				}
			}
			if concStats != seqStats {
				t.Errorf("%s/%s: stats differ: %+v vs %+v", gname, pname, concStats, seqStats)
			}
		}
	}
}
