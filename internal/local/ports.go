package local

import "localadvice/internal/graph"

// portTable is the CSR port layout shared by every message engine: node v's
// ports occupy the contiguous slot range [off[v], off[v+1]) of a flat
// per-port slab, and sendSlot[off[v]+i] is the slot — in the *receiver's*
// range — where a message sent by v on port i is delivered. Port order is
// the graph's adjacency order, so all engines agree on wiring.
//
// Construction is O(n+m): instead of scanning each neighbor's adjacency list
// to locate the reverse port (the historical O(Σ deg(v)·deg(w)) pass), the
// table records, per undirected edge, the port index at each endpoint in one
// sweep over the incident-edge lists and then resolves every directed slot
// with two array lookups.
type portTable struct {
	off      []int32 // len n+1; off[v+1]-off[v] == deg(v)
	sendSlot []int32 // len 2m; destination slot per directed port
}

// newPortTable builds the port layout of g.
func newPortTable(g *graph.Graph) portTable {
	n := g.N()
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(v))
	}
	// portAtU[e] / portAtV[e]: the port index of edge e in the adjacency
	// list of its U / V endpoint.
	m := g.M()
	portAtU := make([]int32, m)
	portAtV := make([]int32, m)
	for v := 0; v < n; v++ {
		for i, e := range g.IncidentEdges(v) {
			if g.Edge(e).U == v {
				portAtU[e] = int32(i)
			} else {
				portAtV[e] = int32(i)
			}
		}
	}
	sendSlot := make([]int32, off[n])
	for v := 0; v < n; v++ {
		adj := g.Neighbors(v)
		inc := g.IncidentEdges(v)
		base := off[v]
		for i, w := range adj {
			e := inc[i]
			j := portAtV[e]
			if g.Edge(e).U == w {
				j = portAtU[e]
			}
			sendSlot[base+int32(i)] = off[w] + j
		}
	}
	return portTable{off: off, sendSlot: sendSlot}
}

// slots returns the total number of directed ports (2m).
func (p portTable) slots() int { return int(p.off[len(p.off)-1]) }

// reversePort returns, for node v's port i, the port index on the receiving
// neighbor's side — the j such that v is the j-th neighbor of Neighbors(v)[i]
// along the shared edge. Used by the goroutine engine to address channels.
func (p portTable) reversePort(g *graph.Graph, v, i int) int {
	w := g.Neighbors(v)[i]
	return int(p.sendSlot[p.off[v]+int32(i)] - p.off[w])
}
