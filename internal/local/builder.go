package local

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

// RunConfig configures the parallel view engine (RunBallConfig).
type RunConfig struct {
	// Workers is the number of goroutines that build views and evaluate the
	// ball algorithm; 0 means GOMAXPROCS. Outputs are written by node index
	// and Stats depend only on the radius, so results are byte-for-byte
	// identical for every worker count.
	Workers int
}

// defaultWorkers holds the process-wide worker count used by RunBall when no
// explicit RunConfig is supplied; 0 means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers fixes the worker count RunBall uses by default; n <= 0
// restores the GOMAXPROCS default. The locad CLI's -workers flag calls this
// once at startup so every decoder in the process inherits the setting.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// parallelThreshold is the node count below which the default engine stays
// sequential: on tiny graphs goroutine fan-out costs more than it saves.
// RunBallConfig with an explicit Workers value always honors it.
const parallelThreshold = 256

// validateAdvice fails loudly on a prover bug: advice, when present, must
// assign a (possibly empty) string to every node. The old engine silently
// treated out-of-range nodes as empty-advice, which hid encoder errors.
func validateAdvice(g *graph.Graph, advice Advice) {
	if advice != nil && len(advice) != g.N() {
		panic(fmt.Sprintf("local: advice has %d entries for a %d-node graph (prover bug: advice must be nil or cover every node)", len(advice), g.N()))
	}
}

// ViewBuilder assembles radius-T views using per-builder scratch storage (a
// bounded-BFS scratch and an edge accumulation buffer), so building views in
// a loop performs near-zero steady-state allocation beyond the returned View
// itself. A ViewBuilder is not safe for concurrent use; the parallel engine
// gives each worker its own.
type ViewBuilder struct {
	bfs   graph.BFSScratch
	edges []graph.Edge
}

// NewViewBuilder returns an empty builder; its scratch sizes itself lazily
// to the graphs it sees.
func NewViewBuilder() *ViewBuilder { return &ViewBuilder{} }

// builderPool backs the package-level BuildView and the sequential RunBall
// path so that one-off callers also reuse scratch.
var builderPool = sync.Pool{New: func() any { return NewViewBuilder() }}

// BuildView constructs the radius-T view of node v in g under advice. The
// returned View shares nothing with the builder and may be retained.
func (b *ViewBuilder) BuildView(g *graph.Graph, advice Advice, v, radius int) *View {
	validateAdvice(g, advice)
	csr := g.Snapshot()
	ball := g.BFSWithin(v, radius, &b.bfs)
	k := len(ball)

	ids := make([]int64, k)
	for i, u := range ball {
		ids[i] = g.ID(int(u))
	}
	// Collect the visible edges: both endpoints in the ball, at least one
	// endpoint strictly inside radius (a node learns an edge in T rounds
	// only if some endpoint is at distance <= T-1). Edges are emitted in
	// the same order the incremental constructor would add them, so the
	// subgraph's adjacency order is identical to the historical engine's.
	b.edges = b.edges[:0]
	for i, u := range ball {
		du := b.bfs.Dist(int(u))
		for _, w := range csr.Neighbors(int(u)) {
			j := b.bfs.Pos(int(w))
			if j <= i { // invisible (-1) or already emitted from the other side
				continue
			}
			if du >= radius && b.bfs.Dist(int(w)) >= radius {
				continue
			}
			b.edges = append(b.edges, graph.Edge{U: i, V: j})
		}
	}
	edges := make([]graph.Edge, len(b.edges))
	copy(edges, b.edges)
	sub := graph.NewFromEdges(ids, edges)

	view := &View{
		G:          sub,
		Center:     0, // v is the BFS source, always first in ball order
		Dist:       make([]int, k),
		Advice:     make([]bitstr.String, k),
		TrueDegree: make([]int, k),
		Radius:     radius,
		N:          g.N(),
		Delta:      csr.MaxDegree(),
	}
	for i, u := range ball {
		view.Dist[i] = b.bfs.Dist(int(u))
		view.TrueDegree[i] = csr.Degree(int(u))
		if int(u) < len(advice) {
			view.Advice[i] = advice[int(u)]
		}
	}
	return view
}

// RunBallConfig executes a ball algorithm with the given radius on every
// node of g using cfg.Workers parallel workers and returns the per-node
// outputs. The round count is exactly the radius. The algorithm must be a
// pure function of the view (all production decoders are); outputs are
// written by node index, so the result is identical for any worker count.
func RunBallConfig(g *graph.Graph, advice Advice, radius int, algo BallAlgorithm, cfg RunConfig) ([]any, Stats) {
	validateAdvice(g, advice)
	n := g.N()
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	outputs := make([]any, n)
	if n == 0 {
		return outputs, Stats{Rounds: radius}
	}
	g.Snapshot() // build the CSR once, before the fan-out

	if workers <= 1 {
		b := builderPool.Get().(*ViewBuilder)
		defer builderPool.Put(b)
		for v := 0; v < n; v++ {
			outputs[v] = algo(b.BuildView(g, advice, v, radius))
		}
		return outputs, Stats{Rounds: radius}
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b := builderPool.Get().(*ViewBuilder)
			defer builderPool.Put(b)
			for {
				v := int(next.Add(1)) - 1
				if v >= n {
					return
				}
				outputs[v] = algo(b.BuildView(g, advice, v, radius))
			}
		}()
	}
	wg.Wait()
	return outputs, Stats{Rounds: radius}
}
