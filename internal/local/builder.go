package local

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"localadvice/internal/bitstr"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// RunConfig configures an engine run: the worker count shared by the view
// engine (RunBallConfig) and the message engines (RunMessageConfig and
// friends), an optional fault-injection plan, and an optional metrics
// collector.
type RunConfig struct {
	// Workers is the number of goroutines the engine fans out over; see
	// normalize for the exact resolution contract (the single source of
	// truth). Outputs, rounds, and message counts are byte-for-byte
	// identical for every worker count.
	Workers int

	// Fault, when non-nil and active, injects deterministic faults into the
	// run: advice corruption and ID reassignment are applied once before the
	// engine starts (the inputs are not mutated), and crash faults remove
	// the crashed node from the configured round on, leaving a
	// fault.CrashError in its output slot. A nil plan is fault-free.
	Fault *fault.Plan

	// Metrics, when non-nil, receives per-round cost metrics (wall time,
	// messages, bytes, active nodes, per-shard sweep timing) and events
	// from the run. When nil the engine falls back to the process-wide
	// collector (obs.SetDefault); with neither installed, instrumentation
	// is a nil check — no allocations, no clock reads — and outputs are
	// byte-identical to an uninstrumented build.
	Metrics *obs.Collector

	// FrugalRadius is the skeleton cluster radius ρ used by RunFrugalConfig;
	// zero selects the package default (DefaultFrugalRadius) and negative
	// values are rejected with an error wrapping ErrFrugalRadius. The
	// other engines ignore it. Larger ρ means fewer, deeper clusters —
	// fewer skeleton edges but a larger 2ρ+1 round overhead.
	FrugalRadius int

	// DetLLL selects the deterministic LLL pipeline for schemas whose
	// advice placement is an LLL instance (orient shift placement, the
	// ruling-group selection of the 3-coloring schema): encoders resolve
	// the instance by conditional expectations instead of Moser–Tardos
	// resampling, so the advice — and therefore every engine output — is a
	// pure function of the graph, bit-identical across engines, worker
	// counts, AND rng seeds. The engines themselves never read it (advice
	// is fixed before a run starts); it rides on RunConfig because RunConfig
	// is the one configuration value threaded from the CLI/server/harness
	// down to every schema execution, and the schema adapters
	// (harness.DetSchemas, the server's det-mode schema entries) consult it
	// when choosing the encoder. Derived cache keys for det-mode artifacts
	// drop the seed component (DESIGN.md decision 12).
	DetLLL bool

	// Partition, when non-nil, replaces the sharded scheduler's contiguous
	// node-index shards with custom node lists (e.g. the low-cut ball
	// shards of decomp.ShardPartition). It is called once per run, after
	// fault injection, with the graph the engine executes and the resolved
	// worker count — and only when that count is > 1 (a single worker
	// sweeps all nodes either way). It must return exactly `workers`
	// disjoint lists that together cover every node exactly once; anything
	// else fails the run with an error wrapping ErrBadPartition, and an
	// error it returns propagates unchanged.
	//
	// Sharding only chooses which worker sweeps which node: outputs,
	// rounds, messages and fault reports are bit-identical to contiguous
	// sharding for every valid partition (the slabs give every directed
	// port a single writer regardless of grouping). The ball, goroutine
	// and sequential engines ignore it.
	Partition Partition
}

// Partition computes a custom node→shard grouping for the sharded
// scheduler: shards[w] lists the nodes worker w sweeps each round. See
// RunConfig.Partition for the exactness contract.
type Partition func(g *graph.Graph, workers int) ([][]int32, error)

// resolveShards runs cfg.Partition (when installed and the run is actually
// parallel) and validates its result against the exactness contract. A nil
// return means contiguous index sharding.
func (cfg RunConfig) resolveShards(g *graph.Graph, workers int) ([][]int32, error) {
	if cfg.Partition == nil || workers <= 1 {
		return nil, nil
	}
	shards, err := cfg.Partition(g, workers)
	if err != nil {
		return nil, fmt.Errorf("local: partition: %w", err)
	}
	n := g.N()
	if len(shards) != workers {
		return nil, fmt.Errorf("%w: got %d shards for %d workers", ErrBadPartition, len(shards), workers)
	}
	seen := make([]bool, n)
	total := 0
	for w, nodes := range shards {
		for _, v := range nodes {
			if v < 0 || int(v) >= n {
				return nil, fmt.Errorf("%w: shard %d contains out-of-range node %d (n=%d)", ErrBadPartition, w, v, n)
			}
			if seen[v] {
				return nil, fmt.Errorf("%w: node %d assigned to more than one shard", ErrBadPartition, v)
			}
			seen[v] = true
			total++
		}
	}
	if total != n {
		return nil, fmt.Errorf("%w: shards cover %d of %d nodes", ErrBadPartition, total, n)
	}
	return shards, nil
}

// normalize resolves the configured worker count for an n-node run. This
// is the single source of truth for the Workers contract, shared by every
// engine (ball, scheduler, goroutine, sequential) so they cannot drift:
//
//   - negative clamps to sequential (one worker);
//   - zero expands to runtime.GOMAXPROCS(0);
//   - the result is capped to [1, max(n, 1)], so a worker count above the
//     node count (e.g. 8 workers on a 4-node graph) clamps to n.
//
// TestNormalizeWorkers pins the -1/0/1/8 table from CHANGES.md against
// this function.
func (cfg RunConfig) normalize(n int) int {
	w := cfg.Workers
	switch {
	case w < 0:
		w = 1
	case w == 0:
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// collector resolves the metrics destination for this run: the explicit
// RunConfig.Metrics if set, else the process-wide default (normally nil).
// Call once per run, not per round.
func (cfg RunConfig) collector() *obs.Collector {
	if cfg.Metrics != nil {
		return cfg.Metrics
	}
	return obs.Default()
}

// applyFault resolves the config's fault plan against the run's inputs,
// returning the (possibly replaced) graph and advice the engine should
// execute with. Fault-free configs return the inputs unchanged. When a
// collector is active, the injected damage is recorded as fault.* events.
func (cfg RunConfig) applyFault(g *graph.Graph, advice Advice) (*graph.Graph, Advice) {
	if !cfg.Fault.Active() {
		return g, advice
	}
	fg, fadv, rep := cfg.Fault.Apply(g, advice)
	if m := cfg.collector(); m.Enabled() {
		for _, e := range rep.Events() {
			m.Emit(e.Kind, e.Label, e.Value)
		}
	}
	return fg, Advice(fadv)
}

// defaultWorkers holds the process-wide worker count used by RunBall when no
// explicit RunConfig is supplied; 0 means GOMAXPROCS.
var defaultWorkers atomic.Int32

// SetDefaultWorkers fixes the worker count RunBall uses by default; n <= 0
// restores the GOMAXPROCS default. The locad CLI's -workers flag calls this
// once at startup so every decoder in the process inherits the setting.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int32(n))
}

// parallelThreshold is the node count below which the default engine stays
// sequential: on tiny graphs goroutine fan-out costs more than it saves.
// RunBallConfig with an explicit Workers value always honors it.
const parallelThreshold = 256

// validateAdvice rejects a malformed advice assignment: advice, when
// present, must assign a (possibly empty) string to every node. The original
// engine silently treated out-of-range nodes as empty-advice, which hid
// encoder errors; the Try* entry points return this error before the engine
// starts, and the historical entry points panic with it.
func validateAdvice(g *graph.Graph, advice Advice) error {
	if advice != nil && len(advice) != g.N() {
		return fmt.Errorf("%w: advice has %d entries for a %d-node graph (advice must be nil or cover every node)",
			ErrAdviceLength, len(advice), g.N())
	}
	return nil
}

// mustValidateAdvice is validateAdvice for the panicking entry points.
func mustValidateAdvice(g *graph.Graph, advice Advice) {
	if err := validateAdvice(g, advice); err != nil {
		panic(err)
	}
}

// ViewBuilder assembles radius-T views using per-builder scratch storage (a
// bounded-BFS scratch and an edge accumulation buffer), so building views in
// a loop performs near-zero steady-state allocation beyond the returned View
// itself. A ViewBuilder is not safe for concurrent use; the parallel engine
// gives each worker its own.
type ViewBuilder struct {
	bfs   graph.BFSScratch
	edges []graph.Edge
}

// NewViewBuilder returns an empty builder; its scratch sizes itself lazily
// to the graphs it sees.
func NewViewBuilder() *ViewBuilder { return &ViewBuilder{} }

// builderPool backs the package-level BuildView and the sequential RunBall
// path so that one-off callers also reuse scratch.
var builderPool = sync.Pool{New: func() any { return NewViewBuilder() }}

// BuildView constructs the radius-T view of node v in g under advice. The
// returned View shares nothing with the builder and may be retained.
func (b *ViewBuilder) BuildView(g *graph.Graph, advice Advice, v, radius int) *View {
	mustValidateAdvice(g, advice)
	csr := g.Snapshot()
	ball := g.BFSWithin(v, radius, &b.bfs)
	k := len(ball)

	ids := make([]int64, k)
	for i, u := range ball {
		ids[i] = g.ID(int(u))
	}
	// Collect the visible edges: both endpoints in the ball, at least one
	// endpoint strictly inside radius (a node learns an edge in T rounds
	// only if some endpoint is at distance <= T-1). Edges are emitted in
	// the same order the incremental constructor would add them, so the
	// subgraph's adjacency order is identical to the historical engine's.
	b.edges = b.edges[:0]
	for i, u := range ball {
		du := b.bfs.Dist(int(u))
		for _, w := range csr.Neighbors(int(u)) {
			j := b.bfs.Pos(int(w))
			if j <= i { // invisible (-1) or already emitted from the other side
				continue
			}
			if du >= radius && b.bfs.Dist(int(w)) >= radius {
				continue
			}
			b.edges = append(b.edges, graph.Edge{U: i, V: j})
		}
	}
	edges := make([]graph.Edge, len(b.edges))
	copy(edges, b.edges)
	sub := graph.NewFromEdges(ids, edges)

	view := &View{
		G:          sub,
		Center:     0, // v is the BFS source, always first in ball order
		Dist:       make([]int, k),
		Advice:     make([]bitstr.String, k),
		TrueDegree: make([]int, k),
		Radius:     radius,
		N:          g.N(),
		Delta:      csr.MaxDegree(),
	}
	for i, u := range ball {
		view.Dist[i] = b.bfs.Dist(int(u))
		view.TrueDegree[i] = csr.Degree(int(u))
		if int(u) < len(advice) {
			view.Advice[i] = advice[int(u)]
		}
	}
	return view
}

// TryRunBallConfig executes a ball algorithm with the given radius on every
// node of g using cfg.Workers parallel workers and returns the per-node
// outputs. The round count is exactly the radius. The algorithm must be a
// pure function of the view (all production decoders are); outputs are
// written by node index, so the result is identical for any worker count.
//
// Malformed advice is reported as an error (wrapping ErrAdviceLength)
// before the engine starts. When cfg.Fault is active, advice corruption and
// ID reassignment are applied first, and a node crashed within the decoding
// radius produces no output — its output slot holds a fault.CrashError. The
// ball engine has no per-round message flow, so a crash cannot additionally
// starve the views of other nodes; the message engines model that part.
func TryRunBallConfig(g *graph.Graph, advice Advice, radius int, algo BallAlgorithm, cfg RunConfig) ([]any, Stats, error) {
	if err := validateAdvice(g, advice); err != nil {
		return nil, Stats{}, err
	}
	g, advice = cfg.applyFault(g, advice)
	n := g.N()
	workers := cfg.normalize(n)
	crashed := -1
	if cfg.Fault != nil && cfg.Fault.CrashRound > 0 && cfg.Fault.CrashRound <= radius {
		crashed = cfg.Fault.CrashNode
	}
	outputs := make([]any, n)
	if n == 0 {
		return outputs, Stats{Rounds: radius}, nil
	}
	g.Snapshot() // build the CSR once, before the fan-out

	// Metrics: the ball engine has no per-round message flow, so it records
	// a single round entry (round = radius) with the total and per-worker
	// view-construction time. Active nodes excludes a node crashed within
	// the radius (it builds no view).
	m := cfg.collector()
	var (
		runID      int
		runStart   time.Time
		shardNanos []int64
	)
	if m.Enabled() {
		runID = m.BeginRun("ball", n)
		shardNanos = make([]int64, workers)
		runStart = time.Now()
	}
	finish := func() {
		if !m.Enabled() {
			return
		}
		active := n
		if crashed >= 0 && crashed < n {
			active--
			m.Emit("fault.crash", "", 1)
		}
		m.RecordRound(obs.RoundMetric{Engine: "ball", Run: runID, Round: radius,
			ActiveNodes: active, WallNanos: time.Since(runStart).Nanoseconds(),
			ShardNanos: shardNanos})
		m.Emit("ball.views", "", int64(active))
	}

	evaluate := func(b *ViewBuilder, v int) any {
		if v == crashed {
			return fault.CrashError{Node: v, Round: cfg.Fault.CrashRound}
		}
		return algo(b.BuildView(g, advice, v, radius))
	}

	if workers <= 1 {
		b := builderPool.Get().(*ViewBuilder)
		defer builderPool.Put(b)
		for v := 0; v < n; v++ {
			outputs[v] = evaluate(b, v)
		}
		if m.Enabled() {
			shardNanos[0] = time.Since(runStart).Nanoseconds()
		}
		finish()
		return outputs, Stats{Rounds: radius}, nil
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var shardStart time.Time
			if m.Enabled() {
				shardStart = time.Now()
			}
			b := builderPool.Get().(*ViewBuilder)
			defer builderPool.Put(b)
			for {
				v := int(next.Add(1)) - 1
				if v >= n {
					break
				}
				outputs[v] = evaluate(b, v)
			}
			if m.Enabled() {
				shardNanos[w] = time.Since(shardStart).Nanoseconds()
			}
		}(w)
	}
	wg.Wait()
	finish()
	return outputs, Stats{Rounds: radius}, nil
}

// RunBallConfig is the historical panicking form of TryRunBallConfig: it
// panics on malformed advice instead of returning an error. Callers running
// prover-produced advice (which already passed validation) keep this thin
// wrapper; anything fed from user input should call TryRunBallConfig.
func RunBallConfig(g *graph.Graph, advice Advice, radius int, algo BallAlgorithm, cfg RunConfig) ([]any, Stats) {
	outputs, stats, err := TryRunBallConfig(g, advice, radius, algo, cfg)
	if err != nil {
		panic(err)
	}
	return outputs, stats
}
