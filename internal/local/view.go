package local

import (
	"fmt"

	"localadvice/internal/bitstr"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
)

// View is the radius-T view of a node: everything a node can learn in T
// LOCAL rounds. It contains the subgraph on the nodes at distance <= T,
// excluding edges between two nodes both at distance exactly T (a node does
// not learn those in T rounds), plus IDs, advice, true degrees, and global
// parameters. Node indices inside a View are local to the view; algorithms
// must identify nodes by ID only.
type View struct {
	// G is the visible subgraph; node IDs are preserved from the host graph.
	G *graph.Graph
	// Center is the index of the viewing node within G.
	Center int
	// Dist[i] is the distance from Center to node i within the host graph
	// (equal to the distance in G for dist < Radius).
	Dist []int
	// Advice[i] is node i's advice string.
	Advice []bitstr.String
	// TrueDegree[i] is node i's degree in the host graph (boundary nodes
	// show fewer edges inside the view).
	TrueDegree []int
	// Radius is the view radius T.
	Radius int
	// N and Delta are the global parameters known to every node.
	N     int
	Delta int
}

// NodeByID returns the view-local index of the node with the given ID, or
// -1 if it is not visible.
func (v *View) NodeByID(id int64) int { return v.G.NodeByID(id) }

// BallAlgorithm is a LOCAL algorithm in view form: a function of the
// radius-T view of each node. The returned value is the node's output.
type BallAlgorithm func(view *View) any

// BuildView constructs the radius-T view of node v in g under advice. It is
// the convenience form of ViewBuilder.BuildView using pooled scratch; loops
// that build many views should hold their own ViewBuilder.
func BuildView(g *graph.Graph, advice Advice, v, radius int) *View {
	b := builderPool.Get().(*ViewBuilder)
	defer builderPool.Put(b)
	return b.BuildView(g, advice, v, radius)
}

// TryRunBall executes a ball algorithm with the given radius on every node
// of g and returns the per-node outputs, reporting malformed advice as an
// error (wrapping ErrAdviceLength) before the engine starts. The round
// count is exactly the radius. The worker count comes from SetDefaultWorkers
// and is resolved by RunConfig.normalize (the single source of truth for
// the Workers contract); small graphs additionally run sequentially, since
// fan-out overhead dominates below a few hundred nodes. Either way the
// outputs and Stats are identical to a single-worker run.
func TryRunBall(g *graph.Graph, advice Advice, radius int, algo BallAlgorithm) ([]any, Stats, error) {
	workers := int(defaultWorkers.Load())
	if g.N() < parallelThreshold && workers == 0 {
		workers = 1
	}
	return TryRunBallConfig(g, advice, radius, algo, RunConfig{Workers: workers})
}

// RunBall is the historical panicking form of TryRunBall: it panics on
// malformed advice instead of returning an error.
func RunBall(g *graph.Graph, advice Advice, radius int, algo BallAlgorithm) ([]any, Stats) {
	outputs, stats, err := TryRunBall(g, advice, radius, algo)
	if err != nil {
		panic(err)
	}
	return outputs, stats
}

// GatherProtocol is a message-engine protocol in which every node floods its
// (ID, degree, advice, adjacency-so-far) for Radius rounds and then applies
// Decide to the assembled view. It exists to validate that the two engines
// agree; production decoders use RunBall directly.
type GatherProtocol struct {
	Radius int
	Decide func(view *View) any
}

var _ Protocol = (*GatherProtocol)(nil)

// gatherFact is one node's self-description, flooded through the graph.
type gatherFact struct {
	id        int64
	degree    int
	advice    bitstr.String
	neighbors []int64 // IDs of neighbors, discovered round by round
}

type gatherMachine struct {
	p     *GatherProtocol
	info  NodeInfo
	known map[int64]*gatherFact
	out   any
}

// NewMachine implements Protocol.
func (p *GatherProtocol) NewMachine(info NodeInfo) Machine {
	m := &gatherMachine{p: p, info: info, known: make(map[int64]*gatherFact)}
	m.known[info.ID] = &gatherFact{id: info.ID, degree: info.Degree, advice: info.Advice}
	return m
}

func (m *gatherMachine) Round(round int, inbox []Message) ([]Message, bool) {
	// Merge incoming knowledge.
	for _, msg := range inbox {
		if msg == nil {
			continue
		}
		facts := msg.([]gatherFact)
		for i := range facts {
			f := facts[i]
			if have, ok := m.known[f.id]; ok {
				have.neighbors = mergeIDs(have.neighbors, f.neighbors)
			} else {
				cp := f
				cp.neighbors = append([]int64(nil), f.neighbors...)
				m.known[cp.id] = &cp
			}
		}
		// The sender is a neighbor: its first fact is itself.
		if len(facts) > 0 {
			self := m.known[m.info.ID]
			self.neighbors = mergeIDs(self.neighbors, []int64{facts[0].id})
			nbr := m.known[facts[0].id]
			nbr.neighbors = mergeIDs(nbr.neighbors, []int64{m.info.ID})
		}
	}
	if round > m.p.Radius {
		view, err := m.assembleView()
		if err != nil {
			// Surface assembly failures (e.g. duplicate IDs flooded by a
			// corrupted neighborhood) as this node's output instead of
			// panicking: callers inspect outputs for error values.
			m.out = err
			return nil, true
		}
		m.out = m.p.Decide(view)
		return nil, true
	}
	// Flood everything known; own fact first so receivers learn who sent.
	facts := make([]gatherFact, 0, len(m.known))
	facts = append(facts, *m.known[m.info.ID])
	for id, f := range m.known {
		if id != m.info.ID {
			facts = append(facts, *f)
		}
	}
	outbox := make([]Message, m.info.Degree)
	for i := range outbox {
		outbox[i] = facts
	}
	return outbox, false
}

func (m *gatherMachine) Output() any { return m.out }

func (m *gatherMachine) assembleView() (*View, error) {
	// Build a graph from known facts; distances computed from the center.
	ids := make([]int64, 0, len(m.known))
	for id := range m.known {
		ids = append(ids, id)
	}
	sortIDs(ids)
	idx := make(map[int64]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	g := graph.New(len(ids))
	if err := g.SetIDs(ids); err != nil {
		return nil, fmt.Errorf("local: gather produced duplicate IDs: %v: %w", err, fault.ErrDetectedCorruption)
	}
	for id, f := range m.known {
		for _, nid := range f.neighbors {
			j, ok := idx[nid]
			if !ok {
				continue
			}
			i := idx[id]
			if i < j && !g.HasEdge(i, j) {
				g.MustAddEdge(i, j)
			}
		}
	}
	center := idx[m.info.ID]
	view := &View{
		G:          g,
		Center:     center,
		Dist:       g.BFSFrom(center),
		Advice:     make([]bitstr.String, len(ids)),
		TrueDegree: make([]int, len(ids)),
		Radius:     m.p.Radius,
		N:          m.info.N,
		Delta:      m.info.Delta,
	}
	for i, id := range ids {
		view.Advice[i] = m.known[id].advice
		view.TrueDegree[i] = m.known[id].degree
	}
	return view, nil
}

func mergeIDs(dst, src []int64) []int64 {
	for _, s := range src {
		found := false
		for _, d := range dst {
			if d == s {
				found = true
				break
			}
		}
		if !found {
			dst = append(dst, s)
		}
	}
	return dst
}

func sortIDs(ids []int64) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
