package local

import (
	"fmt"
	"time"

	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// RunSequential executes a message protocol with a single-threaded,
// perfectly deterministic round loop — the same semantics as Run (the
// sharded scheduler) and RunGoroutine, without concurrency or slab
// indexing. It exists as an independently-written third implementation:
// reproducible debugging of protocols and a triangulation point for the
// engines-agree tests (three separate engines agreeing is much stronger
// evidence than two).
func RunSequential(g *graph.Graph, protocol Protocol, advice Advice) ([]any, Stats, error) {
	return RunSequentialConfig(g, protocol, advice, RunConfig{})
}

// RunSequentialConfig is RunSequential with a RunConfig, for fault
// injection; the worker count is ignored (the engine is single-threaded by
// design). Crash semantics match RunMessageConfig exactly: the crashed node
// is marked done with a fault.CrashError output at its crash round and
// sends nothing from then on.
func RunSequentialConfig(g *graph.Graph, protocol Protocol, advice Advice, cfg RunConfig) ([]any, Stats, error) {
	if err := validateAdvice(g, advice); err != nil {
		return nil, Stats{}, err
	}
	g, advice = cfg.applyFault(g, advice)
	n := g.N()
	machines := newMachines(g, protocol, advice)

	// portAt[v][i]: the port of v in the adjacency list of its i-th
	// neighbor (same wiring as the other engines, from the shared O(n+m)
	// port table).
	pt := newPortTable(g)
	portAt := make([][]int, n)
	for v := 0; v < n; v++ {
		portAt[v] = make([]int, g.Degree(v))
		for i := range portAt[v] {
			portAt[v][i] = pt.reversePort(g, v, i)
		}
	}

	inboxes := make([][]Message, n)
	nextInboxes := make([][]Message, n)
	for v := 0; v < n; v++ {
		inboxes[v] = make([]Message, g.Degree(v))
		nextInboxes[v] = make([]Message, g.Degree(v))
	}
	done := make([]bool, n)
	doneAt := make([]int, n)
	outputs := make([]any, n)
	msgCount := 0

	// Metrics: the sequential engine records the same per-round counters as
	// the scheduler (the equivalence tests compare their deterministic
	// projections); with no collector the extra branches are dead.
	m := cfg.collector()
	measure := m.Enabled()
	var runID int
	if measure {
		runID = m.BeginRun("sequential", n)
	}

	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, Stats{}, fmt.Errorf("local: sequential engine exceeded %d rounds", maxRounds)
		}
		var roundStart time.Time
		if measure {
			roundStart = time.Now()
		}
		allDone := true
		active := 0
		sent, bytes := int64(0), int64(0)
		for v := 0; v < n; v++ {
			var outbox []Message
			if !done[v] && cfg.Fault.Crashes(v, round) {
				done[v] = true
				doneAt[v] = round
				outputs[v] = fault.CrashError{Node: v, Round: round}
				if measure {
					m.Emit("fault.crash", "", 1)
				}
			}
			if !done[v] {
				active++
				outbox, done[v] = machines[v].Round(round, inboxes[v])
				if done[v] {
					doneAt[v] = round
					outputs[v] = machines[v].Output()
				}
			}
			if !done[v] {
				allDone = false
			}
			for i := 0; i < g.Degree(v); i++ {
				var msg Message
				if i < len(outbox) {
					msg = outbox[i]
				}
				if msg != nil {
					msgCount++
					if measure {
						sent++
						bytes += obs.ApproxSize(msg)
					}
				}
				w := g.Neighbors(v)[i]
				nextInboxes[w][portAt[v][i]] = msg
			}
		}
		inboxes, nextInboxes = nextInboxes, inboxes
		for v := range nextInboxes {
			for i := range nextInboxes[v] {
				nextInboxes[v][i] = nil
			}
		}
		if measure {
			m.RecordRound(obs.RoundMetric{Engine: "sequential", Run: runID, Round: round,
				ActiveNodes: active, Messages: sent, Bytes: bytes,
				WallNanos: time.Since(roundStart).Nanoseconds()})
		}
		if allDone {
			break
		}
	}
	rounds := 0
	for _, r := range doneAt {
		if r > rounds {
			rounds = r
		}
	}
	return outputs, Stats{Rounds: rounds, Messages: msgCount}, nil
}
