package local

import (
	"fmt"

	"localadvice/internal/fault"
	"localadvice/internal/graph"
)

// RunSequential executes a message protocol with a single-threaded,
// perfectly deterministic round loop — the same semantics as Run (the
// sharded scheduler) and RunGoroutine, without concurrency or slab
// indexing. It exists as an independently-written third implementation:
// reproducible debugging of protocols and a triangulation point for the
// engines-agree tests (three separate engines agreeing is much stronger
// evidence than two).
func RunSequential(g *graph.Graph, protocol Protocol, advice Advice) ([]any, Stats, error) {
	return RunSequentialConfig(g, protocol, advice, RunConfig{})
}

// RunSequentialConfig is RunSequential with a RunConfig, for fault
// injection; the worker count is ignored (the engine is single-threaded by
// design). Crash semantics match RunMessageConfig exactly: the crashed node
// is marked done with a fault.CrashError output at its crash round and
// sends nothing from then on.
func RunSequentialConfig(g *graph.Graph, protocol Protocol, advice Advice, cfg RunConfig) ([]any, Stats, error) {
	if err := validateAdvice(g, advice); err != nil {
		return nil, Stats{}, err
	}
	g, advice = cfg.applyFault(g, advice)
	n := g.N()
	machines := newMachines(g, protocol, advice)

	// portAt[v][i]: the port of v in the adjacency list of its i-th
	// neighbor (same wiring as the other engines, from the shared O(n+m)
	// port table).
	pt := newPortTable(g)
	portAt := make([][]int, n)
	for v := 0; v < n; v++ {
		portAt[v] = make([]int, g.Degree(v))
		for i := range portAt[v] {
			portAt[v][i] = pt.reversePort(g, v, i)
		}
	}

	inboxes := make([][]Message, n)
	nextInboxes := make([][]Message, n)
	for v := 0; v < n; v++ {
		inboxes[v] = make([]Message, g.Degree(v))
		nextInboxes[v] = make([]Message, g.Degree(v))
	}
	done := make([]bool, n)
	doneAt := make([]int, n)
	outputs := make([]any, n)
	msgCount := 0

	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, Stats{}, fmt.Errorf("local: sequential engine exceeded %d rounds", maxRounds)
		}
		allDone := true
		for v := 0; v < n; v++ {
			var outbox []Message
			if !done[v] && cfg.Fault.Crashes(v, round) {
				done[v] = true
				doneAt[v] = round
				outputs[v] = fault.CrashError{Node: v, Round: round}
			}
			if !done[v] {
				outbox, done[v] = machines[v].Round(round, inboxes[v])
				if done[v] {
					doneAt[v] = round
					outputs[v] = machines[v].Output()
				}
			}
			if !done[v] {
				allDone = false
			}
			for i := 0; i < g.Degree(v); i++ {
				var m Message
				if i < len(outbox) {
					m = outbox[i]
				}
				if m != nil {
					msgCount++
				}
				w := g.Neighbors(v)[i]
				nextInboxes[w][portAt[v][i]] = m
			}
		}
		inboxes, nextInboxes = nextInboxes, inboxes
		for v := range nextInboxes {
			for i := range nextInboxes[v] {
				nextInboxes[v][i] = nil
			}
		}
		if allDone {
			break
		}
	}
	rounds := 0
	for _, r := range doneAt {
		if r > rounds {
			rounds = r
		}
	}
	return outputs, Stats{Rounds: rounds, Messages: msgCount}, nil
}
