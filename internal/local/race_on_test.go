//go:build race

package local

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
