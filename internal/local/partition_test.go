package local

import (
	"errors"
	"fmt"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

// stripedPartition assigns node v to shard v % workers — a legal partition
// with maximally non-contiguous shards, the stress case for the
// partitioned-equals-contiguous property.
func stripedPartition(g *graph.Graph, workers int) ([][]int32, error) {
	shards := make([][]int32, workers)
	for v := 0; v < g.N(); v++ {
		w := v % workers
		shards[w] = append(shards[w], int32(v))
	}
	return shards, nil
}

// reversedBlockPartition hands out the contiguous index blocks in reverse
// worker order, so worker 0 sweeps the highest indices.
func reversedBlockPartition(g *graph.Graph, workers int) ([][]int32, error) {
	n := g.N()
	block := (n + workers - 1) / workers
	shards := make([][]int32, workers)
	for w := 0; w < workers; w++ {
		lo := (workers - 1 - w) * block
		hi := min(lo+block, n)
		for v := lo; v < hi; v++ {
			shards[w] = append(shards[w], int32(v))
		}
	}
	return shards, nil
}

// TestSchedulerPartitionEquivalence pins the partition mechanism in
// isolation (no decomp dependency): any valid custom grouping — striped,
// reversed blocks — produces outputs and stats bit-identical to contiguous
// sharding, for every protocol, graph family and worker count.
func TestSchedulerPartitionEquivalence(t *testing.T) {
	partitions := map[string]Partition{
		"striped":  stripedPartition,
		"reversed": reversedBlockPartition,
	}
	for gname, g := range propertyGraphs(t, 3) {
		advice := make(Advice, g.N())
		for v := range advice {
			advice[v] = bitstr.New(v % 2)
		}
		for pname, p := range messageProtocols() {
			for _, w := range []int{2, 8} {
				refOut, refStats, err := RunMessageConfig(g, p, advice, RunConfig{Workers: w})
				if err != nil {
					t.Fatalf("%s/%s workers %d: contiguous: %v", gname, pname, w, err)
				}
				for name, part := range partitions {
					out, stats, err := RunMessageConfig(g, p, advice, RunConfig{Workers: w, Partition: part})
					if err != nil {
						t.Fatalf("%s/%s workers %d %s: %v", gname, pname, w, name, err)
					}
					if stats != refStats {
						t.Fatalf("%s/%s workers %d %s: stats %+v, contiguous %+v",
							gname, pname, w, name, stats, refStats)
					}
					for v := range out {
						if out[v] != refOut[v] {
							t.Fatalf("%s/%s workers %d %s node %d: %v, contiguous %v",
								gname, pname, w, name, v, out[v], refOut[v])
						}
					}
				}
			}
		}
	}
}

// TestSchedulerPartitionValidation covers the ErrBadPartition contract:
// wrong shard count, out-of-range nodes, duplicates and dropped nodes all
// fail the run with the typed sentinel; a partition function's own error
// propagates; and with one worker the partition stage is never invoked.
func TestSchedulerPartitionValidation(t *testing.T) {
	g := graph.Cycle(12)
	p := &GatherProtocol{Radius: 1, Decide: viewFingerprint}
	bad := map[string]Partition{
		"wrong-count": func(g *graph.Graph, workers int) ([][]int32, error) {
			return make([][]int32, workers+1), nil
		},
		"out-of-range": func(g *graph.Graph, workers int) ([][]int32, error) {
			shards, _ := stripedPartition(g, workers)
			shards[0][0] = int32(g.N())
			return shards, nil
		},
		"negative-node": func(g *graph.Graph, workers int) ([][]int32, error) {
			shards, _ := stripedPartition(g, workers)
			shards[0][0] = -1
			return shards, nil
		},
		"duplicate": func(g *graph.Graph, workers int) ([][]int32, error) {
			shards, _ := stripedPartition(g, workers)
			shards[0] = append(shards[0], shards[1][0])
			return shards, nil
		},
		"dropped-node": func(g *graph.Graph, workers int) ([][]int32, error) {
			shards, _ := stripedPartition(g, workers)
			shards[0] = shards[0][:len(shards[0])-1]
			return shards, nil
		},
	}
	for name, part := range bad {
		_, _, err := RunMessageConfig(g, p, nil, RunConfig{Workers: 3, Partition: part})
		if !errors.Is(err, ErrBadPartition) {
			t.Errorf("%s: err = %v, want ErrBadPartition", name, err)
		}
	}

	sentinel := errors.New("partition exploded")
	_, _, err := RunMessageConfig(g, p, nil, RunConfig{
		Workers:   3,
		Partition: func(*graph.Graph, int) ([][]int32, error) { return nil, sentinel },
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("partition error did not propagate: %v", err)
	}

	called := false
	out, _, err := RunMessageConfig(g, p, nil, RunConfig{
		Workers: 1,
		Partition: func(*graph.Graph, int) ([][]int32, error) {
			called = true
			return nil, sentinel
		},
	})
	if err != nil || called {
		t.Fatalf("single-worker run invoked the partition stage (called=%v, err=%v)", called, err)
	}
	refOut, _, _ := RunSequential(g, p, nil)
	for v := range out {
		if out[v] != refOut[v] {
			t.Fatalf("node %d: %v, sequential %v", v, out[v], refOut[v])
		}
	}
}

// TestFrugalRadiusValidation is satellite 1's engine-boundary table: a
// negative ρ is a typed error, zero selects the documented default, and
// explicit positive radii shift the round overhead by exactly 2ρ+1.
func TestFrugalRadiusValidation(t *testing.T) {
	g := graph.Cycle(16)
	protocol := func() Protocol { return &GatherProtocol{Radius: 2, Decide: viewFingerprint} }
	_, refStats, err := RunSequential(g, protocol(), nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		rho        int
		wantErr    bool
		wantRounds int
	}{
		{rho: -1, wantErr: true},
		{rho: 0, wantRounds: refStats.Rounds + 2*DefaultFrugalRadius + 1},
		{rho: 1, wantRounds: refStats.Rounds + 3},
		{rho: 4, wantRounds: refStats.Rounds + 9},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("rho=%d", tc.rho), func(t *testing.T) {
			_, stats, err := RunFrugalConfig(g, protocol(), nil, RunConfig{FrugalRadius: tc.rho})
			if tc.wantErr {
				if !errors.Is(err, ErrFrugalRadius) {
					t.Fatalf("err = %v, want ErrFrugalRadius", err)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if stats.Rounds != tc.wantRounds {
				t.Fatalf("rounds = %d, want %d (protocol rounds %d + 2ρ+1)",
					stats.Rounds, tc.wantRounds, refStats.Rounds)
			}
		})
	}
}
