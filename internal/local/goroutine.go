package local

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// RunGoroutine executes protocol on g with the given advice (nil for none)
// using the goroutine-per-node message engine: one goroutine per node,
// per-edge buffered channels, and a cond-var barrier per round. It mirrors
// the LOCAL model operationally and is retained as the reference the sharded
// scheduler (Run) is pinned against by the engine-equivalence property
// tests; production callers should use Run.
func RunGoroutine(g *graph.Graph, protocol Protocol, advice Advice) ([]any, Stats, error) {
	return RunGoroutineConfig(g, protocol, advice, RunConfig{})
}

// RunGoroutineConfig is RunGoroutine with a RunConfig, for fault injection;
// the worker count is ignored (the engine is one-goroutine-per-node by
// design). Crash semantics match RunMessageConfig exactly, so the
// engine-equivalence property tests extend to faulty executions.
func RunGoroutineConfig(g *graph.Graph, protocol Protocol, advice Advice, cfg RunConfig) ([]any, Stats, error) {
	if err := validateAdvice(g, advice); err != nil {
		return nil, Stats{}, err
	}
	g, advice = cfg.applyFault(g, advice)
	n := g.N()

	// Per-directed-edge channels, buffered so that a round's sends never
	// block: ch[v][i] receives what v's i-th neighbor sent to v.
	ch := make([][]chan Message, n)
	for v := 0; v < n; v++ {
		ch[v] = make([]chan Message, g.Degree(v))
		for i := range ch[v] {
			ch[v][i] = make(chan Message, 1)
		}
	}
	// portAt[v][i] is the port index of v in the adjacency list of its i-th
	// neighbor, so v can address the right channel of the neighbor.
	pt := newPortTable(g)
	portAt := make([][]int, n)
	for v := 0; v < n; v++ {
		portAt[v] = make([]int, g.Degree(v))
		for i := range portAt[v] {
			portAt[v][i] = pt.reversePort(g, v, i)
		}
	}

	machines := newMachines(g, protocol, advice)

	outputs := make([]any, n)
	doneAt := make([]int, n)
	var msgCount atomic.Int64

	var wg sync.WaitGroup
	errs := make([]error, n)
	barrier := newBarrier(n)

	// Metrics: per-round counters accumulate in atomics as the node
	// goroutines run; the last goroutine to reach the barrier each round
	// records the RoundMetric and resets them (see barrier.onRound). The
	// counters are sums of order-independent integers, so they are
	// bit-identical to the scheduler's and the sequential engine's.
	m := cfg.collector()
	measure := m.Enabled()
	var roundActive, roundMsgs, roundBytes atomic.Int64
	if measure {
		runID := m.BeginRun("goroutine", n)
		roundStart := time.Now()
		barrier.onRound = func(round int) {
			now := time.Now()
			m.RecordRound(obs.RoundMetric{Engine: "goroutine", Run: runID, Round: round,
				ActiveNodes: int(roundActive.Load()), Messages: roundMsgs.Load(),
				Bytes: roundBytes.Load(), WallNanos: now.Sub(roundStart).Nanoseconds()})
			roundActive.Store(0)
			roundMsgs.Store(0)
			roundBytes.Store(0)
			roundStart = now
		}
	}

	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			deg := g.Degree(v)
			inbox := make([]Message, deg)
			done := false
			for round := 1; ; round++ {
				if round > maxRounds {
					errs[v] = fmt.Errorf("local: node %d exceeded %d rounds", v, maxRounds)
					barrier.cancel()
					return
				}
				var outbox []Message
				if !done && cfg.Fault.Crashes(v, round) {
					done = true
					doneAt[v] = round
					outputs[v] = fault.CrashError{Node: v, Round: round}
					if measure {
						m.Emit("fault.crash", "", 1)
					}
				}
				if !done {
					if measure {
						roundActive.Add(1)
					}
					outbox, done = machines[v].Round(round, inbox)
					if done {
						doneAt[v] = round
						outputs[v] = machines[v].Output()
					}
				}
				localMsgs := int64(0)
				for i := 0; i < deg; i++ {
					var m Message
					if i < len(outbox) {
						m = outbox[i]
					}
					if m != nil {
						localMsgs++
						if measure {
							roundBytes.Add(obs.ApproxSize(m))
						}
					}
					w := g.Neighbors(v)[i]
					ch[w][portAt[v][i]] <- m
				}
				if localMsgs > 0 {
					msgCount.Add(localMsgs)
					if measure {
						roundMsgs.Add(localMsgs)
					}
				}
				for i := 0; i < deg; i++ {
					inbox[i] = <-ch[v][i]
				}
				// Global termination: wait at the barrier; stop when every
				// node reported done.
				allDone, cancelled := barrier.wait(done)
				if cancelled {
					return
				}
				if allDone {
					return
				}
			}
		}(v)
	}
	wg.Wait()

	for v := 0; v < n; v++ {
		if errs[v] != nil {
			return nil, Stats{}, errs[v]
		}
	}
	rounds := 0
	for _, r := range doneAt {
		if r > rounds {
			rounds = r
		}
	}
	return outputs, Stats{Rounds: rounds, Messages: int(msgCount.Load())}, nil
}

// barrier synchronizes n goroutines at the end of each round and aggregates
// a per-node done flag; wait returns allDone=true when every participant
// passed done=true this round. When onRound is set, the last goroutine to
// arrive each round calls it (under the barrier lock, before releasing the
// others) with the 1-based round number that just completed — the metrics
// layer's per-round recording point.
type barrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	n         int
	arrived   int
	doneCount int
	gen       int
	allDone   bool
	cancelled bool
	onRound   func(round int)
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait(done bool) (allDone, cancelled bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cancelled {
		return false, true
	}
	gen := b.gen
	b.arrived++
	if done {
		b.doneCount++
	}
	if b.arrived == b.n {
		b.allDone = b.doneCount == b.n
		b.arrived = 0
		b.doneCount = 0
		b.gen++
		if b.onRound != nil {
			b.onRound(b.gen)
		}
		b.cond.Broadcast()
		return b.allDone, false
	}
	for gen == b.gen && !b.cancelled {
		b.cond.Wait()
	}
	return b.allDone, b.cancelled
}

func (b *barrier) cancel() {
	b.mu.Lock()
	b.cancelled = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
