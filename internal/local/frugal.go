package local

import (
	"fmt"
	"reflect"

	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// This file implements the bandwidth-frugal engine: the fifth engine, and
// the first one that optimizes *messages* rather than rounds or wall time.
//
// Following Bitton–Emek–Izumi–Kutten ("Message Reduction in the LOCAL Model
// is a Free Lunch"), any LOCAL protocol can be simulated on a sparse
// skeleton — a ρ-dominating set of cluster centers, BFS trees of depth <= ρ
// inside each cluster, and one representative edge per adjacent cluster
// pair — so that each round's traffic is aggregated at centers and forwarded
// along skeleton edges only. The skeleton has o(m) edges on dense graphs,
// and each simulated round costs a constant 2ρ+1 real rounds of pipelined
// forwarding.
//
// The engine runs the EXACT stock sharded scheduler (runSchedulerCore) so
// that outputs, fault semantics and termination are bit-identical to the
// other four engines at every worker count, and accounts the skeleton
// transport in a post-sweep hook:
//
//   - Change suppression ("silence means unchanged"): a directed edge only
//     contributes traffic in rounds where its payload differs from the
//     previous round's. A receiver that hears nothing re-uses the last
//     payload — the standard trick that makes flooding-style protocols
//     nearly free after the wavefront passes.
//   - Aggregation: changed payloads ride up the sender's cluster tree to
//     its center, across the single representative edge if the receiver is
//     in another cluster, and down the receiver's tree. Each skeleton edge
//     carries at most one aggregated bundle per direction per round, so
//     per-round transport messages are bounded by 2·(TreeEdges+CrossEdges)
//     regardless of how many protocol messages changed.
//   - Bytes are not aggregated away: every changed payload is charged
//     obs.ApproxSize times the number of skeleton hops it travels, so byte
//     totals reflect real bandwidth, not just envelope counts.

// DefaultFrugalRadius is the skeleton cluster radius ρ used when
// RunConfig.FrugalRadius is unset (zero). ρ=2 keeps the round overhead at
// 2ρ+1 = 5 while already collapsing grid/torus neighborhoods into few
// clusters.
const DefaultFrugalRadius = 2

// RunFrugal executes protocol on g with the given advice using the
// bandwidth-frugal engine and the default skeleton radius. Outputs are
// bit-identical to Run / RunGoroutine / RunSequential; Stats.Messages is
// the skeleton transport total (typically far below the stock engines'),
// and Stats.Rounds includes the 2ρ+1 pipelined forwarding overhead.
func RunFrugal(g *graph.Graph, protocol Protocol, advice Advice) ([]any, Stats, error) {
	return RunFrugalConfig(g, protocol, advice, RunConfig{})
}

// RunFrugalConfig is RunFrugal with an explicit RunConfig: worker count,
// fault plan, metrics collector, and skeleton radius (FrugalRadius; zero
// selects DefaultFrugalRadius, negative values are an error wrapping
// ErrFrugalRadius — they used to fall through to the default silently,
// hiding caller bugs). Fault plans behave exactly as in RunMessageConfig —
// the same sweep executes, so crash rounds, advice flips and ID
// reassignment produce identical outputs and typed errors.
//
// When a metrics collector is installed, each RoundMetric reports the
// skeleton transport in Messages/Bytes and the simulated protocol's own
// traffic in LogicalMessages/LogicalBytes; the ratio of the two is the
// engine's measured message reduction.
func RunFrugalConfig(g *graph.Graph, protocol Protocol, advice Advice, cfg RunConfig) ([]any, Stats, error) {
	rho := cfg.FrugalRadius
	if rho < 0 {
		return nil, Stats{}, fmt.Errorf("%w: FrugalRadius %d is negative (0 selects the default ρ=%d)",
			ErrFrugalRadius, rho, DefaultFrugalRadius)
	}
	if rho == 0 {
		rho = DefaultFrugalRadius
	}
	hk := &schedHook{
		engine: "frugal",
		init: func(g *graph.Graph, pt portTable) func(int, []Message, []Message) (int64, int64) {
			return newFrugalAccountant(g, rho, pt).account
		},
	}
	outputs, st, err := runSchedulerCore(g, protocol, advice, cfg, hk)
	if err != nil {
		return outputs, st, err
	}
	if st.Rounds > 0 {
		// Each simulated round is pipelined over 2ρ+1 real rounds of
		// skeleton forwarding; with pipelining the whole run pays the
		// overhead once, as latency.
		st.Rounds += 2*rho + 1
	}
	return outputs, st, nil
}

// frugalAccountant charges each round's changed payloads to skeleton edges.
// It is invoked single-threaded between the sweep barrier and the slab
// swap, so it may keep plain (unsynchronized) per-round stamp state.
type frugalAccountant struct {
	sk  *graph.Skeleton
	csr *graph.CSR
	pt  portTable
	// upStamp[x] == round means the tree edge x→Parent[x] already carries
	// an upward bundle this round; downStamp is the downward direction.
	// cross[cu<<32|cv] == round means the representative edge from cluster
	// cu to cluster cv already carries a bundle this round. Rounds start at
	// 1, so the zero value means "never charged".
	upStamp   []int32
	downStamp []int32
	cross     map[int64]int32
}

func newFrugalAccountant(g *graph.Graph, rho int, pt portTable) *frugalAccountant {
	n := g.N()
	return &frugalAccountant{
		sk:        graph.BuildSkeleton(g, rho, nil),
		csr:       g.Snapshot(),
		pt:        pt,
		upStamp:   make([]int32, n),
		downStamp: make([]int32, n),
		cross:     make(map[int64]int32),
	}
}

// account inspects one round's slabs (cur = previous round's sends, next =
// this round's) and returns the skeleton transport the round cost. Slot
// pt.off[v]+i holds the payload from v's i-th neighbor, so iterating
// receivers and ports visits every directed edge exactly once.
func (a *frugalAccountant) account(round int, cur, next []Message) (msgs, bytes int64) {
	stamp := int32(round)
	n := len(a.pt.off) - 1
	for v := 0; v < n; v++ {
		start := a.pt.off[v]
		for i, u := range a.csr.Neighbors(v) {
			s := start + int32(i)
			if msgEqual(cur[s], next[s]) {
				continue // suppressed: silence means unchanged
			}
			// The payload from sender u to receiver v changed: it rides
			// u's tree up to its center, across the representative edge if
			// the clusters differ, and down v's tree. Tree and cross edges
			// are stamped so each carries one aggregated bundle per
			// direction per round.
			msgs += a.chargeUp(int(u), stamp)
			msgs += a.chargeDown(v, stamp)
			hops := int64(a.sk.Depth[u]) + int64(a.sk.Depth[v])
			if cu, cv := a.sk.Cluster[u], a.sk.Cluster[v]; cu != cv {
				hops++
				key := int64(cu)<<32 | int64(cv)
				if a.cross[key] != stamp {
					a.cross[key] = stamp
					msgs++
				}
			}
			bytes += obs.ApproxSize(next[s]) * hops
		}
	}
	return msgs, bytes
}

// chargeUp charges the unstamped prefix of u's upward tree path. Once a
// node's up edge is stamped, everything above it was stamped by the same
// earlier walk, so the loop can stop at the first stamped node.
func (a *frugalAccountant) chargeUp(u int, stamp int32) (m int64) {
	for x := u; a.sk.Parent[x] >= 0; x = int(a.sk.Parent[x]) {
		if a.upStamp[x] == stamp {
			break
		}
		a.upStamp[x] = stamp
		m++
	}
	return m
}

// chargeDown is chargeUp for the downward direction (center toward v); the
// same stop-at-first-stamped argument applies top-down.
func (a *frugalAccountant) chargeDown(v int, stamp int32) (m int64) {
	for x := v; a.sk.Parent[x] >= 0; x = int(a.sk.Parent[x]) {
		if a.downStamp[x] == stamp {
			break
		}
		a.downStamp[x] = stamp
		m++
	}
	return m
}

// msgEqual reports whether two payloads are equal for change-suppression
// purposes: comparable values via ==, everything else via DeepEqual. A
// false negative only costs accuracy of the reduction (a payload is charged
// that could have been suppressed), never correctness — the protocol's real
// delivery goes through the slabs unchanged.
func msgEqual(a, b Message) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	ta := reflect.TypeOf(a)
	if ta != reflect.TypeOf(b) {
		return false
	}
	if ta.Comparable() {
		return a == b
	}
	return reflect.DeepEqual(a, b)
}

// FloodProtocol is the canonical workload where message frugality pays:
// the node with ID SourceID floods a constant token, every informed node
// re-broadcasts it each round, and all nodes run to a fixed horizon of
// Rounds rounds (the horizon must be at least the source's eccentricity
// for every node to be informed). Output is the node's informed flag.
//
// On the stock engines every informed node pays its degree in messages
// every round — Θ(m) per round once the flood saturates. Under the frugal
// engine the payload on an edge only changes the round its sender becomes
// informed, so change suppression reduces the traffic to the wavefront:
// each directed edge is charged O(ρ) skeleton hops once, total O(n·ρ)
// instead of Θ(m·Rounds). This is experiment E10's workload and the
// "msgred" bench section's.
type FloodProtocol struct {
	SourceID int64
	Rounds   int
}

// NewMachine implements Protocol.
func (p *FloodProtocol) NewMachine(info NodeInfo) Machine {
	return &floodMachine{
		horizon:  p.Rounds,
		deg:      info.Degree,
		informed: info.ID == p.SourceID,
	}
}

type floodMachine struct {
	horizon  int
	deg      int
	informed bool
	outbox   []Message
}

// Round implements Machine: become informed on any non-nil token, broadcast
// the constant token on every port while informed, terminate at the
// horizon. The outbox returned in the terminating round is still delivered
// (the engines' shared contract), but the payload never varies, so the run
// is change-free after the wavefront passes.
func (fm *floodMachine) Round(round int, inbox []Message) ([]Message, bool) {
	if !fm.informed {
		for _, msg := range inbox {
			if msg != nil {
				fm.informed = true
				break
			}
		}
	}
	done := round >= fm.horizon
	if !fm.informed {
		return nil, done
	}
	if fm.outbox == nil {
		fm.outbox = make([]Message, fm.deg)
		for i := range fm.outbox {
			fm.outbox[i] = 1
		}
	}
	return fm.outbox, done
}

// Output implements Machine.
func (fm *floodMachine) Output() any { return fm.informed }
