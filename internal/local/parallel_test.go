package local

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"strings"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

// viewFingerprint is a canonical summary of a view: sorted edge ID pairs
// plus sorted per-node (ID, advice, true degree, distance) tuples. Any
// difference between two views shows up in the fingerprint.
func viewFingerprint(view *View) any {
	edgeFPs := make([]string, 0, view.G.M())
	for _, e := range view.G.Edges() {
		a, b := view.G.ID(e.U), view.G.ID(e.V)
		if a > b {
			a, b = b, a
		}
		edgeFPs = append(edgeFPs, fingerprintEdge(a, b))
	}
	sort.Strings(edgeFPs)
	fp := strings.Join(edgeFPs, "")
	ids := make([]int64, view.G.N())
	for i := range ids {
		ids[i] = view.G.ID(i)
	}
	sortIDs(ids)
	for _, id := range ids {
		i := view.NodeByID(id)
		fp += fingerprintNode(id, view.Advice[i], view.TrueDegree[i], view.Dist[i])
	}
	return fmt.Sprintf("c%d|r%d|n%d|d%d|", view.G.ID(view.Center), view.Radius, view.N, view.Delta) + fp
}

// propertyGraphs is the generator sweep of the parallel/sequential
// equivalence property test: one representative per family, over a fixed
// seed set.
func propertyGraphs(t *testing.T, seed int64) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	reg, err := graph.RandomRegular(64, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	gs := map[string]*graph.Graph{
		"cycle":   graph.Cycle(40),
		"path":    graph.Path(23),
		"grid":    graph.Grid2D(6, 8),
		"torus":   graph.Torus2D(5, 7),
		"tree":    graph.CompleteBinaryTree(5),
		"star":    graph.Star(9),
		"regular": reg,
		"gnp":     graph.RandomGNP(48, 0.1, rng),
	}
	for _, g := range gs {
		graph.AssignPermutedIDs(g, rng)
	}
	return gs
}

// TestRunBallWorkerCountEquivalence is the determinism property test of the
// parallel view engine: for every graph family and seed, RunBall produces
// identical outputs and Stats with 1, 4, and GOMAXPROCS workers.
func TestRunBallWorkerCountEquivalence(t *testing.T) {
	workerCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, seed := range []int64{1, 2, 3} {
		for name, g := range propertyGraphs(t, seed) {
			rng := rand.New(rand.NewSource(seed * 100))
			advice := make(Advice, g.N())
			for v := range advice {
				advice[v] = bitstr.New(rng.Intn(2))
			}
			for _, radius := range []int{0, 1, 3} {
				baseOut, baseStats := RunBallConfig(g, advice, radius, viewFingerprint, RunConfig{Workers: workerCounts[0]})
				for _, w := range workerCounts[1:] {
					out, stats := RunBallConfig(g, advice, radius, viewFingerprint, RunConfig{Workers: w})
					if stats != baseStats {
						t.Fatalf("seed %d %s r=%d: stats differ with %d workers: %+v vs %+v",
							seed, name, radius, w, stats, baseStats)
					}
					for v := range out {
						if out[v] != baseOut[v] {
							t.Fatalf("seed %d %s r=%d node %d: output differs with %d workers\n1 worker: %v\n%d workers: %v",
								seed, name, radius, v, w, baseOut[v], w, out[v])
						}
					}
				}
				// The default engine (whatever heuristic it applies) must
				// agree as well.
				defOut, defStats := RunBall(g, advice, radius, viewFingerprint)
				if defStats != baseStats {
					t.Fatalf("seed %d %s r=%d: default-engine stats differ", seed, name, radius)
				}
				for v := range defOut {
					if defOut[v] != baseOut[v] {
						t.Fatalf("seed %d %s r=%d node %d: default engine differs", seed, name, radius, v)
					}
				}
			}
		}
	}
}

// TestMessageEngineAgreesWithParallelViewEngine checks that the goroutine
// message engine still assembles exactly the views the parallel ball engine
// hands out.
func TestMessageEngineAgreesWithParallelViewEngine(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for name, g := range propertyGraphs(t, 5) {
		advice := make(Advice, g.N())
		for v := range advice {
			advice[v] = bitstr.New(rng.Intn(2))
		}
		for _, radius := range []int{1, 2} {
			ballOut, _ := RunBallConfig(g, advice, radius, viewFingerprint, RunConfig{Workers: 4})
			msgOut, _, err := Run(g, &GatherProtocol{Radius: radius, Decide: viewFingerprint}, advice)
			if err != nil {
				t.Fatalf("%s radius %d: %v", name, radius, err)
			}
			for v := range ballOut {
				if ballOut[v] != msgOut[v] {
					t.Fatalf("%s radius %d node %d: engines disagree\nball: %v\nmsg:  %v",
						name, radius, v, ballOut[v], msgOut[v])
				}
			}
		}
	}
}

// TestViewBuilderReuse checks that one builder used across many nodes and
// graphs produces exactly what fresh standalone builds produce.
func TestViewBuilderReuse(t *testing.T) {
	b := NewViewBuilder()
	for _, g := range propertyGraphs(t, 9) {
		advice := make(Advice, g.N())
		for v := range advice {
			advice[v] = bitstr.New(v % 2)
		}
		for v := 0; v < g.N(); v += 3 {
			got := viewFingerprint(b.BuildView(g, advice, v, 2))
			want := viewFingerprint(BuildView(g, advice, v, 2))
			if got != want {
				t.Fatalf("reused builder differs at node %d", v)
			}
		}
	}
}

// TestViewsAreIndependent checks that views built by the same builder do not
// alias each other's storage (the returned View must be retainable).
func TestViewsAreIndependent(t *testing.T) {
	g := graph.Cycle(30)
	b := NewViewBuilder()
	v1 := b.BuildView(g, nil, 0, 2)
	fp1 := viewFingerprint(v1)
	_ = b.BuildView(g, nil, 15, 3) // would clobber v1 if storage were shared
	if viewFingerprint(v1) != fp1 {
		t.Fatal("a later BuildView mutated an earlier View")
	}
}

func TestAdviceLengthValidation(t *testing.T) {
	g := graph.Cycle(6)
	short := make(Advice, 3)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s accepted truncated advice", name)
			}
		}()
		f()
	}
	mustPanic("BuildView", func() { BuildView(g, short, 0, 1) })
	mustPanic("RunBall", func() { RunBall(g, short, 1, func(*View) any { return nil }) })
	mustPanic("RunBallConfig", func() {
		RunBallConfig(g, short, 1, func(*View) any { return nil }, RunConfig{Workers: 2})
	})
	// nil advice and exact-length advice stay accepted.
	BuildView(g, nil, 0, 1)
	BuildView(g, make(Advice, g.N()), 0, 1)
}

// TestRunBallLargeGraphDefaultParallel exercises the default engine above
// the parallel threshold against an explicit single worker.
func TestRunBallLargeGraphDefaultParallel(t *testing.T) {
	g := graph.Grid2D(20, 20) // 400 nodes >= parallelThreshold
	advice := make(Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(v % 2)
	}
	seqOut, seqStats := RunBallConfig(g, advice, 4, viewFingerprint, RunConfig{Workers: 1})
	parOut, parStats := RunBall(g, advice, 4, viewFingerprint)
	if seqStats != parStats {
		t.Fatalf("stats differ: %+v vs %+v", seqStats, parStats)
	}
	for v := range seqOut {
		if seqOut[v] != parOut[v] {
			t.Fatalf("node %d differs between default and single-worker engines", v)
		}
	}
}

// messageProtocols is the protocol sweep of the scheduler-equivalence
// property test: flooding with uniform termination, staggered termination,
// and the view-gathering protocol (whose outputs are full view fingerprints).
func messageProtocols() map[string]Protocol {
	return map[string]Protocol{
		"maxID3":  &maxIDProtocol{radius: 3},
		"stagger": earlyStopProtocol{},
		"gather":  &GatherProtocol{Radius: 2, Decide: viewFingerprint},
	}
}

// TestSchedulerMatchesGoroutineEngine is the engine-equivalence property
// test of the sharded scheduler: for every graph family, seed, and protocol,
// the scheduler with worker counts 1, 2, and 8, the default Run dispatch,
// and the sequential engine all produce outputs, rounds, and message counts
// identical to the goroutine engine.
func TestSchedulerMatchesGoroutineEngine(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		for gname, g := range propertyGraphs(t, seed) {
			rng := rand.New(rand.NewSource(seed * 31))
			advice := make(Advice, g.N())
			for v := range advice {
				advice[v] = bitstr.New(rng.Intn(2))
			}
			for pname, p := range messageProtocols() {
				refOut, refStats, err := RunGoroutine(g, p, advice)
				if err != nil {
					t.Fatalf("seed %d %s/%s: goroutine engine: %v", seed, gname, pname, err)
				}
				check := func(engine string, out []any, stats Stats, err error) {
					t.Helper()
					if err != nil {
						t.Fatalf("seed %d %s/%s: %s: %v", seed, gname, pname, engine, err)
					}
					if stats != refStats {
						t.Fatalf("seed %d %s/%s: %s stats %+v, goroutine %+v",
							seed, gname, pname, engine, stats, refStats)
					}
					for v := range out {
						if out[v] != refOut[v] {
							t.Fatalf("seed %d %s/%s node %d: %s output %v, goroutine %v",
								seed, gname, pname, v, engine, out[v], refOut[v])
						}
					}
				}
				for _, w := range []int{1, 2, 8} {
					out, stats, err := RunMessageConfig(g, p, advice, RunConfig{Workers: w})
					check(fmt.Sprintf("scheduler(workers=%d)", w), out, stats, err)
				}
				defOut, defStats, err := Run(g, p, advice)
				check("Run(default)", defOut, defStats, err)
				seqOut, seqStats, err := RunSequential(g, p, advice)
				check("sequential", seqOut, seqStats, err)
				// The frugal engine must produce bit-identical outputs at
				// every worker count. Its Stats count skeleton transport and
				// forwarding overhead instead of protocol traffic, so they
				// are pinned against the first frugal run (worker
				// independence) and the known 2ρ+1 round overhead rather
				// than against the goroutine engine.
				var frugalRef Stats
				for i, w := range []int{-1, 1, 8} {
					out, stats, err := RunFrugalConfig(g, p, advice, RunConfig{Workers: w})
					engine := fmt.Sprintf("frugal(workers=%d)", w)
					if err != nil {
						t.Fatalf("seed %d %s/%s: %s: %v", seed, gname, pname, engine, err)
					}
					if i == 0 {
						frugalRef = stats
					} else if stats != frugalRef {
						t.Fatalf("seed %d %s/%s: %s stats %+v, workers=-1 %+v",
							seed, gname, pname, engine, stats, frugalRef)
					}
					for v := range out {
						if out[v] != refOut[v] {
							t.Fatalf("seed %d %s/%s node %d: %s output %v, goroutine %v",
								seed, gname, pname, v, engine, out[v], refOut[v])
						}
					}
				}
				if want := refStats.Rounds + 2*DefaultFrugalRadius + 1; frugalRef.Rounds != want {
					t.Fatalf("seed %d %s/%s: frugal rounds %d, want %d (protocol rounds + 2ρ+1)",
						seed, gname, pname, frugalRef.Rounds, want)
				}
			}
		}
	}
}

// neverDoneProtocol never terminates; the scheduler must fail at maxRounds
// instead of spinning forever.
type neverDoneProtocol struct{}

type neverDoneMachine struct{ degree int }

func (neverDoneProtocol) NewMachine(info NodeInfo) Machine {
	return &neverDoneMachine{degree: info.Degree}
}

func (m *neverDoneMachine) Round(int, []Message) ([]Message, bool) {
	return make([]Message, m.degree), false
}

func (m *neverDoneMachine) Output() any { return nil }

func TestSchedulerMaxRounds(t *testing.T) {
	if testing.Short() {
		t.Skip("spins maxRounds rounds")
	}
	if _, _, err := Run(graph.Path(2), neverDoneProtocol{}, nil); err == nil {
		t.Fatal("non-terminating protocol did not error")
	}
}

// TestPortTableMatchesNestedScan pins the O(n+m) reverse-port derivation
// against the historical O(Σ deg(v)·deg(w)) nested-neighbor definition,
// including on a graph whose adjacency order was permuted by ID sorting.
func TestPortTableMatchesNestedScan(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	sorted := graph.RandomGNP(30, 0.2, rng)
	graph.AssignPermutedIDs(sorted, rng)
	sorted.SortAdjacencyByID()
	gs := map[string]*graph.Graph{
		"grid":     graph.Grid2D(5, 6),
		"star":     graph.Star(7),
		"isolated": graph.New(4),
		"gnp":      graph.RandomGNP(25, 0.15, rng),
		"sortedID": sorted,
	}
	for name, g := range gs {
		pt := newPortTable(g)
		for v := 0; v < g.N(); v++ {
			if got, want := int(pt.off[v+1]-pt.off[v]), g.Degree(v); got != want {
				t.Fatalf("%s: node %d has %d slots, degree %d", name, v, got, want)
			}
			for i, w := range g.Neighbors(v) {
				want := -1
				for j, u := range g.Neighbors(w) {
					if u == v && g.IncidentEdges(w)[j] == g.IncidentEdges(v)[i] {
						want = j
					}
				}
				if got := pt.reversePort(g, v, i); got != want {
					t.Fatalf("%s: reversePort(%d, %d) = %d, nested scan says %d", name, v, i, got, want)
				}
			}
		}
	}
}
