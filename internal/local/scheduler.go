package local

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"localadvice/internal/bitstr"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// This file implements the sharded synchronous-round scheduler, the default
// message engine behind Run. The LOCAL model charges only for rounds, never
// for messages ("message reduction is a free lunch"), so the simulator is
// free to replace physical message passing with shared memory as long as the
// round semantics are preserved exactly.
//
// Layout: the per-port inboxes of all nodes live in two flat []Message slabs
// (cur and next) indexed by the CSR portTable — no per-edge channels, no
// per-node inbox allocations. Each round every node reads its inbox slice
// from cur and writes one message per port into next at the precomputed
// reverse-port slot of the receiving neighbor. Every directed slot has
// exactly one writer per round (the unique sender on that edge) and cur is
// read-only while next is written, so shards of nodes can be swept by
// parallel workers without locks; the only synchronization is the WaitGroup
// join at the end of each round, after which the slabs swap roles.
//
// Determinism: outputs, doneAt, and done flags are written by node index,
// message counts are summed (order-independent), and machines communicate
// only through the slabs — so outputs, Stats.Rounds, and Stats.Messages are
// bit-identical for every worker count and identical to the goroutine and
// sequential engines.

// newMachines instantiates one protocol machine per node; shared by all
// message engines so NodeInfo construction cannot drift between them.
func newMachines(g *graph.Graph, protocol Protocol, advice Advice) []Machine {
	n := g.N()
	delta := g.MaxDegree()
	machines := make([]Machine, n)
	for v := 0; v < n; v++ {
		var adv bitstr.String
		if v < len(advice) {
			adv = advice[v]
		}
		machines[v] = protocol.NewMachine(NodeInfo{
			ID:     g.ID(v),
			Degree: g.Degree(v),
			N:      n,
			Delta:  delta,
			Advice: adv,
		})
	}
	return machines
}

// Run executes protocol on g with the given advice (nil for none) using the
// sharded synchronous-round scheduler and returns each node's output plus
// execution stats. Small graphs run on a single worker (fan-out overhead
// dominates there); large graphs use the process default worker count (see
// SetDefaultWorkers). Outputs and Stats are identical for any worker count,
// and identical to RunGoroutine and RunSequential.
func Run(g *graph.Graph, protocol Protocol, advice Advice) ([]any, Stats, error) {
	workers := int(defaultWorkers.Load())
	if g.N() < parallelThreshold && workers == 0 {
		workers = 1
	}
	return RunMessageConfig(g, protocol, advice, RunConfig{Workers: workers})
}

// RunMessageConfig is Run with an explicit RunConfig: a worker count
// (resolved by RunConfig.normalize — the single place the contract is
// documented), optional fault injection, and optional metrics collection.
// Malformed advice is reported as an error (wrapping ErrAdviceLength)
// before the engine starts.
// Under an active cfg.Fault, advice corruption and ID reassignment are
// applied up front; a crashed node stops participating at its crash round
// (it sends nothing from then on and its output slot holds a
// fault.CrashError), and — unlike in the ball engine — its silence is
// observable by neighbors, whose views from that round on are missing the
// crashed node's contributions.
func RunMessageConfig(g *graph.Graph, protocol Protocol, advice Advice, cfg RunConfig) ([]any, Stats, error) {
	return runSchedulerCore(g, protocol, advice, cfg, nil)
}

// schedHook customizes the scheduler core for a transport-accounting engine
// (today: the frugal engine). The init factory runs once, after fault
// injection (so the skeleton is built on the faulted graph) and before the
// first round; the closure it returns runs single-threaded after each
// round's sweep barrier, sees the previous round's sends in cur and this
// round's in next, and returns the transport messages and bytes the round
// cost. When a hook is installed, Stats.Messages and the per-round
// RoundMetric Messages/Bytes report the hook's transport numbers, and the
// protocol's own traffic moves to LogicalMessages/LogicalBytes.
type schedHook struct {
	engine string
	init   func(g *graph.Graph, pt portTable) func(round int, cur, next []Message) (msgs, bytes int64)
}

// runSchedulerCore is the sharded synchronous-round scheduler shared by
// RunMessageConfig (nil hook) and RunFrugalConfig. The sweep, fault and
// termination semantics are identical in both cases — a hook only observes
// the slabs between the barrier and the swap — which is what pins the
// frugal engine's outputs bit-identical to the stock engines.
func runSchedulerCore(g *graph.Graph, protocol Protocol, advice Advice, cfg RunConfig, hk *schedHook) ([]any, Stats, error) {
	if err := validateAdvice(g, advice); err != nil {
		return nil, Stats{}, err
	}
	g, advice = cfg.applyFault(g, advice)
	n := g.N()
	workers := cfg.normalize(n)
	shards, err := cfg.resolveShards(g, workers)
	if err != nil {
		return nil, Stats{}, err
	}

	pt := newPortTable(g)
	engine := "scheduler"
	var account func(round int, cur, next []Message) (int64, int64)
	if hk != nil {
		engine = hk.engine
		account = hk.init(g, pt)
	}
	machines := newMachines(g, protocol, advice)
	cur := make([]Message, pt.slots())
	next := make([]Message, pt.slots())
	done := make([]bool, n)
	doneAt := make([]int, n)
	outputs := make([]any, n)
	var msgCount atomic.Int64

	// Metrics: when a collector is installed, each shard additionally
	// counts active nodes and payload bytes, and each worker times its
	// sweep; the round loop aggregates and records one RoundMetric per
	// round. Messages, bytes and active counts are per-shard sums of
	// order-independent integers, so they are bit-identical for every
	// worker count. With no collector every extra branch below is a single
	// predictable bool test and no allocation happens.
	m := cfg.collector()
	measure := m.Enabled()
	var runID int
	if measure {
		runID = m.BeginRun(engine, n)
	}

	// sweepStats carries one shard's per-round aggregates back to the
	// round loop.
	type sweepStats struct {
		sent    int64
		bytes   int64
		active  int
		allDone bool
	}

	// sweepNode advances one node by one round: read the inbox from cur,
	// step the machine, deliver the outbox into next. Shared verbatim by
	// the contiguous-range and partitioned sweeps, which is what pins
	// partitioned outputs bit-identical to contiguous sharding.
	sweepNode := func(v, round int, cur, next []Message, st *sweepStats) {
		start, end := pt.off[v], pt.off[v+1]
		var outbox []Message
		if !done[v] && cfg.Fault.Crashes(v, round) {
			// The node stops participating: it is marked done (so the
			// run terminates) with a CrashError output, and from this
			// round on all its ports carry nil.
			done[v] = true
			doneAt[v] = round
			outputs[v] = fault.CrashError{Node: v, Round: round}
			if measure {
				m.Emit("fault.crash", "", 1)
			}
		}
		if !done[v] {
			st.active++
			// The inbox slice aliases the slab and is valid only for
			// the duration of the call (same contract as the other
			// engines, which reuse a per-node buffer).
			outbox, done[v] = machines[v].Round(round, cur[start:end])
			if done[v] {
				doneAt[v] = round
				outputs[v] = machines[v].Output()
			}
		}
		if !done[v] {
			st.allDone = false
		}
		// Every port is written every round — nil from terminated or
		// silent nodes — so next never needs clearing between rounds.
		deg := int(end - start)
		for i := 0; i < deg; i++ {
			var msg Message
			if i < len(outbox) {
				msg = outbox[i]
			}
			if msg != nil {
				st.sent++
				if measure {
					st.bytes += obs.ApproxSize(msg)
				}
			}
			next[pt.sendSlot[start+int32(i)]] = msg
		}
	}

	// sweep advances every node in [lo, hi) by one round — the contiguous
	// index shard of the default sharding.
	sweep := func(lo, hi, round int, cur, next []Message) sweepStats {
		st := sweepStats{allDone: true}
		for v := lo; v < hi; v++ {
			sweepNode(v, round, cur, next, &st)
		}
		if st.sent > 0 {
			msgCount.Add(st.sent)
		}
		return st
	}

	// sweepList is sweep over an explicit node list — one shard of a
	// cfg.Partition grouping.
	sweepList := func(nodes []int32, round int, cur, next []Message) sweepStats {
		st := sweepStats{allDone: true}
		for _, v := range nodes {
			sweepNode(int(v), round, cur, next, &st)
		}
		if st.sent > 0 {
			msgCount.Add(st.sent)
		}
		return st
	}

	shard := 0
	var hookMsgs int64
	var shardStats []sweepStats
	var shardNanos []int64
	if workers > 1 {
		shard = (n + workers - 1) / workers
		shardStats = make([]sweepStats, workers)
	}
	if measure && workers > 1 {
		shardNanos = make([]int64, workers)
	}
	for round := 1; ; round++ {
		if round > maxRounds {
			return nil, Stats{}, fmt.Errorf("local: scheduler exceeded %d rounds", maxRounds)
		}
		var roundStart time.Time
		if measure {
			roundStart = time.Now()
		}
		var total sweepStats
		if workers <= 1 {
			total = sweep(0, n, round, cur, next)
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo, hi := 0, 0
				var nodes []int32
				if shards != nil {
					nodes = shards[w]
					if len(nodes) == 0 {
						shardStats[w] = sweepStats{allDone: true}
						continue
					}
				} else {
					lo = w * shard
					hi = min(lo+shard, n)
					if lo >= hi {
						shardStats[w] = sweepStats{allDone: true}
						continue
					}
				}
				wg.Add(1)
				go func(w, lo, hi int, nodes []int32) {
					defer wg.Done()
					run := func() sweepStats {
						if nodes != nil {
							return sweepList(nodes, round, cur, next)
						}
						return sweep(lo, hi, round, cur, next)
					}
					if measure {
						shardStart := time.Now()
						shardStats[w] = run()
						shardNanos[w] = time.Since(shardStart).Nanoseconds()
					} else {
						shardStats[w] = run()
					}
				}(w, lo, hi, nodes)
			}
			wg.Wait()
			total = sweepStats{allDone: true}
			for _, st := range shardStats {
				total.sent += st.sent
				total.bytes += st.bytes
				total.active += st.active
				total.allDone = total.allDone && st.allDone
			}
		}
		// The accounting hook runs single-threaded between the sweep
		// barrier and the slab swap — whether or not metrics are on,
		// because its totals feed Stats.Messages.
		var hkSent, hkBytes int64
		if account != nil {
			hkSent, hkBytes = account(round, cur, next)
			hookMsgs += hkSent
		}
		if measure {
			rm := obs.RoundMetric{Engine: engine, Run: runID, Round: round,
				ActiveNodes: total.active, Messages: total.sent, Bytes: total.bytes,
				WallNanos: time.Since(roundStart).Nanoseconds()}
			if account != nil {
				// Transport vs logical split: Messages/Bytes are what the
				// skeleton actually carried, the protocol's own traffic
				// moves to the Logical* fields.
				rm.Messages, rm.Bytes = hkSent, hkBytes
				rm.LogicalMessages, rm.LogicalBytes = total.sent, total.bytes
			}
			if shardNanos != nil {
				rm.ShardNanos = append([]int64(nil), shardNanos...)
			}
			m.RecordRound(rm)
		}
		cur, next = next, cur
		if total.allDone {
			break
		}
	}

	rounds := 0
	for _, r := range doneAt {
		if r > rounds {
			rounds = r
		}
	}
	messages := int(msgCount.Load())
	if hk != nil {
		messages = int(hookMsgs)
	}
	return outputs, Stats{Rounds: rounds, Messages: messages}, nil
}
