package local

import (
	"fmt"
	"reflect"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/obs"
)

// deterministicRounds extracts the worker-independent projection of a
// collector's round metrics.
func deterministicRounds(c *obs.Collector) []obs.RoundMetric {
	rounds := c.Rounds()
	out := make([]obs.RoundMetric, len(rounds))
	for i, r := range rounds {
		out[i] = r.Deterministic()
	}
	return out
}

// TestMetricsWorkerCountDeterminism is the acceptance gate for the metrics
// layer: the scheduler's per-round counters (round, active nodes, messages,
// bytes) must agree bit-for-bit across workers ∈ {-1, 1, 8}, and the ball
// engine's single round record likewise.
func TestMetricsWorkerCountDeterminism(t *testing.T) {
	g := graph.Grid2D(12, 12)
	var want []obs.RoundMetric
	var wantOut string
	for _, workers := range []int{-1, 1, 8} {
		c := &obs.Collector{}
		outputs, _, err := RunMessageConfig(g, &GatherProtocol{Radius: 2, Decide: gatherDecide}, nil,
			RunConfig{Workers: workers, Metrics: c})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := deterministicRounds(c)
		if len(got) == 0 {
			t.Fatalf("workers=%d recorded no rounds", workers)
		}
		out := fmt.Sprintf("%v", outputs)
		if want == nil {
			want, wantOut = got, out
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: per-round metrics differ\n got: %+v\nwant: %+v", workers, got, want)
		}
		if out != wantOut {
			t.Errorf("workers=%d: outputs differ", workers)
		}
	}

	var wantBall []obs.RoundMetric
	for _, workers := range []int{-1, 1, 8} {
		c := &obs.Collector{}
		if _, _, err := TryRunBallConfig(g, nil, 2, gatherDecide, RunConfig{Workers: workers, Metrics: c}); err != nil {
			t.Fatalf("ball workers=%d: %v", workers, err)
		}
		got := deterministicRounds(c)
		if wantBall == nil {
			wantBall = got
			continue
		}
		if !reflect.DeepEqual(got, wantBall) {
			t.Errorf("ball workers=%d: metrics differ\n got: %+v\nwant: %+v", workers, got, wantBall)
		}
	}
}

// TestMetricsEngineAgreement pins that the deterministic counters agree
// across the three message engines (modulo the Engine label): same rounds,
// same active-node profile, same per-round message and byte counts.
func TestMetricsEngineAgreement(t *testing.T) {
	g := graph.Torus2D(6, 6)
	protocol := func() *GatherProtocol { return &GatherProtocol{Radius: 2, Decide: gatherDecide} }
	type runFn func(c *obs.Collector) error
	runs := map[string]runFn{
		"scheduler": func(c *obs.Collector) error {
			_, _, err := RunMessageConfig(g, protocol(), nil, RunConfig{Workers: 2, Metrics: c})
			return err
		},
		"sequential": func(c *obs.Collector) error {
			_, _, err := RunSequentialConfig(g, protocol(), nil, RunConfig{Metrics: c})
			return err
		},
		"goroutine": func(c *obs.Collector) error {
			_, _, err := RunGoroutineConfig(g, protocol(), nil, RunConfig{Metrics: c})
			return err
		},
	}
	var want []obs.RoundMetric
	var wantFrom string
	for name, run := range runs {
		c := &obs.Collector{}
		if err := run(c); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		got := deterministicRounds(c)
		for i := range got {
			got[i].Engine = "" // engines differ only in the label
		}
		if want == nil {
			want, wantFrom = got, name
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s metrics differ from %s\n got: %+v\nwant: %+v", name, wantFrom, got, want)
		}
	}
}

// TestMetricsDisabledIdenticalOutputs is the other acceptance half: with
// Metrics nil all four engines produce byte-identical outputs and stats to
// a metrics-enabled run (the instrumentation observes, never perturbs).
func TestMetricsDisabledIdenticalOutputs(t *testing.T) {
	g := graph.Cycle(48)
	protocol := func() *GatherProtocol { return &GatherProtocol{Radius: 3, Decide: gatherDecide} }
	type engine struct {
		name string
		run  func(cfg RunConfig) ([]any, Stats, error)
	}
	engines := []engine{
		{"scheduler", func(cfg RunConfig) ([]any, Stats, error) {
			return RunMessageConfig(g, protocol(), nil, cfg)
		}},
		{"sequential", func(cfg RunConfig) ([]any, Stats, error) {
			return RunSequentialConfig(g, protocol(), nil, cfg)
		}},
		{"goroutine", func(cfg RunConfig) ([]any, Stats, error) {
			return RunGoroutineConfig(g, protocol(), nil, cfg)
		}},
		{"ball", func(cfg RunConfig) ([]any, Stats, error) {
			return TryRunBallConfig(g, nil, 3, gatherDecide, cfg)
		}},
	}
	for _, e := range engines {
		off, offStats, err := e.run(RunConfig{Workers: 2})
		if err != nil {
			t.Fatalf("%s disabled: %v", e.name, err)
		}
		c := &obs.Collector{}
		on, onStats, err := e.run(RunConfig{Workers: 2, Metrics: c})
		if err != nil {
			t.Fatalf("%s enabled: %v", e.name, err)
		}
		if fmt.Sprintf("%v", off) != fmt.Sprintf("%v", on) {
			t.Errorf("%s: outputs differ between metrics on/off", e.name)
		}
		if off2 := fmt.Sprintf("%v/%v", offStats, onStats); offStats != onStats {
			t.Errorf("%s: stats differ between metrics on/off: %s", e.name, off2)
		}
		if len(c.Rounds()) == 0 {
			t.Errorf("%s: enabled run recorded nothing", e.name)
		}
	}
}

// TestMetricsDisabledZeroAdditionalAllocations pins the zero-cost contract:
// with Metrics nil (and no process default installed), an engine run
// allocates exactly as much as a run with the zero RunConfig — the
// instrumentation adds nothing — and the nil-collector hooks themselves are
// allocation-free (see obs's own tests for the per-hook assertion).
func TestMetricsDisabledZeroAdditionalAllocations(t *testing.T) {
	if raceEnabled {
		t.Skip("race mode randomizes sync.Pool retention; allocation counts are not reproducible")
	}
	obs.SetDefault(nil)
	g := graph.Cycle(32)
	run := func(cfg RunConfig) {
		if _, _, err := RunSequentialConfig(g, &GatherProtocol{Radius: 2, Decide: gatherDecide}, nil, cfg); err != nil {
			t.Fatal(err)
		}
	}
	base := testing.AllocsPerRun(10, func() { run(RunConfig{}) })
	withNil := testing.AllocsPerRun(10, func() { run(RunConfig{Metrics: nil}) })
	if base != withNil {
		t.Errorf("nil Metrics changed allocations: base %.1f vs %.1f", base, withNil)
	}
	// The ball engine's disabled path likewise.
	ballBase := testing.AllocsPerRun(10, func() {
		if _, _, err := TryRunBallConfig(g, nil, 2, gatherDecide, RunConfig{Workers: -1}); err != nil {
			t.Fatal(err)
		}
	})
	ballNil := testing.AllocsPerRun(10, func() {
		if _, _, err := TryRunBallConfig(g, nil, 2, gatherDecide, RunConfig{Workers: -1, Metrics: nil}); err != nil {
			t.Fatal(err)
		}
	})
	if ballBase != ballNil {
		t.Errorf("ball: nil Metrics changed allocations: %.1f vs %.1f", ballBase, ballNil)
	}
}

// TestMetricsDefaultCollectorFallback: engines report into the process-wide
// collector when RunConfig.Metrics is nil, mirroring SetDefaultWorkers.
func TestMetricsDefaultCollectorFallback(t *testing.T) {
	c := &obs.Collector{}
	obs.SetDefault(c)
	defer obs.SetDefault(nil)
	g := graph.Cycle(20)
	if _, _, err := RunSequentialConfig(g, &GatherProtocol{Radius: 1, Decide: gatherDecide}, nil, RunConfig{}); err != nil {
		t.Fatal(err)
	}
	if len(c.Rounds()) == 0 {
		t.Fatal("default collector saw no rounds")
	}
	// An explicit collector wins over the default.
	explicit := &obs.Collector{}
	if _, _, err := RunSequentialConfig(g, &GatherProtocol{Radius: 1, Decide: gatherDecide}, nil, RunConfig{Metrics: explicit}); err != nil {
		t.Fatal(err)
	}
	if len(explicit.Rounds()) == 0 {
		t.Fatal("explicit collector saw no rounds")
	}
}

// TestMetricsFaultEvents: injected damage and crash activations surface as
// events, identically across engines.
func TestMetricsFaultEvents(t *testing.T) {
	g := graph.Cycle(24)
	advice := make(Advice, g.N())
	for v := range advice {
		advice[v] = bitstrOnes(4)
	}
	plan := &fault.Plan{Seed: 7, FlipRate: 0.5, CrashNode: 3, CrashRound: 2}
	totals := func(c *obs.Collector) (flipped, crashes int64) {
		for _, e := range c.Events() {
			switch e.Kind {
			case "fault.flipped_bits":
				flipped += e.Value
			case "fault.crash":
				crashes += e.Value
			}
		}
		return
	}
	var wantFlipped int64 = -1
	for _, engine := range []string{"scheduler", "sequential", "goroutine"} {
		c := &obs.Collector{}
		cfg := RunConfig{Fault: plan, Metrics: c}
		var err error
		switch engine {
		case "scheduler":
			_, _, err = RunMessageConfig(g, &GatherProtocol{Radius: 2, Decide: gatherDecide}, advice, cfg)
		case "sequential":
			_, _, err = RunSequentialConfig(g, &GatherProtocol{Radius: 2, Decide: gatherDecide}, advice, cfg)
		case "goroutine":
			_, _, err = RunGoroutineConfig(g, &GatherProtocol{Radius: 2, Decide: gatherDecide}, advice, cfg)
		}
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		flipped, crashes := totals(c)
		if flipped == 0 {
			t.Errorf("%s: no fault.flipped_bits event", engine)
		}
		if crashes != 1 {
			t.Errorf("%s: fault.crash total = %d, want 1", engine, crashes)
		}
		if wantFlipped == -1 {
			wantFlipped = flipped
		} else if flipped != wantFlipped {
			t.Errorf("%s: flipped %d bits, other engines flipped %d", engine, flipped, wantFlipped)
		}
	}
}

// bitstrOnes builds an all-ones advice string of the given length.
func bitstrOnes(n int) bitstr.String {
	bits := make([]int, n)
	for i := range bits {
		bits[i] = 1
	}
	return bitstr.New(bits...)
}
