package local

import "errors"

// Typed errors of the engine surface. The Try* entry points return errors
// wrapping these sentinels; the historical non-Try signatures panic with the
// same wrapped error so that engine-internal invariant violations still fail
// loudly in code that has already validated its inputs.
var (
	// ErrAdviceLength tags runs whose advice assignment does not cover
	// every node of the graph (advice must be nil or have exactly N()
	// entries).
	ErrAdviceLength = errors.New("local: advice length mismatch")
)
