package local

import "errors"

// Typed errors of the engine surface. The Try* entry points return errors
// wrapping these sentinels; the historical non-Try signatures panic with the
// same wrapped error so that engine-internal invariant violations still fail
// loudly in code that has already validated its inputs.
var (
	// ErrAdviceLength tags runs whose advice assignment does not cover
	// every node of the graph (advice must be nil or have exactly N()
	// entries).
	ErrAdviceLength = errors.New("local: advice length mismatch")

	// ErrBadPartition tags scheduler runs whose RunConfig.Partition did not
	// return an exact partition of the node set: one list per worker, every
	// node in exactly one list.
	ErrBadPartition = errors.New("local: invalid scheduler partition")

	// ErrFrugalRadius tags frugal-engine runs configured with an invalid
	// skeleton cluster radius ρ: RunFrugalConfig rejects negative values
	// (0 is the documented use-the-default sentinel), and the locad CLI
	// additionally rejects an explicit -rho 0.
	ErrFrugalRadius = errors.New("local: invalid skeleton radius")
)
