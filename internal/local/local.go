// Package local simulates the LOCAL model of distributed computing used
// throughout the paper: an n-node graph whose nodes carry unique IDs from
// {1, ..., poly(n)}, synchronous rounds, unbounded message sizes, and
// unbounded local computation. The runtime of an algorithm is the number of
// rounds until every node has produced its output.
//
// Two execution models are provided, with multiple engines each.
//
// The message engine (Run) executes per-round state machines. Its default
// implementation is a sharded synchronous-round scheduler: double-buffered
// per-port inbox slabs indexed by a CSR port table, swept shard-by-shard by
// a worker pool each round (see scheduler.go). LOCAL-model cost is rounds,
// not messages, so replacing physical message passing with shared-memory
// delivery is free — the scheduler is bit-identical in outputs, rounds, and
// message counts to the operational engines. Those remain available:
// RunGoroutine (one goroutine per node, per-edge channels, a round barrier)
// and RunSequential (a single-threaded deterministic round loop), and the
// equivalence property tests pin all three against each other.
//
// The ball engine (RunBall) exploits the standard equivalence "a T-round
// LOCAL algorithm is a function of the radius-T view": it hands every node
// its radius-T view (topology, IDs, degrees, advice) and records T as the
// round count. All advice-schema decoders in this codebase are written
// against views.
//
// All engines account rounds identically, and the engine-equivalence tests
// in this package check they agree on reference protocols.
package local

import (
	"fmt"

	"localadvice/internal/bitstr"
)

// Advice assigns a bit string to every node (by node index). A nil Advice
// means "no advice"; missing entries read as empty strings.
type Advice []bitstr.String

// TotalBits returns the total number of advice bits over all nodes.
func (a Advice) TotalBits() int {
	total := 0
	for _, s := range a {
		total += s.Len()
	}
	return total
}

// MaxBits returns the largest per-node advice length (the β of Definition 2).
func (a Advice) MaxBits() int {
	m := 0
	for _, s := range a {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// OnesRatio returns n1/(n0+n1) for a 1-bit-per-node advice assignment (the
// sparsity measure of Definition 3). It returns an error unless every node
// holds exactly one bit.
func (a Advice) OnesRatio() (float64, error) {
	if len(a) == 0 {
		return 0, fmt.Errorf("local: empty advice")
	}
	ones := 0
	for v, s := range a {
		if s.Len() != 1 {
			return 0, fmt.Errorf("local: node %d holds %d bits, want exactly 1", v, s.Len())
		}
		ones += s.Ones()
	}
	return float64(ones) / float64(len(a)), nil
}

// BitHolders returns the indices of nodes with non-empty advice.
func (a Advice) BitHolders() []int {
	var out []int
	for v, s := range a {
		if s.Len() > 0 {
			out = append(out, v)
		}
	}
	return out
}

// Message is an arbitrary payload exchanged along an edge in one round.
// LOCAL places no bound on message size.
type Message any

// NodeInfo is the initial knowledge of a node in the LOCAL model: its own
// ID, degree, the global parameters n and Δ, and its advice string. Ports
// 0..Degree-1 address the incident edges; port order is the graph's
// adjacency order, but the node does not learn neighbor identities until
// messages arrive.
type NodeInfo struct {
	ID     int64
	Degree int
	N      int
	Delta  int
	Advice bitstr.String
}

// Machine is a per-node state machine for the message engine. Round is
// called once per round, starting at round 1, with inbox[i] holding the
// message received on port i (nil in round 1 and on ports whose neighbor
// sent nothing). The inbox slice is only valid for the duration of the
// call. It returns one outgoing message per port (the slice may be nil or
// contain nils) and done=true once the node has fixed its output. After
// done, the node keeps forwarding nil messages.
type Machine interface {
	Round(round int, inbox []Message) (outbox []Message, done bool)
	Output() any
}

// Protocol creates the per-node machines of a distributed algorithm.
type Protocol interface {
	NewMachine(info NodeInfo) Machine
}

// Stats reports the cost of an execution.
type Stats struct {
	Rounds   int // rounds until every node terminated
	Messages int // total non-nil messages delivered
}

// maxRounds caps executions so that a buggy protocol fails fast instead of
// hanging the test suite.
const maxRounds = 1 << 20
