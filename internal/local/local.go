// Package local simulates the LOCAL model of distributed computing used
// throughout the paper: an n-node graph whose nodes carry unique IDs from
// {1, ..., poly(n)}, synchronous rounds, unbounded message sizes, and
// unbounded local computation. The runtime of an algorithm is the number of
// rounds until every node has produced its output.
//
// Two execution engines are provided.
//
// The message engine (Run) spawns one goroutine per node; each round every
// node exchanges one message with each neighbor over per-edge channels and
// performs local computation. This mirrors the model operationally and is
// used by protocols that are naturally written as per-round state machines.
//
// The ball engine (RunBall) exploits the standard equivalence "a T-round
// LOCAL algorithm is a function of the radius-T view": it hands every node
// its radius-T view (topology, IDs, degrees, advice) and records T as the
// round count. All advice-schema decoders in this codebase are written
// against views.
//
// Both engines account rounds identically, and the engine-equivalence test
// in this package checks they agree on a reference protocol.
package local

import (
	"fmt"
	"sync"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

// Advice assigns a bit string to every node (by node index). A nil Advice
// means "no advice"; missing entries read as empty strings.
type Advice []bitstr.String

// TotalBits returns the total number of advice bits over all nodes.
func (a Advice) TotalBits() int {
	total := 0
	for _, s := range a {
		total += s.Len()
	}
	return total
}

// MaxBits returns the largest per-node advice length (the β of Definition 2).
func (a Advice) MaxBits() int {
	m := 0
	for _, s := range a {
		if s.Len() > m {
			m = s.Len()
		}
	}
	return m
}

// OnesRatio returns n1/(n0+n1) for a 1-bit-per-node advice assignment (the
// sparsity measure of Definition 3). It returns an error unless every node
// holds exactly one bit.
func (a Advice) OnesRatio() (float64, error) {
	if len(a) == 0 {
		return 0, fmt.Errorf("local: empty advice")
	}
	ones := 0
	for v, s := range a {
		if s.Len() != 1 {
			return 0, fmt.Errorf("local: node %d holds %d bits, want exactly 1", v, s.Len())
		}
		ones += s.Ones()
	}
	return float64(ones) / float64(len(a)), nil
}

// BitHolders returns the indices of nodes with non-empty advice.
func (a Advice) BitHolders() []int {
	var out []int
	for v, s := range a {
		if s.Len() > 0 {
			out = append(out, v)
		}
	}
	return out
}

// Message is an arbitrary payload exchanged along an edge in one round.
// LOCAL places no bound on message size.
type Message any

// NodeInfo is the initial knowledge of a node in the LOCAL model: its own
// ID, degree, the global parameters n and Δ, and its advice string. Ports
// 0..Degree-1 address the incident edges; port order is the graph's
// adjacency order, but the node does not learn neighbor identities until
// messages arrive.
type NodeInfo struct {
	ID     int64
	Degree int
	N      int
	Delta  int
	Advice bitstr.String
}

// Machine is a per-node state machine for the message engine. Round is
// called once per round, starting at round 1, with inbox[i] holding the
// message received on port i (nil in round 1 and on ports whose neighbor
// sent nothing). It returns one outgoing message per port (the slice may be
// nil or contain nils) and done=true once the node has fixed its output.
// After done, the node keeps forwarding nil messages.
type Machine interface {
	Round(round int, inbox []Message) (outbox []Message, done bool)
	Output() any
}

// Protocol creates the per-node machines of a distributed algorithm.
type Protocol interface {
	NewMachine(info NodeInfo) Machine
}

// Stats reports the cost of an execution.
type Stats struct {
	Rounds   int // rounds until every node terminated
	Messages int // total non-nil messages delivered
}

// maxRounds caps executions so that a buggy protocol fails fast instead of
// hanging the test suite.
const maxRounds = 1 << 20

// Run executes protocol on g with the given advice (nil for none) using the
// goroutine-per-node message engine, and returns each node's output plus
// execution stats.
func Run(g *graph.Graph, protocol Protocol, advice Advice) ([]any, Stats, error) {
	n := g.N()
	delta := g.MaxDegree()

	// Per-directed-edge channels, buffered so that a round's sends never
	// block: ch[v][i] receives what v's i-th neighbor sent to v.
	ch := make([][]chan Message, n)
	for v := 0; v < n; v++ {
		ch[v] = make([]chan Message, g.Degree(v))
		for i := range ch[v] {
			ch[v][i] = make(chan Message, 1)
		}
	}
	// portAt[v][i] is the port index of v in the adjacency list of its i-th
	// neighbor, so v can address the right channel of the neighbor.
	portAt := make([][]int, n)
	for v := 0; v < n; v++ {
		portAt[v] = make([]int, g.Degree(v))
		for i, w := range g.Neighbors(v) {
			for j, u := range g.Neighbors(w) {
				if u == v && g.IncidentEdges(w)[j] == g.IncidentEdges(v)[i] {
					portAt[v][i] = j
				}
			}
		}
	}

	machines := make([]Machine, n)
	for v := 0; v < n; v++ {
		var adv bitstr.String
		if v < len(advice) {
			adv = advice[v]
		}
		machines[v] = protocol.NewMachine(NodeInfo{
			ID:     g.ID(v),
			Degree: g.Degree(v),
			N:      n,
			Delta:  delta,
			Advice: adv,
		})
	}

	outputs := make([]any, n)
	doneAt := make([]int, n)
	var msgCount int64
	var msgMu sync.Mutex

	var wg sync.WaitGroup
	errs := make([]error, n)
	barrier := newBarrier(n)

	for v := 0; v < n; v++ {
		wg.Add(1)
		go func(v int) {
			defer wg.Done()
			deg := g.Degree(v)
			inbox := make([]Message, deg)
			done := false
			for round := 1; ; round++ {
				if round > maxRounds {
					errs[v] = fmt.Errorf("local: node %d exceeded %d rounds", v, maxRounds)
					barrier.cancel()
					return
				}
				var outbox []Message
				if !done {
					outbox, done = machines[v].Round(round, inbox)
					if done {
						doneAt[v] = round
						outputs[v] = machines[v].Output()
					}
				}
				localMsgs := 0
				for i := 0; i < deg; i++ {
					var m Message
					if i < len(outbox) {
						m = outbox[i]
					}
					if m != nil {
						localMsgs++
					}
					w := g.Neighbors(v)[i]
					ch[w][portAt[v][i]] <- m
				}
				if localMsgs > 0 {
					msgMu.Lock()
					msgCount += int64(localMsgs)
					msgMu.Unlock()
				}
				for i := 0; i < deg; i++ {
					inbox[i] = <-ch[v][i]
				}
				// Global termination: wait at the barrier; stop when every
				// node reported done.
				allDone, cancelled := barrier.wait(done)
				if cancelled {
					return
				}
				if allDone {
					return
				}
			}
		}(v)
	}
	wg.Wait()

	for v := 0; v < n; v++ {
		if errs[v] != nil {
			return nil, Stats{}, errs[v]
		}
	}
	rounds := 0
	for _, r := range doneAt {
		if r > rounds {
			rounds = r
		}
	}
	return outputs, Stats{Rounds: rounds, Messages: int(msgCount)}, nil
}

// barrier synchronizes n goroutines at the end of each round and aggregates
// a per-node done flag; wait returns allDone=true when every participant
// passed done=true this round.
type barrier struct {
	mu        sync.Mutex
	cond      *sync.Cond
	n         int
	arrived   int
	doneCount int
	gen       int
	allDone   bool
	cancelled bool
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) wait(done bool) (allDone, cancelled bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.cancelled {
		return false, true
	}
	gen := b.gen
	b.arrived++
	if done {
		b.doneCount++
	}
	if b.arrived == b.n {
		b.allDone = b.doneCount == b.n
		b.arrived = 0
		b.doneCount = 0
		b.gen++
		b.cond.Broadcast()
		return b.allDone, false
	}
	for gen == b.gen && !b.cancelled {
		b.cond.Wait()
	}
	return b.allDone, b.cancelled
}

func (b *barrier) cancel() {
	b.mu.Lock()
	b.cancelled = true
	b.cond.Broadcast()
	b.mu.Unlock()
}
