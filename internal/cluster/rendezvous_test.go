package cluster

import (
	"fmt"
	"hash/fnv"
	"testing"
)

// TestPropertyOwnerDeterministic pins the hash function across processes:
// the owner of a key is a pure function of (key, shard names), so these
// golden assignments must never change — a silent hash change would strand
// every artifact on the wrong shard after a fleet restart.
func TestPropertyOwnerDeterministic(t *testing.T) {
	shards := []string{"shard0", "shard1", "shard2", "shard3"}
	golden := map[string]string{
		"graph:cycle:64:1": "shard0",
		"graph:torus:36:2": "shard0",
		"graph:text:4a5e1e4baab89f3a32518a88c31bd87b618f76673e8cc77f7aeadf8cd9ded4d5": "shard0",
		"advice:deadbeef:mis@radius=0":                                               "shard2",
	}
	for key, want := range golden {
		if got := Owner(key, shards); got != want {
			t.Errorf("Owner(%q) = %q, want golden %q (rendezvous hash changed!)", key, got, want)
		}
	}
	// Owner must agree with Rank's head and be order-independent.
	reversed := []string{"shard3", "shard2", "shard1", "shard0"}
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("graph:cycle:%d:%d", 16+i, i)
		if got, want := Owner(key, shards), Rank(key, shards)[0]; got != want {
			t.Fatalf("Owner(%q) = %q but Rank head is %q", key, got, want)
		}
		if got, want := Owner(key, reversed), Owner(key, shards); got != want {
			t.Fatalf("Owner(%q) depends on shard order: %q vs %q", key, got, want)
		}
	}
}

// referenceOwner is an independent reimplementation of the
// highest-random-weight rule straight from its definition — the reference
// model the routing implementation is measured against.
func referenceOwner(key string, shards []string) string {
	best, bestScore := "", uint64(0)
	for _, s := range shards {
		h := fnv.New64a()
		h.Write([]byte(s))
		h.Write([]byte{0})
		h.Write([]byte(key))
		sc := h.Sum64()
		if best == "" || sc > bestScore || (sc == bestScore && s < best) {
			best, bestScore = s, sc
		}
	}
	return best
}

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("graph:cycle:%d:%d", 16+i%977, i)
	}
	return keys
}

// TestPropertyOwnerMatchesReference checks the implementation against the
// reference model key by key, and that ownership is roughly balanced (each
// of 4 shards owns 15-35%% of a large keyspace).
func TestPropertyOwnerMatchesReference(t *testing.T) {
	shards := []string{"shard0", "shard1", "shard2", "shard3"}
	keys := testKeys(4000)
	counts := map[string]int{}
	for _, k := range keys {
		got := Owner(k, shards)
		if want := referenceOwner(k, shards); got != want {
			t.Fatalf("Owner(%q) = %q, reference model says %q", k, got, want)
		}
		counts[got]++
	}
	for _, s := range shards {
		frac := float64(counts[s]) / float64(len(keys))
		if frac < 0.15 || frac > 0.35 {
			t.Errorf("shard %s owns %.1f%% of keys; want roughly balanced (15-35%%)", s, 100*frac)
		}
	}
}

// TestPropertyJoinMovesOneNth pins the property that makes rendezvous
// hashing the right fit for the cache contract: when a shard joins, the
// only keys that change owner are the ones the new shard wins — an expected
// 1/(N+1) of the keyspace — and every one of them moves TO the new shard.
func TestPropertyJoinMovesOneNth(t *testing.T) {
	shards := []string{"shard0", "shard1", "shard2", "shard3", "shard4"}
	grown := append(append([]string{}, shards...), "shard5")
	keys := testKeys(6000)

	moved := 0
	for _, k := range keys {
		before, after := Owner(k, shards), Owner(k, grown)
		if before == after {
			continue
		}
		if after != "shard5" {
			t.Fatalf("join moved %q from %s to %s, not to the new shard", k, before, after)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	expect := 1.0 / float64(len(grown))
	if frac < expect/2 || frac > expect*2 {
		t.Errorf("join moved %.1f%% of keys, want about %.1f%% (1/N)", 100*frac, 100*expect)
	}
}

// TestPropertyLeaveMovesOnlyOrphans: removing a shard reassigns exactly its
// own keys; every key owned by a surviving shard keeps its owner.
func TestPropertyLeaveMovesOnlyOrphans(t *testing.T) {
	shards := []string{"shard0", "shard1", "shard2", "shard3", "shard4"}
	shrunk := []string{"shard0", "shard1", "shard3", "shard4"} // shard2 leaves
	keys := testKeys(6000)

	orphans := 0
	for _, k := range keys {
		before, after := Owner(k, shards), Owner(k, shrunk)
		if before == "shard2" {
			orphans++
			if after == "shard2" {
				t.Fatalf("key %q still owned by the removed shard", k)
			}
			continue
		}
		if before != after {
			t.Fatalf("leave moved %q from surviving %s to %s", k, before, after)
		}
	}
	frac := float64(orphans) / float64(len(keys))
	expect := 1.0 / float64(len(shards))
	if frac < expect/2 || frac > expect*2 {
		t.Errorf("removed shard owned %.1f%% of keys, want about %.1f%%", 100*frac, 100*expect)
	}
}

// TestPropertyReplicaSets: replica sets never contain the owner, hold no
// duplicates, and have exactly min(k, N-1) members drawn from the fleet.
func TestPropertyReplicaSets(t *testing.T) {
	shards := []string{"shard0", "shard1", "shard2", "shard3", "shard4"}
	for _, k := range []int{0, 1, 2, 4, 7} {
		for _, key := range testKeys(500) {
			owner := Owner(key, shards)
			reps := Replicas(key, shards, k)
			wantLen := k
			if wantLen > len(shards)-1 {
				wantLen = len(shards) - 1
			}
			if wantLen < 0 {
				wantLen = 0
			}
			if len(reps) != wantLen {
				t.Fatalf("Replicas(%q, k=%d) has %d members, want %d", key, k, len(reps), wantLen)
			}
			seen := map[string]bool{owner: true}
			for _, r := range reps {
				if r == owner {
					t.Fatalf("Replicas(%q, k=%d) contains the owner %s", key, k, owner)
				}
				if seen[r] {
					t.Fatalf("Replicas(%q, k=%d) contains %s twice", key, k, r)
				}
				seen[r] = true
			}
		}
	}
}
