package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"localadvice/internal/obs"
	"localadvice/internal/server"
)

// Shard is one fleet member as the router sees it: a stable name (the
// rendezvous-hash identity — renaming a shard moves its keys) and a base
// URL.
type Shard struct {
	Name string `json:"name"`
	URL  string `json:"url"`
}

// Config parameterizes a Router. Shards and Local are required; everything
// else has defaults.
type Config struct {
	// Shards is the fleet, in any order (rendezvous ranking ignores it).
	Shards []Shard
	// Replicas is K, the number of non-owner shards a hot key's artifacts
	// are pushed to (default 1, capped at len(Shards)-1).
	Replicas int
	// HotThreshold is how many cached routed reads a key takes before the
	// router replicates its artifacts (default 8).
	HotThreshold int
	// HealthInterval is the shard health-check period (default 1s).
	HealthInterval time.Duration
	// DisableFallback turns off local compute when no shard is healthy:
	// instead of serving from the embedded server the router answers a
	// typed 503 shard_down.
	DisableFallback bool
	// Local is the embedded server used for graph-independent endpoints
	// (/v1/experiment), for producing authentic error responses to
	// unroutable requests, and as the last-resort compute fallback.
	Local *server.Server
	// Client overrides the forwarding HTTP client (tests inject
	// httptest-backed clients; the default reuses connections per shard).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 1
	}
	if c.Replicas > len(c.Shards)-1 {
		c.Replicas = len(c.Shards) - 1
	}
	if c.HotThreshold <= 0 {
		c.HotThreshold = 8
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Timeout: 60 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 32,
				DisableCompression:  true,
			},
		}
	}
	return c
}

// hotEntry tracks one routing key's read count and replication state.
type hotEntry struct {
	schema      string
	spec        server.GraphSpec
	hits        int
	replicated  bool
	replicating bool
	next        uint64 // rotation cursor over owner+replicas once replicated
}

// Router is the cluster front door: an http.Handler exposing the same /v1
// API as a single server, routing by artifact key. Construct with New.
type Router struct {
	cfg     Config
	names   []string
	byName  map[string]Shard
	mux     *http.ServeMux
	metrics obs.ClusterMetrics
	start   time.Time

	healthy map[string]*atomic.Bool

	hotMu sync.Mutex
	hot   map[string]*hotEntry

	generation atomic.Uint64

	stopOnce sync.Once
	stop     chan struct{}

	srvMu   sync.Mutex
	httpSrv *http.Server
}

// New returns a ready Router. It fails on an empty fleet, a missing local
// server, or duplicate shard names (rendezvous identity must be unique).
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: no shards configured")
	}
	if cfg.Local == nil {
		return nil, errors.New("cluster: router needs a local server")
	}
	cfg = cfg.withDefaults()
	rt := &Router{
		cfg:     cfg,
		byName:  make(map[string]Shard, len(cfg.Shards)),
		mux:     http.NewServeMux(),
		start:   time.Now(),
		healthy: make(map[string]*atomic.Bool, len(cfg.Shards)),
		hot:     make(map[string]*hotEntry),
		stop:    make(chan struct{}),
	}
	for _, sh := range cfg.Shards {
		if _, dup := rt.byName[sh.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", sh.Name)
		}
		rt.byName[sh.Name] = sh
		rt.names = append(rt.names, sh.Name)
		b := &atomic.Bool{}
		b.Store(true) // optimistic until the first health check says otherwise
		rt.healthy[sh.Name] = b
	}
	rt.mux.HandleFunc("POST /v1/decode", rt.routeDecode)
	rt.mux.HandleFunc("POST /v1/encode", rt.routeJSON)
	rt.mux.HandleFunc("POST /v1/verify", rt.routeJSON)
	rt.mux.HandleFunc("POST /v1/batch", rt.routeBatch)
	rt.mux.HandleFunc("POST /v1/experiment", rt.serveLocal)
	rt.mux.HandleFunc("POST /v1/cache/flush", rt.handleFlush)
	rt.mux.HandleFunc("GET /v1/healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /v1/stats", rt.handleStats)
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// Metrics exposes the router counters (tests assert forwarding and
// replication behavior through the snapshot).
func (rt *Router) Metrics() *obs.ClusterMetrics { return &rt.metrics }

// Serve accepts connections on l until Shutdown, running the shard
// health-check loop alongside. Returns nil after a graceful shutdown. The
// health loop is stopped on every exit path — including a Serve error such
// as a closed or conflicted listener — so an aborted Serve never leaks the
// ticker goroutine.
func (rt *Router) Serve(l net.Listener) error {
	defer rt.Close()
	go rt.healthLoop()
	srv := &http.Server{Handler: rt, ReadHeaderTimeout: 10 * time.Second}
	rt.srvMu.Lock()
	rt.httpSrv = srv
	rt.srvMu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Close stops the health-check loop (idempotent, safe before/without
// Serve). It does not drain in-flight requests; use Shutdown for that.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stop) })
}

// Shutdown stops the health loop and drains the embedded http.Server.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.Close()
	rt.srvMu.Lock()
	srv := rt.httpSrv
	rt.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

func (rt *Router) healthLoop() {
	t := time.NewTicker(rt.cfg.HealthInterval)
	defer t.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-t.C:
			rt.CheckHealth()
		}
	}
}

// CheckHealth probes every shard's /v1/healthz once and updates the healthy
// flags. The serving path also flips a shard unhealthy the moment a forward
// fails, so the loop's job is mostly to bring revived shards back.
func (rt *Router) CheckHealth() {
	for _, sh := range rt.cfg.Shards {
		req, err := http.NewRequest(http.MethodGet, sh.URL+"/v1/healthz", nil)
		if err != nil {
			continue
		}
		resp, err := rt.cfg.Client.Do(req)
		ok := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		rt.healthy[sh.Name].Store(ok)
	}
}

// HealthyShards returns how many shards the router currently believes are
// alive.
func (rt *Router) HealthyShards() int {
	n := 0
	for _, b := range rt.healthy {
		if b.Load() {
			n++
		}
	}
	return n
}

// candidates returns the shards to try for key, in order: the rendezvous
// ranking, with the head rotated across owner+replicas when the key's
// artifacts are replicated (so warm hot-key reads spread over the replica
// set). Unhealthy shards are skipped. The second result is the owner's name
// (regardless of health), for metrics.
func (rt *Router) candidates(key string) ([]Shard, string) {
	rank := Rank(key, rt.names)
	owner := rank[0]

	rt.hotMu.Lock()
	e := rt.hot[key]
	var rotate uint64
	replicated := false
	if e != nil && e.replicated {
		replicated = true
		rotate = e.next
		e.next++
	}
	rt.hotMu.Unlock()

	order := rank
	if replicated {
		head := len(rank)
		if rt.cfg.Replicas+1 < head {
			head = rt.cfg.Replicas + 1
		}
		order = make([]string, 0, len(rank))
		for i := 0; i < head; i++ {
			order = append(order, rank[(int(rotate)+i)%head])
		}
		order = append(order, rank[head:]...)
	}

	out := make([]Shard, 0, len(order))
	for _, name := range order {
		if rt.healthy[name].Load() {
			out = append(out, rt.byName[name])
		}
	}
	return out, owner
}

// noteServed records the routing outcome for metrics: which shard answered
// and whether that was the owner, a replica serving a hot key, or a
// failover past a dead owner.
func (rt *Router) noteServed(key, owner, served string) {
	rt.metrics.RouteTo(owner)
	if served == owner {
		rt.metrics.Forward()
		return
	}
	rt.hotMu.Lock()
	replicated := rt.hot[key] != nil && rt.hot[key].replicated
	rt.hotMu.Unlock()
	if replicated {
		for _, r := range Replicas(key, rt.names, rt.cfg.Replicas) {
			if r == served {
				rt.metrics.ReplicaHit()
				return
			}
		}
	}
	rt.metrics.Failover()
}

// post sends one inter-node request. A transport-level failure marks the
// shard unhealthy (the health loop revives it later).
func (rt *Router) post(sh Shard, path, contentType string, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodPost, sh.URL+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		rt.healthy[sh.Name].Store(false)
		rt.metrics.ForwardError()
		return nil, err
	}
	return resp, nil
}

// serveLocal hands the request to the embedded server unchanged —
// graph-independent endpoints and unroutable requests, where the embedded
// server produces the authentic response (including its exact error JSON).
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request) {
	rt.cfg.Local.ServeHTTP(w, r)
}

// localWithBody replays an already-read body through the embedded server.
func (rt *Router) localWithBody(w http.ResponseWriter, r *http.Request, body []byte) {
	r2 := r.Clone(r.Context())
	r2.Body = io.NopCloser(bytes.NewReader(body))
	r2.ContentLength = int64(len(body))
	rt.cfg.Local.ServeHTTP(w, r2)
}

// fallback answers a request no healthy shard could take: local compute
// unless disabled, else the typed 503 the smoke test and clients key on.
func (rt *Router) fallback(w http.ResponseWriter, r *http.Request, body []byte) {
	if rt.cfg.DisableFallback {
		server.WriteError(w, http.StatusServiceUnavailable, "shard_down",
			"no healthy shard for this key and local fallback is disabled")
		return
	}
	rt.metrics.LocalFallback()
	rt.localWithBody(w, r, body)
}

// proxyResponse copies a shard's reply verbatim: status, content type, body.
func proxyResponse(w http.ResponseWriter, resp *http.Response) {
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// routeJSON forwards /v1/encode and /v1/verify bodies verbatim to the
// owning shard; the reply is proxied back untouched, so it is bit-identical
// to a direct request by construction.
func (rt *Router) routeJSON(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		server.WriteAPIError(w, err)
		return
	}
	var peek struct {
		Graph server.GraphSpec `json:"graph"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		rt.localWithBody(w, r, body)
		return
	}
	key, err := server.SpecCacheKey(peek.Graph)
	if err != nil {
		rt.localWithBody(w, r, body)
		return
	}
	cands, owner := rt.candidates(key)
	for _, sh := range cands {
		resp, err := rt.post(sh, r.URL.Path, "application/json", body)
		if err != nil {
			continue
		}
		rt.noteServed(key, owner, sh.Name)
		proxyResponse(w, resp)
		return
	}
	rt.fallback(w, r, body)
}

// routeBatch routes a binary batch frame by its header's graph spec and
// forwards the frame verbatim.
func (rt *Router) routeBatch(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		server.WriteAPIError(w, err)
		return
	}
	schema, spec, cached, err := server.PeekBatchSpec(body)
	if err != nil {
		rt.localWithBody(w, r, body)
		return
	}
	key, err := server.SpecCacheKey(spec)
	if err != nil {
		rt.localWithBody(w, r, body)
		return
	}
	if cached {
		rt.noteHot(key, schema, spec)
	}
	cands, owner := rt.candidates(key)
	for _, sh := range cands {
		resp, err := rt.post(sh, "/v1/batch", "application/octet-stream", body)
		if err != nil {
			continue
		}
		rt.noteServed(key, owner, sh.Name)
		proxyResponse(w, resp)
		return
	}
	rt.fallback(w, r, body)
}

// routeDecode is the hot path: a JSON /v1/decode without inline advice is
// forwarded to its owner as a one-item extended binary batch (zero JSON on
// the inter-node hop) and the DecodeResponse is reconstructed from the
// answer; with inline advice the JSON body is proxied verbatim instead
// (the advice strings would only be re-encoded byte-for-byte).
func (rt *Router) routeDecode(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	body, err := io.ReadAll(r.Body)
	if err != nil {
		server.WriteAPIError(w, err)
		return
	}
	var req server.DecodeRequest
	if err := json.Unmarshal(body, &req); err != nil {
		rt.localWithBody(w, r, body)
		return
	}
	key, err := server.SpecCacheKey(req.Graph)
	if err != nil {
		rt.localWithBody(w, r, body)
		return
	}
	cached := req.Cache == nil || *req.Cache
	if cached {
		rt.noteHot(key, req.Schema, req.Graph)
	}

	if req.Advice != nil {
		cands, owner := rt.candidates(key)
		for _, sh := range cands {
			resp, err := rt.post(sh, "/v1/decode", "application/json", body)
			if err != nil {
				continue
			}
			rt.noteServed(key, owner, sh.Name)
			proxyResponse(w, resp)
			return
		}
		rt.fallback(w, r, body)
		return
	}

	frame, err := server.EncodeBatchRequestExt(req.Schema, req.Graph, cached, []server.BatchItem{{}})
	if err != nil {
		rt.localWithBody(w, r, body)
		return
	}
	cands, owner := rt.candidates(key)
	for _, sh := range cands {
		resp, err := rt.post(sh, "/v1/batch", "application/octet-stream", frame)
		if err != nil {
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Header-level failure: the shard's JSON apiError (unknown
			// schema, bad graph, overload) is already exactly what a direct
			// request would have gotten.
			rt.noteServed(key, owner, sh.Name)
			proxyResponse(w, resp)
			return
		}
		respBody, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			rt.healthy[sh.Name].Store(false)
			rt.metrics.ForwardError()
			continue
		}
		digest, results, err := server.DecodeBatchResponseExt(respBody)
		if err != nil || len(results) != 1 {
			rt.healthy[sh.Name].Store(false)
			rt.metrics.ForwardError()
			continue
		}
		rt.noteServed(key, owner, sh.Name)
		res := results[0]
		if res.Err != nil {
			server.WriteError(w, res.Err.Status, res.Err.Code, res.Err.Msg)
			return
		}
		server.WriteJSON(w, http.StatusOK, &server.DecodeResponse{
			Schema:       req.Schema,
			GraphDigest:  digest,
			Labels:       res.Labels,
			EdgeLabels:   res.EdgeLabels,
			Rounds:       res.Rounds,
			Messages:     res.Messages,
			Verified:     true,
			Cached:       res.Cached,
			TableEntries: res.TableEntries,
			ElapsedNano:  time.Since(start).Nanoseconds(),
		})
		return
	}
	rt.fallback(w, r, body)
}

// noteHot bumps a key's read count and kicks off asynchronous replication
// when it crosses the hot threshold. Replication is strictly off the
// request path: the routed read that tripped the threshold does not wait.
func (rt *Router) noteHot(key, schema string, spec server.GraphSpec) {
	if rt.cfg.Replicas <= 0 || len(rt.names) <= 1 {
		return
	}
	rt.hotMu.Lock()
	e := rt.hot[key]
	if e == nil {
		e = &hotEntry{schema: schema, spec: spec}
		rt.hot[key] = e
	}
	e.hits++
	launch := e.hits >= rt.cfg.HotThreshold && !e.replicated && !e.replicating
	if launch {
		e.replicating = true
	}
	rt.hotMu.Unlock()
	if launch {
		go rt.replicate(key, schema, spec)
	}
}

// replicate pulls (schema, graph)'s artifacts from the owner and pushes
// them to every replica. Only a fully successful round marks the key
// replicated (and thereby eligible for rotated reads); any failure leaves
// it retryable on later hits.
func (rt *Router) replicate(key, schema string, spec server.GraphSpec) {
	ok := rt.replicateOnce(key, schema, spec)
	rt.hotMu.Lock()
	if e := rt.hot[key]; e != nil {
		e.replicating = false
		e.replicated = ok
	}
	rt.hotMu.Unlock()
	if ok {
		rt.metrics.Replication()
	} else {
		rt.metrics.ReplicationError()
	}
}

func (rt *Router) replicateOnce(key, schema string, spec server.GraphSpec) bool {
	owner := Owner(key, rt.names)
	reqBody, err := json.Marshal(server.ExportRequest{Schema: schema, Graph: spec})
	if err != nil {
		return false
	}
	resp, err := rt.post(rt.byName[owner], "/v1/artifacts/export", "application/json", reqBody)
	if err != nil {
		return false
	}
	frame, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		return false
	}
	for _, name := range Replicas(key, rt.names, rt.cfg.Replicas) {
		resp, err := rt.post(rt.byName[name], "/v1/artifacts/import", "application/octet-stream", frame)
		if err != nil {
			return false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return false
		}
	}
	return true
}

// ClusterFlushResponse is the router's /v1/cache/flush reply: the bumped
// cluster generation plus each shard's own post-flush generation.
type ClusterFlushResponse struct {
	Flushed    bool              `json:"flushed"`
	Generation uint64            `json:"generation"`
	Shards     map[string]uint64 `json:"shard_generations"`
}

// handleFlush fans the flush out to every shard — all of them, health flags
// notwithstanding, because a flush that silently skips a shard would leave
// stale artifacts servable. Any unreachable shard fails the flush with the
// typed 503. The local embedded cache is flushed too, hot-key replication
// state is reset (the artifacts are gone everywhere), and the cluster
// generation is bumped.
func (rt *Router) handleFlush(w http.ResponseWriter, r *http.Request) {
	rt.metrics.FlushFanout()
	gens := make(map[string]uint64, len(rt.cfg.Shards))
	for _, sh := range rt.cfg.Shards {
		resp, err := rt.post(sh, "/v1/cache/flush", "application/json", nil)
		if err != nil {
			server.WriteError(w, http.StatusServiceUnavailable, "shard_down",
				fmt.Sprintf("cluster flush failed: shard %s unreachable: %v", sh.Name, err))
			return
		}
		var fr struct {
			Generation uint64 `json:"generation"`
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &fr) != nil {
			server.WriteError(w, http.StatusServiceUnavailable, "shard_down",
				fmt.Sprintf("cluster flush failed: shard %s answered %d", sh.Name, resp.StatusCode))
			return
		}
		gens[sh.Name] = fr.Generation
	}
	rt.cfg.Local.Cache().Flush()
	rt.hotMu.Lock()
	rt.hot = make(map[string]*hotEntry)
	rt.hotMu.Unlock()
	gen := rt.generation.Add(1)
	server.WriteJSON(w, http.StatusOK, &ClusterFlushResponse{
		Flushed:    true,
		Generation: gen,
		Shards:     gens,
	})
}

// RouterHealthz is the router's /v1/healthz reply.
type RouterHealthz struct {
	Status        string `json:"status"`
	Role          string `json:"role"`
	Shards        int    `json:"shards"`
	HealthyShards int    `json:"healthy_shards"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	server.WriteJSON(w, http.StatusOK, &RouterHealthz{
		Status:        "ok",
		Role:          "router",
		Shards:        len(rt.cfg.Shards),
		HealthyShards: rt.HealthyShards(),
	})
}

// ShardStatus is one fleet row in the router's stats.
type ShardStatus struct {
	Name    string `json:"name"`
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
}

// RouterStats is the router's /v1/stats reply, embedded by scripts/bench.sh
// under the "cluster" section's router_stats key.
type RouterStats struct {
	Role          string              `json:"role"`
	UptimeNanos   int64               `json:"uptime_nanos"`
	Shards        int                 `json:"shards"`
	HealthyShards int                 `json:"healthy_shards"`
	Replicas      int                 `json:"replicas"`
	HotThreshold  int                 `json:"hot_threshold"`
	HotKeys       int                 `json:"hot_keys"`
	Generation    uint64              `json:"generation"`
	Fleet         []ShardStatus       `json:"fleet"`
	Cluster       obs.ClusterSnapshot `json:"cluster"`
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	fleet := make([]ShardStatus, 0, len(rt.cfg.Shards))
	for _, sh := range rt.cfg.Shards {
		fleet = append(fleet, ShardStatus{Name: sh.Name, URL: sh.URL, Healthy: rt.healthy[sh.Name].Load()})
	}
	rt.hotMu.Lock()
	hotKeys := len(rt.hot)
	rt.hotMu.Unlock()
	server.WriteJSON(w, http.StatusOK, &RouterStats{
		Role:          "router",
		UptimeNanos:   time.Since(rt.start).Nanoseconds(),
		Shards:        len(rt.cfg.Shards),
		HealthyShards: rt.HealthyShards(),
		Replicas:      rt.cfg.Replicas,
		HotThreshold:  rt.cfg.HotThreshold,
		HotKeys:       hotKeys,
		Generation:    rt.generation.Load(),
		Fleet:         fleet,
		Cluster:       rt.metrics.Snapshot(),
	})
}
