package cluster

import (
	"context"
	"net"
	"net/http"
	"runtime"
	"testing"
	"time"
)

// leakClient is a keep-alive-free forwarding client so health-check
// connections do not park idle transport goroutines that would confuse the
// goroutine accounting below.
func leakClient() *http.Client {
	return &http.Client{
		Timeout:   time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
}

// waitForGoroutines polls until the process goroutine count drops back to
// the baseline (leaked tickers never exit, so a stable excess is a leak).
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for time.Now().Before(deadline) {
		n = runtime.NumGoroutine()
		if n <= base {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines did not return to baseline: %d running, baseline %d — health loop leaked", n, base)
}

// TestRouterShutdownStopsHealthLoop pins the health-ticker lifecycle on the
// clean path: Serve starts the loop, Shutdown must stop it (stop channel +
// ticker.Stop), and the goroutine count returns to its pre-router baseline.
func TestRouterShutdownStopsHealthLoop(t *testing.T) {
	f := newTestFleet(t, 2)
	base := runtime.NumGoroutine()
	rt := newTestRouter(t, f, func(c *Config) {
		c.HealthInterval = 10 * time.Millisecond
		c.Client = leakClient()
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- rt.Serve(l) }()
	// Let the ticker fire a few health checks before tearing down, so the
	// test exercises a genuinely running loop rather than one that never
	// started.
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := rt.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown, want nil", err)
	}
	rt.Close() // idempotent: a second stop must not panic on the closed channel
	waitForGoroutines(t, base)
}

// TestRouterServeErrorStopsHealthLoop pins the error path that used to
// leak: when Serve fails immediately (closed or conflicted listener) the
// health loop it just started must be stopped too.
func TestRouterServeErrorStopsHealthLoop(t *testing.T) {
	f := newTestFleet(t, 1)
	base := runtime.NumGoroutine()
	rt := newTestRouter(t, f, func(c *Config) {
		c.HealthInterval = 10 * time.Millisecond
		c.Client = leakClient()
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := rt.Serve(l); err == nil {
		t.Fatal("Serve on a closed listener returned nil")
	}
	waitForGoroutines(t, base)
}
