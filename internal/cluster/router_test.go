package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"localadvice/internal/server"
)

// testFleet is a set of in-process shard servers behind httptest listeners.
type testFleet struct {
	shards  []Shard
	servers []*server.Server
	https   []*httptest.Server
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{}
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{Role: "shard"})
		if err != nil {
			t.Fatalf("shard server: %v", err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		f.servers = append(f.servers, s)
		f.https = append(f.https, ts)
		f.shards = append(f.shards, Shard{Name: fmt.Sprintf("shard%d", i), URL: ts.URL})
	}
	return f
}

// shardByName finds a fleet member's in-process server for direct stats
// inspection.
func (f *testFleet) shardByName(t *testing.T, name string) (*server.Server, *httptest.Server) {
	t.Helper()
	for i, sh := range f.shards {
		if sh.Name == name {
			return f.servers[i], f.https[i]
		}
	}
	t.Fatalf("no shard named %q", name)
	return nil, nil
}

func newTestRouter(t *testing.T, f *testFleet, mod func(*Config)) *Router {
	t.Helper()
	local, err := server.New(server.Config{Role: "router"})
	if err != nil {
		t.Fatalf("local server: %v", err)
	}
	cfg := Config{Shards: f.shards, Local: local}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return rt
}

// doPost drives an http.Handler (router or single server) directly.
func doPost(t *testing.T, h http.Handler, path, contentType string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, path, bytes.NewReader(body))
	r.Header.Set("Content-Type", contentType)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func doGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodGet, path, nil)
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

// respCode extracts the machine-readable "code" of a typed error body.
func respCode(t *testing.T, body string) string {
	t.Helper()
	var eb struct {
		Code string `json:"code"`
	}
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("error body is not the typed shape: %v: %s", err, body)
	}
	return eb.Code
}

// shardStats fetches a shard's own /v1/stats.
func shardStats(t *testing.T, s *server.Server) server.StatsResponse {
	t.Helper()
	w := doGet(t, s, "/v1/stats")
	if w.Code != http.StatusOK {
		t.Fatalf("shard stats: %d: %s", w.Code, w.Body.String())
	}
	var st server.StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("shard stats unmarshal: %v", err)
	}
	return st
}

// clusterTestSpecs covers every registered schema, matching the store
// bit-identity suite's coverage.
var clusterTestSpecs = map[string]server.GraphSpec{
	"mis":        {Family: "cycle", N: 48, Seed: 7},
	"orient":     {Family: "cycle", N: 60, Seed: 7},
	"color3":     {Family: "cycle", N: 60, Seed: 7},
	"deltacolor": {Family: "torus", N: 36, Seed: 7},
	"growth":     {Family: "cycle", N: 96, Seed: 7},
}

// normalizeDecode strips the fields that legitimately differ between a
// routed and a direct response (cache hit status and timing) and returns a
// canonical rendering of everything else.
func normalizeDecode(t *testing.T, raw []byte) string {
	t.Helper()
	var dr server.DecodeResponse
	if err := json.Unmarshal(raw, &dr); err != nil {
		t.Fatalf("decode response unmarshal: %v: %s", err, raw)
	}
	dr.Cached = false
	dr.ElapsedNano = 0
	out, _ := json.Marshal(dr)
	return string(out)
}

func normalizeEncode(t *testing.T, raw []byte) string {
	t.Helper()
	var er server.EncodeResponse
	if err := json.Unmarshal(raw, &er); err != nil {
		t.Fatalf("encode response unmarshal: %v: %s", err, raw)
	}
	er.Cached = false
	er.ElapsedNano = 0
	out, _ := json.Marshal(er)
	return string(out)
}

// TestPropertyRoutedMatchesSingle is the cluster bit-identity contract: for
// every registered schema, a response served through the router (forwarded
// over the binary inter-node frame and reconstructed) must equal the
// response a single-process server gives, modulo cache/timing fields —
// and /v1/verify, which has neither field, must match bit for bit.
func TestPropertyRoutedMatchesSingle(t *testing.T) {
	f := newTestFleet(t, 3)
	rt := newTestRouter(t, f, nil)
	single := newSingleServer(t)

	for schema, spec := range clusterTestSpecs {
		specJSON, _ := json.Marshal(spec)
		decodeBody := []byte(fmt.Sprintf(`{"schema":%q,"graph":%s}`, schema, specJSON))

		routed := doPost(t, rt, "/v1/decode", "application/json", decodeBody)
		direct := doPost(t, single, "/v1/decode", "application/json", decodeBody)
		if routed.Code != http.StatusOK || direct.Code != http.StatusOK {
			t.Fatalf("%s decode: routed %d direct %d: %s / %s",
				schema, routed.Code, direct.Code, routed.Body, direct.Body)
		}
		if got, want := normalizeDecode(t, routed.Body.Bytes()), normalizeDecode(t, direct.Body.Bytes()); got != want {
			t.Errorf("%s: routed decode differs from single-process:\n routed: %s\n direct: %s", schema, got, want)
		}

		encodeBody := []byte(fmt.Sprintf(`{"schema":%q,"graph":%s}`, schema, specJSON))
		routedEnc := doPost(t, rt, "/v1/encode", "application/json", encodeBody)
		directEnc := doPost(t, single, "/v1/encode", "application/json", encodeBody)
		if routedEnc.Code != http.StatusOK || directEnc.Code != http.StatusOK {
			t.Fatalf("%s encode: routed %d direct %d", schema, routedEnc.Code, directEnc.Code)
		}
		if got, want := normalizeEncode(t, routedEnc.Body.Bytes()), normalizeEncode(t, directEnc.Body.Bytes()); got != want {
			t.Errorf("%s: routed encode differs from single-process:\n routed: %s\n direct: %s", schema, got, want)
		}

		// Inline-advice decode takes the JSON proxy path; it must agree too.
		var enc server.EncodeResponse
		if err := json.Unmarshal(directEnc.Body.Bytes(), &enc); err != nil {
			t.Fatalf("%s: encode response: %v", schema, err)
		}
		adviceJSON, _ := json.Marshal(enc.Advice)
		inlineBody := []byte(fmt.Sprintf(`{"schema":%q,"graph":%s,"advice":%s}`, schema, specJSON, adviceJSON))
		routedInl := doPost(t, rt, "/v1/decode", "application/json", inlineBody)
		directInl := doPost(t, single, "/v1/decode", "application/json", inlineBody)
		if routedInl.Code != http.StatusOK || directInl.Code != http.StatusOK {
			t.Fatalf("%s inline decode: routed %d direct %d: %s", schema, routedInl.Code, directInl.Code, routedInl.Body)
		}
		if got, want := normalizeDecode(t, routedInl.Body.Bytes()), normalizeDecode(t, directInl.Body.Bytes()); got != want {
			t.Errorf("%s: routed inline-advice decode differs:\n routed: %s\n direct: %s", schema, got, want)
		}

		// Verify has no cache/timing fields: demand raw byte equality.
		var dec server.DecodeResponse
		json.Unmarshal(direct.Body.Bytes(), &dec)
		labelsJSON, _ := json.Marshal(dec.Labels)
		verifyBody := []byte(fmt.Sprintf(`{"schema":%q,"graph":%s,"labels":%s}`, schema, specJSON, labelsJSON))
		routedVer := doPost(t, rt, "/v1/verify", "application/json", verifyBody)
		directVer := doPost(t, single, "/v1/verify", "application/json", verifyBody)
		if routedVer.Code != http.StatusOK || directVer.Code != http.StatusOK {
			t.Fatalf("%s verify: routed %d direct %d", schema, routedVer.Code, directVer.Code)
		}
		if !bytes.Equal(routedVer.Body.Bytes(), directVer.Body.Bytes()) {
			t.Errorf("%s: routed verify not bit-identical:\n routed: %s\n direct: %s",
				schema, routedVer.Body, directVer.Body)
		}
	}
}

func newSingleServer(t *testing.T) *server.Server {
	t.Helper()
	s, err := server.New(server.Config{Role: "single"})
	if err != nil {
		t.Fatalf("single server: %v", err)
	}
	return s
}

// TestPropertyRoutedBatchBitIdentical: a binary batch frame answered
// through the router is byte-for-byte the frame a direct shard request
// produces — the router proxies it untouched.
func TestPropertyRoutedBatchBitIdentical(t *testing.T) {
	f := newTestFleet(t, 3)
	rt := newTestRouter(t, f, nil)
	single := newSingleServer(t)

	frame, err := server.EncodeBatchRequest("mis", server.GraphSpec{Family: "cycle", N: 48, Seed: 3}, false, []server.BatchItem{{}, {}})
	if err != nil {
		t.Fatalf("EncodeBatchRequest: %v", err)
	}
	routed := doPost(t, rt, "/v1/batch", "application/octet-stream", frame)
	direct := doPost(t, single, "/v1/batch", "application/octet-stream", frame)
	if routed.Code != http.StatusOK || direct.Code != http.StatusOK {
		t.Fatalf("batch: routed %d direct %d: %s", routed.Code, direct.Code, routed.Body)
	}
	if !bytes.Equal(routed.Body.Bytes(), direct.Body.Bytes()) {
		t.Errorf("routed batch frame differs from direct (%d vs %d bytes)",
			routed.Body.Len(), direct.Body.Len())
	}
}

// TestRaceHotKeyReplication drives one key past the hot threshold and
// checks the full replication arc: the router exports the owner's
// artifacts, imports them into the replica, rotates warm reads onto it, and
// the replica serves those reads purely from imported state — zero engine
// computes.
func TestRaceHotKeyReplication(t *testing.T) {
	f := newTestFleet(t, 3)
	rt := newTestRouter(t, f, func(c *Config) {
		c.Replicas = 1
		c.HotThreshold = 2
	})

	spec := server.GraphSpec{Family: "cycle", N: 48, Seed: 5}
	key, err := server.SpecCacheKey(spec)
	if err != nil {
		t.Fatalf("SpecCacheKey: %v", err)
	}
	names := []string{"shard0", "shard1", "shard2"}
	replicaName := Replicas(key, names, 1)[0]
	replica, _ := f.shardByName(t, replicaName)

	body := []byte(fmt.Sprintf(`{"schema":"mis","graph":{"family":"cycle","n":%d,"seed":%d}}`, spec.N, spec.Seed))
	decodeOnce := func() server.DecodeResponse {
		w := doPost(t, rt, "/v1/decode", "application/json", body)
		if w.Code != http.StatusOK {
			t.Fatalf("routed decode: %d: %s", w.Code, w.Body)
		}
		var dr server.DecodeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
			t.Fatalf("decode response: %v", err)
		}
		return dr
	}

	want := decodeOnce()

	// Cross the threshold, then wait for the async replication to land.
	deadline := time.Now().Add(10 * time.Second)
	for rt.Metrics().Snapshot().Replications == 0 {
		decodeOnce()
		if time.Now().After(deadline) {
			t.Fatalf("replication never completed: %+v", rt.Metrics().Snapshot())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := rt.Metrics().Snapshot().ReplicationErrors; n != 0 {
		t.Fatalf("replication errors: %d", n)
	}

	// Warm reads now rotate across owner+replica; the replica must serve
	// some of them, with answers identical to the owner's.
	for i := 0; rt.Metrics().Snapshot().ReplicaHits == 0; i++ {
		// The replica's first read may rebuild its decode artifact from the
		// imported advice (a table run, not an engine compute), so Cached is
		// not asserted here — only that the answer never diverges.
		got := decodeOnce()
		if fmt.Sprint(got.Labels) != fmt.Sprint(want.Labels) || got.GraphDigest != want.GraphDigest {
			t.Fatalf("replicated read diverged: %+v vs %+v", got, want)
		}
		if i > 50 {
			t.Fatalf("no replica hit after %d warm reads: %+v", i, rt.Metrics().Snapshot())
		}
	}

	st := shardStats(t, replica)
	if st.Engine != 0 {
		t.Errorf("replica %s ran %d engine computes; replicated artifacts should make that 0", replicaName, st.Engine)
	}
	if st.Cache.Puts == 0 {
		t.Errorf("replica %s shows no direct cache puts; import did not land", replicaName)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("replica %s served no cache hits", replicaName)
	}
}

// TestFailoverPastDeadOwner: with the owning shard gone, the router serves
// the key from the next shard in rendezvous order — same correct answer,
// counted as a failover.
func TestFailoverPastDeadOwner(t *testing.T) {
	f := newTestFleet(t, 3)
	rt := newTestRouter(t, f, nil)
	single := newSingleServer(t)

	spec := server.GraphSpec{Family: "cycle", N: 60, Seed: 9}
	key, err := server.SpecCacheKey(spec)
	if err != nil {
		t.Fatalf("SpecCacheKey: %v", err)
	}
	owner := Owner(key, []string{"shard0", "shard1", "shard2"})
	_, ownerHTTP := f.shardByName(t, owner)
	ownerHTTP.Close()

	body := []byte(`{"schema":"color3","graph":{"family":"cycle","n":60,"seed":9}}`)
	w := doPost(t, rt, "/v1/decode", "application/json", body)
	if w.Code != http.StatusOK {
		t.Fatalf("decode with dead owner: %d: %s", w.Code, w.Body)
	}
	direct := doPost(t, single, "/v1/decode", "application/json", body)
	if got, want := normalizeDecode(t, w.Body.Bytes()), normalizeDecode(t, direct.Body.Bytes()); got != want {
		t.Errorf("failover answer differs from single-process:\n failover: %s\n direct:   %s", got, want)
	}
	snap := rt.Metrics().Snapshot()
	if snap.Failovers == 0 {
		t.Errorf("expected a failover to be counted: %+v", snap)
	}
	if snap.LocalFallbacks != 0 {
		t.Errorf("failover should not have fallen back to local compute: %+v", snap)
	}
}

// TestShardDownWithoutFallback: when every shard is unreachable and local
// fallback is disabled, the router degrades to the typed 503.
func TestShardDownWithoutFallback(t *testing.T) {
	f := newTestFleet(t, 2)
	rt := newTestRouter(t, f, func(c *Config) { c.DisableFallback = true })
	for _, ts := range f.https {
		ts.Close()
	}

	body := []byte(`{"schema":"mis","graph":{"family":"cycle","n":48}}`)
	w := doPost(t, rt, "/v1/decode", "application/json", body)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("want 503 with fleet down, got %d: %s", w.Code, w.Body)
	}
	if code := respCode(t, w.Body.String()); code != "shard_down" {
		t.Errorf("want error code shard_down, got %q", code)
	}
}

// TestShardDownFallsBackToLocalCompute: same dead fleet, fallback enabled —
// the router computes the answer itself rather than failing.
func TestShardDownFallsBackToLocalCompute(t *testing.T) {
	f := newTestFleet(t, 2)
	rt := newTestRouter(t, f, nil)
	for _, ts := range f.https {
		ts.Close()
	}

	body := []byte(`{"schema":"mis","graph":{"family":"cycle","n":48}}`)
	w := doPost(t, rt, "/v1/decode", "application/json", body)
	if w.Code != http.StatusOK {
		t.Fatalf("local fallback decode: %d: %s", w.Code, w.Body)
	}
	var dr server.DecodeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil || !dr.Verified {
		t.Fatalf("fallback answer not a verified decode: %v: %s", err, w.Body)
	}
	if rt.Metrics().Snapshot().LocalFallbacks == 0 {
		t.Errorf("local fallback not counted: %+v", rt.Metrics().Snapshot())
	}
}

// TestClusterFlushFanout: a router flush empties every shard's cache and
// bumps the cluster generation; nothing pre-flush is served afterwards
// (the next decode of a previously warm key recomputes, cached:false).
func TestClusterFlushFanout(t *testing.T) {
	f := newTestFleet(t, 3)
	rt := newTestRouter(t, f, nil)

	// Warm several distinct keys so multiple shards hold artifacts.
	var bodies [][]byte
	for seed := 1; seed <= 6; seed++ {
		b := []byte(fmt.Sprintf(`{"schema":"mis","graph":{"family":"cycle","n":48,"seed":%d}}`, seed))
		bodies = append(bodies, b)
		if w := doPost(t, rt, "/v1/decode", "application/json", b); w.Code != http.StatusOK {
			t.Fatalf("warmup decode: %d: %s", w.Code, w.Body)
		}
	}
	warmed := 0
	for _, s := range f.servers {
		warmed += shardStats(t, s).Cache.Entries
	}
	if warmed == 0 {
		t.Fatalf("warmup left no shard cache entries")
	}

	w := doPost(t, rt, "/v1/cache/flush", "application/json", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("cluster flush: %d: %s", w.Code, w.Body)
	}
	var fr ClusterFlushResponse
	if err := json.Unmarshal(w.Body.Bytes(), &fr); err != nil {
		t.Fatalf("flush response: %v", err)
	}
	if !fr.Flushed || fr.Generation != 1 || len(fr.Shards) != 3 {
		t.Errorf("flush response off: %+v", fr)
	}

	// No shard may serve a pre-flush artifact: every cache is empty.
	for i, s := range f.servers {
		if n := shardStats(t, s).Cache.Entries; n != 0 {
			t.Errorf("shard%d still holds %d cache entries after cluster flush", i, n)
		}
	}
	// And the next read of a previously warm key is a recompute.
	var dr server.DecodeResponse
	w = doPost(t, rt, "/v1/decode", "application/json", bodies[0])
	if err := json.Unmarshal(w.Body.Bytes(), &dr); err != nil {
		t.Fatalf("post-flush decode: %v: %s", err, w.Body)
	}
	if dr.Cached {
		t.Errorf("post-flush decode served from cache; flush did not take")
	}
}

// TestClusterFlushDeadShard: a flush that cannot reach every shard fails
// loudly with the typed 503 — a silently partial flush would leave stale
// artifacts servable.
func TestClusterFlushDeadShard(t *testing.T) {
	f := newTestFleet(t, 3)
	rt := newTestRouter(t, f, nil)
	f.https[1].Close()

	w := doPost(t, rt, "/v1/cache/flush", "application/json", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("flush with dead shard: want 503, got %d: %s", w.Code, w.Body)
	}
	if code := respCode(t, w.Body.String()); code != "shard_down" {
		t.Errorf("want error code shard_down, got %q", code)
	}
	if !strings.Contains(w.Body.String(), "shard1") {
		t.Errorf("flush failure should name the unreachable shard: %s", w.Body)
	}
}

// TestRouterStatsShape: the router's own healthz/stats endpoints report the
// router role, fleet health, and the routed-by-shard ownership counts.
func TestRouterStatsShape(t *testing.T) {
	f := newTestFleet(t, 2)
	rt := newTestRouter(t, f, nil)

	body := []byte(`{"schema":"mis","graph":{"family":"cycle","n":48}}`)
	if w := doPost(t, rt, "/v1/decode", "application/json", body); w.Code != http.StatusOK {
		t.Fatalf("decode: %d: %s", w.Code, w.Body)
	}

	hw := doGet(t, rt, "/v1/healthz")
	var hz RouterHealthz
	if err := json.Unmarshal(hw.Body.Bytes(), &hz); err != nil {
		t.Fatalf("healthz: %v", err)
	}
	if hz.Role != "router" || hz.Shards != 2 || hz.HealthyShards != 2 || hz.Status != "ok" {
		t.Errorf("healthz off: %+v", hz)
	}

	sw := doGet(t, rt, "/v1/stats")
	var st RouterStats
	if err := json.Unmarshal(sw.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Role != "router" || len(st.Fleet) != 2 {
		t.Errorf("stats fleet off: %+v", st)
	}
	total := uint64(0)
	for _, n := range st.Cluster.RoutedByShard {
		total += n
	}
	if total == 0 {
		t.Errorf("routed_by_shard recorded nothing: %+v", st.Cluster)
	}
	if st.Cluster.Forwards == 0 {
		t.Errorf("forward not counted: %+v", st.Cluster)
	}
}
