// Package cluster is the fleet tier of the serving layer (DESIGN.md §9): a
// router that owns no artifacts itself but assigns every artifact key to an
// owning shard by rendezvous hashing, forwards requests to the owner over
// the binary batch framing, replicates hot artifacts to the owner's replica
// set, and degrades — failover, then local compute — when shards die.
//
// Rendezvous (highest-random-weight) hashing gives the two properties the
// cache contract needs without any coordination state: every process that
// knows the shard names computes the same owner for a key, and adding or
// removing one shard of N moves only the keys that shard wins — an expected
// 1/N of the keyspace — while every other key keeps its owner (so a fleet
// resize invalidates almost nothing).
package cluster

import (
	"hash/fnv"
	"sort"
)

// score is the rendezvous weight of (shard, key): a 64-bit FNV-1a over the
// shard name and the key, NUL-separated. FNV is stable across processes and
// architectures — unlike Go's map iteration or hash/maphash seeds — which is
// what makes the owner assignment a pure function of (key, shard names).
func score(shard, key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(shard))
	h.Write([]byte{0})
	h.Write([]byte(key))
	return h.Sum64()
}

// Rank orders shards by descending rendezvous score for key, breaking score
// ties by ascending name so the order is total and deterministic. The first
// element is the key's owner; the next Replicas(k) elements are its replica
// set; the remainder is the failover order.
func Rank(key string, shards []string) []string {
	out := make([]string, len(shards))
	copy(out, shards)
	scores := make(map[string]uint64, len(out))
	for _, s := range out {
		scores[s] = score(s, key)
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := scores[out[i]], scores[out[j]]
		if si != sj {
			return si > sj
		}
		return out[i] < out[j]
	})
	return out
}

// Owner returns the owning shard for key ("" for an empty fleet).
func Owner(key string, shards []string) string {
	if len(shards) == 0 {
		return ""
	}
	best := shards[0]
	bestScore := score(best, key)
	for _, s := range shards[1:] {
		if sc := score(s, key); sc > bestScore || (sc == bestScore && s < best) {
			best, bestScore = s, sc
		}
	}
	return best
}

// Replicas returns the k shards ranked immediately after the owner — the
// replica set hot artifacts are pushed to. The owner is never a member, and
// the set is capped at the fleet size minus one.
func Replicas(key string, shards []string, k int) []string {
	if k <= 0 || len(shards) <= 1 {
		return nil
	}
	rank := Rank(key, shards)
	if k > len(rank)-1 {
		k = len(rank) - 1
	}
	return rank[1 : 1+k]
}
