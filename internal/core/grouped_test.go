package core

import (
	"math/rand"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
)

func TestGroupedRoundtripAdjacentHolders(t *testing.T) {
	g := graph.Path(900)
	codec := GroupedOneBitCodec{Radius: 180, GroupRadius: 2}
	// Two groups far apart: an adjacent pair and a chain of three.
	va := VarAdvice{
		10:  bitstr.MustParse("1101"),
		11:  bitstr.MustParse("0"),
		700: bitstr.MustParse("11"),
		701: bitstr.MustParse("00"),
		702: bitstr.MustParse("101"),
	}
	advice, err := codec.Encode(g, va)
	if err != nil {
		t.Fatal(err)
	}
	if kind, beta := Classify(advice); kind != UniformFixedLength || beta != 1 {
		t.Errorf("advice %v/%d, want uniform 1-bit", kind, beta)
	}
	decoded, stats, err := codec.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(va) {
		t.Fatalf("roundtrip mismatch: %v", decoded)
	}
	if stats.Rounds != codec.Radius {
		t.Errorf("rounds = %d, want %d", stats.Rounds, codec.Radius)
	}
}

func TestGroupedEmptyPayloads(t *testing.T) {
	g := graph.Cycle(400)
	codec := GroupedOneBitCodec{Radius: 110, GroupRadius: 2}
	va := VarAdvice{5: {}, 6: bitstr.MustParse("1")}
	advice, err := codec.Encode(g, va)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := codec.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(va) {
		t.Fatalf("roundtrip mismatch: %v", decoded)
	}
}

func TestGroupedNoHolders(t *testing.T) {
	g := graph.Cycle(50)
	codec := GroupedOneBitCodec{Radius: 20, GroupRadius: 1}
	advice, err := codec.Encode(g, VarAdvice{})
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := codec.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 0 {
		t.Errorf("phantom holders: %v", decoded)
	}
}

func TestGroupedRejectsCloseRepresentatives(t *testing.T) {
	g := graph.Path(200)
	codec := GroupedOneBitCodec{Radius: 40, GroupRadius: 1}
	// Two singleton groups at distance 30 < 2*Radius+2.
	va := VarAdvice{0: bitstr.MustParse("1"), 30: bitstr.MustParse("0")}
	if _, err := codec.Encode(g, va); err == nil {
		t.Error("close representatives accepted")
	}
}

func TestGroupedRejectsLongChains(t *testing.T) {
	g := graph.Path(200)
	codec := GroupedOneBitCodec{Radius: 60, GroupRadius: 1}
	// A proximity chain stretching past the address radius (4).
	va := VarAdvice{}
	for v := 50; v <= 56; v++ {
		va[v] = bitstr.MustParse("1")
	}
	if _, err := codec.Encode(g, va); err == nil {
		t.Error("over-long proximity chain accepted")
	}
}

func TestGroupedValidate(t *testing.T) {
	if _, err := (GroupedOneBitCodec{Radius: 40}).Encode(graph.Path(10), VarAdvice{}); err == nil {
		t.Error("zero group radius accepted")
	}
	if _, err := (GroupedOneBitCodec{Radius: 5, GroupRadius: 3}).Encode(graph.Path(10), VarAdvice{}); err == nil {
		t.Error("radius below address ball accepted")
	}
}

func TestGroupedRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	codec := GroupedOneBitCodec{Radius: 150, GroupRadius: 2}
	for trial := 0; trial < 10; trial++ {
		g := graph.Cycle(1000)
		// One cluster of 1-2 adjacent holders at a random location plus a
		// singleton on the opposite side.
		base := rng.Intn(100)
		va := VarAdvice{}
		for k := 0; k < 1+rng.Intn(2); k++ {
			payload := bitstr.String{}
			for i := 0; i < rng.Intn(5); i++ {
				payload = payload.Append(rng.Intn(2))
			}
			va[base+k] = payload
		}
		va[base+500] = bitstr.MustParse("10")
		advice, err := codec.Encode(g, va)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		decoded, _, err := codec.Decode(g, advice)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !decoded.Equal(va) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}
