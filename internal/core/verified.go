package core

import (
	"fmt"

	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// This file is the robustness half of the schema framework: verified
// decoding. Definition 2 only promises a correct output for the prover's
// own advice; on corrupted advice a decoder may error out — or it may
// produce a labeling that merely looks like a solution. The Verified
// variants close that gap by always running the problem verifier on the
// decoded output, so a schema execution ends in exactly one of two states:
// a verified-valid solution, or an error. An invalid output caught here is
// reported as fault.ErrDetectedCorruption. Experiment E9 measures this
// contract under injected faults.

// DecodeVerified runs s.Decode and then the problem's verifier. It returns
// the solution only when it is valid; a decoded-but-invalid output is
// returned as an error wrapping fault.ErrDetectedCorruption, never as a
// solution.
func DecodeVerified(s Schema, g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
	sol, stats, err := s.Decode(g, advice)
	if err != nil {
		return nil, stats, fmt.Errorf("core: %s decode: %w", s.Name(), err)
	}
	if err := lcl.Verify(s.Problem(), g, sol); err != nil {
		return nil, stats, fmt.Errorf("core: %s output failed verification (%v): %w",
			s.Name(), err, fault.ErrDetectedCorruption)
	}
	return sol, stats, nil
}

// DecodeVarVerified is DecodeVerified for variable-length schema stages.
func DecodeVarVerified(s VarSchema, g *graph.Graph, va VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	sol, stats, err := s.DecodeVar(g, va, oracles)
	if err != nil {
		return nil, stats, fmt.Errorf("core: %s decode: %w", s.Name(), err)
	}
	if err := lcl.Verify(s.Problem(), g, sol); err != nil {
		return nil, stats, fmt.Errorf("core: %s output failed verification (%v): %w",
			s.Name(), err, fault.ErrDetectedCorruption)
	}
	return sol, stats, nil
}
