package core

import (
	"fmt"

	"localadvice/internal/graph"
	"localadvice/internal/local"
)

// This file makes Definition 3's "for any ε > 0 there exists an ε-sparse
// schema" operational: every sparse schema in this codebase exposes an
// integer knob (mark spacing, cover radius, cluster radius) that trades
// advice density for decoding radius, and TuneSparsity searches the knob
// until the ones ratio drops below the requested ε.

// KnobbedEncoder produces one-bit-per-node advice for a given knob value.
// Larger knobs must not increase the ones ratio (the searches rely on
// approximate monotonicity); an error for a particular knob (e.g. the graph
// is too small for that spacing) ends the search.
type KnobbedEncoder func(knob int) (local.Advice, error)

// TuneResult reports a successful sparsity search.
type TuneResult struct {
	Knob   int
	Advice local.Advice
	Ratio  float64
}

// TuneSparsity doubles the knob from minKnob until the advice's ones ratio
// is at most eps, or the knob exceeds maxKnob, or the encoder fails. It
// returns the first knob that achieves the target.
func TuneSparsity(build KnobbedEncoder, eps float64, minKnob, maxKnob int) (TuneResult, error) {
	if eps <= 0 || eps >= 1 {
		return TuneResult{}, fmt.Errorf("core: eps must be in (0,1), got %v", eps)
	}
	if minKnob < 1 || maxKnob < minKnob {
		return TuneResult{}, fmt.Errorf("core: bad knob range [%d, %d]", minKnob, maxKnob)
	}
	var lastErr error
	for knob := minKnob; knob <= maxKnob; knob *= 2 {
		advice, err := build(knob)
		if err != nil {
			lastErr = err
			break
		}
		ratio, err := Sparsity(advice)
		if err != nil {
			return TuneResult{}, fmt.Errorf("core: knob %d produced non-1-bit advice: %w", knob, err)
		}
		if ratio <= eps {
			return TuneResult{Knob: knob, Advice: advice, Ratio: ratio}, nil
		}
	}
	if lastErr != nil {
		return TuneResult{}, fmt.Errorf("core: no knob in [%d, %d] reached eps=%v (encoder failed: %w)", minKnob, maxKnob, eps, lastErr)
	}
	return TuneResult{}, fmt.Errorf("core: no knob in [%d, %d] reached eps=%v", minKnob, maxKnob, eps)
}

// HolderRatio is the companion measure for variable-length schemas: the
// fraction of nodes that carry any bits (Definition 4's density).
func HolderRatio(g *graph.Graph, va VarAdvice) float64 {
	if g.N() == 0 {
		return 0
	}
	return float64(len(va)) / float64(g.N())
}
