package core

import (
	"errors"
	"fmt"
	"testing"

	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// stubSchema is a controllable schema for exercising the verified-decode
// contract: its decoder returns a fixed solution or a fixed error.
type stubSchema struct {
	sol *lcl.Solution
	err error
}

func (stubSchema) Name() string                              { return "stub" }
func (stubSchema) Problem() lcl.Problem                      { return lcl.Coloring{K: 3} }
func (stubSchema) Encode(*graph.Graph) (local.Advice, error) { return nil, nil }
func (s stubSchema) Decode(*graph.Graph, local.Advice) (*lcl.Solution, local.Stats, error) {
	return s.sol, local.Stats{}, s.err
}

func TestDecodeVerified(t *testing.T) {
	g := graph.Cycle(6)

	valid := lcl.NewSolution(g)
	for v := 0; v < g.N(); v++ {
		valid.Node[v] = v%3 + 1
	}
	if _, _, err := DecodeVerified(stubSchema{sol: valid}, g, nil); err != nil {
		t.Fatalf("valid output rejected: %v", err)
	}

	// A monochromatic "coloring" decodes without error but cannot verify:
	// it must surface as detected corruption, never as a solution.
	invalid := lcl.NewSolution(g)
	for v := 0; v < g.N(); v++ {
		invalid.Node[v] = 1
	}
	sol, _, err := DecodeVerified(stubSchema{sol: invalid}, g, nil)
	if sol != nil {
		t.Fatal("invalid output escaped as a solution")
	}
	if !errors.Is(err, fault.ErrDetectedCorruption) {
		t.Fatalf("err = %v, want ErrDetectedCorruption", err)
	}

	// Decoder errors pass through (and are not mislabeled as corruption
	// detected by the verifier).
	decodeErr := fmt.Errorf("garbled advice")
	if _, _, err := DecodeVerified(stubSchema{err: decodeErr}, g, nil); !errors.Is(err, decodeErr) {
		t.Fatalf("err = %v, want wrapped decode error", err)
	}
}
