package core

import (
	"fmt"
	"math/bits"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// GroupedOneBitCodec extends the Lemma 2 conversion to variable-length
// schemas whose bit-holding nodes may sit arbitrarily close together — the
// situation Lemma 1 composition produces (e.g. the adjacent marked pairs of
// the orientation schema inside the splitting pipeline).
//
// Holders within GroupRadius of each other are merged into a group; the
// group's payloads are concatenated into a single super-payload stored at
// the group's smallest-ID member (the representative), with each member
// addressed by its rank in the ID-sorted ball of radius addrRadius around
// the representative — a Δ- and radius-bounded address, so the advice stays
// independent of n. The super-payload rides the ordinary one-bit path
// encoding of OneBitCodec; only the (sparse) representatives must satisfy
// the pairwise-spacing requirement.
type GroupedOneBitCodec struct {
	// Radius is the decode radius of the underlying path code; every
	// group's super-payload must marker-encode into at most Radius bits.
	Radius int
	// GroupRadius is the proximity threshold for merging holders.
	GroupRadius int
}

// lenWidth is the fixed width of the per-member payload-length field;
// per-holder advice payloads in this codebase are at most a couple of
// tagged records (well under 256 bits), and a narrow field keeps the
// super-payload compact — important because the one-bit path code expands
// every payload bit into ~4 nodes.
const lenWidth = 8

// addrRadius bounds how far a member may sit from its group's
// representative: proximity chains of holders can stretch a group, so the
// address ball is wider than the merge threshold.
func (c GroupedOneBitCodec) addrRadius() int { return 4 * c.GroupRadius }

func (c GroupedOneBitCodec) validate() error {
	if c.GroupRadius < 1 {
		return fmt.Errorf("core: grouped codec needs GroupRadius >= 1, got %d", c.GroupRadius)
	}
	if c.Radius < c.addrRadius()+bitstr.Header.Len()+1 {
		return fmt.Errorf("core: grouped codec radius %d too small for its address ball", c.Radius)
	}
	return nil
}

// groups partitions the holders into proximity groups (transitive closure
// of "within GroupRadius"), each sorted by ID with the representative
// first.
func (c GroupedOneBitCodec) groups(g *graph.Graph, va VarAdvice) ([][]int, error) {
	holders := make([]int, 0, len(va))
	for v := range va {
		holders = append(holders, v)
	}
	sort.Slice(holders, func(a, b int) bool { return g.ID(holders[a]) < g.ID(holders[b]) })
	parent := map[int]int{}
	var find func(v int) int
	find = func(v int) int {
		if parent[v] == v {
			return v
		}
		parent[v] = find(parent[v])
		return parent[v]
	}
	for _, v := range holders {
		parent[v] = v
	}
	for i, u := range holders {
		dist := g.BFSFrom(u)
		for _, w := range holders[i+1:] {
			if d := dist[w]; d != -1 && d <= c.GroupRadius {
				parent[find(u)] = find(w)
			}
		}
	}
	byRoot := map[int][]int{}
	for _, v := range holders {
		r := find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	var out [][]int
	for _, members := range byRoot {
		sort.Slice(members, func(a, b int) bool { return g.ID(members[a]) < g.ID(members[b]) })
		out = append(out, members)
	}
	sort.Slice(out, func(a, b int) bool { return g.ID(out[a][0]) < g.ID(out[b][0]) })
	return out, nil
}

// addrBall returns the ID-sorted ball of the address radius around rep.
func (c GroupedOneBitCodec) addrBall(g *graph.Graph, rep int) []int {
	ball := g.Ball(rep, c.addrRadius())
	sort.Slice(ball, func(a, b int) bool { return g.ID(ball[a]) < g.ID(ball[b]) })
	return ball
}

func rankWidth(ballSize int) int {
	w := bits.Len(uint(ballSize - 1))
	if w == 0 {
		w = 1
	}
	return w
}

// Encode converts a sparse assignment with possibly-adjacent holders into
// uniform one-bit advice.
func (c GroupedOneBitCodec) Encode(g *graph.Graph, va VarAdvice) (local.Advice, error) {
	if err := c.validate(); err != nil {
		return nil, err
	}
	groups, err := c.groups(g, va)
	if err != nil {
		return nil, err
	}
	super := make(VarAdvice, len(groups))
	for _, members := range groups {
		rep := members[0]
		ball := c.addrBall(g, rep)
		rankOf := map[int]int{}
		for r, v := range ball {
			rankOf[v] = r
		}
		w := rankWidth(len(ball))
		payload := bitstr.String{}
		for _, m := range members {
			rank, ok := rankOf[m]
			if !ok {
				return nil, fmt.Errorf("core: holder %d is %d+ hops from its representative %d — proximity chain too long for GroupRadius=%d",
					m, c.addrRadius(), rep, c.GroupRadius)
			}
			sub := va[m]
			if sub.Len() >= 1<<lenWidth {
				return nil, fmt.Errorf("core: holder %d payload of %d bits exceeds the length field", m, sub.Len())
			}
			payload = payload.
				Concat(bitstr.FromUint(uint64(rank), w)).
				Concat(bitstr.FromUint(uint64(sub.Len()), lenWidth)).
				Concat(sub)
		}
		super[rep] = payload
	}
	base := OneBitCodec{Radius: c.Radius}
	advice, err := base.Encode(g, super)
	if err != nil {
		return nil, fmt.Errorf("core: grouped encode: %w", err)
	}
	// Self-check the full grouped roundtrip.
	decoded, _, err := c.Decode(g, advice)
	if err != nil {
		return nil, fmt.Errorf("core: grouped self-check: %w", err)
	}
	if !decoded.Equal(va) {
		return nil, fmt.Errorf("core: grouped self-check mismatch (%d vs %d holders)", len(decoded), len(va))
	}
	return advice, nil
}

// Decode recovers the original sparse assignment.
func (c GroupedOneBitCodec) Decode(g *graph.Graph, advice local.Advice) (VarAdvice, local.Stats, error) {
	if err := c.validate(); err != nil {
		return nil, local.Stats{}, err
	}
	base := OneBitCodec{Radius: c.Radius}
	super, stats, err := base.Decode(g, advice)
	if err != nil {
		return nil, stats, err
	}
	out := make(VarAdvice)
	for rep, payload := range super {
		ball := c.addrBall(g, rep)
		w := rankWidth(len(ball))
		pos := 0
		for pos < payload.Len() {
			if pos+w+lenWidth > payload.Len() {
				return nil, stats, fmt.Errorf("core: truncated member entry at representative %d", rep)
			}
			rank := int(payload.Slice(pos, pos+w).Uint())
			pos += w
			plen := int(payload.Slice(pos, pos+lenWidth).Uint())
			pos += lenWidth
			if pos+plen > payload.Len() {
				return nil, stats, fmt.Errorf("core: member payload overruns at representative %d", rep)
			}
			if rank >= len(ball) {
				return nil, stats, fmt.Errorf("core: member rank %d outside address ball of %d", rank, len(ball))
			}
			member := ball[rank]
			if _, dup := out[member]; dup {
				return nil, stats, fmt.Errorf("core: two payloads address node %d", member)
			}
			out[member] = payload.Slice(pos, pos+plen)
			pos += plen
		}
	}
	return out, stats, nil
}

// AsGroupedOneBitSchema exposes a variable-length schema as a uniform
// one-bit schema via the grouped codec — the fully general Lemma 2.
func AsGroupedOneBitSchema(vs VarSchema, codec GroupedOneBitCodec) Schema {
	return &groupedAdapter{vs: vs, codec: codec}
}

type groupedAdapter struct {
	vs    VarSchema
	codec GroupedOneBitCodec
}

func (a *groupedAdapter) Name() string { return a.vs.Name() + "+1bit-grouped" }

func (a *groupedAdapter) Problem() lcl.Problem { return a.vs.Problem() }

func (a *groupedAdapter) Encode(g *graph.Graph) (local.Advice, error) {
	va, err := a.vs.EncodeVar(g, nil)
	if err != nil {
		return nil, err
	}
	return a.codec.Encode(g, va)
}

func (a *groupedAdapter) Decode(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
	va, pre, err := a.codec.Decode(g, advice)
	if err != nil {
		return nil, pre, err
	}
	sol, stats, err := a.vs.DecodeVar(g, va, nil)
	stats.Rounds += pre.Rounds
	stats.Messages += pre.Messages
	return sol, stats, err
}
