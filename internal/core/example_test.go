package core_test

import (
	"fmt"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
)

// Lemma 2 in one picture: a 4-bit payload at one node of a cycle becomes a
// uniform one-bit-per-node assignment and is recovered by a LOCAL decoder.
func ExampleOneBitCodec() {
	g := graph.Cycle(120)
	codec := core.OneBitCodec{Radius: 30}
	va := core.VarAdvice{7: bitstr.MustParse("1010")}

	advice, err := codec.Encode(g, va)
	if err != nil {
		panic(err)
	}
	kind, beta := core.Classify(advice)
	fmt.Println("advice:", kind, "with", beta, "bit per node")

	decoded, stats, err := codec.Decode(g, advice)
	if err != nil {
		panic(err)
	}
	fmt.Println("recovered payload:", decoded[7], "in", stats.Rounds, "rounds")
	// Output:
	// advice: uniform fixed-length with 1 bit per node
	// recovered payload: 1010 in 30 rounds
}

// Definition 2's taxonomy of advice assignments.
func ExampleClassify() {
	uniform := core.VarAdvice{0: bitstr.New(1), 1: bitstr.New(0)}.Dense(2)
	subset := core.VarAdvice{0: bitstr.New(1, 1)}.Dense(3)
	variable := core.VarAdvice{0: bitstr.New(1), 1: bitstr.New(1, 0)}.Dense(3)
	k1, b1 := core.Classify(uniform)
	k2, b2 := core.Classify(subset)
	k3, b3 := core.Classify(variable)
	fmt.Printf("%v (beta=%d)\n%v (beta=%d)\n%v (beta=%d)\n", k1, b1, k2, b2, k3, b3)
	// Output:
	// uniform fixed-length (beta=1)
	// subset fixed-length (beta=2)
	// variable-length (beta=2)
}
