package core

import (
	"math/rand"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		name string
		adv  local.Advice
		kind Kind
		beta int
	}{
		{"uniform 1-bit", local.Advice{bitstr.New(1), bitstr.New(0)}, UniformFixedLength, 1},
		{"uniform empty", local.Advice{{}, {}}, UniformFixedLength, 0},
		{"subset fixed", local.Advice{bitstr.New(1, 0), {}, bitstr.New(0, 0)}, SubsetFixedLength, 2},
		{"variable", local.Advice{bitstr.New(1), {}, bitstr.New(0, 0)}, VariableLength, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			kind, beta := Classify(tt.adv)
			if kind != tt.kind || beta != tt.beta {
				t.Errorf("Classify = (%v, %d), want (%v, %d)", kind, beta, tt.kind, tt.beta)
			}
		})
	}
}

func TestKindString(t *testing.T) {
	if UniformFixedLength.String() == "" || Kind(99).String() == "" {
		t.Error("Kind.String empty")
	}
}

func TestVarAdviceDenseRoundtrip(t *testing.T) {
	va := VarAdvice{2: bitstr.New(1, 0), 5: bitstr.New(1)}
	dense := va.Dense(8)
	back := SparseFromDense(dense)
	if !back.Equal(va) {
		t.Errorf("roundtrip mismatch: %v vs %v", back, va)
	}
	if va.TotalBits() != 3 {
		t.Errorf("TotalBits = %d", va.TotalBits())
	}
}

func TestCheckComposable(t *testing.T) {
	g := graph.Path(20)
	va := VarAdvice{0: bitstr.New(1), 10: bitstr.New(1, 0)}
	if err := CheckComposable(g, va, 4, 1, 2); err != nil {
		t.Errorf("well-spaced assignment rejected: %v", err)
	}
	// Too many bits per holder.
	if err := CheckComposable(g, va, 4, 1, 1); err == nil {
		t.Error("over-long payload accepted")
	}
	// Holders too dense for gamma0=1 with a big alpha.
	if err := CheckComposable(g, va, 10, 1, 5); err == nil {
		t.Error("dense holders accepted")
	}
}

func TestOneBitRoundtripOnFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	codec := OneBitCodec{Radius: 40}
	families := map[string]struct {
		g       *graph.Graph
		holders []int
	}{
		"path200":    {graph.Path(200), []int{0, 199}},
		"cycle240":   {graph.Cycle(240), []int{0, 120}},
		"grid10x120": {graph.Grid2D(10, 120), []int{0, 1199}},
	}
	for name, tc := range families {
		g, holders := tc.g, tc.holders
		// Random payloads with length <= MaxPayloadBits.
		va := make(VarAdvice)
		for _, v := range holders {
			payload := bitstr.String{}
			plen := 1 + rng.Intn(codec.MaxPayloadBits())
			for i := 0; i < plen; i++ {
				payload = payload.Append(rng.Intn(2))
			}
			va[v] = payload
		}
		if g.Dist(holders[0], holders[1]) <= 2*codec.Radius+2 {
			t.Fatalf("%s: test holders too close", name)
		}
		advice, err := codec.Encode(g, va)
		if err != nil {
			t.Fatalf("%s: encode: %v", name, err)
		}
		if kind, beta := Classify(advice); kind != UniformFixedLength || beta != 1 {
			t.Errorf("%s: advice is %v/%d, want uniform 1-bit", name, kind, beta)
		}
		decoded, stats, err := codec.Decode(g, advice)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if !decoded.Equal(va) {
			t.Errorf("%s: decode mismatch", name)
		}
		if stats.Rounds != codec.Radius {
			t.Errorf("%s: rounds = %d, want %d", name, stats.Rounds, codec.Radius)
		}
	}
}

func TestOneBitEmptyPayload(t *testing.T) {
	g := graph.Path(60)
	codec := OneBitCodec{Radius: 12}
	va := VarAdvice{0: {}}
	advice, err := codec.Encode(g, va)
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := codec.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(va) {
		t.Errorf("decoded %v", decoded)
	}
}

func TestOneBitNoHolders(t *testing.T) {
	g := graph.Cycle(10)
	codec := OneBitCodec{Radius: 4 + bitstr.Header.Len() + 1}
	advice, err := codec.Encode(g, VarAdvice{})
	if err != nil {
		t.Fatal(err)
	}
	decoded, _, err := codec.Decode(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	if len(decoded) != 0 {
		t.Errorf("phantom holders decoded: %v", decoded)
	}
}

func TestOneBitRejectsCloseHolders(t *testing.T) {
	g := graph.Path(100)
	codec := OneBitCodec{Radius: 20}
	va := VarAdvice{0: bitstr.New(1), 10: bitstr.New(0)}
	if _, err := codec.Encode(g, va); err == nil {
		t.Error("holders at distance 10 accepted with radius 20")
	}
}

func TestOneBitRejectsLongPayload(t *testing.T) {
	g := graph.Path(100)
	codec := OneBitCodec{Radius: 15}
	long := bitstr.String{}
	for i := 0; i < 10; i++ {
		long = long.Append(1)
	}
	if _, err := codec.Encode(g, VarAdvice{0: long}); err == nil {
		t.Error("over-long payload accepted")
	}
}

func TestOneBitRejectsTightGraph(t *testing.T) {
	// The payload needs a geodesic longer than the graph's eccentricity.
	g := graph.Path(5)
	codec := OneBitCodec{Radius: 20}
	payload := bitstr.New(1, 0, 1)
	if _, err := codec.Encode(g, VarAdvice{2: payload}); err == nil {
		t.Error("payload accepted without room for its path")
	}
}

func TestOneBitRandomPayloadsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	codec := OneBitCodec{Radius: 30}
	for trial := 0; trial < 25; trial++ {
		g := graph.Cycle(150 + rng.Intn(100))
		graph.AssignPermutedIDs(g, rng)
		va := make(VarAdvice)
		plen := rng.Intn(codec.MaxPayloadBits() + 1)
		payload := bitstr.String{}
		for i := 0; i < plen; i++ {
			payload = payload.Append(rng.Intn(2))
		}
		va[rng.Intn(g.N())] = payload
		advice, err := codec.Encode(g, va)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		decoded, _, err := codec.Decode(g, advice)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !decoded.Equal(va) {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

// leaderProblem is a test LCL: exactly the max-ID node of each component is
// labeled 1, everyone else 2. Radius-1 checkable only approximately; for
// tests we use a loose local check (label-1 nodes have no label-1 neighbor).
type leaderProblem struct{}

func (leaderProblem) Name() string        { return "leader" }
func (leaderProblem) Radius() int         { return 1 }
func (leaderProblem) NodeAlphabet() []int { return []int{1, 2} }
func (leaderProblem) EdgeAlphabet() []int { return nil }
func (leaderProblem) CheckNode(g *graph.Graph, v int, sol *lcl.Solution) error {
	return nil
}

// leaderStage marks the max-ID node with a 1-bit payload; decoding finds it
// from the advice.
type leaderStage struct{}

func (leaderStage) Name() string         { return "leader" }
func (leaderStage) Problem() lcl.Problem { return leaderProblem{} }

func (leaderStage) EncodeVar(g *graph.Graph, _ []*lcl.Solution) (VarAdvice, error) {
	best := 0
	for v := 1; v < g.N(); v++ {
		if g.ID(v) > g.ID(best) {
			best = v
		}
	}
	return VarAdvice{best: bitstr.New(1)}, nil
}

func (leaderStage) DecodeVar(g *graph.Graph, va VarAdvice, _ []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	sol := lcl.NewSolution(g)
	for v := range sol.Node {
		sol.Node[v] = 2
	}
	for v := range va {
		sol.Node[v] = 1
	}
	return sol, local.Stats{Rounds: 1}, nil
}

// parityStage 2-colors a connected bipartite graph using the leader from the
// oracle stage as the anchor of color 1.
type parityStage struct{}

func (parityStage) Name() string         { return "parity" }
func (parityStage) Problem() lcl.Problem { return lcl.Coloring{K: 2} }

func (parityStage) EncodeVar(*graph.Graph, []*lcl.Solution) (VarAdvice, error) {
	return VarAdvice{}, nil
}

func (parityStage) DecodeVar(g *graph.Graph, _ VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	leader := -1
	for v, l := range oracles[len(oracles)-1].Node {
		if l == 1 {
			leader = v
			break
		}
	}
	sol := lcl.NewSolution(g)
	for v, d := range g.BFSFrom(leader) {
		sol.Node[v] = 1 + d%2
	}
	return sol, local.Stats{Rounds: g.N()}, nil
}

func TestPipelineComposition(t *testing.T) {
	g := graph.Cycle(16)
	p := &Pipeline{PipelineName: "leader+parity", Stages: []VarSchema{leaderStage{}, parityStage{}}}
	va, err := p.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(va) != 1 {
		t.Fatalf("merged advice has %d holders, want 1", len(va))
	}
	sol, stats, err := p.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.Coloring{K: 2}, g, sol); err != nil {
		t.Errorf("pipeline output invalid: %v", err)
	}
	if stats.Rounds <= 0 {
		t.Error("no rounds accounted")
	}
}

func TestPipelineAsOneBitSchema(t *testing.T) {
	g := graph.Cycle(320)
	p := &Pipeline{PipelineName: "leader+parity", Stages: []VarSchema{leaderStage{}, parityStage{}}}
	s := AsOneBitSchema(p, OneBitCodec{Radius: 150})
	sol, advice, _, err := RunAndVerify(s, g)
	if err != nil {
		t.Fatal(err)
	}
	if kind, beta := Classify(advice); kind != UniformFixedLength || beta != 1 {
		t.Errorf("advice kind %v/%d", kind, beta)
	}
	if sol.Node[0] == lcl.Unset {
		t.Error("solution incomplete")
	}
	ratio, err := Sparsity(advice)
	if err != nil {
		t.Fatal(err)
	}
	if ratio <= 0 || ratio >= 0.5 {
		t.Errorf("sparsity ratio %v out of expected range", ratio)
	}
}

func TestPipelineAsVariableSchema(t *testing.T) {
	g := graph.Cycle(12)
	p := &Pipeline{PipelineName: "leader+parity", Stages: []VarSchema{leaderStage{}, parityStage{}}}
	s := AsSchema(p)
	if _, _, _, err := RunAndVerify(s, g); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineEmptyFails(t *testing.T) {
	p := &Pipeline{PipelineName: "empty"}
	if _, err := p.EncodeVar(graph.Path(3), nil); err == nil {
		t.Error("empty pipeline accepted")
	}
}

func TestSplitMergedMultiEntry(t *testing.T) {
	// Two entries for different stages on the same node.
	entry0 := bitstr.MarkerEncode(bitstr.FromUint(0, tagBits).Concat(bitstr.New(1)))
	entry1 := bitstr.MarkerEncode(bitstr.FromUint(1, tagBits).Concat(bitstr.New(0, 1)))
	merged := VarAdvice{3: entry0.Concat(entry1)}
	per, err := splitMerged(merged, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !per[0][3].Equal(bitstr.New(1)) {
		t.Errorf("stage 0 payload %v", per[0][3])
	}
	if !per[1][3].Equal(bitstr.New(0, 1)) {
		t.Errorf("stage 1 payload %v", per[1][3])
	}
}

func TestSplitMergedErrors(t *testing.T) {
	// Stage index out of range.
	entry := bitstr.MarkerEncode(bitstr.FromUint(7, tagBits))
	if _, err := splitMerged(VarAdvice{0: entry}, 2); err == nil {
		t.Error("bad stage tag accepted")
	}
	// Corrupt stream.
	if _, err := splitMerged(VarAdvice{0: bitstr.New(1, 0, 1)}, 2); err == nil {
		t.Error("corrupt merged payload accepted")
	}
	// Duplicate entries for one stage on one node.
	dup := bitstr.MarkerEncode(bitstr.FromUint(0, tagBits))
	if _, err := splitMerged(VarAdvice{0: dup.Concat(dup)}, 1); err == nil {
		t.Error("duplicate entries accepted")
	}
}
