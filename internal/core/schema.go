// Package core implements the paper's central contribution: the framework of
// advice schemas for local computation with advice.
//
// It provides
//
//   - advice schemas (Definition 2) as Encode/Decode pairs — a centralized
//     prover labels the nodes, a LOCAL algorithm decodes a solution;
//   - the three schema types of Definition 2 (uniform fixed-length, subset
//     fixed-length, variable-length) and their classification;
//   - sparsity accounting (Definition 3);
//   - the composability conditions (Definition 4) and a checker for them;
//   - generic schema composition (Lemma 1) via tagged payload merging;
//   - the variable-length to uniform one-bit-per-node conversion (Lemma 2)
//     using the paper's self-delimiting path encoding.
package core

import (
	"fmt"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// Schema is a (𝒢, Π, β, T)-advice schema (Definition 2): Encode is the
// centralized function f assigning bit strings to nodes; Decode is the LOCAL
// algorithm 𝒜 that, given the advice, outputs a valid solution of the
// problem within a number of rounds depending only on Δ (and the schema's
// parameters).
type Schema interface {
	// Name identifies the schema in experiment tables.
	Name() string
	// Problem is the LCL (or LCL-style) problem the schema solves; decoded
	// solutions are verified against it.
	Problem() lcl.Problem
	// Encode computes the advice for g. It fails if g is outside the
	// schema's graph family (e.g., not Δ-colorable).
	Encode(g *graph.Graph) (local.Advice, error)
	// Decode runs the LOCAL decoding algorithm on g with the given advice.
	Decode(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error)
}

// Kind is the schema type taxonomy of Definition 2.
type Kind int

const (
	// UniformFixedLength: all nodes hold bit strings of the same length.
	UniformFixedLength Kind = iota + 1
	// SubsetFixedLength: a subset holds strings of one common length, the
	// rest hold empty strings.
	SubsetFixedLength
	// VariableLength: holders may hold strings of different lengths.
	VariableLength
)

// String renders the schema type for experiment tables.
func (k Kind) String() string {
	switch k {
	case UniformFixedLength:
		return "uniform fixed-length"
	case SubsetFixedLength:
		return "subset fixed-length"
	case VariableLength:
		return "variable-length"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Classify returns the narrowest Definition 2 type describing the advice
// assignment, together with β = the maximum per-node length. Note that type
// 1 is a special case of type 2, which is a special case of type 3; Classify
// reports the most specific one.
func Classify(advice local.Advice) (Kind, int) {
	beta := advice.MaxBits()
	uniform := true
	subsetUniform := true
	var holderLen = -1
	for _, s := range advice {
		if s.Len() != beta {
			uniform = false
		}
		if s.Len() == 0 {
			continue
		}
		if holderLen == -1 {
			holderLen = s.Len()
		} else if s.Len() != holderLen {
			subsetUniform = false
		}
	}
	switch {
	case uniform:
		return UniformFixedLength, beta
	case subsetUniform:
		return SubsetFixedLength, beta
	default:
		return VariableLength, beta
	}
}

// Sparsity returns n1/(n0+n1) for one-bit-per-node advice (Definition 3).
func Sparsity(advice local.Advice) (float64, error) {
	return advice.OnesRatio()
}

// VarAdvice is a variable-length advice assignment in sparse form: only
// bit-holding nodes appear, keyed by node index.
type VarAdvice map[int]bitstr.String

// Dense converts a sparse variable-length assignment into the dense Advice
// slice used by the LOCAL engines.
func (va VarAdvice) Dense(n int) local.Advice {
	out := make(local.Advice, n)
	for v, s := range va {
		out[v] = s
	}
	return out
}

// SparseFromDense extracts the holders of a dense assignment.
func SparseFromDense(advice local.Advice) VarAdvice {
	out := make(VarAdvice)
	for v, s := range advice {
		if s.Len() > 0 {
			out[v] = s
		}
	}
	return out
}

// Equal reports whether two sparse assignments are identical.
func (va VarAdvice) Equal(other VarAdvice) bool {
	if len(va) != len(other) {
		return false
	}
	for v, s := range va {
		if o, ok := other[v]; !ok || !o.Equal(s) {
			return false
		}
	}
	return true
}

// TotalBits returns the sum of payload lengths.
func (va VarAdvice) TotalBits() int {
	total := 0
	for _, s := range va {
		total += s.Len()
	}
	return total
}

// CheckComposable verifies the quantitative conditions of Definition 4 on a
// concrete assignment: every α-radius neighborhood contains at most gamma0
// bit-holding nodes, and every holder carries at most maxBits bits (the
// cα/γ³ bound, computed by the caller from its parameters).
func CheckComposable(g *graph.Graph, va VarAdvice, alpha, gamma0, maxBits int) error {
	for v, s := range va {
		if s.Len() > maxBits {
			return fmt.Errorf("core: holder %d carries %d bits > bound %d", v, s.Len(), maxBits)
		}
		_ = v
	}
	holders := make([]bool, g.N())
	for v := range va {
		holders[v] = true
	}
	for v := 0; v < g.N(); v++ {
		count := 0
		for _, u := range g.Ball(v, alpha) {
			if holders[u] {
				count++
			}
		}
		if count > gamma0 {
			return fmt.Errorf("core: %d holders within distance %d of node %d (bound %d)", count, alpha, v, gamma0)
		}
	}
	return nil
}

// RunAndVerify encodes, decodes and verifies a schema on g, returning the
// decoded solution, the advice, and the decoding stats. It is the standard
// harness step shared by tests and experiments.
func RunAndVerify(s Schema, g *graph.Graph) (*lcl.Solution, local.Advice, local.Stats, error) {
	advice, err := s.Encode(g)
	if err != nil {
		return nil, nil, local.Stats{}, fmt.Errorf("core: %s encode: %w", s.Name(), err)
	}
	sol, stats, err := s.Decode(g, advice)
	if err != nil {
		return nil, advice, stats, fmt.Errorf("core: %s decode: %w", s.Name(), err)
	}
	if err := lcl.Verify(s.Problem(), g, sol); err != nil {
		return sol, advice, stats, fmt.Errorf("core: %s produced invalid solution: %w", s.Name(), err)
	}
	return sol, advice, stats, nil
}
