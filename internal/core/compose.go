package core

import (
	"fmt"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// VarSchema is a variable-length advice schema stage that may consume the
// solutions of earlier stages as oracles — the "schema for Π₂ assuming an
// oracle for Π₁" of the composability framework (Section 1.8). A stage with
// no oracle needs ignores the slice.
type VarSchema interface {
	// Name identifies the stage.
	Name() string
	// Problem is the problem this stage solves.
	Problem() lcl.Problem
	// EncodeVar computes sparse advice for g given the offline solutions of
	// all earlier stages, in pipeline order.
	EncodeVar(g *graph.Graph, oracles []*lcl.Solution) (VarAdvice, error)
	// DecodeVar reconstructs this stage's solution from its advice and the
	// already-decoded earlier solutions.
	DecodeVar(g *graph.Graph, va VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error)
}

// tagBits is the width of the stage index written in front of each merged
// payload entry; 8 bits bounds pipelines at 256 stages, far beyond any use.
const tagBits = 8

// Pipeline is Lemma 1 in executable form: it composes variable-length
// schema stages into a single variable-length schema. Stage i's advice is
// computed against the offline solutions of stages 0..i-1; on the decoding
// side, stages run in order, each feeding its decoded solution to the next.
//
// Advice merging: a node holding payloads from several stages stores the
// concatenation of marker-coded (stageIndex ++ payload) entries. The marker
// code is self-delimiting, so the decoder can split and demultiplex without
// any out-of-band lengths. The composed schema solves the last stage's
// problem.
type Pipeline struct {
	PipelineName string
	Stages       []VarSchema
}

var _ VarSchema = (*Pipeline)(nil)

// Name implements VarSchema.
func (p *Pipeline) Name() string { return p.PipelineName }

// Problem implements VarSchema: the pipeline solves its final stage's
// problem.
func (p *Pipeline) Problem() lcl.Problem { return p.Stages[len(p.Stages)-1].Problem() }

// EncodeVar implements VarSchema.
func (p *Pipeline) EncodeVar(g *graph.Graph, oracles []*lcl.Solution) (VarAdvice, error) {
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("core: empty pipeline")
	}
	merged := make(VarAdvice)
	sols := append([]*lcl.Solution(nil), oracles...)
	for i, stage := range p.Stages {
		va, err := stage.EncodeVar(g, sols)
		if err != nil {
			return nil, fmt.Errorf("core: pipeline stage %d (%s) encode: %w", i, stage.Name(), err)
		}
		for v, payload := range va {
			merged[v] = AppendTagged(merged[v], i, payload)
		}
		// Reconstruct this stage's offline solution for the next stage by
		// decoding — the prover is centralized, and using the decoded
		// solution (rather than a separately computed one) guarantees
		// encoder and decoder agree on the oracle handed downstream.
		sol, _, err := stage.DecodeVar(g, va, sols)
		if err != nil {
			return nil, fmt.Errorf("core: pipeline stage %d (%s) prover decode: %w", i, stage.Name(), err)
		}
		sols = append(sols, sol)
	}
	return merged, nil
}

// DecodeVar implements VarSchema.
func (p *Pipeline) DecodeVar(g *graph.Graph, merged VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	perStage, err := splitMerged(merged, len(p.Stages))
	if err != nil {
		return nil, local.Stats{}, err
	}
	sols := append([]*lcl.Solution(nil), oracles...)
	var total local.Stats
	var last *lcl.Solution
	for i, stage := range p.Stages {
		sol, stats, err := stage.DecodeVar(g, perStage[i], sols)
		if err != nil {
			return nil, total, fmt.Errorf("core: pipeline stage %d (%s) decode: %w", i, stage.Name(), err)
		}
		total.Rounds += stats.Rounds
		total.Messages += stats.Messages
		sols = append(sols, sol)
		last = sol
	}
	return last, total, nil
}

// AppendTagged appends a self-delimiting (tag, entry) record to a node's
// merged payload. Tags must fit in tagBits bits; SplitTagged reverses the
// operation. This is the wire format Lemma 1 composition uses, exposed so
// that recursive composites (e.g. the Δ-edge-coloring tree of Section 5)
// can reuse it.
func AppendTagged(payload bitstr.String, tag int, entry bitstr.String) bitstr.String {
	return payload.Concat(bitstr.MarkerEncode(bitstr.FromUint(uint64(tag), tagBits).Concat(entry)))
}

// SplitTagged splits a merged payload back into its (tag, entry) records.
// Tags must be < numTags; a node may hold at most one entry per tag.
func SplitTagged(s bitstr.String, numTags int) (map[int]bitstr.String, error) {
	out := make(map[int]bitstr.String)
	offset := 0
	for offset < s.Len() {
		rest := s.Slice(offset, s.Len())
		payload, consumed, err := bitstr.MarkerDecode(rest)
		if err != nil {
			return nil, fmt.Errorf("core: merged payload corrupt at bit %d: %w", offset, err)
		}
		if payload.Len() < tagBits {
			return nil, fmt.Errorf("core: merged entry shorter than tag")
		}
		tag := int(payload.Slice(0, tagBits).Uint())
		if tag < 0 || tag >= numTags {
			return nil, fmt.Errorf("core: entry tagged %d of %d", tag, numTags)
		}
		if _, dup := out[tag]; dup {
			return nil, fmt.Errorf("core: two entries for tag %d", tag)
		}
		out[tag] = payload.Slice(tagBits, payload.Len())
		offset += consumed
	}
	return out, nil
}

// splitMerged demultiplexes merged node payloads into per-stage sparse
// assignments.
func splitMerged(merged VarAdvice, stages int) ([]VarAdvice, error) {
	perStage := make([]VarAdvice, stages)
	for i := range perStage {
		perStage[i] = make(VarAdvice)
	}
	for v, s := range merged {
		entries, err := SplitTagged(s, stages)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", v, err)
		}
		for tag, entry := range entries {
			perStage[tag][v] = entry
		}
	}
	return perStage, nil
}

// schemaAdapter turns a VarSchema into a full Schema (Definition 2) by
// fixing the advice representation: either the sparse assignment shipped
// densely (variable-length schema) or, when OneBit is non-nil, the Lemma 2
// one-bit-per-node conversion.
type schemaAdapter struct {
	vs     VarSchema
	oneBit *OneBitCodec
}

// AsSchema exposes vs as a variable-length Schema.
func AsSchema(vs VarSchema) Schema { return &schemaAdapter{vs: vs} }

// AsOneBitSchema exposes vs as a uniform one-bit-per-node Schema via the
// given codec. Encoding fails if vs's holders violate the codec's spacing
// or capacity requirements.
func AsOneBitSchema(vs VarSchema, codec OneBitCodec) Schema {
	return &schemaAdapter{vs: vs, oneBit: &codec}
}

func (a *schemaAdapter) Name() string {
	if a.oneBit != nil {
		return a.vs.Name() + "+1bit"
	}
	return a.vs.Name()
}

func (a *schemaAdapter) Problem() lcl.Problem { return a.vs.Problem() }

func (a *schemaAdapter) Encode(g *graph.Graph) (local.Advice, error) {
	va, err := a.vs.EncodeVar(g, nil)
	if err != nil {
		return nil, err
	}
	if a.oneBit == nil {
		return va.Dense(g.N()), nil
	}
	return a.oneBit.Encode(g, va)
}

func (a *schemaAdapter) Decode(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
	var va VarAdvice
	var pre local.Stats
	if a.oneBit == nil {
		va = SparseFromDense(advice)
	} else {
		var err error
		va, pre, err = a.oneBit.Decode(g, advice)
		if err != nil {
			return nil, pre, err
		}
	}
	sol, stats, err := a.vs.DecodeVar(g, va, nil)
	stats.Rounds += pre.Rounds
	stats.Messages += pre.Messages
	return sol, stats, err
}
