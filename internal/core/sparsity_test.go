package core

import (
	"fmt"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/local"
)

// fakeKnobbed returns advice with ones on every knob-th node.
func fakeKnobbed(g *graph.Graph) KnobbedEncoder {
	return func(knob int) (local.Advice, error) {
		advice := make(local.Advice, g.N())
		for v := range advice {
			bit := 0
			if v%knob == 0 {
				bit = 1
			}
			advice[v] = bitstr.New(bit)
		}
		return advice, nil
	}
}

func TestTuneSparsityReachesEps(t *testing.T) {
	g := graph.Cycle(512)
	for _, eps := range []float64{0.3, 0.1, 0.02} {
		res, err := TuneSparsity(fakeKnobbed(g), eps, 2, 1024)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		if res.Ratio > eps {
			t.Errorf("eps=%v: achieved ratio %v", eps, res.Ratio)
		}
	}
}

func TestTuneSparsityKnobMonotone(t *testing.T) {
	g := graph.Cycle(512)
	loose, err := TuneSparsity(fakeKnobbed(g), 0.3, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := TuneSparsity(fakeKnobbed(g), 0.01, 2, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Knob <= loose.Knob {
		t.Errorf("tighter eps used knob %d <= %d", tight.Knob, loose.Knob)
	}
}

func TestTuneSparsityErrors(t *testing.T) {
	g := graph.Cycle(64)
	if _, err := TuneSparsity(fakeKnobbed(g), 0, 2, 64); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := TuneSparsity(fakeKnobbed(g), 0.5, 10, 5); err == nil {
		t.Error("inverted knob range accepted")
	}
	// Unreachable eps within the range.
	if _, err := TuneSparsity(fakeKnobbed(g), 0.001, 2, 4); err == nil {
		t.Error("unreachable eps reported success")
	}
	// Encoder failure ends the search.
	failing := func(knob int) (local.Advice, error) {
		if knob > 2 {
			return nil, fmt.Errorf("boom")
		}
		return fakeKnobbed(g)(knob)
	}
	if _, err := TuneSparsity(failing, 0.001, 2, 64); err == nil {
		t.Error("encoder failure swallowed")
	}
}

func TestHolderRatio(t *testing.T) {
	g := graph.Cycle(10)
	va := VarAdvice{0: bitstr.New(1), 5: bitstr.New(0, 1)}
	if got := HolderRatio(g, va); got != 0.2 {
		t.Errorf("HolderRatio = %v, want 0.2", got)
	}
	if HolderRatio(graph.New(0), VarAdvice{}) != 0 {
		t.Error("empty graph ratio not 0")
	}
}
