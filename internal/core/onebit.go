package core

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/local"
)

// OneBitCodec is the Lemma 2 machinery: it converts a variable-length advice
// assignment whose holders are spatially well separated into a uniform
// one-bit-per-node assignment, and back.
//
// Encoding (following Section 4 of the paper): each holder v's payload is
// wrapped in the self-delimiting marker code (header 11110110, blocks
// 110/1110, terminator 0) and written bit-by-bit along a geodesic path
// starting at v — the j-th bit goes to a node at distance exactly j-1 from
// v. All other nodes receive 0.
//
// Decoding is a LOCAL algorithm of radius Radius: a node v recognizes itself
// as a holder if (i) its own bit is 1, (ii) every distance shell around it
// contains at most one 1-node, (iii) all 1-nodes in its radius-Radius view
// lie on a single strictly-distance-increasing path starting at v, and (iv)
// the shell-occupancy string decodes under the marker code. These are the
// membership conditions of the set S' in Section 4; they make interior path
// nodes and bystanders fail while the true holder succeeds.
//
// Requirements checked by Encode: every marker-coded payload fits in Radius
// bits, holders are pairwise farther than 2*Radius+2 apart, and a geodesic
// of the needed length exists at each holder. Encode finishes by running
// Decode and verifying the round trip, so a successful Encode guarantees
// decodability.
type OneBitCodec struct {
	// Radius is the decoding radius R; payloads must marker-encode into at
	// most Radius bits.
	Radius int
}

// MaxPayloadBits returns the largest payload length (pre-encoding) that fits
// in the codec's radius.
func (c OneBitCodec) MaxPayloadBits() int {
	// header + 4 bits per payload bit + terminator <= Radius.
	return (c.Radius - bitstr.Header.Len() - 1) / 4
}

// Encode converts a sparse variable-length assignment into one bit per node.
func (c OneBitCodec) Encode(g *graph.Graph, va VarAdvice) (local.Advice, error) {
	if c.Radius < bitstr.Header.Len()+1 {
		return nil, fmt.Errorf("core: one-bit radius %d below header length", c.Radius)
	}
	holders := make([]int, 0, len(va))
	for v := range va {
		holders = append(holders, v)
	}
	sort.Ints(holders)

	// Spacing check.
	for i, u := range holders {
		dist := g.BFSFrom(u)
		for _, w := range holders[i+1:] {
			if d := dist[w]; d != -1 && d <= 2*c.Radius+2 {
				return nil, fmt.Errorf("core: holders %d and %d at distance %d <= %d", u, w, d, 2*c.Radius+2)
			}
		}
	}

	bits := make([]int, g.N()) // all zero
	for _, v := range holders {
		enc := bitstr.MarkerEncode(va[v])
		if enc.Len() > c.Radius {
			return nil, fmt.Errorf("core: payload of holder %d marker-encodes to %d bits > radius %d", v, enc.Len(), c.Radius)
		}
		path, err := geodesicPath(g, v, enc.Len()-1)
		if err != nil {
			return nil, fmt.Errorf("core: holder %d: %w", v, err)
		}
		for j, node := range path {
			bits[node] = enc.Bit(j)
		}
	}

	advice := make(local.Advice, g.N())
	for v, b := range bits {
		advice[v] = bitstr.New(b)
	}

	// Round-trip verification: the prover is centralized, so checking its
	// own work is legitimate and turns subtle decodability bugs into
	// immediate errors.
	decoded, _, err := c.Decode(g, advice)
	if err != nil {
		return nil, fmt.Errorf("core: one-bit self-check decode failed: %w", err)
	}
	if !decoded.Equal(va) {
		return nil, fmt.Errorf("core: one-bit self-check mismatch: encoded %d holders, decoded %d", len(va), len(decoded))
	}
	return advice, nil
}

// geodesicPath returns nodes p_0 = v, p_1, ..., p_length with
// dist(v, p_j) = j and consecutive nodes adjacent, choosing the
// smallest-ID continuation at every step for determinism. It fails if no
// node at distance `length` exists (eccentricity too small).
func geodesicPath(g *graph.Graph, v, length int) ([]int, error) {
	dist := g.BFSFrom(v)
	// Walk forward greedily: from the current node pick the smallest-ID
	// neighbor at the next distance. Because dist is a BFS layering, any
	// node at distance j with a neighbor at distance j+1 extends; a greedy
	// walk can dead-end, so do a DFS with smallest-ID preference.
	path := make([]int, 0, length+1)
	var dfs func(node, depth int) bool
	dfs = func(node, depth int) bool {
		path = append(path, node)
		if depth == length {
			return true
		}
		next := nextByID(g, node, dist, depth+1)
		for _, w := range next {
			if dfs(w, depth+1) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if !dfs(v, 0) {
		return nil, fmt.Errorf("core: no geodesic of length %d from node %d", length, v)
	}
	return path, nil
}

// nextByID returns the neighbors of node at the given BFS distance, sorted
// by ID.
func nextByID(g *graph.Graph, node int, dist []int, d int) []int {
	var out []int
	for _, w := range g.Neighbors(node) {
		if dist[w] == d {
			out = append(out, w)
		}
	}
	sort.Slice(out, func(a, b int) bool { return g.ID(out[a]) < g.ID(out[b]) })
	return out
}

// Decode recovers the variable-length assignment from one-bit advice. It is
// a LOCAL ball algorithm of radius c.Radius; the returned stats carry that
// round count.
func (c OneBitCodec) Decode(g *graph.Graph, advice local.Advice) (VarAdvice, local.Stats, error) {
	if len(advice) != g.N() {
		return nil, local.Stats{}, fmt.Errorf("core: advice length %d for %d nodes", len(advice), g.N())
	}
	for v, s := range advice {
		if s.Len() != 1 {
			return nil, local.Stats{}, fmt.Errorf("core: node %d holds %d bits, want 1", v, s.Len())
		}
	}
	outputs, stats := local.RunBall(g, advice, c.Radius, func(view *local.View) any {
		payload, ok := decodeCenter(view)
		if !ok {
			return nil
		}
		return payload
	})
	va := make(VarAdvice)
	for v, out := range outputs {
		if out != nil {
			va[v] = out.(bitstr.String)
		}
	}
	return va, stats, nil
}

// decodeCenter applies the holder-membership conditions to the view and, if
// they hold, returns the decoded payload.
func decodeCenter(view *local.View) (bitstr.String, bool) {
	if view.Advice[view.Center].Len() != 1 || view.Advice[view.Center].Bit(0) != 1 {
		return bitstr.String{}, false
	}
	// Shell occupancy: shellOne[d] = the unique 1-node at distance d, or -1.
	shellOne := make([]int, view.Radius+1)
	for i := range shellOne {
		shellOne[i] = -1
	}
	var ones []int
	for i := 0; i < view.G.N(); i++ {
		if view.Advice[i].Len() == 1 && view.Advice[i].Bit(0) == 1 {
			d := view.Dist[i]
			if shellOne[d] != -1 {
				return bitstr.String{}, false // two 1s in one shell
			}
			shellOne[d] = i
			ones = append(ones, i)
		}
	}
	// Deepest 1-node.
	maxD := 0
	for d, node := range shellOne {
		if node != -1 {
			maxD = d
		}
	}
	// All 1-nodes must lie on one strictly-distance-increasing path from
	// the center: layered reachability with mandatory waypoints.
	frontier := map[int]bool{view.Center: true}
	for d := 1; d <= maxD; d++ {
		next := map[int]bool{}
		for node := range frontier {
			for _, w := range view.G.Neighbors(node) {
				if view.Dist[w] == d {
					next[w] = true
				}
			}
		}
		if shellOne[d] != -1 {
			if !next[shellOne[d]] {
				return bitstr.String{}, false
			}
			next = map[int]bool{shellOne[d]: true}
		}
		if len(next) == 0 {
			return bitstr.String{}, false
		}
		frontier = next
	}
	// Derived string: shell occupancy out to the radius.
	s := bitstr.String{}
	for d := 0; d <= view.Radius; d++ {
		if d < len(shellOne) && shellOne[d] != -1 {
			s = s.Append(1)
		} else {
			s = s.Append(0)
		}
	}
	payload, _, err := bitstr.MarkerDecode(s)
	if err != nil {
		return bitstr.String{}, false
	}
	return payload, true
}
