package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/local"
)

// doBin posts a binary body (the batch protocol) and returns the recorder.
func doBin(t *testing.T, s *Server, path string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest("POST", path, bytes.NewReader(body))
	r.Header.Set("Content-Type", "application/octet-stream")
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// normalizeResponse strips the per-request fields (cache hit flag, timing)
// from a response body so fresh and disk-loaded answers can be compared
// byte for byte.
func normalizeResponse(t *testing.T, raw []byte, v any) string {
	t.Helper()
	if err := json.Unmarshal(raw, v); err != nil {
		t.Fatalf("bad response: %v: %s", err, raw)
	}
	switch r := v.(type) {
	case *EncodeResponse:
		r.Cached = false
		r.ElapsedNano = 0
	case *DecodeResponse:
		r.Cached = false
		r.ElapsedNano = 0
	}
	out, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// storeTestSpecs maps every registered schema to a graph its encoder
// accepts: the bit-identity property must cover the whole registry, not
// just the table-compiled schema.
var storeTestSpecs = map[string]string{
	"mis":        `{"family":"cycle","n":48}`,
	"orient":     `{"family":"cycle","n":60}`,
	"color3":     `{"family":"cycle","n":60}`,
	"deltacolor": `{"family":"torus","n":36}`,
	"growth":     `{"family":"cycle","n":96}`,
}

// TestPropertyStoreBitIdentity is the tentpole's correctness property: for
// EVERY schema in the registry, the responses of a restarted server that
// loads its artifacts from the persistent store are byte-identical to the
// responses of the server that computed them — and the restarted server
// never runs the engine (encode/compile) at all.
func TestPropertyStoreBitIdentity(t *testing.T) {
	dir := t.TempDir()

	fresh := newTestServer(t, Config{StoreDir: dir})
	type pair struct{ enc, dec string }
	want := map[string]pair{}
	for schema, spec := range storeTestSpecs {
		body := `{"schema":"` + schema + `","graph":` + spec + `}`
		we := doReq(t, fresh, "POST", "/v1/encode", body)
		wd := doReq(t, fresh, "POST", "/v1/decode", body)
		if we.Code != 200 || wd.Code != 200 {
			t.Fatalf("%s: fresh encode=%d decode=%d (%s / %s)", schema, we.Code, wd.Code, we.Body, wd.Body)
		}
		want[schema] = pair{
			enc: normalizeResponse(t, we.Body.Bytes(), &EncodeResponse{}),
			dec: normalizeResponse(t, wd.Body.Bytes(), &DecodeResponse{}),
		}
	}
	if fresh.engineComputes.Load() == 0 {
		t.Fatal("fresh server reported zero engine computes; the counter is broken")
	}

	// "Restart": a new server image — empty LRU, same disk.
	restarted := newTestServer(t, Config{StoreDir: dir})
	for schema, spec := range storeTestSpecs {
		body := `{"schema":"` + schema + `","graph":` + spec + `}`
		we := doReq(t, restarted, "POST", "/v1/encode", body)
		wd := doReq(t, restarted, "POST", "/v1/decode", body)
		if we.Code != 200 || wd.Code != 200 {
			t.Fatalf("%s: restarted encode=%d decode=%d", schema, we.Code, wd.Code)
		}
		if got := normalizeResponse(t, we.Body.Bytes(), &EncodeResponse{}); got != want[schema].enc {
			t.Errorf("%s: disk-loaded encode differs from fresh\n got: %s\nwant: %s", schema, got, want[schema].enc)
		}
		if got := normalizeResponse(t, wd.Body.Bytes(), &DecodeResponse{}); got != want[schema].dec {
			t.Errorf("%s: disk-loaded decode differs from fresh\n got: %s\nwant: %s", schema, got, want[schema].dec)
		}
	}
	if n := restarted.engineComputes.Load(); n != 0 {
		t.Errorf("restarted server ran the engine %d times; every artifact should have come from the store", n)
	}
	if hits := restarted.storeMetrics.Snapshot().Hits; hits < uint64(len(storeTestSpecs)) {
		t.Errorf("restarted server had %d store hits, want at least one per schema (%d)", hits, len(storeTestSpecs))
	}
}

// TestRaceStartupStampedeComputesOnce pins the shared-singleflight contract:
// a stampede of identical requests against a cold cache computes each
// artifact exactly once — and after a restart with a warmed store, the same
// stampede runs the engine exactly zero times, because disk-load happens
// inside the same singleflight slot that compute would have used.
func TestRaceStartupStampedeComputesOnce(t *testing.T) {
	dir := t.TempDir()
	const body = `{"schema":"mis","graph":{"family":"cycle","n":48}}`

	stampede := func(s *Server) {
		const goroutines = 24
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				w := doReq(t, s, "POST", "/v1/decode", body)
				if w.Code != http.StatusOK && w.Code != http.StatusTooManyRequests {
					t.Errorf("status %d: %s", w.Code, w.Body)
				}
			}()
		}
		wg.Wait()
	}

	first := newTestServer(t, Config{StoreDir: dir})
	stampede(first)
	if cs := first.Cache().Stats(); cs.Computes != 4 {
		t.Errorf("cold stampede: cache computes = %d, want 4 (graph, advice, table, decode)", cs.Computes)
	}
	// Exactly one advice encode + one table compilation, no matter how many
	// goroutines raced and that the store was consulted first.
	if n := first.engineComputes.Load(); n != 2 {
		t.Errorf("cold stampede: engine computes = %d, want exactly 2 (advice encode + table compile)", n)
	}

	warm := newTestServer(t, Config{StoreDir: dir})
	stampede(warm)
	if cs := warm.Cache().Stats(); cs.Computes != 4 {
		t.Errorf("warm stampede: cache computes = %d, want 4", cs.Computes)
	}
	if n := warm.engineComputes.Load(); n != 0 {
		t.Errorf("warm stampede: engine computes = %d, want 0 (all artifacts on disk)", n)
	}
}

// TestBatchMatchesIndividualDecodes is the batch protocol's equivalence
// property: a frame of N decode requests — server-advice and inline-advice
// items mixed — returns exactly the labels that N individual /v1/decode
// calls return, with per-item errors carried in-band.
func TestBatchMatchesIndividualDecodes(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := GraphSpec{Family: "cycle", N: 32, Seed: 1}
	const jsonGraph = `{"family":"cycle","n":32,"seed":1}`

	// Individual answer 1: the server-advice decode.
	w := doReq(t, s, "POST", "/v1/decode", `{"schema":"mis","graph":`+jsonGraph+`}`)
	if w.Code != 200 {
		t.Fatalf("individual decode: %d %s", w.Code, w.Body)
	}
	var serverDecode DecodeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &serverDecode); err != nil {
		t.Fatal(err)
	}

	// Individual answer 2: an explicit (shifted) advice decode. On an even
	// cycle the complement of the even MIS is the odd MIS.
	inline := make(local.Advice, 32)
	inlineJSON := make([]string, 32)
	for v := range inline {
		bit := v % 2
		inline[v] = bitstr.New(bit)
		inlineJSON[v] = map[int]string{0: "0", 1: "1"}[bit]
	}
	advJSON, _ := json.Marshal(inlineJSON)
	w = doReq(t, s, "POST", "/v1/decode", `{"schema":"mis","graph":`+jsonGraph+`,"advice":`+string(advJSON)+`}`)
	if w.Code != 200 {
		t.Fatalf("inline decode: %d %s", w.Code, w.Body)
	}
	var inlineDecode DecodeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &inlineDecode); err != nil {
		t.Fatal(err)
	}

	// The batch: server, inline, server, a broken item, inline.
	badAdvice := local.Advice{bitstr.New(1)} // wrong node count
	items := []BatchItem{{}, {Advice: inline}, {}, {Advice: badAdvice}, {Advice: inline}}
	frame, err := EncodeBatchRequest("mis", spec, true, items)
	if err != nil {
		t.Fatal(err)
	}
	bw := doBin(t, s, "/v1/batch", frame)
	if bw.Code != 200 {
		t.Fatalf("batch: %d %s", bw.Code, bw.Body)
	}
	if ct := bw.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("batch Content-Type = %q", ct)
	}
	results, err := DecodeBatchResponse(bw.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(items) {
		t.Fatalf("%d results for %d items", len(results), len(items))
	}
	wantLabels := [][]int{serverDecode.Labels, inlineDecode.Labels, serverDecode.Labels, nil, inlineDecode.Labels}
	for i, res := range results {
		if i == 3 {
			if res.Err == "" {
				t.Error("item 3: broken advice succeeded, want in-band error")
			}
			continue
		}
		if res.Err != "" {
			t.Errorf("item %d: in-band error %q", i, res.Err)
			continue
		}
		if len(res.Labels) != len(wantLabels[i]) {
			t.Errorf("item %d: %d labels, want %d", i, len(res.Labels), len(wantLabels[i]))
			continue
		}
		for v := range res.Labels {
			if res.Labels[v] != wantLabels[i][v] {
				t.Errorf("item %d node %d: label %d, want %d", i, v, res.Labels[v], wantLabels[i][v])
				break
			}
		}
	}

	// The batch endpoint is metered and counted.
	if n := s.batchItems.Load(); n != uint64(len(items)) {
		t.Errorf("batch items counter = %d, want %d", n, len(items))
	}
	var st StatsResponse
	w = doReq(t, s, "GET", "/v1/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Endpoints["batch"].Count != 1 {
		t.Errorf("stats endpoints.batch.count = %d, want 1", st.Endpoints["batch"].Count)
	}
	if st.BatchItems != uint64(len(items)) {
		t.Errorf("stats batch_items = %d, want %d", st.BatchItems, len(items))
	}
}

// TestBatchProtocolErrors pins the frame-level failure modes: they are the
// same typed JSON errors as every other endpoint, never a 500, never a
// truncated binary frame.
func TestBatchProtocolErrors(t *testing.T) {
	s := newTestServer(t, Config{MaxNodes: 64})
	good, err := EncodeBatchRequest("mis", GraphSpec{Family: "cycle", N: 12}, true, make([]BatchItem, 2))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name     string
		body     []byte
		wantCode int
		wantErr  string
	}{
		{"empty", nil, 400, "bad_batch"},
		{"bad-magic", []byte("JSON{}"), 400, "bad_batch"},
		{"truncated", good[:len(good)-3], 400, "bad_batch"},
		{"trailing", append(append([]byte(nil), good...), 0xee), 400, "bad_batch"},
		{"unknown-schema", mustBatch(t, "quantum", GraphSpec{Family: "cycle", N: 12}, 1), 404, "unknown_schema"},
		{"graph-too-large", mustBatch(t, "mis", GraphSpec{Family: "cycle", N: 4096}, 1), 413, "graph_too_large"},
		{"bad-family", mustBatch(t, "mis", GraphSpec{Family: "hypercube", N: 12}, 1), 400, "bad_graph_spec"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doBin(t, s, "/v1/batch", tc.body)
			if w.Code != tc.wantCode {
				t.Fatalf("status %d, want %d (body: %s)", w.Code, tc.wantCode, w.Body)
			}
			assertNoLeak(t, w.Body.String())
			if got := errCode(t, w.Body.String()); got != tc.wantErr {
				t.Errorf("error code %q, want %q", got, tc.wantErr)
			}
		})
	}
}

func mustBatch(t *testing.T, schema string, spec GraphSpec, n int) []byte {
	t.Helper()
	b, err := EncodeBatchRequest(schema, spec, true, make([]BatchItem, n))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestStatsBypassSplit pins the satellite contract: /v1/stats explains the
// cache-bypass total by endpoint, so benchmark cold traffic ("decode") is
// distinguishable from verify/experiment bypasses.
func TestStatsBypassSplit(t *testing.T) {
	s := newTestServer(t, Config{})
	reqs := []struct{ path, body string }{
		// One cold decode bypasses four artifacts: graph, advice, table, decode.
		{"/v1/decode", `{"schema":"mis","graph":{"family":"cycle","n":16},"cache":false}`},
		// A cold verify bypasses only the graph resolution.
		{"/v1/verify", `{"schema":"mis","graph":{"family":"cycle","n":16},"cache":false}`},
		// A cold experiment bypasses the rendered-table cache once.
		{"/v1/experiment", `{"id":"E2","cache":false}`},
		// Warm traffic bypasses nothing.
		{"/v1/encode", `{"schema":"mis","graph":{"family":"cycle","n":16}}`},
	}
	for _, rq := range reqs {
		if w := doReq(t, s, "POST", rq.path, rq.body); w.Code != 200 {
			t.Fatalf("%s: %d %s", rq.path, w.Code, w.Body)
		}
	}
	var st StatsResponse
	w := doReq(t, s, "GET", "/v1/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	want := map[string]uint64{"decode": 4, "verify": 1, "experiment": 1, "encode": 0, "batch": 0}
	var sum uint64
	for ep, n := range want {
		if st.BypassesBy[ep] != n {
			t.Errorf("cache_bypasses_by_endpoint[%q] = %d, want %d", ep, st.BypassesBy[ep], n)
		}
	}
	for _, n := range st.BypassesBy {
		sum += n
	}
	if st.Bypasses != sum {
		t.Errorf("cache_bypasses = %d, want the by-endpoint sum %d", st.Bypasses, sum)
	}
}
