package server

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/eth"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/harness"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// schemaEntry is one servable advice schema. The four fault-experiment
// schemas are reused verbatim from the harness; "mis" additionally goes
// through the Section 8 route — its order-invariant 0-round decoder is
// compiled into an eth.Table that the cache retains, so repeat decodes run
// off the finite lookup table instead of re-deriving anything.
type schemaEntry struct {
	// Name is the request-facing schema identifier.
	Name string
	// Params fingerprints the schema's fixed parameters; it is part of the
	// cache-key contract (DESIGN.md): two entries with the same Name but
	// different Params never share cached artifacts.
	Params string
	// Problem is the LCL the decoded output is verified against.
	Problem func(g *graph.Graph) lcl.Problem
	// Encode computes the prover's advice. Nil when EncodeSeeded is set.
	Encode func(g *graph.Graph) (local.Advice, error)
	// EncodeSeeded computes seed-dependent advice (the Moser–Tardos LLL
	// path): the output is a function of (graph, seed), so the graph digest
	// alone does not determine it. Entries setting it must set SeedDependent.
	EncodeSeeded func(g *graph.Graph, seed int64) (local.Advice, error)
	// SeedDependent widens the advice cache key with the request's graph
	// seed (":seed=N"). Deterministic-LLL schemas leave it false — their
	// advice is a pure function of the graph, so requests under rotating
	// seeds share one cached artifact (DESIGN.md decision 12); that delta
	// in warm hit rate is what the "detlll" bench section measures.
	SeedDependent bool
	// Decode runs the LOCAL decoder (nil when Compile is set).
	Decode func(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error)
	// Compile materializes the decoder as an eth.Table; decode requests then
	// run through Table.Run. Only order-invariant decoders can offer this.
	Compile func(g *graph.Graph, advice local.Advice) (*eth.Table, error)
	// ValidateAdvice rejects advice whose shape the decoder cannot process
	// (reported as corrupt, HTTP 422). May be nil.
	ValidateAdvice func(g *graph.Graph, advice local.Advice) error
	// TableEncode/TableDecode are the binary output codecs used when a
	// compiled table is persisted to the artifact store (nil = the schema's
	// tables are never written to disk). They must be a bit-identical pair:
	// TableDecode(TableEncode(v)) == v, byte for byte on re-encode.
	TableEncode func(v any) ([]byte, error)
	TableDecode func(b []byte) (any, error)
}

// buildSchemas assembles the registry served under /v1/*: the four harness
// fault schemas plus the table-compiled MIS schema of the E2 workload.
func buildSchemas() map[string]*schemaEntry {
	out := make(map[string]*schemaEntry)
	params := map[string]string{
		"orient":     "spacing=default",
		"color3":     "cover=10,spread=2",
		"deltacolor": "gamma=4",
		"growth":     "cluster=40",
	}
	for _, fs := range harness.FaultSchemas() {
		fs := fs
		out[fs.Name] = &schemaEntry{
			Name:    fs.Name,
			Params:  params[fs.Name],
			Problem: fs.Problem,
			Encode:  fs.Encode,
			Decode:  fs.Decode,
		}
	}
	// The deterministic-LLL pipeline serves each LLL-backed schema twice:
	// "<name>lll" places advice by seeded Moser–Tardos (seed-dependent cache
	// keys — every distinct request seed is a distinct artifact) and
	// "<name>det" by conditional expectations (seedless keys — one artifact
	// per graph digest, whatever seeds the requests rotate through).
	for _, ds := range harness.DetSchemas() {
		ds := ds
		out[ds.Name+"lll"] = &schemaEntry{
			Name:          ds.Name + "lll",
			Params:        params[ds.Name] + ",method=mt",
			Problem:       ds.Problem,
			SeedDependent: true,
			EncodeSeeded: func(g *graph.Graph, seed int64) (local.Advice, error) {
				return ds.EncodeWith(harness.MethodMT, g, seed, nil)
			},
			Decode: func(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
				return ds.DecodeOn("ball", g, advice, local.RunConfig{})
			},
		}
		out[ds.Name+"det"] = &schemaEntry{
			Name:    ds.Name + "det",
			Params:  params[ds.Name] + ",method=det",
			Problem: ds.Problem,
			Encode: func(g *graph.Graph) (local.Advice, error) {
				return ds.EncodeWith(harness.MethodDet, g, 0, nil)
			},
			Decode: func(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
				return ds.DecodeOn("ball", g, advice, local.RunConfig{DetLLL: true})
			},
		}
	}
	tableEnc, tableDec := eth.IntBinaryCodec()
	out["mis"] = &schemaEntry{
		Name:           "mis",
		Params:         "radius=0",
		Problem:        func(*graph.Graph) lcl.Problem { return lcl.MIS{} },
		Encode:         misEncode,
		Compile:        misCompile,
		ValidateAdvice: misValidate,
		TableEncode:    tableEnc,
		TableDecode:    tableDec,
	}
	return out
}

// schemaNames returns the sorted registry names (for error messages).
func schemaNames(schemas map[string]*schemaEntry) []string {
	names := make([]string, 0, len(schemas))
	for name := range schemas {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// misEncode computes a greedy maximal independent set in ID order and
// encodes its indicator as 1 bit per node — the advice assignment whose
// existence the E2 brute-force search measures the cost of finding.
func misEncode(g *graph.Graph) (local.Advice, error) {
	order := make([]int, g.N())
	for v := range order {
		order[v] = v
	}
	sort.Slice(order, func(a, b int) bool { return g.ID(order[a]) < g.ID(order[b]) })
	in := make([]bool, g.N())
	blocked := make([]bool, g.N())
	for _, v := range order {
		if blocked[v] {
			continue
		}
		in[v] = true
		for _, w := range g.Neighbors(v) {
			blocked[w] = true
		}
	}
	advice := make(local.Advice, g.N())
	for v := range advice {
		bit := 0
		if in[v] {
			bit = 1
		}
		advice[v] = bitstr.New(bit)
	}
	return advice, nil
}

// misValidate enforces the 1-bit-per-node shape the 0-round decoder needs.
func misValidate(g *graph.Graph, advice local.Advice) error {
	for v, s := range advice {
		if s.Len() != 1 {
			return fmt.Errorf("node %d holds %d advice bits, want exactly 1: %w",
				v, s.Len(), fault.ErrDetectedCorruption)
		}
	}
	return nil
}

// misAlgo is the order-invariant 0-round MIS decoder: the advice bit is the
// set-membership indicator (label 1 = in the set, 2 = out).
func misAlgo(view *local.View) any {
	if view.Advice[view.Center].Bit(0) == 1 {
		return 1
	}
	return 2
}

// misCompile materializes misAlgo as a finite lookup table over the views
// of (g, advice); Server.decode caches the table keyed by the graph digest
// and advice digest, so repeat requests skip compilation entirely.
func misCompile(g *graph.Graph, advice local.Advice) (*eth.Table, error) {
	return eth.Compile(misAlgo, 0, []*graph.Graph{g}, []local.Advice{advice})
}
