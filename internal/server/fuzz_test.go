package server

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"
)

// FuzzHandleDecode throws arbitrary bytes at POST /v1/decode in two forms —
// the raw bytes as the whole request body, and the bytes reshaped into the
// advice array of an otherwise well-formed request — and asserts the
// serving contract: the handler never panics, never answers 5xx (arbitrary
// client input is always a client error), and never leaks internals.
//
// The seed corpus below covers every request class the endpoint matrix
// pins, so a plain `go test` replays it as a smoke test.
func FuzzHandleDecode(f *testing.F) {
	// Whole-body seeds.
	f.Add([]byte(`{"schema":"mis","graph":{"family":"cycle","n":12}}`), []byte("1"))
	f.Add([]byte(`{"schema":"mis","graph":{"family":"cycle","n":12},"cache":false}`), []byte("0"))
	f.Add([]byte(`{"schema":"color3","graph":{"family":"cycle","n":40}}`), []byte(""))
	f.Add([]byte(`{"schema":`), []byte("10"))
	f.Add([]byte(`not json`), []byte("xx"))
	f.Add([]byte(``), []byte("\x00\xff"))
	f.Add([]byte(`{"schema":7,"graph":[]}`), []byte("11"))
	f.Add([]byte(`{"schema":"mis","graph":{"family":"cycle","n":100000}}`), []byte("1"))
	f.Add([]byte(`{"schema":"mis","graph":{"family":"regular","n":-5}}`), []byte("1"))
	f.Add([]byte(`{"schema":"quantum","graph":{"family":"cycle","n":8}}`), []byte("1"))
	f.Add([]byte(`{"schema":"mis","graph":{"text":"n 4\ne 0 9\n"}}`), []byte("1"))
	f.Add([]byte(`{"schema":"mis","graph":{"text":"garbage"}}`), []byte("1"))
	f.Add([]byte(`{"schema":"mis","graph":{"family":"cycle","n":6},"advice":["1","1","1","1","1","1"]}`), []byte("111111"))
	f.Add([]byte(`{"schema":"mis","graph":{"family":"cycle","n":6},"advice":[]}`), []byte(""))
	f.Add([]byte(`{"schema":"mis","graph":{"family":"cycle","n":6},"advice":["é","0","1","0","1","0"]}`), []byte("\xc3\xa9"))

	// One server for the whole fuzz process: cheap per-exec, and a shared
	// cache stresses the generation/singleflight logic with hostile input.
	s := newTestServer(f, Config{MaxNodes: 64, MaxBodyBytes: 1 << 16, CacheBytes: 1 << 20})

	f.Fuzz(func(t *testing.T, body []byte, adviceBytes []byte) {
		check := func(kind string, w *httptest.ResponseRecorder) {
			if w.Code >= 500 {
				t.Errorf("%s: status %d on arbitrary input: %s", kind, w.Code, w.Body)
			}
			assertNoLeak(t, w.Body.String())
		}

		// Form 1: the fuzzed bytes are the entire request body.
		check("raw-body", doReq(t, s, "POST", "/v1/decode", string(body)))

		// Form 2: the fuzzed bytes become per-node advice strings of a
		// well-formed request, exercising bitstr parsing, advice-length
		// checks and the decoder's corruption detection.
		adv := make([]string, 0, 8)
		for i := 0; i < len(adviceBytes) && i < 8; i++ {
			adv = append(adv, string(adviceBytes[i:i+1]))
		}
		advJSON, err := json.Marshal(adv)
		if err != nil {
			return // unrepresentable bytes; form 1 already ran
		}
		req := fmt.Sprintf(`{"schema":"mis","graph":{"family":"cycle","n":6},"advice":%s}`, advJSON)
		check("advice", doReq(t, s, "POST", "/v1/decode", req))
	})
}
