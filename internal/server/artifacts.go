// Artifact replication protocol (POST /v1/artifacts/export and
// /v1/artifacts/import).
//
// The cluster tier's router replicates hot artifacts by pulling them from
// the owning shard and pushing them into the owner's replica set
// (DESIGN.md §9). Both hops move the artifacts in their persistent binary
// forms — the internal/persist advice codec and the PR 6 `ETB1` table codec
// — framed together with their exact cache keys, so an import is a plain
// cache insertion: no engine work runs on the replica, and a later decode
// for the replicated digest is served from the LRU with engine_computes
// still zero.
//
// Export request is JSON ({"schema", "graph"}); the reply and the import
// request are one binary frame ("LAAR"):
//
//	magic     [4]byte "LAAR"
//	version   u16     (currently 1)
//	schemaLen u16, schema name bytes
//	digestLen u16, graph digest bytes
//	count     u8
//	records, each:
//	  kind   u8  (1 = encoded advice, 2 = compiled table)
//	  keyLen u16, cache key bytes (the §7 advice:/table: key)
//	  payLen u32, payload bytes (persist advice codec / ETB1)
//
// Import replies with JSON {"schema", "graph_digest", "imported"}.
package server

import (
	"bytes"
	"context"
	"encoding/binary"
	"io"
	"net/http"

	"localadvice/internal/eth"
	"localadvice/internal/persist"
)

const (
	artifactMagic   = "LAAR"
	artifactVersion = 1

	artifactAdvice = 1
	artifactTable  = 2
)

// ExportRequest is the body of POST /v1/artifacts/export: which (schema,
// graph) pair's artifacts to bundle. Export always runs through the caches
// (resolving on miss), so exporting from the owner after a warm read is a
// pair of LRU lookups.
type ExportRequest struct {
	Schema string    `json:"schema"`
	Graph  GraphSpec `json:"graph"`
}

// ImportResponse is the reply of POST /v1/artifacts/import.
type ImportResponse struct {
	Schema      string `json:"schema"`
	GraphDigest string `json:"graph_digest"`
	Imported    int    `json:"imported"`
}

// handleExport resolves the (schema, graph) artifacts — encoded advice, plus
// the compiled table for table-compiled schemas — and frames them with their
// cache keys.
func (s *Server) handleExport(r *http.Request) ([]byte, error) {
	var req ExportRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	sc, err := s.resolveSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	cg, _, err := s.resolveGraph(req.Graph, true, "export")
	if err != nil {
		return nil, err
	}
	advice, _, err := s.encodeAdvice(sc, cg, true, "export")
	if err != nil {
		return nil, err
	}
	type record struct {
		kind    byte
		key     string
		payload []byte
	}
	records := []record{{artifactAdvice, adviceKey(sc, cg), persist.EncodeAdvice(advice)}}
	if sc.Compile != nil && sc.TableEncode != nil {
		advDigest := sha256hex(adviceStrings(advice)...)
		table, err := s.resolveTable(sc, cg, advice, advDigest, true, "export")
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		if err := table.SaveBinary(&buf, sc.TableEncode); err == nil {
			records = append(records, record{artifactTable, tableKey(sc, cg, advDigest), buf.Bytes()})
		}
	}

	var b []byte
	b = append(b, artifactMagic...)
	b = binary.LittleEndian.AppendUint16(b, artifactVersion)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(sc.Name)))
	b = append(b, sc.Name...)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(cg.digest)))
	b = append(b, cg.digest...)
	b = append(b, byte(len(records)))
	for _, rec := range records {
		b = append(b, rec.kind)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(rec.key)))
		b = append(b, rec.key...)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(rec.payload)))
		b = append(b, rec.payload...)
	}
	return b, nil
}

// handleImportCtx adapts handleImport to the pooled JSON endpoint shape.
func (s *Server) handleImportCtx(_ context.Context, r *http.Request) (any, error) {
	return s.handleImport(r)
}

// handleImport inserts a replication frame's artifacts into the local cache
// (and writes them through to the store when one is configured). Payloads
// are decoded to their resident forms before insertion — a frame that does
// not parse is rejected wholesale, so a corrupt replication push can never
// poison the cache.
func (s *Server) handleImport(r *http.Request) (any, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	fr := &frameReader{b: body}
	if string(fr.take(4)) != artifactMagic {
		return nil, errf(http.StatusBadRequest, "bad_artifact", "bad magic (want %q)", artifactMagic)
	}
	if v := fr.u16(); v != artifactVersion {
		return nil, errf(http.StatusBadRequest, "bad_artifact", "version %d, want %d", v, artifactVersion)
	}
	schema := string(fr.take(int(fr.u16())))
	digest := string(fr.take(int(fr.u16())))
	count := int(fr.u8())
	if fr.err != nil {
		return nil, errf(http.StatusBadRequest, "bad_artifact", "truncated header")
	}
	sc, err := s.resolveSchema(schema)
	if err != nil {
		return nil, err
	}

	// Decode and validate every record before inserting any of them: a
	// frame corrupt at record k must not leave records 0..k-1 behind.
	type insertion struct {
		key     string
		value   any
		size    int64
		payload []byte
		pstKind persist.Kind
	}
	pending := make([]insertion, 0, count)
	for i := 0; i < count; i++ {
		kind := fr.u8()
		key := string(fr.take(int(fr.u16())))
		payload := fr.take(int(fr.u32()))
		if fr.err != nil {
			return nil, errf(http.StatusBadRequest, "bad_artifact", "truncated record %d", i)
		}
		switch kind {
		case artifactAdvice:
			advice, err := persist.DecodeAdvice(payload)
			if err != nil {
				return nil, errf(http.StatusUnprocessableEntity, "bad_artifact",
					"record %d: bad advice payload: %v", i, err)
			}
			pending = append(pending, insertion{key, advice, adviceSize(advice), payload, persist.KindAdvice})
		case artifactTable:
			if sc.TableDecode == nil {
				return nil, errf(http.StatusUnprocessableEntity, "bad_artifact",
					"record %d: schema %s has no table codec", i, sc.Name)
			}
			table, err := eth.LoadTableBinary(bytes.NewReader(payload), sc.TableDecode)
			if err != nil {
				return nil, errf(http.StatusUnprocessableEntity, "bad_artifact",
					"record %d: bad table payload: %v", i, err)
			}
			pending = append(pending, insertion{key, table, tableSize(table), payload, persist.KindTable})
		default:
			return nil, errf(http.StatusBadRequest, "bad_artifact", "record %d: unknown kind %d", i, kind)
		}
	}
	if fr.off != len(fr.b) {
		return nil, errf(http.StatusBadRequest, "bad_artifact", "trailing bytes after record %d", count)
	}

	imported := 0
	for _, ins := range pending {
		if s.cache.Put(ins.key, ins.value, ins.size) {
			imported++
		}
		s.storePut(ins.key, ins.pstKind, ins.payload)
	}
	return &ImportResponse{Schema: schema, GraphDigest: digest, Imported: imported}, nil
}
