package server

import (
	"net/http"
	"strings"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/local"
)

// TestBatchExtRoundTrip exercises the extended binary batch protocol — the
// router's inter-node decode form — end to end: frame a request, serve it,
// decode the reply, and check every field against the JSON /v1/decode
// answer for the same graph.
func TestBatchExtRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	spec := GraphSpec{Family: "cycle", N: 48, Seed: 3}

	frame, err := EncodeBatchRequestExt("mis", spec, true, []BatchItem{{}})
	if err != nil {
		t.Fatalf("EncodeBatchRequestExt: %v", err)
	}
	w := doBin(t, s, "/v1/batch", frame)
	if w.Code != http.StatusOK {
		t.Fatalf("ext batch: %d: %s", w.Code, w.Body)
	}
	digest, results, err := DecodeBatchResponseExt(w.Body.Bytes())
	if err != nil {
		t.Fatalf("DecodeBatchResponseExt: %v", err)
	}
	if len(results) != 1 {
		t.Fatalf("want 1 result, got %d", len(results))
	}
	res := results[0]
	if res.Err != nil {
		t.Fatalf("unexpected item error: %+v", res.Err)
	}

	var dr DecodeResponse
	normalizeResponse(t, doReq(t, s, "POST", "/v1/decode",
		`{"schema":"mis","graph":{"family":"cycle","n":48,"seed":3}}`).Body.Bytes(), &dr)
	if digest != dr.GraphDigest {
		t.Errorf("digest %q != JSON decode digest %q", digest, dr.GraphDigest)
	}
	if got, want := len(res.Labels), len(dr.Labels); got != want {
		t.Fatalf("labels length %d != %d", got, want)
	}
	for i := range res.Labels {
		if res.Labels[i] != dr.Labels[i] {
			t.Fatalf("label[%d] = %d, JSON decode says %d", i, res.Labels[i], dr.Labels[i])
		}
	}
	if res.Rounds != dr.Rounds || res.Messages != dr.Messages || res.TableEntries != dr.TableEntries {
		t.Errorf("stats (%d,%d,%d) != JSON decode (%d,%d,%d)",
			res.Rounds, res.Messages, res.TableEntries, dr.Rounds, dr.Messages, dr.TableEntries)
	}
	if len(res.EdgeLabels) != 0 {
		t.Errorf("mis carries no edge labels, got %v", res.EdgeLabels)
	}

	// An edge-labeling schema must round-trip its edge labels too.
	frame, err = EncodeBatchRequestExt("orient", GraphSpec{Family: "cycle", N: 60, Seed: 3}, true, []BatchItem{{}})
	if err != nil {
		t.Fatalf("EncodeBatchRequestExt: %v", err)
	}
	w = doBin(t, s, "/v1/batch", frame)
	_, results, err = DecodeBatchResponseExt(w.Body.Bytes())
	if err != nil || len(results) != 1 || results[0].Err != nil {
		t.Fatalf("orient ext batch: %v %+v", err, results)
	}
	var or DecodeResponse
	normalizeResponse(t, doReq(t, s, "POST", "/v1/decode",
		`{"schema":"orient","graph":{"family":"cycle","n":60,"seed":3}}`).Body.Bytes(), &or)
	if len(or.EdgeLabels) == 0 || len(results[0].EdgeLabels) != len(or.EdgeLabels) {
		t.Fatalf("orient edge labels: ext %d, JSON %d", len(results[0].EdgeLabels), len(or.EdgeLabels))
	}
	for i := range or.EdgeLabels {
		if results[0].EdgeLabels[i] != or.EdgeLabels[i] {
			t.Fatalf("edge label[%d] differs", i)
		}
	}
}

// TestBatchExtItemError: a corrupt inline advice item in an extended frame
// comes back as a typed per-item error with the same status and code the
// JSON endpoint would use, leaving the frame-level reply a 200.
func TestBatchExtItemError(t *testing.T) {
	s := newTestServer(t, Config{})
	frame, err := EncodeBatchRequestExt("mis", GraphSpec{Family: "cycle", N: 48}, false,
		[]BatchItem{{Advice: local.Advice{bitstr.New(1)}}}) // wrong node count
	if err != nil {
		t.Fatalf("EncodeBatchRequestExt: %v", err)
	}
	w := doBin(t, s, "/v1/batch", frame)
	if w.Code != http.StatusOK {
		t.Fatalf("ext batch with bad item: frame-level %d: %s", w.Code, w.Body)
	}
	_, results, err := DecodeBatchResponseExt(w.Body.Bytes())
	if err != nil || len(results) != 1 {
		t.Fatalf("DecodeBatchResponseExt: %v (%d results)", err, len(results))
	}
	e := results[0].Err
	if e == nil {
		t.Fatalf("corrupt advice item did not error: %+v", results[0])
	}
	if e.Status != http.StatusUnprocessableEntity || e.Code != "corrupt_advice" {
		t.Errorf("want 422 corrupt_advice, got %d %q (%s)", e.Status, e.Code, e.Msg)
	}
}

// TestArtifactExportImport covers the LAAR replication frame: export a
// warm (schema, graph)'s artifacts from one server, import into a second,
// and check the second serves the identical decode without engine work.
func TestArtifactExportImport(t *testing.T) {
	a := newTestServer(t, Config{})
	b := newTestServer(t, Config{})

	const body = `{"schema":"mis","graph":{"family":"cycle","n":48,"seed":3}}`
	direct := doReq(t, a, "POST", "/v1/decode", body)
	if direct.Code != http.StatusOK {
		t.Fatalf("warm decode on a: %d: %s", direct.Code, direct.Body)
	}

	exp := doReq(t, a, "POST", "/v1/artifacts/export", `{"schema":"mis","graph":{"family":"cycle","n":48,"seed":3}}`)
	if exp.Code != http.StatusOK {
		t.Fatalf("export: %d: %s", exp.Code, exp.Body)
	}
	frame := exp.Body.Bytes()
	if len(frame) < 4 || string(frame[:4]) != "LAAR" {
		t.Fatalf("export frame lacks the LAAR magic: % x", frame[:min(8, len(frame))])
	}

	imp := doBin(t, b, "/v1/artifacts/import", frame)
	if imp.Code != http.StatusOK {
		t.Fatalf("import: %d: %s", imp.Code, imp.Body)
	}
	var ir ImportResponse
	normalizeResponse(t, imp.Body.Bytes(), &ir)
	// mis is table-compiled: the frame carries the advice and the table.
	if ir.Imported != 2 || ir.Schema != "mis" {
		t.Errorf("import response off: %+v", ir)
	}

	onB := doReq(t, b, "POST", "/v1/decode", body)
	if onB.Code != http.StatusOK {
		t.Fatalf("decode on b after import: %d: %s", onB.Code, onB.Body)
	}
	var want, got DecodeResponse
	if normalizeResponse(t, onB.Body.Bytes(), &got) != normalizeResponse(t, direct.Body.Bytes(), &want) {
		t.Errorf("imported decode differs:\n b: %s\n a: %s", onB.Body, direct.Body)
	}
	if n := shardEngineComputes(t, b); n != 0 {
		t.Errorf("server b ran %d engine computes; imported artifacts should cover the decode", n)
	}
}

// TestArtifactImportRejectsCorruptFrame: a truncated or doctored LAAR frame
// is refused wholesale with the typed bad_artifact error — a partial import
// must never land.
func TestArtifactImportRejectsCorruptFrame(t *testing.T) {
	a := newTestServer(t, Config{})
	b := newTestServer(t, Config{})
	doReq(t, a, "POST", "/v1/decode", `{"schema":"mis","graph":{"family":"cycle","n":48,"seed":3}}`)
	exp := doReq(t, a, "POST", "/v1/artifacts/export", `{"schema":"mis","graph":{"family":"cycle","n":48,"seed":3}}`)
	frame := exp.Body.Bytes()

	cases := map[string][]byte{
		"truncated": frame[:len(frame)-5],
		"bad magic": append([]byte("XXXX"), frame[4:]...),
		"garbage":   []byte("not a frame at all"),
	}
	for name, bad := range cases {
		w := doBin(t, b, "/v1/artifacts/import", bad)
		if w.Code != http.StatusUnprocessableEntity && w.Code != http.StatusBadRequest {
			t.Errorf("%s frame: want 4xx, got %d: %s", name, w.Code, w.Body)
			continue
		}
		if code := errCode(t, w.Body.String()); code != "bad_artifact" {
			t.Errorf("%s frame: want code bad_artifact, got %q", name, code)
		}
		assertNoLeak(t, w.Body.String())
	}
	if n := shardStats0(t, b).Cache.Entries; n != 0 {
		t.Errorf("corrupt imports left %d cache entries behind", n)
	}
}

// shardEngineComputes reads a server's engine-compute counter via its own
// stats endpoint.
func shardEngineComputes(t *testing.T, s *Server) uint64 {
	t.Helper()
	return shardStats0(t, s).Engine
}

func shardStats0(t *testing.T, s *Server) StatsResponse {
	t.Helper()
	w := doReq(t, s, "GET", "/v1/stats", "")
	if w.Code != http.StatusOK {
		t.Fatalf("stats: %d: %s", w.Code, w.Body)
	}
	var st StatsResponse
	normalizeResponse(t, w.Body.Bytes(), &st)
	return st
}

// TestStatsReportsRole: the role wired through Config lands in /v1/stats,
// which is how operators tell a shard from a single-process server.
func TestStatsReportsRole(t *testing.T) {
	for _, role := range []string{"", "shard", "router"} {
		s := newTestServer(t, Config{Role: role})
		body := doReq(t, s, "GET", "/v1/stats", "").Body.String()
		want := role
		if want == "" {
			want = "single"
		}
		if !strings.Contains(body, `"role":"`+want+`"`) {
			t.Errorf("role %q: stats body lacks role %q: %s", role, want, body[:120])
		}
	}
}
