// Package server is the serving layer of the reproduction: an HTTP/JSON API
// over the advice-schema substrate, turning the one-shot CLI pipeline into
// the encode-once/decode-many system the ROADMAP's north star asks for.
//
// Endpoints (all bodies JSON):
//
//	POST /v1/encode      graph spec + schema  -> per-node advice bits
//	POST /v1/decode      graph + schema [+ advice] -> verified solution
//	POST /v1/verify      graph + schema + labeling -> verdict
//	POST /v1/experiment  experiment ID -> rendered table (+ metrics summary)
//	POST /v1/cache/flush drop every cached artifact (bumps the generation)
//	GET  /v1/healthz     liveness
//	GET  /v1/stats       cache, shedding and per-endpoint latency counters
//
// Requests flow through a bounded in-flight pool: beyond MaxInflight the
// server sheds load with 429 instead of queueing unboundedly, and every
// admitted request runs under a deadline (504 on expiry). Expensive
// artifacts — parsed graphs with CSR snapshots, encoded advice, decoded
// solutions, compiled eth.Tables — are memoized in an internal/cache LRU
// keyed by (graph digest, schema@params, advice digest), with singleflight
// deduplication so a thundering herd of identical requests computes once.
// Error responses are always typed JSON ({"error", "code"}) derived from
// the robustness layer's sentinel errors; stack traces never leave the
// process.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"localadvice/internal/cache"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/local"
	"localadvice/internal/obs"
	"localadvice/internal/persist"
)

// Config parameterizes a Server. The zero value means "use defaults".
type Config struct {
	// CacheBytes bounds the artifact cache (default 64 MiB; <= -1 disables
	// caching entirely, 0 means default).
	CacheBytes int64
	// MaxInflight bounds concurrently executing requests; beyond it the
	// server sheds with 429 (default 4 x GOMAXPROCS).
	MaxInflight int
	// RequestTimeout is the per-request deadline (default 30s).
	RequestTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// MaxNodes bounds accepted graph sizes, parsed or generated
	// (default 200k nodes).
	MaxNodes int
	// StoreDir, when non-empty, backs the LRU with a persistent artifact
	// store (internal/persist) in that directory: encoded advice and
	// compiled eth.Tables are written through to disk and reloaded on cache
	// misses, so evictions and process restarts warm-start instead of
	// re-running the engine (DESIGN.md §8).
	StoreDir string
	// Role labels this process in /v1/stats: "single" (default) for a
	// standalone server, "shard" for a cluster member behind a router
	// (DESIGN.md §9). It changes no serving behavior — every role answers
	// every endpoint — but lets fleet tooling tell the processes apart.
	Role string
}

func (c Config) withDefaults() Config {
	if c.CacheBytes == 0 {
		c.CacheBytes = 64 << 20
	}
	if c.CacheBytes < 0 {
		c.CacheBytes = 0 // cache.New treats <= 0 as storage disabled
	}
	if c.MaxInflight <= 0 {
		c.MaxInflight = 4 * runtime.GOMAXPROCS(0)
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 30 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxNodes <= 0 {
		c.MaxNodes = 200_000
	}
	if c.Role == "" {
		c.Role = "single"
	}
	return c
}

// Server is the HTTP serving layer. Construct with New; it implements
// http.Handler.
type Server struct {
	cfg     Config
	cache   *cache.Cache
	store   *persist.Store // nil without Config.StoreDir
	schemas map[string]*schemaEntry
	mux     *http.ServeMux
	sem     chan struct{}
	start   time.Time

	inflight atomic.Int64
	shed     atomic.Uint64
	// bypasses counts cache-bypassing computations, split by the endpoint
	// that asked for them (cold loadgen traffic is "decode"; verify and
	// experiment traffic is labeled distinctly so /v1/stats explains the
	// total instead of lumping it).
	bypasses map[string]*atomic.Uint64
	// engineComputes counts artifacts produced by actually running the
	// engine (advice encodes, table compilations) as opposed to loading
	// them from the store: the restart smoke asserts it stays 0 after a
	// warm-started process serves its first request.
	engineComputes atomic.Uint64
	// engineComputeNanos is the wall time spent inside those engine runs;
	// against the store's load_nanos it prices cold-start recovery (disk
	// load) vs recompute — the `loadgen -probe-cold` recovery ratio.
	engineComputeNanos atomic.Int64
	batchItems         atomic.Uint64

	storeMetrics *obs.StoreMetrics

	// expMu serializes observed experiment runs: observation goes through
	// the process-wide obs default collector, which must not be shared.
	expMu sync.Mutex

	metrics map[string]*obs.EndpointMetrics

	srvMu   sync.Mutex
	httpSrv *http.Server
}

// New returns a ready Server. The only failure mode is an unusable
// Config.StoreDir.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		cache:    cache.New(cfg.CacheBytes),
		schemas:  buildSchemas(),
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxInflight),
		start:    time.Now(),
		metrics:  make(map[string]*obs.EndpointMetrics),
		bypasses: make(map[string]*atomic.Uint64),
	}
	if cfg.StoreDir != "" {
		s.storeMetrics = &obs.StoreMetrics{}
		store, err := persist.Open(cfg.StoreDir, s.storeMetrics)
		if err != nil {
			return nil, err
		}
		s.store = store
	}
	for _, name := range []string{"encode", "decode", "batch", "verify", "experiment", "flush", "healthz", "stats", "export", "import"} {
		s.metrics[name] = &obs.EndpointMetrics{}
		s.bypasses[name] = &atomic.Uint64{}
	}
	s.mux.HandleFunc("POST /v1/encode", s.endpoint("encode", s.handleEncode))
	s.mux.HandleFunc("POST /v1/decode", s.endpoint("decode", s.handleDecode))
	s.mux.HandleFunc("POST /v1/batch", s.rawEndpoint("batch", s.handleBatch))
	s.mux.HandleFunc("POST /v1/verify", s.endpoint("verify", s.handleVerify))
	s.mux.HandleFunc("POST /v1/experiment", s.endpoint("experiment", s.handleExperiment))
	s.mux.HandleFunc("POST /v1/cache/flush", s.endpoint("flush", s.handleFlush))
	s.mux.HandleFunc("GET /v1/healthz", s.direct("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /v1/stats", s.direct("stats", s.handleStats))
	s.mux.HandleFunc("POST /v1/artifacts/export", s.rawEndpoint("export", s.handleExport))
	s.mux.HandleFunc("POST /v1/artifacts/import", s.endpoint("import", s.handleImportCtx))
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Serve accepts connections on l until Shutdown. It returns nil after a
// graceful shutdown (http.ErrServerClosed is swallowed).
func (s *Server) Serve(l net.Listener) error {
	srv := &http.Server{Handler: s, ReadHeaderTimeout: 10 * time.Second}
	s.srvMu.Lock()
	s.httpSrv = srv
	s.srvMu.Unlock()
	err := srv.Serve(l)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains the embedded http.Server: new connections are refused,
// in-flight requests run to completion (or ctx expiry).
func (s *Server) Shutdown(ctx context.Context) error {
	s.srvMu.Lock()
	srv := s.httpSrv
	s.srvMu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Shutdown(ctx)
}

// Cache exposes the artifact cache (tests assert singleflight and hit-rate
// behavior through its stats).
func (s *Server) Cache() *cache.Cache { return s.cache }

// apiError is an error with a fixed HTTP status and machine-readable code;
// every handler failure is normalized into one before it is written.
type apiError struct {
	status int
	code   string
	msg    string
}

func (e *apiError) Error() string { return e.msg }

func errf(status int, code, format string, args ...any) *apiError {
	return &apiError{status: status, code: code, msg: fmt.Sprintf(format, args...)}
}

// toAPIError maps a handler error onto the API's status/code vocabulary
// using the robustness layer's typed sentinels. Anything unrecognized is an
// opaque 500: internal details (and in particular stack traces) never reach
// the response body.
func toAPIError(err error) *apiError {
	var ae *apiError
	if errors.As(err, &ae) {
		return ae
	}
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		return errf(http.StatusRequestEntityTooLarge, "body_too_large",
			"request body exceeds %d bytes", mbe.Limit)
	case errors.Is(err, graph.ErrParse), errors.Is(err, graph.ErrBadEdge),
		errors.Is(err, graph.ErrBadID), errors.Is(err, graph.ErrBadSize):
		return errf(http.StatusBadRequest, "bad_graph", "%v", err)
	case errors.Is(err, fault.ErrDetectedCorruption), errors.Is(err, local.ErrAdviceLength):
		return errf(http.StatusUnprocessableEntity, "corrupt_advice", "%v", err)
	case errors.Is(err, context.DeadlineExceeded):
		return errf(http.StatusGatewayTimeout, "timeout", "request timed out")
	}
	var se *json.SyntaxError
	var ute *json.UnmarshalTypeError
	if errors.As(err, &se) || errors.As(err, &ute) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errf(http.StatusBadRequest, "bad_json", "malformed JSON request: %v", err)
	}
	return errf(http.StatusInternalServerError, "internal", "internal error")
}

// errorBody is the uniform error response shape.
type errorBody struct {
	Error string `json:"error"`
	Code  string `json:"code"`
}

func writeJSON(w http.ResponseWriter, status int, v any) int {
	data, err := json.Marshal(v)
	if err != nil {
		// Marshaling our own response types cannot fail; keep the contract
		// anyway without leaking the error.
		status = http.StatusInternalServerError
		data = []byte(`{"error":"internal error","code":"internal"}`)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
	return status
}

func writeError(w http.ResponseWriter, ae *apiError) int {
	return writeJSON(w, ae.status, errorBody{Error: ae.msg, Code: ae.code})
}

// WriteJSON writes v exactly as the server's own handlers do — same
// marshaling, Content-Type and trailing newline. The cluster router uses it
// (and the two error writers below) when reconstructing a response from an
// inter-node binary hop, so a routed answer is bit-identical to a direct one.
func WriteJSON(w http.ResponseWriter, status int, v any) int {
	return writeJSON(w, status, v)
}

// WriteError writes the uniform {"error", "code"} body with the given
// status.
func WriteError(w http.ResponseWriter, status int, code, msg string) int {
	return writeJSON(w, status, errorBody{Error: msg, Code: code})
}

// WriteAPIError maps err through the same typed-sentinel normalization the
// server applies to its own handler failures, then writes it.
func WriteAPIError(w http.ResponseWriter, err error) int {
	return writeError(w, toAPIError(err))
}

// handlerFunc is a pooled endpoint's compute function.
type handlerFunc func(ctx context.Context, r *http.Request) (any, error)

// endpoint wraps a handler with the serving policy: load shedding at the
// in-flight bound, body-size limiting, a per-request deadline, panic
// containment, and latency metering.
func (s *Server) endpoint(name string, h handlerFunc) http.HandlerFunc {
	m := s.metrics[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := s.serveOne(w, r, h)
		m.Observe(time.Since(start), status >= 400)
	}
}

// direct wraps the cheap read-only endpoints (healthz, stats) that bypass
// the worker pool so they stay responsive under saturation.
func (s *Server) direct(name string, h func() any) http.HandlerFunc {
	m := s.metrics[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := writeJSON(w, http.StatusOK, h())
		m.Observe(time.Since(start), status >= 400)
	}
}

func (s *Server) serveOne(w http.ResponseWriter, r *http.Request, h handlerFunc) int {
	select {
	case s.sem <- struct{}{}:
	default:
		s.shed.Add(1)
		return writeError(w, errf(http.StatusTooManyRequests, "overloaded",
			"server at its in-flight request bound (%d); retry later", s.cfg.MaxInflight))
	}
	s.inflight.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()

	type result struct {
		v   any
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				// A panicking decoder is a server bug, not client data: map
				// it to an opaque 500 and keep the process alive.
				ch <- result{err: errf(http.StatusInternalServerError, "internal", "internal error")}
			}
			s.inflight.Add(-1)
			<-s.sem
		}()
		v, err := h(ctx, r)
		ch <- result{v, err}
	}()

	select {
	case res := <-ch:
		if res.err != nil {
			return writeError(w, toAPIError(res.err))
		}
		return writeJSON(w, http.StatusOK, res.v)
	case <-ctx.Done():
		if errors.Is(ctx.Err(), context.DeadlineExceeded) {
			return writeError(w, errf(http.StatusGatewayTimeout, "timeout", "request timed out"))
		}
		// Client went away; the status is for metrics only.
		return 499
	}
}

// decodeBody parses the JSON request body into dst.
func decodeBody(r *http.Request, dst any) error {
	return json.NewDecoder(r.Body).Decode(dst)
}

func sha256hex(parts ...string) string {
	h := sha256.New()
	var sep = []byte{0}
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write(sep)
	}
	return hex.EncodeToString(h.Sum(nil))
}
