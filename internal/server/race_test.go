package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"
)

// TestRaceSingleflightComputesOnce hammers one fresh server with identical
// decode requests from many goroutines and asserts the cache's singleflight
// collapsed them: exactly one compute per artifact (graph, advice, compiled
// table, decode result) no matter how many callers raced.
func TestRaceSingleflightComputesOnce(t *testing.T) {
	s := newTestServer(t, Config{})
	const body = `{"schema":"mis","graph":{"family":"cycle","n":48}}`
	const goroutines = 24

	var wg sync.WaitGroup
	codes := make([]int, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := doReq(t, s, "POST", "/v1/decode", body)
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()

	shed := 0
	for i, code := range codes {
		switch code {
		case http.StatusOK:
		case http.StatusTooManyRequests:
			shed++ // the pool bound may legitimately shed some of the burst
		default:
			t.Errorf("goroutine %d: status %d", i, code)
		}
	}
	if shed == goroutines {
		t.Fatal("every request was shed; nothing exercised the cache")
	}

	cs := s.Cache().Stats()
	// The decode pipeline touches exactly four keys: graph, advice, table,
	// decode result. Concurrency must not inflate that.
	if cs.Computes != 4 {
		t.Errorf("computes = %d, want exactly 4 (graph, advice, table, decode)", cs.Computes)
	}
	served := uint64(goroutines - shed)
	if cs.Hits+cs.Dedups < served-1 {
		t.Errorf("hits %d + dedups %d < %d served-1: some requests recomputed",
			cs.Hits, cs.Dedups, served)
	}
}

// TestRaceWarmMatchesCold runs concurrent warm requests against a server
// whose cold answer is known, and asserts every response is bit-identical
// to the cold one modulo the Cached flag and timing.
func TestRaceWarmMatchesCold(t *testing.T) {
	s := newTestServer(t, Config{})
	const warmBody = `{"schema":"mis","graph":{"family":"cycle","n":40}}`
	const coldBody = `{"schema":"mis","graph":{"family":"cycle","n":40},"cache":false}`

	normalize := func(raw []byte) string {
		var r DecodeResponse
		if err := json.Unmarshal(raw, &r); err != nil {
			t.Errorf("bad decode response: %v", err)
			return ""
		}
		r.Cached = false
		r.ElapsedNano = 0
		out, _ := json.Marshal(r)
		return string(out)
	}

	w := doReq(t, s, "POST", "/v1/decode", coldBody)
	if w.Code != 200 {
		t.Fatalf("cold decode: %d %s", w.Code, w.Body)
	}
	want := normalize(w.Body.Bytes())

	const goroutines = 16
	got := make([]string, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := doReq(t, s, "POST", "/v1/decode", warmBody)
			if w.Code == http.StatusTooManyRequests {
				got[i] = want // shed; nothing to compare
				return
			}
			if w.Code != 200 {
				t.Errorf("goroutine %d: status %d: %s", i, w.Code, w.Body)
				return
			}
			got[i] = normalize(w.Body.Bytes())
		}(i)
	}
	wg.Wait()
	for i, g := range got {
		if g != want {
			t.Errorf("goroutine %d: warm response differs from cold\n got: %s\nwant: %s", i, g, want)
		}
	}
}

// TestRaceMixedEndpoints drives every endpoint concurrently — decodes,
// encodes, verifies, stats scrapes and cache flushes racing each other — as
// a pure data-race probe for the cache generation logic and metrics.
func TestRaceMixedEndpoints(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 64})
	bodies := [][2]string{
		{"/v1/decode", `{"schema":"mis","graph":{"family":"cycle","n":24}}`},
		{"/v1/encode", `{"schema":"mis","graph":{"family":"cycle","n":24}}`},
		{"/v1/decode", `{"schema":"color3","graph":{"family":"cycle","n":40}}`},
		{"/v1/verify", `{"schema":"mis","graph":{"family":"cycle","n":24}}`},
		{"/v1/cache/flush", `{}`},
	}
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b := bodies[i%len(bodies)]
			w := doReq(t, s, "POST", b[0], b[1])
			if w.Code >= 500 {
				t.Errorf("%s: status %d: %s", b[0], w.Code, w.Body)
			}
			doReq(t, s, "GET", "/v1/stats", "")
		}(i)
	}
	wg.Wait()
}

// TestRaceDrainMidFlight starts a real listener, fires requests, then shuts
// the server down while they are in flight: Shutdown must wait for every
// admitted request to finish (no connection resets, each answered 200), and
// Serve must return cleanly.
func TestRaceDrainMidFlight(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 32})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()
	base := "http://" + l.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	// Distinct graph sizes defeat the cache so every request does real work
	// while the shutdown lands.
	const goroutines = 12
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := fmt.Sprintf(`{"schema":"mis","graph":{"family":"cycle","n":%d},"cache":false}`, 2048+i)
			resp, err := client.Post(base+"/v1/decode", "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if _, err := io.Copy(io.Discard, resp.Body); err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
			}
		}(i)
	}
	// Shut down only once every request has been admitted (or already
	// answered): a dial that lands after the listener closes would be
	// refused, which is not the drain behavior under test.
	admitted := func() int64 {
		return s.inflight.Load() + int64(s.metrics["decode"].Snapshot().Count)
	}
	for deadline := time.Now().Add(10 * time.Second); admitted() < goroutines; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d/%d requests admitted before shutdown", admitted(), goroutines)
		}
		time.Sleep(100 * time.Microsecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("request %d interrupted by shutdown: %v", i, err)
		}
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Errorf("Serve returned %v after graceful shutdown, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Error("Serve did not return after Shutdown")
	}

	// The drained server refuses new work.
	if _, err := client.Post(base+"/v1/decode", "application/json",
		bytes.NewReader([]byte(`{"schema":"mis","graph":{"family":"cycle","n":8}}`))); err == nil {
		t.Error("request succeeded after shutdown")
	}
}

// TestRaceLoadShedding pins the 429 path deterministically: with the
// single pool slot occupied, every request is shed (not queued, not
// crashed) and counted in /v1/stats; once the slot frees, service resumes.
func TestRaceLoadShedding(t *testing.T) {
	s := newTestServer(t, Config{MaxInflight: 1})
	const body = `{"schema":"mis","graph":{"family":"cycle","n":12}}`

	s.sem <- struct{}{} // occupy the only slot, as an admitted request would
	const burst = 8
	var wg sync.WaitGroup
	codes := make([]int, burst)
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codes[i] = doReq(t, s, "POST", "/v1/decode", body).Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusTooManyRequests {
			t.Errorf("goroutine %d: status %d, want 429 while the pool is full", i, code)
		}
	}
	<-s.sem

	if w := doReq(t, s, "POST", "/v1/decode", body); w.Code != http.StatusOK {
		t.Errorf("status %d after the slot freed, want 200 (body: %s)", w.Code, w.Body)
	}
	var st StatsResponse
	w := doReq(t, s, "GET", "/v1/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shed != burst {
		t.Errorf("stats shed = %d, want %d", st.Shed, burst)
	}
	// Healthz bypasses the pool: it must answer even under saturation.
	s.sem <- struct{}{}
	if w := doReq(t, s, "GET", "/v1/healthz", ""); w.Code != http.StatusOK {
		t.Errorf("healthz under saturation: %d", w.Code)
	}
	<-s.sem
}
