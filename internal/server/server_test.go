package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer constructs a Server, failing the test on a bad Config (the
// only New error is an unusable StoreDir).
func newTestServer(t testing.TB, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New(%+v): %v", cfg, err)
	}
	return s
}

// doReq drives the server's handler directly (no network) and returns the
// recorded response.
func doReq(t *testing.T, s *Server, method, path, body string) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
		r.Header.Set("Content-Type", "application/json")
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, r)
	return w
}

// assertNoLeak fails if a response body looks like a stack trace or other
// internal detail escaping the process.
func assertNoLeak(t *testing.T, body string) {
	t.Helper()
	for _, marker := range []string{"goroutine ", ".go:", "runtime error", "panic:", "internal/server"} {
		if strings.Contains(body, marker) {
			t.Errorf("response body leaks internals (%q): %s", marker, body)
		}
	}
}

// errCode extracts the machine-readable error code of an error response.
func errCode(t *testing.T, body string) string {
	t.Helper()
	var eb errorBody
	if err := json.Unmarshal([]byte(body), &eb); err != nil {
		t.Fatalf("error body is not the errorBody shape: %v: %s", err, body)
	}
	return eb.Code
}

// TestEndpointMatrix is the endpoint x request-class table: every API route
// against valid input, malformed JSON, an oversized graph, an unknown
// schema, and fault-corrupted advice, pinning the status code and error
// code of each cell. Every non-2xx body must carry the typed error shape
// and no response may leak stack traces.
func TestEndpointMatrix(t *testing.T) {
	s := newTestServer(t, Config{MaxNodes: 64, MaxBodyBytes: 4096})

	const cycleGraph = `{"family":"cycle","n":12}`
	validLabels := `[1,2,1,2,1,2,1,2,1,2,1,2]`

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantCode   string // "" for 2xx
	}{
		// --- valid requests, one per endpoint ---
		{"encode/valid", "POST", "/v1/encode", `{"schema":"mis","graph":` + cycleGraph + `}`, 200, ""},
		{"decode/valid", "POST", "/v1/decode", `{"schema":"mis","graph":` + cycleGraph + `}`, 200, ""},
		{"decode/valid-fault-schema", "POST", "/v1/decode", `{"schema":"color3","graph":{"family":"cycle","n":40}}`, 200, ""},
		{"verify/valid", "POST", "/v1/verify", `{"schema":"mis","graph":` + cycleGraph + `,"labels":` + validLabels + `}`, 200, ""},
		{"experiment/valid", "POST", "/v1/experiment", `{"id":"E2"}`, 200, ""},
		{"flush/valid", "POST", "/v1/cache/flush", `{}`, 200, ""},
		{"healthz/valid", "GET", "/v1/healthz", "", 200, ""},
		{"stats/valid", "GET", "/v1/stats", "", 200, ""},

		// --- malformed JSON ---
		{"encode/malformed-json", "POST", "/v1/encode", `{"schema":`, 400, "bad_json"},
		{"decode/malformed-json", "POST", "/v1/decode", `not json at all`, 400, "bad_json"},
		{"verify/malformed-json", "POST", "/v1/verify", `{"labels":"nope"}`, 400, "bad_json"},
		{"experiment/malformed-json", "POST", "/v1/experiment", ``, 400, "bad_json"},
		{"decode/wrong-type", "POST", "/v1/decode", `{"schema":7}`, 400, "bad_json"},

		// --- oversized graphs (server bound is 64 nodes) ---
		{"encode/oversized-graph", "POST", "/v1/encode", `{"schema":"mis","graph":{"family":"cycle","n":100000}}`, 413, "graph_too_large"},
		{"decode/oversized-graph", "POST", "/v1/decode", `{"schema":"mis","graph":{"family":"cycle","n":65}}`, 413, "graph_too_large"},
		{"verify/oversized-graph", "POST", "/v1/verify", `{"schema":"mis","graph":{"family":"grid","n":4096}}`, 413, "graph_too_large"},

		// --- unknown schema ---
		{"encode/unknown-schema", "POST", "/v1/encode", `{"schema":"quantum","graph":` + cycleGraph + `}`, 404, "unknown_schema"},
		{"decode/unknown-schema", "POST", "/v1/decode", `{"schema":"","graph":` + cycleGraph + `}`, 404, "unknown_schema"},
		{"verify/unknown-schema", "POST", "/v1/verify", `{"schema":"misx","graph":` + cycleGraph + `}`, 404, "unknown_schema"},
		{"experiment/unknown-id", "POST", "/v1/experiment", `{"id":"E999"}`, 404, "unknown_experiment"},

		// --- fault-corrupted advice (PR 3 vocabulary: detected, not crashed) ---
		{"decode/advice-wrong-count", "POST", "/v1/decode",
			`{"schema":"mis","graph":` + cycleGraph + `,"advice":["1","0"]}`, 422, "corrupt_advice"},
		{"decode/advice-wrong-width", "POST", "/v1/decode",
			`{"schema":"mis","graph":` + cycleGraph + `,"advice":["11","0","1","0","1","0","1","0","1","0","1","0"]}`, 422, "corrupt_advice"},
		{"decode/advice-breaks-decoder", "POST", "/v1/decode",
			// All-ones advice claims every cycle node is in the MIS; the
			// decoded output fails independence and must be reported as
			// corruption, never returned as a solution.
			`{"schema":"mis","graph":` + cycleGraph + `,"advice":["1","1","1","1","1","1","1","1","1","1","1","1"]}`, 422, "corrupt_advice"},
		{"decode/advice-junk-chars", "POST", "/v1/decode",
			`{"schema":"mis","graph":` + cycleGraph + `,"advice":["x","0","1","0","1","0","1","0","1","0","1","0"]}`, 400, "bad_advice"},

		// --- graph spec and body abuse ---
		{"decode/empty-graph-spec", "POST", "/v1/decode", `{"schema":"mis","graph":{}}`, 400, "bad_graph_spec"},
		{"decode/ambiguous-graph-spec", "POST", "/v1/decode", `{"schema":"mis","graph":{"text":"n 3\ne 0 1\n","family":"cycle","n":4}}`, 400, "bad_graph_spec"},
		{"decode/unknown-family", "POST", "/v1/decode", `{"schema":"mis","graph":{"family":"hypercube","n":16}}`, 400, "bad_graph_spec"},
		{"decode/family-too-small", "POST", "/v1/decode", `{"schema":"mis","graph":{"family":"regular","n":2}}`, 400, "bad_graph_spec"},
		{"decode/bad-graph-text", "POST", "/v1/decode", `{"schema":"mis","graph":{"text":"n 4\ne 0 9\n"}}`, 400, "bad_graph"},
		{"decode/body-too-large", "POST", "/v1/decode", `{"schema":"mis","pad":"` + strings.Repeat("x", 8192) + `"}`, 413, "body_too_large"},
		{"verify/wrong-label-count", "POST", "/v1/verify", `{"schema":"mis","graph":` + cycleGraph + `,"labels":[1,2]}`, 400, "bad_solution"},

		// --- wrong method falls through to the mux ---
		{"encode/wrong-method", "GET", "/v1/encode", "", 405, ""},
		{"unknown-route", "POST", "/v1/nope", `{}`, 404, ""},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doReq(t, s, tc.method, tc.path, tc.body)
			body := w.Body.String()
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body: %s)", w.Code, tc.wantStatus, body)
			}
			assertNoLeak(t, body)
			if tc.wantCode != "" {
				if got := errCode(t, body); got != tc.wantCode {
					t.Errorf("error code = %q, want %q (body: %s)", got, tc.wantCode, body)
				}
			}
			if w.Code < 400 || tc.wantCode != "" {
				if ct := w.Header().Get("Content-Type"); ct != "application/json" {
					t.Errorf("Content-Type = %q, want application/json", ct)
				}
			}
		})
	}

	// After the whole matrix ran, /v1/stats must explain its bypass total as
	// a per-endpoint split covering every pooled endpoint (the split itself
	// is pinned by TestStatsBypassSplit).
	var st StatsResponse
	w := doReq(t, s, "GET", "/v1/stats", "")
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatalf("stats: %v", err)
	}
	var sum uint64
	for _, ep := range []string{"encode", "decode", "batch", "verify", "experiment"} {
		n, ok := st.BypassesBy[ep]
		if !ok {
			t.Errorf("stats cache_bypasses_by_endpoint missing %q", ep)
		}
		sum += n
	}
	if st.Bypasses != sum {
		t.Errorf("cache_bypasses = %d, want the by-endpoint sum %d", st.Bypasses, sum)
	}
}

// TestDecodeRoundTrip pins the serving pipeline end to end: encoded advice
// fed back through /v1/decode yields the same verified solution as the
// adviceless decode, and the solution really is an MIS labeling.
func TestDecodeRoundTrip(t *testing.T) {
	s := newTestServer(t, Config{})
	const body = `{"schema":"mis","graph":{"family":"cycle","n":16}}`

	w := doReq(t, s, "POST", "/v1/encode", body)
	if w.Code != 200 {
		t.Fatalf("encode: %d %s", w.Code, w.Body)
	}
	var enc EncodeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &enc); err != nil {
		t.Fatal(err)
	}
	if enc.N != 16 || len(enc.Advice) != 16 || enc.TotalBits != 16 {
		t.Fatalf("encode response shape: %+v", enc)
	}

	advJSON, _ := json.Marshal(enc.Advice)
	w = doReq(t, s, "POST", "/v1/decode",
		`{"schema":"mis","graph":{"family":"cycle","n":16},"advice":`+string(advJSON)+`}`)
	if w.Code != 200 {
		t.Fatalf("decode with explicit advice: %d %s", w.Code, w.Body)
	}
	var dec DecodeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dec); err != nil {
		t.Fatal(err)
	}
	if !dec.Verified {
		t.Error("decode response not marked verified")
	}
	if dec.TableEntries == 0 {
		t.Error("mis decode did not go through a compiled table")
	}
	if len(dec.Labels) != 16 {
		t.Fatalf("got %d labels", len(dec.Labels))
	}
	for v, l := range dec.Labels {
		if l != 1 && l != 2 {
			t.Errorf("node %d: label %d outside the MIS alphabet", v, l)
		}
		if enc.Advice[v] == "1" && l != 1 || enc.Advice[v] == "0" && l != 2 {
			t.Errorf("node %d: advice %q decoded to %d", v, enc.Advice[v], l)
		}
	}

	// The labeling round-trips through /v1/verify as valid.
	labJSON, _ := json.Marshal(dec.Labels)
	w = doReq(t, s, "POST", "/v1/verify",
		`{"schema":"mis","graph":{"family":"cycle","n":16},"labels":`+string(labJSON)+`}`)
	if w.Code != 200 {
		t.Fatalf("verify: %d %s", w.Code, w.Body)
	}
	var ver VerifyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ver); err != nil {
		t.Fatal(err)
	}
	if !ver.Valid || ver.Violation != "" {
		t.Errorf("decoded solution judged invalid: %+v", ver)
	}
}

// TestVerifyRejectsBadLabeling pins that an invalid labeling is a 200 with
// Valid=false and a violation message, not an HTTP error.
func TestVerifyRejectsBadLabeling(t *testing.T) {
	s := newTestServer(t, Config{})
	w := doReq(t, s, "POST", "/v1/verify",
		`{"schema":"mis","graph":{"family":"cycle","n":6},"labels":[1,1,1,1,1,1]}`)
	if w.Code != 200 {
		t.Fatalf("verify: %d %s", w.Code, w.Body)
	}
	var ver VerifyResponse
	if err := json.Unmarshal(w.Body.Bytes(), &ver); err != nil {
		t.Fatal(err)
	}
	if ver.Valid {
		t.Error("all-ones cycle labeling judged a valid MIS")
	}
	if ver.Violation == "" {
		t.Error("invalid labeling carries no violation message")
	}
	assertNoLeak(t, ver.Violation)
}

// TestCachedDecodeIsBitIdentical pins the cache transparency contract: the
// warm response differs from the cold one only in the Cached flag and
// timing.
func TestCachedDecodeIsBitIdentical(t *testing.T) {
	s := newTestServer(t, Config{})
	const body = `{"schema":"mis","graph":{"family":"cycle","n":24}}`
	const coldBody = `{"schema":"mis","graph":{"family":"cycle","n":24},"cache":false}`

	cold := doReq(t, s, "POST", "/v1/decode", coldBody)
	warm1 := doReq(t, s, "POST", "/v1/decode", body)
	warm2 := doReq(t, s, "POST", "/v1/decode", body)
	for _, w := range []*httptest.ResponseRecorder{cold, warm1, warm2} {
		if w.Code != 200 {
			t.Fatalf("decode: %d %s", w.Code, w.Body)
		}
	}
	var c, w1, w2 DecodeResponse
	if err := json.Unmarshal(cold.Body.Bytes(), &c); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warm1.Body.Bytes(), &w1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(warm2.Body.Bytes(), &w2); err != nil {
		t.Fatal(err)
	}
	if c.Cached {
		t.Error("cache-bypass request reported a cache hit")
	}
	if !w2.Cached {
		t.Error("second warm request missed the cache")
	}
	for _, r := range []*DecodeResponse{&c, &w1, &w2} {
		r.Cached = false
		r.ElapsedNano = 0
	}
	cj, _ := json.Marshal(c)
	for i, r := range []*DecodeResponse{&w1, &w2} {
		rj, _ := json.Marshal(r)
		if string(cj) != string(rj) {
			t.Errorf("warm response %d differs from cold: %s vs %s", i+1, rj, cj)
		}
	}
}

// TestRequestTimeout pins the deadline path: a server with an immediate
// deadline answers 504, not a hang or a 500.
func TestRequestTimeout(t *testing.T) {
	s := newTestServer(t, Config{RequestTimeout: time.Nanosecond})
	w := doReq(t, s, "POST", "/v1/decode", `{"schema":"mis","graph":{"family":"cycle","n":32}}`)
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504 (body: %s)", w.Code, w.Body)
	}
	if got := errCode(t, w.Body.String()); got != "timeout" {
		t.Errorf("error code = %q, want timeout", got)
	}
}

// TestStatsShape pins the /v1/stats fields bench.sh and loadgen scrape.
func TestStatsShape(t *testing.T) {
	s := newTestServer(t, Config{})
	doReq(t, s, "POST", "/v1/decode", `{"schema":"mis","graph":{"family":"cycle","n":8}}`)
	doReq(t, s, "POST", "/v1/decode", `{"schema":"mis","graph":{"family":"cycle","n":8}}`)

	w := doReq(t, s, "GET", "/v1/stats", "")
	if w.Code != 200 {
		t.Fatalf("stats: %d %s", w.Code, w.Body)
	}
	var st StatsResponse
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache.Computes == 0 || st.Cache.Hits == 0 {
		t.Errorf("cache counters empty after warm+cold decode: %+v", st.Cache)
	}
	if st.CacheHitRate <= 0 {
		t.Errorf("hit rate = %v, want > 0", st.CacheHitRate)
	}
	ep, ok := st.Endpoints["decode"]
	if !ok {
		t.Fatalf("no decode endpoint metrics: %v", st.Endpoints)
	}
	if ep.Count != 2 || ep.Errors != 0 {
		t.Errorf("decode endpoint counters = %+v, want count 2, errors 0", ep)
	}
	if ep.P50Nanos <= 0 || ep.MaxNanos < ep.P50Nanos {
		t.Errorf("implausible latency stats: %+v", ep)
	}
	if len(st.Schemas) != 9 {
		t.Errorf("schemas = %v, want the 9 registry entries", st.Schemas)
	}
	if st.MaxInflight <= 0 {
		t.Errorf("max_inflight = %d", st.MaxInflight)
	}
}

// TestFlushResetsCache pins that /v1/cache/flush empties the cache and the
// next identical request recomputes.
func TestFlushResetsCache(t *testing.T) {
	s := newTestServer(t, Config{})
	const body = `{"schema":"mis","graph":{"family":"cycle","n":8}}`
	doReq(t, s, "POST", "/v1/decode", body)
	if s.Cache().Stats().Entries == 0 {
		t.Fatal("decode cached nothing")
	}
	w := doReq(t, s, "POST", "/v1/cache/flush", `{}`)
	if w.Code != 200 {
		t.Fatalf("flush: %d %s", w.Code, w.Body)
	}
	var fr FlushResponse
	if err := json.Unmarshal(w.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Flushed || fr.Generation == 0 {
		t.Errorf("flush response: %+v", fr)
	}
	if got := s.Cache().Stats().Entries; got != 0 {
		t.Errorf("cache holds %d entries after flush", got)
	}
	w = doReq(t, s, "POST", "/v1/decode", body)
	var dec DecodeResponse
	if err := json.Unmarshal(w.Body.Bytes(), &dec); err != nil {
		t.Fatal(err)
	}
	if dec.Cached {
		t.Error("decode hit the cache right after a flush")
	}
}

// TestExperimentEndpoint pins the /v1/experiment surface: structured table,
// caching, and the never-cache-observed-runs rule.
func TestExperimentEndpoint(t *testing.T) {
	s := newTestServer(t, Config{})
	w := doReq(t, s, "POST", "/v1/experiment", `{"id":"e2"}`)
	if w.Code != 200 {
		t.Fatalf("experiment: %d %s", w.Code, w.Body)
	}
	var r1 ExperimentResponse
	if err := json.Unmarshal(w.Body.Bytes(), &r1); err != nil {
		t.Fatal(err)
	}
	if r1.ID != "E2" || len(r1.Rows) == 0 || r1.Rendered == "" {
		t.Fatalf("experiment response shape: id=%q rows=%d", r1.ID, len(r1.Rows))
	}
	if r1.Cached || r1.Summary != nil {
		t.Errorf("first unobserved run: cached=%v summary=%v", r1.Cached, r1.Summary)
	}

	w = doReq(t, s, "POST", "/v1/experiment", `{"id":"E2"}`)
	var r2 ExperimentResponse
	if err := json.Unmarshal(w.Body.Bytes(), &r2); err != nil {
		t.Fatal(err)
	}
	if !r2.Cached {
		t.Error("repeat experiment request missed the cache")
	}

	w = doReq(t, s, "POST", "/v1/experiment", `{"id":"E2","observe":true}`)
	if w.Code != 200 {
		t.Fatalf("observed experiment: %d %s", w.Code, w.Body)
	}
	var r3 ExperimentResponse
	if err := json.Unmarshal(w.Body.Bytes(), &r3); err != nil {
		t.Fatal(err)
	}
	if r3.Cached {
		t.Error("observed run served from cache")
	}
	if r3.Summary == nil {
		t.Error("observed run carries no metrics summary")
	}
}

// TestDisabledCache pins that a cache-disabled server still serves
// correctly (singleflight only, nothing retained).
func TestDisabledCache(t *testing.T) {
	s := newTestServer(t, Config{CacheBytes: -1})
	const body = `{"schema":"mis","graph":{"family":"cycle","n":8}}`
	for i := 0; i < 2; i++ {
		w := doReq(t, s, "POST", "/v1/decode", body)
		if w.Code != 200 {
			t.Fatalf("decode %d: %d %s", i, w.Code, w.Body)
		}
		var dec DecodeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &dec); err != nil {
			t.Fatal(err)
		}
		if dec.Cached {
			t.Errorf("request %d: cache hit on a cache-disabled server", i)
		}
	}
	if got := s.Cache().Stats().Entries; got != 0 {
		t.Errorf("disabled cache holds %d entries", got)
	}
}
