// Binary batch decode protocol (POST /v1/batch).
//
// A batch carries ONE (schema, graph) pair and many decode requests, so the
// server resolves the graph, the advice and the compiled table exactly once
// — through the same cache/store/singleflight stack as /v1/decode — and
// then streams per-item answers out of a reusable arena. The framing is
// length-prefixed little-endian binary (DESIGN.md §8): JSON parsing, base64
// advice strings and per-request artifact resolution, which dominate the
// cost of small /v1/decode requests, are all off the per-item path.
//
// Request ("LADB"):
//
//	magic     [4]byte "LADB"
//	version   u16     (currently 1)
//	flags     u8      bit0: use caches (0 = cold/bypass)
//	schemaLen u16, schema name bytes
//	specKind  u8      0 = generated family, 1 = inline edge-list text
//	  kind 0: famLen u16, family bytes, n u32, seed u64 (two's complement)
//	  kind 1: textLen u32, edge-list bytes
//	count     u32
//	items, each:
//	  mode u8         0 = server-side advice, 1 = inline advice
//	  mode 1: payLen u32, payload = binary advice codec (internal/persist)
//
// Response ("LADR"):
//
//	magic   [4]byte "LADR"
//	version u16
//	count   u32
//	items, each:
//	  status u8      0 = ok, 1 = error
//	  payLen u32
//	  ok payload:    u32 label count, then one i32 per node
//	  error payload: UTF-8 message
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/persist"
)

const (
	batchReqMagic  = "LADB"
	batchRespMagic = "LADR"
	batchVersion   = 1
	// batchMaxItems bounds one frame; more items than this is a malformed
	// request, not a bigger batch.
	batchMaxItems = 1 << 20

	// Request flag bits.
	flagBatchCache = 1 // bit0: use caches (0 = cold/bypass)
	// flagBatchExt asks for extended response items: the response header
	// gains the graph digest, ok payloads carry edge labels, rounds,
	// messages, table entries and the cached flag alongside the node
	// labels, and error payloads carry the typed HTTP status + error code
	// in front of the message. This is the cluster tier's inter-node hop:
	// a router forwards a JSON /v1/decode as a one-item extended batch and
	// reconstructs the full DecodeResponse from the answer, so shard
	// fan-out pays zero JSON overhead (DESIGN.md §9). Plain clients that
	// don't set the bit get the exact version-1 response shape.
	flagBatchExt = 2
)

// BatchItem is one decode request inside a batch. A nil Advice asks the
// server to use (and cache) the prover's own advice — the
// encode-once/decode-many hot path.
type BatchItem struct {
	Advice local.Advice
}

// BatchResult is one per-item answer. Exactly one of Labels/Err is set.
type BatchResult struct {
	Labels []int
	Err    string
}

// EncodeBatchRequest frames a batch request (the client half of the
// protocol, used by `locad loadgen -batch` and the equivalence tests).
func EncodeBatchRequest(schema string, spec GraphSpec, cache bool, items []BatchItem) ([]byte, error) {
	return encodeBatchRequest(schema, spec, cache, false, items)
}

// EncodeBatchRequestExt frames an extended-items batch request — the
// inter-node form the cluster router uses to forward decode misses to the
// owning shard. Decode the reply with DecodeBatchResponseExt.
func EncodeBatchRequestExt(schema string, spec GraphSpec, cache bool, items []BatchItem) ([]byte, error) {
	return encodeBatchRequest(schema, spec, cache, true, items)
}

func encodeBatchRequest(schema string, spec GraphSpec, cache, ext bool, items []BatchItem) ([]byte, error) {
	if len(schema) > 1<<16-1 {
		return nil, fmt.Errorf("schema name of %d bytes does not fit the frame", len(schema))
	}
	var b []byte
	b = append(b, batchReqMagic...)
	b = binary.LittleEndian.AppendUint16(b, batchVersion)
	var flags byte
	if cache {
		flags |= flagBatchCache
	}
	if ext {
		flags |= flagBatchExt
	}
	b = append(b, flags)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(schema)))
	b = append(b, schema...)
	switch {
	case spec.Text != "":
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(spec.Text)))
		b = append(b, spec.Text...)
	case spec.Family != "":
		if len(spec.Family) > 1<<16-1 {
			return nil, fmt.Errorf("family name of %d bytes does not fit the frame", len(spec.Family))
		}
		b = append(b, 0)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(spec.Family)))
		b = append(b, spec.Family...)
		b = binary.LittleEndian.AppendUint32(b, uint32(spec.N))
		b = binary.LittleEndian.AppendUint64(b, uint64(spec.Seed))
	default:
		return nil, errors.New("graph spec needs either text or family")
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(items)))
	for _, it := range items {
		if it.Advice == nil {
			b = append(b, 0)
			continue
		}
		payload := persist.EncodeAdvice(it.Advice)
		b = append(b, 1)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
		b = append(b, payload...)
	}
	return b, nil
}

// DecodeBatchResponse parses a full response frame.
func DecodeBatchResponse(b []byte) ([]BatchResult, error) {
	r := &frameReader{b: b}
	if string(r.take(4)) != batchRespMagic {
		return nil, errors.New("batch response: bad magic")
	}
	if v := r.u16(); v != batchVersion {
		return nil, fmt.Errorf("batch response: version %d, want %d", v, batchVersion)
	}
	count := r.u32()
	if r.err != nil || count > batchMaxItems {
		return nil, errors.New("batch response: malformed header")
	}
	out := make([]BatchResult, 0, count)
	for i := uint32(0); i < count; i++ {
		status := r.u8()
		payload := r.take(int(r.u32()))
		if r.err != nil {
			return nil, fmt.Errorf("batch response: truncated at item %d", i)
		}
		if status != 0 {
			out = append(out, BatchResult{Err: string(payload)})
			continue
		}
		p := &frameReader{b: payload}
		n := p.u32()
		if p.err != nil || int(n)*4 != len(p.b)-p.off {
			return nil, fmt.Errorf("batch response: malformed labels at item %d", i)
		}
		labels := make([]int, n)
		for v := range labels {
			labels[v] = int(int32(p.u32()))
		}
		out = append(out, BatchResult{Labels: labels})
	}
	if r.off != len(r.b) {
		return nil, errors.New("batch response: trailing bytes")
	}
	return out, nil
}

// BatchResultExt is one per-item answer of an extended-items batch: the
// full decode metadata a router needs to reconstruct a DecodeResponse
// bit-identical to the single-process answer. Exactly one of Labels/Err is
// set.
type BatchResultExt struct {
	Labels       []int
	EdgeLabels   []int // nil when the schema labels no edges
	Rounds       int
	Messages     int
	TableEntries int
	Cached       bool
	Err          *BatchItemError
}

// BatchItemError is an extended in-band item failure: the typed HTTP
// status and machine-readable code the owning shard would have answered a
// direct request with, plus the message.
type BatchItemError struct {
	Status int
	Code   string
	Msg    string
}

// DecodeBatchResponseExt parses an extended-items response frame, returning
// the shared graph digest and the per-item results.
func DecodeBatchResponseExt(b []byte) (digest string, results []BatchResultExt, err error) {
	r := &frameReader{b: b}
	if string(r.take(4)) != batchRespMagic {
		return "", nil, errors.New("batch response: bad magic")
	}
	if v := r.u16(); v != batchVersion {
		return "", nil, fmt.Errorf("batch response: version %d, want %d", v, batchVersion)
	}
	count := r.u32()
	digest = string(r.take(int(r.u16())))
	if r.err != nil || count > batchMaxItems {
		return "", nil, errors.New("batch response: malformed header")
	}
	results = make([]BatchResultExt, 0, count)
	for i := uint32(0); i < count; i++ {
		status := r.u8()
		payload := r.take(int(r.u32()))
		if r.err != nil {
			return "", nil, fmt.Errorf("batch response: truncated at item %d", i)
		}
		p := &frameReader{b: payload}
		if status != 0 {
			e := &BatchItemError{Status: int(p.u16())}
			e.Code = string(p.take(int(p.u16())))
			e.Msg = string(p.b[p.off:])
			if p.err != nil {
				return "", nil, fmt.Errorf("batch response: malformed error at item %d", i)
			}
			results = append(results, BatchResultExt{Err: e})
			continue
		}
		var res BatchResultExt
		res.Labels = readLabelRun(p)
		res.EdgeLabels = readLabelRun(p)
		res.Rounds = int(p.u32())
		res.Messages = int(p.u32())
		res.TableEntries = int(p.u32())
		res.Cached = p.u8() != 0
		if p.err != nil || p.off != len(p.b) {
			return "", nil, fmt.Errorf("batch response: malformed labels at item %d", i)
		}
		results = append(results, res)
	}
	if r.off != len(r.b) {
		return "", nil, errors.New("batch response: trailing bytes")
	}
	return digest, results, nil
}

// readLabelRun reads a u32-counted run of i32 labels (nil when empty).
func readLabelRun(p *frameReader) []int {
	n := p.u32()
	if p.err != nil || n == 0 {
		return nil
	}
	if int(n)*4 > len(p.b)-p.off {
		p.err = io.ErrUnexpectedEOF
		return nil
	}
	labels := make([]int, n)
	for v := range labels {
		labels[v] = int(int32(p.u32()))
	}
	return labels
}

// PeekBatchSpec parses only the header of a request frame — schema, graph
// spec, cache flag — without touching the items. The cluster router uses it
// to compute the routing key of a forwarded /v1/batch frame.
func PeekBatchSpec(frame []byte) (schema string, spec GraphSpec, cached bool, err error) {
	fr := &frameReader{b: frame}
	schema, spec, flags, err := parseBatchHeader(fr)
	if err != nil {
		return "", GraphSpec{}, false, err
	}
	return schema, spec, flags&flagBatchCache != 0, nil
}

// parseBatchHeader consumes a request frame's header up to (but excluding)
// the item count, leaving fr positioned on it.
func parseBatchHeader(fr *frameReader) (schema string, spec GraphSpec, flags byte, err error) {
	if string(fr.take(4)) != batchReqMagic {
		return "", GraphSpec{}, 0, errf(http.StatusBadRequest, "bad_batch", "bad magic (want %q)", batchReqMagic)
	}
	if v := fr.u16(); v != batchVersion {
		return "", GraphSpec{}, 0, errf(http.StatusBadRequest, "bad_batch", "version %d, want %d", v, batchVersion)
	}
	flags = fr.u8()
	schema = string(fr.take(int(fr.u16())))
	switch kind := fr.u8(); kind {
	case 0:
		spec.Family = string(fr.take(int(fr.u16())))
		spec.N = int(fr.u32())
		spec.Seed = int64(fr.u64())
	case 1:
		spec.Text = string(fr.take(int(fr.u32())))
	default:
		if fr.err == nil {
			return "", GraphSpec{}, 0, errf(http.StatusBadRequest, "bad_batch", "unknown graph spec kind %d", kind)
		}
	}
	if fr.err != nil {
		return "", GraphSpec{}, 0, errf(http.StatusBadRequest, "bad_batch", "truncated header")
	}
	return schema, spec, flags, nil
}

// frameReader is a bounds-checked little-endian cursor; after any
// out-of-bounds read err is set and every later read returns zeros.
type frameReader struct {
	b   []byte
	off int
	err error
}

func (r *frameReader) take(n int) []byte {
	if r.err != nil || n < 0 || n > len(r.b)-r.off {
		r.err = io.ErrUnexpectedEOF
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *frameReader) u8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *frameReader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *frameReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// rawEndpoint wraps a binary-response handler (batch decode, artifact
// export) with the same serving policy as the JSON endpoints — shedding at
// the in-flight bound, body limiting, the request deadline, panic
// containment — but writes the returned frame as an octet stream on
// success. Header-level failures (bad frame, unknown schema, bad graph) are
// JSON apiErrors exactly like every other endpoint; in the batch protocol,
// per-item failures travel in-band.
func (s *Server) rawEndpoint(name string, h func(*http.Request) ([]byte, error)) http.HandlerFunc {
	m := s.metrics[name]
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		select {
		case s.sem <- struct{}{}:
		default:
			s.shed.Add(1)
			writeError(w, errf(http.StatusTooManyRequests, "overloaded",
				"server at its in-flight request bound (%d); retry later", s.cfg.MaxInflight))
			m.Observe(time.Since(start), true)
			return
		}
		s.inflight.Add(1)
		r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)

		type result struct {
			frame []byte
			err   error
		}
		ch := make(chan result, 1)
		go func() {
			defer func() {
				if p := recover(); p != nil {
					ch <- result{err: errf(http.StatusInternalServerError, "internal", "internal error")}
				}
				s.inflight.Add(-1)
				<-s.sem
			}()
			frame, err := h(r)
			ch <- result{frame, err}
		}()

		deadline := time.NewTimer(s.cfg.RequestTimeout)
		defer deadline.Stop()
		select {
		case res := <-ch:
			if res.err != nil {
				writeError(w, toAPIError(res.err))
				m.Observe(time.Since(start), true)
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(res.frame)
			m.Observe(time.Since(start), false)
		case <-deadline.C:
			writeError(w, errf(http.StatusGatewayTimeout, "timeout", "request timed out"))
			m.Observe(time.Since(start), true)
		case <-r.Context().Done():
			m.Observe(time.Since(start), true)
		}
	}
}

// handleBatch parses one request frame, resolves the shared artifacts once,
// and renders the response frame.
func (s *Server) handleBatch(r *http.Request) ([]byte, error) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, err
	}
	fr := &frameReader{b: body}
	schema, spec, flags, err := parseBatchHeader(fr)
	if err != nil {
		return nil, err
	}
	cached := flags&flagBatchCache != 0
	ext := flags&flagBatchExt != 0
	count := fr.u32()
	if fr.err != nil {
		return nil, errf(http.StatusBadRequest, "bad_batch", "truncated header")
	}
	if count > batchMaxItems {
		return nil, errf(http.StatusBadRequest, "bad_batch",
			"%d items exceeds the per-frame bound %d", count, batchMaxItems)
	}

	sc, err := s.resolveSchema(schema)
	if err != nil {
		return nil, err
	}
	cg, _, err := s.resolveGraph(spec, cached, "batch")
	if err != nil {
		return nil, err
	}

	// Response arena: the header is written once, then items are appended in
	// request order. serverPayload caches the rendered mode-0 answer so a
	// batch of N server-advice decodes renders the labels exactly once and
	// appends the same bytes N times — zero per-item allocation.
	resp := make([]byte, 0, 16+int(count)*8)
	resp = append(resp, batchRespMagic...)
	resp = binary.LittleEndian.AppendUint16(resp, batchVersion)
	resp = binary.LittleEndian.AppendUint32(resp, count)
	if ext {
		resp = binary.LittleEndian.AppendUint16(resp, uint16(len(cg.digest)))
		resp = append(resp, cg.digest...)
	}
	render := func(art *decodeArtifact, hit bool, err error) ([]byte, string) {
		if err != nil {
			if ext {
				return nil, string(renderExtError(err))
			}
			return nil, err.Error()
		}
		if ext {
			return renderExtPayload(art, hit), ""
		}
		return renderLabels(art.sol.Node), ""
	}
	var serverPayload []byte
	var serverErr string
	haveServer := false

	for i := uint32(0); i < count; i++ {
		mode := fr.u8()
		var inline []byte
		if mode == 1 {
			inline = fr.take(int(fr.u32()))
		}
		if fr.err != nil {
			return nil, errf(http.StatusBadRequest, "bad_batch", "truncated at item %d", i)
		}
		if mode > 1 {
			return nil, errf(http.StatusBadRequest, "bad_batch", "unknown item mode %d", mode)
		}
		s.batchItems.Add(1)
		switch mode {
		case 0:
			if !haveServer {
				serverPayload, serverErr = render(s.batchServerDecode(sc, cg, cached))
				haveServer = true
			}
			resp = appendBatchItem(resp, serverPayload, serverErr)
		case 1:
			payload, errMsg := render(s.batchInlineDecode(sc, cg, inline, cached))
			resp = appendBatchItem(resp, payload, errMsg)
		}
	}
	if fr.off != len(fr.b) {
		return nil, errf(http.StatusBadRequest, "bad_batch", "trailing bytes after item %d", count)
	}
	return resp, nil
}

func (r *frameReader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// appendBatchItem writes one framed item into the response arena. errMsg is
// the raw error payload: the UTF-8 message for plain batches, the binary
// status+code+message form (renderExtError) for extended ones.
func appendBatchItem(resp, payload []byte, errMsg string) []byte {
	if errMsg != "" {
		resp = append(resp, 1)
		resp = binary.LittleEndian.AppendUint32(resp, uint32(len(errMsg)))
		return append(resp, errMsg...)
	}
	resp = append(resp, 0)
	resp = binary.LittleEndian.AppendUint32(resp, uint32(len(payload)))
	return append(resp, payload...)
}

// renderLabels encodes a solution's node labels as the ok-payload.
func renderLabels(labels []int) []byte {
	out := make([]byte, 0, 4+4*len(labels))
	out = binary.LittleEndian.AppendUint32(out, uint32(len(labels)))
	for _, l := range labels {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(l)))
	}
	return out
}

// appendLabelRun writes a u32-counted run of i32 labels.
func appendLabelRun(out []byte, labels []int) []byte {
	out = binary.LittleEndian.AppendUint32(out, uint32(len(labels)))
	for _, l := range labels {
		out = binary.LittleEndian.AppendUint32(out, uint32(int32(l)))
	}
	return out
}

// renderExtPayload encodes the extended ok-payload: node labels, edge
// labels (empty run unless the schema labeled an edge, mirroring
// DecodeResponse.EdgeLabels), rounds, messages, table entries, cached flag.
func renderExtPayload(art *decodeArtifact, hit bool) []byte {
	edge := []int(nil)
	for _, l := range art.sol.Edge {
		if l != lcl.Unset {
			edge = art.sol.Edge
			break
		}
	}
	out := make([]byte, 0, 21+4*(len(art.sol.Node)+len(edge)))
	out = appendLabelRun(out, art.sol.Node)
	out = appendLabelRun(out, edge)
	out = binary.LittleEndian.AppendUint32(out, uint32(art.stats.Rounds))
	out = binary.LittleEndian.AppendUint32(out, uint32(art.stats.Messages))
	out = binary.LittleEndian.AppendUint32(out, uint32(art.tableEntries))
	if hit {
		out = append(out, 1)
	} else {
		out = append(out, 0)
	}
	return out
}

// renderExtError encodes an extended error payload: the typed HTTP status
// and code (via the same toAPIError mapping a direct request would get) in
// front of the message.
func renderExtError(err error) []byte {
	ae := toAPIError(err)
	out := make([]byte, 0, 4+len(ae.code)+len(ae.msg))
	out = binary.LittleEndian.AppendUint16(out, uint16(ae.status))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(ae.code)))
	out = append(out, ae.code...)
	out = append(out, ae.msg...)
	return out
}

// batchServerDecode resolves the server-advice decode once per batch; the
// rendered answer is reused verbatim for every mode-0 item.
func (s *Server) batchServerDecode(sc *schemaEntry, cg *cachedGraph, cached bool) (*decodeArtifact, bool, error) {
	advice, _, err := s.encodeAdvice(sc, cg, cached, "batch")
	if err != nil {
		return nil, false, err
	}
	advDigest := sha256hex(adviceStrings(advice)...)
	return s.decodeSolution(sc, cg, advice, advDigest, cached, "batch")
}

// batchInlineDecode handles a mode-1 item: binary advice in, labels out.
func (s *Server) batchInlineDecode(sc *schemaEntry, cg *cachedGraph, inline []byte, cached bool) (*decodeArtifact, bool, error) {
	advice, err := persist.DecodeAdvice(inline)
	if err != nil {
		return nil, false, errors.New("bad advice payload: " + err.Error())
	}
	if len(advice) != cg.g.N() {
		return nil, false, fmt.Errorf("advice covers %d nodes, graph has %d: %w",
			len(advice), cg.g.N(), local.ErrAdviceLength)
	}
	advDigest := sha256hex(adviceStrings(advice)...)
	return s.decodeSolution(sc, cg, advice, advDigest, cached, "batch")
}
