package server

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"strings"
	"time"

	"localadvice/internal/bitstr"
	"localadvice/internal/cache"
	"localadvice/internal/eth"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/harness"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/obs"
	"localadvice/internal/persist"
)

// GraphSpec names a graph in a request: either an inline edge-list text
// (the graph.WriteEdgeList format) or a generated family with size and
// seed (the vocabulary of harness.BuildGraph and the locad CLI).
type GraphSpec struct {
	Text   string `json:"text,omitempty"`
	Family string `json:"family,omitempty"`
	N      int    `json:"n,omitempty"`
	Seed   int64  `json:"seed,omitempty"`
}

// SpecCacheKey maps a graph spec onto its cache key — `graph:text:<sha256>`
// for inline edge lists, `graph:<family>:<n>:<seed>` for generated families
// (DESIGN.md §7). The key is a pure function of the request bytes, so it
// doubles as the cluster tier's routing key: every artifact derived from a
// spec shares this root, and rendezvous-hashing it assigns all of them to
// one owning shard without building the graph (DESIGN.md §9).
func SpecCacheKey(spec GraphSpec) (string, error) {
	switch {
	case spec.Text != "":
		if spec.Family != "" {
			return "", errf(http.StatusBadRequest, "bad_graph_spec",
				"graph spec sets both text and family")
		}
		return "graph:text:" + sha256hex(spec.Text), nil
	case spec.Family != "":
		if spec.N <= 0 {
			return "", errf(http.StatusBadRequest, "bad_graph_spec",
				"graph spec needs n > 0, got %d", spec.N)
		}
		return fmt.Sprintf("graph:%s:%d:%d", spec.Family, spec.N, spec.Seed), nil
	default:
		return "", errf(http.StatusBadRequest, "bad_graph_spec",
			"graph spec needs either text or family")
	}
}

// cachedGraph is the resident form of a resolved graph: the graph with its
// CSR snapshot prebuilt, plus its digest (the root of every derived cache
// key).
type cachedGraph struct {
	g      *graph.Graph
	digest string
	// seed is the request spec's generator seed (0 for inline edge lists).
	// Seed-dependent schemas fold it into their advice keys; the generated
	// families that ignore their seed (cycle, path, grid, torus) therefore
	// produce one graph digest but many advice artifacts under a seeded
	// schema — and exactly one under a det-mode schema.
	seed int64
}

// decodeArtifact is the resident form of a decode result.
type decodeArtifact struct {
	sol          *lcl.Solution
	stats        local.Stats
	tableEntries int // size of the compiled eth.Table, when one was used
}

// useCache reads a request's optional "cache" field (default true). The
// cold benchmark path sets it to false to measure full recomputation:
// cache:false bypasses every caching layer — the LRU *and* the persistent
// store — so a cold request always prices the full engine pipeline.
func (s *Server) useCache(p *bool) bool { return p == nil || *p }

// doCached funnels one artifact through the cache, or computes it directly
// on the cold path (counted as a bypass, labeled with the endpoint that
// asked so /v1/stats can split verify/experiment traffic from benchmark
// cold decodes).
func (s *Server) doCached(key string, cached bool, src string, compute func() (any, int64, error)) (any, bool, error) {
	if cached {
		return s.cache.Do(key, compute)
	}
	if c, ok := s.bypasses[src]; ok {
		c.Add(1)
	}
	v, _, err := compute()
	return v, false, err
}

// storeLoadAdvice consults the persistent store for an encoded advice
// record. Corrupt or mis-shaped records are treated as misses (the caller
// recomputes and Put self-heals the file).
func (s *Server) storeLoadAdvice(key string, g *graph.Graph) (local.Advice, bool) {
	if s.store == nil {
		return nil, false
	}
	payload, kind, ok, err := s.store.Get(key)
	if err != nil || !ok || kind != persist.KindAdvice {
		return nil, false
	}
	advice, err := persist.DecodeAdvice(payload)
	if err != nil || len(advice) != g.N() {
		s.storeMetrics.ObserveError()
		return nil, false
	}
	return advice, true
}

// storeLoadTable consults the store for a compiled table, decoding outputs
// with the schema's binary codec.
func (s *Server) storeLoadTable(key string, sc *schemaEntry) (*eth.Table, bool) {
	if s.store == nil || sc.TableDecode == nil {
		return nil, false
	}
	payload, kind, ok, err := s.store.Get(key)
	if err != nil || !ok || kind != persist.KindTable {
		return nil, false
	}
	table, err := eth.LoadTableBinary(bytes.NewReader(payload), sc.TableDecode)
	if err != nil {
		s.storeMetrics.ObserveError()
		return nil, false
	}
	return table, true
}

// storePut writes one artifact through to disk. Failures are recorded in
// the store metrics but never fail the request: persistence is an
// optimization, not a dependency.
func (s *Server) storePut(key string, kind persist.Kind, payload []byte) {
	if s.store == nil {
		return
	}
	_ = s.store.Put(key, kind, payload) // Put counts its own errors
}

// resolveSchema looks a schema up in the registry (404 on miss).
func (s *Server) resolveSchema(name string) (*schemaEntry, error) {
	sc, ok := s.schemas[name]
	if !ok {
		return nil, errf(http.StatusNotFound, "unknown_schema",
			"unknown schema %q (have %s)", name, strings.Join(schemaNames(s.schemas), ", "))
	}
	return sc, nil
}

// resolveGraph validates a spec and produces the (possibly cached) graph.
// Graphs are cheap to rebuild relative to their on-disk size, so they are
// memoized in the LRU but never persisted.
func (s *Server) resolveGraph(spec GraphSpec, cached bool, src string) (*cachedGraph, bool, error) {
	key, err := SpecCacheKey(spec)
	if err != nil {
		return nil, false, err
	}
	var build func() (*graph.Graph, error)
	if spec.Text != "" {
		build = func() (*graph.Graph, error) { return graph.ReadEdgeList(strings.NewReader(spec.Text)) }
	} else {
		if spec.N > s.cfg.MaxNodes {
			return nil, false, errf(http.StatusRequestEntityTooLarge, "graph_too_large",
				"requested %d nodes exceeds the server bound %d", spec.N, s.cfg.MaxNodes)
		}
		build = func() (*graph.Graph, error) {
			g, err := harness.BuildGraph(spec.Family, spec.N, spec.Seed)
			if err != nil {
				// Unknown family, size too small for the family, and every
				// other construction failure is a bad spec, not a server bug.
				return nil, errf(http.StatusBadRequest, "bad_graph_spec", "%v", err)
			}
			return g, nil
		}
	}
	v, hit, err := s.doCached(key, cached, src, func() (any, int64, error) {
		g, err := build()
		if err != nil {
			return nil, 0, err
		}
		if g.N() > s.cfg.MaxNodes {
			return nil, 0, errf(http.StatusRequestEntityTooLarge, "graph_too_large",
				"graph has %d nodes, server bound is %d", g.N(), s.cfg.MaxNodes)
		}
		g.Snapshot() // prebuild the CSR so every later engine run reuses it
		// The LRU key is the spec key, which includes the seed, so the
		// cached entry's seed always matches the request that hits it.
		return &cachedGraph{g: g, digest: g.Digest(), seed: spec.Seed}, graphSize(g), nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*cachedGraph), hit, nil
}

// graphSize estimates a resident graph's footprint: IDs, adjacency +
// incidence lists, the edge list, and the CSR snapshot.
func graphSize(g *graph.Graph) int64 {
	return 256 + 8*int64(g.N()) + 56*int64(g.M())
}

func adviceSize(a local.Advice) int64 {
	return 64 + 24*int64(len(a)) + int64(a.TotalBits())
}

func solutionSize(sol *lcl.Solution) int64 {
	return 64 + 8*int64(len(sol.Node)+len(sol.Edge))
}

// adviceStrings renders advice as one "0101" string per node.
func adviceStrings(a local.Advice) []string {
	out := make([]string, len(a))
	for v, s := range a {
		out[v] = s.String()
	}
	return out
}

// parseAdvice converts request advice strings into a dense assignment.
// Non-bit characters are a malformed request (400); a wrong node count is
// corrupt advice (422) — the same distinction the fault layer draws between
// unparseable input and damaged advice.
func parseAdvice(g *graph.Graph, strs []string) (local.Advice, error) {
	if len(strs) != g.N() {
		return nil, fmt.Errorf("advice covers %d nodes, graph has %d: %w",
			len(strs), g.N(), local.ErrAdviceLength)
	}
	advice := make(local.Advice, len(strs))
	for v, str := range strs {
		s, err := bitstr.Parse(str)
		if err != nil {
			return nil, errf(http.StatusBadRequest, "bad_advice", "node %d: %v", v, err)
		}
		advice[v] = s
	}
	return advice, nil
}

// encodeAdvice produces (or recalls) the prover's advice for (graph,
// schema). The LRU's singleflight compute closure consults the persistent
// store before falling back to the engine, so disk-load and compute share
// one singleflight call: a startup stampede of N identical requests loads
// or computes each advice assignment at most once.
func (s *Server) encodeAdvice(sc *schemaEntry, cg *cachedGraph, cached bool, src string) (local.Advice, bool, error) {
	key := adviceKey(sc, cg)
	v, hit, err := s.doCached(key, cached, src, func() (any, int64, error) {
		if cached {
			if advice, ok := s.storeLoadAdvice(key, cg.g); ok {
				return advice, adviceSize(advice), nil
			}
		}
		s.engineComputes.Add(1)
		encStart := time.Now()
		var advice local.Advice
		var err error
		if sc.EncodeSeeded != nil {
			advice, err = sc.EncodeSeeded(cg.g, cg.seed)
		} else {
			advice, err = sc.Encode(cg.g)
		}
		s.engineComputeNanos.Add(time.Since(encStart).Nanoseconds())
		if err != nil {
			return nil, 0, errf(http.StatusUnprocessableEntity, "unencodable",
				"%s encode on this graph: %v", sc.Name, err)
		}
		if cached {
			s.storePut(key, persist.KindAdvice, persist.EncodeAdvice(advice))
		}
		return advice, adviceSize(advice), nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(local.Advice), hit, nil
}

// decodeSolution runs (or recalls) the verified decode of advice on the
// graph. Table-compiled schemas go through a cached eth.Table; either way
// the decoded output is verified against the schema's problem before it is
// cached or returned, so a cached solution is always a valid one.
func (s *Server) decodeSolution(sc *schemaEntry, cg *cachedGraph, advice local.Advice, advDigest string, cached bool, src string) (*decodeArtifact, bool, error) {
	key := "decode:" + cg.digest + ":" + sc.Name + "@" + sc.Params + ":" + advDigest
	v, hit, err := s.doCached(key, cached, src, func() (any, int64, error) {
		art, err := s.decodeCold(sc, cg, advice, advDigest, cached, src)
		if err != nil {
			return nil, 0, err
		}
		return art, solutionSize(art.sol), nil
	})
	if err != nil {
		return nil, false, err
	}
	return v.(*decodeArtifact), hit, nil
}

func (s *Server) decodeCold(sc *schemaEntry, cg *cachedGraph, advice local.Advice, advDigest string, cached bool, src string) (*decodeArtifact, error) {
	if sc.ValidateAdvice != nil {
		if err := sc.ValidateAdvice(cg.g, advice); err != nil {
			return nil, err
		}
	}
	art := &decodeArtifact{}
	var sol *lcl.Solution
	var stats local.Stats
	if sc.Compile != nil {
		table, err := s.resolveTable(sc, cg, advice, advDigest, cached, src)
		if err != nil {
			return nil, err
		}
		art.tableEntries = len(table.Entries)
		outputs, st, err := table.Run(cg.g, advice)
		if err != nil {
			return nil, fmt.Errorf("%s table decode: %v: %w", sc.Name, err, fault.ErrDetectedCorruption)
		}
		sol = lcl.NewSolution(cg.g)
		for v, out := range outputs {
			label, ok := out.(int)
			if !ok {
				return nil, fmt.Errorf("%s table output for node %d is %T: %w",
					sc.Name, v, out, fault.ErrDetectedCorruption)
			}
			sol.Node[v] = label
		}
		stats = st
	} else {
		var err error
		sol, stats, err = sc.Decode(cg.g, advice)
		if err != nil {
			return nil, fmt.Errorf("%s decode: %v: %w", sc.Name, err, fault.ErrDetectedCorruption)
		}
	}
	if err := lcl.Verify(sc.Problem(cg.g), cg.g, sol); err != nil {
		return nil, fmt.Errorf("%s output failed verification (%v): %w",
			sc.Name, err, fault.ErrDetectedCorruption)
	}
	art.sol = sol
	art.stats = stats
	return art, nil
}

// resolveTable compiles (or recalls) the schema's decoder table for (graph,
// advice), through the same LRU → store → engine layering as encodeAdvice.
// It is shared by the decode path and the artifact-export endpoint of the
// cluster tier, so a replication pull resolves the identical table object a
// decode would.
func (s *Server) resolveTable(sc *schemaEntry, cg *cachedGraph, advice local.Advice, advDigest string, cached bool, src string) (*eth.Table, error) {
	tableKey := tableKey(sc, cg, advDigest)
	tv, _, err := s.doCached(tableKey, cached, src, func() (any, int64, error) {
		if cached {
			if table, ok := s.storeLoadTable(tableKey, sc); ok {
				return table, tableSize(table), nil
			}
		}
		s.engineComputes.Add(1)
		compileStart := time.Now()
		table, err := sc.Compile(cg.g, advice)
		s.engineComputeNanos.Add(time.Since(compileStart).Nanoseconds())
		if err != nil {
			return nil, 0, errf(http.StatusUnprocessableEntity, "uncompilable",
				"%s decoder compilation: %v", sc.Name, err)
		}
		if cached && sc.TableEncode != nil {
			var buf bytes.Buffer
			if err := table.SaveBinary(&buf, sc.TableEncode); err == nil {
				s.storePut(tableKey, persist.KindTable, buf.Bytes())
			}
		}
		return table, tableSize(table), nil
	})
	if err != nil {
		return nil, err
	}
	return tv.(*eth.Table), nil
}

// adviceKey/tableKey build the §7 digest-derived artifact keys. Advice of a
// seed-dependent schema additionally carries the request's graph seed: the
// Moser–Tardos output is a function of (graph, seed), and two seeds must
// never share a cached artifact. Det-mode schemas omit the component — the
// conditional-expectations output is a pure function of the graph, so every
// seed variant of a spec resolves to one key (DESIGN.md decision 12).
func adviceKey(sc *schemaEntry, cg *cachedGraph) string {
	key := "advice:" + cg.digest + ":" + sc.Name + "@" + sc.Params
	if sc.SeedDependent {
		key += fmt.Sprintf(":seed=%d", cg.seed)
	}
	return key
}

func tableKey(sc *schemaEntry, cg *cachedGraph, advDigest string) string {
	return "table:" + cg.digest + ":" + sc.Name + "@" + sc.Params + ":" + advDigest
}

// tableSize estimates a compiled table's footprint: keys plus boxed outputs.
func tableSize(t *eth.Table) int64 {
	size := int64(128)
	for k := range t.Entries {
		size += int64(len(k)) + 64
	}
	return size
}

// EncodeRequest is the body of POST /v1/encode.
type EncodeRequest struct {
	Schema string    `json:"schema"`
	Graph  GraphSpec `json:"graph"`
	Cache  *bool     `json:"cache,omitempty"`
}

// EncodeResponse is its reply.
type EncodeResponse struct {
	Schema      string   `json:"schema"`
	GraphDigest string   `json:"graph_digest"`
	N           int      `json:"n"`
	Advice      []string `json:"advice"`
	TotalBits   int      `json:"total_bits"`
	Holders     int      `json:"holders"`
	Cached      bool     `json:"cached"`
	ElapsedNano int64    `json:"elapsed_nanos"`
}

func (s *Server) handleEncode(ctx context.Context, r *http.Request) (any, error) {
	start := time.Now()
	var req EncodeRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	sc, err := s.resolveSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	cached := s.useCache(req.Cache)
	cg, _, err := s.resolveGraph(req.Graph, cached, "encode")
	if err != nil {
		return nil, err
	}
	advice, hit, err := s.encodeAdvice(sc, cg, cached, "encode")
	if err != nil {
		return nil, err
	}
	return &EncodeResponse{
		Schema:      sc.Name,
		GraphDigest: cg.digest,
		N:           cg.g.N(),
		Advice:      adviceStrings(advice),
		TotalBits:   advice.TotalBits(),
		Holders:     len(advice.BitHolders()),
		Cached:      hit,
		ElapsedNano: time.Since(start).Nanoseconds(),
	}, nil
}

// DecodeRequest is the body of POST /v1/decode. Advice is optional: when
// omitted the server uses (and caches) the prover's own advice, which is
// the encode-once/decode-many serving path.
type DecodeRequest struct {
	Schema string    `json:"schema"`
	Graph  GraphSpec `json:"graph"`
	Advice []string  `json:"advice,omitempty"`
	Cache  *bool     `json:"cache,omitempty"`
}

// DecodeResponse is its reply. Labels is the per-node output; EdgeLabels is
// present for edge-labeling problems (orientations). Verified is always
// true on a 200: an output that fails verification is reported as a 422,
// never returned as a solution.
type DecodeResponse struct {
	Schema       string `json:"schema"`
	GraphDigest  string `json:"graph_digest"`
	Labels       []int  `json:"labels"`
	EdgeLabels   []int  `json:"edge_labels,omitempty"`
	Rounds       int    `json:"rounds"`
	Messages     int    `json:"messages"`
	Verified     bool   `json:"verified"`
	Cached       bool   `json:"cached"`
	TableEntries int    `json:"table_entries,omitempty"`
	ElapsedNano  int64  `json:"elapsed_nanos"`
}

func (s *Server) handleDecode(ctx context.Context, r *http.Request) (any, error) {
	start := time.Now()
	var req DecodeRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	sc, err := s.resolveSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	cached := s.useCache(req.Cache)
	cg, _, err := s.resolveGraph(req.Graph, cached, "decode")
	if err != nil {
		return nil, err
	}
	var advice local.Advice
	if req.Advice != nil {
		advice, err = parseAdvice(cg.g, req.Advice)
		if err != nil {
			return nil, err
		}
	} else {
		advice, _, err = s.encodeAdvice(sc, cg, cached, "decode")
		if err != nil {
			return nil, err
		}
	}
	advDigest := sha256hex(adviceStrings(advice)...)
	art, hit, err := s.decodeSolution(sc, cg, advice, advDigest, cached, "decode")
	if err != nil {
		return nil, err
	}
	resp := &DecodeResponse{
		Schema:       sc.Name,
		GraphDigest:  cg.digest,
		Labels:       art.sol.Node,
		Rounds:       art.stats.Rounds,
		Messages:     art.stats.Messages,
		Verified:     true,
		Cached:       hit,
		TableEntries: art.tableEntries,
		ElapsedNano:  time.Since(start).Nanoseconds(),
	}
	for _, l := range art.sol.Edge {
		if l != lcl.Unset {
			resp.EdgeLabels = art.sol.Edge
			break
		}
	}
	return resp, nil
}

// VerifyRequest is the body of POST /v1/verify: a candidate labeling to
// check against the schema's problem on the given graph.
type VerifyRequest struct {
	Schema string    `json:"schema"`
	Graph  GraphSpec `json:"graph"`
	Labels []int     `json:"labels,omitempty"`
	Edges  []int     `json:"edge_labels,omitempty"`
	Cache  *bool     `json:"cache,omitempty"`
}

// VerifyResponse is its reply; an invalid labeling is a successful
// verification request (200 with Valid false), not an error.
type VerifyResponse struct {
	Schema      string `json:"schema"`
	GraphDigest string `json:"graph_digest"`
	Problem     string `json:"problem"`
	Valid       bool   `json:"valid"`
	Violation   string `json:"violation,omitempty"`
}

func (s *Server) handleVerify(ctx context.Context, r *http.Request) (any, error) {
	var req VerifyRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	sc, err := s.resolveSchema(req.Schema)
	if err != nil {
		return nil, err
	}
	cg, _, err := s.resolveGraph(req.Graph, s.useCache(req.Cache), "verify")
	if err != nil {
		return nil, err
	}
	g := cg.g
	if req.Labels != nil && len(req.Labels) != g.N() {
		return nil, errf(http.StatusBadRequest, "bad_solution",
			"%d node labels for %d nodes", len(req.Labels), g.N())
	}
	if req.Edges != nil && len(req.Edges) != g.M() {
		return nil, errf(http.StatusBadRequest, "bad_solution",
			"%d edge labels for %d edges", len(req.Edges), g.M())
	}
	sol := lcl.NewSolution(g)
	copy(sol.Node, req.Labels)
	copy(sol.Edge, req.Edges)
	problem := sc.Problem(g)
	resp := &VerifyResponse{
		Schema:      sc.Name,
		GraphDigest: cg.digest,
		Problem:     problem.Name(),
		Valid:       true,
	}
	if err := lcl.Verify(problem, g, sol); err != nil {
		resp.Valid = false
		resp.Violation = err.Error()
	}
	return resp, nil
}

// ExperimentRequest is the body of POST /v1/experiment.
type ExperimentRequest struct {
	ID      string `json:"id"`
	Observe bool   `json:"observe,omitempty"`
	Cache   *bool  `json:"cache,omitempty"`
}

// ExperimentResponse is its reply: the experiment's table both structured
// and rendered, plus the obs summary when the run was observed.
type ExperimentResponse struct {
	ID       string       `json:"id"`
	Title    string       `json:"title"`
	Header   []string     `json:"header"`
	Rows     [][]string   `json:"rows"`
	Notes    []string     `json:"notes,omitempty"`
	Rendered string       `json:"rendered"`
	Cached   bool         `json:"cached"`
	Summary  *obs.Summary `json:"summary,omitempty"`
}

func (s *Server) handleExperiment(ctx context.Context, r *http.Request) (any, error) {
	var req ExperimentRequest
	if err := decodeBody(r, &req); err != nil {
		return nil, err
	}
	run := func() (*ExperimentResponse, error) {
		if req.Observe {
			// Observation routes engine metrics through the process-wide
			// default collector; concurrent observed runs would interleave.
			s.expMu.Lock()
			defer s.expMu.Unlock()
		}
		res, err := harness.RunOne(req.ID, req.Observe)
		if err != nil {
			if strings.Contains(err.Error(), "unknown experiment") {
				return nil, errf(http.StatusNotFound, "unknown_experiment", "%v", err)
			}
			return nil, err
		}
		var sb strings.Builder
		res.Table.Render(&sb)
		return &ExperimentResponse{
			ID:       res.Table.ID,
			Title:    res.Table.Title,
			Header:   res.Table.Header,
			Rows:     res.Table.Rows,
			Notes:    res.Table.Notes,
			Rendered: sb.String(),
			Summary:  res.Summary,
		}, nil
	}
	// Observed runs carry machine-specific metrics and are never cached.
	if req.Observe || !s.useCache(req.Cache) {
		if !req.Observe {
			s.bypasses["experiment"].Add(1)
		}
		return run()
	}
	key := "exp:" + strings.ToUpper(req.ID)
	v, hit, err := s.cache.Do(key, func() (any, int64, error) {
		resp, err := run()
		if err != nil {
			return nil, 0, err
		}
		return resp, int64(len(resp.Rendered))*4 + 256, nil
	})
	if err != nil {
		return nil, err
	}
	resp := *v.(*ExperimentResponse) // shallow copy so Cached stays per-request
	resp.Cached = hit
	return &resp, nil
}

// FlushResponse is the reply of POST /v1/cache/flush.
type FlushResponse struct {
	Flushed    bool   `json:"flushed"`
	Generation uint64 `json:"generation"`
}

func (s *Server) handleFlush(ctx context.Context, r *http.Request) (any, error) {
	s.cache.Flush()
	return &FlushResponse{Flushed: true, Generation: s.cache.Stats().Generation}, nil
}

// HealthzResponse is the reply of GET /v1/healthz.
type HealthzResponse struct {
	Status      string `json:"status"`
	UptimeNanos int64  `json:"uptime_nanos"`
	Inflight    int64  `json:"inflight"`
}

func (s *Server) handleHealthz() any {
	return &HealthzResponse{
		Status:      "ok",
		UptimeNanos: time.Since(s.start).Nanoseconds(),
		Inflight:    s.inflight.Load(),
	}
}

// StatsResponse is the reply of GET /v1/stats: the serving layer's
// operational counters, embedded by scripts/bench.sh under the "serve" key
// of BENCH_*.json.
type StatsResponse struct {
	Role         string                          `json:"role"`
	UptimeNanos  int64                           `json:"uptime_nanos"`
	Inflight     int64                           `json:"inflight"`
	MaxInflight  int                             `json:"max_inflight"`
	Shed         uint64                          `json:"shed"`
	Bypasses     uint64                          `json:"cache_bypasses"`
	BypassesBy   map[string]uint64               `json:"cache_bypasses_by_endpoint"`
	Cache        cache.Stats                     `json:"cache"`
	CacheHitRate float64                         `json:"cache_hit_rate"`
	StoreDir     string                          `json:"store_dir,omitempty"`
	Store        *obs.StoreSnapshot              `json:"store,omitempty"`
	Engine       uint64                          `json:"engine_computes"`
	EngineNanos  int64                           `json:"engine_compute_nanos"`
	BatchItems   uint64                          `json:"batch_items"`
	Endpoints    map[string]obs.EndpointSnapshot `json:"endpoints"`
	Schemas      []string                        `json:"schemas"`
}

func (s *Server) handleStats() any {
	cs := s.cache.Stats()
	eps := make(map[string]obs.EndpointSnapshot, len(s.metrics))
	for name, m := range s.metrics {
		eps[name] = m.Snapshot()
	}
	byEndpoint := make(map[string]uint64, len(s.bypasses))
	var total uint64
	for name, c := range s.bypasses {
		n := c.Load()
		byEndpoint[name] = n
		total += n
	}
	resp := &StatsResponse{
		Role:         s.cfg.Role,
		UptimeNanos:  time.Since(s.start).Nanoseconds(),
		Inflight:     s.inflight.Load(),
		MaxInflight:  s.cfg.MaxInflight,
		Shed:         s.shed.Load(),
		Bypasses:     total,
		BypassesBy:   byEndpoint,
		Cache:        cs,
		CacheHitRate: cs.HitRate(),
		StoreDir:     s.cfg.StoreDir,
		Engine:       s.engineComputes.Load(),
		EngineNanos:  s.engineComputeNanos.Load(),
		BatchItems:   s.batchItems.Load(),
		Endpoints:    eps,
		Schemas:      schemaNames(s.schemas),
	}
	if s.storeMetrics != nil {
		snap := s.storeMetrics.Snapshot()
		resp.Store = &snap
	}
	return resp
}
