package server

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
)

// TestAdviceKeySeedComponent pins the cache-key contract of DESIGN.md
// decision 12: a seed-dependent schema's advice key carries the request's
// graph seed, a det-mode schema's key does not — so det artifacts are
// shared across every seed variant of a spec.
func TestAdviceKeySeedComponent(t *testing.T) {
	schemas := buildSchemas()
	cgA := &cachedGraph{digest: "d1", seed: 7}
	cgB := &cachedGraph{digest: "d1", seed: 8}

	seeded := schemas["orientlll"]
	if !seeded.SeedDependent || seeded.EncodeSeeded == nil {
		t.Fatalf("orientlll must be seed-dependent with EncodeSeeded set")
	}
	kA, kB := adviceKey(seeded, cgA), adviceKey(seeded, cgB)
	if kA == kB {
		t.Errorf("seeded advice keys collide across seeds: %q", kA)
	}
	if !strings.HasSuffix(kA, ":seed=7") {
		t.Errorf("seeded key %q does not carry its seed component", kA)
	}

	det := schemas["orientdet"]
	if det.SeedDependent || det.EncodeSeeded != nil {
		t.Fatalf("orientdet must be seedless with plain Encode")
	}
	kA, kB = adviceKey(det, cgA), adviceKey(det, cgB)
	if kA != kB {
		t.Errorf("det advice keys differ across seeds: %q vs %q", kA, kB)
	}
	if strings.Contains(kA, "seed=") {
		t.Errorf("det key %q carries a seed component", kA)
	}

	// The two methods never share artifacts either: Params differ.
	if adviceKey(seeded, cgA) == adviceKey(det, cgA) {
		t.Errorf("mt and det schemas share an advice key")
	}
}

// TestDetModeWarmHitContrast measures the operational payoff of the
// seedless keys: under requests whose graph spec rotates the seed (on a
// family that ignores it — the cycle generator is seed-free, so every
// request resolves to one graph digest), the det-mode schema serves every
// request after the first from cache, while the seeded schema recomputes
// each one. This is the in-process form of the "detlll" bench section's
// warm-hit measurement.
func TestDetModeWarmHitContrast(t *testing.T) {
	s := newTestServer(t, Config{})

	hits := func(schema string, seeds []int64) int {
		n := 0
		for _, seed := range seeds {
			body := fmt.Sprintf(`{"schema":%q,"graph":{"family":"cycle","n":96,"seed":%d}}`, schema, seed)
			w := doReq(t, s, "POST", "/v1/encode", body)
			if w.Code != 200 {
				t.Fatalf("%s encode seed %d: %d %s", schema, seed, w.Code, w.Body.String())
			}
			var resp EncodeResponse
			if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
				t.Fatal(err)
			}
			if resp.Cached {
				n++
			}
		}
		return n
	}

	seeds := []int64{1, 2, 3, 4, 5}
	detHits := hits("orientdet", seeds)
	seededHits := hits("orientlll", seeds)
	if detHits != len(seeds)-1 {
		t.Errorf("orientdet warm hits = %d/%d, want every request after the first to hit", detHits, len(seeds))
	}
	if seededHits != 0 {
		t.Errorf("orientlll warm hits = %d/%d, want 0 (every seed is a distinct artifact)", seededHits, len(seeds))
	}
	if detHits <= seededHits {
		t.Errorf("det warm-hit count %d not above seeded %d", detHits, seededHits)
	}

	// Same seed twice is a hit even on the seeded path: the key is stable.
	if n := hits("orientlll", []int64{2, 2}); n != 2 {
		t.Errorf("orientlll repeat-seed hits = %d/2, want 2", n)
	}
}

// TestDetModeDecodeVerifies runs the full decode path of each det-mode
// schema pair and pins that both methods produce verified solutions, and
// that the det schema's advice is identical across request seeds.
func TestDetModeDecodeVerifies(t *testing.T) {
	s := newTestServer(t, Config{})
	for _, schema := range []string{"orientlll", "orientdet", "color3lll", "color3det"} {
		w := doReq(t, s, "POST", "/v1/decode",
			fmt.Sprintf(`{"schema":%q,"graph":{"family":"cycle","n":96,"seed":3}}`, schema))
		if w.Code != 200 {
			t.Fatalf("%s decode: %d %s", schema, w.Code, w.Body.String())
		}
		var resp DecodeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if !resp.Verified {
			t.Errorf("%s decode not verified", schema)
		}
	}

	advice := func(schema string, seed int64) []string {
		w := doReq(t, s, "POST", "/v1/encode",
			fmt.Sprintf(`{"schema":%q,"graph":{"family":"cycle","n":96,"seed":%d}}`, schema, seed))
		if w.Code != 200 {
			t.Fatalf("%s encode: %d %s", schema, w.Code, w.Body.String())
		}
		var resp EncodeResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		return resp.Advice
	}
	a, b := advice("orientdet", 11), advice("orientdet", 12)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("orientdet advice differs across request seeds")
	}
}
