package orient

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func TestTwoColoringMessageDecoderAgreesWithViewDecoder(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	bip, err := graph.RandomBipartiteRegular(25, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"cycle60":  graph.Cycle(60),
		"torus4x8": graph.Torus2D(4, 8),
		"grid6x7":  graph.Grid2D(6, 7),
		"bip3reg":  bip,
		"path40":   graph.Path(40),
	}
	for _, cover := range []int{3, 7} {
		stage := TwoColoringStage{CoverRadius: cover}
		for name, g := range graphs {
			va, err := stage.EncodeVar(g, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			viewSol, _, err := stage.DecodeVar(g, va, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			msgSol, stats, err := stage.DecodeVarMessage(g, va, nil)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for v := range viewSol.Node {
				if viewSol.Node[v] != msgSol.Node[v] {
					t.Fatalf("%s cover %d: node %d: view %d, message %d",
						name, cover, v, viewSol.Node[v], msgSol.Node[v])
				}
			}
			if err := lcl.Verify(lcl.Coloring{K: 2}, g, msgSol); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if stats.Rounds > cover+2 {
				t.Errorf("%s: message decoder used %d rounds, want <= %d", name, stats.Rounds, cover+2)
			}
		}
	}
}

func TestTwoColoringMessageDecoderNoMarkers(t *testing.T) {
	g := graph.Cycle(30)
	stage := TwoColoringStage{CoverRadius: 3}
	// Empty advice: every node must report the missing marker.
	if _, _, err := stage.DecodeVarMessage(g, nil, nil); err == nil {
		t.Error("decode succeeded without any marker")
	}
}
