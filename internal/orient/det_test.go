package orient

import (
	"fmt"
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// TestEncodeVarDetValidAndSeedFree pins the deterministic shift placement
// on the sparse families where the symmetric LLL condition holds: the
// conditional-expectations advice is identical across runs, identical to
// the decomposition-guided variant, and decodes to a verified balanced
// orientation — while the seeded Moser–Tardos placement on the same graphs
// stays valid but seed-dependent in general.
func TestEncodeVarDetValidAndSeedFree(t *testing.T) {
	s := Schema{P: DefaultParams()}
	families := map[string]*graph.Graph{
		"cycle96":  graph.Cycle(96),
		"path90":   graph.Path(90),
		"cyclepow": graph.CyclePowers(64, 2),
	}
	for name, g := range families {
		t.Run(name, func(t *testing.T) {
			graph.AssignPermutedIDs(g, rand.New(rand.NewSource(12)))
			det, err := s.EncodeVarDet(g)
			if err != nil {
				t.Fatal(err)
			}
			again, err := s.EncodeVarDet(g)
			if err != nil {
				t.Fatal(err)
			}
			fp := fmt.Sprint(det.Dense(g.N()))
			if fmt.Sprint(again.Dense(g.N())) != fp {
				t.Fatal("EncodeVarDet is not deterministic")
			}
			dec, err := s.EncodeVarDecomposed(g)
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(dec.Dense(g.N())) != fp {
				t.Fatal("decomposed placement differs from conditional expectations")
			}
			sol, _, err := s.DecodeVarOn("ball", g, det, local.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
				t.Fatal(err)
			}
			mt, err := s.EncodeVarLLL(g, rand.New(rand.NewSource(9)), 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			mtSol, _, err := s.DecodeVarOn("ball", g, mt, local.RunConfig{})
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.BalancedOrientation{}, g, mtSol); err != nil {
				t.Fatal(err)
			}
		})
	}
}
