package orient

import (
	"fmt"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// This file gives TwoColoringStage a second decoder built on the
// message engine (local.Run, the sharded round scheduler) instead of the
// view engine:
// the marked ruling-set nodes flood (color, distance) waves and everyone
// else adopts the parity of the first wave to arrive. It demonstrates that
// schema decoders are ordinary distributed protocols — the equivalence test
// in twocolor_msg_test.go checks the two decoders agree on every node.

// colorWave is the message flooded from marked nodes: the originating
// marker's color, its ID (for deterministic tie-breaks), and the hop
// distance travelled so far.
type colorWave struct {
	color    int // 1 or 2 at the marker
	markerID int64
	dist     int
}

// better reports whether wave a should win over wave b at a node.
func (a colorWave) better(b colorWave) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.markerID < b.markerID
}

// twoColorMachine is the per-node state machine.
type twoColorMachine struct {
	info    local.NodeInfo
	radius  int
	best    *colorWave
	lastTx  *colorWave // last wave we broadcast, to avoid re-sending
	decided int
}

type twoColorProtocol struct{ radius int }

var _ local.Protocol = (*twoColorProtocol)(nil)

func (p *twoColorProtocol) NewMachine(info local.NodeInfo) local.Machine {
	m := &twoColorMachine{info: info, radius: p.radius}
	if info.Advice.Len() == 1 {
		m.best = &colorWave{color: 1 + info.Advice.Bit(0), markerID: info.ID, dist: 0}
	}
	return m
}

func (m *twoColorMachine) Round(round int, inbox []local.Message) ([]local.Message, bool) {
	for _, msg := range inbox {
		if msg == nil {
			continue
		}
		w := msg.(colorWave)
		w.dist++
		if m.best == nil || w.better(*m.best) {
			cp := w
			m.best = &cp
		}
	}
	// After radius+1 rounds every node within the covering radius has heard
	// its nearest marker's wave (one round of slack for the send/receive
	// pipeline).
	if round > m.radius+1 {
		if m.best == nil {
			m.decided = 0 // no marker in range; reported as an error below
			return nil, true
		}
		// Bipartite parity: flip the marker's color once per odd distance.
		m.decided = 1 + (m.best.color-1+m.best.dist)%2
		return nil, true
	}
	if m.best != nil && (m.lastTx == nil || m.best.better(*m.lastTx)) {
		cp := *m.best
		m.lastTx = &cp
		out := make([]local.Message, m.info.Degree)
		for i := range out {
			out[i] = cp
		}
		return out, false
	}
	return make([]local.Message, m.info.Degree), false
}

func (m *twoColorMachine) Output() any { return m.decided }

// DecodeVarMessage decodes the stage's advice with the message engine. It
// must produce exactly the same coloring as DecodeVar.
func (t TwoColoringStage) DecodeVarMessage(g *graph.Graph, va core.VarAdvice, _ []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	if t.CoverRadius < 1 {
		return nil, local.Stats{}, fmt.Errorf("orient: two-coloring cover radius must be >= 1, got %d", t.CoverRadius)
	}
	outputs, stats, err := local.Run(g, &twoColorProtocol{radius: t.CoverRadius}, va.Dense(g.N()))
	if err != nil {
		return nil, stats, err
	}
	sol := lcl.NewSolution(g)
	for v, out := range outputs {
		c := out.(int)
		if c == 0 {
			return nil, stats, fmt.Errorf("orient: node %d heard no marker within %d rounds", v, t.CoverRadius)
		}
		sol.Node[v] = c
	}
	return sol, stats, nil
}
