package orient

import (
	"os"
	"testing"

	"localadvice/internal/core"
	"localadvice/internal/lcl"

	"localadvice/internal/graph"
)

// TestOrientationAsUniformOneBit is the Corollary 5.2 end-to-end statement:
// the balanced-orientation schema — whose natural advice sits on ADJACENT
// marked pairs — becomes a uniform one-bit-per-node schema through the
// grouped Lemma 2 conversion, and the composed decoder still produces a
// valid orientation.
func TestOrientationAsUniformOneBit(t *testing.T) {
	// n is a multiple of the spacing so the last marked pair does not wrap
	// around close to the first.
	g := graph.Cycle(1040)
	s := Schema{P: Params{MarkSpacing: 260, MarkWindow: 15}}
	codec := core.GroupedOneBitCodec{Radius: 120, GroupRadius: 2}
	schema := core.AsGroupedOneBitSchema(s, codec)

	sol, advice, stats, err := core.RunAndVerify(schema, g)
	if err != nil {
		t.Fatal(err)
	}
	if kind, beta := core.Classify(advice); kind != core.UniformFixedLength || beta != 1 {
		t.Fatalf("advice %v/%d, want uniform 1-bit", kind, beta)
	}
	ratio, err := core.Sparsity(advice)
	if err != nil {
		t.Fatal(err)
	}
	if ratio >= 0.5 {
		t.Errorf("ones ratio %.3f suspiciously dense", ratio)
	}
	if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
		t.Fatal(err)
	}
	if stats.Rounds <= codec.Radius {
		t.Errorf("rounds %d should include both codec and schema decoding", stats.Rounds)
	}
}

// TestSplittingPipelineAsUniformOneBit pushes the full Lemma 1 + Lemma 2
// composition: the three-stage splitting pipeline (2-coloring, orientation,
// combine) merged into tagged variable-length advice and then converted to
// uniform one-bit advice. The tagged payloads make the path encodings an
// order of magnitude longer, so the instance must be large; skipped in
// -short runs.
func TestSplittingPipelineAsUniformOneBit(t *testing.T) {
	if testing.Short() || os.Getenv("LOCALADVICE_HEAVY") == "" {
		t.Skip("heavy integration test; set LOCALADVICE_HEAVY=1 to run")
	}
	g := graph.Cycle(6000)
	p := NewSplittingPipeline(1500, Params{MarkSpacing: 1500, MarkWindow: 20})
	codec := core.GroupedOneBitCodec{Radius: 700, GroupRadius: 2}
	schema := core.AsGroupedOneBitSchema(p, codec)
	sol, advice, _, err := core.RunAndVerify(schema, g)
	if err != nil {
		t.Fatal(err)
	}
	if kind, beta := core.Classify(advice); kind != core.UniformFixedLength || beta != 1 {
		t.Fatalf("advice %v/%d, want uniform 1-bit", kind, beta)
	}
	if err := lcl.Verify(lcl.Splitting{}, g, sol); err != nil {
		t.Fatal(err)
	}
}
