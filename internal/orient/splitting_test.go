package orient

import (
	"math/rand"
	"testing"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func bipartiteEvenGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(33))
	bip4, err := graph.RandomBipartiteRegular(20, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	bip2, err := graph.RandomBipartiteRegular(30, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"cycle40":  graph.Cycle(40),
		"torus4x6": graph.Torus2D(4, 6),
		"bip4reg":  bip4,
		"bip2reg":  bip2,
	}
}

func TestTwoColoringStage(t *testing.T) {
	for _, cover := range []int{2, 5, 10} {
		stage := TwoColoringStage{CoverRadius: cover}
		for name, g := range bipartiteEvenGraphs(t) {
			va, err := stage.EncodeVar(g, nil)
			if err != nil {
				t.Fatalf("%s cover %d: %v", name, cover, err)
			}
			sol, stats, err := stage.DecodeVar(g, va, nil)
			if err != nil {
				t.Fatalf("%s cover %d: %v", name, cover, err)
			}
			if err := lcl.Verify(lcl.Coloring{K: 2}, g, sol); err != nil {
				t.Errorf("%s cover %d: %v", name, cover, err)
			}
			if stats.Rounds != cover {
				t.Errorf("%s: rounds %d, want %d", name, stats.Rounds, cover)
			}
		}
	}
}

func TestTwoColoringStageSparsityImproves(t *testing.T) {
	g := graph.Cycle(200)
	prev := -1
	for _, cover := range []int{2, 8, 20} {
		va, err := TwoColoringStage{CoverRadius: cover}.EncodeVar(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if prev != -1 && len(va) >= prev {
			t.Errorf("cover %d: %d holders, want fewer than %d", cover, len(va), prev)
		}
		prev = len(va)
	}
}

func TestTwoColoringStageRejects(t *testing.T) {
	if _, err := (TwoColoringStage{CoverRadius: 3}).EncodeVar(graph.Cycle(5), nil); err == nil {
		t.Error("odd cycle accepted")
	}
	if _, err := (TwoColoringStage{CoverRadius: 0}).EncodeVar(graph.Cycle(4), nil); err == nil {
		t.Error("zero cover radius accepted")
	}
}

func TestSplittingPipeline(t *testing.T) {
	p := NewSplittingPipeline(6, DefaultParams())
	for name, g := range bipartiteEvenGraphs(t) {
		va, err := p.EncodeVar(g, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		sol, stats, err := p.DecodeVar(g, va, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := lcl.Verify(lcl.Splitting{}, g, sol); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if stats.Rounds <= 0 {
			t.Errorf("%s: no rounds accounted", name)
		}
	}
}

func TestSplittingStageRequiresOracles(t *testing.T) {
	g := graph.Cycle(4)
	if _, _, err := (SplittingStage{}).DecodeVar(g, core.VarAdvice{}, nil); err == nil {
		t.Error("missing oracles accepted")
	}
}

func TestSplittingHalvesDegrees(t *testing.T) {
	// Each color class of a splitting must induce a d/2-regular subgraph on
	// a d-regular graph.
	g := graph.Torus2D(6, 6)
	p := NewSplittingPipeline(5, DefaultParams())
	va, err := p.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := p.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		red := 0
		for _, e := range g.IncidentEdges(v) {
			if sol.Edge[e] == 1 {
				red++
			}
		}
		if red != g.Degree(v)/2 {
			t.Fatalf("node %d has %d red edges of %d", v, red, g.Degree(v))
		}
	}
}
