package orient

import (
	"math/rand"
	"testing"

	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func testGraphs(t *testing.T) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(21))
	reg8, err := graph.RandomRegular(60, 4, rng)
	if err != nil {
		t.Fatal(err)
	}
	odd, err := graph.RandomRegular(40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	gnp := graph.RandomGNP(50, 0.1, rng)
	graph.AssignPermutedIDs(gnp, rng)
	return map[string]*graph.Graph{
		"cycle50":  graph.Cycle(50),
		"cycle5":   graph.Cycle(5),
		"torus6x6": graph.Torus2D(6, 6),
		"grid5x8":  graph.Grid2D(5, 8),
		"4regular": reg8,
		"3regular": odd,
		"gnp":      gnp,
		"star7":    graph.Star(7),
		"path9":    graph.Path(9),
		"evendeg":  graph.RandomEvenDegree(40, 6, rng),
		"cpower":   graph.CyclePowers(30, 3),
		"twoComps": graph.DisjointUnion(graph.Cycle(30), graph.Torus2D(4, 4)),
	}
}

func TestDecomposeInvariants(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			dec := Decompose(g)
			if err := dec.Check(g); err != nil {
				t.Fatal(err)
			}
			// Open-trail ends are odd-degree nodes; closed trails have none.
			for _, tr := range dec.Trails {
				if tr.Closed {
					continue
				}
				for _, end := range []int{tr.Nodes[0], tr.Nodes[len(tr.Nodes)-1]} {
					if g.Degree(end)%2 == 0 {
						t.Errorf("open trail ends at even-degree node %d", end)
					}
				}
			}
		})
	}
}

func TestDecomposeCycleSingleTrail(t *testing.T) {
	dec := Decompose(graph.Cycle(12))
	if len(dec.Trails) != 1 || !dec.Trails[0].Closed || dec.Trails[0].Len() != 12 {
		t.Errorf("cycle decomposition: %d trails", len(dec.Trails))
	}
}

func TestDecomposePathSingleOpenTrail(t *testing.T) {
	dec := Decompose(graph.Path(7))
	if len(dec.Trails) != 1 || dec.Trails[0].Closed || dec.Trails[0].Len() != 6 {
		t.Errorf("path decomposition wrong: %+v", dec.Trails)
	}
}

func TestBalancedBaseline(t *testing.T) {
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			sol := Balanced(g)
			if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
				t.Fatal(err)
			}
			// Even-degree nodes must be exactly balanced.
			for v := 0; v < g.N(); v++ {
				if g.Degree(v)%2 == 0 && lcl.InDegree(g, v, sol) != lcl.OutDegree(g, v, sol) {
					t.Errorf("even node %d not exactly balanced", v)
				}
			}
		})
	}
}

func TestCanonicalDirectionRotationInvariant(t *testing.T) {
	g := graph.Cycle(9)
	dec := Decompose(g)
	tr := dec.Trails[0]
	dirs1 := make([]int, g.M())
	OrientTrail(g, &tr, CanonicalDirection(g, &tr), dirs1)

	// Rotate the trail representation and re-derive: physical orientation
	// must be identical.
	k := 4
	rot := Trail{Closed: true}
	L := tr.Len()
	for i := 0; i <= L; i++ {
		rot.Nodes = append(rot.Nodes, tr.Nodes[(i+k)%L])
	}
	for i := 0; i < L; i++ {
		rot.Edges = append(rot.Edges, tr.Edges[(i+k)%L])
	}
	dirs2 := make([]int, g.M())
	OrientTrail(g, &rot, CanonicalDirection(g, &rot), dirs2)
	for e := range dirs1 {
		if dirs1[e] != dirs2[e] {
			t.Fatalf("edge %d oriented differently under rotation", e)
		}
	}
}

func TestWalkMatchesTrail(t *testing.T) {
	g := graph.Torus2D(5, 5)
	dec := Decompose(g)
	tr := &dec.Trails[0]
	nodes, edges, wrapped := Walk(g, tr.Nodes[0], tr.Edges[0], tr.Len())
	if !wrapped != !tr.Closed {
		t.Fatalf("wrap mismatch: %v vs %v", wrapped, tr.Closed)
	}
	if len(edges) != tr.Len() {
		t.Fatalf("walk length %d, want %d", len(edges), tr.Len())
	}
	for i := range edges {
		if edges[i] != tr.Edges[i] || nodes[i] != tr.Nodes[i] {
			t.Fatalf("walk diverges at step %d", i)
		}
	}
}

func TestWalkTruncates(t *testing.T) {
	g := graph.Cycle(20)
	nodes, edges, wrapped := Walk(g, 0, g.IncidentEdges(0)[0], 5)
	if wrapped || len(edges) != 5 || len(nodes) != 6 {
		t.Errorf("truncated walk wrong: %d edges, wrapped %v", len(edges), wrapped)
	}
}

func TestSchemaRoundtrip(t *testing.T) {
	s := Schema{P: DefaultParams()}
	for name, g := range testGraphs(t) {
		t.Run(name, func(t *testing.T) {
			va, err := s.EncodeVar(g, nil)
			if err != nil {
				t.Fatal(err)
			}
			sol, stats, err := s.DecodeVar(g, va, nil)
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
				t.Fatal(err)
			}
			if stats.Rounds != s.P.DecodeRadius() {
				t.Errorf("rounds = %d, want %d", stats.Rounds, s.P.DecodeRadius())
			}
		})
	}
}

func TestSchemaMatchesCanonicalOrientation(t *testing.T) {
	// The decoded orientation must be exactly the canonical baseline (the
	// schema encodes that specific solution).
	g := graph.Cycle(100)
	s := Schema{P: DefaultParams()}
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := s.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := Balanced(g)
	for e := range sol.Edge {
		if sol.Edge[e] != want.Edge[e] {
			t.Fatalf("edge %d: decoded %d, canonical %d", e, sol.Edge[e], want.Edge[e])
		}
	}
}

func TestSchemaAdviceShape(t *testing.T) {
	g := graph.Cycle(200)
	s := Schema{P: DefaultParams()}
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	outOnes := 0
	for _, payload := range va {
		if payload.Len() != 2 || payload.Bit(0) != 1 {
			t.Fatalf("unexpected payload %v", payload)
		}
		outOnes += payload.Bit(1)
	}
	if len(va) == 0 || len(va)%2 != 0 || outOnes != len(va)/2 {
		t.Errorf("marked pairs malformed: %d holders, %d out-bits", len(va), outOnes)
	}
	// Composability shape: at most a constant number of holders per
	// alpha-ball with alpha = half the spacing.
	if err := core.CheckComposable(g, va, s.P.MarkSpacing/2, 4, 2); err != nil {
		t.Errorf("composability: %v", err)
	}
}

func TestSchemaNoAdviceOnShortTrails(t *testing.T) {
	s := Schema{P: DefaultParams()}
	g := graph.Cycle(10) // shorter than the short bound
	va, err := s.EncodeVar(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(va) != 0 {
		t.Errorf("short cycle got advice: %v", va)
	}
	sol, _, err := s.DecodeVar(g, va, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
		t.Error(err)
	}
}

func TestSchemaInvalidParams(t *testing.T) {
	bad := Schema{P: Params{MarkSpacing: 0, MarkWindow: 3}}
	if _, err := bad.EncodeVar(graph.Cycle(5), nil); err == nil {
		t.Error("zero spacing accepted")
	}
	bad2 := Schema{P: Params{MarkSpacing: 5, MarkWindow: 0}}
	if _, err := bad2.EncodeVar(graph.Cycle(5), nil); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSchemaSparsitySweep(t *testing.T) {
	// Larger spacing must not increase the number of bit holders.
	g := graph.Cycle(400)
	prev := -1
	for _, spacing := range []int{8, 16, 32} {
		s := Schema{P: Params{MarkSpacing: spacing, MarkWindow: 8}}
		va, err := s.EncodeVar(g, nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := s.DecodeVar(g, va, nil); err != nil {
			t.Fatal(err)
		}
		holders := len(va)
		if prev != -1 && holders > prev {
			t.Errorf("spacing %d has %d holders, more than previous %d", spacing, holders, prev)
		}
		prev = holders
	}
}
