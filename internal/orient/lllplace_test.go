package orient

import (
	"math/rand"
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

func TestEncodeVarLLLMatchesGreedyValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := Schema{P: DefaultParams()}
	// The LLL shift argument needs the symmetric condition e·p·(d+1) <= 1,
	// which holds in the sparse regime the paper targets; the dense small
	// graphs of testGraphs (cpower, evendeg, 4regular) violate it and are
	// covered by the greedy placement instead.
	sparse := map[string]*graph.Graph{
		"cycle50":  graph.Cycle(50),
		"cycle200": graph.Cycle(200),
		"grid5x8":  graph.Grid2D(5, 8),
		"torus6x6": graph.Torus2D(6, 6),
		"path60":   graph.Path(60),
		"twoComps": graph.DisjointUnion(graph.Cycle(64), graph.Torus2D(4, 4)),
	}
	for name, g := range sparse {
		t.Run(name, func(t *testing.T) {
			sol, va, err := s.EncodeDecodeLLL(g, rng)
			if err != nil {
				t.Fatal(err)
			}
			if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
				t.Fatal(err)
			}
			// Payload shapes match the greedy layout.
			for _, p := range va {
				if p.Len() != 2 || p.Bit(0) != 1 {
					t.Fatalf("bad payload %v", p)
				}
			}
		})
	}
}

func TestEncodeVarLLLFailsWhenOversubscribed(t *testing.T) {
	// On a dense small graph the bounded-shift LLL instance is
	// unsatisfiable and the placement must report it rather than loop.
	rng := rand.New(rand.NewSource(63))
	s := Schema{P: DefaultParams()}
	if _, err := s.EncodeVarLLL(graph.CyclePowers(30, 3), rng, 20000); err == nil {
		t.Skip("placement happened to succeed; nothing to assert")
	}
}

func TestEncodeVarLLLNoLongTrails(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	s := Schema{P: DefaultParams()}
	va, err := s.EncodeVarLLL(graph.Cycle(10), rng, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(va) != 0 {
		t.Errorf("short cycle got LLL advice: %v", va)
	}
}
