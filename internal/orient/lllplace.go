package orient

import (
	"fmt"
	"math/rand"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/lll"
	"localadvice/internal/obs"
)

// This file implements the paper's original mark-placement strategy for the
// Section 5 schema: plan marks at evenly spaced trail positions and then
// SHIFT each mark by a bounded random amount so that no two marks conflict,
// exactly the Lovász-Local-Lemma argument of Lemma 5.1. The shift system is
// expressed once as an lll.Instance (variable i = shift of plan i; arity-1
// "clamp" events for shifts pushed past the trail end, arity-2 conflict
// events for interacting plan pairs) and solved three ways: constructively
// randomized with Moser–Tardos (EncodeVarLLL), derandomized by conditional
// expectations (EncodeVarDet), and derandomized ball-by-ball over the event
// dependency graph's low-diameter decomposition (EncodeVarDecomposed). The
// greedy placement in schema.go remains the deterministic engineering
// default; the three LLL paths are the faithful-to-the-proof alternatives,
// compared in tests and in the E3/E12 ablations.

// shiftPlan is one planned marked pair: a base trail position plus the
// trail's canonical direction bit.
type shiftPlan struct {
	trail  int
	base   int
	dirBit int
}

// shiftSystem is the compiled Lemma 5.1 shift-placement constraint system.
type shiftSystem struct {
	schema Schema
	dec    *Decomposition
	plans  []shiftPlan
	inst   *lll.Instance
}

// pairAt resolves plan i under shift to its marked pair of trail nodes.
func (sys *shiftSystem) pairAt(i, shift int) (a, b int, ok bool) {
	pl := sys.plans[i]
	t := &sys.dec.Trails[pl.trail]
	p := pl.base + shift
	if p+1 >= len(t.Nodes) {
		return 0, 0, false
	}
	a, b = t.Nodes[p], t.Nodes[p+1]
	return a, b, a != b
}

// buildShiftSystem plans the marks and compiles the shift constraints into
// an lll.Instance. A nil system (no error) means the graph has no long
// trails and needs no marks at all.
func (s Schema) buildShiftSystem(g *graph.Graph) (*shiftSystem, error) {
	if err := s.P.validate(); err != nil {
		return nil, err
	}
	dec := Decompose(g)

	// Plan: for each long trail, base positions every MarkSpacing steps;
	// each mark may shift forward by up to MarkWindow-1 steps.
	var plans []shiftPlan
	for id := range dec.Trails {
		t := &dec.Trails[id]
		if t.Len() <= s.P.shortBound() {
			continue
		}
		dirBit := 0
		if CanonicalDirection(g, t) {
			dirBit = 1
		}
		for base := 0; base+1 < t.Len(); base += s.P.MarkSpacing {
			plans = append(plans, shiftPlan{trail: id, base: base, dirBit: dirBit})
		}
	}
	if len(plans) == 0 {
		return nil, nil
	}
	sys := &shiftSystem{schema: s, dec: dec, plans: plans}

	// Conflicts: two pairs sharing a node, or a node of one pair adjacent
	// to a node of the other (the role-ambiguity rule of schema.go).
	// Precompute which plan pairs can interact at all: their reachable
	// node sets within the shift window must come within distance 1.
	window := s.P.MarkWindow
	reach := make([]map[int]bool, len(plans))
	for i := range plans {
		reach[i] = map[int]bool{}
		for sft := 0; sft < window; sft++ {
			if a, bnode, ok := sys.pairAt(i, sft); ok {
				reach[i][a] = true
				reach[i][bnode] = true
				for _, u := range g.Neighbors(a) {
					reach[i][u] = true
				}
				for _, u := range g.Neighbors(bnode) {
					reach[i][u] = true
				}
			}
		}
	}
	type pairEvent struct{ i, j int }
	var pairs []pairEvent
	for i := range plans {
		for j := i + 1; j < len(plans); j++ {
			touch := false
			for v := range reach[j] {
				if reach[i][v] {
					touch = true
					break
				}
			}
			if touch {
				pairs = append(pairs, pairEvent{i, j})
			}
		}
	}

	conflict := func(i, si, j, sj int) bool {
		ai, bi, oki := sys.pairAt(i, si)
		aj, bj, okj := sys.pairAt(j, sj)
		if !oki || !okj {
			return true // a clamped-out plan is itself a violation
		}
		nodes := map[int]bool{ai: true, bi: true}
		if nodes[aj] || nodes[bj] {
			return true
		}
		for _, v := range []int{aj, bj} {
			for _, u := range g.Neighbors(v) {
				if nodes[u] {
					return true
				}
			}
		}
		return false
	}

	// Events 0..P-1 are the per-plan clamp events (bad iff the shift pushes
	// the pair past the trail end); events P.. are the pairwise conflicts.
	numPlans := len(plans)
	sys.inst = &lll.Instance{
		NumVars:    numPlans,
		DomainSize: func(int) int { return window },
		NumEvents:  numPlans + len(pairs),
		Vars: func(e int) []int {
			if e < numPlans {
				return []int{e}
			}
			ev := pairs[e-numPlans]
			return []int{ev.i, ev.j}
		},
		Bad: func(e int, a []int) bool {
			if e < numPlans {
				_, _, ok := sys.pairAt(e, a[e])
				return !ok
			}
			ev := pairs[e-numPlans]
			return conflict(ev.i, a[ev.i], ev.j, a[ev.j])
		},
	}
	return sys, nil
}

// materialize turns a solved shift assignment into the advice layout of
// Schema.EncodeVar and verifies coverage per trail.
func (sys *shiftSystem) materialize(assignment []int) (core.VarAdvice, error) {
	va := make(core.VarAdvice)
	perTrail := map[int][]int{}
	for i, pl := range sys.plans {
		a, bnode, ok := sys.pairAt(i, assignment[i])
		if !ok {
			return nil, fmt.Errorf("orient: LLL produced a clamped plan")
		}
		va[a] = bitstr.New(1, pl.dirBit)
		va[bnode] = bitstr.New(1, 1-pl.dirBit)
		perTrail[pl.trail] = append(perTrail[pl.trail], pl.base+assignment[i])
	}
	for id, positions := range perTrail {
		sort.Ints(positions)
		if err := sys.schema.checkCoverage(&sys.dec.Trails[id], positions); err != nil {
			return nil, fmt.Errorf("orient: LLL placement, trail %d: %w", id, err)
		}
	}
	return va, nil
}

// EncodeVarLLL computes the same advice layout as Schema.EncodeVar but
// places the marked pairs with Moser–Tardos shifting instead of greedy
// first-fit. rng drives the resampling; maxResamplings caps the work (a
// blown cap surfaces as an error wrapping lll.ErrResamplingCap).
func (s Schema) EncodeVarLLL(g *graph.Graph, rng *rand.Rand, maxResamplings int) (core.VarAdvice, error) {
	return s.EncodeVarLLLObserved(g, rng, maxResamplings, obs.Default())
}

// EncodeVarLLLObserved is EncodeVarLLL reporting solver metrics
// (lll.resamplings, lll.evaluations, …) into an explicit collector.
func (s Schema) EncodeVarLLLObserved(g *graph.Graph, rng *rand.Rand, maxResamplings int, m *obs.Collector) (core.VarAdvice, error) {
	sys, err := s.buildShiftSystem(g)
	if err != nil {
		return nil, err
	}
	if sys == nil {
		return core.VarAdvice{}, nil
	}
	res, err := lll.SolveObserved(sys.inst, rng, maxResamplings, m)
	if err != nil {
		return nil, fmt.Errorf("orient: LLL placement: %w", err)
	}
	return sys.materialize(res.Assignment)
}

// EncodeVarDet is the derandomized EncodeVarLLL: the shifts are fixed by
// the method of conditional expectations (lll.SolveDeterministic), so the
// advice is a pure function of the graph — no RNG, identical across seeds.
func (s Schema) EncodeVarDet(g *graph.Graph) (core.VarAdvice, error) {
	return s.EncodeVarDetObserved(g, obs.Default())
}

// EncodeVarDetObserved is EncodeVarDet with an explicit metrics collector.
func (s Schema) EncodeVarDetObserved(g *graph.Graph, m *obs.Collector) (core.VarAdvice, error) {
	sys, err := s.buildShiftSystem(g)
	if err != nil {
		return nil, err
	}
	if sys == nil {
		return core.VarAdvice{}, nil
	}
	res, err := lll.SolveDeterministicObserved(sys.inst, m)
	if err != nil {
		return nil, fmt.Errorf("orient: deterministic LLL placement: %w", err)
	}
	return sys.materialize(res.Assignment)
}

// EncodeVarDecomposed is EncodeVarDet running ball-by-ball over the shift
// system's event dependency graph (lll.SolveDecomposed) — the
// network-decomposition-guided derandomization. Also RNG-free.
func (s Schema) EncodeVarDecomposed(g *graph.Graph) (core.VarAdvice, error) {
	return s.EncodeVarDecomposedObserved(g, obs.Default())
}

// EncodeVarDecomposedObserved is EncodeVarDecomposed with an explicit
// metrics collector.
func (s Schema) EncodeVarDecomposedObserved(g *graph.Graph, m *obs.Collector) (core.VarAdvice, error) {
	sys, err := s.buildShiftSystem(g)
	if err != nil {
		return nil, err
	}
	if sys == nil {
		return core.VarAdvice{}, nil
	}
	res, err := lll.SolveDecomposedObserved(sys.inst, m)
	if err != nil {
		return nil, fmt.Errorf("orient: decomposed LLL placement: %w", err)
	}
	return sys.materialize(res.Assignment)
}

// EncodeDecodeLLL is a convenience wrapper: LLL placement, then the standard
// decoder, then verification — used by the E3 ablation and tests.
func (s Schema) EncodeDecodeLLL(g *graph.Graph, rng *rand.Rand) (*lcl.Solution, core.VarAdvice, error) {
	va, err := s.EncodeVarLLL(g, rng, 1<<20)
	if err != nil {
		return nil, nil, err
	}
	sol, _, err := s.DecodeVar(g, va, nil)
	if err != nil {
		return nil, va, err
	}
	if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
		return nil, va, err
	}
	return sol, va, nil
}
