package orient

import (
	"fmt"
	"math/rand"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

// This file implements the paper's original mark-placement strategy for the
// Section 5 schema: plan marks at evenly spaced trail positions and then
// SHIFT each mark by a bounded random amount so that no two marks conflict,
// exactly the Lovász-Local-Lemma argument of Lemma 5.1 — made constructive
// with Moser–Tardos resampling (internal/lll). The greedy placement in
// schema.go is the deterministic engineering default; EncodeVarLLL is the
// faithful-to-the-proof alternative, and the two are compared in tests and
// in the E3 ablation.

// EncodeVarLLL computes the same advice layout as Schema.EncodeVar but
// places the marked pairs with Moser–Tardos shifting instead of greedy
// first-fit. rng drives the resampling; maxResamplings caps the work.
func (s Schema) EncodeVarLLL(g *graph.Graph, rng *rand.Rand, maxResamplings int) (core.VarAdvice, error) {
	if err := s.P.validate(); err != nil {
		return nil, err
	}
	dec := Decompose(g)

	// Plan: for each long trail, base positions every MarkSpacing steps;
	// each mark may shift forward by up to MarkWindow-1 steps.
	type plan struct {
		trail  int
		base   int
		dirBit int
	}
	var plans []plan
	for id := range dec.Trails {
		t := &dec.Trails[id]
		if t.Len() <= s.P.shortBound() {
			continue
		}
		dirBit := 0
		if CanonicalDirection(g, t) {
			dirBit = 1
		}
		for base := 0; base+1 < t.Len(); base += s.P.MarkSpacing {
			plans = append(plans, plan{trail: id, base: base, dirBit: dirBit})
		}
	}
	if len(plans) == 0 {
		return core.VarAdvice{}, nil
	}

	// Variable i = shift of plan i, in [0, window). The pair occupies
	// trail positions (p, p+1) with p = base + shift, clamped into range.
	window := s.P.MarkWindow
	pairAt := func(i, shift int) (a, b int, ok bool) {
		pl := plans[i]
		t := &dec.Trails[pl.trail]
		p := pl.base + shift
		if p+1 >= len(t.Nodes) {
			return 0, 0, false
		}
		a, b = t.Nodes[p], t.Nodes[p+1]
		return a, b, a != b
	}

	// Conflicts: two pairs sharing a node, or a node of one pair adjacent
	// to a node of the other (the role-ambiguity rule of schema.go).
	// Precompute which plan pairs can interact at all: their reachable
	// node sets within the shift window must come within distance 1.
	reach := make([]map[int]bool, len(plans))
	for i := range plans {
		reach[i] = map[int]bool{}
		for sft := 0; sft < window; sft++ {
			if a, bnode, ok := pairAt(i, sft); ok {
				reach[i][a] = true
				reach[i][bnode] = true
				for _, u := range g.Neighbors(a) {
					reach[i][u] = true
				}
				for _, u := range g.Neighbors(bnode) {
					reach[i][u] = true
				}
			}
		}
	}
	var events []shiftEvent
	for i := range plans {
		for j := i + 1; j < len(plans); j++ {
			touch := false
			for v := range reach[j] {
				if reach[i][v] {
					touch = true
					break
				}
			}
			if touch {
				events = append(events, shiftEvent{i, j})
			}
		}
	}

	conflict := func(i, si, j, sj int) bool {
		ai, bi, oki := pairAt(i, si)
		aj, bj, okj := pairAt(j, sj)
		if !oki || !okj {
			return true // a clamped-out plan is itself a violation
		}
		nodes := map[int]bool{ai: true, bi: true}
		if nodes[aj] || nodes[bj] {
			return true
		}
		for _, v := range []int{aj, bj} {
			for _, u := range g.Neighbors(v) {
				if nodes[u] {
					return true
				}
			}
		}
		return false
	}

	inst := &lllInstance{
		numVars: len(plans),
		domain:  window,
		events:  events,
		bad: func(e int, a []int) bool {
			ev := events[e]
			return conflict(ev.i, a[ev.i], ev.j, a[ev.j])
		},
		vars: func(e int) []int { return []int{events[e].i, events[e].j} },
	}
	assignment, err := inst.solve(rng, maxResamplings, func(i, sft int) bool {
		_, _, ok := pairAt(i, sft)
		return !ok
	})
	if err != nil {
		return nil, fmt.Errorf("orient: LLL placement: %w", err)
	}

	// Materialize the advice and verify coverage per trail.
	va := make(core.VarAdvice)
	perTrail := map[int][]int{}
	for i, pl := range plans {
		a, bnode, ok := pairAt(i, assignment[i])
		if !ok {
			return nil, fmt.Errorf("orient: LLL produced a clamped plan")
		}
		va[a] = bitstr.New(1, pl.dirBit)
		va[bnode] = bitstr.New(1, 1-pl.dirBit)
		perTrail[pl.trail] = append(perTrail[pl.trail], pl.base+assignment[i])
	}
	for id, positions := range perTrail {
		sort.Ints(positions)
		if err := s.checkCoverage(&dec.Trails[id], positions); err != nil {
			return nil, fmt.Errorf("orient: LLL placement, trail %d: %w", id, err)
		}
	}
	return va, nil
}

// lllInstance adapts the pairwise-conflict structure to internal/lll
// without importing it here... it reimplements the tiny resampling loop so
// the per-plan clamp events (which depend on a single variable) can be
// folded in directly.
// shiftEvent is a potential conflict between two planned marks.
type shiftEvent struct{ i, j int }

type lllInstance struct {
	numVars int
	domain  int
	events  []shiftEvent
	bad     func(e int, a []int) bool
	vars    func(e int) []int
}

func (in *lllInstance) solve(rng *rand.Rand, maxResamplings int, clampBad func(i, shift int) bool) ([]int, error) {
	a := make([]int, in.numVars)
	for i := range a {
		a[i] = rng.Intn(in.domain)
	}
	varToEvents := make([][]int, in.numVars)
	for e := range in.events {
		for _, v := range in.vars(e) {
			varToEvents[v] = append(varToEvents[v], e)
		}
	}
	violated := map[int]bool{}
	checkAll := func() {
		for e := range in.events {
			if in.bad(e, a) {
				violated[e] = true
			} else {
				delete(violated, e)
			}
		}
	}
	// Clamp events are resolved eagerly: resample the single variable.
	fixClamps := func() error {
		for i := 0; i < in.numVars; i++ {
			tries := 0
			for clampBad(i, a[i]) {
				a[i] = rng.Intn(in.domain)
				tries++
				if tries > 10*in.domain {
					return fmt.Errorf("variable %d has no feasible shift", i)
				}
			}
		}
		return nil
	}
	if err := fixClamps(); err != nil {
		return nil, err
	}
	checkAll()
	resamplings := 0
	for len(violated) > 0 {
		if resamplings >= maxResamplings {
			return nil, fmt.Errorf("exceeded %d resamplings with %d conflicts left", maxResamplings, len(violated))
		}
		var e int
		for k := range violated {
			e = k
			break
		}
		for _, v := range in.vars(e) {
			a[v] = rng.Intn(in.domain)
			tries := 0
			for clampBad(v, a[v]) {
				a[v] = rng.Intn(in.domain)
				tries++
				if tries > 10*in.domain {
					return nil, fmt.Errorf("variable %d has no feasible shift", v)
				}
			}
		}
		resamplings++
		for _, v := range in.vars(e) {
			for _, f := range varToEvents[v] {
				if in.bad(f, a) {
					violated[f] = true
				} else {
					delete(violated, f)
				}
			}
		}
	}
	return a, nil
}

// EncodeDecodeLLL is a convenience wrapper: LLL placement, then the standard
// decoder, then verification — used by the E3 ablation and tests.
func (s Schema) EncodeDecodeLLL(g *graph.Graph, rng *rand.Rand) (*lcl.Solution, core.VarAdvice, error) {
	va, err := s.EncodeVarLLL(g, rng, 1<<20)
	if err != nil {
		return nil, nil, err
	}
	sol, _, err := s.DecodeVar(g, va, nil)
	if err != nil {
		return nil, va, err
	}
	if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
		return nil, va, err
	}
	return sol, va, nil
}
