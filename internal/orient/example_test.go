package orient_test

import (
	"fmt"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/orient"
)

// The Section 5 schema end to end: sparse marked pairs encode the trail
// directions; the LOCAL decoder recovers an almost-balanced orientation in
// a number of rounds independent of n.
func ExampleSchema() {
	g := graph.Cycle(300)
	s := orient.Schema{P: orient.DefaultParams()}

	advice, err := s.EncodeVar(g, nil)
	if err != nil {
		panic(err)
	}
	sol, stats, err := s.DecodeVar(g, advice, nil)
	if err != nil {
		panic(err)
	}
	fmt.Println("holders:", len(advice), "decode rounds:", stats.Rounds)
	fmt.Println("balanced:", lcl.Verify(lcl.BalancedOrientation{}, g, sol) == nil)
	// Output:
	// holders: 50 decode rounds: 27
	// balanced: true
}

// Decompose splits any graph into edge-disjoint trails — the virtual
// degree-2 graph G′ of the paper.
func ExampleDecompose() {
	g := graph.Torus2D(4, 4) // 4-regular: every node on two trails
	dec := orient.Decompose(g)
	total := 0
	for _, t := range dec.Trails {
		total += t.Len()
	}
	fmt.Println("trails cover", total, "of", g.M(), "edges")
	// Output:
	// trails cover 32 of 32 edges
}
