package orient

import (
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

// FuzzDecodeVarArbitraryAdvice feeds the orientation decoder advice strings
// it never promised to handle: arbitrary placements, arbitrary lengths,
// arbitrary bits. The decoder may reject them or decode something, but it
// must never panic — that is the error contract the fault-injection layer
// relies on.
func FuzzDecodeVarArbitraryAdvice(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{255, 255, 0, 128, 7})
	f.Add([]byte{10, 0b1101, 11, 0b1101, 30, 0b01, 31, 0b10})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := graph.Cycle(48)
		s := Schema{P: DefaultParams()}
		// Two bytes per entry: a node index and a packed (length, bits)
		// descriptor giving strings of 0 to 3 bits.
		va := make(core.VarAdvice)
		for i := 0; i+1 < len(data); i += 2 {
			v := int(data[i]) % g.N()
			length := int(data[i+1]) % 4
			bits := make([]int, length)
			for j := range bits {
				bits[j] = int(data[i+1]>>(2+j)) & 1
			}
			va[v] = bitstr.New(bits...)
		}
		sol, _, err := s.DecodeVar(g, va, nil)
		if err == nil && sol == nil {
			t.Fatal("decoder returned neither a solution nor an error")
		}
	})
}

// FuzzEncodeDecodeRoundTrip checks decode(encode(G)) on cycles and paths of
// fuzz-chosen sizes: the honest round trip must always yield a verified
// almost-balanced orientation.
func FuzzEncodeDecodeRoundTrip(f *testing.F) {
	f.Add(uint8(0), false)
	f.Add(uint8(97), true)
	f.Add(uint8(200), false)
	f.Fuzz(func(t *testing.T, size uint8, usePath bool) {
		n := 3 + int(size)
		var g *graph.Graph
		if usePath {
			g = graph.Path(n)
		} else {
			g = graph.Cycle(n)
		}
		s := Schema{P: DefaultParams()}
		va, err := s.EncodeVar(g, nil)
		if err != nil {
			t.Fatalf("encode failed on n=%d usePath=%v: %v", n, usePath, err)
		}
		sol, _, err := s.DecodeVar(g, va, nil)
		if err != nil {
			t.Fatalf("decode failed on honest advice, n=%d usePath=%v: %v", n, usePath, err)
		}
		if err := lcl.Verify(lcl.BalancedOrientation{}, g, sol); err != nil {
			t.Fatalf("round trip produced an invalid orientation, n=%d usePath=%v: %v", n, usePath, err)
		}
	})
}
