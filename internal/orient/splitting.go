package orient

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// This file implements the splitting extension of Section 5: on bipartite
// graphs with all degrees even, a red/blue edge coloring with equally many
// red and blue edges at every node is obtained by composing
//
//	Πv — a 2-coloring of the nodes (trivially encodable, made sparse by
//	     marking only a ruling set and recovering the rest by parity),
//	Πo — a balanced orientation (the Schema of this package), and
//	Πe — the trivial combination step: color red the edges oriented out of
//	     black nodes and blue the edges oriented out of white nodes.
//
// The three stages compose with core.Pipeline exactly as the paper's
// running example composes them with Lemma 1.

// TwoColoringStage encodes a proper 2-coloring of a bipartite graph: a
// (CoverRadius+1, CoverRadius)-ruling set is marked, each marked node
// holding one bit with its side of the bipartition; every other node
// recovers its color from the parity of its distance to the nearest marked
// node (ties broken toward the smallest ID).
type TwoColoringStage struct {
	// CoverRadius is the covering radius of the marked ruling set (the
	// schema's sparsity knob) and the decoding radius.
	CoverRadius int
}

var _ core.VarSchema = TwoColoringStage{}

// Name implements core.VarSchema.
func (TwoColoringStage) Name() string { return "two-coloring" }

// Problem implements core.VarSchema.
func (TwoColoringStage) Problem() lcl.Problem { return lcl.Coloring{K: 2} }

// EncodeVar implements core.VarSchema.
func (t TwoColoringStage) EncodeVar(g *graph.Graph, _ []*lcl.Solution) (core.VarAdvice, error) {
	if t.CoverRadius < 1 {
		return nil, fmt.Errorf("orient: two-coloring cover radius must be >= 1, got %d", t.CoverRadius)
	}
	side, ok := g.Bipartition()
	if !ok {
		return nil, fmt.Errorf("orient: graph is not bipartite")
	}
	set, err := rulingSetGreedy(g, t.CoverRadius)
	if err != nil {
		return nil, err
	}
	va := make(core.VarAdvice, len(set))
	for _, v := range set {
		va[v] = bitstr.New(side[v])
	}
	return va, nil
}

// rulingSetGreedy returns a set at pairwise distance >= cover+1 with
// covering radius cover, greedily by ID.
func rulingSetGreedy(g *graph.Graph, cover int) ([]int, error) {
	order := make([]int, g.N())
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.ID(order[a]) < g.ID(order[b]) })
	covered := make([]bool, g.N())
	var set []int
	for _, v := range order {
		if covered[v] {
			continue
		}
		set = append(set, v)
		for _, u := range g.Ball(v, cover) {
			covered[u] = true
		}
	}
	return set, nil
}

// DecodeVar implements core.VarSchema.
func (t TwoColoringStage) DecodeVar(g *graph.Graph, va core.VarAdvice, _ []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	advice := va.Dense(g.N())
	outputs, stats := local.RunBall(g, advice, t.CoverRadius, func(view *local.View) any {
		// Nearest marked node, ties toward smaller ID.
		best := -1
		for i := 0; i < view.G.N(); i++ {
			if view.Advice[i].Len() != 1 {
				continue
			}
			if best == -1 || view.Dist[i] < view.Dist[best] ||
				view.Dist[i] == view.Dist[best] && view.G.ID(i) < view.G.ID(best) {
				best = i
			}
		}
		if best == -1 {
			return fmt.Errorf("orient: no marked node within distance %d", t.CoverRadius)
		}
		// In a bipartite graph all paths between two nodes have the same
		// parity, so any shortest path gives the right color.
		return 1 + (view.Advice[best].Bit(0)+view.Dist[best])%2
	})
	sol := lcl.NewSolution(g)
	for v, out := range outputs {
		if err, isErr := out.(error); isErr {
			return nil, stats, fmt.Errorf("orient: node %d: %w", v, err)
		}
		sol.Node[v] = out.(int)
	}
	return sol, stats, nil
}

// SplittingStage is Πe: given a 2-coloring (oracle 0) and a balanced
// orientation (oracle 1), color red (1) the edges oriented out of color-1
// nodes and blue (2) the edges oriented out of color-2 nodes. It needs no
// advice and no communication beyond one round.
type SplittingStage struct{}

var _ core.VarSchema = SplittingStage{}

// Name implements core.VarSchema.
func (SplittingStage) Name() string { return "splitting-combine" }

// Problem implements core.VarSchema.
func (SplittingStage) Problem() lcl.Problem { return lcl.Splitting{} }

// EncodeVar implements core.VarSchema.
func (SplittingStage) EncodeVar(*graph.Graph, []*lcl.Solution) (core.VarAdvice, error) {
	return core.VarAdvice{}, nil
}

// DecodeVar implements core.VarSchema.
func (SplittingStage) DecodeVar(g *graph.Graph, _ core.VarAdvice, oracles []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	if len(oracles) < 2 {
		return nil, local.Stats{}, fmt.Errorf("orient: splitting needs 2-coloring and orientation oracles, got %d", len(oracles))
	}
	colors, orientation := oracles[len(oracles)-2], oracles[len(oracles)-1]
	sol := lcl.NewSolution(g)
	for e := 0; e < g.M(); e++ {
		ed := g.Edge(e)
		tail := ed.U
		if orientation.Edge[e] == lcl.TowardU {
			tail = ed.V
		}
		sol.Edge[e] = colors.Node[tail] // red iff the tail is color 1
	}
	return sol, local.Stats{Rounds: 1}, nil
}

// NewSplittingPipeline assembles the composed splitting schema for bipartite
// even-degree graphs: 2-coloring, then balanced orientation, then the
// combine step (Corollary 5.6 via Lemma 1).
func NewSplittingPipeline(coverRadius int, orientParams Params) *core.Pipeline {
	return &core.Pipeline{
		PipelineName: "splitting",
		Stages: []core.VarSchema{
			TwoColoringStage{CoverRadius: coverRadius},
			Schema{P: orientParams},
			SplittingStage{},
		},
	}
}
