package orient

import (
	"fmt"
	"sort"

	"localadvice/internal/bitstr"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// Params tunes the balanced-orientation advice schema of Lemma 5.1 / its
// all-degrees extension (Corollary 5.3).
type Params struct {
	// MarkSpacing is the target gap (in trail steps) between consecutive
	// marked pairs on a long trail; larger spacing means sparser advice but
	// a larger decoding radius. This is the schema's α-style knob.
	MarkSpacing int
	// MarkWindow is how much slack past the target position the decoder's
	// walk budget reserves for marks the encoder had to slide to keep pairs
	// unambiguous.
	MarkWindow int
}

// DefaultParams returns parameters that work on all laptop-scale graphs
// used in the experiments.
func DefaultParams() Params {
	return Params{MarkSpacing: 12, MarkWindow: 12}
}

// walkBudget is how many trail steps the decoder explores in each direction:
// far enough to cross a full spacing-plus-window gap.
func (p Params) walkBudget() int { return p.MarkSpacing + p.MarkWindow + 1 }

// shortBound is the trail length up to which no advice is used (the r of
// the paper: short cycles are oriented by the ID rule).
func (p Params) shortBound() int { return p.walkBudget() }

// DecodeRadius is the LOCAL radius of the decoder.
func (p Params) DecodeRadius() int { return p.walkBudget() + 2 }

func (p Params) validate() error {
	if p.MarkSpacing < 1 || p.MarkWindow < 1 {
		return fmt.Errorf("orient: spacing/window must be positive, got %+v", p)
	}
	return nil
}

// Schema is the balanced-orientation advice schema as a composable
// variable-length schema stage, following the marked-pair construction of
// Section 5 (2+1 bits on a pair of adjacent trail nodes). We use a
// symmetric refinement of the paper's layout: both nodes of a marked pair
// hold two bits [1, out], where out = 1 iff the pair's trail edge is
// oriented away from that node. Exactly one node of each pair has out = 1,
// which gives the decoder a built-in consistency check, and the fixed
// two-bit shape keeps downstream encodings (e.g. the decompression codec)
// self-delimiting.
type Schema struct {
	P Params
}

var _ core.VarSchema = Schema{}

// Name implements core.VarSchema.
func (Schema) Name() string { return "balanced-orientation" }

// Problem implements core.VarSchema.
func (Schema) Problem() lcl.Problem { return lcl.BalancedOrientation{} }

// EncodeVar implements core.VarSchema.
func (s Schema) EncodeVar(g *graph.Graph, _ []*lcl.Solution) (core.VarAdvice, error) {
	if err := s.P.validate(); err != nil {
		return nil, err
	}
	dec := Decompose(g)
	va := make(core.VarAdvice)
	// A placement is unambiguous iff every G-adjacent pair of marked nodes
	// is a genuine marked pair, so a candidate pair (a, b) is feasible when
	// neither node is marked and no other neighbor of either is marked.
	marked := make([]bool, g.N())
	feasible := func(a, b int) bool {
		if a == b || marked[a] || marked[b] {
			return false
		}
		for _, u := range g.Neighbors(a) {
			if u != b && marked[u] {
				return false
			}
		}
		for _, u := range g.Neighbors(b) {
			if u != a && marked[u] {
				return false
			}
		}
		return true
	}

	// Process trails longest-first so that constrained placements happen
	// while the graph is still uncluttered; order must be deterministic.
	order := make([]int, len(dec.Trails))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ta, tb := &dec.Trails[order[a]], &dec.Trails[order[b]]
		if ta.Len() != tb.Len() {
			return ta.Len() > tb.Len()
		}
		return g.ID(ta.Nodes[0]) < g.ID(tb.Nodes[0])
	})

	for _, id := range order {
		t := &dec.Trails[id]
		if t.Len() <= s.P.shortBound() {
			continue // oriented by the ID rule, no advice
		}
		forward := CanonicalDirection(g, t)
		dirBit := 0
		if forward {
			dirBit = 1
		}
		pos := 0
		var pairs []int
		for pos < t.Len() {
			// Take the first feasible position at or after pos; the
			// coverage check below is the authority on whether the
			// resulting gaps stay within the decoder's walk budget.
			placed := false
			for p := pos; p+1 <= t.Len(); p++ {
				a, b := t.Nodes[p], t.Nodes[p+1]
				if !feasible(a, b) {
					continue
				}
				va[a] = bitstr.New(1, dirBit)
				va[b] = bitstr.New(1, 1-dirBit)
				marked[a], marked[b] = true, true
				pairs = append(pairs, p)
				placed = true
				pos = p + s.P.MarkSpacing
				break
			}
			if !placed {
				break
			}
		}
		if err := s.checkCoverage(t, pairs); err != nil {
			return nil, fmt.Errorf("orient: trail %d: %w", id, err)
		}
	}
	return va, nil
}

// checkCoverage verifies that every trail position is within the decoder's
// walk budget of a marked pair (or, for open trails, sees both trail ends).
func (s Schema) checkCoverage(t *Trail, pairs []int) error {
	w := s.P.walkBudget()
	L := t.Len()
	for q := 0; q < L; q++ {
		ok := false
		for _, p := range pairs {
			d := p - q
			if d < 0 {
				d = -d
			}
			if t.Closed && L-d < d {
				d = L - d
			}
			if d <= w-2 {
				ok = true
				break
			}
		}
		if !ok && !t.Closed && q <= w-2 && L-q <= w-2 {
			ok = true // both ends visible: ID rule applies
		}
		if !ok {
			return fmt.Errorf("no marked pair within %d steps of trail position %d; increase MarkWindow or decrease MarkSpacing", w-2, q)
		}
	}
	return nil
}

// edgeDir is a node's local claim about one incident edge.
type edgeDir struct {
	neighborID int64
	out        bool
}

// DecodeVar implements core.VarSchema: every node orients its incident
// edges from its radius-DecodeRadius view, and the per-node claims are
// assembled (and cross-checked) into an orientation.
func (s Schema) DecodeVar(g *graph.Graph, va core.VarAdvice, _ []*lcl.Solution) (*lcl.Solution, local.Stats, error) {
	if err := s.P.validate(); err != nil {
		return nil, local.Stats{}, err
	}
	advice := va.Dense(g.N())
	outputs, stats := local.RunBall(g, advice, s.P.DecodeRadius(), s.viewDecide)
	return s.assemble(g, outputs, stats)
}

// DecodeVarOn is DecodeVar running on a named engine (local.EngineNames):
// the same per-node decide, dispatched through local.RunDecider, so the
// engine-equivalence and seed-independence walls can pin the decoded
// orientation bit-identical across all five engines and worker counts.
func (s Schema) DecodeVarOn(engine string, g *graph.Graph, va core.VarAdvice, cfg local.RunConfig) (*lcl.Solution, local.Stats, error) {
	if err := s.P.validate(); err != nil {
		return nil, local.Stats{}, err
	}
	advice := va.Dense(g.N())
	outputs, stats, err := local.RunDecider(engine, g, advice, s.P.DecodeRadius(), s.viewDecide, cfg)
	if err != nil {
		return nil, stats, err
	}
	return s.assemble(g, outputs, stats)
}

// viewDecide adapts decodeNode to the engines' decide signature: errors
// become the node's output value, inspected during assembly.
func (s Schema) viewDecide(view *local.View) any {
	dirs, err := s.decodeNode(view)
	if err != nil {
		return err
	}
	return dirs
}

// assemble cross-checks the per-node edge claims into an orientation.
func (s Schema) assemble(g *graph.Graph, outputs []any, stats local.Stats) (*lcl.Solution, local.Stats, error) {
	sol := lcl.NewSolution(g)
	for v, out := range outputs {
		if err, isErr := out.(error); isErr {
			return nil, stats, fmt.Errorf("orient: node %d: %w", v, err)
		}
		for _, d := range out.([]edgeDir) {
			w := g.NodeByID(d.neighborID)
			if w == -1 {
				return nil, stats, fmt.Errorf("orient: node %d claims edge to unknown ID %d", v, d.neighborID)
			}
			e := g.EdgeIndex(v, w)
			dir := lcl.TowardU
			if (g.Edge(e).U == v) == d.out {
				dir = lcl.TowardV
			}
			if sol.Edge[e] != lcl.Unset && sol.Edge[e] != dir {
				return nil, stats, fmt.Errorf("orient: endpoints of edge %d disagree", e)
			}
			sol.Edge[e] = dir
		}
	}
	return sol, stats, nil
}

// decodeNode orients every edge incident to the view's center.
func (s Schema) decodeNode(view *local.View) ([]edgeDir, error) {
	vg := view.G
	c := view.Center
	dirs := make([]edgeDir, 0, vg.Degree(c))
	for _, e := range vg.IncidentEdges(c) {
		out, err := s.decodeEdge(view, e)
		if err != nil {
			return nil, err
		}
		dirs = append(dirs, edgeDir{neighborID: vg.ID(vg.Other(e, c)), out: out})
	}
	return dirs, nil
}

// decodeEdge decides whether the center's edge e points away from the
// center.
func (s Schema) decodeEdge(view *local.View, e int) (bool, error) {
	vg := view.G
	c := view.Center
	w := s.P.walkBudget()

	fNodes, fEdges, wrapped := Walk(vg, c, e, w)
	var bNodes, bEdges []int
	backEdge := partnerAt(vg, c, e)
	atStart := backEdge == -1
	if !wrapped && !atStart {
		bNodes, bEdges, _ = Walk(vg, c, backEdge, w)
	}

	// Combined trail segment: positions run backward-walk-reversed, then
	// center, then forward walk. Edge e sits between the center and the
	// next forward node.
	nodes := make([]int, 0, len(bNodes)+len(fNodes))
	edges := make([]int, 0, len(bEdges)+len(fEdges))
	for i := len(bNodes) - 1; i >= 1; i-- {
		nodes = append(nodes, bNodes[i])
	}
	for i := len(bEdges) - 1; i >= 0; i-- {
		edges = append(edges, bEdges[i])
	}
	centerPos := len(nodes)
	nodes = append(nodes, fNodes...)
	edges = append(edges, fEdges...)
	ePos := centerPos // edges[centerPos] == e

	backAtEnd := !wrapped && (atStart || partnerEnds(vg, bNodes, bEdges))
	forwardAtEnd := !wrapped && partnerEnds(vg, fNodes, fEdges)

	if wrapped || backAtEnd && forwardAtEnd {
		// The whole trail is visible: apply the ID rule.
		t := Trail{Nodes: nodes, Edges: edges, Closed: wrapped}
		if wrapped {
			// The forward walk alone wraps; use it directly so the node
			// sequence has the closed form Nodes[0] == Nodes[last].
			t = Trail{Nodes: fNodes, Edges: fEdges, Closed: true}
			ePos = 0
		}
		forward := CanonicalDirection(vg, &t)
		return forward == (t.Nodes[ePos] == c), nil
	}

	// Long trail: find a marked pair among consecutive segment nodes.
	for i := 0; i+1 < len(nodes); i++ {
		a, b := nodes[i], nodes[i+1]
		if view.Advice[a].Len() != 2 || view.Advice[b].Len() != 2 ||
			view.Advice[a].Bit(0) != 1 || view.Advice[b].Bit(0) != 1 {
			continue
		}
		outA, outB := view.Advice[a].Bit(1), view.Advice[b].Bit(1)
		if outA == outB {
			return false, fmt.Errorf("orient: marked pair with inconsistent out bits")
		}
		// The pair's trail edge is oriented away from the node whose out
		// bit is 1; a precedes b in segment order, so the trail flows
		// segment-forward iff outA == 1.
		pairSegmentForward := outA == 1
		// Edge e is traversed segment-forward from nodes[ePos] to
		// nodes[ePos+1]; it points out of the center iff the trail is
		// oriented segment-forward and the center is nodes[ePos], or the
		// trail is oriented segment-backward and the center is nodes[ePos+1].
		return pairSegmentForward == (nodes[ePos] == c), nil
	}
	return false, fmt.Errorf("orient: no marked pair within %d trail steps of the center (trail longer than short bound)", w)
}

// partnerEnds reports whether the last node of a walk is a trail end (its
// arriving edge has no partner there).
func partnerEnds(g *graph.Graph, nodes, edges []int) bool {
	if len(edges) == 0 {
		return false
	}
	last := nodes[len(nodes)-1]
	return partnerAt(g, last, edges[len(edges)-1]) == -1
}
