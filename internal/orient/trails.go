// Package orient implements Section 5 of the paper: balanced and
// almost-balanced orientations with advice, the splitting problem, and the
// trail decomposition both are built on.
//
// The construction mirrors the paper's virtual graph G′: every node pairs up
// its incident edges two by two (in the fixed, ID-determined order), which
// decomposes the edge set into trails — closed trails (the cycles of G′) and
// open trails ending at odd-degree nodes. Orienting every trail consistently
// yields an orientation with |indeg − outdeg| ≤ 1 at every node, and = 0 at
// even-degree nodes.
//
// Short trails are oriented by a deterministic ID rule with no advice; long
// trails carry marked pairs of adjacent nodes whose advice bits encode the
// trail direction, exactly as in Lemma 5.1 and its extension to all degrees.
package orient

import (
	"fmt"
	"sort"

	"localadvice/internal/graph"
	"localadvice/internal/lcl"
)

// sortedIncident returns the incident edges of v sorted by the neighbor's
// ID — the "arbitrary fixed order" of the paper, made canonical so that
// every node (and every view) computes the same pairing.
func sortedIncident(g *graph.Graph, v int) []int {
	inc := append([]int(nil), g.IncidentEdges(v)...)
	sort.Slice(inc, func(a, b int) bool {
		return g.ID(g.Other(inc[a], v)) < g.ID(g.Other(inc[b], v))
	})
	return inc
}

// partnerAt returns the edge paired with e at node v, or -1 when e is the
// unpaired leftover edge of an odd-degree node. Edges 2i and 2i+1 of the
// sorted incident order are partners.
func partnerAt(g *graph.Graph, v, e int) int {
	inc := sortedIncident(g, v)
	for i, f := range inc {
		if f != e {
			continue
		}
		j := i ^ 1
		if j >= len(inc) {
			return -1 // odd degree, last edge unpaired
		}
		return inc[j]
	}
	return -1
}

// Trail is one trail of the decomposition: Nodes[i] and Nodes[i+1] are the
// endpoints of Edges[i]. For a closed trail, Nodes[0] == Nodes[len-1] and
// the first/last edges are partners at that node.
type Trail struct {
	Nodes  []int
	Edges  []int
	Closed bool
}

// Len returns the number of edges of the trail.
func (t *Trail) Len() int { return len(t.Edges) }

// Decomposition is the trail decomposition of a graph.
type Decomposition struct {
	Trails []Trail
	// EdgeTrail maps every edge index to the trail that contains it.
	EdgeTrail []int
	// EdgePos maps every edge index to its position within its trail.
	EdgePos []int
}

// Decompose computes the trail decomposition of g induced by the canonical
// pairing. Every edge belongs to exactly one trail.
func Decompose(g *graph.Graph) *Decomposition {
	d := &Decomposition{
		EdgeTrail: make([]int, g.M()),
		EdgePos:   make([]int, g.M()),
	}
	for i := range d.EdgeTrail {
		d.EdgeTrail[i] = -1
	}
	for e := 0; e < g.M(); e++ {
		if d.EdgeTrail[e] != -1 {
			continue
		}
		t := traceTrail(g, e)
		id := len(d.Trails)
		for pos, te := range t.Edges {
			d.EdgeTrail[te] = id
			d.EdgePos[te] = pos
		}
		d.Trails = append(d.Trails, t)
	}
	return d
}

// traceTrail walks the trail containing edge e. It first walks "forward"
// from e's endpoint U through e; if the walk returns to the start the trail
// is closed, otherwise it extends "backward" from U as well.
func traceTrail(g *graph.Graph, e int) Trail {
	start := g.Edge(e).U
	nodes := []int{start}
	edges := []int{}
	cur, curEdge := start, e
	for {
		if len(edges) > g.M() {
			// Each dart can appear at most once in an orbit, so a trail is
			// never longer than M; exceeding it means the pairing invariant
			// was violated.
			panic(fmt.Sprintf("orient: trail through edge %d exceeds %d edges", e, g.M()))
		}
		next := g.Other(curEdge, cur)
		nodes = append(nodes, next)
		edges = append(edges, curEdge)
		p := partnerAt(g, next, curEdge)
		if p == -1 {
			break // open end
		}
		if p == e && next == start {
			// Back at the start through the partner pairing: closed.
			return Trail{Nodes: nodes, Edges: edges, Closed: true}
		}
		cur, curEdge = next, p
	}
	// Open so far; extend backward from start.
	p := partnerAt(g, start, e)
	for p != -1 {
		prev := g.Other(p, start)
		nodes = append([]int{prev}, nodes...)
		edges = append([]int{p}, edges...)
		q := partnerAt(g, prev, p)
		start = prev
		p = q
	}
	return Trail{Nodes: nodes, Edges: edges, Closed: false}
}

// OrientTrail writes the orientation of trail t into dirs (per-edge
// lcl.TowardV / lcl.TowardU), traversing the trail from Nodes[0] toward
// Nodes[len-1] when forward is true and in reverse otherwise.
func OrientTrail(g *graph.Graph, t *Trail, forward bool, dirs []int) {
	for i, e := range t.Edges {
		from := t.Nodes[i]
		if !forward {
			from = t.Nodes[i+1]
		}
		if g.Edge(e).U == from {
			dirs[e] = lcl.TowardV
		} else {
			dirs[e] = lcl.TowardU
		}
	}
}

// CanonicalDirection returns the deterministic no-advice direction choice
// for a trail: the direction a decoder that sees the whole trail picks (the
// paper's ID rule for short cycles, made rotation-invariant). The canonical
// edge e* of the trail is the one whose sorted endpoint-ID pair is
// lexicographically largest; the canonical direction traverses e* from its
// larger-ID endpoint to its smaller-ID endpoint. The returned bool says
// whether that is the "forward" traversal Nodes[i] -> Nodes[i+1] of this
// particular Trail value.
func CanonicalDirection(g *graph.Graph, t *Trail) bool {
	bestPos := -1
	var bestHi, bestLo int64
	for i, e := range t.Edges {
		ed := g.Edge(e)
		hi, lo := g.ID(ed.U), g.ID(ed.V)
		if hi < lo {
			hi, lo = lo, hi
		}
		if bestPos == -1 || hi > bestHi || hi == bestHi && lo > bestLo {
			bestPos, bestHi, bestLo = i, hi, lo
		}
	}
	return g.ID(t.Nodes[bestPos]) > g.ID(t.Nodes[bestPos+1])
}

// Walk follows the trail containing firstEdge, starting at startNode and
// traversing firstEdge first, for at most maxSteps edges. It returns the
// visited node sequence (beginning with startNode) aligned with the edge
// sequence, and wrapped=true if the walk returned to its starting directed
// edge (the trail is closed and fully traversed). It works on any graph —
// in particular on the subgraph of a LOCAL view, where pairings of nodes
// with complete neighborhoods agree with the host graph's.
func Walk(g *graph.Graph, startNode, firstEdge, maxSteps int) (nodes, edges []int, wrapped bool) {
	nodes = []int{startNode}
	cur, curEdge := startNode, firstEdge
	for step := 0; step < maxSteps; step++ {
		next := g.Other(curEdge, cur)
		nodes = append(nodes, next)
		edges = append(edges, curEdge)
		p := partnerAt(g, next, curEdge)
		if p == -1 {
			return nodes, edges, false
		}
		if p == firstEdge && next == startNode {
			return nodes, edges, true
		}
		cur, curEdge = next, p
	}
	return nodes, edges, false
}

// Balanced returns the exact almost-balanced orientation of g obtained by
// orienting every trail in its canonical direction — the centralized
// baseline (and the solution every advice schema encodes).
func Balanced(g *graph.Graph) *lcl.Solution {
	dec := Decompose(g)
	dirs := make([]int, g.M())
	for i := range dec.Trails {
		t := &dec.Trails[i]
		OrientTrail(g, t, CanonicalDirection(g, t), dirs)
	}
	sol, err := lcl.OrientationSolution(g, dirs)
	if err != nil {
		panic(err) // dirs has exactly M entries by construction
	}
	return sol
}

// CheckDecomposition validates the structural invariants of a decomposition
// (used by tests): every edge in exactly one trail, consecutive trail edges
// share the claimed node, closed trails wrap correctly.
func (d *Decomposition) Check(g *graph.Graph) error {
	seen := make([]bool, g.M())
	for id := range d.Trails {
		t := &d.Trails[id]
		if len(t.Nodes) != len(t.Edges)+1 {
			return fmt.Errorf("orient: trail %d has %d nodes for %d edges", id, len(t.Nodes), len(t.Edges))
		}
		for i, e := range t.Edges {
			if seen[e] {
				return fmt.Errorf("orient: edge %d in two trails", e)
			}
			seen[e] = true
			ed := g.Edge(e)
			a, b := t.Nodes[i], t.Nodes[i+1]
			if !(ed.U == a && ed.V == b || ed.U == b && ed.V == a) {
				return fmt.Errorf("orient: trail %d edge %d does not connect nodes %d,%d", id, e, a, b)
			}
			if d.EdgeTrail[e] != id || d.EdgePos[e] != i {
				return fmt.Errorf("orient: edge %d index mismatch", e)
			}
		}
		if t.Closed && t.Nodes[0] != t.Nodes[len(t.Nodes)-1] {
			return fmt.Errorf("orient: closed trail %d does not wrap", id)
		}
	}
	for e, s := range seen {
		if !s {
			return fmt.Errorf("orient: edge %d in no trail", e)
		}
	}
	return nil
}
