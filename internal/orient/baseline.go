package orient

import (
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// NoAdviceOrientation is the natural zero-advice distributed algorithm for
// balanced orientation: every node walks each of its trails to the end (or
// all the way around a cycle) and applies the deterministic ID rule. It
// always succeeds, but its round count is governed by the longest trail —
// Θ(n) on a single cycle — which is exactly the paper's point that balanced
// orientation "requires Ω(n) rounds without advice" (Section 5). The
// returned stats carry the rounds such an algorithm needs: enough for every
// node to see its whole trail.
func NoAdviceOrientation(g *graph.Graph) (*lcl.Solution, local.Stats) {
	dec := Decompose(g)
	dirs := make([]int, g.M())
	maxLen := 0
	for i := range dec.Trails {
		t := &dec.Trails[i]
		OrientTrail(g, t, CanonicalDirection(g, t), dirs)
		if t.Len() > maxLen {
			maxLen = t.Len()
		}
	}
	sol, err := lcl.OrientationSolution(g, dirs)
	if err != nil {
		panic(err) // dirs covers every edge by construction
	}
	// A node in the middle of a trail of length L must gather ⌈L/2⌉ hops in
	// both directions to see the whole trail and apply the ID rule; nodes
	// at the ends need up to L. Report the worst case over nodes: for
	// closed trails every node needs ⌈L/2⌉, for open trails up to L.
	rounds := 0
	for i := range dec.Trails {
		t := &dec.Trails[i]
		need := t.Len()
		if t.Closed {
			need = (t.Len() + 1) / 2
		}
		if need > rounds {
			rounds = need
		}
	}
	return sol, local.Stats{Rounds: rounds}
}
