package eth

import (
	"math/rand"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// parityAlgo is order-invariant: output depends on the view topology only.
func parityAlgo(view *local.View) any { return view.G.N() % 2 }

// idAlgo is NOT order-invariant: it outputs the numerical center ID.
func idAlgo(view *local.View) any { return view.G.ID(view.Center) }

// rankAlgo is order-invariant but ID-dependent: the center's ID rank within
// its view.
func rankAlgo(view *local.View) any {
	rank := 0
	for i := 0; i < view.G.N(); i++ {
		if view.G.ID(i) < view.G.ID(view.Center) {
			rank++
		}
	}
	return rank
}

func TestCheckOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	g := graph.Cycle(15)
	graph.AssignSpreadIDs(g, rng)
	adv := make(local.Advice, g.N())
	for v := range adv {
		adv[v] = bitstr.New(rng.Intn(2))
	}
	if err := CheckOrderInvariant(g, adv, 2, parityAlgo, rng, 5); err != nil {
		t.Errorf("parity algo flagged: %v", err)
	}
	if err := CheckOrderInvariant(g, adv, 2, rankAlgo, rng, 5); err != nil {
		t.Errorf("rank algo flagged: %v", err)
	}
	if err := CheckOrderInvariant(g, adv, 2, idAlgo, rng, 5); err == nil {
		t.Error("ID-dependent algo passed the order-invariance check")
	}
}

func TestCanonicalizeViewInvariantUnderRemap(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	g := graph.Grid2D(4, 5)
	graph.AssignSpreadIDs(g, rng)
	adv := make(local.Advice, g.N())
	for v := range adv {
		adv[v] = bitstr.New(rng.Intn(2))
	}
	before := make([]string, g.N())
	for v := 0; v < g.N(); v++ {
		before[v] = CanonicalizeView(local.BuildView(g, adv, v, 2))
	}
	h := g.Clone()
	graph.RemapIDsOrderPreserving(h, rng)
	for v := 0; v < g.N(); v++ {
		after := CanonicalizeView(local.BuildView(h, adv, v, 2))
		if after != before[v] {
			t.Fatalf("canonical view of node %d changed under order-preserving remap", v)
		}
	}
}

func TestCanonicalizeViewDistinguishesAdvice(t *testing.T) {
	g := graph.Cycle(8)
	a0 := make(local.Advice, g.N())
	a1 := make(local.Advice, g.N())
	for v := range a0 {
		a0[v] = bitstr.New(0)
		a1[v] = bitstr.New(0)
	}
	a1[1] = bitstr.New(1)
	v0 := CanonicalizeView(local.BuildView(g, a0, 0, 2))
	v1 := CanonicalizeView(local.BuildView(g, a1, 0, 2))
	if v0 == v1 {
		t.Error("advice change invisible in canonical view")
	}
}

func TestCompileAndRunTable(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	// Enough random-ID cycles to cover every radius-1 ID-order pattern.
	var train []*graph.Graph
	var advices []local.Advice
	for i := 0; i < 20; i++ {
		g := graph.Cycle(10 + i)
		graph.AssignSpreadIDs(g, rng)
		adv := make(local.Advice, g.N())
		for v := range adv {
			adv[v] = bitstr.New(0)
		}
		train = append(train, g)
		advices = append(advices, adv)
	}
	table, err := Compile(rankAlgo, 1, train, advices)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Entries) == 0 {
		t.Fatal("empty table")
	}
	// The table must reproduce the algorithm on a fresh cycle.
	test := graph.Cycle(37)
	graph.AssignSpreadIDs(test, rng)
	adv := make(local.Advice, test.N())
	for v := range adv {
		adv[v] = bitstr.New(0)
	}
	got, _, err := table.Run(test, adv)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := local.RunBall(test, adv, 1, rankAlgo)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("node %d: table %v, algo %v", v, got[v], want[v])
		}
	}
}

func TestCompileRejectsNonInvariantAlgo(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	// Two cycles with different spread IDs force idAlgo to collide on the
	// same canonical view with different outputs.
	g1, g2 := graph.Cycle(9), graph.Cycle(9)
	graph.AssignSpreadIDs(g1, rng)
	graph.AssignSpreadIDs(g2, rng)
	empty := func(g *graph.Graph) local.Advice {
		a := make(local.Advice, g.N())
		for v := range a {
			a[v] = bitstr.New(0)
		}
		return a
	}
	if _, err := Compile(idAlgo, 1, []*graph.Graph{g1, g2}, []local.Advice{empty(g1), empty(g2)}); err == nil {
		t.Error("non-order-invariant algorithm compiled cleanly")
	}
}

func TestTableRejectsUnknownView(t *testing.T) {
	rng := rand.New(rand.NewSource(105))
	g := graph.Cycle(10)
	adv := make(local.Advice, g.N())
	for v := range adv {
		adv[v] = bitstr.New(0)
	}
	table, err := Compile(parityAlgo, 1, []*graph.Graph{g}, []local.Advice{adv})
	if err != nil {
		t.Fatal(err)
	}
	// A star was never seen during compilation.
	star := graph.Star(4)
	graph.AssignSpreadIDs(star, rng)
	sadv := make(local.Advice, star.N())
	for v := range sadv {
		sadv[v] = bitstr.New(0)
	}
	if _, _, err := table.Run(star, sadv); err == nil {
		t.Error("unknown view answered")
	}
}

func TestAdviceSearchMIS(t *testing.T) {
	for _, n := range []int{4, 6, 8} {
		g := graph.Cycle(n)
		res, err := AdviceSearch(lcl.MIS{}, g, 1, MISDecoder)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Found {
			t.Fatalf("n=%d: no MIS advice found", n)
		}
		if err := lcl.Verify(lcl.MIS{}, g, res.Solution); err != nil {
			t.Fatal(err)
		}
		if res.Attempts > 1<<uint(n) {
			t.Errorf("n=%d: %d attempts exceed 2^n", n, res.Attempts)
		}
	}
}

func TestAdviceSearchAttemptsGrowExponentially(t *testing.T) {
	attempts := map[int]uint64{}
	for _, n := range []int{4, 6, 8, 10} {
		g := graph.Cycle(n)
		res, err := AdviceSearch(lcl.MIS{}, g, 1, MISDecoder)
		if err != nil {
			t.Fatal(err)
		}
		attempts[n] = res.Attempts
	}
	// Successive attempt counts must grow multiplicatively (the 2^n trend).
	if !(attempts[6] > attempts[4] && attempts[8] > attempts[6] && attempts[10] > attempts[8]) {
		t.Errorf("attempts not growing: %v", attempts)
	}
}

func TestAdviceSearchColoring(t *testing.T) {
	g := graph.Cycle(5)
	res, err := AdviceSearch(lcl.Coloring{K: 3}, g, 2, ColoringDecoder(3))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("no 3-coloring advice found on C5")
	}
	if err := lcl.Verify(lcl.Coloring{K: 3}, g, res.Solution); err != nil {
		t.Fatal(err)
	}
}

func TestAdviceSearchUnsolvable(t *testing.T) {
	// 2-coloring an odd cycle: the search must exhaust all 2^(2n) options.
	g := graph.Cycle(5)
	res, err := AdviceSearch(lcl.Coloring{K: 2}, g, 2, ColoringDecoder(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Found {
		t.Error("2-coloring of C5 found")
	}
	if res.Attempts != 1<<10 {
		t.Errorf("attempts = %d, want 2^10", res.Attempts)
	}
}

func TestAdviceSearchBudget(t *testing.T) {
	if _, err := AdviceSearch(lcl.MIS{}, graph.Cycle(50), 1, MISDecoder); err == nil {
		t.Error("oversized search accepted")
	}
	if _, err := AdviceSearch(lcl.MIS{}, graph.Cycle(5), 3, MISDecoder); err == nil {
		t.Error("beta=3 accepted")
	}
}
