package eth

import (
	"math/rand"
	"strings"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/local"
)

func compileRankTable(t *testing.T) *Table {
	t.Helper()
	rng := rand.New(rand.NewSource(401))
	var train []*graph.Graph
	var advices []local.Advice
	for i := 0; i < 20; i++ {
		g := graph.Cycle(10 + i)
		graph.AssignSpreadIDs(g, rng)
		adv := make(local.Advice, g.N())
		for v := range adv {
			adv[v] = bitstr.New(0)
		}
		train = append(train, g)
		advices = append(advices, adv)
	}
	table, err := Compile(rankAlgo, 1, train, advices)
	if err != nil {
		t.Fatal(err)
	}
	return table
}

func TestTableSaveLoadRoundtrip(t *testing.T) {
	table := compileRankTable(t)
	enc, dec := IntCodec()
	var sb strings.Builder
	if err := table.Save(&sb, enc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTable(strings.NewReader(sb.String()), dec)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Radius != table.Radius || len(loaded.Entries) != len(table.Entries) {
		t.Fatalf("shape mismatch: radius %d/%d, entries %d/%d",
			loaded.Radius, table.Radius, len(loaded.Entries), len(table.Entries))
	}
	for k, v := range table.Entries {
		if loaded.Entries[k] != v {
			t.Fatalf("entry %q: %v vs %v", k, loaded.Entries[k], v)
		}
	}
	// The loaded table still runs.
	rng := rand.New(rand.NewSource(402))
	g := graph.Cycle(31)
	graph.AssignSpreadIDs(g, rng)
	adv := make(local.Advice, g.N())
	for v := range adv {
		adv[v] = bitstr.New(0)
	}
	got, _, err := loaded.Run(g, adv)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := local.RunBall(g, adv, 1, rankAlgo)
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("node %d: %v vs %v", v, got[v], want[v])
		}
	}
}

func TestLoadTableErrors(t *testing.T) {
	_, dec := IntCodec()
	tests := []struct {
		name string
		in   string
	}{
		{"missing radius", "entry 1 k;\n"},
		{"unknown directive", "radius 1\nfoo\n"},
		{"malformed entry", "radius 1\nentry justone\n"},
		{"bad output", "radius 1\nentry x k;\n"},
		{"duplicate key", "radius 1\nentry 1 k;\nentry 2 k;\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := LoadTable(strings.NewReader(tt.in), dec); err == nil {
				t.Errorf("LoadTable(%q) succeeded", tt.in)
			}
		})
	}
}

func TestSaveRejectsNonIntOutputs(t *testing.T) {
	enc, _ := IntCodec()
	table := &Table{Radius: 1, Entries: map[string]any{"k;": "not-an-int"}}
	var sb strings.Builder
	if err := table.Save(&sb, enc); err == nil {
		t.Error("non-int output saved")
	}
}
