package eth

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
)

// Binary table codec: the payload format of the persistent artifact store's
// KindTable records, alongside the line-oriented text format of Save/Load.
// Where the text format must reject encoded outputs containing spaces or
// newlines (they would corrupt the line structure), every field here is
// length-prefixed, so the codec is immune to separator issues entirely —
// any byte sequence is a valid key or output encoding.
//
// Layout (all integers little-endian):
//
//	magic   "ETB1" (4 bytes)
//	radius  uint32
//	count   uint32 (number of entries)
//	per entry, in sorted key order:
//	  keyLen uint32, key bytes
//	  outLen uint32, output bytes (caller codec)
//
// Sorted key order makes SaveBinary deterministic: encode -> decode ->
// encode reproduces the bytes bit-identically, which is what lets the
// persistence round-trip property tests compare raw files.

const (
	tableMagic = "ETB1"
	// maxTableField bounds one declared key/output length, and maxTableCount
	// the entry count, so corrupt input cannot drive huge allocations.
	maxTableField = 1 << 28
	maxTableCount = 1 << 26
)

// SaveBinary writes the table in the binary format, encoding outputs with
// the caller-provided codec (outputs are opaque to this package, exactly as
// in the text Save).
func (t *Table) SaveBinary(w io.Writer, encode func(any) ([]byte, error)) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(tableMagic); err != nil {
		return err
	}
	if t.Radius < 0 {
		return fmt.Errorf("eth: negative radius %d is not serializable", t.Radius)
	}
	var buf [4]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(buf[:], v)
		_, err := bw.Write(buf[:])
		return err
	}
	if err := writeU32(uint32(t.Radius)); err != nil {
		return err
	}
	if err := writeU32(uint32(len(t.Entries))); err != nil {
		return err
	}
	keys := make([]string, 0, len(t.Entries))
	for k := range t.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out, err := encode(t.Entries[k])
		if err != nil {
			return fmt.Errorf("eth: encode entry: %w", err)
		}
		if err := writeU32(uint32(len(k))); err != nil {
			return err
		}
		if _, err := bw.WriteString(k); err != nil {
			return err
		}
		if err := writeU32(uint32(len(out))); err != nil {
			return err
		}
		if _, err := bw.Write(out); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTableBinary parses the SaveBinary format, decoding outputs with the
// caller codec. Arbitrary input bytes yield an error, never a panic.
func LoadTableBinary(r io.Reader, decode func([]byte) (any, error)) (*Table, error) {
	br := bufio.NewReader(r)
	var head [4]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, fmt.Errorf("eth: binary table header: %w", err)
	}
	if string(head[:]) != tableMagic {
		return nil, fmt.Errorf("eth: bad binary table magic %q", head[:])
	}
	readU32 := func(what string) (uint32, error) {
		var b [4]byte
		if _, err := io.ReadFull(br, b[:]); err != nil {
			return 0, fmt.Errorf("eth: binary table %s: %w", what, err)
		}
		return binary.LittleEndian.Uint32(b[:]), nil
	}
	radius, err := readU32("radius")
	if err != nil {
		return nil, err
	}
	count, err := readU32("entry count")
	if err != nil {
		return nil, err
	}
	if count > maxTableCount {
		return nil, fmt.Errorf("eth: binary table declares %d entries, bound is %d", count, maxTableCount)
	}
	t := &Table{Radius: int(radius), Entries: make(map[string]any, count)}
	readField := func(what string) ([]byte, error) {
		n, err := readU32(what + " length")
		if err != nil {
			return nil, err
		}
		if n > maxTableField {
			return nil, fmt.Errorf("eth: binary table %s of %d bytes exceeds the bound", what, n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("eth: binary table %s: %w", what, err)
		}
		return b, nil
	}
	for i := uint32(0); i < count; i++ {
		keyBytes, err := readField("key")
		if err != nil {
			return nil, err
		}
		outBytes, err := readField("output")
		if err != nil {
			return nil, err
		}
		out, err := decode(outBytes)
		if err != nil {
			return nil, fmt.Errorf("eth: entry %d: %w", i, err)
		}
		key := string(keyBytes)
		if _, dup := t.Entries[key]; dup {
			return nil, fmt.Errorf("eth: entry %d: duplicate key", i)
		}
		t.Entries[key] = out
	}
	// A trailing byte means the stream is not a table (or the count lied).
	if _, err := br.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("eth: trailing bytes after binary table")
	}
	return t, nil
}

// IntBinaryCodec is the binary output codec for int-valued tables
// (little-endian int64), the binary sibling of IntCodec.
func IntBinaryCodec() (encode func(any) ([]byte, error), decode func([]byte) (any, error)) {
	encode = func(v any) ([]byte, error) {
		i, ok := v.(int)
		if !ok {
			return nil, fmt.Errorf("eth: output %T is not int", v)
		}
		return binary.LittleEndian.AppendUint64(nil, uint64(int64(i))), nil
	}
	decode = func(b []byte) (any, error) {
		if len(b) != 8 {
			return nil, fmt.Errorf("eth: int output is %d bytes, want 8", len(b))
		}
		return int(int64(binary.LittleEndian.Uint64(b))), nil
	}
	return encode, decode
}
