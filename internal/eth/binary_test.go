package eth

import (
	"bytes"
	"strings"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/local"
)

func TestBinaryTableRoundTrip(t *testing.T) {
	table := &Table{Radius: 3, Entries: map[string]any{
		"plain":                      0,
		"key with spaces":            -1,
		"key\nwith\nnewlines":        1 << 40,
		"":                           -(1 << 40),
		string([]byte{0, 255, 7, 9}): 42,
	}}
	enc, dec := IntBinaryCodec()
	var buf bytes.Buffer
	if err := table.SaveBinary(&buf, enc); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTableBinary(bytes.NewReader(buf.Bytes()), dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Radius != table.Radius {
		t.Errorf("radius %d, want %d", got.Radius, table.Radius)
	}
	if len(got.Entries) != len(table.Entries) {
		t.Fatalf("%d entries, want %d", len(got.Entries), len(table.Entries))
	}
	for k, v := range table.Entries {
		if got.Entries[k] != v {
			t.Errorf("entry %q: %v, want %v", k, got.Entries[k], v)
		}
	}
	// Determinism: encoding the decoded table reproduces the bytes exactly.
	var again bytes.Buffer
	if err := got.SaveBinary(&again, enc); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("binary encoding is not deterministic across a round trip")
	}
}

// TestBinaryTableMatchesCompiled pins the serving path: a table compiled
// from a real graph survives the binary round trip and still decodes the
// same outputs via Run.
func TestBinaryTableMatchesCompiled(t *testing.T) {
	g := graph.Cycle(24)
	advice := make(local.Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(v % 2)
	}
	algo := func(view *local.View) any {
		if view.Advice[view.Center].Bit(0) == 1 {
			return 1
		}
		return 2
	}
	table, err := Compile(algo, 0, []*graph.Graph{g}, []local.Advice{advice})
	if err != nil {
		t.Fatal(err)
	}
	enc, dec := IntBinaryCodec()
	var buf bytes.Buffer
	if err := table.SaveBinary(&buf, enc); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadTableBinary(bytes.NewReader(buf.Bytes()), dec)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := table.Run(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := loaded.Run(g, advice)
	if err != nil {
		t.Fatal(err)
	}
	for v := range want {
		if got[v] != want[v] {
			t.Errorf("node %d: loaded table decodes %v, compiled decodes %v", v, got[v], want[v])
		}
	}
}

func TestLoadTableBinaryRejectsDamage(t *testing.T) {
	table := &Table{Radius: 1, Entries: map[string]any{"a": 1, "b": 2}}
	enc, dec := IntBinaryCodec()
	var buf bytes.Buffer
	if err := table.SaveBinary(&buf, enc); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	for n := 0; n < len(b); n++ {
		if _, err := LoadTableBinary(bytes.NewReader(b[:n]), dec); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}
	if _, err := LoadTableBinary(bytes.NewReader(append(append([]byte(nil), b...), 9)), dec); err == nil {
		t.Error("trailing byte accepted")
	}
	bad := append([]byte(nil), b...)
	copy(bad, "NOPE")
	if _, err := LoadTableBinary(bytes.NewReader(bad), dec); err == nil {
		t.Error("bad magic accepted")
	}
}

// TestCompileRejectsUnserializableOutputs pins the satellite fix: outputs
// that would corrupt the text Save format are rejected at Compile time, not
// discovered at write time — while the binary codec carries them fine.
func TestCompileRejectsUnserializableOutputs(t *testing.T) {
	g := graph.Cycle(4)
	advice := make(local.Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(0)
	}
	badAlgo := func(view *local.View) any { return "two words" }
	if _, err := Compile(badAlgo, 0, []*graph.Graph{g}, []local.Advice{advice}); err == nil {
		t.Fatal("Compile accepted a string output with a space; Save would have failed later")
	} else if !strings.Contains(err.Error(), "separators") {
		t.Fatalf("Compile error %q does not name the separator problem", err)
	}

	// The same payload as a raw table entry goes through the binary codec
	// untouched: length prefixes make separators a non-issue.
	table := &Table{Radius: 0, Entries: map[string]any{"k": "two words"}}
	enc := func(v any) ([]byte, error) { return []byte(v.(string)), nil }
	dec := func(b []byte) (any, error) { return string(b), nil }
	var buf bytes.Buffer
	if err := table.SaveBinary(&buf, enc); err != nil {
		t.Fatalf("binary codec rejected a separator-bearing output: %v", err)
	}
	got, err := LoadTableBinary(bytes.NewReader(buf.Bytes()), dec)
	if err != nil {
		t.Fatal(err)
	}
	if got.Entries["k"] != "two words" {
		t.Errorf("binary round trip mangled the output: %v", got.Entries["k"])
	}
}
