// Package eth implements the Section 8 side of the paper: the connection
// between local advice and the Exponential-Time Hypothesis.
//
// The paper's argument has two executable ingredients, both provided here.
//
// First, order invariance: every advice schema can be replaced by one whose
// decoder depends only on the relative order of the identifiers in a view,
// not their numerical values (a Ramsey argument in the paper). For
// bounded-degree graphs an order-invariant radius-T algorithm is a finite
// lookup table over canonicalized views. This package provides the
// canonicalization, an order-invariance checker (run the algorithm before
// and after an order-preserving ID remapping and compare), and a lookup-
// table compiler that materializes an order-invariant algorithm as a table.
//
// Second, the centralized brute-force advice search: if problem Π is
// solvable with β bits of advice per node by decoder 𝒜, then a centralized
// algorithm solves Π in time 2^(βn) · n · s(n) by trying every advice
// assignment and running 𝒜. AdviceSearch implements exactly that loop; the
// E2 experiment measures its exponential growth, which is the quantity ETH
// lower-bounds.
package eth

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"localadvice/internal/bitstr"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
)

// CanonicalizeView returns a canonical fingerprint of a view in which IDs
// are replaced by their ranks: two views receive the same fingerprint iff
// they are isomorphic as advice-labeled graphs with the same relative ID
// order and the same center. An order-invariant algorithm is exactly a
// function of this fingerprint.
func CanonicalizeView(view *local.View) string {
	n := view.G.N()
	// Rank nodes by ID.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return view.G.ID(order[a]) < view.G.ID(order[b]) })
	rank := make([]int, n)
	for r, v := range order {
		rank[v] = r
	}
	var b strings.Builder
	fmt.Fprintf(&b, "n=%d;center=%d;", n, rank[view.Center])
	// Edges as sorted rank pairs.
	type pair struct{ a, b int }
	pairs := make([]pair, 0, view.G.M())
	for _, e := range view.G.Edges() {
		a, bb := rank[e.U], rank[e.V]
		if a > bb {
			a, bb = bb, a
		}
		pairs = append(pairs, pair{a, bb})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].a != pairs[j].a {
			return pairs[i].a < pairs[j].a
		}
		return pairs[i].b < pairs[j].b
	})
	for _, p := range pairs {
		fmt.Fprintf(&b, "e%d,%d;", p.a, p.b)
	}
	// Per-rank metadata: advice, true degree, distance from center.
	for r := 0; r < n; r++ {
		v := order[r]
		fmt.Fprintf(&b, "v%d:%s:%d:%d;", r, view.Advice[v], view.TrueDegree[v], view.Dist[v])
	}
	return b.String()
}

// CheckOrderInvariant runs algo on g (with the given advice and radius),
// then applies `trials` random order-preserving ID remappings and reruns;
// it reports an error naming the first node whose output changed. Passing
// the check over many trials is evidence (not proof) of order invariance.
func CheckOrderInvariant(g *graph.Graph, advice local.Advice, radius int, algo local.BallAlgorithm, rng *rand.Rand, trials int) error {
	base, _ := local.RunBall(g, advice, radius, algo)
	for trial := 0; trial < trials; trial++ {
		h := g.Clone()
		graph.RemapIDsOrderPreserving(h, rng)
		out, _ := local.RunBall(h, advice, radius, algo)
		for v := range out {
			if out[v] != base[v] {
				return fmt.Errorf("eth: node %d output changed under remap trial %d: %v vs %v", v, trial, base[v], out[v])
			}
		}
	}
	return nil
}

// Table is a compiled order-invariant algorithm: canonical view fingerprint
// to output. For bounded-degree graphs and fixed radius the table is
// finite; its size is the s(n)-is-small ingredient of the Section 8 proof.
type Table struct {
	Radius  int
	Entries map[string]any
}

// Compile materializes algo as a lookup table over all views occurring in
// the given graphs. Querying a view not seen during compilation is an
// error, which keeps the table honest: it is only as general as its
// training family.
func Compile(algo local.BallAlgorithm, radius int, graphs []*graph.Graph, advices []local.Advice) (*Table, error) {
	if len(graphs) != len(advices) {
		return nil, fmt.Errorf("eth: %d graphs but %d advice assignments", len(graphs), len(advices))
	}
	t := &Table{Radius: radius, Entries: make(map[string]any)}
	for i, g := range graphs {
		for v := 0; v < g.N(); v++ {
			view := local.BuildView(g, advices[i], v, radius)
			key := CanonicalizeView(view)
			out := algo(view)
			if prev, ok := t.Entries[key]; ok && prev != out {
				return nil, fmt.Errorf("eth: algorithm is not order-invariant: key %q maps to both %v and %v", key, prev, out)
			}
			// Outputs that can never survive the text Save format are
			// rejected here, at compile time, instead of surprising the
			// persistence layer at write time. (The binary codec is immune:
			// every field there is length-prefixed.)
			if err := checkTextSerializable(out); err != nil {
				return nil, fmt.Errorf("eth: node %d of graph %d: %w", v, i, err)
			}
			t.Entries[key] = out
		}
	}
	return t, nil
}

// checkTextSerializable rejects outputs whose natural text rendering would
// corrupt the line-oriented Save format. Only string-shaped outputs can
// smuggle separators; other types are validated against their caller codec
// in Save itself.
func checkTextSerializable(out any) error {
	s, ok := out.(string)
	if !ok {
		if str, ok := out.(fmt.Stringer); ok {
			s = str.String()
		} else {
			return nil
		}
	}
	if strings.ContainsAny(s, " \n") {
		return fmt.Errorf("eth: output %q contains separators the text format cannot carry (use the binary codec)", s)
	}
	return nil
}

// Run executes the compiled table as a ball algorithm.
func (t *Table) Run(g *graph.Graph, advice local.Advice) ([]any, local.Stats, error) {
	// Missing-entry errors are returned as per-node outputs (not captured
	// state): the ball algorithm must stay a pure function of the view now
	// that RunBall fans out over workers.
	outputs, stats := local.RunBall(g, advice, t.Radius, func(view *local.View) any {
		out, ok := t.Entries[CanonicalizeView(view)]
		if !ok {
			return fmt.Errorf("eth: view %q not in table", CanonicalizeView(view))
		}
		return out
	})
	for _, out := range outputs {
		if err, isErr := out.(error); isErr {
			return nil, stats, err
		}
	}
	return outputs, stats, nil
}

// Decoder is the advice decoder the brute-force search drives: given the
// graph and a candidate advice assignment, it outputs a candidate solution.
type Decoder func(g *graph.Graph, advice local.Advice) (*lcl.Solution, error)

// SearchResult reports a brute-force advice search.
type SearchResult struct {
	Found    bool
	Advice   local.Advice
	Solution *lcl.Solution
	// Attempts is the number of advice assignments tried (up to 2^(βn)).
	Attempts uint64
}

// AdviceSearch is the centralized 2^(βn)·n·s(n) algorithm of Section 8: it
// enumerates every assignment of beta bits per node, decodes, verifies
// against the problem, and returns the first valid assignment. The attempt
// count (and its growth with n) is the experiment's measurement.
func AdviceSearch(p lcl.Problem, g *graph.Graph, beta int, decode Decoder) (SearchResult, error) {
	if beta < 1 || beta > 2 {
		return SearchResult{}, fmt.Errorf("eth: beta must be 1 or 2 for the search, got %d", beta)
	}
	totalBits := beta * g.N()
	if totalBits > 40 {
		return SearchResult{}, fmt.Errorf("eth: 2^%d assignments is beyond the search budget", totalBits)
	}
	var attempts uint64
	for mask := uint64(0); mask < 1<<uint(totalBits); mask++ {
		attempts++
		advice := make(local.Advice, g.N())
		for v := 0; v < g.N(); v++ {
			bits := mask >> uint(beta*v) & (1<<uint(beta) - 1)
			advice[v] = bitstr.FromUint(bits, beta)
		}
		sol, err := decode(g, advice)
		if err != nil {
			continue // this assignment does not decode; try the next
		}
		if lcl.Verify(p, g, sol) == nil {
			return SearchResult{Found: true, Advice: advice, Solution: sol, Attempts: attempts}, nil
		}
	}
	return SearchResult{Found: false, Attempts: attempts}, nil
}

// MISDecoder is the 0-round decoder for MIS used by experiment E2: the
// advice bit is the set-membership indicator. Some advice assignment (the
// indicator of any MIS) always decodes to a valid solution.
func MISDecoder(g *graph.Graph, advice local.Advice) (*lcl.Solution, error) {
	sol := lcl.NewSolution(g)
	for v := 0; v < g.N(); v++ {
		if advice[v].Len() != 1 {
			return nil, fmt.Errorf("eth: node %d holds %d bits", v, advice[v].Len())
		}
		sol.Node[v] = 2 - advice[v].Bit(0)
	}
	return sol, nil
}

// ColoringDecoder returns the 0-round decoder for K-coloring with
// beta = ⌈log2 K⌉ bits: the advice value is the color.
func ColoringDecoder(k int) Decoder {
	return func(g *graph.Graph, advice local.Advice) (*lcl.Solution, error) {
		sol := lcl.NewSolution(g)
		for v := 0; v < g.N(); v++ {
			c := int(advice[v].Uint()) + 1
			if c > k {
				return nil, fmt.Errorf("eth: advice value %d exceeds color count", c)
			}
			sol.Node[v] = c
		}
		return sol, nil
	}
}
