package eth

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Order-invariant algorithms on bounded-degree graphs ARE finite lookup
// tables (the s(n)-is-small ingredient of Section 8); Save and Load make
// that concrete by serializing a compiled Table to a line-oriented text
// format:
//
//	radius <T>
//	entry <output> <canonical-view-key>
//
// Outputs are serialized by the caller-provided codec, since Table values
// are opaque to this package.

// Save writes the table with outputs rendered by encode, which must produce
// strings without spaces or newlines.
func (t *Table) Save(w io.Writer, encode func(any) (string, error)) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "radius %d\n", t.Radius); err != nil {
		return err
	}
	keys := make([]string, 0, len(t.Entries))
	for k := range t.Entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out, err := encode(t.Entries[k])
		if err != nil {
			return fmt.Errorf("eth: encode entry: %w", err)
		}
		if strings.ContainsAny(out, " \n") {
			return fmt.Errorf("eth: encoded output %q contains separators", out)
		}
		if strings.ContainsAny(k, "\n") {
			return fmt.Errorf("eth: canonical key contains newline")
		}
		if _, err := fmt.Fprintf(bw, "entry %s %s\n", out, k); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadTable parses the Save format, decoding outputs with decode.
func LoadTable(r io.Reader, decode func(string) (any, error)) (*Table, error) {
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<16), 1<<24)
	t := &Table{Radius: -1, Entries: map[string]any{}}
	lineNo := 0
	for scanner.Scan() {
		lineNo++
		line := scanner.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		switch {
		case strings.HasPrefix(line, "radius "):
			if _, err := fmt.Sscanf(line, "radius %d", &t.Radius); err != nil {
				return nil, fmt.Errorf("eth: line %d: %v", lineNo, err)
			}
		case strings.HasPrefix(line, "entry "):
			rest := line[len("entry "):]
			sp := strings.IndexByte(rest, ' ')
			if sp < 0 {
				return nil, fmt.Errorf("eth: line %d: malformed entry", lineNo)
			}
			out, err := decode(rest[:sp])
			if err != nil {
				return nil, fmt.Errorf("eth: line %d: %w", lineNo, err)
			}
			key := rest[sp+1:]
			if _, dup := t.Entries[key]; dup {
				return nil, fmt.Errorf("eth: line %d: duplicate key", lineNo)
			}
			t.Entries[key] = out
		default:
			return nil, fmt.Errorf("eth: line %d: unknown directive", lineNo)
		}
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	if t.Radius < 0 {
		return nil, fmt.Errorf("eth: missing radius directive")
	}
	return t, nil
}

// IntCodec is the output codec for int-valued tables.
func IntCodec() (encode func(any) (string, error), decode func(string) (any, error)) {
	encode = func(v any) (string, error) {
		i, ok := v.(int)
		if !ok {
			return "", fmt.Errorf("eth: output %T is not int", v)
		}
		return fmt.Sprintf("%d", i), nil
	}
	decode = func(s string) (any, error) {
		var i int
		if _, err := fmt.Sscanf(s, "%d", &i); err != nil {
			return nil, err
		}
		return i, nil
	}
	return encode, decode
}
