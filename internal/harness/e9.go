package harness

import (
	"fmt"

	"localadvice/internal/coloring"
	"localadvice/internal/core"
	"localadvice/internal/fault"
	"localadvice/internal/graph"
	"localadvice/internal/growth"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/orient"
)

// FaultSchema adapts one advice schema to the fault-injection experiments:
// a clean encode, a plain (unverified) decode, and the problem the decoded
// output is verified against. The CLI's `locad fault` subcommand and
// experiment E9 both drive schemas through this adapter.
type FaultSchema struct {
	Name    string
	Problem func(g *graph.Graph) lcl.Problem
	Encode  func(g *graph.Graph) (local.Advice, error)
	Decode  func(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error)
}

// FaultSchemaByName returns the fault-experiment adapter for one of the four
// schema families: orient, color3, deltacolor, growth.
func FaultSchemaByName(name string) (FaultSchema, bool) {
	for _, s := range FaultSchemas() {
		if s.Name == name {
			return s, true
		}
	}
	return FaultSchema{}, false
}

// FaultSchemas returns the four schema adapters of the fault experiments.
func FaultSchemas() []FaultSchema {
	orientSchema := orient.Schema{P: orient.DefaultParams()}
	threeSchema := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	growthSchema := growth.Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 40, Solver: colorSolver}
	return []FaultSchema{
		{
			Name:    "orient",
			Problem: func(*graph.Graph) lcl.Problem { return lcl.BalancedOrientation{} },
			Encode: func(g *graph.Graph) (local.Advice, error) {
				va, err := orientSchema.EncodeVar(g, nil)
				if err != nil {
					return nil, err
				}
				return va.Dense(g.N()), nil
			},
			Decode: func(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
				return orientSchema.DecodeVar(g, core.SparseFromDense(advice), nil)
			},
		},
		{
			Name:    "color3",
			Problem: func(*graph.Graph) lcl.Problem { return lcl.Coloring{K: 3} },
			Encode:  threeSchema.Encode,
			Decode:  threeSchema.Decode,
		},
		{
			Name:    "deltacolor",
			Problem: func(g *graph.Graph) lcl.Problem { return lcl.Coloring{K: g.MaxDegree()} },
			Encode: func(g *graph.Graph) (local.Advice, error) {
				p := coloring.NewDeltaPipeline(g.MaxDegree(), 4)
				va, err := p.EncodeVar(g, nil)
				if err != nil {
					return nil, err
				}
				return va.Dense(g.N()), nil
			},
			Decode: func(g *graph.Graph, advice local.Advice) (*lcl.Solution, local.Stats, error) {
				p := coloring.NewDeltaPipeline(g.MaxDegree(), 4)
				return p.DecodeVar(g, core.SparseFromDense(advice), nil)
			},
		},
		{
			Name:    "growth",
			Problem: func(*graph.Graph) lcl.Problem { return lcl.Coloring{K: 3} },
			Encode:  growthSchema.Encode,
			Decode:  growthSchema.Decode,
		},
	}
}

// FaultOutcome classifies one fault-injected schema execution.
type FaultOutcome int

const (
	// OutcomeValid: the decoder produced an output and the verifier accepted
	// it (the injected damage was harmless or repaired).
	OutcomeValid FaultOutcome = iota
	// OutcomeDetectedDecode: the decoder itself reported corruption.
	OutcomeDetectedDecode
	// OutcomeDetectedVerify: the decoder produced an output that the
	// verification layer rejected — without verified decoding this run
	// would have been a silently invalid output.
	OutcomeDetectedVerify
)

func (o FaultOutcome) String() string {
	switch o {
	case OutcomeValid:
		return "valid"
	case OutcomeDetectedDecode:
		return "detected(decode)"
	case OutcomeDetectedVerify:
		return "detected(verify)"
	default:
		return fmt.Sprintf("FaultOutcome(%d)", int(o))
	}
}

// ClassifyFaultRun encodes clean advice for g, injects the plan's faults,
// decodes, and verifies. The returned outcome is one of valid /
// detected-at-decode / detected-at-verify; by construction a verified
// execution can never end in a silently invalid output. An error means the
// clean encode itself failed (an experiment bug, not a detected fault).
func ClassifyFaultRun(s FaultSchema, g *graph.Graph, plan *fault.Plan) (FaultOutcome, error) {
	advice, err := s.Encode(g)
	if err != nil {
		return 0, fmt.Errorf("%s: clean encode failed: %w", s.Name, err)
	}
	fg, fadvice, _ := plan.Apply(g, advice)
	sol, _, err := s.Decode(fg, fadvice)
	if err != nil {
		return OutcomeDetectedDecode, nil
	}
	if lcl.Verify(s.Problem(fg), fg, sol) != nil {
		return OutcomeDetectedVerify, nil
	}
	return OutcomeValid, nil
}

// faultClass is one fault class of the E9 sweep.
type faultClass struct {
	name string
	rate float64
	plan func(seed int64) *fault.Plan
}

func e9FaultClasses() []faultClass {
	classes := []faultClass{}
	for _, rate := range []float64{0.01, 0.05, 0.2} {
		rate := rate
		classes = append(classes, faultClass{
			name: "flip", rate: rate,
			plan: func(seed int64) *fault.Plan { return &fault.Plan{Seed: seed, FlipRate: rate} },
		})
	}
	classes = append(classes,
		faultClass{
			name: "truncate", rate: 0.2,
			plan: func(seed int64) *fault.Plan { return &fault.Plan{Seed: seed, TruncateRate: 0.2} },
		},
		faultClass{
			name: "reassign-ids", rate: 1,
			plan: func(seed int64) *fault.Plan { return &fault.Plan{Seed: seed, ReassignIDs: true} },
		},
	)
	return classes
}

// e9Graph returns the workload graph for one fault schema.
func e9Graph(name string) *graph.Graph {
	switch name {
	case "orient":
		return graph.Cycle(240)
	case "color3":
		return graph.Cycle(90)
	case "deltacolor":
		return graph.Torus2D(6, 8)
	default: // growth
		return graph.Cycle(600)
	}
}

// RunE9 measures the fault-injection contract: under advice corruption
// (bit flips at several rates, truncation) and adversarial ID reassignment,
// every verified schema execution ends in exactly one of {valid output,
// reported corruption} — the silent-invalid count is structurally zero,
// and the detected(verify) column counts the runs that only the
// verification layer saved from being silently wrong.
func RunE9() (*Table, error) {
	t := &Table{
		ID: "E9", Title: "Fault injection: detection vs silent invalid outputs",
		Header: []string{"schema", "fault", "rate", "runs", "valid", "det.decode", "det.verify", "silent"},
	}
	seeds := []int64{101, 202, 303}
	for _, s := range FaultSchemas() {
		g := e9Graph(s.Name)
		for _, class := range e9FaultClasses() {
			var counts [3]int
			for _, seed := range seeds {
				outcome, err := ClassifyFaultRun(s, g, class.plan(seed))
				if err != nil {
					return nil, fmt.Errorf("E9 %s/%s: %w", s.Name, class.name, err)
				}
				counts[outcome]++
			}
			t.AddRow(s.Name, class.name, f2(class.rate), d(len(seeds)),
				d(counts[OutcomeValid]), d(counts[OutcomeDetectedDecode]), d(counts[OutcomeDetectedVerify]), "0")
		}
	}
	t.Notes = append(t.Notes,
		"silent is structurally zero: verified decoding turns every invalid output into a reported corruption (det.verify counts the runs that would have been silently wrong without it)",
		"with faults disabled the engines are bit-identical to fault-free builds; the engine-equivalence property tests pin this",
		"regenerate with: go run ./cmd/locad exp E9")
	return t, nil
}
