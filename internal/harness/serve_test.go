package harness

import (
	"strings"
	"testing"
)

func TestIntSqrt(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 1}, {3, 1}, {4, 2}, {48, 6}, {49, 7}, {100, 10}} {
		if got := intSqrt(tc.in); got != tc.want {
			t.Errorf("intSqrt(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestBuildGraphFamilies(t *testing.T) {
	for _, kind := range GraphFamilies() {
		g, err := BuildGraph(kind, 40, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.N() < 30 {
			t.Errorf("%s: suspiciously small graph n=%d", kind, g.N())
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", kind, err)
		}
	}
}

func TestBuildGraphUnknownFamily(t *testing.T) {
	if _, err := BuildGraph("moebius", 10, 1); err == nil || !strings.Contains(err.Error(), "unknown graph family") {
		t.Fatalf("err = %v, want unknown graph family", err)
	}
}

func TestBuildGraphDeterministic(t *testing.T) {
	a, err := BuildGraph("regular", 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildGraph("regular", 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() != b.Digest() {
		t.Error("same (family, n, seed) produced different graphs")
	}
	c, err := BuildGraph("regular", 60, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest() == c.Digest() {
		t.Error("different seeds produced identical graphs")
	}
}

func TestRunOneUnknownID(t *testing.T) {
	if _, err := RunOne("E999", false); err == nil || !strings.Contains(err.Error(), "unknown experiment") {
		t.Fatalf("err = %v, want unknown experiment", err)
	}
}

func TestRunOneRuns(t *testing.T) {
	res, err := RunOne("e2", false) // ID lookup is case-insensitive
	if err != nil {
		t.Fatal(err)
	}
	if res.Table.ID != "E2" {
		t.Errorf("table ID = %q, want E2", res.Table.ID)
	}
	if len(res.Table.Rows) == 0 {
		t.Error("experiment produced no table rows")
	}
	if res.Summary != nil {
		t.Error("unobserved run carries a summary")
	}
}
