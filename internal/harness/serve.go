package harness

import (
	"fmt"
	"math/rand"

	"localadvice/internal/graph"
)

// This file is the request-shaped surface of the harness: entry points that
// take plain (family, n, seed) / (experiment id) parameters — the shape of
// an HTTP request — and are shared by the locad CLI and internal/server, so
// a served experiment and a CLI experiment run through identical code.

// GraphFamilies lists the graph families BuildGraph accepts, in the order
// the CLI documents them.
func GraphFamilies() []string {
	return []string{"cycle", "path", "grid", "torus", "regular", "planted3", "planted4", "gnp"}
}

// BuildGraph constructs a graph from a family name, target size and seed —
// the shared graph-construction vocabulary of the locad CLI flags and the
// serving API's graph specs. Grids and tori use the nearest rectangle to n;
// the seed drives generated structure (regular, planted) and ID
// permutations, and is ignored by the deterministic families.
func BuildGraph(family string, n int, seed int64) (*graph.Graph, error) {
	rng := rand.New(rand.NewSource(seed))
	switch family {
	case "cycle":
		return graph.TryCycle(n)
	case "path":
		return graph.TryPath(n)
	case "grid":
		side := intSqrt(n)
		return graph.TryGrid2D(side, (n+side-1)/side)
	case "torus":
		side := intSqrt(n)
		if side < 3 {
			side = 3
		}
		return graph.TryTorus2D(side, (n+side-1)/side)
	case "regular":
		return graph.RandomRegular(n, 4, rng)
	case "planted3":
		g, _ := graph.RandomColorable(n, 3, 0.12, rng)
		graph.AssignPermutedIDs(g, rng)
		return g, nil
	case "planted4":
		g, _ := graph.RandomColorable(n, 4, 0.22, rng)
		graph.AssignPermutedIDs(g, rng)
		return g, nil
	case "gnp":
		if n < 1 {
			return nil, fmt.Errorf("gnp graph needs n >= 1, got %d", n)
		}
		// Expected degree ~8 regardless of n — the sparse unstructured
		// regime the decomposition and message-reduction sweeps use.
		g := graph.RandomGNP(n, 8.0/float64(n), rng)
		graph.AssignPermutedIDs(g, rng)
		return g, nil
	default:
		return nil, fmt.Errorf("unknown graph family %q", family)
	}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// RunOne runs a single experiment by ID (case-insensitive), optionally
// observed through a fresh obs collector, and returns its result. It is the
// single-experiment form of RunManyObserved used by the serving layer's
// /v1/experiment endpoint.
func RunOne(id string, observe bool) (ExperimentResult, error) {
	e, ok := ByID(id)
	if !ok {
		return ExperimentResult{}, fmt.Errorf("unknown experiment %q (have %v)", id, IDs())
	}
	results, err := RunManyObserved([]Experiment{e}, 1, observe)
	if err != nil {
		return ExperimentResult{}, err
	}
	return results[0], nil
}
