package harness

import (
	"fmt"
	"math/rand"

	"localadvice/internal/graph"
	"localadvice/internal/local"
	"localadvice/internal/obs"
)

// e10Graphs returns the graph families of the message-reduction sweep:
// sparse (cycle), bounded-growth (grid, torus — the paper's regime), and an
// unstructured random graph. IDs are permuted so nothing depends on the
// construction order.
func e10Graphs() []struct {
	name string
	g    *graph.Graph
} {
	rng := rand.New(rand.NewSource(10))
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(256)},
		{"grid", graph.Grid2D(16, 16)},
		{"torus", graph.Torus2D(16, 16)},
		{"gnp", graph.RandomGNP(192, 0.045, rng)},
	}
	for _, e := range gs {
		graph.AssignPermutedIDs(e.g, rng)
	}
	return gs
}

// RunE10 measures the frugal engine's skeleton simulation (Bitton–Emek–
// Izumi–Kutten, "Message Reduction in the LOCAL Model is a Free Lunch")
// against the stock scheduler on a saturating flood: every graph family
// runs the same FloodProtocol through both engines, outputs are required to
// be bit-identical, and the table reports total messages and payload bytes
// side by side with the achieved reduction factors and round overhead.
func RunE10() (*Table, error) {
	t := &Table{
		ID: "E10", Title: "Frugal engine: skeleton message reduction vs stock scheduler",
		Header: []string{"family", "n", "m", "rounds", "f.rounds", "messages", "f.messages", "msg.x", "bytes", "f.bytes", "byte.x"},
	}
	scratch := graph.NewBFSScratch()
	for _, e := range e10Graphs() {
		g := e.g
		src, minID := 0, g.ID(0)
		for v := 1; v < g.N(); v++ {
			if id := g.ID(v); id < minID {
				src, minID = v, id
			}
		}
		ecc := 0
		for _, u := range g.BFSWithin(src, -1, scratch) {
			if dd := scratch.Dist(int(u)); dd > ecc {
				ecc = dd
			}
		}
		p := &local.FloodProtocol{SourceID: minID, Rounds: ecc + 2}

		var stockC, frugalC obs.Collector
		stockOut, stockStats, err := local.RunMessageConfig(g, p, nil, local.RunConfig{Workers: 1, Metrics: &stockC})
		if err != nil {
			return nil, fmt.Errorf("E10 %s: stock engine: %w", e.name, err)
		}
		frugalOut, frugalStats, err := local.RunFrugalConfig(g, p, nil, local.RunConfig{Metrics: &frugalC})
		if err != nil {
			return nil, fmt.Errorf("E10 %s: frugal engine: %w", e.name, err)
		}
		for v := range stockOut {
			if stockOut[v] != frugalOut[v] {
				return nil, fmt.Errorf("E10 %s: engines disagree at node %d: %v vs %v",
					e.name, v, stockOut[v], frugalOut[v])
			}
		}

		stockBytes := stockC.Summary().Bytes
		frugalBytes := frugalC.Summary().Bytes
		msgX, byteX := 0.0, 0.0
		if frugalStats.Messages > 0 {
			msgX = float64(stockStats.Messages) / float64(frugalStats.Messages)
		}
		if frugalBytes > 0 {
			byteX = float64(stockBytes) / float64(frugalBytes)
		}
		t.AddRow(e.name, d(g.N()), d(g.M()), d(stockStats.Rounds), d(frugalStats.Rounds),
			d(stockStats.Messages), d(frugalStats.Messages), f2(msgX),
			fmt.Sprint(stockBytes), fmt.Sprint(frugalBytes), f2(byteX))
	}
	t.Notes = append(t.Notes,
		"workload: FloodProtocol from the min-ID node to a fixed horizon of ecc+2 rounds — every informed node re-broadcasts every round, the regime where change suppression on the skeleton pays",
		"outputs are bit-identical between the engines on every family (checked each run); f.rounds = rounds + 2ρ+1 pipelined forwarding overhead at the default ρ=2",
		"messages/bytes are what each engine put on its transport; the frugal engine's logical (simulated) traffic equals the stock engine's exactly",
		"regenerate with: go run ./cmd/locad exp E10")
	return t, nil
}
