package harness

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update regenerates the golden tables under testdata/golden/ from the
// current experiment code:
//
//	go test ./internal/harness -run TestGoldenTables -update
//
// Review the diff before committing — the golden files are the CI-enforced
// record of the published EXPERIMENTS.md numbers.
var update = flag.Bool("update", false, "rewrite the golden experiment tables")

func goldenPath(id string) string {
	return filepath.Join("testdata", "golden", id+".golden")
}

// renderExperiment runs one experiment and renders its table exactly as the
// locad CLI prints it.
func renderExperiment(t *testing.T, e Experiment) string {
	t.Helper()
	table, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", e.ID, err)
	}
	var sb strings.Builder
	table.Render(&sb)
	return sb.String()
}

// TestGoldenTables pins every experiment's rendered table against its
// snapshot in testdata/golden/. The experiments are deterministic (seeded
// RNGs, fixed iteration order), so any diff is a real behavior change: a
// numeric drift here means the published EXPERIMENTS.md values no longer
// hold and both the golden file and the doc must be updated deliberately.
func TestGoldenTables(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			got := renderExperiment(t, e)
			path := goldenPath(e.ID)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Errorf("table drifted from %s (regenerate with -update if intended)\n%s",
					path, firstDiff(string(want), got))
			}
		})
	}
}

// TestGoldenTablesMatchExperimentsDoc asserts that every golden table
// appears verbatim inside the "Raw tables (as generated)" block of
// EXPERIMENTS.md, so the published numbers, the golden snapshots and the
// code can never drift apart silently: code vs golden is checked above,
// golden vs doc here.
func TestGoldenTablesMatchExperimentsDoc(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "EXPERIMENTS.md"))
	if err != nil {
		t.Fatal(err)
	}
	block := rawTablesBlock(t, string(doc))
	for _, e := range All() {
		want, err := os.ReadFile(goldenPath(e.ID))
		if err != nil {
			t.Fatalf("%s: missing golden file (run TestGoldenTables with -update): %v", e.ID, err)
		}
		// The golden file ends with the table's trailing blank line; the
		// last table in the doc block may not, so compare trimmed.
		if !strings.Contains(block, strings.TrimRight(string(want), "\n")) {
			t.Errorf("%s: golden table not found verbatim in EXPERIMENTS.md raw-tables block — update the doc to match the regenerated table", e.ID)
		}
	}
}

// rawTablesBlock extracts the contents of the last fenced code block of
// EXPERIMENTS.md — the "Raw tables (as generated)" section.
func rawTablesBlock(t *testing.T, doc string) string {
	t.Helper()
	marker := "## Raw tables (as generated)"
	i := strings.Index(doc, marker)
	if i < 0 {
		t.Fatalf("EXPERIMENTS.md has no %q section", marker)
	}
	rest := doc[i+len(marker):]
	open := strings.Index(rest, "```")
	if open < 0 {
		t.Fatal("raw-tables section has no opening fence")
	}
	rest = rest[open+3:]
	close := strings.Index(rest, "```")
	if close < 0 {
		t.Fatal("raw-tables section has no closing fence")
	}
	return rest[:close]
}

// firstDiff renders the first differing line of two table dumps, with
// context, for readable failure messages.
func firstDiff(want, got string) string {
	wl, gl := strings.Split(want, "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var w, g string
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			return fmt.Sprintf("first diff at line %d:\n want: %q\n  got: %q", i+1, w, g)
		}
	}
	return "contents equal after newline normalization"
}
