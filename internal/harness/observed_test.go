package harness

import (
	"testing"

	"localadvice/internal/graph"
	"localadvice/internal/local"
	"localadvice/internal/obs"
)

// engineExperiment is a minimal experiment that runs a real engine, so an
// observed run has rounds to collect.
func engineExperiment(id string) Experiment {
	return Experiment{ID: id, Title: "test", Run: func() (*Table, error) {
		g := graph.Cycle(32)
		decide := func(view *local.View) any { return view.G.N() }
		if _, _, err := local.RunSequential(g, &local.GatherProtocol{Radius: 2, Decide: decide}, nil); err != nil {
			return nil, err
		}
		t := &Table{ID: id, Title: "test", Header: []string{"col"}}
		t.AddRow("val")
		return t, nil
	}}
}

// TestRunManyObserved: observe=true attaches a fresh collector per
// experiment, captures a Summary with the engine's rounds, and restores the
// previous process-wide default afterwards.
func TestRunManyObserved(t *testing.T) {
	prev := &obs.Collector{}
	obs.SetDefault(prev)
	defer obs.SetDefault(nil)

	exps := []Experiment{engineExperiment("T1"), engineExperiment("T2")}
	results, err := RunManyObserved(exps, 1, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.Table == nil || r.Summary == nil || r.Collector == nil {
			t.Fatalf("%s: incomplete result %+v", r.ID, r)
		}
		if r.Summary.Rounds == 0 {
			t.Errorf("%s: observed summary has no rounds", r.ID)
		}
		if r.Summary.WallNanos <= 0 {
			t.Errorf("%s: summary has no Start/Stop window", r.ID)
		}
	}
	if obs.Default() != prev {
		t.Error("RunManyObserved did not restore the previous default collector")
	}
	if len(prev.Rounds()) != 0 {
		t.Error("observed runs leaked rounds into the previous default collector")
	}

	// Unobserved: tables only, no collectors attached.
	plain, err := RunManyObserved(exps, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range plain {
		if r.Table == nil {
			t.Fatalf("%s: missing table", r.ID)
		}
		if r.Summary != nil || r.Collector != nil {
			t.Errorf("%s: unobserved run attached metrics", r.ID)
		}
	}
}
