package harness

import (
	"fmt"
	"math/rand"

	"localadvice/internal/decomp"
	"localadvice/internal/graph"
)

// e11Graphs returns the graph families of the decomposition sweep: the
// 1-dimensional extreme (cycle), the paper's bounded-growth regime (grid,
// torus), and an unstructured random graph. IDs are permuted so nothing
// depends on construction order.
func e11Graphs() []struct {
	name string
	g    *graph.Graph
} {
	rng := rand.New(rand.NewSource(11))
	gs := []struct {
		name string
		g    *graph.Graph
	}{
		{"cycle", graph.Cycle(1024)},
		{"grid", graph.Grid2D(32, 32)},
		{"torus", graph.Torus2D(32, 32)},
		{"gnp", graph.RandomGNP(512, 8.0/512.0, rng)},
	}
	for _, e := range gs {
		graph.AssignPermutedIDs(e.g, rng)
	}
	return gs
}

// RunE11 measures the (β, O(log n/β)) low-diameter decomposition
// (Miller–Peng–Xu exponential shifts) across graph families and rates: for
// each (family, β) pair the table reports the ball count, the shift horizon,
// the maximum and mean ball radius, and the cut-edge fraction — the two
// sides of the MPX trade-off (cut fraction grows with β, radii shrink as
// O(log n/β)). Every decomposition is revalidated against the full
// structural invariant check before its row is emitted, and the whole sweep
// is deterministic in the fixed seed, so the table is golden-pinned.
func RunE11() (*Table, error) {
	t := &Table{
		ID: "E11", Title: "Low-diameter decomposition: balls, radii and cut fraction vs beta",
		Header: []string{"family", "n", "m", "beta", "balls", "max.shift", "max.rad", "mean.rad", "cut.frac"},
	}
	const seed = 1109
	for _, e := range e11Graphs() {
		g := e.g
		for _, beta := range []float64{0.05, 0.1, 0.2, 0.4} {
			d11, err := decomp.Decompose(g, beta, seed)
			if err != nil {
				return nil, fmt.Errorf("E11 %s beta %v: %w", e.name, beta, err)
			}
			if err := d11.Validate(g); err != nil {
				return nil, fmt.Errorf("E11 %s beta %v: %w", e.name, beta, err)
			}
			t.AddRow(e.name, d(g.N()), d(g.M()), f2(beta),
				d(d11.Balls()), d(int(d11.MaxShift)), d(d11.MaxRadius()),
				f2(d11.MeanRadius()), f4(d11.CutFraction()))
		}
	}
	t.Notes = append(t.Notes,
		"decomposition: per-node integer exponential shifts with rate beta (seeded), one multi-source BFS with shifted start times; a node joins the first wave to reach it",
		"every decomposition passes the full invariant check (exactly one ball per node, BFS depths, radius <= center shift, exact cut recount) before its row is emitted",
		"the MPX trade-off reads across each family's rows: larger beta cuts more edges (cut.frac ~ O(beta)) but shrinks radii (O(log n / beta)); these shards back the scheduler's locality-aware Partition hook",
		"regenerate with: go run ./cmd/locad exp E11")
	return t, nil
}
