package harness

import (
	"fmt"
	"math/rand"

	"localadvice/internal/bitstr"
	"localadvice/internal/coloring"
	"localadvice/internal/core"
	"localadvice/internal/decompress"
	"localadvice/internal/edgecolor"
	"localadvice/internal/eth"
	"localadvice/internal/graph"
	"localadvice/internal/growth"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/orient"
)

// seeded returns the deterministic RNG used by all experiments.
func seeded(offset int64) *rand.Rand { return rand.New(rand.NewSource(2024 + offset)) }

// colorSolver is the fast prover solver for greedy-colorable problems.
func colorSolver(g *graph.Graph) (*lcl.Solution, error) {
	return lcl.ColoringSolution(g, lcl.GreedyColoring(g))
}

// RunE1 measures Theorem 4.1: any LCL, 1 bit per node, rounds independent
// of n on bounded-growth families — and the capacity failure on an
// exponential-growth family.
func RunE1() (*Table, error) {
	t := &Table{
		ID: "E1", Title: "LCLs with 1-bit advice on bounded-growth graphs",
		Header: []string{"graph", "n", "problem", "bits/node", "ones-ratio", "rounds", "valid"},
	}
	type cfg struct {
		name    string
		g       *graph.Graph
		problem lcl.Problem
		radius  int
		solver  func(*graph.Graph) (*lcl.Solution, error)
	}
	cfgs := []cfg{
		{"cycle", graph.Cycle(600), lcl.Coloring{K: 3}, 60, colorSolver},
		{"cycle", graph.Cycle(900), lcl.Coloring{K: 3}, 60, colorSolver},
		{"cycle", graph.Cycle(1200), lcl.Coloring{K: 3}, 60, colorSolver},
		{"cycle", graph.Cycle(600), lcl.MIS{}, 40, nil},
		{"path", graph.Path(600), lcl.Coloring{K: 3}, 60, colorSolver},
		{"ladder", graph.Ladder(300), lcl.Coloring{K: 4}, 60, colorSolver},
	}
	for _, c := range cfgs {
		s := growth.Schema{Problem: c.problem, ClusterRadius: c.radius, Solver: c.solver}
		advice, err := s.Encode(c.g)
		if err != nil {
			return nil, fmt.Errorf("E1 %s n=%d: %w", c.name, c.g.N(), err)
		}
		sol, stats, err := s.Decode(c.g, advice)
		if err != nil {
			return nil, err
		}
		valid := lcl.Verify(c.problem, c.g, sol) == nil
		ratio, err := core.Sparsity(advice)
		if err != nil {
			return nil, err
		}
		_, beta := core.Classify(advice)
		t.AddRow(c.name, d(c.g.N()), c.problem.Name(), d(beta), f4(ratio), d(stats.Rounds), b(valid))
	}
	// The contrast case: exponential growth breaks the capacity
	// precondition.
	tree := graph.CompleteBinaryTree(10)
	s := growth.Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 8, Solver: colorSolver}
	if _, err := s.Encode(tree); err != nil {
		t.AddRow("bintree", d(tree.N()), "3-coloring", "-", "-", "-", "encode refused (capacity)")
		t.Notes = append(t.Notes, "binary tree (exponential growth) fails Thm 4.1's capacity precondition, as expected: "+err.Error())
	} else {
		t.AddRow("bintree", d(tree.N()), "3-coloring", "?", "?", "?", "unexpectedly succeeded")
	}
	// Lemma 4.3 diagnostic at a central node: does a ball-dominates-shell
	// radius α ∈ {x..2x} with |N_<=α| >= Δ²·|N_=α+2| exist? On bounded-
	// growth families it does at moderate x; on the (deep, so boundary
	// effects stay away) binary tree it does not.
	for _, c := range []struct {
		name   string
		g      *graph.Graph
		center int
		x      int
	}{
		{"cycle", graph.Cycle(300), 0, 10},
		{"grid", graph.Grid2D(61, 61), 30*61 + 30, 25},
		{"bintree", graph.CompleteBinaryTree(12), 0, 4},
	} {
		cell := "no α"
		if alpha, err := growth.FindAlpha(c.g, c.center, 2, c.x); err == nil {
			cell = fmt.Sprintf("α=%d", alpha)
		}
		t.AddRow(c.name, d(c.g.N()), "Lemma 4.3 (r=2, x="+d(c.x)+")", "-", cell, "-", "-")
	}
	t.Notes = append(t.Notes,
		"rounds are identical across n for each family: the decoder depends on Δ and the cluster radius only",
		"the Lemma 4.3 rows search the paper's ball-dominates-shell radius α at a central node: present on bounded-growth families, absent on the binary tree")
	return t, nil
}

// RunE2 measures the Section 8 brute-force advice search: attempts grow as
// 2^n with the instance size.
func RunE2() (*Table, error) {
	t := &Table{
		ID: "E2", Title: "Centralized advice search (2^n enumeration)",
		Header: []string{"n", "problem", "beta", "attempts", "2^(beta*n)", "found"},
	}
	for _, n := range []int{4, 6, 8, 10, 12, 14, 16} {
		g := graph.Cycle(n)
		res, err := eth.AdviceSearch(lcl.MIS{}, g, 1, eth.MISDecoder)
		if err != nil {
			return nil, err
		}
		t.AddRow(d(n), "mis", "1", du(res.Attempts), du(1<<uint(n)), b(res.Found))
	}
	// An unsolvable instance exhausts the whole space.
	res, err := eth.AdviceSearch(lcl.Coloring{K: 2}, graph.Cycle(7), 2, eth.ColoringDecoder(2))
	if err != nil {
		return nil, err
	}
	t.AddRow("7", "2-coloring (unsat)", "2", du(res.Attempts), du(1<<14), b(res.Found))
	// The s(n)-is-small ingredient: the number of distinct canonical views
	// (the lookup-table size of an order-invariant radius-1 algorithm)
	// plateaus as n grows — it depends on Δ and the radius, not on n.
	rng := seeded(2)
	for _, n := range []int{20, 40, 80, 160} {
		keys := map[string]bool{}
		for sample := 0; sample < 6; sample++ {
			g := graph.Cycle(n)
			graph.AssignSpreadIDs(g, rng)
			advice := make(local.Advice, g.N())
			for v := range advice {
				advice[v] = bitstr.New(0)
			}
			for v := 0; v < g.N(); v++ {
				keys[eth.CanonicalizeView(local.BuildView(g, advice, v, 1))] = true
			}
		}
		t.AddRow(d(n), "distinct radius-1 views", "-", d(len(keys)), "-", "-")
	}
	t.Notes = append(t.Notes,
		"attempts track 2^(beta*n): the exponential cost the ETH connection lower-bounds",
		"the distinct-view rows show s(n) is bounded: an order-invariant radius-1 decoder on Δ=2 graphs is a constant-size lookup table regardless of n")
	return t, nil
}

// RunE3 measures the balanced-orientation schema against the no-advice
// baseline.
func RunE3() (*Table, error) {
	t := &Table{
		ID: "E3", Title: "Almost-balanced orientation: advice vs no advice",
		Header: []string{"graph", "n", "Δ", "advice rounds", "no-advice rounds", "holders", "max bits", "valid"},
	}
	rng := seeded(3)
	reg4, err := graph.RandomRegular(200, 4, rng)
	if err != nil {
		return nil, err
	}
	cfgs := []struct {
		name string
		g    *graph.Graph
		p    orient.Params
	}{
		{"cycle", graph.Cycle(200), orient.DefaultParams()},
		{"cycle", graph.Cycle(800), orient.DefaultParams()},
		{"cycle", graph.Cycle(1600), orient.DefaultParams()},
		{"torus", graph.Torus2D(12, 12), orient.DefaultParams()},
		{"4-regular", reg4, orient.Params{MarkSpacing: 20, MarkWindow: 20}},
		{"grid", graph.Grid2D(10, 20), orient.DefaultParams()},
	}
	for _, c := range cfgs {
		s := orient.Schema{P: c.p}
		va, err := s.EncodeVar(c.g, nil)
		if err != nil {
			return nil, fmt.Errorf("E3 %s n=%d: %w", c.name, c.g.N(), err)
		}
		sol, stats, err := s.DecodeVar(c.g, va, nil)
		if err != nil {
			return nil, err
		}
		valid := lcl.Verify(lcl.BalancedOrientation{}, c.g, sol) == nil
		_, baseStats := orient.NoAdviceOrientation(c.g)
		maxBits := 0
		for _, p := range va {
			if p.Len() > maxBits {
				maxBits = p.Len()
			}
		}
		t.AddRow(c.name, d(c.g.N()), d(c.g.MaxDegree()), d(stats.Rounds), d(baseStats.Rounds),
			d(len(va)), d(maxBits), b(valid))
	}
	// Placement ablation: greedy first-fit vs the paper's Moser-Tardos
	// shift placement (Lemma 5.1's LLL argument, constructive).
	gl := graph.Cycle(800)
	sLLL := orient.Schema{P: orient.DefaultParams()}
	sol, vaLLL, err := sLLL.EncodeDecodeLLL(gl, seeded(33))
	if err != nil {
		return nil, err
	}
	validLLL := lcl.Verify(lcl.BalancedOrientation{}, gl, sol) == nil
	t.AddRow("cycle (LLL placement)", d(gl.N()), d(gl.MaxDegree()), d(sLLL.P.DecodeRadius()),
		d(gl.N()/2), d(len(vaLLL)), "2", b(validLLL))
	t.Notes = append(t.Notes,
		"advice rounds stay constant as the cycle grows 200 -> 1600 while the no-advice baseline grows linearly (the Ω(n) separation of Section 5)",
		"the LLL-placement row uses the paper's Moser-Tardos shift argument instead of greedy first-fit; both decode identically")
	return t, nil
}

// RunE4 measures the decompression codec against the trivial baseline and
// the counting bound.
func RunE4() (*Table, error) {
	t := &Table{
		ID: "E4", Title: "Edge-subset compression (bits per node)",
		Header: []string{"d", "n", "codec", "avg bits", "max bits", "bound ceil(d/2)+2", "lower bound d/2", "rounds", "exact"},
	}
	rng := seeded(4)
	for _, deg := range []int{4, 6, 8} {
		g, err := graph.RandomRegular(160, deg, rng)
		if err != nil {
			return nil, err
		}
		x := make(decompress.EdgeSet)
		for e := 0; e < g.M(); e++ {
			if rng.Intn(2) == 0 {
				x[e] = true
			}
		}
		// Denser graphs need sparser marks to keep pairs unambiguous.
		spacing := 20
		if deg >= 8 {
			spacing = 30
		}
		params := orient.Params{MarkSpacing: spacing, MarkWindow: spacing}
		for _, codec := range []decompress.Codec{decompress.Trivial{}, decompress.Oriented{P: params}} {
			st, err := decompress.Measure(codec, g, x)
			if err != nil {
				return nil, fmt.Errorf("E4 d=%d %s: %w", deg, codec.Name(), err)
			}
			t.AddRow(d(deg), d(g.N()), st.Codec, f2(st.AvgBits), d(st.MaxBits),
				d((deg+1)/2+2), f2(float64(deg)/2), d(st.Rounds), b(st.Exact))
		}
	}
	// Open problem 4: on 3-regular graphs, exactly 2 bits per node suffice
	// (here with a global decoder; whether a LOCAL one exists is open).
	g3, err := graph.RandomRegular(160, 3, rng)
	if err != nil {
		return nil, err
	}
	x3 := make(decompress.EdgeSet)
	for e := 0; e < g3.M(); e++ {
		if rng.Intn(2) == 0 {
			x3[e] = true
		}
	}
	for _, codec := range []decompress.Codec{decompress.Trivial{}, decompress.CubicTwoBit{}} {
		st, err := decompress.Measure(codec, g3, x3)
		if err != nil {
			return nil, fmt.Errorf("E4 cubic %s: %w", codec.Name(), err)
		}
		t.AddRow("3", d(g3.N()), st.Codec, f2(st.AvgBits), d(st.MaxBits),
			"2 (open prob. 4)", f2(1.5), d(st.Rounds), b(st.Exact))
	}
	t.Notes = append(t.Notes,
		"oriented stays within ceil(d/2)+2 per node and approaches the d/2 counting bound; trivial needs d",
		"cubic-2bit realizes the counting side of open problem 4 (2 bits/node on 3-regular graphs); its decoder is global (diameter rounds) — locality is the open question")
	return t, nil
}

// RunE5 measures the Δ-coloring pipeline, including the Linial ablation.
func RunE5() (*Table, error) {
	t := &Table{
		ID: "E5", Title: "Δ-coloring of Δ-colorable graphs with advice",
		Header: []string{"graph", "n", "Δ", "colors", "rounds", "holders", "valid"},
	}
	rng := seeded(5)
	type cfg struct {
		name string
		g    *graph.Graph
	}
	var cfgs []cfg
	cfgs = append(cfgs, cfg{"torus", graph.Torus2D(8, 9)})
	for i := 0; i < 3; i++ {
		g, _ := graph.RandomColorable(45+10*i, 4, 0.22, rng)
		graph.AssignPermutedIDs(g, rng)
		cfgs = append(cfgs, cfg{fmt.Sprintf("planted-4col-%d", i), g})
	}
	for _, c := range cfgs {
		delta := c.g.MaxDegree()
		p := coloring.NewDeltaPipeline(delta, 4)
		va, err := p.EncodeVar(c.g, nil)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", c.name, err)
		}
		sol, stats, err := p.DecodeVar(c.g, va, nil)
		if err != nil {
			return nil, err
		}
		valid := lcl.Verify(lcl.Coloring{K: delta}, c.g, sol) == nil
		t.AddRow(c.name, d(c.g.N()), d(delta), d(coloring.MaxColor(sol.Node)), d(stats.Rounds), d(len(va)), b(valid))
	}
	// The paper's explicit Problem 3 / Problem 4 split of the final stage
	// (Lemmas 6.9 and 6.10) as a four-stage pipeline.
	gs, _ := graph.RandomColorable(55, 4, 0.22, rng)
	graph.AssignPermutedIDs(gs, rng)
	deltaS := gs.MaxDegree()
	split := coloring.NewDeltaPipelineSplit(deltaS, 4, 4)
	vaS, err := split.EncodeVar(gs, nil)
	if err != nil {
		return nil, err
	}
	solS, statsS, err := split.DecodeVar(gs, vaS, nil)
	if err != nil {
		return nil, err
	}
	validS := lcl.Verify(lcl.Coloring{K: deltaS}, gs, solS) == nil
	t.AddRow("4-stage split pipeline", d(gs.N()), d(deltaS), d(coloring.MaxColor(solS.Node)),
		d(statsS.Rounds), d(len(vaS)), b(validS))

	// Ablation: reduce a many-color input (the ID coloring, n colors) to
	// Δ+1 with and without the Linial step.
	g, _ := graph.RandomColorable(60, 4, 0.22, rng)
	graph.AssignSpreadIDs(g, rng) // IDs from {1..n^3}: the ID coloring has huge colors
	delta := g.MaxDegree()
	idColors := make([]int, g.N())
	for v := range idColors {
		idColors[v] = int(g.ID(v))
	}
	idSol, err := lcl.ColoringSolution(g, idColors)
	if err != nil {
		return nil, err
	}
	for _, skip := range []bool{false, true} {
		stage := coloring.ReduceStage{Delta: delta, SkipLinial: skip}
		_, stats, err := stage.DecodeVar(g, core.VarAdvice{}, []*lcl.Solution{idSol})
		if err != nil {
			return nil, err
		}
		name := "reduce n colors (linial+schedule)"
		if skip {
			name = "reduce n colors (schedule only)"
		}
		t.AddRow(name, d(g.N()), d(delta), d(delta+1), d(stats.Rounds), "0", "true")
	}
	t.Notes = append(t.Notes, "ablation rows: reducing an n-color input to Δ+1 — Linial's reduction cuts the class-scheduling round count")
	return t, nil
}

// RunE6 measures the 3-coloring schema.
func RunE6() (*Table, error) {
	t := &Table{
		ID: "E6", Title: "3-coloring with exactly 1 bit per node",
		Header: []string{"graph", "n", "Δ", "bits/node", "ones-ratio", "rounds (vs no-advice)", "valid"},
	}
	rng := seeded(6)
	schema := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	type cfg struct {
		name string
		g    *graph.Graph
	}
	cfgs := []cfg{
		{"cycle", graph.Cycle(80)},
		{"cycle", graph.Cycle(160)},
		{"cycle", graph.Cycle(240)},
		{"grid", graph.Grid2D(7, 9)},
		{"torus", graph.Torus2D(5, 8)},
	}
	for i := 0; i < 2; i++ {
		g, _ := graph.RandomColorable(32+8*i, 3, 0.12, rng)
		graph.AssignPermutedIDs(g, rng)
		cfgs = append(cfgs, cfg{fmt.Sprintf("planted-3col-%d", i), g})
	}
	for _, c := range cfgs {
		advice, err := schema.Encode(c.g)
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", c.name, err)
		}
		sol, stats, err := schema.Decode(c.g, advice)
		if err != nil {
			return nil, err
		}
		valid := lcl.Verify(lcl.Coloring{K: 3}, c.g, sol) == nil
		ratio, err := core.Sparsity(advice)
		if err != nil {
			return nil, err
		}
		_, beta := core.Classify(advice)
		_, baseline, err := coloring.NoAdviceColoring(c.g, 3)
		if err != nil {
			return nil, err
		}
		t.AddRow(c.name, d(c.g.N()), d(c.g.MaxDegree()), d(beta), f4(ratio),
			fmt.Sprintf("%d (vs %d)", stats.Rounds, baseline.Rounds), b(valid))
	}
	t.Notes = append(t.Notes,
		"rounds stay constant at 24 as cycles grow 80 -> 240 while the no-advice baseline (gather the component) needs diameter rounds; the ones ratio stays bounded away from 0 — Section 7's conjecture that this advice cannot be made arbitrarily sparse")
	return t, nil
}

// RunE7 measures the recursive-splitting edge coloring.
func RunE7() (*Table, error) {
	t := &Table{
		ID: "E7", Title: "Δ-edge-coloring of bipartite Δ-regular graphs (Δ = 2^k)",
		Header: []string{"Δ", "n", "colors", "rounds", "holders", "valid"},
	}
	rng := seeded(7)
	for _, delta := range []int{2, 4, 8} {
		var g *graph.Graph
		var err error
		switch delta {
		case 2:
			g = graph.Cycle(120)
		case 4:
			g = graph.Torus2D(6, 10)
		default:
			g, err = graph.RandomBipartiteRegular(40, delta, rng)
			if err != nil {
				return nil, err
			}
		}
		s := edgecolor.New(delta)
		if delta >= 8 {
			s.OrientParams = orient.Params{MarkSpacing: 25, MarkWindow: 25}
		}
		va, err := s.EncodeVar(g, nil)
		if err != nil {
			return nil, fmt.Errorf("E7 Δ=%d: %w", delta, err)
		}
		sol, stats, err := s.DecodeVar(g, va, nil)
		if err != nil {
			return nil, err
		}
		valid := lcl.Verify(lcl.EdgeColoring{K: delta}, g, sol) == nil
		t.AddRow(d(delta), d(g.N()), d(coloring.MaxColor(sol.Edge)), d(stats.Rounds), d(len(va)), b(valid))
	}
	t.Notes = append(t.Notes, "log2(Δ) splitting levels, each composed from the Section 5 schemas via Lemma 1 tagging")
	return t, nil
}

// RunE8 measures sparsity as a function of each schema's spacing knob — the
// "advice can be made arbitrarily sparse" half of the composability
// framework — plus a composed pipeline turned into uniform one-bit advice
// via Lemma 2.
func RunE8() (*Table, error) {
	t := &Table{
		ID: "E8", Title: "Sparsity knobs and Lemma 2 one-bit conversion",
		Header: []string{"schema", "knob", "holders", "total bits", "n", "holders/n"},
	}
	g := graph.Cycle(1200)
	for _, spacing := range []int{12, 24, 48, 96} {
		s := orient.Schema{P: orient.Params{MarkSpacing: spacing, MarkWindow: 12}}
		va, err := s.EncodeVar(g, nil)
		if err != nil {
			return nil, err
		}
		if _, _, err := s.DecodeVar(g, va, nil); err != nil {
			return nil, err
		}
		t.AddRow("orientation", fmt.Sprintf("spacing=%d", spacing), d(len(va)), d(va.TotalBits()),
			d(g.N()), f4(float64(len(va))/float64(g.N())))
	}
	for _, cover := range []int{5, 10, 20, 40} {
		s := orient.TwoColoringStage{CoverRadius: cover}
		va, err := s.EncodeVar(g, nil)
		if err != nil {
			return nil, err
		}
		t.AddRow("two-coloring", fmt.Sprintf("cover=%d", cover), d(len(va)), d(va.TotalBits()),
			d(g.N()), f4(float64(len(va))/float64(g.N())))
	}
	for _, radius := range []int{40, 80, 160} {
		s := growth.Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: radius, Solver: colorSolver}
		advice, err := s.Encode(g)
		if err != nil {
			return nil, err
		}
		ratio, err := core.Sparsity(advice)
		if err != nil {
			return nil, err
		}
		t.AddRow("growth-lcl (1-bit)", fmt.Sprintf("radius=%d", radius), "-", "-",
			d(g.N()), f4(ratio))
	}
	// The fully general Lemma 2: the orientation schema's adjacent marked
	// pairs converted to uniform one-bit advice via the grouped codec.
	gc := graph.Cycle(1040)
	oneBit := core.AsGroupedOneBitSchema(
		orient.Schema{P: orient.Params{MarkSpacing: 260, MarkWindow: 15}},
		core.GroupedOneBitCodec{Radius: 120, GroupRadius: 2})
	_, advice1, _, err := core.RunAndVerify(oneBit, gc)
	if err != nil {
		return nil, err
	}
	ratio1, err := core.Sparsity(advice1)
	if err != nil {
		return nil, err
	}
	t.AddRow("orientation (1-bit, Lemma 2)", "spacing=260", "-", "-", d(gc.N()), f4(ratio1))
	t.Notes = append(t.Notes,
		"holders/n (or the ones ratio for natively 1-bit schemas) falls as the knob grows: Definition 3 sparsity is tunable",
		"the last row is the grouped Lemma 2 conversion: adjacent marked pairs re-encoded as uniform 1 bit per node")
	return t, nil
}
