package harness

import (
	"strings"
	"testing"
)

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a while")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(table.Rows) == 0 {
				t.Fatal("empty table")
			}
			for _, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Errorf("row %v has %d cells for %d columns", row, len(row), len(table.Header))
				}
			}
			var sb strings.Builder
			table.Render(&sb)
			if !strings.Contains(sb.String(), e.ID) {
				t.Error("render missing experiment id")
			}
			t.Log("\n" + sb.String())
		})
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("e3"); !ok {
		t.Error("case-insensitive lookup failed")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("unknown experiment found")
	}
	if len(IDs()) != 12 {
		t.Errorf("IDs = %v, want 12 experiments", IDs())
	}
}

func TestTableRender(t *testing.T) {
	table := &Table{
		ID: "X", Title: "test",
		Header: []string{"a", "long-column"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
		Notes:  []string{"a note"},
	}
	var sb strings.Builder
	table.Render(&sb)
	out := sb.String()
	for _, want := range []string{"== X: test ==", "long-column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}
