// Package harness runs the experiments of EXPERIMENTS.md — one per
// contribution of the paper — and renders their tables. Both the locad CLI
// and the benchmark suite drive experiments through this package so the
// tables are regenerated identically everywhere.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"localadvice/internal/obs"
)

// Table is one experiment's output table.
type Table struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// AddRow appends a row given as formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Experiment is a runnable experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Table, error)
}

// All returns every experiment, in order.
func All() []Experiment {
	return []Experiment{
		{ID: "E1", Title: "LCLs on bounded-growth graphs with 1-bit advice (Thm 4.1)", Run: RunE1},
		{ID: "E2", Title: "Brute-force advice search scales exponentially (Sec 8 / ETH)", Run: RunE2},
		{ID: "E3", Title: "Almost-balanced orientation with sparse advice (Cor 5.2/5.4)", Run: RunE3},
		{ID: "E4", Title: "Edge-subset compression at ~d/2 bits per node (Sec 1.5)", Run: RunE4},
		{ID: "E5", Title: "Δ-coloring of Δ-colorable graphs with advice (Thm 6.1)", Run: RunE5},
		{ID: "E6", Title: "3-coloring 3-colorable graphs with 1 bit per node (Thm 7.1)", Run: RunE6},
		{ID: "E7", Title: "Δ-edge-coloring bipartite Δ-regular graphs, Δ = 2^k (Cor 5.9)", Run: RunE7},
		{ID: "E8", Title: "Composability and arbitrarily sparse advice (Lem 1/2, Def 3/4)", Run: RunE8},
		{ID: "E9", Title: "Fault injection: detection vs silent invalid outputs", Run: RunE9},
		{ID: "E10", Title: "Frugal engine: skeleton message reduction vs stock scheduler", Run: RunE10},
		{ID: "E11", Title: "Low-diameter decomposition: balls, radii and cut fraction vs beta", Run: RunE11},
		{ID: "E12", Title: "Deterministic LLL: conditional expectations vs Moser-Tardos across seeds", Run: RunE12},
	}
}

// ExperimentResult pairs an experiment's table with the engine metrics
// collected while it ran (nil when the run was not observed).
type ExperimentResult struct {
	ID      string
	Table   *Table
	Summary *obs.Summary
	// Collector is the collector the observed run reported into (for JSONL
	// export); nil when the run was not observed.
	Collector *obs.Collector
}

// RunMany executes the given experiments, fanning the rows of work out over
// up to `workers` goroutines (0 means GOMAXPROCS), and returns the tables in
// the order the experiments were given. Every experiment is deterministic
// (seeded RNGs, no shared state), so the tables are identical to a
// sequential run; only the wall-clock changes. The first error wins.
func RunMany(exps []Experiment, workers int) ([]*Table, error) {
	results, err := RunManyObserved(exps, workers, false)
	if err != nil {
		return nil, err
	}
	tables := make([]*Table, len(results))
	for i, r := range results {
		tables[i] = r.Table
	}
	return tables, nil
}

// RunManyObserved is RunMany returning per-experiment results. When observe
// is true the experiments run sequentially — regardless of workers — each
// with a fresh obs.Collector installed as the process-wide default
// (obs.SetDefault), so every engine run inside the experiment reports into
// it; the collector's Summary is attached to the result. Observation must be
// sequential because experiments reach the collector through the process-
// wide default: running two at once would interleave their metrics.
func RunManyObserved(exps []Experiment, workers int, observe bool) ([]ExperimentResult, error) {
	results := make([]ExperimentResult, len(exps))
	for i, e := range exps {
		results[i].ID = e.ID
	}
	if observe {
		prev := obs.Default()
		defer obs.SetDefault(prev)
		for i, e := range exps {
			c := &obs.Collector{}
			c.Start()
			obs.SetDefault(c)
			table, err := e.Run()
			obs.SetDefault(nil)
			c.Stop()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", e.ID, err)
			}
			s := c.Summary()
			results[i].Table = table
			results[i].Summary = &s
			results[i].Collector = c
		}
		return results, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(exps) {
		workers = len(exps)
	}
	errs := make([]error, len(exps))
	if workers <= 1 {
		for i, e := range exps {
			results[i].Table, errs[i] = e.Run()
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i, e := range exps {
			wg.Add(1)
			go func(i int, e Experiment) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				results[i].Table, errs[i] = e.Run()
			}(i, e)
		}
		wg.Wait()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("%s: %w", exps[i].ID, err)
		}
	}
	return results, nil
}

// ByID returns the experiment with the given ID.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists all experiment IDs.
func IDs() []string {
	var out []string
	for _, e := range All() {
		out = append(out, e.ID)
	}
	sort.Strings(out)
	return out
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func du(v uint64) string  { return fmt.Sprintf("%d", v) }
func b(v bool) string     { return fmt.Sprintf("%v", v) }
