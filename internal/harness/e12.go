package harness

import (
	"fmt"
	"math/rand"
	"strings"

	"localadvice/internal/coloring"
	"localadvice/internal/core"
	"localadvice/internal/graph"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/obs"
	"localadvice/internal/orient"
)

// This file is the deterministic-LLL pipeline surface: the DetSchema
// adapters that switch the two LLL-backed advice schemas (orient shift
// placement, ruling-group selection of the 3-coloring schema) between
// Moser–Tardos and the derandomized solvers, and experiment E12 comparing
// the three methods. The adapters are shared by E12, the seed-independence
// test wall, the `locad detlll` subcommand, and the server's det-mode
// schema entries.

// DetMethod names one LLL resolution strategy.
type DetMethod string

const (
	// MethodMT resolves the schema's LLL instance by seeded Moser–Tardos
	// resampling — the randomized constructive path.
	MethodMT DetMethod = "mt"
	// MethodDet resolves it by the method of conditional expectations — no
	// RNG, advice is a pure function of the graph.
	MethodDet DetMethod = "det"
	// MethodDecomposed is MethodDet running ball-by-ball over a low-diameter
	// decomposition of the event dependency graph.
	MethodDecomposed DetMethod = "decomposed"
)

// DetMethods lists the three methods in E12 row order.
func DetMethods() []DetMethod { return []DetMethod{MethodMT, MethodDet, MethodDecomposed} }

// detMTCap bounds the Moser–Tardos resampling work of the adapters; the E12
// families satisfy the symmetric LLL condition, so actual counts stay far
// below it.
const detMTCap = 1 << 20

// DetSchema adapts one LLL-backed advice schema to the deterministic
// pipeline: method-selectable encoding with solver metrics, and decoding on
// any named engine (local.EngineNames).
type DetSchema struct {
	// Name is the schema identifier ("orient", "color3").
	Name string
	// Problem is the LCL the decoded output is verified against.
	Problem func(g *graph.Graph) lcl.Problem
	// EncodeWith computes the advice with the given method. seed drives
	// Moser–Tardos only (MethodDet/MethodDecomposed ignore it — their output
	// is a pure function of g). Solver metrics (lll.resamplings,
	// lll.evaluations, lll.repairs, lll.events, …) are reported into m; a
	// nil collector records nothing. MethodMT runs under the detMTCap
	// resampling bound.
	EncodeWith func(method DetMethod, g *graph.Graph, seed int64, m *obs.Collector) (local.Advice, error)
	// EncodeMTCapped is the MethodMT path with an explicit resampling cap —
	// the `locad detlll -cap` hook for exercising the typed
	// lll.ErrResamplingCap surface end to end.
	EncodeMTCapped func(g *graph.Graph, seed int64, cap int, m *obs.Collector) (local.Advice, error)
	// DecodeOn runs the schema's LOCAL decoder on a named engine.
	DecodeOn func(engine string, g *graph.Graph, advice local.Advice, cfg local.RunConfig) (*lcl.Solution, local.Stats, error)
}

// Encode is the RunConfig-facing entry point: cfg.DetLLL switches the
// schema onto the deterministic path (conditional expectations, seed
// ignored); otherwise the advice comes from Moser–Tardos seeded with seed.
func (ds DetSchema) Encode(g *graph.Graph, seed int64, cfg local.RunConfig) (local.Advice, error) {
	if cfg.DetLLL {
		return ds.EncodeWith(MethodDet, g, 0, nil)
	}
	return ds.EncodeWith(MethodMT, g, seed, nil)
}

// DetSchemaByName returns the deterministic-pipeline adapter for "orient"
// or "color3".
func DetSchemaByName(name string) (DetSchema, bool) {
	for _, ds := range DetSchemas() {
		if ds.Name == name {
			return ds, true
		}
	}
	return DetSchema{}, false
}

// DetSchemas returns the two LLL-backed schema adapters.
func DetSchemas() []DetSchema {
	orientSchema := orient.Schema{P: orient.DefaultParams()}
	threeSchema := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	return []DetSchema{
		{
			Name:    "orient",
			Problem: func(*graph.Graph) lcl.Problem { return lcl.BalancedOrientation{} },
			EncodeWith: func(method DetMethod, g *graph.Graph, seed int64, m *obs.Collector) (local.Advice, error) {
				var va core.VarAdvice
				var err error
				switch method {
				case MethodMT:
					va, err = orientSchema.EncodeVarLLLObserved(g, rand.New(rand.NewSource(seed)), detMTCap, m)
				case MethodDet:
					va, err = orientSchema.EncodeVarDetObserved(g, m)
				case MethodDecomposed:
					va, err = orientSchema.EncodeVarDecomposedObserved(g, m)
				default:
					err = fmt.Errorf("unknown det method %q", method)
				}
				if err != nil {
					return nil, err
				}
				return va.Dense(g.N()), nil
			},
			EncodeMTCapped: func(g *graph.Graph, seed int64, cap int, m *obs.Collector) (local.Advice, error) {
				va, err := orientSchema.EncodeVarLLLObserved(g, rand.New(rand.NewSource(seed)), cap, m)
				if err != nil {
					return nil, err
				}
				return va.Dense(g.N()), nil
			},
			DecodeOn: func(engine string, g *graph.Graph, advice local.Advice, cfg local.RunConfig) (*lcl.Solution, local.Stats, error) {
				return orientSchema.DecodeVarOn(engine, g, core.SparseFromDense(advice), cfg)
			},
		},
		{
			Name:    "color3",
			Problem: func(*graph.Graph) lcl.Problem { return lcl.Coloring{K: 3} },
			EncodeWith: func(method DetMethod, g *graph.Graph, seed int64, m *obs.Collector) (local.Advice, error) {
				switch method {
				case MethodMT:
					return threeSchema.EncodeLLLObserved(g, rand.New(rand.NewSource(seed)), detMTCap, m)
				case MethodDet:
					return threeSchema.EncodeDetObserved(g, m)
				case MethodDecomposed:
					return threeSchema.EncodeDecomposedObserved(g, m)
				default:
					return nil, fmt.Errorf("unknown det method %q", method)
				}
			},
			EncodeMTCapped: func(g *graph.Graph, seed int64, cap int, m *obs.Collector) (local.Advice, error) {
				return threeSchema.EncodeLLLObserved(g, rand.New(rand.NewSource(seed)), cap, m)
			},
			DecodeOn: threeSchema.DecodeOn,
		},
	}
}

// e12Graphs returns the E12 families for one schema. The orient shift
// systems of these families satisfy the symmetric LLL condition (dependency
// degree stays in single digits), which is the regime the derandomization
// guarantee covers — grid/torus shift systems have dependency degree ~45,
// violate the condition badly (Moser–Tardos itself needs >10^5 resamplings
// or stalls), and stay on the greedy placement path. The color3 families
// include the two (triangular strip, chorded cycle) whose pendant-leaf
// structure makes the Section 7 ruling-group machinery run for real
// (rulers > 0); on cycles the selection instance is empty and every method
// trivially agrees.
func e12Graphs(schema string) []struct {
	name string
	g    *graph.Graph
} {
	rng := rand.New(rand.NewSource(12))
	var gs []struct {
		name string
		g    *graph.Graph
	}
	add := func(name string, g *graph.Graph) {
		gs = append(gs, struct {
			name string
			g    *graph.Graph
		}{name, g})
	}
	switch schema {
	case "orient":
		add("cycle", graph.Cycle(1024))
		add("path", graph.Path(1024))
		add("cyclepow", graph.CyclePowers(512, 2))
		for _, e := range gs {
			graph.AssignPermutedIDs(e.g, rng)
		}
	default: // color3
		// The greedy ruling-group placer (Section 7) is ID-order sensitive:
		// some labellings of the triangular strip push placements out of the
		// feasible window. The permutation seed is pinned to a labelling
		// where placement succeeds — the experiment's subject is LLL-seed
		// independence, which is orthogonal to the ID labelling.
		add("cycle", graph.Cycle(512))
		add("tristrip", graph.TriangularStrip(80))
		add("chordcycle", graph.ChordedCycle(120))
		for _, e := range gs {
			graph.AssignPermutedIDs(e.g, rand.New(rand.NewSource(1)))
		}
	}
	return gs
}

// e12Seeds are the seeds every method runs under; MethodMT consumes them,
// the deterministic methods prove they ignore them.
func e12Seeds() []int64 { return []int64{1, 2, 3, 4, 5} }

// adviceFingerprint renders advice as a canonical string (for counting
// distinct outputs across seeds).
func adviceFingerprint(a local.Advice) string {
	var sb strings.Builder
	for _, s := range a {
		sb.WriteString(s.String())
		sb.WriteByte('|')
	}
	return sb.String()
}

// eventTotal sums the values of one event kind in a collector.
func eventTotal(c *obs.Collector, kind string) int64 {
	var total int64
	for _, e := range c.Events() {
		if e.Kind == kind {
			total += e.Value
		}
	}
	return total
}

// RunE12 compares the three LLL resolution methods — Moser–Tardos (mt),
// conditional expectations (det), and the decomposition-guided variant
// (decomposed) — for both LLL-backed schemas across graph families. Each
// (schema, family, method) cell runs the encoder under 5 seeds and reports
// the instance size, the mean resampling and Bad-evaluation counts (the
// work unit the randomized and deterministic paths share), the mean repair
// moves, the advice bits, the number of distinct advice outputs across the
// seeds (the seed-independence measurement: always 1 on the det paths,
// routinely > 1 for mt wherever the instance leaves any freedom), and the
// decode rounds + verification of the final advice.
func RunE12() (*Table, error) {
	t := &Table{
		ID: "E12", Title: "Deterministic LLL: conditional expectations vs Moser-Tardos across seeds",
		Header: []string{"schema", "family", "n", "method", "events", "resamp", "evals", "repairs", "bits", "distinct5", "rounds", "valid"},
	}
	for _, ds := range DetSchemas() {
		for _, e := range e12Graphs(ds.Name) {
			g := e.g
			for _, method := range DetMethods() {
				seeds := e12Seeds()
				var advice local.Advice
				var events int64
				var sumResamp, sumEvals, sumRepairs int64
				distinct := map[string]bool{}
				for _, seed := range seeds {
					c := &obs.Collector{}
					a, err := ds.EncodeWith(method, g, seed, c)
					if err != nil {
						return nil, fmt.Errorf("E12 %s/%s/%s seed %d: %w", ds.Name, e.name, method, seed, err)
					}
					advice = a
					distinct[adviceFingerprint(a)] = true
					events = eventTotal(c, "lll.events")
					sumResamp += eventTotal(c, "lll.resamplings")
					sumEvals += eventTotal(c, "lll.evaluations")
					sumRepairs += eventTotal(c, "lll.repairs")
				}
				if method != MethodMT && len(distinct) != 1 {
					return nil, fmt.Errorf("E12 %s/%s/%s: deterministic method produced %d distinct outputs across seeds",
						ds.Name, e.name, method, len(distinct))
				}
				sol, stats, err := ds.DecodeOn("ball", g, advice, local.RunConfig{})
				if err != nil {
					return nil, fmt.Errorf("E12 %s/%s/%s decode: %w", ds.Name, e.name, method, err)
				}
				if err := lcl.Verify(ds.Problem(g), g, sol); err != nil {
					return nil, fmt.Errorf("E12 %s/%s/%s verify: %w", ds.Name, e.name, method, err)
				}
				runs := float64(len(seeds))
				t.AddRow(ds.Name, e.name, d(g.N()), string(method), d(int(events)),
					f2(float64(sumResamp)/runs), f2(float64(sumEvals)/runs), f2(float64(sumRepairs)/runs),
					d(advice.TotalBits()), d(len(distinct)), d(stats.Rounds), b(true))
			}
		}
	}
	t.Notes = append(t.Notes,
		"det/decomposed rows always show resamp 0 and distinct5 1: conditional expectations takes no RNG, so the advice is a pure function of the graph — the basis of the seedless det-mode cache keys (DESIGN.md decision 12)",
		"evals counts Bad-predicate calls, the work unit shared by all three methods; mt's evals vary with the seed (the mean over the 5 seeds is shown), det's are exact and constant",
		"tristrip/chordcycle are the families whose pendant-leaf structure makes the Section 7 ruling-group selection run for real (rulers > 0); there mt's advice differs across seeds while det stays bit-identical",
		"color3 events is always 0: with valid parameters (CoverRadius >= 4*GroupSpread+2) ruler spacing keeps candidate-group reaches disjoint, so the selection instance is structurally conflict-free — yet mt still samples its initial assignment at random, which is exactly the seed dependence the det path removes",
		"orient families satisfy the symmetric LLL condition e*p*(d+1) <= 1; grid/torus shift systems violate it (dependency degree ~45) and stay on the greedy placement path",
		"regenerate with: go run ./cmd/locad exp E12")
	return t, nil
}
