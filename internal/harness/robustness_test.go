package harness

import (
	"math/rand"
	"testing"

	"localadvice/internal/bitstr"
	"localadvice/internal/coloring"
	"localadvice/internal/core"
	"localadvice/internal/decompress"
	"localadvice/internal/graph"
	"localadvice/internal/growth"
	"localadvice/internal/lcl"
	"localadvice/internal/local"
	"localadvice/internal/orient"
)

// Decoders are exposed to whatever bits a (possibly broken or adversarial)
// prover produced. Definition 2 only promises correct output for the
// prover's advice, but decoders must never panic, hang, or silently
// mis-assemble on other inputs: they return an error or some (possibly
// invalid) labeling. These fuzz-style tests drive every decoder with random
// advice of the right shape.

func randomOneBit(g *graph.Graph, rng *rand.Rand) local.Advice {
	advice := make(local.Advice, g.N())
	for v := range advice {
		advice[v] = bitstr.New(rng.Intn(2))
	}
	return advice
}

func randomVarAdvice(g *graph.Graph, rng *rand.Rand, maxHolders, maxBits int) core.VarAdvice {
	va := make(core.VarAdvice)
	for i := 0; i < rng.Intn(maxHolders+1); i++ {
		payload := bitstr.String{}
		for b := 0; b < rng.Intn(maxBits+1); b++ {
			payload = payload.Append(rng.Intn(2))
		}
		va[rng.Intn(g.N())] = payload
	}
	return va
}

func TestThreeColoringDecoderRobustToRandomAdvice(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	g := graph.Cycle(90)
	schema := coloring.ThreeColoring{CoverRadius: 10, GroupSpread: 2}
	for trial := 0; trial < 25; trial++ {
		advice := randomOneBit(g, rng)
		sol, _, err := schema.Decode(g, advice)
		if err != nil {
			continue // rejecting garbage is correct
		}
		// If it decodes without error, the labels must at least be in range.
		for v, c := range sol.Node {
			if c < 1 || c > 3 {
				t.Fatalf("trial %d: node %d got label %d", trial, v, c)
			}
		}
	}
}

func TestGrowthDecoderRobustToRandomAdvice(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	g := graph.Cycle(200)
	s := growth.Schema{Problem: lcl.Coloring{K: 3}, ClusterRadius: 20, Solver: colorSolver}
	for trial := 0; trial < 15; trial++ {
		advice := randomOneBit(g, rng)
		// Error or labeling; never panic.
		if sol, _, err := s.Decode(g, advice); err == nil {
			for _, c := range sol.Node {
				if c < 1 || c > 3 {
					t.Fatalf("trial %d: out-of-range label %d", trial, c)
				}
			}
		}
	}
}

func TestOrientationDecoderRobustToRandomVarAdvice(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	g := graph.Cycle(120)
	s := orient.Schema{P: orient.DefaultParams()}
	for trial := 0; trial < 25; trial++ {
		va := randomVarAdvice(g, rng, 6, 3)
		// The decoder must either error (bad marks) or return a full
		// orientation; it must never leave edges unset silently.
		sol, _, err := s.DecodeVar(g, va, nil)
		if err != nil {
			continue
		}
		for e, d := range sol.Edge {
			if d != lcl.TowardU && d != lcl.TowardV {
				t.Fatalf("trial %d: edge %d direction %d", trial, e, d)
			}
		}
	}
}

func TestOneBitCodecRobustToRandomBits(t *testing.T) {
	rng := rand.New(rand.NewSource(304))
	g := graph.Cycle(150)
	codec := core.OneBitCodec{Radius: 25}
	for trial := 0; trial < 30; trial++ {
		advice := randomOneBit(g, rng)
		// Decode either errors or returns some holder set; every returned
		// payload decoded from a marker stream by construction.
		if va, _, err := codec.Decode(g, advice); err == nil {
			for v := range va {
				if v < 0 || v >= g.N() {
					t.Fatalf("trial %d: holder %d out of range", trial, v)
				}
			}
		}
	}
}

func TestDecompressCodecsRobustToRandomAdvice(t *testing.T) {
	rng := rand.New(rand.NewSource(305))
	g, err := graph.RandomRegular(40, 3, rng)
	if err != nil {
		t.Fatal(err)
	}
	codecs := []decompress.Codec{decompress.Trivial{}, decompress.CubicTwoBit{}}
	for _, c := range codecs {
		for trial := 0; trial < 15; trial++ {
			advice := make(local.Advice, g.N())
			for v := range advice {
				width := c.MaxBits(g.Degree(v))
				s := bitstr.String{}
				for b := 0; b < width; b++ {
					s = s.Append(rng.Intn(2))
				}
				advice[v] = s
			}
			// Any full-width advice decodes to SOME edge set (that is the
			// point of an exact codec: the map is a bijection).
			if _, _, err := c.Decode(g, advice); err != nil {
				t.Fatalf("%s trial %d: %v", c.Name(), trial, err)
			}
		}
	}
}

func TestTwoBitCubicBijectionSample(t *testing.T) {
	// Sample the bijection property: distinct subsets encode to distinct
	// advice (injectivity on a sample).
	rng := rand.New(rand.NewSource(306))
	g := graph.Complete(4)
	seen := map[string]string{}
	for trial := 0; trial < 40; trial++ {
		x := make(decompress.EdgeSet)
		key := ""
		for e := 0; e < g.M(); e++ {
			if rng.Intn(2) == 0 {
				x[e] = true
				key += "1"
			} else {
				key += "0"
			}
		}
		advice, err := decompress.CubicTwoBit{}.Encode(g, x)
		if err != nil {
			t.Fatal(err)
		}
		enc := ""
		for _, s := range advice {
			enc += s.String()
		}
		if prev, ok := seen[enc]; ok && prev != key {
			t.Fatalf("two subsets %s and %s share encoding %s", prev, key, enc)
		}
		seen[enc] = key
	}
}
